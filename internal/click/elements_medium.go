package click

// Medium elements: sketching, crypto decap, lookup and rewriting — the
// Table 2 middle rows, including the elements whose procedural CRC/LPM
// implementations Clara's algorithm identification targets (§5.3).

// CMSketch estimates per-flow rates with a count-min sketch whose row
// hashes are a *procedural CRC* over the flow key — the acceleration
// opportunity Clara detects ("CRC acceleration opportunities in elements
// like cmsketch", §5.3).
var CMSketch = register(&Element{
	Name:     "cmsketch",
	Desc:     "count-min sketch heavy-hitter estimator (software CRC hashing)",
	Stateful: true,
	Insights: []string{"pred", "algo", "scale", "place", "coloc"},
	Src: `
// cmsketch: 4-row count-min sketch. Row hashes are CRC32 variants over the
// 8-byte flow key, computed bit-serially in software — exactly what a
// straight port from host code looks like before Clara points at the CRC
// engine.
global u32 cms_row0[4096];
global u32 cms_row1[4096];
global u32 cms_row2[4096];
global u32 cms_row3[4096];
global u32 cms_total;
global u32 cms_heavy;

u32 crc_key(u64 key, u32 poly) {
	u32 crc = 0xffffffff;
	for (u32 i = 0; i < 8; i += 1) {
		u32 byte = u32((key >> (i << 3)) & 0xff);
		crc = crc ^ byte;
		for (u32 b = 0; b < 8; b += 1) {
			if ((crc & 1) != 0) {
				crc = (crc >> 1) ^ poly;
			} else {
				crc = crc >> 1;
			}
		}
	}
	return ~crc;
}

void handle() {
	u64 key = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	u32 h0 = crc_key(key, 0xedb88320) & 4095;
	u32 h1 = crc_key(key, 0x82f63b78) & 4095;
	u32 h2 = crc_key(key, 0xeb31d82e) & 4095;
	u32 h3 = crc_key(key, 0xd5828281) & 4095;
	cms_row0[h0] += 1;
	cms_row1[h1] += 1;
	cms_row2[h2] += 1;
	cms_row3[h3] += 1;
	// Estimate = min over rows.
	u32 est = cms_row0[h0];
	if (cms_row1[h1] < est) { est = cms_row1[h1]; }
	if (cms_row2[h2] < est) { est = cms_row2[h2]; }
	if (cms_row3[h3] < est) { est = cms_row3[h3]; }
	cms_total += 1;
	if (est > 1000) { cms_heavy += 1; }
	pkt_send(0);
}
`,
})

// CMSketchAccel is the Clara-ported cmsketch: row hashes via the hardware
// hash/CRC engine instead of bit-serial software.
var CMSketchAccel = register(&Element{
	Name:     "cmsketch_crc",
	Desc:     "cmsketch ported to the CRC/hash engine",
	Stateful: true,
	Insights: []string{"pred", "scale", "place", "coloc"},
	Src: `
// cmsketch_crc: Clara's accelerator port of cmsketch — each row hash is a
// single engine operation.
global u32 cms_row0[4096];
global u32 cms_row1[4096];
global u32 cms_row2[4096];
global u32 cms_row3[4096];
global u32 cms_total;
global u32 cms_heavy;

void handle() {
	u64 key = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	u32 h0 = hash32(key) & 4095;
	u32 h1 = hash32(key ^ 0x9e3779b97f4a7c15) & 4095;
	u32 h2 = hash32(key ^ 0xc2b2ae3d27d4eb4f) & 4095;
	u32 h3 = hash32(key ^ 0x165667b19e3779f9) & 4095;
	cms_row0[h0] += 1;
	cms_row1[h1] += 1;
	cms_row2[h2] += 1;
	cms_row3[h3] += 1;
	u32 est = cms_row0[h0];
	if (cms_row1[h1] < est) { est = cms_row1[h1]; }
	if (cms_row2[h2] < est) { est = cms_row2[h2]; }
	if (cms_row3[h3] < est) { est = cms_row3[h3]; }
	cms_total += 1;
	if (est > 1000) { cms_heavy += 1; }
	pkt_send(0);
}
`,
})

// WepDecap decapsulates WEP-style frames: a reduced RC4 keystream xor plus
// a software CRC-32 integrity check (the 'rc4' sub-element the paper's
// algorithm ID flags, §5.3).
var WepDecap = register(&Element{
	Name:     "wepdecap",
	Desc:     "WEP decapsulation (RC4 + software CRC check)",
	Stateful: true,
	Insights: []string{"pred", "algo", "scale", "place"},
	Src: `
// wepdecap: per-packet RC4-16 keystream (nibble-wide S-box; documented
// substitution for full RC4 to bound per-packet setup cost) followed by a
// software CRC-32 over the decrypted payload.
global u32 rc4_s[16];
global u32 wep_ok;
global u32 wep_bad;

void handle() {
	u16 n = pkt_payload_len();
	if (n < 8) { wep_bad += 1; pkt_drop(); return; }
	// Key schedule: IV from the packet mixed with the shared key.
	u32 iv = pkt_tcp_seq();
	for (u32 i = 0; i < 16; i += 1) { rc4_s[i] = i; }
	u32 j = 0;
	for (u32 i = 0; i < 16; i += 1) {
		j = (j + rc4_s[i] + ((iv >> ((i & 7) << 2)) & 15) + 0x5) & 15;
		u32 tmp = rc4_s[i];
		rc4_s[i] = rc4_s[j];
		rc4_s[j] = tmp;
	}
	// PRGA: decrypt in place.
	u32 a = 0;
	u32 b = 0;
	u32 limit = u32(n);
	if (limit > 64) { limit = 64; }
	for (u32 i = 0; i < limit; i += 1) {
		a = (a + 1) & 15;
		b = (b + rc4_s[a]) & 15;
		u32 tmp = rc4_s[a];
		rc4_s[a] = rc4_s[b];
		rc4_s[b] = tmp;
		u32 ks = rc4_s[(rc4_s[a] + rc4_s[b]) & 15];
		pkt_set_payload(i, pkt_payload(i) ^ u8(ks));
	}
	// Integrity: bit-serial CRC-32 over the decrypted bytes.
	u32 crc = 0xffffffff;
	for (u32 i = 0; i < limit; i += 1) {
		crc = crc ^ u32(pkt_payload(i));
		for (u32 k = 0; k < 8; k += 1) {
			if ((crc & 1) != 0) {
				crc = (crc >> 1) ^ 0xedb88320;
			} else {
				crc = crc >> 1;
			}
		}
	}
	crc = ~crc;
	if ((crc & 0xff) == 0x7) { wep_bad += 1; pkt_drop(); return; }
	wep_ok += 1;
	pkt_send(0);
}
`,
})

// WepDecapAccel is the Clara port: the integrity CRC runs on the CRC
// engine.
var WepDecapAccel = register(&Element{
	Name:     "wepdecap_crc",
	Desc:     "wepdecap ported to the CRC engine",
	Stateful: true,
	Insights: []string{"pred", "scale", "place"},
	Src: `
// wepdecap_crc: same RC4-16 decrypt, but the CRC-32 integrity check is one
// engine call (Clara's §5.3 porting suggestion).
global u32 rc4_s[16];
global u32 wep_ok;
global u32 wep_bad;

void handle() {
	u16 n = pkt_payload_len();
	if (n < 8) { wep_bad += 1; pkt_drop(); return; }
	u32 iv = pkt_tcp_seq();
	for (u32 i = 0; i < 16; i += 1) { rc4_s[i] = i; }
	u32 j = 0;
	for (u32 i = 0; i < 16; i += 1) {
		j = (j + rc4_s[i] + ((iv >> ((i & 7) << 2)) & 15) + 0x5) & 15;
		u32 tmp = rc4_s[i];
		rc4_s[i] = rc4_s[j];
		rc4_s[j] = tmp;
	}
	u32 a = 0;
	u32 b = 0;
	u32 limit = u32(n);
	if (limit > 64) { limit = 64; }
	for (u32 i = 0; i < limit; i += 1) {
		a = (a + 1) & 15;
		b = (b + rc4_s[a]) & 15;
		u32 tmp = rc4_s[a];
		rc4_s[a] = rc4_s[b];
		rc4_s[b] = tmp;
		u32 ks = rc4_s[(rc4_s[a] + rc4_s[b]) & 15];
		pkt_set_payload(i, pkt_payload(i) ^ u8(ks));
	}
	u32 crc = crc32_hw(0, limit);
	if ((crc & 0xff) == 0x7) { wep_bad += 1; pkt_drop(); return; }
	wep_ok += 1;
	pkt_send(0);
}
`,
})

// IPRewriter rewrites flows according to installed mappings (Click's
// IPRewriter pattern).
var IPRewriter = register(&Element{
	Name:     "iprewriter",
	Desc:     "flow-level address/port rewriter",
	Stateful: true,
	Insights: []string{"pred", "rev", "scale", "place"},
	Src: `
// iprewriter: rewrite flows by installed mappings; learn mappings for new
// outbound flows (pattern "keep source, rewrite destination").
map<u64,u64> fwd_map[65536];
map<u64,u64> rev_map[65536];
global u32 rw_hits;
global u32 rw_learned;
global u32 rw_drops;

void handle() {
	if (pkt_eth_type() != 0x0800) { rw_drops += 1; pkt_drop(); return; }
	u64 fkey = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	if (map_contains(fwd_map, fkey)) {
		u64 m = map_find(fwd_map, fkey);
		pkt_set_ip_dst(u32(m >> 16));
		pkt_set_tcp_dport(u16(m & 0xffff));
		rw_hits += 1;
		pkt_csum_update();
		pkt_send(0);
		return;
	}
	u64 rkey = (u64(pkt_ip_dst()) << 32) | u64(pkt_ip_src());
	if (map_contains(rev_map, rkey)) {
		u64 m = map_find(rev_map, rkey);
		pkt_set_ip_src(u32(m >> 16));
		pkt_set_tcp_sport(u16(m & 0xffff));
		rw_hits += 1;
		pkt_csum_update();
		pkt_send(1);
		return;
	}
	// New outbound flow: rewrite to the server pool and remember both
	// directions.
	u32 pool = 0x0a000a00 | (pkt_ip_src() & 0xf);
	u16 pport = 8000 + (pkt_tcp_dport() & 0xff);
	map_insert(fwd_map, fkey, (u64(pool) << 16) | u64(pport));
	// Reverse key must match how replies compute it: (reply dst << 32) |
	// reply src = (client << 32) | pool.
	map_insert(rev_map, (u64(pkt_ip_src()) << 32) | u64(pool), (u64(pkt_ip_dst()) << 16) | u64(pkt_tcp_dport()));
	rw_learned += 1;
	pkt_set_ip_dst(pool);
	pkt_set_tcp_dport(pport);
	pkt_csum_update();
	pkt_send(0);
}
`,
})

// UDPCount counts UDP traffic per source with a classifier front end.
var UDPCount = register(&Element{
	Name:     "udpcount",
	Desc:     "UDP per-source counter",
	Stateful: true,
	Insights: []string{"pred", "rev", "scale", "place", "pack", "coloc"},
	Src: `
// udpcount: classify UDP, then count per-source and in aggregate. Small,
// hot structures (the classifier table and the scalar tallies) versus one
// large flow map — the §5.5 placement example.
map<u64,u64> src_count[131072];
global u32 port_class[256];
global u32 udp_pkts;
global u32 udp_bytes;
global u32 tcp_pkts;
global u32 other_pkts;
global u32 dns_pkts;

void handle() {
	u8 proto = pkt_ip_proto();
	if (proto == 6) { tcp_pkts += 1; pkt_send(0); return; }
	if (proto != 17) { other_pkts += 1; pkt_send(0); return; }
	u16 dport = pkt_udp_dport();
	u32 class = port_class[u32(dport) & 255];
	if (class == 2) { pkt_drop(); return; } // blocked service class
	if (dport == 53) { dns_pkts += 1; }
	udp_pkts += 1;
	udp_bytes += u32(pkt_len());
	u64 key = u64(pkt_ip_src());
	map_insert(src_count, key, map_find(src_count, key) + 1);
	pkt_send(0);
}
`,
	Setup: setupUDPCount,
})

// DPI scans payloads for byte signatures (Figure 1's DPI bar).
var DPI = register(&Element{
	Name:     "dpi",
	Desc:     "payload signature scanner",
	Stateful: true,
	Insights: []string{"pred", "scale", "coloc"},
	Src: `
// dpi: scan the payload for two byte signatures with a rolling window.
// Cost scales with packet size, which is exactly the Figure 1 DPI
// variability.
global u32 sig_hits;
global u32 scanned_bytes;
global u32 clean_pkts;

void handle() {
	u32 n = u32(pkt_payload_len());
	u32 w = 0;
	u32 hit = 0;
	for (u32 i = 0; i < n; i += 1) {
		w = ((w << 8) | u32(pkt_payload(i))) & 0xffffff;
		if (w == 0x474554) { hit = 1; }       // "GET"
		if (w == 0x2f2e2e) { hit = 2; break; } // "/.."
	}
	scanned_bytes += n;
	if (hit == 2) {
		sig_hits += 1;
		pkt_drop();
		return;
	}
	clean_pkts += 1;
	pkt_send(0);
}
`,
})

// Firewall enforces an address/port ACL with per-flow state (Figure 1's FW
// bar: performance depends on where the flow state lives).
var Firewall = register(&Element{
	Name:     "firewall",
	Desc:     "stateful ACL firewall",
	Stateful: true,
	Insights: []string{"pred", "rev", "scale", "place", "coloc"},
	Src: `
// firewall: exact-match deny list plus stateful flow admission — new flows
// are admitted only on SYN, established flows pass by table hit.
map<u64,u64> deny[8192];
map<u64,u64> flows[131072];
global u32 fw_pass;
global u32 fw_deny;
global u32 fw_newflow;

void handle() {
	if (pkt_eth_type() != 0x0800) { pkt_drop(); return; }
	u64 src = u64(pkt_ip_src());
	if (map_contains(deny, src)) {
		fw_deny += 1;
		pkt_drop();
		return;
	}
	u16 dport = pkt_tcp_dport();
	if (dport == 23 || dport == 2323 || dport == 445) {
		fw_deny += 1;
		pkt_drop();
		return;
	}
	u64 fkey = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	if (map_contains(flows, fkey)) {
		fw_pass += 1;
		pkt_send(0);
		return;
	}
	if (pkt_ip_proto() == 6 && (pkt_tcp_flags() & 0x02) != 0) {
		map_insert(flows, fkey, u64(pkt_time()));
		fw_newflow += 1;
		pkt_send(0);
		return;
	}
	fw_deny += 1;
	pkt_drop();
}
`,
	Setup: setupFirewall,
})
