package interp

import (
	"testing"

	"clara/internal/ir"
	"clara/internal/lang"
	"clara/internal/traffic"
)

func compileB(b *testing.B, name, src string) *ir.Module {
	b.Helper()
	m, err := lang.Compile(name, src)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// Benchmark sources span the two shapes that dominate host profiling:
// map-heavy connection tracking (API cost) and loop-heavy per-packet
// compute (raw dispatch cost).
const benchLoopSrc = `
global u64 acc[256];
global u32 seen;
void handle() {
	u32 h = hash32(u64(pkt_ip_src()) ^ (u64(pkt_ip_dst()) << 13));
	u32 n = pkt_payload_len();
	u64 s = 0;
	for (u32 i = 0; i < 32; i += 1) {
		u64 b = u64(pkt_payload(i % n));
		s = (s * 31 + b) ^ (s >> 7);
		acc[(h + i) & 255] += s & 0xff;
	}
	seen += 1;
	if ((s & 3) == 0) { pkt_drop(); } else { pkt_send(0); }
}
`

func benchPackets(b *testing.B, n int) []traffic.Packet {
	b.Helper()
	gen, err := traffic.NewGenerator(traffic.MediumMix)
	if err != nil {
		b.Fatal(err)
	}
	pkts := make([]traffic.Packet, n)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	return pkts
}

func benchRun(b *testing.B, src string, backend Backend) {
	mod := compileB(b, "bench", src)
	m, err := New(mod, Config{Mode: HostMap, Backend: backend})
	if err != nil {
		b.Fatal(err)
	}
	m.EnableCounters()
	pkts := benchPackets(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		if err := m.RunPacket(&p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Steps)/float64(b.N), "instrs/pkt")
}

func BenchmarkRunPacketNAT(b *testing.B)  { benchRun(b, natSrc, BackendCompiled) }
func BenchmarkRunPacketLoop(b *testing.B) { benchRun(b, benchLoopSrc, BackendCompiled) }

func BenchmarkRunPacketNATReference(b *testing.B)  { benchRun(b, natSrc, BackendReference) }
func BenchmarkRunPacketLoopReference(b *testing.B) { benchRun(b, benchLoopSrc, BackendReference) }
