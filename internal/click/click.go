// Package click is the NF element library: the Click-style programs the
// paper evaluates (Table 2), written in NFC. Each element carries its
// source, a description, optional state-seeding logic (rule installation),
// and the route table used by LPM-capable elements.
//
// The original Click programs are C++ against the Click framework; these
// are the same network functions against the NFC framework API, sized to
// the same order (tens to hundreds of lines, stateless header rewriters up
// to multi-map NATs and proxies).
package click

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/lang"
)

// Element is one NF in the library.
type Element struct {
	Name     string
	Desc     string
	Src      string
	Stateful bool
	// Insights lists the offloading-insight classes Table 2 marks for the
	// element: "pred" (cross-platform prediction), "algo" (algorithm
	// identification), "rev" (reverse porting), "scale" (scale-out),
	// "place" (state placement), "pack" (coalescing), "coloc" (colocation).
	Insights []string
	// Setup seeds NF state before traffic (rule/route installation).
	Setup func(m *interp.Machine) error
	// Routes backs lpm_hw and trie construction for LPM elements.
	Routes []interp.Route

	once sync.Once
	mod  *ir.Module
	err  error
}

// Module lowers the element (cached).
func (e *Element) Module() (*ir.Module, error) {
	e.once.Do(func() {
		e.mod, e.err = lang.Compile(e.Name, e.Src)
	})
	return e.mod, e.err
}

// MustModule lowers the element, panicking on library bugs.
func (e *Element) MustModule() *ir.Module {
	m, err := e.Module()
	if err != nil {
		panic(fmt.Sprintf("click: element %s does not compile: %v", e.Name, err))
	}
	return m
}

// LoC counts non-blank, non-comment source lines.
func (e *Element) LoC() int {
	n := 0
	for _, line := range strings.Split(e.Src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

var registry = map[string]*Element{}

func register(e *Element) *Element {
	if _, dup := registry[e.Name]; dup {
		panic("click: duplicate element " + e.Name)
	}
	registry[e.Name] = e
	return e
}

// Get returns the named element, or nil.
func Get(name string) *Element { return registry[name] }

// Library returns all elements sorted by name.
func Library() []*Element {
	out := make([]*Element, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Table2Order lists the elements in the paper's Table 2 row order.
var Table2Order = []string{
	"anonipaddr", "tcpack", "udpipencap", "forcetcp", "tcpresp",
	"tcpgen", "aggcounter", "timefilter",
	"cmsketch", "wepdecap", "iplookup", "iprewriter", "ipclassifier",
	"dnsproxy", "mazunat", "udpcount", "webgen",
}

// Modules lowers a set of elements by name.
func Modules(names []string) ([]*ir.Module, error) {
	var out []*ir.Module
	for _, n := range names {
		e := Get(n)
		if e == nil {
			return nil, fmt.Errorf("click: unknown element %q", n)
		}
		m, err := e.Module()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
