package clara

import (
	"io"
	"sync"
	"testing"

	"clara/internal/experiments"
	"clara/internal/interp"
	"clara/internal/nicsim"
	"clara/internal/traffic"
)

// The benchmark context is shared: training the predictor and the cost
// models happens once, at full evaluation scale, on first use.
var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
)

func fullCtx() *experiments.Context {
	benchCtxOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.DefaultConfig())
	})
	return benchCtx
}

// benchExperiment regenerates one table/figure per iteration and reports
// failure through b.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := experiments.Get(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	ctx := fullCtx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		t.Fprint(io.Discard)
	}
}

// One benchmark per table and figure in the paper's evaluation (§5).

func BenchmarkFigure1(b *testing.B)             { benchExperiment(b, "figure1") }
func BenchmarkTable1(b *testing.B)              { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)              { benchExperiment(b, "table2") }
func BenchmarkFigure8(b *testing.B)             { benchExperiment(b, "figure8") }
func BenchmarkFigure8Ablation(b *testing.B)     { benchExperiment(b, "figure8-ablation") }
func BenchmarkReversePortAblation(b *testing.B) { benchExperiment(b, "reverse-port-ablation") }
func BenchmarkFigure9(b *testing.B)             { benchExperiment(b, "figure9") }
func BenchmarkFigure10a(b *testing.B)           { benchExperiment(b, "figure10a") }
func BenchmarkFigure10b(b *testing.B)           { benchExperiment(b, "figure10b") }
func BenchmarkFigure10c(b *testing.B)           { benchExperiment(b, "figure10c") }
func BenchmarkFigure11a(b *testing.B)           { benchExperiment(b, "figure11a") }
func BenchmarkFigure11b(b *testing.B)           { benchExperiment(b, "figure11b") }
func BenchmarkFigure11cd(b *testing.B)          { benchExperiment(b, "figure11cd") }
func BenchmarkFigure11ef(b *testing.B)          { benchExperiment(b, "figure11ef") }
func BenchmarkFigure12(b *testing.B)            { benchExperiment(b, "figure12") }
func BenchmarkFigure13(b *testing.B)            { benchExperiment(b, "figure13") }
func BenchmarkFigure14a(b *testing.B)           { benchExperiment(b, "figure14a") }
func BenchmarkFigure14bc(b *testing.B)          { benchExperiment(b, "figure14bc") }
func BenchmarkFigure15(b *testing.B)            { benchExperiment(b, "figure15") }
func BenchmarkFigure16(b *testing.B)            { benchExperiment(b, "figure16") }

// Substrate microbenchmarks: the per-packet costs underlying everything
// above.

func BenchmarkInterpPacket(b *testing.B) {
	e := GetElement("mazunat")
	m, err := interp.New(e.MustModule(), interp.Config{Mode: interp.NICMap})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := traffic.NewGenerator(traffic.MediumMix)
	if err != nil {
		b.Fatal(err)
	}
	pkts := gen.Trace(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		if err := m.RunPacket(&p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	params := nicsim.DefaultParams()
	e := GetElement("mazunat")
	nf := &NF{Name: "mazunat", Mod: e.MustModule(), Setup: e.Setup}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		built, err := nf.Build(params)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nicsim.GenTraces(built, traffic.MediumMix, 1000, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateReplay(b *testing.B) {
	params := nicsim.DefaultParams()
	e := GetElement("mazunat")
	nf := &NF{Name: "mazunat", Mod: e.MustModule(), Setup: e.Setup}
	built, err := nf.Build(params)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := nicsim.GenTraces(built, traffic.MediumMix, 3000, params)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nicsim.Simulate(params, 24, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// The fleet benchmark trains its own quick tool: the experiments context
// above has no algorithm-ID or scale-out models, and the fleet analyzes
// with all three.
var (
	fleetToolOnce sync.Once
	fleetTool     *Tool
	fleetToolErr  error
)

func fleetBenchTool(b *testing.B) *Tool {
	b.Helper()
	fleetToolOnce.Do(func() {
		fleetTool, fleetToolErr = Train(TrainConfig{Quick: true, Seed: 42})
	})
	if fleetToolErr != nil {
		b.Fatal(fleetToolErr)
	}
	return fleetTool
}

// BenchmarkFleetAnalyze compares analyzing the whole click library under
// the three standard workloads (the analyze-fleet CLI batch, 51 jobs):
// sequentially via Tool.Analyze, on an 8-worker fleet with a cold cache
// per batch, and on a long-lived fleet whose cache persists across
// batches. One op = one full batch.
func BenchmarkFleetAnalyze(b *testing.B) {
	tool := fleetBenchTool(b)
	jobs, err := LibraryJobs()
	if err != nil {
		b.Fatal(err)
	}
	jobsPerOp := float64(len(jobs))

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, j := range jobs {
				if _, err := tool.Analyze(j.Mod, j.PS, j.WL); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(jobsPerOp*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	})

	run := func(b *testing.B, fl *Fleet) {
		rs, err := fl.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}

	b.Run("fleet8-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fl, err := NewFleet(tool, FleetConfig{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
			run(b, fl)
			if s := fl.Stats(); s.CacheHits == 0 {
				b.Fatal("no cache hits on repeated modules")
			}
		}
		b.ReportMetric(jobsPerOp*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	})

	b.Run("fleet8-warm", func(b *testing.B) {
		fl, err := NewFleet(tool, FleetConfig{Workers: 8})
		if err != nil {
			b.Fatal(err)
		}
		run(b, fl) // prime the cache outside the timed region
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, fl)
		}
		b.ReportMetric(jobsPerOp*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		b.ReportMetric(100*fl.Stats().HitRate(), "cache-hit-%")
	})
}

func BenchmarkPredictModule(b *testing.B) {
	ctx := fullCtx()
	pred, err := ctx.Predictor()
	if err != nil {
		b.Fatal(err)
	}
	mod := GetElement("mazunat").MustModule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.PredictModule(mod, AccelConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
