package clara

import (
	"math"
	"sync"
	"testing"

	"clara/internal/niccc"
)

// testToolOnce shares one quick-trained tool across the batch-identity
// and quantization-gate tests (training dominates their runtime).
var (
	testToolOnce sync.Once
	testTool     *Tool
	testToolErr  error
)

func quantTestTool(t *testing.T) *Tool {
	t.Helper()
	testToolOnce.Do(func() {
		testTool, testToolErr = Train(TrainConfig{Quick: true, Seed: 42})
	})
	if testToolErr != nil {
		t.Fatal(testToolErr)
	}
	return testTool
}

// The batched inference path (PredictModules / PredictModule) must be
// bit-identical to the legacy per-block path (PredictBlock) across the
// whole element library: batching is a performance change, not a model
// change.
func TestPredictBatchBitIdenticalAcrossLibrary(t *testing.T) {
	tool := quantTestTool(t)
	var mods []*Module
	for _, e := range Elements() {
		mod, err := e.Module()
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, mod)
	}
	batch, err := tool.Predictor.PredictModules(mods, niccc.AccelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for mi, mod := range mods {
		single, err := tool.Predictor.PredictModule(mod, niccc.AccelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		f := mod.Handler()
		for bi, b := range f.Blocks {
			compute, mem := tool.Predictor.PredictBlock(b)
			for _, bp := range [2]float64{batch[mi].Blocks[bi].Compute, single.Blocks[bi].Compute} {
				if math.Float64bits(bp) != math.Float64bits(compute) {
					t.Fatalf("%s block %d: batch compute %v != scalar %v",
						mod.Name, bi, bp, compute)
				}
			}
			if batch[mi].Blocks[bi].Mem != mem || single.Blocks[bi].Mem != mem {
				t.Fatalf("%s block %d: mem mismatch", mod.Name, bi)
			}
		}
	}
}

// Quantized inference must stay within the accuracy budget: per-element
// WMAPE against the vendor toolchain's ground truth may drift at most
// 0.5 percentage points from the f32 path (the int8 recurrence plus the
// tanh LUT are the only divergence sources).
func TestQuantizedAccuracyGate(t *testing.T) {
	tool := quantTestTool(t)
	p := tool.Predictor
	defer p.SetQuantize(false)
	const maxDrift = 0.005
	for _, e := range Elements() {
		mod, err := e.Module()
		if err != nil {
			t.Fatal(err)
		}
		p.SetQuantize(false)
		f32, err := p.Evaluate(mod)
		if err != nil {
			t.Fatal(err)
		}
		p.SetQuantize(true)
		q, err := p.Evaluate(mod)
		if err != nil {
			t.Fatal(err)
		}
		if drift := math.Abs(q.WMAPE - f32.WMAPE); drift > maxDrift {
			t.Errorf("%s: quantized WMAPE %.5f vs f32 %.5f (drift %.5f > %.3f)",
				mod.Name, q.WMAPE, f32.WMAPE, drift, maxDrift)
		}
	}
}
