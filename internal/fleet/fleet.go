// Package fleet runs Clara's analysis over batches of (NF, workload)
// jobs: a bounded worker pool executes core.Clara analyses concurrently,
// a memoizing cache shares each module's §3 prediction across every
// workload it is analyzed under, and per-stage metrics (jobs completed,
// cache hits/misses, per-analysis wall-time histogram) are exposed as a
// Stats snapshot.
//
// The trained models (Predictor, AlgoIdentifier, ScaleoutModel) are
// shared read-only across workers — after training they are never
// mutated, and every per-job mutable structure (interpreter machines,
// host profiles, traffic generators) is created per analysis. The only
// shared mutable state the fleet adds, the prediction cache and the
// metrics, is guarded internally, so Run is safe to call with any worker
// count and its results are deterministic: result i always corresponds
// to job i, and analysis output is a pure function of the job.
package fleet

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"clara/internal/analysis"
	"clara/internal/core"
	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/niccc"
	"clara/internal/traffic"
)

// Job is one unit of fleet work: analyze Mod under WL.
type Job struct {
	// Name labels the job in results and summaries; defaults to Mod.Name.
	Name string
	Mod  *ir.Module
	PS   core.ProfileSetup
	WL   traffic.Spec
	// Accel is the accelerator configuration the prediction assumes; it is
	// part of the cache key (the same module predicted under different
	// engine configurations yields different API costs).
	Accel niccc.AccelConfig
}

func (j Job) label() string {
	name := j.Name
	if name == "" && j.Mod != nil {
		name = j.Mod.Name
	}
	return name
}

// Result is one job's outcome, in job order.
type Result struct {
	Name     string
	Workload string
	Insights *core.Insights
	Err      error
	// Elapsed is this analysis' wall time (prediction + profiling +
	// placement + scale-out).
	Elapsed time.Duration
	// CacheHit records whether the §3 prediction was served from the
	// fleet cache rather than recomputed.
	CacheHit bool
	// Panicked reports that the analysis panicked; Err then carries the
	// panic value and a stack snippet. The panic is confined to this job —
	// the rest of the batch is unaffected.
	Panicked bool
	// Lint counts this job's offloadability diagnostics by severity.
	Lint analysis.Summary
	// PayloadLoops counts this NF's loops whose bounds the taint analysis
	// traced to packet payload bytes (slow-path-only work).
	PayloadLoops int
	// PayloadKeyedStructs counts stateful structures keyed by
	// payload-derived values (ineligible for a header-only fast path).
	PayloadKeyedStructs int
}

// Config sizes a Fleet.
type Config struct {
	// Workers bounds the pool; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// DisableCache turns off prediction memoization (the sequential
	// baseline the benchmarks compare against).
	DisableCache bool
	// CacheSize caps the prediction cache at this many entries (LRU
	// eviction); 0 means DefaultCacheSize. A long-running server sees an
	// unbounded stream of submitted-source modules, so the cache must not
	// grow with it.
	CacheSize int
}

func (c Config) norm() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Fleet analyzes job batches against one trained Clara tool. The
// prediction cache persists across Run calls, so long-lived fleets
// amortize prediction cost over every batch they serve.
type Fleet struct {
	tool  *core.Clara
	cfg   Config
	cache *predCache
	stats *collector
}

// New builds a fleet around a trained tool.
func New(tool *core.Clara, cfg Config) (*Fleet, error) {
	if tool == nil || tool.Predictor == nil {
		return nil, fmt.Errorf("fleet: nil tool or untrained predictor")
	}
	cfg = cfg.norm()
	return &Fleet{
		tool:  tool,
		cfg:   cfg,
		cache: newPredCache(cfg.CacheSize),
		stats: newCollector(),
	}, nil
}

// Workers returns the configured pool size.
func (f *Fleet) Workers() int { return f.cfg.Workers }

// Stats returns a consistent snapshot of the fleet's lifetime metrics.
func (f *Fleet) Stats() Stats {
	s := f.stats.snapshot()
	s.CacheEvictions = f.cache.evicted()
	return s
}

// Run analyzes every job over the worker pool and returns results in job
// order regardless of scheduling. A job failure is recorded in its
// Result; Run itself only fails on malformed jobs discovered up front.
func (f *Fleet) Run(jobs []Job) ([]Result, error) {
	return f.RunContext(context.Background(), jobs)
}

// RunContext is Run under a context. Cancellation stops the batch
// promptly: jobs not yet dispatched are marked with the context's error
// without running, and in-flight analyses observe ctx inside their
// stages (profiling checks it every 64 packets) and abort early. Results
// stay in job order; RunContext returns ctx.Err() so callers can
// distinguish a canceled batch from a completed one with job failures.
func (f *Fleet) RunContext(ctx context.Context, jobs []Job) ([]Result, error) {
	for i, j := range jobs {
		if j.Mod == nil {
			return nil, fmt.Errorf("fleet: job %d (%q) has no module", i, j.Name)
		}
	}
	results := make([]Result, len(jobs))
	f.prewarm(ctx, jobs)
	idx := make(chan int)
	var wg sync.WaitGroup
	workers := f.cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	start := time.Now() //claravet:allow metrics only: feeds Stats.Wall, not any result
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = f.analyze(ctx, jobs[i])
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Jobs i.. were never dispatched: record them as canceled
			// without touching cache or latency metrics.
			for j := i; j < len(jobs); j++ {
				results[j] = Result{Name: jobs[j].label(), Workload: jobs[j].WL.Name, Err: ctx.Err()}
				f.stats.recordSkipped()
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	f.stats.addWall(time.Since(start))
	return results, ctx.Err()
}

// prewarm claims every distinct (module, accel) key a batch needs that
// is not already cached and predicts all claimed modules in one batched
// LSTM sweep (core.Predictor.PredictModules) before workers start. With
// the cache populated up front, per-job analysis skips straight to the
// workload stages, and the predictor amortizes its Gemm calls — and
// deduplicates identical basic blocks — across the whole batch instead
// of per module. Workers that race with a long prewarm still block on
// the singleflight entries, so semantics are unchanged.
func (f *Fleet) prewarm(ctx context.Context, jobs []Job) {
	if f.cfg.DisableCache || len(jobs) < 2 || ctx.Err() != nil {
		return
	}
	// Group claimed keys by accelerator config (one PredictModules sweep
	// per distinct accel — batches are nearly always homogeneous).
	type group struct {
		mods    []*ir.Module
		entries []*predEntry
	}
	groups := make(map[niccc.AccelConfig]*group)
	claimed := 0
	for _, j := range jobs {
		e, leader := f.cache.claim(keyFor(j.Mod, j.Accel))
		if !leader {
			continue
		}
		g := groups[j.Accel]
		if g == nil {
			g = &group{}
			groups[j.Accel] = g
		}
		g.mods = append(g.mods, j.Mod)
		g.entries = append(g.entries, e)
		claimed++
	}
	if claimed == 0 {
		return
	}
	defer f.stats.addPrewarmed(int64(claimed))
	// Each group fills only its own claimed cache entries, so the order
	// groups are swept in cannot affect any job's result.
	for accel, g := range groups { //claravet:allow order-insensitive: groups fill disjoint cache entries
		f.prewarmGroup(accel, g.mods, g.entries)
	}
}

// prewarmGroup predicts one accel-homogeneous module group and fills its
// claimed cache entries. Every entry is completed no matter what —
// leaked in-flight entries would block workers forever — so a panic in
// the sweep fails the remaining entries instead of unwinding past them.
func (f *Fleet) prewarmGroup(accel niccc.AccelConfig, mods []*ir.Module, entries []*predEntry) {
	filled := 0
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("fleet: batch prediction panicked: %v\n%s", r, stackSnippet())
			for _, e := range entries[filled:] {
				f.cache.fill(e, nil, err)
			}
		}
	}()
	// Warm the interpreter's compiled-program cache alongside the
	// prediction sweep: host profiling for these modules then starts on
	// the threaded backend immediately instead of each first worker
	// paying the compile. A compile error is not a batch error — the
	// machine falls back to the reference interpreter, and any real
	// module problem surfaces in that job's analysis.
	for _, mod := range mods {
		_ = interp.Precompile(mod)
	}
	mps, err := f.tool.Predictor.PredictModules(mods, accel)
	if err != nil {
		// The batched sweep fails jointly (e.g. one module calls an API
		// with no reverse port). Fall back to per-module calls so the
		// error stays confined to the module that caused it.
		for i, mod := range mods {
			mp, merr := f.tool.Predictor.PredictModule(mod, accel)
			f.cache.fill(entries[i], mp, merr)
			filled++
		}
		return
	}
	for i := range mods {
		f.cache.fill(entries[i], mps[i], nil)
		filled++
	}
}

// analyze runs one job: prediction via the cache, then the
// workload-dependent analyses. A panic anywhere in the analysis is
// confined to this job's Result — one poisoned NF must not take down the
// batch (or, in serving mode, the process).
func (f *Fleet) analyze(ctx context.Context, j Job) (res Result) {
	start := time.Now() //claravet:allow metrics only: feeds Result.Elapsed, not the analysis
	res = Result{Name: j.label(), Workload: j.WL.Name}
	defer func() {
		if r := recover(); r != nil {
			res.Panicked = true
			res.Insights = nil
			res.Err = fmt.Errorf("fleet: job %q panicked: %v\n%s", res.Name, r, stackSnippet())
		}
		res.Elapsed = time.Since(start)
		f.stats.record(res)
	}()

	var mp *core.ModulePrediction
	var err error
	if f.cfg.DisableCache {
		mp, err = f.tool.Predictor.PredictModule(j.Mod, j.Accel)
	} else {
		mp, res.CacheHit, err = f.cache.get(j.Mod, j.Accel, func() (*core.ModulePrediction, error) {
			return f.tool.Predictor.PredictModule(j.Mod, j.Accel)
		})
	}
	if err == nil {
		res.Insights, err = f.tool.AnalyzeWithPredictionContext(ctx, j.Mod, j.PS, j.WL, mp)
	}
	if res.Insights != nil {
		res.Lint = analysis.Summarize(res.Insights.Diagnostics)
		if sp := res.Insights.StateProfile; sp != nil {
			res.PayloadLoops = sp.PayloadLoops()
			for _, s := range sp.Structs {
				if s.PayloadKeyed {
					res.PayloadKeyedStructs++
				}
			}
		}
	}
	res.Err = err
	return res
}

// stackSnippet returns the first few KB of the panicking goroutine's
// stack — enough to locate the fault without flooding a Result (or a
// JSON error response) with a full trace.
func stackSnippet() []byte {
	s := debug.Stack()
	const maxBytes = 2048
	if len(s) > maxBytes {
		if i := bytes.LastIndexByte(s[:maxBytes], '\n'); i > 0 {
			s = s[:i]
		} else {
			s = s[:maxBytes]
		}
	}
	return s
}
