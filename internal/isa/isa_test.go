package isa

import "testing"

func TestRegionOrderingAndNames(t *testing.T) {
	order := []Region{LMEM, CLS, CTM, IMEM, EMEM}
	names := []string{"LMEM", "CLS", "CTM", "IMEM", "EMEM"}
	for i, r := range order {
		if r.String() != names[i] {
			t.Errorf("region %d name %q, want %q", i, r.String(), names[i])
		}
	}
	if NumRegions != 5 {
		t.Errorf("NumRegions = %d", NumRegions)
	}
}

func TestOpClassification(t *testing.T) {
	computeOps := []Op{OpImmed, OpALU, OpMulStep, OpDivStep, OpSpill, OpBr, OpBcc, OpNop}
	for _, op := range computeOps {
		if !op.IsCompute() {
			t.Errorf("%s should be compute", op)
		}
		if op.IsMem() {
			t.Errorf("%s should not be memory", op)
		}
	}
	for _, op := range []Op{OpMemRead, OpMemWrite} {
		if !op.IsMem() || op.IsCompute() {
			t.Errorf("%s misclassified", op)
		}
	}
	// Engines and libcalls are neither.
	for _, op := range []Op{OpCsum, OpCrc, OpLpm, OpHash, OpLibCall, OpSend, OpDrop, OpRet} {
		if op.IsCompute() || op.IsMem() {
			t.Errorf("%s misclassified", op)
		}
	}
}

func TestCyclesPositiveForCompute(t *testing.T) {
	for op := OpNop; op <= OpRet; op++ {
		if op.IsCompute() && op.Cycles() <= 0 {
			t.Errorf("%s has nonpositive cycles", op)
		}
	}
	if OpBcc.Cycles() <= OpALU.Cycles() {
		t.Error("branch should cost at least as much as an ALU op")
	}
}

func TestBlockSummarize(t *testing.T) {
	b := Block{Instrs: []Instr{
		{Op: OpImmed}, {Op: OpALU, Sub: "add"}, {Op: OpALU, Sub: "xor"},
		{Op: OpMemRead, Size: 4, Global: "g"},
		{Op: OpMemWrite, Size: 8, Global: "g"},
		{Op: OpLibCall, Sub: "map_find", Global: "m"},
		{Op: OpCrc},
		{Op: OpBcc},
	}}
	b.Summarize()
	if b.ComputeCount != 4 {
		t.Errorf("compute = %d, want 4", b.ComputeCount)
	}
	if b.MemCount != 2 {
		t.Errorf("mem = %d, want 2", b.MemCount)
	}
	if b.ComputeCycles != 1+1+1+2 {
		t.Errorf("cycles = %d, want 5", b.ComputeCycles)
	}
}

func TestProgramTotals(t *testing.T) {
	p := Program{Blocks: []Block{
		{Instrs: []Instr{{Op: OpALU}, {Op: OpMemRead, Size: 4}}},
		{Instrs: []Instr{{Op: OpALU}, {Op: OpALU}}},
	}}
	for i := range p.Blocks {
		p.Blocks[i].Summarize()
	}
	if p.TotalCompute() != 3 {
		t.Errorf("total compute = %d", p.TotalCompute())
	}
	if p.TotalMem() != 1 {
		t.Errorf("total mem = %d", p.TotalMem())
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpMemRead, Size: 4, Global: "flows"}
	if s := in.String(); s != "mem[read] @flows 4B" {
		t.Errorf("String() = %q", s)
	}
	in = Instr{Op: OpALU, Sub: "add"}
	if s := in.String(); s != "alu.add" {
		t.Errorf("String() = %q", s)
	}
}
