package experiments

import (
	"math"

	"clara/internal/click"
	"clara/internal/core"
	"clara/internal/ir"
	"clara/internal/ml"
	"clara/internal/niccc"
	"clara/internal/stats"
)

// figure8NFs are the elements Figure 8 plots.
var figure8NFs = []string{
	"tcpack", "udpipencap", "timefilter", "anonipaddr",
	"tcpresp", "forcetcp", "aggcounter", "tcpgen",
}

// Figure8 reproduces the instruction-prediction comparison: per-NF WMAPE
// of Clara's LSTM+FC against DNN, CNN, and AutoML baselines trained on the
// same synthesized corpus (§5.2).
func Figure8(ctx *Context) (*Table, error) {
	pred, err := ctx.Predictor()
	if err != nil {
		return nil, err
	}

	// Rebuild the training corpus for the baselines (same generator
	// settings as the predictor's).
	mods, err := click.Modules(click.Table2Order)
	if err != nil {
		return nil, err
	}
	nTrain := 320
	epochs := 0 // defaults
	if ctx.Cfg.Quick {
		nTrain = 60
		epochs = 6
	}
	trainMods, err := core.SynthTrainingModules(nTrain, core.CorpusProfile(mods), ctx.Cfg.Seed+1000)
	if err != nil {
		return nil, err
	}
	samples, err := core.BlockCorpus(trainMods, true)
	if err != nil {
		return nil, err
	}
	vocab := pred.Vocab

	// Sequence dataset (CNN) and bag-of-words dataset (DNN, AutoML).
	var seq []ml.SeqSample
	var bow [][]float64
	var bowY []float64
	for _, s := range samples {
		if len(s.Words) == 0 {
			continue
		}
		seq = append(seq, ml.SeqSample{Tokens: vocab.Encode(s.Words), Target: []float64{float64(s.Compute)}})
		bow = append(bow, core.BagOfWords(vocab, s.Words))
		bowY = append(bowY, float64(s.Compute))
	}
	// Feature selection for the tree-based AutoML candidates (TPOT also
	// reduces dimensionality): keep the 64 most frequent words + length.
	sel := topFeatures(bow, 64)
	reduce := func(x []float64) []float64 {
		out := make([]float64, len(sel))
		for i, j := range sel {
			out[i] = x[j]
		}
		return out
	}
	bowR := make([][]float64, len(bow))
	for i := range bow {
		bowR[i] = reduce(bow[i])
	}

	cnnEpochs, dnnEpochs := 30, 30
	if epochs > 0 {
		cnnEpochs, dnnEpochs = epochs, epochs
	}
	cnn, _ := ml.TrainCNN(seq, ml.CNNConfig{
		Vocab: vocab.Size(), Filters: 24, Epochs: cnnEpochs, Seed: ctx.Cfg.Seed + 11,
	})
	targets := make([][]float64, len(bowY))
	for i, v := range bowY {
		targets[i] = []float64{v}
	}
	dnn, _ := ml.TrainMLP(bow, targets, ml.MLPConfig{
		Layers: []int{len(bow[0]), 48, 24, 1}, Epochs: dnnEpochs,
		Seed: ctx.Cfg.Seed + 12, TargetScale: 10,
	})

	// AutoML (TPOT stand-in) on a subsample (CV over the full block corpus
	// with tree ensembles is disproportionate).
	autoN := len(bow)
	if autoN > 1000 {
		autoN = 1000
	}
	autoModel, autoRes, err := ml.AutoMLRegressor(bowR[:autoN], bowY[:autoN], 3, ctx.Cfg.Seed+13)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "figure8",
		Title:  "Instruction-prediction WMAPE: Clara vs DNN vs CNN vs AutoML",
		Header: []string{"NF", "Clara", "DNN", "CNN", "AutoML"},
	}
	sum := map[string][]float64{}
	memAccMin, memAccMax := 1.0, 0.0
	for _, name := range figure8NFs {
		m := click.Get(name).MustModule()
		prog, err := niccc.Compile(m, niccc.Options{})
		if err != nil {
			return nil, err
		}
		var truth, pClara, pDNN, pCNN, pAuto []float64
		for bi, b := range m.Handler().Blocks {
			gt := prog.Blocks[bi].ComputeCount
			if gt == 0 && len(b.Instrs) <= 1 {
				continue
			}
			words := ir.BlockWords(b, true)
			c, _ := pred.PredictBlock(b)
			truth = append(truth, float64(gt))
			pClara = append(pClara, c)
			x := core.BagOfWords(vocab, words)
			pDNN = append(pDNN, clampNonNeg(dnn.Predict(x)))
			pCNN = append(pCNN, cnn.Predict(vocab.Encode(words))[0])
			pAuto = append(pAuto, clampNonNeg(autoModel.Predict(reduce(x))))
		}
		wc := stats.WMAPE(truth, pClara)
		wd := stats.WMAPE(truth, pDNN)
		wn := stats.WMAPE(truth, pCNN)
		wa := stats.WMAPE(truth, pAuto)
		t.AddRow(name, f3(wc), f3(wd), f3(wn), f3(wa))
		sum["clara"] = append(sum["clara"], wc)
		sum["dnn"] = append(sum["dnn"], wd)
		sum["cnn"] = append(sum["cnn"], wn)
		sum["auto"] = append(sum["auto"], wa)

		res, err := pred.Evaluate(m)
		if err != nil {
			return nil, err
		}
		if res.MemAccuracy < memAccMin {
			memAccMin = res.MemAccuracy
		}
		if res.MemAccuracy > memAccMax {
			memAccMax = res.MemAccuracy
		}
	}
	t.AddRow("MEAN",
		f3(stats.Mean(sum["clara"])), f3(stats.Mean(sum["dnn"])),
		f3(stats.Mean(sum["cnn"])), f3(stats.Mean(sum["auto"])))
	t.Notef("paper: Clara WMAPE 10.74%% overall (6.0–22.3%% per NF), beating DNN/CNN/AutoML")
	t.Notef("memory-access count accuracy %s–%s (paper: 96.4%%–100%%)", pct(memAccMin), pct(memAccMax))
	t.Notef("AutoML selected pipeline: %s (CV MAE %.2f); paper: random-forest regression", autoRes.Pipeline, autoRes.CVScore)
	return t, nil
}

// topFeatures returns the indices of the k columns with the largest total
// mass (plus the final length column).
func topFeatures(X [][]float64, k int) []int {
	if len(X) == 0 {
		return nil
	}
	nf := len(X[0])
	mass := make([]float64, nf)
	for _, x := range X {
		for j, v := range x {
			mass[j] += v
		}
	}
	idx := make([]int, nf)
	for i := range idx {
		idx[i] = i
	}
	// Selection of top k by mass (stable for determinism).
	for i := 0; i < k && i < nf; i++ {
		best := i
		for j := i + 1; j < nf; j++ {
			if mass[idx[j]] > mass[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if k > nf {
		k = nf
	}
	out := append([]int(nil), idx[:k]...)
	out = append(out, nf-1) // length feature
	return out
}

func clampNonNeg(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// Figure8Ablation quantifies the vocabulary-compaction ablation (§6): the
// same LSTM trained on a raw-operand vocabulary.
func Figure8Ablation(ctx *Context) (*Table, error) {
	mods, err := click.Modules(click.Table2Order)
	if err != nil {
		return nil, err
	}
	prof := core.CorpusProfile(mods)
	n, ep := 120, 14
	if ctx.Cfg.Quick {
		n, ep = 40, 6
	}
	compact, err := core.TrainPredictor(core.PredictorConfig{
		TrainPrograms: n, Epochs: ep, CompactVocab: true, Seed: ctx.Cfg.Seed,
	}, prof)
	if err != nil {
		return nil, err
	}
	raw, err := core.TrainPredictor(core.PredictorConfig{
		TrainPrograms: n, Epochs: ep, CompactVocab: false, Seed: ctx.Cfg.Seed,
	}, prof)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "figure8-ablation",
		Title:  "Vocabulary compaction ablation (§6)",
		Header: []string{"NF", "compact-vocab WMAPE", "raw-vocab WMAPE"},
	}
	var wc, wr []float64
	for _, name := range figure8NFs {
		m := click.Get(name).MustModule()
		rc, err := compact.Evaluate(m)
		if err != nil {
			return nil, err
		}
		rr, err := raw.Evaluate(m)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, f3(rc.WMAPE), f3(rr.WMAPE))
		wc = append(wc, rc.WMAPE)
		wr = append(wr, rr.WMAPE)
	}
	t.AddRow("MEAN", f3(stats.Mean(wc)), f3(stats.Mean(wr)))
	t.Notef("compact vocabulary size %d vs raw %d", compact.Vocab.Size(), raw.Vocab.Size())
	t.Notef("paper §6: \"applying LSTM without vocabulary compaction shows much lower performance\"")
	return t, nil
}

// ReversePortAblation quantifies the value of reverse porting (§3.3):
// when the LSTM must also absorb framework library costs (instead of
// taking them, exactly, from the reverse-ported implementations), its
// prediction error grows.
func ReversePortAblation(ctx *Context) (*Table, error) {
	mods, err := click.Modules(click.Table2Order)
	if err != nil {
		return nil, err
	}
	prof := core.CorpusProfile(mods)
	n, ep := 120, 14
	if ctx.Cfg.Quick {
		n, ep = 40, 6
	}
	withRP, err := core.TrainPredictor(core.PredictorConfig{
		TrainPrograms: n, Epochs: ep, CompactVocab: true, Seed: ctx.Cfg.Seed,
	}, prof)
	if err != nil {
		return nil, err
	}
	withoutRP, err := core.TrainPredictor(core.PredictorConfig{
		TrainPrograms: n, Epochs: ep, CompactVocab: true, PredictAPI: true, Seed: ctx.Cfg.Seed,
	}, prof)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "reverse-port-ablation",
		Title:  "Reverse porting ablation (§3.3): exact library costs vs predicting them",
		Header: []string{"NF", "with reverse porting", "without (LSTM predicts API)"},
	}
	// Both configurations are scored on the same quantity — the block's
	// total core instructions *including* library routines — so the
	// comparison is apples-to-apples: reverse porting contributes exact
	// API counts, the ablation must predict them.
	var a, b []float64
	for _, name := range figure8NFs {
		m := click.Get(name).MustModule()
		prog, err := niccc.Compile(m, niccc.Options{})
		if err != nil {
			return nil, err
		}
		var truth, predRP, predAbl []float64
		for bi, blk := range m.Handler().Blocks {
			api := 0
			for _, in := range blk.Instrs {
				if in.Op == ir.OpCall {
					if n, ok := niccc.APIInstrCount(in.Callee, niccc.AccelConfig{}); ok {
						api += n
					}
				}
			}
			gt := prog.Blocks[bi].ComputeCount + api
			if gt == 0 && len(blk.Instrs) <= 1 {
				continue
			}
			cRP, _ := withRP.PredictBlock(blk)
			cAbl, _ := withoutRP.PredictBlock(blk)
			truth = append(truth, float64(gt))
			predRP = append(predRP, cRP+float64(api)) // exact reverse-ported API
			predAbl = append(predAbl, cAbl)           // must cover API itself
		}
		wa := stats.WMAPE(truth, predRP)
		wb := stats.WMAPE(truth, predAbl)
		t.AddRow(name, f3(wa), f3(wb))
		a = append(a, wa)
		b = append(b, wb)
	}
	t.AddRow("MEAN", f3(stats.Mean(a)), f3(stats.Mean(b)))
	t.Notef("reverse porting substitutes exact library instruction counts for learned ones (§3.3)")
	return t, nil
}
