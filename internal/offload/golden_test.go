package offload

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"clara/internal/nicsim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSeed and goldenRounds fix the golden trajectories. 96 rounds is
// long enough that the convergence story is visible inside the goldens
// themselves: insight converges in round 1 on every scenario, classic
// dynamic needs ~64 rounds on zipf/synflood, static never converges
// there.
const (
	goldenSeed   = 7
	goldenRounds = 96
)

// goldenConfig builds the pinned configuration for one policy × scenario
// cell: capacities derived from the default hardware model and the
// nominal NF prediction, baseline policies from the hand-set defaults,
// the insight policy from the full seeding path.
func goldenConfig(sc Scenario, kind PolicyKind) Config {
	p := nicsim.DefaultParams()
	caps := DeriveCapacities(p, NominalPrediction())
	var pol PolicyConfig
	if kind == PolicyInsight {
		_, pol = SeedFromPrediction(NominalPrediction(), p, sc)
	} else {
		pol = BaselinePolicy(kind, sc)
	}
	return Config{Scenario: sc, Capacity: caps, Policy: pol, Rounds: goldenRounds, Seed: goldenSeed}
}

// TestSimulateGolden pins the NDJSON trajectory of every policy ×
// scenario cell byte-for-byte against testdata/*.golden. Run with
// -update to regenerate after an intentional simulator change; the diff
// of the goldens then documents exactly how trajectories moved.
func TestSimulateGolden(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, kind := range []PolicyKind{PolicyStatic, PolicyDynamic, PolicyInsight} {
			sc, kind := sc, kind
			name := fmt.Sprintf("sim_%s_%s", sc.Name, kind)
			t.Run(name, func(t *testing.T) {
				traj, err := Simulate(goldenConfig(sc, kind))
				if err != nil {
					t.Fatal(err)
				}
				got := traj.NDJSON()
				path := filepath.Join("testdata", name+".golden")
				if *updateGolden {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("trajectory drifted from %s (run with -update if intentional)", path)
				}
			})
		}
	}
}

// TestGoldenConvergenceOrdering pins the PR's headline claim directly:
// the insight-seeded policy reaches steady state (drop rate <= 1%)
// strictly earlier than both the static and the classic dynamic baseline
// on the zipf and synflood scenarios, and no later than them on
// elephant/mice. -1 (never converged) orders after every real round.
func TestGoldenConvergenceOrdering(t *testing.T) {
	conv := func(sc Scenario, kind PolicyKind) int {
		traj, err := Simulate(goldenConfig(sc, kind))
		if err != nil {
			t.Fatal(err)
		}
		c := traj.ConvergenceRound(DefaultConvergenceTarget)
		if c == -1 {
			return goldenRounds + 1
		}
		return c
	}
	for _, sc := range Scenarios() {
		ins := conv(sc, PolicyInsight)
		dyn := conv(sc, PolicyDynamic)
		sta := conv(sc, PolicyStatic)
		t.Logf("%s: insight=%d dynamic=%d static=%d", sc.Name, ins, dyn, sta)
		strict := sc.Name != "elephantmice"
		if strict && (ins >= dyn || ins >= sta) {
			t.Errorf("%s: insight (round %d) must converge strictly before dynamic (%d) and static (%d)",
				sc.Name, ins, dyn, sta)
		}
		if !strict && (ins > dyn || ins > sta) {
			t.Errorf("%s: insight (round %d) must converge no later than dynamic (%d) and static (%d)",
				sc.Name, ins, dyn, sta)
		}
	}
}
