package ml

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"clara/internal/ml/vek"
)

// SeqSample is one training pair for sequence models: an encoded
// instruction sequence (vocabulary indices) and its regression targets
// (e.g. [compute instructions, memory instructions]).
type SeqSample struct {
	Tokens []int
	Target []float64
}

// LSTMConfig configures the LSTM+FC model of §3.2 (Figure 6).
type LSTMConfig struct {
	Vocab       int
	Hidden      int
	Out         int
	LR          float64
	Epochs      int
	Clip        float64
	TargetScale float64 // targets are divided by this during training
	Seed        int64
	// Batch is the number of samples per optimizer step. 0 or 1 keeps the
	// original per-sample update; >1 accumulates a minibatch gradient
	// (summed, not averaged — Adam normalizes scale away).
	Batch int
	// Workers is the number of goroutines sharing each minibatch. 0 means
	// GOMAXPROCS. Results are bit-identical for any worker count: each
	// batch slot accumulates into its own gradient buffer and the buffers
	// are reduced in slot order, so no float ever depends on scheduling.
	Workers int
}

func (c LSTMConfig) norm() LSTMConfig {
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Out == 0 {
		c.Out = 1
	}
	if c.LR == 0 {
		c.LR = 0.004
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.Clip == 0 {
		c.Clip = 5
	}
	if c.TargetScale == 0 {
		c.TargetScale = 10
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	return c
}

// LSTM is a single-layer LSTM over one-hot tokens with a linear read-out
// from the final hidden state. One-hot input makes the input projection a
// per-token row lookup, which is exactly what the paper's compacted
// vocabulary enables.
type LSTM struct {
	cfg    LSTMConfig
	params []float64
	// offsets into params
	oWx, oWh, oB, oWo, oBo int
}

// NewLSTM allocates a randomly initialized model.
func NewLSTM(cfg LSTMConfig) *LSTM {
	cfg = cfg.norm()
	V, H, D := cfg.Vocab, cfg.Hidden, cfg.Out
	m := &LSTM{cfg: cfg}
	m.oWx = 0
	m.oWh = m.oWx + V*4*H
	m.oB = m.oWh + H*4*H
	m.oWo = m.oB + 4*H
	m.oBo = m.oWo + H*D
	m.params = make([]float64, m.oBo+D)
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	randInit(rng, m.params[m.oWx:m.oWh], 0.25)
	randInit(rng, m.params[m.oWh:m.oB], 1/math.Sqrt(float64(H)))
	randInit(rng, m.params[m.oWo:m.oBo], 1/math.Sqrt(float64(H)))
	// Forget-gate bias starts positive (standard trick for gradient flow).
	b := m.params[m.oB : m.oB+4*H]
	for i := H; i < 2*H; i++ {
		b[i] = 1
	}
	return m
}

// step state kept for BPTT.
type lstmStep struct {
	tok        int
	i, f, g, o []float64
	c, tc, h   []float64
}

// lstmScratch holds every temporary one forward+backward pass needs.
// Not goroutine-safe; Predict borrows one from a pool, trainers keep one
// per worker. A forward Reset()s the arena, so step state from the
// previous sample dies there; backward Takes more from the same arena
// without resetting (the steps it walks live in it).
type lstmScratch struct {
	ar    vek.Arena
	steps []lstmStep
}

var lstmScratchPool = sync.Pool{New: func() any { return new(lstmScratch) }}

func (m *LSTM) forwardScratch(sc *lstmScratch, tokens []int) ([]lstmStep, []float64) {
	H, D := m.cfg.Hidden, m.cfg.Out
	p := m.params
	sc.ar.Reset()
	if cap(sc.steps) < len(tokens) {
		sc.steps = make([]lstmStep, len(tokens))
	}
	steps := sc.steps[:len(tokens)]
	hPrev := sc.ar.Take(H)
	cPrev := sc.ar.Take(H)
	z := sc.ar.Take(4 * H)
	for t, tok := range tokens {
		wx := p[m.oWx+tok*4*H : m.oWx+(tok+1)*4*H]
		copy(z, wx)
		vek.Add(p[m.oB:m.oB+4*H], z)
		vek.GemvTAdd(z, p[m.oWh:m.oB], hPrev, H, 4*H)
		st := lstmStep{
			tok: tok,
			i:   sc.ar.Take(H), f: sc.ar.Take(H),
			g: sc.ar.Take(H), o: sc.ar.Take(H),
			c: sc.ar.Take(H), tc: sc.ar.Take(H), h: sc.ar.Take(H),
		}
		for j := 0; j < H; j++ {
			st.i[j] = sigmoid(z[j])
			st.f[j] = sigmoid(z[H+j])
			st.g[j] = math.Tanh(z[2*H+j])
			st.o[j] = sigmoid(z[3*H+j])
			st.c[j] = st.f[j]*cPrev[j] + st.i[j]*st.g[j]
			st.tc[j] = math.Tanh(st.c[j])
			st.h[j] = st.o[j] * st.tc[j]
		}
		steps[t] = st
		hPrev, cPrev = st.h, st.c
	}
	y := sc.ar.Take(D)
	for d := 0; d < D; d++ {
		y[d] = p[m.oBo+d]
		for j := 0; j < H; j++ {
			y[d] += p[m.oWo+j*D+d] * hPrev[j]
		}
	}
	return steps, y
}

// forward keeps the historical signature (gradient-check tests call it
// directly); fresh scratch means the returned slices stay valid.
func (m *LSTM) forward(tokens []int) ([]lstmStep, []float64) {
	return m.forwardScratch(new(lstmScratch), tokens)
}

// Predict returns the model outputs rescaled to target units, clamped to
// be nonnegative (instruction counts).
func (m *LSTM) Predict(tokens []int) []float64 {
	out := m.PredictRaw(tokens)
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// PredictRaw returns the model outputs rescaled to target units without
// clamping (for signed targets such as residuals). Safe for concurrent
// use: scratch comes from a pool, one per in-flight call.
func (m *LSTM) PredictRaw(tokens []int) []float64 {
	if len(tokens) == 0 {
		return make([]float64, m.cfg.Out)
	}
	sc := lstmScratchPool.Get().(*lstmScratch)
	_, y := m.forwardScratch(sc, tokens)
	out := make([]float64, len(y))
	for i := range y {
		out[i] = y[i] * m.cfg.TargetScale
	}
	lstmScratchPool.Put(sc)
	return out
}

// backwardScratch accumulates gradients for one sample; returns the loss.
// It Takes from the same arena that holds steps, so it must run before
// the next forwardScratch on that scratch.
func (m *LSTM) backwardScratch(sc *lstmScratch, steps []lstmStep, y, target []float64, grads []float64) float64 {
	H, D := m.cfg.Hidden, m.cfg.Out
	p := m.params
	T := len(steps)
	dh := sc.ar.Take(H)
	dc := sc.ar.Take(H)

	loss := 0.0
	dy := sc.ar.Take(D)
	hT := steps[T-1].h
	for d := 0; d < D; d++ {
		diff := y[d] - target[d]/m.cfg.TargetScale
		loss += 0.5 * diff * diff
		dy[d] = diff
		grads[m.oBo+d] += diff
		for j := 0; j < H; j++ {
			grads[m.oWo+j*D+d] += diff * hT[j]
			dh[j] += p[m.oWo+j*D+d] * diff
		}
	}

	dz := sc.ar.Take(4 * H)
	for t := T - 1; t >= 0; t-- {
		st := &steps[t]
		var cPrev, hPrev []float64
		if t > 0 {
			cPrev = steps[t-1].c
			hPrev = steps[t-1].h
		}
		for j := 0; j < H; j++ {
			doj := dh[j] * st.tc[j]
			dcj := dc[j] + dh[j]*st.o[j]*(1-st.tc[j]*st.tc[j])
			dij := dcj * st.g[j]
			dgj := dcj * st.i[j]
			dfj := 0.0
			if cPrev != nil {
				dfj = dcj * cPrev[j]
			}
			dz[j] = dij * st.i[j] * (1 - st.i[j])
			dz[H+j] = dfj * st.f[j] * (1 - st.f[j])
			dz[2*H+j] = dgj * (1 - st.g[j]*st.g[j])
			dz[3*H+j] = doj * st.o[j] * (1 - st.o[j])
			dc[j] = dcj * st.f[j]
		}
		// Parameter gradients.
		gw := grads[m.oWx+st.tok*4*H : m.oWx+(st.tok+1)*4*H]
		vek.Add(dz, gw)
		vek.Add(dz, grads[m.oB:m.oB+4*H])
		vek.Zero(dh)
		if hPrev != nil {
			for j := 0; j < H; j++ {
				if hPrev[j] != 0 {
					vek.Axpy(hPrev[j], dz, grads[m.oWh+j*4*H:m.oWh+(j+1)*4*H])
				}
			}
			vek.Gemv(dh, p[m.oWh:m.oB], dz, H, 4*H)
		}
	}
	return loss
}

// backward keeps the historical signature for the gradient-check tests.
func (m *LSTM) backward(steps []lstmStep, y, target []float64, grads []float64) float64 {
	return m.backwardScratch(new(lstmScratch), steps, y, target, grads)
}

// TrainLSTM trains a model on the samples and reports the final mean
// training loss (scaled units).
func TrainLSTM(samples []SeqSample, cfg LSTMConfig) (*LSTM, float64) {
	m, loss, _ := TrainLSTMContext(context.Background(), samples, cfg)
	return m, loss
}

// TrainLSTMContext is TrainLSTM with cancellation: the context is checked
// once per epoch (the unit of long-running work), so a canceled training
// request stops within one pass over the corpus. On cancellation the
// partially-trained model is returned alongside the context's error.
//
// With cfg.Batch > 1 the epoch is walked in minibatches whose samples are
// processed by cfg.Workers goroutines. Each batch slot owns a private
// gradient buffer; after the batch the buffers are reduced in slot order
// and one optimizer step is taken. The reduction order — and therefore
// every trained weight — is a function of (seed, batch) only, never of
// the worker count or goroutine schedule.
func TrainLSTMContext(ctx context.Context, samples []SeqSample, cfg LSTMConfig) (*LSTM, float64, error) {
	m := NewLSTM(cfg)
	cfg = m.cfg
	opt := NewAdam(len(m.params), cfg.LR, cfg.Clip)
	B := cfg.Batch
	if B > len(samples) && len(samples) > 0 {
		B = len(samples)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > B {
		workers = B
	}

	grads := make([]float64, len(m.params))
	slots := make([][]float64, B)
	slotLoss := make([]float64, B)
	slotUsed := make([]bool, B)
	for b := range slots {
		slots[b] = make([]float64, len(m.params))
	}
	scratch := make([]*lstmScratch, workers)
	for w := range scratch {
		scratch[w] = new(lstmScratch)
	}

	// runSlot computes slot b's gradient for sample s on worker scratch sc.
	runSlot := func(b int, s SeqSample, sc *lstmScratch) {
		vek.Zero(slots[b])
		slotLoss[b] = 0
		slotUsed[b] = false
		if len(s.Tokens) == 0 {
			return
		}
		steps, y := m.forwardScratch(sc, s.Tokens)
		slotLoss[b] = m.backwardScratch(sc, steps, y, s.Target, slots[b])
		slotUsed[b] = true
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 202))
	lastLoss := math.Inf(1)
	for e := 0; e < cfg.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return m, lastLoss, err
		}
		perm := rng.Perm(len(samples))
		total := 0.0
		for start := 0; start < len(perm); start += B {
			batch := perm[start:min(start+B, len(perm))]
			nw := workers
			if nw > len(batch) {
				nw = len(batch)
			}
			if nw <= 1 {
				for b, si := range batch {
					runSlot(b, samples[si], scratch[0])
				}
			} else {
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < nw; w++ {
					wg.Add(1)
					go func(sc *lstmScratch) {
						defer wg.Done()
						for {
							b := int(next.Add(1)) - 1
							if b >= len(batch) {
								return
							}
							runSlot(b, samples[batch[b]], sc)
						}
					}(scratch[w])
				}
				wg.Wait()
			}
			// Fixed-order reduce: slot 0..n-1, independent of who computed what.
			vek.Zero(grads)
			any := false
			for b := range batch {
				if !slotUsed[b] {
					continue
				}
				vek.Add(slots[b], grads)
				total += slotLoss[b]
				any = true
			}
			if any {
				opt.Step(m.params, grads)
			}
		}
		lastLoss = total / float64(len(samples))
	}
	return m, lastLoss, nil
}
