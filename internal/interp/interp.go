// Package interp executes IR modules over packets. It serves two roles
// from the paper:
//
//   - Host execution: Clara runs the (reverse-ported) Click NF on the host
//     with a workload to collect stateful access frequencies (§4.3, §4.4).
//     Host mode uses elastic, linear-probing map semantics like Click's
//     HashMap.
//
//   - NIC-semantics execution: the SmartNIC simulator (internal/nicsim)
//     needs functional execution with *Netronome-style* data structures —
//     fixed bucket arrays, no dynamic growth, deletions that only mark
//     entries invalid (§3.3). NIC mode provides those semantics and reports
//     per-call probe counts so the simulator can charge memory traffic.
//
// The interpreter precompiles IR into a flat internal form so per-packet
// execution involves no map lookups or allocation.
package interp

import (
	"fmt"

	"clara/internal/ir"
	"clara/internal/traffic"
)

// MapMode selects the stateful data-structure semantics.
type MapMode uint8

// Map semantics.
const (
	HostMap MapMode = iota // elastic, linear probing (Click HashMap)
	NICMap                 // fixed buckets, no growth (Netronome library)
)

// BucketSlots is the number of entries per NIC map bucket.
const BucketSlots = 4

// Hooks receive execution events; any field may be nil. Block indices refer
// to the handler function's CFG.
type Hooks struct {
	// OnBlock fires when a basic block begins executing.
	OnBlock func(block int)
	// OnState fires for each stateful global access (GLoad/GStore); addr
	// is the element index for arrays (0 for scalars).
	OnState func(global string, store bool, addr uint64, block int)
	// OnLocal fires for each local slot access (stateless traffic).
	OnLocal func(store bool, block int)
	// OnCompute fires once per block with the count of compute
	// instructions retired in that visit.
	OnCompute func(block, n int)
	// OnAPI fires for each framework API call. probes carries the call's
	// dynamic work: slot probes for map APIs, bytes processed for
	// checksum/CRC, 0 otherwise. addr localizes the access (bucket base
	// slot for maps) for cache modeling.
	OnAPI func(name, global string, probes int, addr uint64, block int)
}

// Route is one LPM rule for the lpm_hw engine.
type Route struct {
	Prefix uint32
	Len    int // prefix length in bits, 0..32
	Port   uint32
}

// Config configures a Machine.
type Config struct {
	Mode MapMode
	// Fuel bounds interpreted steps per packet (0 = default).
	Fuel int
	// LPMTable backs the lpm_hw accelerator.
	LPMTable []Route
	// Seed seeds the rand32 intrinsic.
	Seed uint64
}

const defaultFuel = 1 << 20

// ErrFuel is returned when a packet exceeds the step budget.
var ErrFuel = fmt.Errorf("interp: fuel exhausted (runaway loop?)")

// API opcodes (internal dense encoding of the intrinsics).
const (
	apiPktLen = iota
	apiEthType
	apiIPProto
	apiIPSrc
	apiIPDst
	apiIPTTL
	apiIPLen
	apiIPHL
	apiTCPSport
	apiTCPDport
	apiTCPSeq
	apiTCPAck
	apiTCPFlags
	apiTCPOff
	apiUDPSport
	apiUDPDport
	apiPayload
	apiPayloadLen
	apiTime
	apiSetIPSrc
	apiSetIPDst
	apiSetIPTTL
	apiSetTCPSport
	apiSetTCPDport
	apiSetTCPSeq
	apiSetTCPAck
	apiSetTCPFlags
	apiSetUDPSport
	apiSetUDPDport
	apiSetPayload
	apiCsumUpdate
	apiSend
	apiDrop
	apiHash32
	apiRand32
	apiEwmaRate
	apiCRC32HW
	apiLPMHW
	apiMapFind
	apiMapContains
	apiMapInsert
	apiMapRemove
	apiMapSize
	apiVecPush
	apiVecGet
	apiVecSet
	apiVecDelete
	apiVecLen
)

var apiCodes = map[string]int{
	"pkt_len": apiPktLen, "pkt_eth_type": apiEthType, "pkt_ip_proto": apiIPProto,
	"pkt_ip_src": apiIPSrc, "pkt_ip_dst": apiIPDst, "pkt_ip_ttl": apiIPTTL,
	"pkt_ip_len": apiIPLen, "pkt_ip_hl": apiIPHL,
	"pkt_tcp_sport": apiTCPSport, "pkt_tcp_dport": apiTCPDport,
	"pkt_tcp_seq": apiTCPSeq, "pkt_tcp_ack": apiTCPAck,
	"pkt_tcp_flags": apiTCPFlags, "pkt_tcp_off": apiTCPOff,
	"pkt_udp_sport": apiUDPSport, "pkt_udp_dport": apiUDPDport,
	"pkt_payload": apiPayload, "pkt_payload_len": apiPayloadLen, "pkt_time": apiTime,
	"pkt_set_ip_src": apiSetIPSrc, "pkt_set_ip_dst": apiSetIPDst, "pkt_set_ip_ttl": apiSetIPTTL,
	"pkt_set_tcp_sport": apiSetTCPSport, "pkt_set_tcp_dport": apiSetTCPDport,
	"pkt_set_tcp_seq": apiSetTCPSeq, "pkt_set_tcp_ack": apiSetTCPAck,
	"pkt_set_tcp_flags": apiSetTCPFlags,
	"pkt_set_udp_sport": apiSetUDPSport, "pkt_set_udp_dport": apiSetUDPDport,
	"pkt_set_payload": apiSetPayload,
	"pkt_csum_update": apiCsumUpdate, "pkt_send": apiSend, "pkt_drop": apiDrop,
	"hash32": apiHash32, "rand32": apiRand32, "ewma_rate": apiEwmaRate,
	"crc32_hw": apiCRC32HW, "lpm_hw": apiLPMHW,
	"map_find": apiMapFind, "map_contains": apiMapContains,
	"map_insert": apiMapInsert, "map_remove": apiMapRemove, "map_size": apiMapSize,
	"vec_push": apiVecPush, "vec_get": apiVecGet, "vec_set": apiVecSet,
	"vec_delete": apiVecDelete, "vec_len": apiVecLen,
}

// argKind for compiled operands.
const (
	argConst = iota
	argVal
)

type cArg struct {
	kind uint8
	idx  int
	c    uint64
}

type cInstr struct {
	op     ir.Op
	pred   ir.Pred
	mask   uint64
	id     int
	args   []cArg
	slot   int
	gidx   int // index into machine global tables
	api    int
	t, f   int
	global string // retained for hooks
	callee string
}

type cBlock struct {
	instrs   []cInstr
	nCompute int
}

// mslot is one NIC-map slot.
type mslot struct {
	key   uint64
	val   uint64
	state uint8 // 0 free, 1 used, 2 invalid (deleted)
}

type nicMapState struct {
	slots   []mslot
	buckets int
	size    int
	// FailedInserts counts inserts dropped because a bucket was full —
	// the kind of behavioural divergence reverse porting exists to expose.
	failedInserts int
}

// vecState backs a Click-Vector-style global. In host mode the slice
// grows elastically and deletions shift; in NIC mode capacity is fixed and
// deletions tombstone (§3.3).
type vecState struct {
	vals  []uint64
	valid []bool // NIC mode only
	live  int
	nic   bool
	cap   int
	// dropped counts pushes refused by a full NIC vector.
	dropped int
}

type globalState struct {
	g *ir.Global
	// exactly one of these is active, by g.Kind
	scalar uint64
	array  []uint64
	hmap   map[uint64]uint64
	nmap   *nicMapState
	vec    *vecState
}

// Machine executes one module over packets.
type Machine struct {
	Mod    *ir.Module
	cfg    Config
	hooks  Hooks
	blocks []cBlock
	vals   []uint64
	slots  []uint64
	gl     []*globalState
	gidx   map[string]int
	rng    uint64
	pkt    *traffic.Packet
	fuel   int
	// ewma is the host-side double-precision rate average backing the
	// ewma_rate intrinsic (Click AverageCounter semantics).
	ewma float64

	// Steps is the cumulative interpreted instruction count.
	Steps uint64
}

// New compiles mod's handler for execution.
func New(mod *ir.Module, cfg Config) (*Machine, error) {
	f := mod.Handler()
	if f == nil {
		return nil, fmt.Errorf("interp: module %s has no handler", mod.Name)
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = defaultFuel
	}
	m := &Machine{
		Mod:  mod,
		cfg:  cfg,
		vals: make([]uint64, f.NumVals),
		slots: make([]uint64, func() int {
			if f.NSlots == 0 {
				return 1
			}
			return f.NSlots
		}()),
		gidx: make(map[string]int, len(mod.Globals)),
		rng:  cfg.Seed*2654435761 + 0x9E3779B97F4A7C15,
	}
	for i, g := range mod.Globals {
		st := &globalState{g: g}
		switch g.Kind {
		case ir.GArray:
			st.array = make([]uint64, g.Len)
		case ir.GMap:
			if cfg.Mode == HostMap {
				st.hmap = make(map[uint64]uint64)
			} else {
				buckets := g.Len / BucketSlots
				if buckets == 0 {
					buckets = 1
				}
				st.nmap = &nicMapState{slots: make([]mslot, buckets*BucketSlots), buckets: buckets}
			}
		case ir.GVec:
			st.vec = &vecState{nic: cfg.Mode == NICMap, cap: g.Len}
			if st.vec.nic {
				st.vec.vals = make([]uint64, g.Len)
				st.vec.valid = make([]bool, g.Len)
			}
		}
		m.gl = append(m.gl, st)
		m.gidx[g.Name] = i
	}
	m.blocks = make([]cBlock, len(f.Blocks))
	for bi, b := range f.Blocks {
		cb := &m.blocks[bi]
		for _, in := range b.Instrs {
			ci, err := m.compileInstr(in)
			if err != nil {
				return nil, fmt.Errorf("interp: %s: %w", mod.Name, err)
			}
			if in.Op.IsCompute() {
				cb.nCompute++
			}
			cb.instrs = append(cb.instrs, ci)
		}
	}
	return m, nil
}

// SetHooks installs execution hooks (may be called between packets).
func (m *Machine) SetHooks(h Hooks) { m.hooks = h }

func maskOf(ty ir.Type) uint64 {
	switch ty {
	case ir.Bool:
		return 1
	case ir.U8:
		return 0xff
	case ir.U16:
		return 0xffff
	case ir.U32:
		return 0xffffffff
	default:
		return ^uint64(0)
	}
}

func (m *Machine) compileArg(v ir.Value) (cArg, error) {
	switch v.Kind {
	case ir.VConst:
		return cArg{kind: argConst, c: uint64(v.Const) & maskOf(v.Ty)}, nil
	case ir.VInstr:
		return cArg{kind: argVal, idx: v.ID}, nil
	default:
		return cArg{}, fmt.Errorf("unsupported operand kind %d (params must be inlined)", v.Kind)
	}
}

func (m *Machine) compileInstr(in *ir.Instr) (cInstr, error) {
	ci := cInstr{
		op: in.Op, pred: in.Pred, mask: maskOf(in.Ty), id: in.ID,
		slot: in.Slot, t: in.True, f: in.False,
		global: in.Global, callee: in.Callee, gidx: -1, api: -1,
	}
	for _, a := range in.Args {
		ca, err := m.compileArg(a)
		if err != nil {
			return ci, err
		}
		ci.args = append(ci.args, ca)
	}
	if in.Op == ir.OpGLoad || in.Op == ir.OpGStore || (in.Op == ir.OpCall && in.Global != "") {
		gi, ok := m.gidx[in.Global]
		if !ok {
			return ci, fmt.Errorf("unknown global %q", in.Global)
		}
		ci.gidx = gi
	}
	if in.Op == ir.OpCall {
		code, ok := apiCodes[in.Callee]
		if !ok {
			return ci, fmt.Errorf("unknown framework API %q", in.Callee)
		}
		ci.api = code
	}
	return ci, nil
}

func (m *Machine) arg(a cArg) uint64 {
	if a.kind == argConst {
		return a.c
	}
	return m.vals[a.idx]
}

// RunPacket executes the handler for one packet. The packet's disposition
// fields are updated in place.
func (m *Machine) RunPacket(p *traffic.Packet) error {
	p.Reset()
	m.pkt = p
	m.fuel = m.cfg.Fuel
	bi := 0
	for {
		if m.hooks.OnBlock != nil {
			m.hooks.OnBlock(bi)
		}
		cb := &m.blocks[bi]
		if m.hooks.OnCompute != nil && cb.nCompute > 0 {
			m.hooks.OnCompute(bi, cb.nCompute)
		}
		next := -1
		for i := range cb.instrs {
			in := &cb.instrs[i]
			m.fuel--
			if m.fuel < 0 {
				return ErrFuel
			}
			m.Steps++
			switch in.op {
			case ir.OpAdd:
				m.vals[in.id] = (m.arg(in.args[0]) + m.arg(in.args[1])) & in.mask
			case ir.OpSub:
				m.vals[in.id] = (m.arg(in.args[0]) - m.arg(in.args[1])) & in.mask
			case ir.OpMul:
				m.vals[in.id] = (m.arg(in.args[0]) * m.arg(in.args[1])) & in.mask
			case ir.OpUDiv:
				d := m.arg(in.args[1])
				if d == 0 {
					m.vals[in.id] = in.mask // all-ones, like NIC firmware
				} else {
					m.vals[in.id] = (m.arg(in.args[0]) / d) & in.mask
				}
			case ir.OpURem:
				d := m.arg(in.args[1])
				if d == 0 {
					m.vals[in.id] = 0
				} else {
					m.vals[in.id] = (m.arg(in.args[0]) % d) & in.mask
				}
			case ir.OpAnd:
				m.vals[in.id] = m.arg(in.args[0]) & m.arg(in.args[1]) & in.mask
			case ir.OpOr:
				m.vals[in.id] = (m.arg(in.args[0]) | m.arg(in.args[1])) & in.mask
			case ir.OpXor:
				m.vals[in.id] = (m.arg(in.args[0]) ^ m.arg(in.args[1])) & in.mask
			case ir.OpShl:
				sh := m.arg(in.args[1]) & 63
				m.vals[in.id] = (m.arg(in.args[0]) << sh) & in.mask
			case ir.OpLShr:
				sh := m.arg(in.args[1]) & 63
				m.vals[in.id] = (m.arg(in.args[0]) >> sh) & in.mask
			case ir.OpNot:
				m.vals[in.id] = ^m.arg(in.args[0]) & in.mask
			case ir.OpZExt, ir.OpTrunc:
				m.vals[in.id] = m.arg(in.args[0]) & in.mask
			case ir.OpICmp:
				a, b := m.arg(in.args[0]), m.arg(in.args[1])
				var r bool
				switch in.pred {
				case ir.PredEQ:
					r = a == b
				case ir.PredNE:
					r = a != b
				case ir.PredULT:
					r = a < b
				case ir.PredULE:
					r = a <= b
				case ir.PredUGT:
					r = a > b
				case ir.PredUGE:
					r = a >= b
				}
				if r {
					m.vals[in.id] = 1
				} else {
					m.vals[in.id] = 0
				}
			case ir.OpLLoad:
				m.vals[in.id] = m.slots[in.slot]
				if m.hooks.OnLocal != nil {
					m.hooks.OnLocal(false, bi)
				}
			case ir.OpLStore:
				m.slots[in.slot] = m.arg(in.args[0]) & in.mask
				if m.hooks.OnLocal != nil {
					m.hooks.OnLocal(true, bi)
				}
			case ir.OpGLoad:
				g := m.gl[in.gidx]
				var idx uint64
				if g.g.Kind == ir.GScalar {
					m.vals[in.id] = g.scalar
				} else {
					idx = m.arg(in.args[0]) % uint64(len(g.array))
					m.vals[in.id] = g.array[idx]
				}
				if m.hooks.OnState != nil {
					m.hooks.OnState(in.global, false, idx, bi)
				}
			case ir.OpGStore:
				g := m.gl[in.gidx]
				v := m.arg(in.args[0]) & in.mask
				var idx uint64
				if g.g.Kind == ir.GScalar {
					g.scalar = v
				} else {
					idx = m.arg(in.args[1]) % uint64(len(g.array))
					g.array[idx] = v
				}
				if m.hooks.OnState != nil {
					m.hooks.OnState(in.global, true, idx, bi)
				}
			case ir.OpCall:
				if err := m.call(in, bi); err != nil {
					return err
				}
			case ir.OpBr:
				next = in.t
			case ir.OpCondBr:
				if m.arg(in.args[0]) != 0 {
					next = in.t
				} else {
					next = in.f
				}
			case ir.OpRet:
				return nil
			}
		}
		if next < 0 {
			return fmt.Errorf("interp: block %d fell through", bi)
		}
		bi = next
	}
}

func (m *Machine) emitAPI(name, global string, probes int, addr uint64, block int) {
	if m.hooks.OnAPI != nil {
		m.hooks.OnAPI(name, global, probes, addr, block)
	}
}
