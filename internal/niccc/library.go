// Package niccc is the simulated vendor compiler ("NFCC") for the NIC ISA.
// It is the stand-in for the closed-source, proprietary toolchain the paper
// treats as a black box: Clara never inspects this package's rules, it only
// observes (IR, compiled output) training pairs — exactly the interface the
// real Clara has to the real NFCC.
package niccc

import (
	"clara/internal/isa"
)

// AccelConfig selects which hardware engines a ported program uses. In
// "naive" ports everything runs in software on the cores; Clara's insights
// (algorithm identification, checksum offload) flip these on.
type AccelConfig struct {
	CsumEngine bool // ingress checksum engine (vs ~2200-cycle software loop)
	CRCEngine  bool // CRC accelerator honored for crc32_hw calls
	LPMEngine  bool // LPM accelerator honored for lpm_hw calls
	FlowCache  bool // accelerated flow-match cache in front of the cores
}

// PktMeta is the pseudo-global backing packet data; the simulator pins it
// to CTM, where the packet IO engine places packets.
const PktMeta = "__pkt"

// LibProfile is the fixed cost profile of one framework library routine as
// compiled by the vendor toolchain (the reverse-porting ground truth: Clara
// uses these counts directly instead of predicting them, §3.3).
type LibProfile struct {
	Instrs int // core compute instructions in the routine body
	Cycles int // core cycles for those instructions
	// PayloadReads is the number of packet-buffer (CTM) accesses the
	// routine performs per call (header/payload walks).
	PayloadReads int
	// PerProbeBytes is the stateful bytes touched per probe for map
	// routines (key+value+tag); the per-call probe count is dynamic.
	PerProbeBytes int
	// EngineCycles is the busy time on a hardware engine, if any.
	EngineCycles int
	Engine       isa.Op // engine op, OpNop if none
}

// Library maps framework API names to their NIC library profiles. Packet
// accessors are cheap register extractions; stateful map routines hash the
// key and then probe fixed bucket slots; software checksum is the
// 2000+-cycle loop the paper measures (§2).
var Library = map[string]LibProfile{
	// Header field reads: extract from the ingress metadata registers.
	"pkt_len": {Instrs: 1, Cycles: 1}, "pkt_eth_type": {Instrs: 2, Cycles: 2},
	"pkt_ip_proto": {Instrs: 2, Cycles: 2}, "pkt_ip_src": {Instrs: 2, Cycles: 2},
	"pkt_ip_dst": {Instrs: 2, Cycles: 2}, "pkt_ip_ttl": {Instrs: 2, Cycles: 2},
	"pkt_ip_len": {Instrs: 2, Cycles: 2}, "pkt_ip_hl": {Instrs: 2, Cycles: 2},
	"pkt_tcp_sport": {Instrs: 2, Cycles: 2}, "pkt_tcp_dport": {Instrs: 2, Cycles: 2},
	"pkt_tcp_seq": {Instrs: 2, Cycles: 2}, "pkt_tcp_ack": {Instrs: 2, Cycles: 2},
	"pkt_tcp_flags": {Instrs: 2, Cycles: 2}, "pkt_tcp_off": {Instrs: 2, Cycles: 2},
	"pkt_udp_sport": {Instrs: 2, Cycles: 2}, "pkt_udp_dport": {Instrs: 2, Cycles: 2},
	"pkt_payload_len": {Instrs: 1, Cycles: 1}, "pkt_time": {Instrs: 1, Cycles: 1},

	// Payload byte access touches the packet buffer in CTM.
	"pkt_payload":     {Instrs: 2, Cycles: 2, PayloadReads: 1},
	"pkt_set_payload": {Instrs: 2, Cycles: 2, PayloadReads: 1},

	// Header writes: modify metadata registers, flushed at egress.
	"pkt_set_ip_src": {Instrs: 2, Cycles: 2}, "pkt_set_ip_dst": {Instrs: 2, Cycles: 2},
	"pkt_set_ip_ttl":    {Instrs: 2, Cycles: 2},
	"pkt_set_tcp_sport": {Instrs: 2, Cycles: 2}, "pkt_set_tcp_dport": {Instrs: 2, Cycles: 2},
	"pkt_set_tcp_seq": {Instrs: 2, Cycles: 2}, "pkt_set_tcp_ack": {Instrs: 2, Cycles: 2},
	"pkt_set_tcp_flags": {Instrs: 2, Cycles: 2},
	"pkt_set_udp_sport": {Instrs: 2, Cycles: 2}, "pkt_set_udp_dport": {Instrs: 2, Cycles: 2},

	// Software checksum: walk the header+payload and fold. The paper's
	// motivating number: 2000+ cycles in software, ~300 via the ingress
	// engine.
	"csum_sw": {Instrs: 560, Cycles: 2240, PayloadReads: 24},
	"csum_hw": {Instrs: 2, Cycles: 2, EngineCycles: 300, Engine: isa.OpCsum},

	// Engines.
	"hash32":   {Instrs: 2, Cycles: 2, EngineCycles: 18, Engine: isa.OpHash},
	"crc32_hw": {Instrs: 3, Cycles: 3, EngineCycles: 40, Engine: isa.OpCrc},
	"lpm_hw":   {Instrs: 3, Cycles: 3, EngineCycles: 55, Engine: isa.OpLpm},

	"rand32": {Instrs: 3, Cycles: 3},

	// Soft-float EWMA: the cores have no FPU, so the toolchain links the
	// software double-precision multiply/add emulation routines.
	"ewma_rate": {Instrs: 170, Cycles: 680},

	"pkt_send": {Instrs: 2, Cycles: 2},
	"pkt_drop": {Instrs: 1, Cycles: 1},

	// Stateful map library: hash + fixed-bucket probing. Per-probe memory
	// traffic (17 bytes: 8B key + 8B value + tag, rounded by the memory
	// unit) is charged dynamically by the simulator via interp probes.
	"map_find":     {Instrs: 14, Cycles: 16, PerProbeBytes: 17},
	"map_contains": {Instrs: 12, Cycles: 14, PerProbeBytes: 17},
	"map_insert":   {Instrs: 18, Cycles: 20, PerProbeBytes: 17},
	"map_remove":   {Instrs: 13, Cycles: 15, PerProbeBytes: 17},
	"map_size":     {Instrs: 2, Cycles: 2},

	// Vector library: NIC-side vectors are fixed slot arrays with a
	// validity tag; pushes scan for a free slot, deletes tombstone.
	"vec_push":   {Instrs: 10, Cycles: 12, PerProbeBytes: 9},
	"vec_get":    {Instrs: 6, Cycles: 7, PerProbeBytes: 9},
	"vec_set":    {Instrs: 6, Cycles: 7, PerProbeBytes: 9},
	"vec_delete": {Instrs: 7, Cycles: 8, PerProbeBytes: 9},
	"vec_len":    {Instrs: 2, Cycles: 2},
}

// LowerCall returns the NIC instruction sequence for a framework API call.
// global is the stateful target ("" for stateless APIs).
func LowerCall(callee, global string, accel AccelConfig) []isa.Instr {
	name := callee
	switch callee {
	case "pkt_csum_update":
		if accel.CsumEngine {
			name = "csum_hw"
		} else {
			name = "csum_sw"
		}
	case "crc32_hw":
		if !accel.CRCEngine {
			// Without the engine enabled the toolchain links the software
			// fallback: a byte-wise table CRC (the same cost a procedural
			// implementation pays).
			return []isa.Instr{{Op: isa.OpLibCall, Sub: "crc32_sw", Global: PktMeta}}
		}
	case "lpm_hw":
		if !accel.LPMEngine {
			return []isa.Instr{{Op: isa.OpLibCall, Sub: "lpm_sw"}}
		}
	}
	out := []isa.Instr{{Op: isa.OpLibCall, Sub: name, Global: global}}
	if p, ok := Library[name]; ok && p.Engine != isa.OpNop {
		out = append(out, isa.Instr{Op: p.Engine})
	}
	switch callee {
	case "pkt_send":
		out = append(out, isa.Instr{Op: isa.OpSend})
	case "pkt_drop":
		out = append(out, isa.Instr{Op: isa.OpDrop})
	}
	return out
}

// Software fallbacks for engine calls when the accelerator is not used.
// These costs are per *call*; the dominant term scales with payload length
// and is charged dynamically by the simulator.
var SoftwareFallbacks = map[string]LibProfile{
	"crc32_sw": {Instrs: 30, Cycles: 30, PayloadReads: 2}, // + ~6 cycles/byte at runtime
	"lpm_sw":   {Instrs: 26, Cycles: 28},                  // + per-node trie walk at runtime
}

// Profile returns the cost profile for a compiled libcall Sub name.
func Profile(sub string) (LibProfile, bool) {
	if p, ok := Library[sub]; ok {
		return p, true
	}
	p, ok := SoftwareFallbacks[sub]
	return p, ok
}

// APIInstrCount returns the exact core instruction count the library
// routine compiles to, used by reverse porting (§3.3) in place of learned
// prediction. The bool reports whether the API is known.
func APIInstrCount(callee string, accel AccelConfig) (int, bool) {
	seq := LowerCall(callee, "", accel)
	total := 0
	for _, in := range seq {
		if in.Op == isa.OpLibCall {
			p, ok := Profile(in.Sub)
			if !ok {
				return 0, false
			}
			total += p.Instrs
		} else if in.Op.IsCompute() {
			total++
		}
	}
	return total, true
}
