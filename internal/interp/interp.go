// Package interp executes IR modules over packets. It serves two roles
// from the paper:
//
//   - Host execution: Clara runs the (reverse-ported) Click NF on the host
//     with a workload to collect stateful access frequencies (§4.3, §4.4).
//     Host mode uses elastic, linear-probing map semantics like Click's
//     HashMap.
//
//   - NIC-semantics execution: the SmartNIC simulator (internal/nicsim)
//     needs functional execution with *Netronome-style* data structures —
//     fixed bucket arrays, no dynamic growth, deletions that only mark
//     entries invalid (§3.3). NIC mode provides those semantics and reports
//     per-call probe counts so the simulator can charge memory traffic.
//
// The interpreter precompiles IR into a flat internal form so per-packet
// execution involves no map lookups or allocation. Compiled programs are
// immutable and shared: a bounded cache keyed by the module's content
// hash (ir.Fingerprint, the same key the fleet prediction cache and the
// cluster coordinator's routing use) means a fleet analyzing the same NF
// under many workloads — or a serving worker receiving the same source
// in many requests — compiles it once. Constants are pooled into the
// tail of the value array at compile time, so every operand read is one
// unconditional slice index, and fuel/step accounting is charged per
// basic block instead of per instruction (blocks always retire fully —
// the terminator is the last instruction — so counts stay exact).
//
// On top of the flat form sits a second, direct-threaded backend
// (compile.go, program.go): each block is lowered once into a sequence
// of fused Go closures, so per-packet execution runs no opcode switch at
// all. The threaded backend is observationally identical to the
// reference switch loop — Steps, fuel, counters, and hook traces are
// bit-for-bit the same — and Config.Backend (or SetDefaultBackend)
// selects between them.
package interp

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"

	"clara/internal/ir"
	"clara/internal/traffic"
)

// MapMode selects the stateful data-structure semantics.
type MapMode uint8

// Map semantics.
const (
	HostMap MapMode = iota // elastic, linear probing (Click HashMap)
	NICMap                 // fixed buckets, no growth (Netronome library)
)

// BucketSlots is the number of entries per NIC map bucket.
const BucketSlots = 4

// Hooks receive execution events; any field may be nil. Block indices refer
// to the handler function's CFG.
type Hooks struct {
	// OnBlock fires when a basic block begins executing.
	OnBlock func(block int)
	// OnState fires for each stateful global access (GLoad/GStore); addr
	// is the element index for arrays (0 for scalars).
	OnState func(global string, store bool, addr uint64, block int)
	// OnLocal fires for each local slot access (stateless traffic).
	OnLocal func(store bool, block int)
	// OnCompute fires once per block with the count of compute
	// instructions retired in that visit.
	OnCompute func(block, n int)
	// OnAPI fires for each framework API call. probes carries the call's
	// dynamic work: slot probes for map APIs, bytes processed for
	// checksum/CRC, 0 otherwise. addr localizes the access (bucket base
	// slot for maps) for cache modeling.
	OnAPI func(name, global string, probes int, addr uint64, block int)
}

// Route is one LPM rule for the lpm_hw engine.
type Route struct {
	Prefix uint32
	Len    int // prefix length in bits, 0..32
	Port   uint32
}

// Config configures a Machine.
type Config struct {
	Mode MapMode
	// Fuel bounds interpreted steps per packet (0 = default).
	Fuel int
	// LPMTable backs the lpm_hw accelerator.
	LPMTable []Route
	// Seed seeds the rand32 intrinsic.
	Seed uint64
	// Backend selects the execution engine; BackendAuto (the zero value)
	// uses the process default (see SetDefaultBackend).
	Backend Backend
}

const defaultFuel = 1 << 20

// ErrFuel is returned when a packet exceeds the step budget.
var ErrFuel = fmt.Errorf("interp: fuel exhausted (runaway loop?)")

// API opcodes (internal dense encoding of the intrinsics).
const (
	apiPktLen = iota
	apiEthType
	apiIPProto
	apiIPSrc
	apiIPDst
	apiIPTTL
	apiIPLen
	apiIPHL
	apiTCPSport
	apiTCPDport
	apiTCPSeq
	apiTCPAck
	apiTCPFlags
	apiTCPOff
	apiUDPSport
	apiUDPDport
	apiPayload
	apiPayloadLen
	apiTime
	apiSetIPSrc
	apiSetIPDst
	apiSetIPTTL
	apiSetTCPSport
	apiSetTCPDport
	apiSetTCPSeq
	apiSetTCPAck
	apiSetTCPFlags
	apiSetUDPSport
	apiSetUDPDport
	apiSetPayload
	apiCsumUpdate
	apiSend
	apiDrop
	apiHash32
	apiRand32
	apiEwmaRate
	apiCRC32HW
	apiLPMHW
	apiMapFind
	apiMapContains
	apiMapInsert
	apiMapRemove
	apiMapSize
	apiVecPush
	apiVecGet
	apiVecSet
	apiVecDelete
	apiVecLen
)

var apiCodes = map[string]int{
	"pkt_len": apiPktLen, "pkt_eth_type": apiEthType, "pkt_ip_proto": apiIPProto,
	"pkt_ip_src": apiIPSrc, "pkt_ip_dst": apiIPDst, "pkt_ip_ttl": apiIPTTL,
	"pkt_ip_len": apiIPLen, "pkt_ip_hl": apiIPHL,
	"pkt_tcp_sport": apiTCPSport, "pkt_tcp_dport": apiTCPDport,
	"pkt_tcp_seq": apiTCPSeq, "pkt_tcp_ack": apiTCPAck,
	"pkt_tcp_flags": apiTCPFlags, "pkt_tcp_off": apiTCPOff,
	"pkt_udp_sport": apiUDPSport, "pkt_udp_dport": apiUDPDport,
	"pkt_payload": apiPayload, "pkt_payload_len": apiPayloadLen, "pkt_time": apiTime,
	"pkt_set_ip_src": apiSetIPSrc, "pkt_set_ip_dst": apiSetIPDst, "pkt_set_ip_ttl": apiSetIPTTL,
	"pkt_set_tcp_sport": apiSetTCPSport, "pkt_set_tcp_dport": apiSetTCPDport,
	"pkt_set_tcp_seq": apiSetTCPSeq, "pkt_set_tcp_ack": apiSetTCPAck,
	"pkt_set_tcp_flags": apiSetTCPFlags,
	"pkt_set_udp_sport": apiSetUDPSport, "pkt_set_udp_dport": apiSetUDPDport,
	"pkt_set_payload": apiSetPayload,
	"pkt_csum_update": apiCsumUpdate, "pkt_send": apiSend, "pkt_drop": apiDrop,
	"hash32": apiHash32, "rand32": apiRand32, "ewma_rate": apiEwmaRate,
	"crc32_hw": apiCRC32HW, "lpm_hw": apiLPMHW,
	"map_find": apiMapFind, "map_contains": apiMapContains,
	"map_insert": apiMapInsert, "map_remove": apiMapRemove, "map_size": apiMapSize,
	"vec_push": apiVecPush, "vec_get": apiVecGet, "vec_set": apiVecSet,
	"vec_delete": apiVecDelete, "vec_len": apiVecLen,
}

// xop is the interpreter's internal opcode space. It refines ir.Op with
// compile-time specializations the dispatch loop would otherwise branch
// on per execution: global accesses split by kind (scalar vs array), and
// an ICmp immediately consumed by a CondBr fuses into one compare-branch
// instruction (the fused form still writes the comparison result to its
// IR id, so downstream reads observe identical state).
type xop uint8

const (
	xAdd xop = iota
	xSub
	xMul
	xUDiv
	xURem
	xAnd
	xOr
	xXor
	xShl
	xLShr
	xNot
	xMask // ZExt and Trunc: both reduce to masking under the result type
	xICmp
	xLLoad
	xLStore
	xGLoadS   // scalar global load
	xGLoadA   // array global load
	xGLoadAP  // array global load, power-of-two length (mask, no div)
	xGStoreS  // scalar global store
	xGStoreA  // array global store
	xGStoreAP // array global store, power-of-two length
	xCall
	xCallPayload    // pkt_payload(i): hot per-byte read, inlined
	xCallSetPayload // pkt_set_payload(i, v): hot per-byte write, inlined
	xCallHash32     // hash32(k): pure mix, inlined
	xBr
	xCondBr
	xRet
	xCmpBr // fused ICmp+CondBr
)

// cstr is the hooks-only string metadata of an instruction (the global it
// touches, the API it calls), held in a program side table so the hot
// cInstr stays compact.
type cstr struct {
	global string
	callee string
}

// cInstr is one compiled instruction. Operands are plain indices into
// the machine's value array: instruction results live at their IR ids
// (< NumVals) and constants are pooled at indices >= NumVals, preloaded
// when the machine is built, so reading an operand never branches on its
// kind. The struct is kept flat and narrow (no slices, no strings) so a
// cache line holds more than one instruction.
type cInstr struct {
	mask   uint64
	a0, a1 int32 // operand value indices (every op has arity <= 2)
	id     int32
	slot   int32
	gidx   int32 // index into machine global tables
	api    int32
	t, f   int32
	sidx   int32 // index into the program's cstr table (-1: none)
	op     xop
	pred   ir.Pred
	nargs  uint8
}

type cBlock struct {
	instrs   []cInstr
	nCompute int
	// size is the source IR instruction count; fuel, Steps and the
	// compute hooks are charged by it, so fusion never changes the
	// observable cost model.
	size int
}

// gmeta is the per-global metadata the threaded compiler needs to bind
// closures without the module in hand: the global's kind (to validate
// that map/vec APIs target the right structure statically) and its
// declared length (to capture pow2 masks and modulo lengths as closure
// constants instead of chasing m.gl[gidx] at run time).
type gmeta struct {
	kind ir.GlobalKind
	len  int
}

// program is a module's compiled, immutable form: every Machine built
// for the same module shares one program (blocks, const pool, global
// index) and only allocates its own mutable state. Compilation does not
// depend on Config — map-mode and fuel only matter at runtime — so one
// program serves host and NIC machines alike.
//
// The threaded lowerings hang off the program lazily, one per flavor
// (plain / counting / hooked), built on first demand under tOnce so
// every machine for the module shares them. A nil entry after its Once
// has fired means the threaded compiler declined the module (some
// construct failed static validation) and machines fall back to the
// reference loop.
type program struct {
	blocks []cBlock
	nvals  int      // f.NumVals; const pool occupies vals[nvals:]
	pool   []uint64 // pooled constants, deduplicated by value
	strs   []cstr   // hooks metadata, indexed by cInstr.sidx
	nslots int
	gidx   map[string]int
	gmeta  []gmeta

	tOnce [numFlavors]sync.Once
	tProg [numFlavors]*threaded

	// mpool recycles released machines per map mode (HostMap, NICMap —
	// the state layouts differ, so the pools must not mix). Reuse turns
	// machine construction for a stateful NF from megabytes of zeroed
	// allocation into a generation bump plus a register-file clear.
	mpool [2]sync.Pool
}

// progCacheCap bounds the compiled-program cache. Library modules are
// singletons (a few dozen), so in steady state the fleet compiles each
// NF once; freshly parsed modules (e.g. per-request submissions in
// serving mode) each miss once and age out.
const progCacheCap = 128

var progCache = struct {
	mu  sync.Mutex
	m   map[[sha256.Size]byte]*list.Element // values are *progEntry
	lru *list.List
}{m: make(map[[sha256.Size]byte]*list.Element), lru: list.New()}

type progEntry struct {
	key  [sha256.Size]byte
	prog *program
	err  error
}

// programFor returns mod's compiled program, compiling and caching it on
// first use. The cache keys by content hash (ir.Fingerprint) rather than
// pointer identity, so distinct parses of identical source — the serving
// path hands each request a fresh *ir.Module — share one compiled
// program and its threaded lowerings. Hashing is sound because
// ir.Modules are immutable once built.
func programFor(mod *ir.Module) (*program, error) {
	key := ir.Fingerprint(mod)
	progCache.mu.Lock()
	if el, ok := progCache.m[key]; ok {
		progCache.lru.MoveToFront(el)
		e := el.Value.(*progEntry)
		progCache.mu.Unlock()
		return e.prog, e.err
	}
	progCache.mu.Unlock()

	// Compile outside the lock; a racing duplicate compile is harmless
	// (both results are equivalent and one wins the map).
	prog, err := compileModule(mod)
	progCache.mu.Lock()
	if el, ok := progCache.m[key]; ok {
		progCache.lru.MoveToFront(el)
		e := el.Value.(*progEntry)
		progCache.mu.Unlock()
		return e.prog, e.err
	}
	progCache.m[key] = progCache.lru.PushFront(&progEntry{key: key, prog: prog, err: err})
	for progCache.lru.Len() > progCacheCap {
		oldest := progCache.lru.Back()
		progCache.lru.Remove(oldest)
		delete(progCache.m, oldest.Value.(*progEntry).key)
	}
	progCache.mu.Unlock()
	return prog, err
}

// Precompile warms the program cache for mod and builds its counting
// threaded lowering (the flavor host profiling uses), so the first
// packet of a later analysis pays no compile latency. The fleet calls
// this during batch prewarm alongside prediction claiming. Errors are
// the same ones New would report.
func Precompile(mod *ir.Module) error {
	prog, err := programFor(mod)
	if err != nil {
		return err
	}
	prog.threadedFor(fCounting)
	return nil
}

// compiler builds one program; pool deduplicates constants by (already
// masked) value.
type compiler struct {
	p       *program
	mod     *ir.Module
	pool    map[uint64]int32
	strPool map[cstr]int32
}

func compileModule(mod *ir.Module) (*program, error) {
	f := mod.Handler()
	if f == nil {
		return nil, fmt.Errorf("interp: module %s has no handler", mod.Name)
	}
	c := &compiler{
		p: &program{
			nvals:  f.NumVals,
			nslots: f.NSlots,
			gidx:   make(map[string]int, len(mod.Globals)),
		},
		mod:     mod,
		pool:    make(map[uint64]int32),
		strPool: make(map[cstr]int32),
	}
	c.p.gmeta = make([]gmeta, len(mod.Globals))
	for i, g := range mod.Globals {
		c.p.gidx[g.Name] = i
		c.p.gmeta[i] = gmeta{kind: g.Kind, len: g.Len}
	}
	c.p.blocks = make([]cBlock, len(f.Blocks))
	for bi, b := range f.Blocks {
		cb := &c.p.blocks[bi]
		cb.size = len(b.Instrs)
		for k := 0; k < len(b.Instrs); k++ {
			in := b.Instrs[k]
			if in.Op.IsCompute() {
				cb.nCompute++
			}
			ci, err := c.compileInstr(in)
			if err != nil {
				return nil, fmt.Errorf("interp: %s: %w", mod.Name, err)
			}
			// Fuse an ICmp directly consumed by the following CondBr into
			// one compare-branch. The fused instruction still stores the
			// comparison result, so any other use of the ICmp id (and any
			// hook or counter) observes exactly the unfused state; only the
			// dispatch count shrinks — cb.size keeps the cost model intact.
			if in.Op == ir.OpICmp && k+1 < len(b.Instrs) {
				nx := b.Instrs[k+1]
				if nx.Op == ir.OpCondBr && len(nx.Args) == 1 &&
					nx.Args[0].Kind == ir.VInstr && nx.Args[0].ID == in.ID {
					ci.op = xCmpBr
					ci.t, ci.f = int32(nx.True), int32(nx.False)
					k++
				}
			}
			cb.instrs = append(cb.instrs, ci)
		}
	}
	return c.p, nil
}

// mslot is one NIC-map slot. The generation stamp makes whole-table
// reset O(1): a slot whose gen trails the table's reads as free, so
// clearing a multi-MB flow table costs one counter bump instead of a
// memclr (padding absorbs the field — mslot stays 24 bytes).
type mslot struct {
	key   uint64
	val   uint64
	gen   uint32
	state uint8 // 0 free, 1 used, 2 invalid (deleted); valid only when gen is current
}

type nicMapState struct {
	slots   []mslot
	buckets int
	size    int
	gen     uint32
	// FailedInserts counts inserts dropped because a bucket was full —
	// the kind of behavioural divergence reverse porting exists to expose.
	failedInserts int
}

// st reads a slot's effective state under the current generation.
func (nm *nicMapState) st(s *mslot) uint8 {
	if s.gen != nm.gen {
		return 0
	}
	return s.state
}

// reset invalidates every slot by advancing the generation. On uint32
// wraparound the slots are cleared for real so stamps from four billion
// generations ago cannot alias the new one.
func (nm *nicMapState) reset() {
	nm.gen++
	if nm.gen == 0 {
		clear(nm.slots)
		nm.gen = 1
	}
	nm.size = 0
	nm.failedInserts = 0
}

// vecState backs a Click-Vector-style global. In host mode the slice
// grows elastically and deletions shift; in NIC mode capacity is fixed and
// deletions tombstone (§3.3).
type vecState struct {
	vals  []uint64
	valid []bool // NIC mode only
	live  int
	nic   bool
	cap   int
	// dropped counts pushes refused by a full NIC vector.
	dropped int
}

type globalState struct {
	g *ir.Global
	// amask is len(array)-1 for power-of-two arrays (masked indexing).
	amask uint64
	// exactly one of these is active, by g.Kind
	scalar uint64
	array  []uint64
	hmap   map[uint64]uint64
	nmap   *nicMapState
	vec    *vecState
}

// Counters accumulate the host-profiling signals natively, replacing
// closure hooks on the hot path: one slice increment per event instead
// of a call through a function pointer into string-keyed maps. Weights
// match the Hooks semantics exactly — Block counts block entries, State
// counts GLoad/GStore accesses, and API accumulates per-call probe
// counts — so a profile built from Counters is identical to one built
// from OnBlock/OnState/OnAPI.
type Counters struct {
	// Block[b] counts executions of block b.
	Block []uint64
	// State[g*NBlocks+b] counts stateful accesses to global g from block
	// b; API[g*NBlocks+b] sums API probe counts charged to global g from
	// block b (calls with zero probes or no global are not recorded,
	// mirroring the profiler's OnAPI filter).
	State []uint64
	API   []uint64
	// NBlocks is the row stride of State and API.
	NBlocks int
}

// Machine executes one module over packets.
type Machine struct {
	Mod    *ir.Module
	cfg    Config
	hooks  Hooks
	prog   *program // shared, immutable
	blocks []cBlock // prog.blocks; kept unrolled for the reference loop
	// regs is the single backing array for all mutable per-packet cells:
	// local slots first, then instruction results, then the const pool.
	// vals and slots are views into it. The threaded backend passes regs
	// to every closure with operands pre-offset into the combined space
	// (one slice argument instead of two), while the reference loop keeps
	// addressing the vals/slots views.
	regs    []uint64
	vals    []uint64 // [0:nvals) instruction results, [nvals:) const pool
	slots   []uint64
	gl      []*globalState
	gidx    map[string]int // shared with the program; read-only
	strs    []cstr         // shared with the program; read-only
	ctr     *Counters
	rng     uint64
	pkt     *traffic.Packet
	fuel    int
	backend Backend // resolved: BackendCompiled or BackendReference
	// err carries a runtime error out of a threaded closure (closures
	// return nothing, so the block loop checks it after the sequence).
	err error
	// ewma is the host-side double-precision rate average backing the
	// ewma_rate intrinsic (Click AverageCounter semantics).
	ewma float64

	// Steps is the cumulative interpreted instruction count.
	Steps uint64
}

// New builds a machine for mod, compiling its handler on first use (the
// compiled program is cached and shared across machines).
func New(mod *ir.Module, cfg Config) (*Machine, error) {
	prog, err := programFor(mod)
	if err != nil {
		return nil, err
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = defaultFuel
	}
	if cfg.Mode == HostMap || cfg.Mode == NICMap {
		if v := prog.mpool[cfg.Mode].Get(); v != nil {
			m := v.(*Machine)
			m.Mod = mod // same fingerprint, possibly a different parse
			m.reset(cfg)
			return m, nil
		}
	}
	nslots := int(prog.vsOff())
	regs := make([]uint64, nslots+prog.nvals+len(prog.pool))
	m := &Machine{
		Mod:     mod,
		cfg:     cfg,
		prog:    prog,
		blocks:  prog.blocks,
		regs:    regs,
		vals:    regs[nslots:],
		slots:   regs[:nslots],
		gidx:    prog.gidx,
		strs:    prog.strs,
		rng:     cfg.Seed*2654435761 + 0x9E3779B97F4A7C15,
		backend: cfg.Backend.resolve(),
	}
	copy(m.vals[prog.nvals:], prog.pool)
	m.gl = make([]*globalState, 0, len(mod.Globals))
	for _, g := range mod.Globals {
		st := &globalState{g: g}
		switch g.Kind {
		case ir.GArray:
			st.array = make([]uint64, g.Len)
			if g.Len > 0 && g.Len&(g.Len-1) == 0 {
				st.amask = uint64(g.Len - 1)
			}
		case ir.GMap:
			if cfg.Mode == HostMap {
				st.hmap = make(map[uint64]uint64)
			} else {
				buckets := g.Len / BucketSlots
				if buckets == 0 {
					buckets = 1
				}
				st.nmap = &nicMapState{slots: make([]mslot, buckets*BucketSlots), buckets: buckets, gen: 1}
			}
		case ir.GVec:
			st.vec = &vecState{nic: cfg.Mode == NICMap, cap: g.Len}
			if st.vec.nic {
				st.vec.vals = make([]uint64, g.Len)
				st.vec.valid = make([]bool, g.Len)
			}
		}
		m.gl = append(m.gl, st)
	}
	return m, nil
}

// reset restores a pooled machine to the state New hands out: fresh
// config-derived fields, a zeroed register file (the const-pool tail is
// immutable and kept), and all global state cleared. Every field a
// packet run can touch is covered — a pooled machine must be
// indistinguishable from a freshly built one.
func (m *Machine) reset(cfg Config) {
	m.cfg = cfg
	m.hooks = Hooks{}
	m.ctr = nil
	m.err = nil
	m.ewma = 0
	m.Steps = 0
	m.pkt = nil
	m.rng = cfg.Seed*2654435761 + 0x9E3779B97F4A7C15
	m.backend = cfg.Backend.resolve()
	clear(m.regs[:len(m.regs)-len(m.prog.pool)])
	m.ResetState()
}

// Release returns m to its program's machine pool; a later New for a
// module with the same fingerprint and map mode reuses the allocated
// state (multi-MB flow tables) after an O(1) generation reset instead
// of reallocating and zeroing it. The caller must not use m — or any
// Counters it handed out — after Release.
func (m *Machine) Release() {
	if m.cfg.Mode == HostMap || m.cfg.Mode == NICMap {
		m.prog.mpool[m.cfg.Mode].Put(m)
	}
}

// SetHooks installs execution hooks (may be called between packets).
func (m *Machine) SetHooks(h Hooks) { m.hooks = h }

// EnableCounters attaches (and returns) zeroed native profiling counters
// sized for this machine's module. Counters and Hooks are independent;
// either or both may be active.
func (m *Machine) EnableCounters() *Counters {
	nb := len(m.blocks)
	m.ctr = &Counters{
		Block:   make([]uint64, nb),
		State:   make([]uint64, len(m.gl)*nb),
		API:     make([]uint64, len(m.gl)*nb),
		NBlocks: nb,
	}
	return m.ctr
}

func maskOf(ty ir.Type) uint64 {
	switch ty {
	case ir.Bool:
		return 1
	case ir.U8:
		return 0xff
	case ir.U16:
		return 0xffff
	case ir.U32:
		return 0xffffffff
	default:
		return ^uint64(0)
	}
}

// compileArg resolves an operand to a value-array index: instruction
// results keep their IR id; constants are interned into the pool, whose
// entries live at indices >= nvals.
func (c *compiler) compileArg(v ir.Value) (int32, error) {
	switch v.Kind {
	case ir.VConst:
		cv := uint64(v.Const) & maskOf(v.Ty)
		if idx, ok := c.pool[cv]; ok {
			return idx, nil
		}
		idx := int32(c.p.nvals + len(c.p.pool))
		c.p.pool = append(c.p.pool, cv)
		c.pool[cv] = idx
		return idx, nil
	case ir.VInstr:
		return int32(v.ID), nil
	default:
		return 0, fmt.Errorf("unsupported operand kind %d (params must be inlined)", v.Kind)
	}
}

// internStr interns hooks metadata into the program's cstr table.
func (c *compiler) internStr(global, callee string) int32 {
	s := cstr{global: global, callee: callee}
	if idx, ok := c.strPool[s]; ok {
		return idx
	}
	idx := int32(len(c.p.strs))
	c.p.strs = append(c.p.strs, s)
	c.strPool[s] = idx
	return idx
}

// xopOf maps an IR opcode to its internal dispatch code. Global accesses
// are specialized by the accessed global's kind at compile time.
func (c *compiler) xopOf(in *ir.Instr) (xop, error) {
	switch in.Op {
	case ir.OpAdd:
		return xAdd, nil
	case ir.OpSub:
		return xSub, nil
	case ir.OpMul:
		return xMul, nil
	case ir.OpUDiv:
		return xUDiv, nil
	case ir.OpURem:
		return xURem, nil
	case ir.OpAnd:
		return xAnd, nil
	case ir.OpOr:
		return xOr, nil
	case ir.OpXor:
		return xXor, nil
	case ir.OpShl:
		return xShl, nil
	case ir.OpLShr:
		return xLShr, nil
	case ir.OpNot:
		return xNot, nil
	case ir.OpZExt, ir.OpTrunc:
		return xMask, nil
	case ir.OpICmp:
		return xICmp, nil
	case ir.OpLLoad:
		return xLLoad, nil
	case ir.OpLStore:
		return xLStore, nil
	case ir.OpGLoad, ir.OpGStore:
		gi, ok := c.p.gidx[in.Global]
		if !ok {
			return 0, fmt.Errorf("unknown global %q", in.Global)
		}
		g := c.mod.Globals[gi]
		scalar := g.Kind == ir.GScalar
		// Power-of-two arrays index with a mask instead of a modulo —
		// identical result for unsigned indices, no hardware divide.
		pow2 := g.Kind == ir.GArray && g.Len > 0 && g.Len&(g.Len-1) == 0
		if in.Op == ir.OpGLoad {
			switch {
			case scalar:
				return xGLoadS, nil
			case pow2:
				return xGLoadAP, nil
			default:
				return xGLoadA, nil
			}
		}
		switch {
		case scalar:
			return xGStoreS, nil
		case pow2:
			return xGStoreAP, nil
		default:
			return xGStoreA, nil
		}
	case ir.OpCall:
		return xCall, nil
	case ir.OpBr:
		return xBr, nil
	case ir.OpCondBr:
		return xCondBr, nil
	case ir.OpRet:
		return xRet, nil
	default:
		return 0, fmt.Errorf("unsupported opcode %s", in.Op)
	}
}

func (c *compiler) compileInstr(in *ir.Instr) (cInstr, error) {
	ci := cInstr{
		pred: in.Pred, mask: maskOf(in.Ty), id: int32(in.ID),
		slot: int32(in.Slot), t: int32(in.True), f: int32(in.False),
		gidx: -1, api: -1, sidx: -1,
	}
	op, err := c.xopOf(in)
	if err != nil {
		return ci, err
	}
	ci.op = op
	if len(in.Args) > 2 {
		return ci, fmt.Errorf("instruction %s has %d operands (max 2)", in.Op, len(in.Args))
	}
	ci.nargs = uint8(len(in.Args))
	for k, a := range in.Args {
		idx, err := c.compileArg(a)
		if err != nil {
			return ci, err
		}
		if k == 0 {
			ci.a0 = idx
		} else {
			ci.a1 = idx
		}
	}
	if in.Op == ir.OpGLoad || in.Op == ir.OpGStore || (in.Op == ir.OpCall && in.Global != "") {
		gi, ok := c.p.gidx[in.Global]
		if !ok {
			return ci, fmt.Errorf("unknown global %q", in.Global)
		}
		ci.gidx = int32(gi)
	}
	if in.Op == ir.OpCall {
		code, ok := apiCodes[in.Callee]
		if !ok {
			return ci, fmt.Errorf("unknown framework API %q", in.Callee)
		}
		ci.api = int32(code)
		// The per-byte packet intrinsics and the hash mix dominate
		// byte-granular elements (ciphers, sketches); dispatch them
		// without the API-call detour. Their call() cases end in
		// emitAPI(probes=0), which the inlined forms reproduce.
		switch code {
		case apiPayload:
			ci.op = xCallPayload
		case apiSetPayload:
			ci.op = xCallSetPayload
		case apiHash32:
			ci.op = xCallHash32
		}
	}
	if in.Op == ir.OpGLoad || in.Op == ir.OpGStore || in.Op == ir.OpCall {
		ci.sidx = c.internStr(in.Global, in.Callee)
	}
	return ci, nil
}

// RunPacket executes the handler for one packet. The packet's disposition
// fields are updated in place.
//
// The compiled (direct-threaded) backend runs unless the machine was
// configured with BackendReference or the threaded compiler declined the
// module; either way every observable — Steps, fuel, counters, hook
// traces, packet and state mutations — is identical between backends.
func (m *Machine) RunPacket(p *traffic.Packet) error {
	if m.backend == BackendCompiled {
		fl := m.flavor()
		if t := m.prog.threadedFor(fl); t != nil {
			if fl == fHooked {
				return m.runThreadedHooked(t, p)
			}
			return m.runThreaded(t, p)
		}
	}
	return m.runReference(p)
}

// flavor picks the threaded specialization the machine's current
// observability configuration needs. Hooks may change between packets
// (SetHooks), so this is re-evaluated per packet.
func (m *Machine) flavor() tFlavor {
	h := &m.hooks
	if h.OnBlock != nil || h.OnState != nil || h.OnLocal != nil ||
		h.OnCompute != nil || h.OnAPI != nil {
		return fHooked
	}
	if m.ctr != nil {
		return fCounting
	}
	return fPlain
}

// runReference is the original switch-dispatch interpreter loop. It is
// the semantic definition of execution: the threaded backend is tested
// (differentially and under fuzzing) to match it bit for bit.
func (m *Machine) runReference(p *traffic.Packet) error {
	p.Reset()
	m.pkt = p
	m.fuel = m.cfg.Fuel
	bi := 0
	vals := m.vals
	for {
		if m.ctr != nil {
			m.ctr.Block[bi]++
		}
		if m.hooks.OnBlock != nil {
			m.hooks.OnBlock(bi)
		}
		cb := &m.blocks[bi]
		if m.hooks.OnCompute != nil && cb.nCompute > 0 {
			m.hooks.OnCompute(bi, cb.nCompute)
		}
		// Fuel and Steps are charged per block, by source IR instruction
		// count (cb.size — fusion does not change the cost model). Blocks
		// always retire in full — the terminator (Ret/Br/CondBr) is the
		// last instruction — so successful runs count exactly the
		// instructions executed; a run that would exhaust fuel mid-block
		// aborts at block entry.
		m.fuel -= cb.size
		if m.fuel < 0 {
			return ErrFuel
		}
		m.Steps += uint64(cb.size)
		next := -1
		for i := range cb.instrs {
			in := &cb.instrs[i]
			switch in.op {
			case xAdd:
				vals[in.id] = (vals[in.a0] + vals[in.a1]) & in.mask
			case xSub:
				vals[in.id] = (vals[in.a0] - vals[in.a1]) & in.mask
			case xMul:
				vals[in.id] = (vals[in.a0] * vals[in.a1]) & in.mask
			case xUDiv:
				d := vals[in.a1]
				if d == 0 {
					vals[in.id] = in.mask // all-ones, like NIC firmware
				} else {
					vals[in.id] = (vals[in.a0] / d) & in.mask
				}
			case xURem:
				d := vals[in.a1]
				if d == 0 {
					vals[in.id] = 0
				} else {
					vals[in.id] = (vals[in.a0] % d) & in.mask
				}
			case xAnd:
				vals[in.id] = vals[in.a0] & vals[in.a1] & in.mask
			case xOr:
				vals[in.id] = (vals[in.a0] | vals[in.a1]) & in.mask
			case xXor:
				vals[in.id] = (vals[in.a0] ^ vals[in.a1]) & in.mask
			case xShl:
				sh := vals[in.a1] & 63
				vals[in.id] = (vals[in.a0] << sh) & in.mask
			case xLShr:
				sh := vals[in.a1] & 63
				vals[in.id] = (vals[in.a0] >> sh) & in.mask
			case xNot:
				vals[in.id] = ^vals[in.a0] & in.mask
			case xMask:
				vals[in.id] = vals[in.a0] & in.mask
			case xICmp:
				if cmpPred(in.pred, vals[in.a0], vals[in.a1]) {
					vals[in.id] = 1
				} else {
					vals[in.id] = 0
				}
			case xCmpBr:
				if cmpPred(in.pred, vals[in.a0], vals[in.a1]) {
					vals[in.id] = 1
					next = int(in.t)
				} else {
					vals[in.id] = 0
					next = int(in.f)
				}
			case xLLoad:
				vals[in.id] = m.slots[in.slot]
				if m.hooks.OnLocal != nil {
					m.hooks.OnLocal(false, bi)
				}
			case xLStore:
				m.slots[in.slot] = vals[in.a0] & in.mask
				if m.hooks.OnLocal != nil {
					m.hooks.OnLocal(true, bi)
				}
			case xGLoadS:
				vals[in.id] = m.gl[in.gidx].scalar
				if m.ctr != nil {
					m.ctr.State[int(in.gidx)*m.ctr.NBlocks+bi]++
				}
				if m.hooks.OnState != nil {
					m.hooks.OnState(m.strs[in.sidx].global, false, 0, bi)
				}
			case xGLoadAP:
				g := m.gl[in.gidx]
				idx := vals[in.a0] & g.amask
				vals[in.id] = g.array[idx]
				if m.ctr != nil {
					m.ctr.State[int(in.gidx)*m.ctr.NBlocks+bi]++
				}
				if m.hooks.OnState != nil {
					m.hooks.OnState(m.strs[in.sidx].global, false, idx, bi)
				}
			case xGLoadA:
				g := m.gl[in.gidx]
				idx := vals[in.a0] % uint64(len(g.array))
				vals[in.id] = g.array[idx]
				if m.ctr != nil {
					m.ctr.State[int(in.gidx)*m.ctr.NBlocks+bi]++
				}
				if m.hooks.OnState != nil {
					m.hooks.OnState(m.strs[in.sidx].global, false, idx, bi)
				}
			case xGStoreS:
				m.gl[in.gidx].scalar = vals[in.a0] & in.mask
				if m.ctr != nil {
					m.ctr.State[int(in.gidx)*m.ctr.NBlocks+bi]++
				}
				if m.hooks.OnState != nil {
					m.hooks.OnState(m.strs[in.sidx].global, true, 0, bi)
				}
			case xGStoreAP:
				g := m.gl[in.gidx]
				idx := vals[in.a1] & g.amask
				g.array[idx] = vals[in.a0] & in.mask
				if m.ctr != nil {
					m.ctr.State[int(in.gidx)*m.ctr.NBlocks+bi]++
				}
				if m.hooks.OnState != nil {
					m.hooks.OnState(m.strs[in.sidx].global, true, idx, bi)
				}
			case xGStoreA:
				g := m.gl[in.gidx]
				idx := vals[in.a1] % uint64(len(g.array))
				g.array[idx] = vals[in.a0] & in.mask
				if m.ctr != nil {
					m.ctr.State[int(in.gidx)*m.ctr.NBlocks+bi]++
				}
				if m.hooks.OnState != nil {
					m.hooks.OnState(m.strs[in.sidx].global, true, idx, bi)
				}
			case xCall:
				if err := m.call(in, bi); err != nil {
					return err
				}
			case xCallPayload:
				if i := vals[in.a0]; i < uint64(len(p.Payload)) {
					vals[in.id] = uint64(p.Payload[i])
				} else {
					vals[in.id] = 0
				}
				if m.hooks.OnAPI != nil {
					s := &m.strs[in.sidx]
					m.hooks.OnAPI(s.callee, s.global, 0, 0, bi)
				}
			case xCallSetPayload:
				if i := vals[in.a0]; i < uint64(len(p.Payload)) {
					p.Payload[i] = byte(vals[in.a1])
				}
				if m.hooks.OnAPI != nil {
					s := &m.strs[in.sidx]
					m.hooks.OnAPI(s.callee, s.global, 0, 0, bi)
				}
			case xCallHash32:
				vals[in.id] = uint64(Hash32(vals[in.a0]))
				if m.hooks.OnAPI != nil {
					s := &m.strs[in.sidx]
					m.hooks.OnAPI(s.callee, s.global, 0, 0, bi)
				}
			case xBr:
				next = int(in.t)
			case xCondBr:
				if vals[in.a0] != 0 {
					next = int(in.t)
				} else {
					next = int(in.f)
				}
			case xRet:
				return nil
			}
		}
		if next < 0 {
			return fmt.Errorf("interp: block %d fell through", bi)
		}
		bi = next
	}
}

// cmpPred evaluates an unsigned comparison predicate.
func cmpPred(pred ir.Pred, a, b uint64) bool {
	switch pred {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredULT:
		return a < b
	case ir.PredULE:
		return a <= b
	case ir.PredUGT:
		return a > b
	case ir.PredUGE:
		return a >= b
	}
	return false
}

// arg reads one compiled operand; kept as a helper for the API
// implementations (the core opcode loop indexes m.vals directly).
func (m *Machine) arg(i int32) uint64 { return m.vals[i] }

// emitAPI records one framework API call against counters and hooks.
// Counters only accumulate calls that carry probe work against a global
// (gidx >= 0), mirroring the host profiler's OnAPI filter.
func (m *Machine) emitAPI(in *cInstr, probes int, addr uint64, block int) {
	if m.ctr != nil && probes > 0 && in.gidx >= 0 {
		m.ctr.API[int(in.gidx)*m.ctr.NBlocks+block] += uint64(probes)
	}
	if m.hooks.OnAPI != nil {
		s := &m.strs[in.sidx]
		m.hooks.OnAPI(s.callee, s.global, probes, addr, block)
	}
}
