package analysis

import (
	"fmt"

	"clara/internal/ir"
	"clara/internal/lang"
)

// The offloadability linter: a rule catalog over the CFG/dataflow facts
// that flags SmartNIC-hostile constructs before any porting effort is
// spent (the paper's pitch: insights from the unported NF). Each rule has
// a stable ID so reports, golden files, and downstream tooling can key on
// it.

// Rule identifiers.
const (
	// RuleLoopUnbounded: a loop with no feasible exit. Run-to-completion
	// NIC cores have no preemption; an unbounded per-packet loop stalls
	// the core and, with it, a share of the NIC.
	RuleLoopUnbounded = "loop-unbounded"
	// RuleLoopVarBound: a loop whose trip count cannot be bounded (or
	// exceeds the per-packet budget). Latency becomes input-dependent.
	RuleLoopVarBound = "loop-varbound"
	// RuleFloatOp: a framework call whose host implementation is floating
	// point. NIC cores have no FPU; soft-float emulation is ~100x.
	RuleFloatOp = "float-op"
	// RuleStateOversize: a stateful structure that exceeds a memory-tier
	// budget (error: does not fit the NIC at all; warning: spills past the
	// on-chip SRAM tiers into DRAM-backed EMEM).
	RuleStateOversize = "state-oversize"
	// RuleRecursion: recursive calls (no stack to speak of on the NIC;
	// Micro-C forbids recursion).
	RuleRecursion = "recursion"
	// RuleDeadStore: a computed value stored to a local that is never
	// read — wasted cycles on a wimpy core, often a porting bug.
	RuleDeadStore = "dead-store"
	// RuleUninitRead: a local read that may observe its uninitialized
	// function-entry value.
	RuleUninitRead = "uninit-read"
	// RuleReversePort: a stateful framework API whose host and NIC
	// implementations diverge; the call must be reverse ported (§3.3).
	RuleReversePort = "api-reverse-port"
	// RuleAPIUnknown: a call to an API outside the framework registry;
	// nothing is known about its NIC cost or semantics.
	RuleAPIUnknown = "api-unknown"
	// RuleConstBranch: a two-way branch whose condition is compile-time
	// constant — the untaken side is pure instruction-store waste on the
	// NIC, and usually a porting leftover.
	RuleConstBranch = "const-branch"
	// RuleDeadCode: a block no feasible path executes (behind an
	// always-false branch) that still occupies NIC instruction store.
	RuleDeadCode = "dead-code"
)

// RuleDoc documents one rule for the `clara -why <rule>` explainer.
type RuleDoc struct {
	Rule     string
	Severity Severity
	Summary  string
	Detail   string
}

// RuleDocs is the rule catalog in stable order: what each rule means, why
// it matters on a SmartNIC, and what analysis produces it.
var RuleDocs = []RuleDoc{
	{RuleLoopUnbounded, SevError, "a loop with no feasible exit",
		"Range propagation found no exit edge that can be taken. Run-to-completion NIC cores have no preemption: a per-packet loop that never exits stalls the core and a share of the NIC's throughput with it. The taint engine attaches a cause classifying the loop's condition as header-only or payload-dependent."},
	{RuleLoopVarBound, SevWarning, "a loop whose trip count cannot be bounded, or exceeds the per-packet budget",
		"Trip-count inference (induction slot + range analysis) could not bound the iterations, or the bound exceeds the configured budget. Per-packet latency becomes input-dependent. The attached cause states whether the bound derives from packet headers (fast-path computable) or payload bytes (slow-path only), naming the source API."},
	{RuleFloatOp, SevError, "a framework call computing in floating point",
		"NIC cores have no FPU; soft-float emulation costs ~100x. Rewrite with fixed-point integer arithmetic."},
	{RuleStateOversize, SevError, "a stateful structure exceeding a memory-tier budget",
		"Errors mean the structure does not fit the largest tier (EMEM) at all; warnings mean it spills past on-chip SRAM into DRAM-backed EMEM, adding latency to every access."},
	{RuleRecursion, SevError, "recursive functions",
		"NIC cores have no call stack; Micro-C forbids recursion. Detected on the AST before lowering (the frontend refuses to inline cycles)."},
	{RuleDeadStore, SevWarning, "a computed value stored to a local that is never read",
		"Wasted cycles on a wimpy core, often a porting bug. Constant stores are exempt (declaration defaults cost nothing after register allocation)."},
	{RuleUninitRead, SevWarning, "a local read that may observe its uninitialized entry value",
		"Reaching-definitions found a path on which the slot is read before any store. Frontend-lowered code zero-initializes declarations, so this fires on hand-built IR."},
	{RuleReversePort, SevInfo, "a stateful framework API with divergent host/NIC implementations",
		"The call must be reverse ported (paper §3.3): the NIC side has fixed capacity and no growth, unlike the host's elastic structures."},
	{RuleAPIUnknown, SevWarning, "a call to an API outside the framework registry",
		"Nothing is known about the callee's NIC cost or semantics; the predictor cannot price it and the linter cannot check it."},
	{RuleConstBranch, SevWarning, "a two-way branch whose condition is compile-time constant",
		"Interprocedural sparse conditional constant propagation folded the condition. The untaken side is dead weight in the NIC instruction store; SimplifyModule straightens such branches before prediction."},
	{RuleDeadCode, SevWarning, "a block no feasible path executes",
		"The block is reachable in the CFG but constant propagation proves every path into it takes another branch side. It still occupies instruction store and skews naive per-block predictions; SimplifyModule removes it."},
}

// DocFor returns the documentation entry for a rule ID.
func DocFor(rule string) (RuleDoc, bool) {
	for _, d := range RuleDocs {
		if d.Rule == rule {
			return d, true
		}
	}
	return RuleDoc{}, false
}

// Config parameterizes the linter's budgets. The defaults mirror the
// reference NIC model (internal/nicsim.DefaultParams).
type Config struct {
	// TotalBudget is the largest stateful tier in bytes (EMEM): a single
	// structure beyond it cannot be placed at all.
	TotalBudget int
	// FastBudget is the combined on-chip SRAM capacity (CLS+CTM+IMEM): a
	// structure beyond it is forced into DRAM-backed EMEM.
	FastBudget int
	// TripBudget is the per-packet loop iteration budget: a bounded loop
	// beyond it still ruins per-packet latency.
	TripBudget uint64
}

// DefaultConfig returns budgets matching the reference hardware model:
// 1 GB EMEM, 64 KB CLS + 224 KB CTM + 4 MB IMEM on chip, and a 64 Ki
// iteration budget.
func DefaultConfig() Config {
	return Config{
		TotalBudget: 1 << 30,
		FastBudget:  64<<10 + 224<<10 + 4<<20,
		TripBudget:  1 << 16,
	}
}

// LintModule runs the offloadability rule catalog over a lowered module.
func LintModule(m *ir.Module, cfg Config) []Diagnostic {
	return lintModule(m, cfg, nil)
}

func lintModule(m *ir.Module, cfg Config, gpos map[string]ir.Pos) []Diagnostic {
	var ds []Diagnostic
	ds = append(ds, lintGlobals(m, cfg, gpos)...)
	// The interprocedural engine runs once per module; its facts (taint
	// causes, constant branches, dead blocks) thread through the
	// per-function rules.
	cg := BuildCallGraph(m)
	ti := ComputeTaint(cg)
	si := ComputeSCCP(cg)
	for node, f := range cg.Funcs {
		ds = append(ds, lintFunc(m, f, cg.CFGs[node], ti, cfg)...)
	}
	ds = append(ds, lintConstFacts(m, si)...)
	return NormalizeDiagnostics(ds)
}

// LintSource parses, checks, lowers, and lints NFC source. Findings that
// lowering cannot represent (recursion is rejected before IR exists) are
// detected on the AST. Parse/compile failures are returned as an error,
// not diagnostics: a broken element is not an offloading insight.
func LintSource(name, src string, cfg Config) ([]Diagnostic, error) {
	file, err := lang.Parse(name, src)
	if err != nil {
		return nil, err
	}
	if ds := lintRecursion(file); len(ds) > 0 {
		SortDiagnostics(ds)
		return ds, nil
	}
	m, err := lang.Lower(file)
	if err != nil {
		return nil, err
	}
	gpos := make(map[string]ir.Pos, len(file.Globals))
	for _, g := range file.Globals {
		gpos[g.Name] = ir.Pos{Line: g.Line, Col: g.Col}
	}
	return lintModule(m, cfg, gpos), nil
}

// lintRecursion detects call-graph cycles on the AST (lowering refuses to
// inline them, so they never reach the IR).
func lintRecursion(file *lang.File) []Diagnostic {
	decls := map[string]*lang.FuncDecl{}
	for _, f := range file.Funcs {
		decls[f.Name] = f
	}
	calls := map[string][]string{}
	for _, f := range file.Funcs {
		seen := map[string]bool{}
		collectCalls(f.Body, func(name string) {
			if _, ok := decls[name]; ok && !seen[name] {
				seen[name] = true
				calls[f.Name] = append(calls[f.Name], name)
			}
		})
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var ds []Diagnostic
	var visit func(name string)
	visit = func(name string) {
		color[name] = gray
		for _, callee := range calls[name] {
			switch color[callee] {
			case white:
				visit(callee)
			case gray: // back edge: cycle through callee
				d := decls[callee]
				ds = append(ds, Diagnostic{
					Rule:     RuleRecursion,
					Severity: SevError,
					Elem:     file.Name,
					Fn:       callee,
					Line:     d.Line,
					Col:      d.Col,
					Msg:      fmt.Sprintf("function %q is recursive", callee),
					Hint:     "convert to an iterative form with a bounded loop; NIC cores have no call stack for recursion",
				})
			}
		}
		color[name] = black
	}
	for _, f := range file.Funcs {
		if color[f.Name] == white {
			visit(f.Name)
		}
	}
	return ds
}

// collectCalls walks a statement tree invoking fn for every call target.
func collectCalls(s lang.Stmt, fn func(string)) {
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.CallExpr:
			fn(e.Name)
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *lang.IndexExpr:
			walkExpr(e.Index)
		case *lang.CastExpr:
			walkExpr(e.X)
		case *lang.UnaryExpr:
			walkExpr(e.X)
		case *lang.BinaryExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		}
	}
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			if s == nil {
				return
			}
			for _, st := range s.List {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Init != nil {
				walkExpr(s.Init)
			}
		case *lang.AssignStmt:
			if s.Target.Index != nil {
				walkExpr(s.Target.Index)
			}
			walkExpr(s.Value)
		case *lang.IfStmt:
			walkExpr(s.Cond)
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.WhileStmt:
			walkExpr(s.Cond)
			walk(s.Body)
		case *lang.ForStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Cond != nil {
				walkExpr(s.Cond)
			}
			if s.Post != nil {
				walk(s.Post)
			}
			walk(s.Body)
		case *lang.ReturnStmt:
			if s.Value != nil {
				walkExpr(s.Value)
			}
		case *lang.ExprStmt:
			walkExpr(s.X)
		}
	}
	walk(s)
}

// lintGlobals applies the state-size rule.
func lintGlobals(m *ir.Module, cfg Config, gpos map[string]ir.Pos) []Diagnostic {
	var ds []Diagnostic
	for _, g := range m.Globals {
		size := g.SizeBytes()
		pos := gpos[g.Name]
		switch {
		case size > cfg.TotalBudget:
			ds = append(ds, Diagnostic{
				Rule:     RuleStateOversize,
				Severity: SevError,
				Elem:     m.Name,
				Line:     pos.Line,
				Col:      pos.Col,
				Msg: fmt.Sprintf("%s %q needs %d bytes of stateful memory; the largest NIC tier holds %d",
					g.Kind, g.Name, size, cfg.TotalBudget),
				Hint: "shrink the structure (fewer entries or narrower types) or keep it on the host",
			})
		case size > cfg.FastBudget:
			ds = append(ds, Diagnostic{
				Rule:     RuleStateOversize,
				Severity: SevWarning,
				Elem:     m.Name,
				Line:     pos.Line,
				Col:      pos.Col,
				Msg: fmt.Sprintf("%s %q needs %d bytes, beyond the %d bytes of on-chip SRAM; it will be placed in DRAM-backed EMEM",
					g.Kind, g.Name, size, cfg.FastBudget),
				Hint: "shrink the structure to fit an SRAM tier, or expect EMEM latency on every access",
			})
		}
	}
	return ds
}

// lintFunc runs the CFG/dataflow rules over one function.
func lintFunc(m *ir.Module, f *ir.Func, c *CFG, ti *TaintInfo, cfg Config) []Diagnostic {
	var ds []Diagnostic
	ri := ComputeRanges(c)
	ds = append(ds, lintLoops(m, f, c, ri, ti, cfg)...)
	ds = append(ds, lintCalls(m, f, c)...)
	ds = append(ds, lintDeadStores(m, f, c)...)
	ds = append(ds, lintUninitReads(m, f, c)...)
	return ds
}

// lintConstFacts surfaces the constant-propagation findings: branches
// that always go one way, and blocks nothing executes.
func lintConstFacts(m *ir.Module, si *SCCPInfo) []Diagnostic {
	var ds []Diagnostic
	for _, cb := range si.ConstBranches() {
		truth := "true"
		if cb.Cond == 0 {
			truth = "false"
		}
		ds = append(ds, Diagnostic{
			Rule:     RuleConstBranch,
			Severity: SevWarning,
			Elem:     m.Name,
			Fn:       cb.Fn,
			Line:     cb.Pos.Line,
			Col:      cb.Pos.Col,
			Msg:      fmt.Sprintf("branch condition is always %s; the untaken side is dead weight in the NIC instruction store", truth),
			Hint:     "delete the dead side, or make the condition depend on runtime input",
		})
	}
	for _, db := range si.DeadBlocks() {
		ds = append(ds, Diagnostic{
			Rule:     RuleDeadCode,
			Severity: SevWarning,
			Elem:     m.Name,
			Fn:       db.Fn,
			Line:     db.Pos.Line,
			Col:      db.Pos.Col,
			Msg:      fmt.Sprintf("block b%d is unreachable under propagated constants; it still occupies NIC instruction store", db.Block),
			Hint:     "remove the dead code, or run the simplify pass before porting",
		})
	}
	return ds
}

// loopPos picks the most useful source anchor for a loop: the exit
// branch's position (the loop condition), else any position in the body.
func loopPos(c *CFG, l *Loop) ir.Pos {
	for _, e := range l.Exits {
		if t := c.F.Blocks[e.From].Terminator(); t != nil && t.Pos.IsValid() {
			return t.Pos
		}
	}
	for _, bi := range l.Blocks {
		for _, in := range c.F.Blocks[bi].Instrs {
			if in.Pos.IsValid() {
				return in.Pos
			}
		}
	}
	return ir.Pos{}
}

// lintLoops applies the trip-count rules to every natural loop. The taint
// engine supplies the cause: whether the loop's bound derives from packet
// headers (a fast path could still compute it) or payload bytes (slow
// path only).
func lintLoops(m *ir.Module, f *ir.Func, c *CFG, ri *RangeInfo, ti *TaintInfo, cfg Config) []Diagnostic {
	var ds []Diagnostic
	for _, l := range c.NaturalLoops() {
		if !ri.BlockReachable(l.Head) {
			continue
		}
		tc := ri.InferTripCount(c, l)
		pos := loopPos(c, l)
		cause := ""
		if lt, ok := ti.LoopClass(f.Name, l.Head); ok {
			cause = lt.Cause()
		}
		switch {
		case !tc.HasFeasibleExit:
			ds = append(ds, Diagnostic{
				Rule:     RuleLoopUnbounded,
				Severity: SevError,
				Elem:     m.Name,
				Fn:       f.Name,
				Line:     pos.Line,
				Col:      pos.Col,
				Msg:      "loop has no feasible exit; a run-to-completion NIC core would never finish the packet",
				Hint:     "bound the loop with an induction variable and a constant limit",
			})
		case !tc.Bounded:
			ds = append(ds, Diagnostic{
				Rule:     RuleLoopVarBound,
				Severity: SevWarning,
				Elem:     m.Name,
				Fn:       f.Name,
				Line:     pos.Line,
				Col:      pos.Col,
				Msg:      "cannot bound the loop's iteration count; per-packet latency becomes input-dependent",
				Hint:     "cap the controlling variable with a constant (e.g. clamp it before the loop)",
				Cause:    cause,
			})
		case tc.Max > cfg.TripBudget:
			ds = append(ds, Diagnostic{
				Rule:     RuleLoopVarBound,
				Severity: SevWarning,
				Elem:     m.Name,
				Fn:       f.Name,
				Line:     pos.Line,
				Col:      pos.Col,
				Msg: fmt.Sprintf("loop may run %d iterations per packet, beyond the %d budget",
					tc.Max, cfg.TripBudget),
				Hint:  "tighten the loop bound or move the work off the per-packet path",
				Cause: cause,
			})
		}
	}
	return ds
}

// lintCalls applies the API rules: float emulation, unknown APIs, and
// reverse-porting notes for stateful framework calls (one per callee).
func lintCalls(m *ir.Module, f *ir.Func, c *CFG) []Diagnostic {
	var ds []Diagnostic
	noted := map[string]bool{}
	for _, b := range f.Blocks {
		if !c.Reachable(b.Index) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			intr, known := lang.Intrinsics[in.Callee]
			switch {
			case !known:
				ds = append(ds, Diagnostic{
					Rule:     RuleAPIUnknown,
					Severity: SevWarning,
					Elem:     m.Name,
					Fn:       f.Name,
					Line:     in.Pos.Line,
					Col:      in.Pos.Col,
					Msg:      fmt.Sprintf("call to %q, which is not a known framework API; its NIC cost and semantics are unknown", in.Callee),
					Hint:     "port the callee explicitly or replace it with a framework API",
				})
			case intr.Float:
				ds = append(ds, Diagnostic{
					Rule:     RuleFloatOp,
					Severity: SevError,
					Elem:     m.Name,
					Fn:       f.Name,
					Line:     in.Pos.Line,
					Col:      in.Pos.Col,
					Msg:      fmt.Sprintf("%q computes in floating point on the host; NIC cores have no FPU and fall back to soft-float emulation", in.Callee),
					Hint:     "rewrite with fixed-point integer arithmetic (e.g. a shifted EWMA)",
				})
			case intr.Stateful && !noted[in.Callee]:
				noted[in.Callee] = true
				ds = append(ds, Diagnostic{
					Rule:     RuleReversePort,
					Severity: SevInfo,
					Elem:     m.Name,
					Fn:       f.Name,
					Line:     in.Pos.Line,
					Col:      in.Pos.Col,
					Msg:      fmt.Sprintf("%q has divergent host/NIC implementations; the call must be reverse ported", in.Callee),
					Hint:     "review the NIC-side semantics (fixed capacity, no growth) against the host's elastic structures",
				})
			}
		}
	}
	return ds
}

// lintDeadStores flags stores of computed values into locals that are
// never subsequently read. Constant stores are exempt: the -O0-style
// lowering emits them for every declaration default, and they cost the
// NIC compiler nothing after register allocation.
func lintDeadStores(m *ir.Module, f *ir.Func, c *CFG) []Diagnostic {
	lv := ComputeLiveness(c)
	var ds []Diagnostic
	for _, b := range f.Blocks {
		if !c.Reachable(b.Index) {
			continue
		}
		live := lv.LiveOut(b.Index).Clone()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			switch in.Op {
			case ir.OpLLoad:
				live.Add(in.Slot)
			case ir.OpLStore:
				if !live.Has(in.Slot) && in.Args[0].Kind != ir.VConst {
					ds = append(ds, Diagnostic{
						Rule:     RuleDeadStore,
						Severity: SevWarning,
						Elem:     m.Name,
						Fn:       f.Name,
						Line:     in.Pos.Line,
						Col:      in.Pos.Col,
						Msg:      fmt.Sprintf("computed value stored to local slot %d is never read", in.Slot),
						Hint:     "delete the assignment, or use the value; wimpy NIC cores cannot spare the cycles",
					})
				}
				live.Remove(in.Slot)
			}
		}
	}
	return ds
}

// lintUninitReads flags loads that may observe a slot's uninitialized
// entry value (possible only in hand-built IR; lowering zero-initializes
// every declaration).
func lintUninitReads(m *ir.Module, f *ir.Func, c *CFG) []Diagnostic {
	rd := ComputeReachingDefs(c)
	var ds []Diagnostic
	reported := map[int]bool{} // one report per slot keeps the noise down
	for _, b := range f.Blocks {
		if !c.Reachable(b.Index) {
			continue
		}
		for i, in := range b.Instrs {
			if in.Op != ir.OpLLoad || reported[in.Slot] {
				continue
			}
			for _, d := range rd.At(b.Index, i, in.Slot) {
				if d == UninitDef {
					reported[in.Slot] = true
					ds = append(ds, Diagnostic{
						Rule:     RuleUninitRead,
						Severity: SevWarning,
						Elem:     m.Name,
						Fn:       f.Name,
						Line:     in.Pos.Line,
						Col:      in.Pos.Col,
						Msg:      fmt.Sprintf("local slot %d may be read before it is written", in.Slot),
						Hint:     "initialize the variable on every path before this read",
					})
					break
				}
			}
		}
	}
	return ds
}
