package ir

// Builder incrementally constructs a Func. The lowering pass
// (internal/lang) and the program synthesizer (internal/synth) both build
// IR through it.
type Builder struct {
	F   *Func
	cur *Block
	pos Pos // stamped onto every emitted instruction
}

// At sets the source position stamped onto subsequently emitted
// instructions (the zero Pos marks them position-less).
func (b *Builder) At(p Pos) { b.pos = p }

// NewBuilder starts a function with an entry block.
func NewBuilder(name string, params []Param, ret Type) *Builder {
	f := &Func{Name: name, Params: params, Ret: ret}
	b := &Builder{F: f}
	b.NewBlock("entry")
	return b
}

// NewBlock appends a new block and makes it current.
func (b *Builder) NewBlock(name string) *Block {
	blk := &Block{Index: len(b.F.Blocks), Name: name}
	b.F.Blocks = append(b.F.Blocks, blk)
	b.cur = blk
	return blk
}

// SetBlock switches the insertion point.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Current returns the current insertion block.
func (b *Builder) Current() *Block { return b.cur }

// NewSlot allocates a fresh local stack slot.
func (b *Builder) NewSlot() int {
	s := b.F.NSlots
	b.F.NSlots++
	return s
}

func (b *Builder) emit(in *Instr) *Instr {
	in.Pos = b.pos
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

func (b *Builder) value(in *Instr) Value {
	in.ID = b.F.NumVals
	b.F.NumVals++
	b.emit(in)
	return InstrVal(in.ID, in.Ty)
}

// Bin emits a binary compute instruction.
func (b *Builder) Bin(op Op, ty Type, x, y Value) Value {
	return b.value(&Instr{ID: -1, Op: op, Ty: ty, Args: []Value{x, y}})
}

// ICmp emits a comparison producing Bool.
func (b *Builder) ICmp(p Pred, x, y Value) Value {
	return b.value(&Instr{ID: -1, Op: OpICmp, Ty: Bool, Pred: p, Args: []Value{x, y}})
}

// Not emits a bitwise complement.
func (b *Builder) Not(ty Type, x Value) Value {
	return b.value(&Instr{ID: -1, Op: OpNot, Ty: ty, Args: []Value{x}})
}

// ZExt widens x to ty (no-op widths are the caller's concern).
func (b *Builder) ZExt(ty Type, x Value) Value {
	return b.value(&Instr{ID: -1, Op: OpZExt, Ty: ty, Args: []Value{x}})
}

// Trunc narrows x to ty.
func (b *Builder) Trunc(ty Type, x Value) Value {
	return b.value(&Instr{ID: -1, Op: OpTrunc, Ty: ty, Args: []Value{x}})
}

// Convert coerces x to ty, emitting zext/trunc as needed.
func (b *Builder) Convert(ty Type, x Value) Value {
	if x.Ty == ty || ty == Void {
		return x
	}
	if ty.Bits() > x.Ty.Bits() {
		return b.ZExt(ty, x)
	}
	if ty.Bits() < x.Ty.Bits() {
		return b.Trunc(ty, x)
	}
	return x
}

// LLoad loads a local slot.
func (b *Builder) LLoad(slot int, ty Type) Value {
	return b.value(&Instr{ID: -1, Op: OpLLoad, Ty: ty, Slot: slot})
}

// LStore stores to a local slot.
func (b *Builder) LStore(slot int, v Value) {
	b.emit(&Instr{ID: -1, Op: OpLStore, Ty: v.Ty, Slot: slot, Args: []Value{v}})
}

// GLoad loads a global scalar (index == nil) or array element.
func (b *Builder) GLoad(g string, ty Type, index *Value) Value {
	in := &Instr{ID: -1, Op: OpGLoad, Ty: ty, Global: g}
	if index != nil {
		in.Args = []Value{*index}
	}
	return b.value(in)
}

// GStore stores to a global scalar (index == nil) or array element.
func (b *Builder) GStore(g string, v Value, index *Value) {
	in := &Instr{ID: -1, Op: OpGStore, Ty: v.Ty, Global: g, Args: []Value{v}}
	if index != nil {
		in.Args = append(in.Args, *index)
	}
	b.emit(in)
}

// Call emits a framework API call. global names the state argument for
// map/vector APIs ("" otherwise).
func (b *Builder) Call(callee, global string, ret Type, args ...Value) Value {
	in := &Instr{ID: -1, Op: OpCall, Ty: ret, Callee: callee, Global: global, Args: args}
	if ret == Void {
		b.emit(in)
		return Value{}
	}
	return b.value(in)
}

// Br emits an unconditional branch.
func (b *Builder) Br(target *Block) {
	b.emit(&Instr{ID: -1, Op: OpBr, True: target.Index})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, t, f *Block) {
	b.emit(&Instr{ID: -1, Op: OpCondBr, Args: []Value{cond}, True: t.Index, False: f.Index})
}

// Ret emits a return.
func (b *Builder) Ret(v *Value) {
	in := &Instr{ID: -1, Op: OpRet}
	if v != nil {
		in.Args = []Value{*v}
	}
	b.emit(in)
}

// Terminated reports whether the current block already ends in a
// terminator.
func (b *Builder) Terminated() bool { return b.cur.Terminator() != nil }
