// Command claravet is Clara's project-specific determinism analyzer.
//
// The simulation and model-training packages promise bit-identical
// results for identical inputs (same seed ⇒ same trajectory, same
// training config ⇒ same weights); that contract is what lets golden
// tests pin trajectories byte-for-byte and model bundles hash stably.
// claravet statically flags the constructs that silently break it:
//
//   - time-now: time.Now() — wall-clock reads make output depend on
//     when the run happened;
//   - global-rand: math/rand package-level functions (rand.Intn,
//     rand.Float64, ...) — they draw from the process-global source;
//     deterministic code must thread an explicitly seeded *rand.Rand
//     (rand.New/rand.NewSource/rand.NewZipf are fine);
//   - map-range: ranging over a map — Go randomizes iteration order per
//     run, so any fold over it must be order-insensitive or sorted;
//   - float-reduce: loops that are pure scalar reductions over the
//     loop's own index (s += a[i], s += a[i]*b[i]) outside
//     internal/ml/vek — summation order is part of the numeric
//     contract, so reductions belong in the shared kernels where the
//     order is fixed in one place.
//
// A finding is suppressed by a `//claravet:allow` comment on the same
// line or the line directly above — the escape hatch for sites that
// are provably outside the deterministic path (wall-clock metrics,
// order-insensitive map folds).
//
// The analyzer is deliberately syntactic (go/ast only, no dependencies,
// no type checker): map-range detection uses the package's own
// declarations to learn which names are maps, which covers the
// deterministic packages' actual code and errs silent rather than
// noisy on what it cannot see. It is a tripwire, not a proof.
//
// Usage: claravet [dir ...]   (default: the deterministic packages)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs are the packages whose determinism contract claravet
// enforces (see their package comments: offload's golden trajectories,
// ml's bit-identical training, nicsim's cost model, fleet's
// result-is-a-pure-function-of-the-job promise).
var defaultDirs = []string{
	"internal/ml",
	"internal/offload",
	"internal/nicsim",
	"internal/fleet",
}

// allowDirective suppresses findings on its own line or the next.
const allowDirective = "claravet:allow"

// globalRandAllowed are the math/rand selectors that do NOT touch the
// global source: constructors for explicitly seeded generators.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var all []finding
	for _, dir := range dirs {
		fs, err := vetDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "claravet: %v\n", err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.rule < b.rule
	})
	for _, f := range all {
		fmt.Printf("%s:%d:%d: %s: %s\n", f.pos.Filename, f.pos.Line, f.pos.Column, f.rule, f.msg)
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// vetDir analyzes one directory tree (every non-test .go file).
func vetDir(root string) ([]finding, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		byDir[dir] = append(byDir[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var all []finding
	for _, d := range dirs {
		sort.Strings(byDir[d])
		fs, err := vetPackage(d, byDir[d])
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}

// vetPackage parses one package's files and runs every check.
func vetPackage(dir string, paths []string) ([]finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// The vek package is where reduction loops are supposed to live.
	inVek := filepath.Base(dir) == "vek"
	var out []finding
	for _, f := range files {
		allowed := allowedLines(fset, f)
		v := &vetter{
			fset:    fset,
			imports: importNames(f),
			// Map names are learned per file: the same short name (idx,
			// order, ...) routinely means a map in one file and a slice in
			// another, and a package-wide table would flag the slice.
			mapNames: collectMapNames([]*ast.File{f}),
			allowed:  allowed,
			inVek:    inVek,
		}
		ast.Inspect(f, v.check)
		out = append(out, v.findings...)
	}
	return out, nil
}

// allowedLines returns the line numbers suppressed by allow directives:
// the directive's own line and the one after it.
func allowedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, allowDirective) {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}

// importNames maps each file-local import name to its import path.
func importNames(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, im := range f.Imports {
		path := strings.Trim(im.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if im.Name != nil {
			name = im.Name.Name
		}
		out[name] = path
	}
	return out
}

// collectMapNames learns which identifiers in a package denote maps,
// from the declarations the package itself contains: typed var decls
// and struct fields, function params/results, and `:=` bindings of
// make(map[...])/map literals.
func collectMapNames(files []*ast.File) map[string]bool {
	names := map[string]bool{}
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fd := range fl.List {
			if isMapType(fd.Type) {
				for _, n := range fd.Names {
					names[n.Name] = true
				}
			}
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, id := range n.Names {
					switch {
					case isMapType(n.Type):
						names[id.Name] = true
					case n.Type == nil && i < len(n.Values) && isMapExpr(n.Values[i]):
						names[id.Name] = true
					}
				}
			case *ast.StructType:
				addField(n.Fields)
			case *ast.FuncType:
				addField(n.Params)
				addField(n.Results)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
						continue
					}
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if isMapExpr(rhs) {
						names[id.Name] = true
					}
				}
			}
			return true
		})
	}
	return names
}

func isMapType(e ast.Expr) bool {
	_, ok := e.(*ast.MapType)
	return ok
}

// isMapExpr recognizes make(map[...]) and map-literal right-hand sides.
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			return isMapType(e.Args[0])
		}
	case *ast.CompositeLit:
		return isMapType(e.Type)
	}
	return false
}

// vetter runs the per-file checks.
type vetter struct {
	fset     *token.FileSet
	imports  map[string]string
	mapNames map[string]bool
	allowed  map[int]bool
	inVek    bool
	findings []finding
}

func (v *vetter) report(n ast.Node, rule, msg string) {
	pos := v.fset.Position(n.Pos())
	if v.allowed[pos.Line] {
		return
	}
	v.findings = append(v.findings, finding{pos: pos, rule: rule, msg: msg})
}

func (v *vetter) check(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		v.checkCall(n)
	case *ast.RangeStmt:
		v.checkRange(n)
	case *ast.ForStmt:
		v.checkReduce(n.Body, forInduction(n))
	}
	return true
}

func (v *vetter) checkCall(c *ast.CallExpr) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	switch v.imports[id.Name] {
	case "time":
		if sel.Sel.Name == "Now" {
			v.report(c, "time-now", "wall-clock read in a deterministic package; thread the value in or annotate the metrics-only site")
		}
	case "math/rand":
		if !globalRandAllowed[sel.Sel.Name] {
			v.report(c, "global-rand", fmt.Sprintf("rand.%s draws from the process-global source; use an explicitly seeded *rand.Rand", sel.Sel.Name))
		}
	}
}

func (v *vetter) checkRange(r *ast.RangeStmt) {
	name := ""
	switch x := r.X.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	}
	if name != "" && v.mapNames[name] {
		v.report(r, "map-range", fmt.Sprintf("iteration order over map %q is randomized per run; sort the keys or annotate an order-insensitive fold", name))
	}
	v.checkReduce(r.Body, rangeInduction(r))
}

// forInduction returns the induction variable of a classic counted loop
// (`for i := 0; ...`), or "" when there is none.
func forInduction(f *ast.ForStmt) string {
	as, ok := f.Init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 {
		return ""
	}
	if id, ok := as.Lhs[0].(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// rangeInduction returns the key variable of a range loop (`for i :=
// range a`, `for i, x := range a`), or "" when it is blank or reused.
func rangeInduction(r *ast.RangeStmt) string {
	if r.Tok != token.DEFINE {
		return ""
	}
	if id, ok := r.Key.(*ast.Ident); ok && id.Name != "_" {
		return id.Name
	}
	return ""
}

// checkReduce flags pure scalar reductions — loops whose entire body is
// `s += a[i]` / `s += a[i]*b[i]` accumulations indexed by the loop's own
// induction variable. Exactly those loops are replaceable element-for-
// element by a vek kernel (vek.Sum, vek.Dot) without reordering the
// summation, so they belong in internal/ml/vek where the order is owned
// in one place. Loops that interleave other work (computing the term
// being summed, guards, gathers through an index slice) are fused
// compute, not misplaced kernels, and are left alone.
func (v *vetter) checkReduce(body *ast.BlockStmt, induction string) {
	if v.inVek || body == nil || induction == "" || len(body.List) == 0 {
		return
	}
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		if _, ok := as.Lhs[0].(*ast.Ident); !ok {
			return // accumulating into a[i] is a vector update, not a reduction
		}
		if !isReductionRHS(as.Rhs[0], induction) {
			return
		}
	}
	v.report(body.List[0], "float-reduce", "loop body is a pure scalar reduction; use a vek kernel (vek.Sum/vek.Dot) so summation order is owned centrally")
}

// isReductionRHS matches a[i] and a[i]*b[i] where every index is exactly
// the loop's induction variable — the sum/dot shapes the vek kernels
// provide. Any other index (a gather through idx[i], an offset, a
// different variable) disqualifies the term.
func isReductionRHS(e ast.Expr, induction string) bool {
	byInduction := func(x ast.Expr) bool {
		ix, ok := x.(*ast.IndexExpr)
		if !ok {
			return false
		}
		id, ok := ix.Index.(*ast.Ident)
		return ok && id.Name == induction
	}
	switch e := e.(type) {
	case *ast.IndexExpr:
		return byInduction(e)
	case *ast.BinaryExpr:
		return e.Op == token.MUL && byInduction(e.X) && byInduction(e.Y)
	}
	return false
}
