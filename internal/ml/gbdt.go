package ml

import (
	"math"
	"math/rand"
)

// GBDTConfig controls gradient-boosted tree training.
type GBDTConfig struct {
	Trees       int
	LR          float64
	MaxDepth    int
	MinSamples  int
	SubsampleN  float64 // row subsampling fraction per round
	FeatureFrac float64
	Seed        int64
}

func (c GBDTConfig) norm() GBDTConfig {
	if c.Trees == 0 {
		c.Trees = 100
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.SubsampleN == 0 {
		c.SubsampleN = 1
	}
	if c.FeatureFrac == 0 {
		c.FeatureFrac = 1
	}
	return c
}

// GBDT is a gradient-boosted regression ensemble (squared loss), the model
// class Clara uses for scale-out prediction (§4.2, "a regression model
// based upon GBDT").
type GBDT struct {
	base  float64
	lr    float64
	trees []*Tree
}

// FitGBDT trains gradient boosting on squared loss.
func FitGBDT(X [][]float64, y []float64, cfg GBDTConfig) *GBDT {
	cfg = cfg.norm()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	g := &GBDT{lr: cfg.LR}
	n := len(y)
	var s float64
	for _, v := range y {
		s += v
	}
	g.base = s / float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = g.base
	}
	resid := make([]float64, n)
	tcfg := TreeConfig{MaxDepth: cfg.MaxDepth, MinSamples: cfg.MinSamples,
		FeatureFrac: cfg.FeatureFrac, Rng: rng}

	for round := 0; round < cfg.Trees; round++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		Xr, yr := X, resid
		if cfg.SubsampleN < 1 {
			k := int(cfg.SubsampleN * float64(n))
			if k < 2 {
				k = 2
			}
			Xr = make([][]float64, k)
			yr = make([]float64, k)
			for i := 0; i < k; i++ {
				j := rng.Intn(n)
				Xr[i] = X[j]
				yr[i] = resid[j]
			}
		}
		tr := FitTree(Xr, yr, tcfg)
		g.trees = append(g.trees, tr)
		for i := range pred {
			pred[i] += cfg.LR * tr.Predict(X[i])
		}
	}
	return g
}

// Predict evaluates the ensemble.
func (g *GBDT) Predict(x []float64) float64 {
	s := g.base
	for _, tr := range g.trees {
		s += g.lr * tr.Predict(x)
	}
	return s
}

// GBDTClassifier is binary logistic gradient boosting wrapped one-vs-rest
// for multi-class problems.
type GBDTClassifier struct {
	Classes []int
	models  []*gbdtLogit
}

type gbdtLogit struct {
	base  float64
	lr    float64
	trees []*Tree
}

func (m *gbdtLogit) score(x []float64) float64 {
	s := m.base
	for _, tr := range m.trees {
		s += m.lr * tr.Predict(x)
	}
	return s
}

func fitGBDTLogit(X [][]float64, y01 []float64, cfg GBDTConfig, rng *rand.Rand) *gbdtLogit {
	n := len(y01)
	var pos float64
	for _, v := range y01 {
		pos += v
	}
	p := (pos + 1) / (float64(n) + 2)
	m := &gbdtLogit{lr: cfg.LR, base: math.Log(p / (1 - p))}
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = m.base
	}
	grad := make([]float64, n)
	tcfg := TreeConfig{MaxDepth: cfg.MaxDepth, MinSamples: cfg.MinSamples,
		FeatureFrac: cfg.FeatureFrac, Rng: rng}
	for round := 0; round < cfg.Trees; round++ {
		for i := range grad {
			grad[i] = y01[i] - sigmoid(raw[i]) // negative gradient of logloss
		}
		tr := FitTree(X, grad, tcfg)
		m.trees = append(m.trees, tr)
		for i := range raw {
			raw[i] += cfg.LR * tr.Predict(X[i])
		}
	}
	return m
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// FitGBDTClassifier trains one logistic GBDT per class.
func FitGBDTClassifier(X [][]float64, labels []int, cfg GBDTConfig) *GBDTClassifier {
	cfg = cfg.norm()
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	classes := distinctLabels(labels)
	gc := &GBDTClassifier{Classes: classes}
	for _, c := range classes {
		y := make([]float64, len(labels))
		for i, l := range labels {
			if l == c {
				y[i] = 1
			}
		}
		gc.models = append(gc.models, fitGBDTLogit(X, y, cfg, rng))
	}
	return gc
}

// PredictClass returns the argmax-score class.
func (gc *GBDTClassifier) PredictClass(x []float64) int {
	best, bestScore := gc.Classes[0], math.Inf(-1)
	for i, m := range gc.models {
		if s := m.score(x); s > bestScore {
			bestScore = s
			best = gc.Classes[i]
		}
	}
	return best
}

// Forest is a random-forest regressor (the model TPOT selects in §5.2).
type Forest struct {
	trees []*Tree
}

// ForestConfig controls random-forest training.
type ForestConfig struct {
	Trees       int
	MaxDepth    int
	FeatureFrac float64
	Seed        int64
}

// FitForest trains a bagged ensemble with feature subsampling.
func FitForest(X [][]float64, y []float64, cfg ForestConfig) *Forest {
	if cfg.Trees == 0 {
		cfg.Trees = 60
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 8
	}
	if cfg.FeatureFrac == 0 {
		cfg.FeatureFrac = 0.7
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	f := &Forest{}
	n := len(y)
	for k := 0; k < cfg.Trees; k++ {
		Xb := make([][]float64, n)
		yb := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			Xb[i] = X[j]
			yb[i] = y[j]
		}
		f.trees = append(f.trees, FitTree(Xb, yb, TreeConfig{
			MaxDepth: cfg.MaxDepth, MinSamples: 3,
			FeatureFrac: cfg.FeatureFrac, Rng: rng,
		}))
	}
	return f
}

// Predict averages the ensemble.
func (f *Forest) Predict(x []float64) float64 {
	var s float64
	for _, tr := range f.trees {
		s += tr.Predict(x)
	}
	return s / float64(len(f.trees))
}
