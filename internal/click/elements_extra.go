package click

// Extra elements beyond Table 2: exercise the Vector API (§3.3's second
// stateful class) and classic policing patterns.

// Dedup suppresses recently-seen flow signatures with a Vector scan —
// Click's suppressor pattern. The vector delete in the eviction path is
// exactly the host/NIC divergence the paper's reverse porting handles: on
// the host the delete shifts the tail; on the NIC it tombstones.
var Dedup = register(&Element{
	Name:     "dedup",
	Desc:     "recent-signature duplicate suppressor (Vector-based)",
	Stateful: true,
	Insights: []string{"pred", "rev", "scale"},
	Src: `
// dedup: drop packets whose signature appeared among the last few dozen;
// evict the oldest entry when full.
vec<u64> recent[48];
global u32 dup_drops;
global u32 evictions;

void handle() {
	u64 sig = (u64(pkt_ip_src()) << 32) | (u64(pkt_tcp_seq()) ^ u64(pkt_ip_dst()));
	u32 n = vec_len(recent);
	u32 i = 0;
	u32 seen = 0;
	// Scan occupied slots; on the NIC tombstones make the scan range the
	// full capacity, so bound by it.
	while (i < 48 && seen < n) {
		u64 v = vec_get(recent, i);
		if (v != 0) {
			seen += 1;
			if (v == sig) {
				dup_drops += 1;
				pkt_drop();
				return;
			}
		}
		i += 1;
	}
	if (n >= 40) {
		vec_delete(recent, 0);
		evictions += 1;
	}
	vec_push(recent, sig);
	pkt_send(0);
}
`,
})

// TokenBucket polices traffic with a classic two-rate token bucket. Its
// scalar state (tokens, timestamps, counters) is touched on every packet —
// coalescing material alongside the Figure 13 elements.
var TokenBucket = register(&Element{
	Name:     "tokenbucket",
	Desc:     "token-bucket rate limiter",
	Stateful: true,
	Insights: []string{"pred", "scale", "pack"},
	Src: `
// tokenbucket: refill from elapsed time, spend per byte; conforming
// traffic forwards, excess drops.
global u64 tb_last;
global u32 tb_tokens;
global u32 tb_conform;
global u32 tb_exceed;
global u32 tb_rate;   // tokens per microsecond
global u32 tb_burst;  // bucket depth

void handle() {
	if (tb_rate == 0) {
		tb_rate = 1500;
		tb_burst = 150000;
		tb_tokens = tb_burst;
	}
	u64 now = pkt_time();
	if (tb_last == 0) { tb_last = now; }
	u64 elapsed_us = (now - tb_last) / 1000;
	if (elapsed_us > 0) {
		u64 refill = elapsed_us * u64(tb_rate);
		u64 filled = u64(tb_tokens) + refill;
		if (filled > u64(tb_burst)) { filled = u64(tb_burst); }
		tb_tokens = u32(filled);
		tb_last = now;
	}
	u32 cost = u32(pkt_len());
	if (tb_tokens >= cost) {
		tb_tokens -= cost;
		tb_conform += 1;
		pkt_send(0);
		return;
	}
	tb_exceed += 1;
	pkt_drop();
}
`,
})

// ECMPBalancer spreads flows over a healthy-server set with rendezvous
// hashing; health state lives in an array maintained by control packets.
var ECMPBalancer = register(&Element{
	Name:     "ecmp",
	Desc:     "ECMP load balancer with health state",
	Stateful: true,
	Insights: []string{"pred", "scale", "place"},
	Src: `
// ecmp: highest-random-weight hashing over 16 backends; control packets
// (proto 253) flip backend health.
global u32 healthy[16];
global u32 lb_sent[16];
global u32 lb_nohealthy;

void handle() {
	if (pkt_ip_proto() == 253) {
		// Control: src low byte = backend, ttl = up/down.
		u32 b = pkt_ip_src() & 15;
		if (pkt_ip_ttl() > 0) { healthy[b] = 1; } else { healthy[b] = 0; }
		pkt_drop();
		return;
	}
	u64 fkey = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	u32 best = 0xffffffff;
	u32 bestw = 0;
	for (u32 b = 0; b < 16; b += 1) {
		if (healthy[b] == 0) { continue; }
		u32 w = hash32(fkey ^ (u64(b) * 2654435761));
		if (best == 0xffffffff || w > bestw) {
			best = b;
			bestw = w;
		}
	}
	if (best == 0xffffffff) {
		lb_nohealthy += 1;
		pkt_drop();
		return;
	}
	pkt_set_ip_dst(0x0a030000 | best);
	lb_sent[best] += 1;
	pkt_csum_update();
	pkt_send(best & 3);
}
`,
	Setup: setupECMP,
})
