package offload

import (
	"testing"

	"clara/internal/nicsim"
)

// checkInvariants asserts every per-round invariant the simulator
// guarantees for any valid config. Shared by the grid test and the
// fuzzer.
func checkInvariants(t *testing.T, cfg Config, traj *Trajectory) {
	t.Helper()
	n := cfg.norm()
	caps := n.Capacity
	if len(traj.Rounds) != cfg.Rounds {
		t.Fatalf("got %d rounds, want %d", len(traj.Rounds), cfg.Rounds)
	}
	for i, r := range traj.Rounds {
		if r.Round != i+1 {
			t.Fatalf("round %d numbered %d", i, r.Round)
		}
		// Packet conservation: every generated packet is forwarded fast,
		// forwarded slow, or dropped — exactly once.
		if r.Generated != r.FastPath+r.SlowPath+r.Dropped {
			t.Fatalf("round %d: conservation broken: gen=%d fast=%d slow=%d drop=%d",
				r.Round, r.Generated, r.FastPath, r.SlowPath, r.Dropped)
		}
		if r.Generated < 0 || r.FastPath < 0 || r.SlowPath < 0 || r.Dropped < 0 ||
			r.Offloads < 0 || r.OverOffloads < 0 || r.Flows < 0 {
			t.Fatalf("round %d: negative counter: %+v", r.Round, r)
		}
		// Budget ceilings.
		if r.Generated > n.Scenario.PPS {
			t.Fatalf("round %d: generated %d exceeds PPS cap %d", r.Round, r.Generated, n.Scenario.PPS)
		}
		if r.FastPath > caps.FastPathPPS {
			t.Fatalf("round %d: fast path %d exceeds capacity %d", r.Round, r.FastPath, caps.FastPathPPS)
		}
		if r.SlowPath > caps.SlowPathPPS {
			t.Fatalf("round %d: slow path %d exceeds capacity %d", r.Round, r.SlowPath, caps.SlowPathPPS)
		}
		if r.Offloads > caps.OffloadPerRound {
			t.Fatalf("round %d: %d rule inserts exceed budget %d", r.Round, r.Offloads, caps.OffloadPerRound)
		}
		if r.TableUsed < 0 || r.TableUsed > caps.OffloadTable {
			t.Fatalf("round %d: table occupancy %d outside [0,%d]", r.Round, r.TableUsed, caps.OffloadTable)
		}
		// The threshold never leaves the policy's clamp range.
		if r.Threshold < n.Policy.Min || r.Threshold > n.Policy.Max {
			t.Fatalf("round %d: threshold %d outside [%d,%d]", r.Round, r.Threshold, n.Policy.Min, n.Policy.Max)
		}
		// The static policy never moves at all.
		if n.Policy.Kind == PolicyStatic && r.Threshold != n.Policy.Initial {
			t.Fatalf("round %d: static threshold moved to %d (initial %d)", r.Round, r.Threshold, n.Policy.Initial)
		}
		// Rates are exactly the rounded counter ratios.
		if r.Generated > 0 {
			if want := round6(float64(r.FastPath) / float64(r.Generated)); r.OffloadRate != want {
				t.Fatalf("round %d: offload rate %v, want %v", r.Round, r.OffloadRate, want)
			}
			if want := round6(float64(r.Dropped) / float64(r.Generated)); r.DropRate != want {
				t.Fatalf("round %d: drop rate %v, want %v", r.Round, r.DropRate, want)
			}
		}
		// A quiet round (no drops, no over-offloads) is the adjustment
		// rule's fixed point: the next round must run with the same
		// threshold.
		if i+1 < len(traj.Rounds) && r.Dropped == 0 && r.OverOffloads == 0 {
			if next := traj.Rounds[i+1].Threshold; next != r.Threshold {
				t.Fatalf("round %d was quiet but threshold moved %d -> %d", r.Round, r.Threshold, next)
			}
		}
	}
}

// TestSimulateInvariants runs the invariant suite over the full policy ×
// scenario grid under several seeds.
func TestSimulateInvariants(t *testing.T) {
	p := nicsim.DefaultParams()
	caps := DeriveCapacities(p, NominalPrediction())
	for _, sc := range Scenarios() {
		for _, kind := range []PolicyKind{PolicyStatic, PolicyDynamic, PolicyInsight} {
			for _, seed := range []int64{1, 7, 99} {
				var pol PolicyConfig
				if kind == PolicyInsight {
					_, pol = SeedFromPrediction(NominalPrediction(), p, sc)
				} else {
					pol = BaselinePolicy(kind, sc)
				}
				cfg := Config{Scenario: sc, Capacity: caps, Policy: pol, Rounds: 64, Seed: seed}
				traj, err := Simulate(cfg)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", sc.Name, kind, seed, err)
				}
				checkInvariants(t, cfg, traj)
			}
		}
	}
}

// TestSteadyStateDrops pins the steady-state behaviour of the adaptive
// policies: both converge on every scenario at the golden seed, and once
// steady they hold drops at zero — the strongest form of "dropCount
// monotone non-increasing at steady state" (the tail is identically 0).
func TestSteadyStateDrops(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, kind := range []PolicyKind{PolicyDynamic, PolicyInsight} {
			traj, err := Simulate(goldenConfig(sc, kind))
			if err != nil {
				t.Fatal(err)
			}
			conv := traj.ConvergenceRound(DefaultConvergenceTarget)
			if conv == -1 {
				t.Errorf("%s/%s never converged", sc.Name, kind)
				continue
			}
			for _, r := range traj.Rounds[conv-1:] {
				if r.DropRate > DefaultConvergenceTarget {
					t.Fatalf("%s/%s: round %d drop rate %v above target after convergence@%d",
						sc.Name, kind, r.Round, r.DropRate, conv)
				}
			}
			tail := traj.Rounds[len(traj.Rounds)-16:]
			for _, r := range tail {
				if r.Dropped != 0 {
					t.Errorf("%s/%s: round %d still drops %d packets at steady state",
						sc.Name, kind, r.Round, r.Dropped)
				}
			}
		}
	}
}

// TestConvergenceRound exercises the metric on synthetic trajectories.
func TestConvergenceRound(t *testing.T) {
	mk := func(drops ...float64) *Trajectory {
		tr := &Trajectory{}
		for i, d := range drops {
			tr.Rounds = append(tr.Rounds, Record{Round: i + 1, DropRate: d})
		}
		return tr
	}
	cases := []struct {
		name string
		traj *Trajectory
		want int
	}{
		{"empty", mk(), -1},
		{"always clean", mk(0, 0, 0.005, 0), 1},
		{"never clean", mk(0.5, 0.5, 0.5), -1},
		{"last round dirty", mk(0, 0, 0.5), -1},
		{"settles mid-run", mk(0.5, 0.2, 0.009, 0, 0), 3},
		{"relapse restarts the clock", mk(0.5, 0, 0, 0.2, 0, 0), 5},
	}
	for _, c := range cases {
		if got := c.traj.ConvergenceRound(DefaultConvergenceTarget); got != c.want {
			t.Errorf("%s: ConvergenceRound = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestPolicyAdjust pins the threshold rule itself: over-offloads raise,
// drops lower, over-offloads win when both fire, quiet rounds hold, the
// clamp range binds, and the static policy never moves.
func TestPolicyAdjust(t *testing.T) {
	cfg := PolicyConfig{Kind: PolicyDynamic, Initial: 100, Step: 10, Min: 50, Max: 120}
	p := newPolicy(cfg)
	p.adjust(0, 5, 0) // over-offloads: raise
	if p.threshold != 110 {
		t.Fatalf("after over-offloads: %d, want 110", p.threshold)
	}
	p.adjust(0, 1, 100) // both fire: over-offloads win
	if p.threshold != 120 {
		t.Fatalf("after both: %d, want 120", p.threshold)
	}
	p.adjust(0, 9, 0) // clamp at Max
	if p.threshold != 120 {
		t.Fatalf("Max clamp: %d, want 120", p.threshold)
	}
	for i := 0; i < 10; i++ {
		p.adjust(0, 0, 1) // drops: lower, clamped at Min
	}
	if p.threshold != 50 {
		t.Fatalf("Min clamp: %d, want 50", p.threshold)
	}
	p.adjust(3, 0, 0) // quiet round: hold
	if p.threshold != 50 {
		t.Fatalf("quiet round moved threshold: %d", p.threshold)
	}

	st := newPolicy(PolicyConfig{Kind: PolicyStatic, Initial: 77, Step: 10, Min: 1, Max: 100})
	st.adjust(0, 100, 100)
	if st.threshold != 77 {
		t.Fatalf("static policy moved: %d", st.threshold)
	}
}

// TestSeedPolicySustainable checks the insight seeding contract: for
// every standard scenario the seeded threshold's candidate stream fits
// inside the rule-insertion budget (with the 20% headroom) and the
// offload table, per the same empirical flow-size view seeding uses, and
// the threshold below it does not (it is the smallest sustainable one).
func TestSeedPolicySustainable(t *testing.T) {
	p := nicsim.DefaultParams()
	caps := DeriveCapacities(p, NominalPrediction())
	for _, sc := range Scenarios() {
		pol := SeedPolicy(sc, caps)
		if pol.Kind != PolicyInsight {
			t.Fatalf("%s: seeded kind %v", sc.Name, pol.Kind)
		}
		if pol.Initial < 1 || pol.Initial > sc.Sizes.maxSize() {
			t.Fatalf("%s: seeded threshold %d outside [1,%d]", sc.Name, pol.Initial, sc.Sizes.maxSize())
		}
		if pol.Step < 1 {
			t.Fatalf("%s: seeded step %d < 1", sc.Name, pol.Step)
		}
		samples := sc.Sizes.Samples(seedSamples, seedSampleSeed)
		candidates := func(thr int) float64 {
			var c float64
			for _, s := range samples {
				if s > thr {
					c++
				}
			}
			return c * float64(sc.CPS) / float64(len(samples))
		}
		budget := 0.8 * float64(caps.OffloadPerRound)
		if got := candidates(pol.Initial); got > budget {
			t.Errorf("%s: seeded threshold %d admits %.0f candidates/round, budget %.0f",
				sc.Name, pol.Initial, got, budget)
		}
		if pol.Initial > 1 {
			if got := candidates(pol.Initial - 1); got <= budget {
				// The lower threshold also fits the insertion budget, so
				// minimality must come from the table constraint.
				var occ float64
				fr := sc.flowRounds()
				thr := pol.Initial - 1
				for _, s := range samples {
					if s > thr {
						occ += float64(fr) * float64(s-thr) / float64(s)
					}
				}
				occ *= float64(sc.CPS) / float64(len(samples))
				if occ <= float64(caps.OffloadTable) {
					t.Errorf("%s: threshold %d is also sustainable; seeding did not pick the smallest",
						sc.Name, thr)
				}
			}
		}
	}
}

// TestOffloadedShareMonotone: the fast-path share estimate shrinks as
// the threshold grows — the property the seeding search relies on.
func TestOffloadedShareMonotone(t *testing.T) {
	samples := ZipfScenario().Sizes.Samples(4096, 1)
	prev := 1.1
	for thr := 1; thr <= 1024; thr *= 2 {
		s := OffloadedShare(samples, thr)
		if s < 0 || s > 1 {
			t.Fatalf("share(%d) = %v outside [0,1]", thr, s)
		}
		if s > prev {
			t.Fatalf("share(%d) = %v rose above previous %v", thr, s, prev)
		}
		prev = s
	}
	if OffloadedShare(nil, 1) != 0 {
		t.Error("empty samples must give share 0")
	}
}

// TestConfigValidate walks the rejection paths.
func TestConfigValidate(t *testing.T) {
	caps := Capacities{FastPathPPS: 1000, SlowPathPPS: 100, OffloadTable: 64, OffloadPerRound: 8}
	good := Config{Scenario: ZipfScenario(), Capacity: caps, Rounds: 4, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"negative rounds", func(c *Config) { c.Rounds = -3 }},
		{"zero CPS", func(c *Config) { c.Scenario.CPS = 0 }},
		{"negative CPS", func(c *Config) { c.Scenario.CPS = -1 }},
		{"negative PPS", func(c *Config) { c.Scenario.PPS = -1 }},
		{"negative flow rounds", func(c *Config) { c.Scenario.FlowRounds = -1 }},
		{"negative attack", func(c *Config) { c.Scenario.AttackCPS = -1 }},
		{"zipf skew too small", func(c *Config) { c.Scenario.Sizes.S = 1.0 }},
		{"zipf empty range", func(c *Config) { c.Scenario.Sizes.Max = 0 }},
		{"bimodal bad frac", func(c *Config) {
			c.Scenario.Sizes = SizeDist{Kind: SizeBimodal, ElephantSize: 100, MouseMax: 4, ElephantFrac: 1.5}
		}},
		{"unknown dist", func(c *Config) { c.Scenario.Sizes.Kind = SizeDistKind(9) }},
		{"zero slow path", func(c *Config) { c.Capacity.SlowPathPPS = 0 }},
		{"zero table", func(c *Config) { c.Capacity.OffloadTable = 0 }},
		{"zero insert budget", func(c *Config) { c.Capacity.OffloadPerRound = 0 }},
		{"unknown policy", func(c *Config) { c.Policy.Kind = PolicyKind(7) }},
		{"min above max", func(c *Config) { c.Policy.Min = 10; c.Policy.Max = 5 }},
		{"initial below min", func(c *Config) { c.Policy.Min = 10; c.Policy.Initial = 5 }},
		{"initial above max", func(c *Config) { c.Policy.Max = 10; c.Policy.Initial = 50 }},
	}
	for _, b := range bad {
		c := good
		b.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: config accepted", b.name)
		}
		if _, err := Simulate(c); err == nil {
			t.Errorf("%s: Simulate accepted invalid config", b.name)
		}
	}
}

// TestNameLookups covers the CLI name parsers.
func TestNameLookups(t *testing.T) {
	for _, name := range []string{"zipf", "synflood", "elephantmice"} {
		sc, err := ScenarioByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ScenarioByName(%q) = %+v, %v", name, sc, err)
		}
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
	for _, name := range []string{"static", "dynamic", "insight"} {
		k, err := PolicyByName(name)
		if err != nil || k.String() != name {
			t.Errorf("PolicyByName(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	if got := PolicyKind(42).String(); got != "policy(42)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

// TestDeriveCapacities sanity-checks the hardware mapping: a heavier NF
// prediction must shrink the slow path and leave every other budget
// unchanged, and all budgets are positive.
func TestDeriveCapacities(t *testing.T) {
	p := nicsim.DefaultParams()
	light := DeriveCapacities(p, NominalPrediction())
	if err := light.Validate(); err != nil {
		t.Fatalf("derived capacities invalid: %v", err)
	}
	heavy := *NominalPrediction()
	heavy.TotalCompute *= 4
	heavy.TotalMem *= 4
	hc := DeriveCapacities(p, &heavy)
	if hc.SlowPathPPS >= light.SlowPathPPS {
		t.Errorf("heavier NF did not shrink the slow path: %d vs %d", hc.SlowPathPPS, light.SlowPathPPS)
	}
	if hc.FastPathPPS != light.FastPathPPS || hc.OffloadTable != light.OffloadTable ||
		hc.OffloadPerRound != light.OffloadPerRound {
		t.Errorf("prediction leaked into non-slow-path budgets: %+v vs %+v", hc, light)
	}
}
