package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clara/internal/isa"
	"clara/internal/nicsim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// The golden cases are fixed Insights values (not trained analyses):
// the test pins the *formatting* of Report, so it must not depend on
// model training. The three cases cover the report's branches — an NF
// with a CRC detection, one with LPM plus placement and packs, and a
// stateless one with no accelerator match.
func goldenInsights() map[string]*Insights {
	return map[string]*Insights{
		"report_crc": {
			NF:       "wepdecap",
			Workload: "large-flows",
			Prediction: &ModulePrediction{
				Name:         "wepdecap",
				TotalCompute: 412.7,
				TotalAPI:     96,
				TotalMem:     14,
			},
			Algorithm:      AlgoCRC,
			SuggestedCores: 18,
			Placement: nicsim.Placement{
				"wep_state": isa.CLS,
				"frames":    isa.EMEM,
			},
			Packs: [][]string{{"wep_state", "frames"}},
		},
		"report_lpm": {
			NF:       "iplookup",
			Workload: "medium-mix",
			Prediction: &ModulePrediction{
				Name:         "iplookup",
				TotalCompute: 188.2,
				TotalAPI:     310,
				TotalMem:     9,
			},
			Algorithm:      AlgoLPM,
			SuggestedCores: 30,
			Placement: nicsim.Placement{
				"trie_hi":  isa.CLS,
				"trie_lo":  isa.CTM,
				"counters": isa.IMEM,
				"routes":   isa.EMEM,
			},
		},
		"report_stateless": {
			NF:       "udpipencap",
			Workload: "small-flows",
			Prediction: &ModulePrediction{
				Name:         "udpipencap",
				TotalCompute: 73.0,
				TotalAPI:     44,
				TotalMem:     0,
			},
			Algorithm:      AlgoNone,
			SuggestedCores: 4,
		},
	}
}

// TestReportGolden compares Report output byte-for-byte against
// testdata/*.golden; run with -update to regenerate after intentional
// formatting changes.
func TestReportGolden(t *testing.T) {
	for name, ins := range goldenInsights() {
		name, ins := name, ins
		t.Run(name, func(t *testing.T) {
			got := ins.Report()
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestReportRegionOrdering pins the placement section's structure: the
// regions appear fastest-first (CLS, CTM, IMEM, EMEM) and globals within
// a region are listed in sorted order — the contract the sort.Strings
// rewrite of sorted() must preserve.
func TestReportRegionOrdering(t *testing.T) {
	ins := &Insights{
		NF:         "order",
		Workload:   "w",
		Prediction: &ModulePrediction{},
		Placement: nicsim.Placement{
			"zeta":  isa.CLS,
			"alpha": isa.CLS,
			"mid":   isa.IMEM,
			"big_b": isa.EMEM,
			"big_a": isa.EMEM,
		},
	}
	rep := ins.Report()
	iCLS := strings.Index(rep, "CLS ")
	iIMEM := strings.Index(rep, "IMEM")
	iEMEM := strings.Index(rep, "EMEM")
	if iCLS < 0 || iIMEM < 0 || iEMEM < 0 || !(iCLS < iIMEM && iIMEM < iEMEM) {
		t.Fatalf("regions out of order (CLS@%d IMEM@%d EMEM@%d):\n%s", iCLS, iIMEM, iEMEM, rep)
	}
	if !strings.Contains(rep, "alpha, zeta") {
		t.Errorf("CLS globals not sorted:\n%s", rep)
	}
	if !strings.Contains(rep, "big_a, big_b") {
		t.Errorf("EMEM globals not sorted:\n%s", rep)
	}
	if strings.Contains(rep, "CTM") {
		t.Errorf("empty region rendered:\n%s", rep)
	}
}

func TestSortedIsNonDestructive(t *testing.T) {
	in := []string{"c", "a", "b"}
	out := sorted(in)
	if in[0] != "c" || in[1] != "a" || in[2] != "b" {
		t.Errorf("sorted mutated its input: %v", in)
	}
	if out[0] != "a" || out[1] != "b" || out[2] != "c" {
		t.Errorf("sorted wrong: %v", out)
	}
}
