package analysis_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"clara/internal/analysis"
	"clara/internal/click"
	"clara/internal/ir"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// The three seeded offender NFs of the acceptance criteria: an unbounded
// loop, a float-path API call, and an oversized state table. Each is a
// plausible "straight host port" an operator might try to offload.
var lintFixtures = []struct {
	name string
	src  string
}{
	{"spinwait", `// spinwait: busy-polls until a device flag clears.
global u32 busy;

void handle() {
	u32 spins = 0;
	while (true) {
		spins = spins + 1;
	}
}
`},
	{"ratemon", `// ratemon: EWMA rate estimate per packet (host computes in doubles).
void handle() {
	u32 rate = ewma_rate(u32(pkt_len()));
	if (rate > 1000000) { pkt_drop(); return; }
	pkt_send(0);
}
`},
	{"conntrack_huge", `// conntrack_huge: straight host port with an oversized flow table.
map<u64,u64> conn[80000000];

void handle() {
	u64 key = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	if (!map_contains(conn, key)) {
		map_insert(conn, key, 0);
	}
	pkt_send(0);
}
`},
}

func lintFixture(t *testing.T, name string) []analysis.Diagnostic {
	t.Helper()
	for _, fx := range lintFixtures {
		if fx.name == name {
			ds, err := analysis.LintSource(fx.name, fx.src, analysis.DefaultConfig())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return ds
		}
	}
	t.Fatalf("no fixture %q", name)
	return nil
}

// TestLintFixtures pins rule IDs, severities, and source positions for the
// three seeded offenders.
func TestLintFixtures(t *testing.T) {
	cases := []struct {
		fixture string
		rule    string
		sev     analysis.Severity
		line    int
	}{
		{"spinwait", analysis.RuleLoopUnbounded, analysis.SevError, 6},
		{"ratemon", analysis.RuleFloatOp, analysis.SevError, 3},
		{"conntrack_huge", analysis.RuleStateOversize, analysis.SevError, 2},
	}
	for _, tc := range cases {
		ds := lintFixture(t, tc.fixture)
		found := false
		for _, d := range ds {
			if d.Rule != tc.rule {
				continue
			}
			found = true
			if d.Severity != tc.sev {
				t.Errorf("%s/%s: severity %v, want %v", tc.fixture, tc.rule, d.Severity, tc.sev)
			}
			if d.Line != tc.line {
				t.Errorf("%s/%s: line %d, want %d", tc.fixture, tc.rule, d.Line, tc.line)
			}
			if d.Col <= 0 {
				t.Errorf("%s/%s: missing column", tc.fixture, tc.rule)
			}
			if d.Elem != tc.fixture {
				t.Errorf("%s/%s: elem %q", tc.fixture, tc.rule, d.Elem)
			}
		}
		if !found {
			t.Errorf("%s: rule %s not reported; got %v", tc.fixture, tc.rule, ds)
		}
	}
}

// TestLintLibraryClean: every stock click element passes the linter with
// no errors or warnings (info-level porting notes are expected and fine).
func TestLintLibraryClean(t *testing.T) {
	cfg := analysis.DefaultConfig()
	sawInfo := false
	for _, e := range click.Library() {
		ds, err := analysis.LintSource(e.Name, e.Src, cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if !analysis.Clean(ds) {
			t.Errorf("%s: not lint-clean:\n%s", e.Name, analysis.Render(ds))
		}
		if s := analysis.Summarize(ds); s.Infos > 0 {
			sawInfo = true
		}
	}
	if !sawInfo {
		t.Error("no element produced a reverse-porting note; the linter is not seeing calls")
	}
}

// TestLintJSONRoundTrip: diagnostics survive encoding/json both ways,
// including the textual severity.
func TestLintJSONRoundTrip(t *testing.T) {
	for _, fx := range lintFixtures {
		ds, err := analysis.LintSource(fx.name, fx.src, analysis.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(ds)
		if err != nil {
			t.Fatal(err)
		}
		var back []analysis.Diagnostic
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: %v\n%s", fx.name, err, blob)
		}
		if !reflect.DeepEqual(ds, back) {
			t.Errorf("%s: round trip drifted:\n%v\n%v", fx.name, ds, back)
		}
	}
	var sev analysis.Severity
	if err := sev.UnmarshalText([]byte("fatal")); err == nil {
		t.Error("unknown severity accepted")
	}
}

func TestLintRecursion(t *testing.T) {
	direct := `
u32 fact(u32 n) {
	if (n < 2) { return 1; }
	return n * fact(n - 1);
}
void handle() {
	pkt_send(fact(u32(pkt_len())));
}
`
	mutual := `
u32 even(u32 n) {
	if (n == 0) { return 1; }
	return odd(n - 1);
}
u32 odd(u32 n) {
	if (n == 0) { return 0; }
	return even(n - 1);
}
void handle() {
	pkt_send(even(u32(pkt_len())));
}
`
	for name, src := range map[string]string{"direct": direct, "mutual": mutual} {
		ds, err := analysis.LintSource(name, src, analysis.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		found := false
		for _, d := range ds {
			if d.Rule == analysis.RuleRecursion && d.Severity == analysis.SevError {
				found = true
				if d.Line <= 0 {
					t.Errorf("%s: recursion diagnostic has no position", name)
				}
			}
		}
		if !found {
			t.Errorf("%s: recursion not reported: %v", name, ds)
		}
	}
}

func TestLintDeadStore(t *testing.T) {
	src := `
void handle() {
	u32 x = u32(pkt_len()) + 1;
	x = x + 2;
	pkt_send(0);
}
`
	ds, err := analysis.LintSource("deadstore", src, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range ds {
		if d.Rule == analysis.RuleDeadStore {
			found = true
			if d.Line != 4 {
				t.Errorf("dead store at line %d, want 4", d.Line)
			}
		}
	}
	if !found {
		t.Errorf("dead store not reported: %v", ds)
	}
}

// TestLintDeadStoreConstSuppressed: declaration-default constant stores
// (which -O0-style lowering emits everywhere) are never flagged.
func TestLintDeadStoreConstSuppressed(t *testing.T) {
	src := `
void handle() {
	u32 unused = 0;
	pkt_send(0);
}
`
	ds, err := analysis.LintSource("constinit", src, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Rule == analysis.RuleDeadStore {
			t.Errorf("constant initializer flagged as dead store: %v", d)
		}
	}
}

// TestLintUninitRead: possible in hand-built IR only; the frontend
// zero-initializes every declaration.
func TestLintUninitRead(t *testing.T) {
	b := ir.NewBuilder("handle", []ir.Param{{Name: "p", Ty: ir.U32}}, ir.U32)
	s0 := b.NewSlot()
	entry := b.Current()
	cond := b.ICmp(ir.PredULT, ir.ParamVal(0, ir.U32), ir.ConstVal(5, ir.U32))
	then := b.NewBlock("then")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	b.CondBr(cond, then, exit)
	b.SetBlock(then)
	b.LStore(s0, ir.ConstVal(7, ir.U32))
	b.Br(exit)
	b.SetBlock(exit)
	r := b.LLoad(s0, ir.U32)
	b.Ret(&r)

	m := &ir.Module{Name: "handbuilt", Funcs: []*ir.Func{b.F}}
	ds := analysis.LintModule(m, analysis.DefaultConfig())
	found := false
	for _, d := range ds {
		if d.Rule == analysis.RuleUninitRead {
			found = true
		}
	}
	if !found {
		t.Errorf("uninitialized read not reported: %v", ds)
	}
}

// TestLintVarBoundLoop: a loop bounded only by an uncapped u32 input
// exceeds the trip budget and warns; the same loop bounded by a u16 input
// fits the budget and is clean.
func TestLintVarBoundLoop(t *testing.T) {
	over := `
void handle() {
	u32 n = pkt_ip_src();
	u32 acc = 0;
	for (u32 i = 0; i < n; i += 1) { acc = acc + i; }
	pkt_send(acc);
}
`
	under := `
void handle() {
	u32 n = u32(pkt_payload_len());
	u32 acc = 0;
	for (u32 i = 0; i < n; i += 1) { acc = acc + i; }
	pkt_send(acc);
}
`
	ds, err := analysis.LintSource("overbudget", over, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range ds {
		if d.Rule == analysis.RuleLoopVarBound && d.Severity == analysis.SevWarning {
			found = true
			if d.Line != 5 {
				t.Errorf("loop warning at line %d, want 5", d.Line)
			}
		}
	}
	if !found {
		t.Errorf("over-budget loop not reported: %v", ds)
	}

	ds, err = analysis.LintSource("underbudget", under, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Rule == analysis.RuleLoopVarBound || d.Rule == analysis.RuleLoopUnbounded {
			t.Errorf("u16-bounded loop (max 65535) wrongly flagged: %v", d)
		}
	}
}

// TestLintStateWarningTier: state bigger than on-chip SRAM but small
// enough for EMEM warns rather than errors.
func TestLintStateWarningTier(t *testing.T) {
	src := `
global u8 flowtab[8388608];

void handle() {
	flowtab[pkt_ip_src() & 8388607] = 1;
	pkt_send(0);
}
`
	ds, err := analysis.LintSource("ememtab", src, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range ds {
		if d.Rule == analysis.RuleStateOversize {
			found = true
			if d.Severity != analysis.SevWarning {
				t.Errorf("8 MB table severity %v, want warning", d.Severity)
			}
		}
	}
	if !found {
		t.Errorf("EMEM-tier table not reported: %v", ds)
	}
}

// TestLintGolden pins the rendered diagnostics of every fixture; run with
// -update to regenerate after intentional changes.
func TestLintGolden(t *testing.T) {
	for _, fx := range lintFixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			ds, err := analysis.LintSource(fx.name, fx.src, analysis.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			got := analysis.Render(ds)
			path := filepath.Join("testdata", "lint_"+fx.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("lint output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestDiagnosticOrdering: diagnostics order by source position first
// (line, col), then rule, regardless of severity or emitting pass.
func TestDiagnosticOrdering(t *testing.T) {
	ds := []analysis.Diagnostic{
		{Rule: "b", Severity: analysis.SevInfo, Line: 1},
		{Rule: "a", Severity: analysis.SevError, Line: 9},
		{Rule: "c", Severity: analysis.SevWarning, Line: 2},
		{Rule: "d", Severity: analysis.SevError, Line: 2},
	}
	analysis.SortDiagnostics(ds)
	want := []string{"b", "c", "d", "a"}
	for i, r := range want {
		if ds[i].Rule != r {
			t.Fatalf("order %v, want %v", ds, want)
		}
	}
}

// TestDiagnosticDedup: the same rule+position+message emitted by two
// passes collapses to one finding, and the richer copy's cause survives.
func TestDiagnosticDedup(t *testing.T) {
	ds := []analysis.Diagnostic{
		{Rule: "r", Fn: "handle", Line: 3, Col: 1, Msg: "m"},
		{Rule: "r", Fn: "handle", Line: 3, Col: 1, Msg: "m", Cause: "payload-dependent: derives from pkt_payload"},
		{Rule: "r", Fn: "handle", Line: 4, Col: 1, Msg: "m"},
	}
	out := analysis.NormalizeDiagnostics(ds)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d diagnostics, want 2: %v", len(out), out)
	}
	if out[0].Cause == "" {
		t.Fatalf("dedup dropped the richer duplicate's cause: %+v", out[0])
	}
}
