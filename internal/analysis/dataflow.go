package analysis

import "clara/internal/ir"

// This file is the generic worklist dataflow framework. A Problem supplies
// the lattice (Bottom/Meet/Equal) and the block transfer function; Solve
// iterates to a fixpoint over the CFG in reverse postorder (forward) or
// postorder (backward). Liveness, reaching definitions (here), and range
// propagation (range.go, which additionally refines along branch edges)
// are the stock instantiations.

// Dir is a dataflow direction.
type Dir int

// Directions.
const (
	Forward Dir = iota
	Backward
)

// Problem defines one dataflow analysis over lattice values of type F.
type Problem[F any] interface {
	// Boundary is the value at the entry (forward) or exits (backward).
	Boundary() F
	// Bottom is the initial interior value (the meet identity).
	Bottom() F
	// Meet combines the values flowing into a confluence point. It may
	// mutate and return a, but must leave b intact.
	Meet(a, b F) F
	// Transfer applies block b to the incoming value. It must not retain
	// or mutate in.
	Transfer(b *ir.Block, in F) F
	// Equal reports lattice-value equality (fixpoint detection).
	Equal(a, b F) bool
}

// EdgeProblem optionally refines the value flowing along a specific CFG
// edge (e.g. range propagation narrowing a slot on a branch side). The
// returned value must be independent of out (Solve may pass it to several
// edges).
type EdgeProblem[F any] interface {
	Problem[F]
	TransferEdge(from, to int, out F) F
}

// Solution holds the fixpoint: the value entering and leaving each block,
// in the analysis direction (for backward problems In[b] is the value at
// the block's end, Out[b] at its start).
type Solution[F any] struct {
	In  []F
	Out []F
}

// Solve runs the worklist algorithm to a fixpoint. Unreachable blocks
// keep Bottom.
func Solve[F any](c *CFG, dir Dir, p Problem[F]) *Solution[F] {
	n := len(c.F.Blocks)
	sol := &Solution[F]{In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		sol.In[i] = p.Bottom()
		sol.Out[i] = p.Bottom()
	}
	order := c.RPO
	if dir == Backward {
		order = make([]int, len(c.RPO))
		for i, b := range c.RPO {
			order[len(c.RPO)-1-i] = b
		}
	}
	ep, hasEdge := p.(EdgeProblem[F])

	inWork := make([]bool, n)
	var work []int
	for _, b := range order {
		work = append(work, b)
		inWork[b] = true
	}
	// pop front keeps the order-aligned sweep; appended re-visits go to
	// the back.
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		// Gather the incoming value.
		var in F
		var flowIn []int
		if dir == Forward {
			flowIn = c.Preds[b]
		} else {
			flowIn = c.Succs[b]
		}
		boundary := (dir == Forward && b == 0) ||
			(dir == Backward && len(c.Succs[b]) == 0)
		if boundary {
			in = p.Meet(p.Boundary(), p.Bottom())
		} else {
			in = p.Bottom()
		}
		for _, q := range flowIn {
			v := sol.Out[q]
			if hasEdge {
				if dir == Forward {
					v = ep.TransferEdge(q, b, v)
				} else {
					v = ep.TransferEdge(b, q, v)
				}
			}
			in = p.Meet(in, v)
		}
		sol.In[b] = in
		out := p.Transfer(c.F.Blocks[b], in)
		if p.Equal(out, sol.Out[b]) {
			continue
		}
		sol.Out[b] = out
		var flowOut []int
		if dir == Forward {
			flowOut = c.Succs[b]
		} else {
			flowOut = c.Preds[b]
		}
		for _, s := range flowOut {
			if !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return sol
}

// ---------------------------------------------------------------------------
// Liveness of local stack slots (backward, may).

// SlotSet is a bitset over stack-slot indices.
type SlotSet []uint64

// NewSlotSet returns a set sized for n slots.
func NewSlotSet(n int) SlotSet { return make(SlotSet, (n+63)/64) }

// Has reports membership.
func (s SlotSet) Has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

// Add inserts i.
func (s SlotSet) Add(i int) { s[i/64] |= 1 << (i % 64) }

// Remove deletes i.
func (s SlotSet) Remove(i int) { s[i/64] &^= 1 << (i % 64) }

// Clone copies the set.
func (s SlotSet) Clone() SlotSet { return append(SlotSet(nil), s...) }

// Equal reports set equality.
func (s SlotSet) Equal(o SlotSet) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

type livenessProblem struct{ nslots int }

func (p livenessProblem) Boundary() SlotSet { return NewSlotSet(p.nslots) }
func (p livenessProblem) Bottom() SlotSet   { return NewSlotSet(p.nslots) }

func (p livenessProblem) Meet(a, b SlotSet) SlotSet {
	for i := range a {
		a[i] |= b[i]
	}
	return a
}

func (p livenessProblem) Equal(a, b SlotSet) bool { return a.Equal(b) }

func (p livenessProblem) Transfer(b *ir.Block, liveOut SlotSet) SlotSet {
	live := liveOut.Clone()
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := b.Instrs[i]
		switch in.Op {
		case ir.OpLStore:
			live.Remove(in.Slot)
		case ir.OpLLoad:
			live.Add(in.Slot)
		}
	}
	return live
}

// Liveness computes, per block, the set of stack slots live at block entry
// (In) and at block exit (Out). Note the backward convention: the returned
// Solution's In is the value at the block's *end* (live-out) and Out at its
// *start* (live-in).
type Liveness struct {
	sol *Solution[SlotSet]
	n   int
}

// ComputeLiveness runs slot liveness over the CFG.
func ComputeLiveness(c *CFG) *Liveness {
	p := livenessProblem{nslots: c.F.NSlots}
	return &Liveness{sol: Solve[SlotSet](c, Backward, p), n: c.F.NSlots}
}

// LiveOut returns the slots live at the end of block b.
func (lv *Liveness) LiveOut(b int) SlotSet { return lv.sol.In[b] }

// LiveIn returns the slots live at the start of block b.
func (lv *Liveness) LiveIn(b int) SlotSet { return lv.sol.Out[b] }

// ---------------------------------------------------------------------------
// Reaching definitions of local stack slots (forward, may).

// UninitDef is the pseudo-definition index meaning "no store: the slot's
// function-entry (uninitialized) value".
const UninitDef = -1

// DefSite identifies one store instruction.
type DefSite struct {
	Block int
	Instr int // index within the block
}

// ReachingDefs maps, at each program point, every slot to the set of
// stores that may reach it. The per-slot sets are kept as sorted slices of
// def indices into Defs (UninitDef for the entry pseudo-def).
type ReachingDefs struct {
	c *CFG
	// Defs lists every store site; a def index refers into it.
	Defs []DefSite
	// defsOf[slot] lists the def indices storing to slot.
	defsOf [][]int
	sol    *Solution[[]defsPerSlot]
}

type defsPerSlot []int // sorted def indices, or nil meaning {UninitDef}

type reachProblem struct {
	nslots int
	// gen[b][slot] is the last def of slot in b (a store kills all prior
	// defs of its slot within the block), or -2 if b has none.
	gen [][]int
}

const noGen = -2

func (p *reachProblem) Boundary() []defsPerSlot {
	// Every slot starts uninitialized.
	f := make([]defsPerSlot, p.nslots)
	for i := range f {
		f[i] = defsPerSlot{UninitDef}
	}
	return f
}

func (p *reachProblem) Bottom() []defsPerSlot { return make([]defsPerSlot, p.nslots) }

func (p *reachProblem) Meet(a, b []defsPerSlot) []defsPerSlot {
	for i := range a {
		a[i] = mergeSorted(a[i], b[i])
	}
	return a
}

func mergeSorted(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func (p *reachProblem) Equal(a, b []defsPerSlot) bool {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func (p *reachProblem) Transfer(b *ir.Block, in []defsPerSlot) []defsPerSlot {
	out := make([]defsPerSlot, len(in))
	copy(out, in)
	for slot, g := range p.gen[b.Index] {
		if g != noGen {
			out[slot] = defsPerSlot{g}
		}
	}
	return out
}

// ComputeReachingDefs runs reaching definitions for stack slots.
func ComputeReachingDefs(c *CFG) *ReachingDefs {
	rd := &ReachingDefs{c: c, defsOf: make([][]int, c.F.NSlots)}
	p := &reachProblem{nslots: c.F.NSlots, gen: make([][]int, len(c.F.Blocks))}
	for _, b := range c.F.Blocks {
		g := make([]int, c.F.NSlots)
		for i := range g {
			g[i] = noGen
		}
		for ii, in := range b.Instrs {
			if in.Op == ir.OpLStore {
				di := len(rd.Defs)
				rd.Defs = append(rd.Defs, DefSite{Block: b.Index, Instr: ii})
				rd.defsOf[in.Slot] = append(rd.defsOf[in.Slot], di)
				g[in.Slot] = di
			}
		}
		p.gen[b.Index] = g
	}
	rd.sol = Solve[[]defsPerSlot](c, Forward, p)
	return rd
}

// At returns the defs of slot reaching the start of instruction index
// instr in block b.
func (rd *ReachingDefs) At(b, instr, slot int) []int {
	cur := append([]int(nil), rd.sol.In[b][slot]...)
	for ii, in := range rd.c.F.Blocks[b].Instrs {
		if ii >= instr {
			break
		}
		if in.Op == ir.OpLStore && in.Slot == slot {
			// Find this store's def index.
			for _, di := range rd.defsOf[slot] {
				if rd.Defs[di].Block == b && rd.Defs[di].Instr == ii {
					cur = []int{di}
					break
				}
			}
		}
	}
	return cur
}
