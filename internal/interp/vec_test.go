package interp

import (
	"testing"

	"clara/internal/lang"
	"clara/internal/traffic"
)

const vecSrc = `
vec<u64> recent[8];
global u32 pushed;

void handle() {
	u8 op = pkt_ip_ttl();
	if (op == 1) {
		if (vec_push(recent, u64(pkt_ip_src()))) { pushed += 1; }
	}
	if (op == 2) {
		vec_delete(recent, pkt_tcp_sport());
	}
	if (op == 3) {
		pkt_send(u32(vec_get(recent, pkt_tcp_sport())));
		return;
	}
	pkt_send(u32(vec_len(recent)));
}
`

func vecMachine(t *testing.T, mode MapMode) *Machine {
	t.Helper()
	mod, err := lang.Compile("vec", vecSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mod, Config{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func op(ttl uint8, src uint32, idx uint16) traffic.Packet {
	return traffic.Packet{TTL: ttl, SrcIP: src, SrcPort: idx, Proto: traffic.ProtoTCP, OutPort: -2}
}

func run(t *testing.T, m *Machine, p traffic.Packet) traffic.Packet {
	t.Helper()
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVecPushGetLen(t *testing.T) {
	for _, mode := range []MapMode{HostMap, NICMap} {
		m := vecMachine(t, mode)
		run(t, m, op(1, 100, 0))
		run(t, m, op(1, 200, 0))
		run(t, m, op(1, 300, 0))
		if got := run(t, m, op(0, 0, 0)); got.OutPort != 3 {
			t.Errorf("mode %d: len = %d, want 3", mode, got.OutPort)
		}
		if got := run(t, m, op(3, 0, 1)); got.OutPort != 200 {
			t.Errorf("mode %d: get(1) = %d, want 200", mode, got.OutPort)
		}
	}
}

// TestVecDeleteSemanticsDiverge is the §3.3 Vector.delete example: the
// Click host vector shifts the tail down, the NIC library only marks the
// slot invalid — so the element visible at index 0 after delete(0) differs.
func TestVecDeleteSemanticsDiverge(t *testing.T) {
	host := vecMachine(t, HostMap)
	nic := vecMachine(t, NICMap)
	for _, m := range []*Machine{host, nic} {
		run(t, m, op(1, 100, 0))
		run(t, m, op(1, 200, 0))
		run(t, m, op(2, 0, 0)) // delete index 0
	}
	// Both report one live element...
	if got := run(t, host, op(0, 0, 0)); got.OutPort != 1 {
		t.Errorf("host len = %d", got.OutPort)
	}
	if got := run(t, nic, op(0, 0, 0)); got.OutPort != 1 {
		t.Errorf("nic len = %d", got.OutPort)
	}
	// ...but index 0 now reads 200 on the host (shifted) and 0 on the NIC
	// (tombstoned slot).
	if got := run(t, host, op(3, 0, 0)); got.OutPort != 200 {
		t.Errorf("host get(0) = %d, want 200 (shifted)", got.OutPort)
	}
	if got := run(t, nic, op(3, 0, 0)); got.OutPort != 0 {
		t.Errorf("nic get(0) = %d, want 0 (tombstone)", got.OutPort)
	}
	// The NIC keeps 200 at its original slot 1.
	if got := run(t, nic, op(3, 0, 1)); got.OutPort != 200 {
		t.Errorf("nic get(1) = %d, want 200", got.OutPort)
	}
}

func TestVecNICCapacityFixed(t *testing.T) {
	nic := vecMachine(t, NICMap)
	host := vecMachine(t, HostMap)
	for i := uint32(0); i < 12; i++ {
		run(t, nic, op(1, 1000+i, 0))
		run(t, host, op(1, 1000+i, 0))
	}
	nl, _ := nic.VecLive("recent")
	hl, _ := host.VecLive("recent")
	if nl != 8 {
		t.Errorf("NIC vector grew past capacity: %d", nl)
	}
	if hl != 12 {
		t.Errorf("host vector should be elastic: %d", hl)
	}
	if d, _ := nic.VecDropped("recent"); d != 4 {
		t.Errorf("dropped = %d, want 4", d)
	}
	// NIC pushes reuse tombstoned slots.
	run(t, nic, op(2, 0, 3)) // delete slot 3
	run(t, nic, op(1, 7777, 0))
	if v, ok, _ := nic.VecAt("recent", 3); !ok || v != 7777 {
		t.Errorf("tombstoned slot not reused: %v %v", v, ok)
	}
}

func TestVecDeleteProbeCostsDiverge(t *testing.T) {
	// Host delete of the head touches the whole tail; NIC delete touches
	// one slot. This is the performance asymmetry reverse porting makes
	// visible to Clara.
	probesFor := func(mode MapMode) int {
		m := vecMachine(t, mode)
		for i := uint32(0); i < 6; i++ {
			run(t, m, op(1, i, 0))
		}
		probes := 0
		m.SetHooks(Hooks{OnAPI: func(name, _ string, p int, _ uint64, _ int) {
			if name == "vec_delete" {
				probes = p
			}
		}})
		run(t, m, op(2, 0, 0))
		return probes
	}
	h := probesFor(HostMap)
	n := probesFor(NICMap)
	if h <= n {
		t.Errorf("host delete probes %d should exceed NIC probes %d", h, n)
	}
	if n != 1 {
		t.Errorf("NIC delete probes = %d, want 1", n)
	}
}

func TestVecResetState(t *testing.T) {
	m := vecMachine(t, NICMap)
	run(t, m, op(1, 5, 0))
	m.ResetState()
	if l, _ := m.VecLive("recent"); l != 0 {
		t.Errorf("live = %d after reset", l)
	}
	if p, _ := m.Scalar("pushed"); p != 0 {
		t.Errorf("scalar = %d after reset", p)
	}
}
