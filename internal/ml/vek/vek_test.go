package vek

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDotMatchesNaive(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 16, 31, 257} {
		a := make([]float64, n)
		b := make([]float64, n)
		var want float64
		for i := 0; i < n; i++ {
			a[i] = float64(i%13) - 6
			b[i] = 0.5 * float64(i%7)
			want += a[i] * b[i]
		}
		if got := Dot(a, b); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("n=%d: Dot=%g want %g", n, got, want)
		}
	}
}

func TestDotShortA(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4, 100, 100}
	if got := Dot(a, b); !almost(got, 11) {
		t.Fatalf("Dot over short a = %g, want 11", got)
	}
}

func TestAxpyAddScaleZero(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 10, 10, 10, 10}
	Axpy(2, x, y)
	for i := range y {
		if want := 10 + 2*x[i]; !almost(y[i], want) {
			t.Fatalf("Axpy y[%d]=%g want %g", i, y[i], want)
		}
	}
	Add(x, y)
	if !almost(y[0], 13) {
		t.Fatalf("Add y[0]=%g want 13", y[0])
	}
	Scale(0.5, y)
	if !almost(y[0], 6.5) {
		t.Fatalf("Scale y[0]=%g want 6.5", y[0])
	}
	Zero(y)
	for i := range y {
		if y[i] != 0 {
			t.Fatalf("Zero left y[%d]=%g", i, y[i])
		}
	}
}

func TestGemvFamily(t *testing.T) {
	// A = [[1 2 3],[4 5 6]] (2x3), x = [1 1 1], xt = [1 2]
	a := []float64{1, 2, 3, 4, 5, 6}
	x := []float64{1, 1, 1}
	y := make([]float64, 2)
	Gemv(y, a, x, 2, 3)
	if !almost(y[0], 6) || !almost(y[1], 15) {
		t.Fatalf("Gemv = %v, want [6 15]", y)
	}
	GemvAdd(y, a, x, 2, 3)
	if !almost(y[0], 12) || !almost(y[1], 30) {
		t.Fatalf("GemvAdd = %v, want [12 30]", y)
	}
	yt := make([]float64, 3)
	GemvTAdd(yt, a, []float64{1, 2}, 2, 3)
	// col sums weighted: [1+8, 2+10, 3+12]
	if !almost(yt[0], 9) || !almost(yt[1], 12) || !almost(yt[2], 15) {
		t.Fatalf("GemvTAdd = %v, want [9 12 15]", yt)
	}
}

func TestArenaReuseAndGrowth(t *testing.T) {
	var ar Arena
	a := ar.Take(4)
	b := ar.Take(8)
	if len(a) != 4 || len(b) != 8 {
		t.Fatalf("Take lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		a[i] = 1
	}
	for i := range b {
		b[i] = 2
	}
	// Capacity is clamped: writing through a must not alias b.
	if b[0] != 2 {
		t.Fatalf("arena slices alias: b[0]=%g", b[0])
	}
	ar.Reset()
	c := ar.Take(4)
	for i := range c {
		if c[i] != 0 {
			t.Fatalf("Take after Reset not zeroed: c[%d]=%g", i, c[i])
		}
	}
	// Growth mid-cycle keeps outstanding slices valid.
	ar.Reset()
	d := ar.Take(8)
	d[7] = 42
	e := ar.Take(1 << 12)
	if d[7] != 42 {
		t.Fatalf("growth invalidated outstanding slice: d[7]=%g", d[7])
	}
	if len(e) != 1<<12 {
		t.Fatalf("grown Take length %d", len(e))
	}
}

func TestArenaNoAllocSteadyState(t *testing.T) {
	var ar Arena
	warm := func() {
		ar.Reset()
		_ = ar.Take(64)
		_ = ar.Take(128)
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("arena steady state allocates: %g allocs/op", allocs)
	}
}
