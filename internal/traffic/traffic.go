// Package traffic models packets and generates synthetic workloads, playing
// the role of trafgen in the paper's testbed (§5.1). A workload
// specification names the same knobs the paper's workload specs use: packet
// sizes, the number of concurrent flows, and the IP address (flow
// popularity) distribution.
package traffic

import (
	"fmt"
	"math/rand"
)

// Protocol numbers used by the generator.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagACK = 1 << 4
)

// EthIPv4 is the Ethernet type for IPv4.
const EthIPv4 = 0x0800

// Packet is a parsed packet as the NF framework exposes it. SmartNIC packet
// IO engines deliver parsed metadata to the cores (nbi_meta_pkt_info in
// Netronome firmware); we model that directly rather than raw bytes.
type Packet struct {
	Time    uint64 // ingress timestamp, nanoseconds
	Len     uint16 // wire length in bytes
	EthType uint16
	Proto   uint8 // IP protocol
	SrcIP   uint32
	DstIP   uint32
	TTL     uint8
	IPLen   uint16 // IP total length
	IPHL    uint8  // IP header length in 32-bit words
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	TCPFlag uint8
	TCPOff  uint8 // TCP data offset in 32-bit words
	Payload []byte

	// Disposition, filled in by the NF.
	OutPort     int32 // -1 = dropped, -2 = no decision yet
	CsumUpdated bool
}

// Reset clears the disposition fields before handing the packet to an NF.
func (p *Packet) Reset() {
	p.OutPort = -2
	p.CsumUpdated = false
}

// Dropped reports whether the NF dropped the packet.
func (p *Packet) Dropped() bool { return p.OutPort == -1 }

// FlowKey returns the canonical 5-tuple-ish key used by stateful NFs.
func (p *Packet) FlowKey() uint64 {
	return uint64(p.SrcIP)<<32 | uint64(p.DstIP)
}

// Spec describes a synthetic workload.
type Spec struct {
	Name      string
	NumFlows  int     // number of concurrent flows
	PktSize   int     // wire size in bytes (>= 64)
	ZipfS     float64 // flow-popularity skew; 0 = uniform, >1 = heavy head
	SYNRatio  float64 // fraction of TCP packets carrying SYN
	UDPRatio  float64 // fraction of packets that are UDP
	RatePps   float64 // offered load in packets/second (0 = back-to-back)
	PayloadB  int     // payload bytes carried per packet (capped by PktSize)
	Seed      int64
	ServerNet uint32 // destination network (fixed /24 unless 0)
}

// Validate checks the specification for obviously bad values.
func (s *Spec) Validate() error {
	if s.NumFlows <= 0 {
		return fmt.Errorf("workload %q: NumFlows must be positive", s.Name)
	}
	if s.PktSize < 64 {
		return fmt.Errorf("workload %q: PktSize %d below minimum frame size", s.Name, s.PktSize)
	}
	if s.SYNRatio < 0 || s.SYNRatio > 1 || s.UDPRatio < 0 || s.UDPRatio > 1 {
		return fmt.Errorf("workload %q: ratios must be in [0,1]", s.Name)
	}
	return nil
}

// Standard workloads used across the evaluation, mirroring the paper's
// "large flows" vs "small flows" setups (Figure 11): large flows = few
// concurrent flows, so per-flow state mostly hits caches; small flows =
// many concurrent flows, so state misses dominate.
var (
	LargeFlows = Spec{Name: "large-flows", NumFlows: 64, PktSize: 512, ZipfS: 1.1, SYNRatio: 0.02, UDPRatio: 0.2, PayloadB: 256, Seed: 11}
	SmallFlows = Spec{Name: "small-flows", NumFlows: 65536, PktSize: 128, ZipfS: 0.0, SYNRatio: 0.10, UDPRatio: 0.3, PayloadB: 64, Seed: 13}
	MediumMix  = Spec{Name: "medium-mix", NumFlows: 4096, PktSize: 256, ZipfS: 0.9, SYNRatio: 0.05, UDPRatio: 0.3, PayloadB: 128, Seed: 17}
)

// Adversarial / skewed workloads added for the offload-controller
// scenarios (internal/offload): a SYN flood of tiny single-packet
// connections, and a bimodal elephant/mice mix whose handful of heavy
// hitters carry nearly all bytes.
var (
	SYNFlood     = Spec{Name: "syn-flood", NumFlows: 131072, PktSize: 64, ZipfS: 0.0, SYNRatio: 0.95, UDPRatio: 0.0, PayloadB: 0, Seed: 19}
	ElephantMice = Spec{Name: "elephant-mice", NumFlows: 2048, PktSize: 512, ZipfS: 1.6, SYNRatio: 0.02, UDPRatio: 0.1, PayloadB: 384, Seed: 23}
)

// flow is one generated flow's immutable identity plus its progression
// state.
type flow struct {
	srcIP, dstIP     uint32
	srcPort, dstPort uint16
	proto            uint8
	seq, ack         uint32
	started          bool
}

// Generator produces packets for a Spec.
type Generator struct {
	spec  Spec
	rng   *rand.Rand
	zipf  *rand.Zipf
	flows []flow
	now   uint64
	gap   uint64
}

// NewGenerator builds a generator; flows are materialized eagerly so packet
// generation is O(1) per packet.
func NewGenerator(spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g := &Generator{spec: spec, rng: rng}
	if spec.ZipfS > 0 {
		g.zipf = rand.NewZipf(rng, spec.ZipfS+1.0, 1.0, uint64(spec.NumFlows-1))
	}
	serverNet := spec.ServerNet
	if serverNet == 0 {
		serverNet = 0x0A000000 // 10.0.0.0
	}
	g.flows = make([]flow, spec.NumFlows)
	for i := range g.flows {
		proto := uint8(ProtoTCP)
		if rng.Float64() < spec.UDPRatio {
			proto = ProtoUDP
		}
		g.flows[i] = flow{
			srcIP:   0xC0A80000 | uint32(rng.Intn(1<<16)), // 192.168/16 clients
			dstIP:   serverNet | uint32(rng.Intn(256)),
			srcPort: uint16(1024 + rng.Intn(64000)),
			dstPort: uint16([]int{80, 443, 53, 8080}[rng.Intn(4)]),
			proto:   proto,
			seq:     rng.Uint32(),
			ack:     rng.Uint32(),
		}
	}
	if spec.RatePps > 0 {
		g.gap = uint64(1e9 / spec.RatePps)
	} else {
		g.gap = 50 // back-to-back at 20 Mpps offered
	}
	return g, nil
}

// Next generates the next packet.
func (g *Generator) Next() Packet {
	fi := 0
	if g.zipf != nil {
		fi = int(g.zipf.Uint64())
	} else {
		fi = g.rng.Intn(len(g.flows))
	}
	f := &g.flows[fi]

	payload := g.spec.PayloadB
	if payload > g.spec.PktSize-54 {
		payload = g.spec.PktSize - 54
	}
	if payload < 0 {
		payload = 0
	}
	p := Packet{
		Time:    g.now,
		Len:     uint16(g.spec.PktSize),
		EthType: EthIPv4,
		Proto:   f.proto,
		SrcIP:   f.srcIP,
		DstIP:   f.dstIP,
		TTL:     64,
		IPLen:   uint16(g.spec.PktSize - 14),
		IPHL:    5,
		SrcPort: f.srcPort,
		DstPort: f.dstPort,
		OutPort: -2,
	}
	if f.proto == ProtoTCP {
		p.TCPOff = 5
		if !f.started || g.rng.Float64() < g.spec.SYNRatio {
			p.TCPFlag = FlagSYN
			f.started = true
		} else {
			p.TCPFlag = FlagACK
		}
		p.Seq = f.seq
		p.Ack = f.ack
		f.seq += uint32(payload)
	}
	if payload > 0 {
		p.Payload = make([]byte, payload)
		for i := range p.Payload {
			// Deterministic, flow-correlated bytes: cheap but non-constant,
			// so DPI/CRC workloads do real work.
			p.Payload[i] = byte(uint32(i)*2654435761 + f.srcIP + uint32(fi))
		}
	}
	g.now += g.gap
	return p
}

// Trace generates n packets as a slice.
func (g *Generator) Trace(n int) []Packet {
	out := make([]Packet, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// MustTrace builds a generator for spec and returns n packets, panicking on
// an invalid spec (in-tree specs only).
func MustTrace(spec Spec, n int) []Packet {
	g, err := NewGenerator(spec)
	if err != nil {
		panic(err)
	}
	return g.Trace(n)
}
