package core

import (
	"bytes"
	"reflect"
	"testing"

	"clara/internal/click"
	"clara/internal/traffic"
)

// TestProfileFromRecordedTrace: profiling over a recorded+reloaded trace
// must equal profiling over the live generator that produced it (the
// paper's pcap-driven workload profiles, §4.3).
func TestProfileFromRecordedTrace(t *testing.T) {
	e := click.Get("udpcount")
	mod := e.MustModule()
	const n = 400

	live, err := ProfileOnHost(mod, ProfileSetup{Setup: e.Setup}, traffic.MediumMix, n)
	if err != nil {
		t.Fatal(err)
	}

	pkts := traffic.MustTrace(traffic.MediumMix, n)
	var buf bytes.Buffer
	if err := traffic.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	loaded, err := traffic.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := traffic.NewReplayer(loaded)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ProfileOnHostSource(mod, ProfileSetup{Setup: e.Setup}, rep, n)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(live.GlobalFreq, replayed.GlobalFreq) {
		t.Errorf("frequencies diverge:\n live %v\n trace %v", live.GlobalFreq, replayed.GlobalFreq)
	}
	if !reflect.DeepEqual(live.BlockFreq, replayed.BlockFreq) {
		t.Errorf("block frequencies diverge")
	}
}
