// Package ml implements, from scratch on the standard library, every
// machine-learning technique the paper's pipeline uses or compares against:
//
//   - LSTM + fully-connected head for instruction prediction (§3.2),
//   - DNN (MLP) and 1-D CNN baselines (§5.2),
//   - linear SVM for algorithm identification (§4.1),
//   - decision trees, random forests, kNN and GBDT (§5.3, §5.4 baselines),
//   - GBDT regression for scale-out analysis (§4.2),
//   - pairwise (LambdaMART-style) gradient-boosted ranking (§4.5),
//   - k-means for access-vector clustering (§4.4),
//   - PCA for the Figure 10(a) feature-space view,
//   - an AutoML pipeline search standing in for TPOT (§5.1).
//
// All training is deterministic given the caller's seed.
package ml

import (
	"math"
	"math/rand"

	"clara/internal/ml/vek"
)

// Regressor predicts a scalar from a feature vector.
type Regressor interface {
	Predict(x []float64) float64
}

// Classifier predicts a class label from a feature vector.
type Classifier interface {
	PredictClass(x []float64) int
}

// Dot computes the inner product. Thin wrapper over the shared vector
// kernels in internal/ml/vek so every model picks up the same unrolled
// (and therefore consistently associated) summation.
func Dot(a, b []float64) float64 { return vek.Dot(a, b) }

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) { vek.Axpy(alpha, x, y) }

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) { vek.Scale(alpha, x) }

// randInit fills w with small uniform values in [-r, r].
func randInit(rng *rand.Rand, w []float64, r float64) {
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * r
	}
}

// Adam is the Adam optimizer over a flat parameter vector.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	m, v    []float64
	t       int
	clipAbs float64
}

// NewAdam returns an Adam optimizer for n parameters with gradient-norm
// clipping at clip (0 disables clipping).
func NewAdam(n int, lr, clip float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make([]float64, n), v: make([]float64, n), clipAbs: clip,
	}
}

// Step applies one update of params -= lr * mhat/(sqrt(vhat)+eps).
func (a *Adam) Step(params, grads []float64) {
	a.t++
	if a.clipAbs > 0 {
		var norm float64
		for _, g := range grads {
			norm += g * g
		}
		if norm > a.clipAbs*a.clipAbs {
			Scale(a.clipAbs/math.Sqrt(norm), grads)
		}
	}
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range params {
		g := grads[i]
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		params[i] -= a.LR * (a.m[i] / b1c) / (math.Sqrt(a.v[i]/b2c) + a.Eps)
	}
}
