package analysis

import (
	"clara/internal/ir"
)

// Sparse conditional constant propagation (interprocedural) and the IR
// simplification pass built on it. The lattice per value/slot is the
// classic three-point chain top (unvisited) > const c > bottom (varying);
// edge feasibility is tracked exactly as in range propagation, so a
// branch whose condition folds to a constant executes only one side and
// code behind the dead side stays top. Interprocedurally, parameter cells
// join over in-module call sites and return cells summarize callees,
// iterated to a fixpoint over call-graph SCCs.
//
// Two lint rules read the result: const-branch (a two-way branch whose
// condition is compile-time constant — on a run-to-completion NIC core
// the dead side is pure I-store waste) and dead-code (a block no feasible
// path reaches). SimplifyModule applies the same facts as a rewrite:
// operand folding, constant-branch straightening, unreachable-block
// removal, and dead pure-value elimination — the optional pre-prediction
// cleanup pass, so predictions reflect the code a NIC compiler would
// actually emit.

// cell kinds: the three-point constant lattice.
const (
	cellTop    uint8 = iota // no evidence yet (unvisited/optimistic)
	cellConst               // exactly one runtime value
	cellBottom              // varying
)

// constCell is one lattice element.
type constCell struct {
	kind uint8
	val  uint64
}

var bottomCell = constCell{kind: cellBottom}

// Const reports the cell's value if it is a single constant.
func (c constCell) Const() (uint64, bool) { return c.val, c.kind == cellConst }

func joinCell(a, b constCell) constCell {
	switch {
	case a.kind == cellTop:
		return b
	case b.kind == cellTop:
		return a
	case a.kind == cellConst && b.kind == cellConst && a.val == b.val:
		return a
	default:
		return bottomCell
	}
}

// foldOp folds one compute instruction over constant operands, mirroring
// the interpreter's exact semantics (width masking, shift-amount &63,
// division by zero yielding all-ones like the NIC firmware).
func foldOp(in *ir.Instr, a, b uint64) uint64 {
	mask := typeMax(in.Ty)
	switch in.Op {
	case ir.OpAdd:
		return (a + b) & mask
	case ir.OpSub:
		return (a - b) & mask
	case ir.OpMul:
		return (a * b) & mask
	case ir.OpUDiv:
		if b == 0 {
			return mask
		}
		return (a / b) & mask
	case ir.OpURem:
		if b == 0 {
			return 0
		}
		return (a % b) & mask
	case ir.OpAnd:
		return a & b & mask
	case ir.OpOr:
		return (a | b) & mask
	case ir.OpXor:
		return (a ^ b) & mask
	case ir.OpShl:
		return (a << (b & 63)) & mask
	case ir.OpLShr:
		return (a >> (b & 63)) & mask
	case ir.OpNot:
		return ^a & mask
	case ir.OpZExt, ir.OpTrunc:
		return a & mask
	case ir.OpICmp:
		if cmpPred(in.Pred, a, b) {
			return 1
		}
		return 0
	}
	return 0
}

// cmpPred evaluates an unsigned comparison (the interpreter's cmpPred).
func cmpPred(p ir.Pred, a, b uint64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredULT:
		return a < b
	case ir.PredULE:
		return a <= b
	case ir.PredUGT:
		return a > b
	case ir.PredUGE:
		return a >= b
	}
	return false
}

// SCCPInfo is the module-level constant-propagation fixpoint.
type SCCPInfo struct {
	CG  *CallGraph
	fns []*fnConst
}

type fnConst struct {
	vals   []constCell
	params []constCell
	ret    constCell
	sol    *Solution[sccpState]
}

// sccpState is the per-point lattice value: reachability plus a cell per
// slot.
type sccpState struct {
	reachable bool
	slots     []constCell
}

func (s sccpState) clone() sccpState {
	return sccpState{reachable: s.reachable, slots: append([]constCell(nil), s.slots...)}
}

type sccpProblem struct {
	si      *SCCPInfo
	node    int
	changed bool
}

func (p *sccpProblem) fn() *fnConst { return p.si.fns[p.node] }

func (p *sccpProblem) Boundary() sccpState {
	f := p.si.CG.Funcs[p.node]
	s := sccpState{reachable: true, slots: make([]constCell, f.NSlots)}
	for i := range s.slots {
		// Slot entry values are unknown in hand-built IR; lowering
		// zero-initializes declarations, but a store is always emitted for
		// those, so bottom here costs nothing on frontend output.
		s.slots[i] = bottomCell
	}
	return s
}

func (p *sccpProblem) Bottom() sccpState { return sccpState{} }

func (p *sccpProblem) Meet(a, b sccpState) sccpState {
	if !b.reachable {
		return a
	}
	if !a.reachable {
		return b.clone()
	}
	for i := range a.slots {
		a.slots[i] = joinCell(a.slots[i], b.slots[i])
	}
	return a
}

func (p *sccpProblem) Equal(a, b sccpState) bool {
	if a.reachable != b.reachable {
		return false
	}
	for i := range a.slots {
		if a.slots[i] != b.slots[i] {
			return false
		}
	}
	return true
}

// operandCell resolves an operand under the current slot state using the
// accumulated value cells.
func (p *sccpProblem) operandCell(v ir.Value) constCell {
	ft := p.fn()
	switch v.Kind {
	case ir.VConst:
		return constCell{kind: cellConst, val: uint64(v.Const) & typeMax(v.Ty)}
	case ir.VParam:
		if v.ID >= 0 && v.ID < len(ft.params) {
			return ft.params[v.ID]
		}
		return bottomCell
	case ir.VInstr:
		if v.ID >= 0 && v.ID < len(ft.vals) {
			return ft.vals[v.ID]
		}
	}
	return bottomCell
}

// eval computes the cell of one instruction's result.
func (p *sccpProblem) eval(in *ir.Instr, slots []constCell) constCell {
	switch {
	case in.Op == ir.OpLLoad:
		if in.Slot >= 0 && in.Slot < len(slots) {
			return slots[in.Slot]
		}
		return bottomCell
	case in.Op == ir.OpGLoad:
		return bottomCell // runtime NF state
	case in.Op == ir.OpCall:
		if node := p.si.CG.CalleeNode(in); node >= 0 {
			callee := p.si.fns[node]
			for i, a := range in.Args {
				if i >= len(callee.params) {
					break
				}
				j := joinCell(callee.params[i], p.operandCell(a))
				if j != callee.params[i] {
					callee.params[i] = j
					p.changed = true
				}
			}
			return callee.ret
		}
		return bottomCell // intrinsics read packets/state
	case in.Op.IsCompute():
		var args [2]constCell
		for i, a := range in.Args {
			if i >= 2 {
				break
			}
			args[i] = p.operandCell(a)
		}
		// Optimistic: any top operand keeps the result top; any bottom
		// makes it bottom; all-const folds.
		for i := range in.Args {
			if i >= 2 {
				break
			}
			if args[i].kind == cellBottom {
				return bottomCell
			}
		}
		for i := range in.Args {
			if i >= 2 {
				break
			}
			if args[i].kind == cellTop {
				return constCell{}
			}
		}
		return constCell{kind: cellConst, val: foldOp(in, args[0].val, args[1].val)}
	}
	return bottomCell
}

func (p *sccpProblem) Transfer(b *ir.Block, in sccpState) sccpState {
	if !in.reachable {
		return sccpState{}
	}
	out := in.clone()
	ft := p.fn()
	for _, instr := range b.Instrs {
		cc := p.eval(instr, out.slots)
		if instr.ID >= 0 && instr.ID < len(ft.vals) {
			j := joinCell(ft.vals[instr.ID], cc)
			if j != ft.vals[instr.ID] {
				ft.vals[instr.ID] = j
				p.changed = true
			}
		}
		switch instr.Op {
		case ir.OpLStore:
			if instr.Slot >= 0 && instr.Slot < len(out.slots) {
				out.slots[instr.Slot] = p.operandCell(instr.Args[0])
			}
		case ir.OpRet:
			if len(instr.Args) > 0 {
				j := joinCell(ft.ret, p.operandCell(instr.Args[0]))
				if j != ft.ret {
					ft.ret = j
					p.changed = true
				}
			}
		}
	}
	return out
}

// TransferEdge kills the infeasible side of a branch whose condition is
// constant. Like range propagation, the decision must be derivable from
// the end-of-block slot state alone (same-block definition chains), so a
// killed edge is re-examined whenever the out-state changes.
func (p *sccpProblem) TransferEdge(from, to int, out sccpState) sccpState {
	if !out.reachable {
		return out
	}
	term := p.si.CG.CFGs[p.node].F.Blocks[from].Terminator()
	if term == nil || term.Op != ir.OpCondBr || term.True == term.False {
		return out
	}
	if cc, exact := p.evalAt(from, term.Args[0], out.slots); exact {
		if c, ok := cc.Const(); ok && (c != 0) != (to == term.True) {
			return sccpState{}
		}
	}
	return out
}

// evalAt re-evaluates v against the end-of-block slot state, walking
// same-block definition chains. exact=false means the value cannot be
// soundly reconstructed there.
func (p *sccpProblem) evalAt(block int, v ir.Value, slots []constCell) (constCell, bool) {
	switch v.Kind {
	case ir.VConst, ir.VParam:
		return p.operandCell(v), true
	case ir.VInstr:
		ri := p.si.CG.CFGs[p.node]
		def, bi, idx := findDef(ri.F, v.ID)
		if def == nil || bi != block {
			return bottomCell, false
		}
		switch {
		case def.Op == ir.OpLLoad:
			if storedAfter(ri.F, block, idx, def.Slot) {
				return bottomCell, false
			}
			return slots[def.Slot], true
		case def.Op == ir.OpGLoad || def.Op == ir.OpCall:
			return bottomCell, true
		case def.Op.IsCompute():
			exact := true
			var args [2]constCell
			for i, a := range def.Args {
				if i >= 2 {
					break
				}
				cc, ok := p.evalAt(block, a, slots)
				if !ok {
					exact = false
				}
				args[i] = cc
			}
			if !exact {
				return bottomCell, false
			}
			for i := range def.Args {
				if i >= 2 {
					break
				}
				if args[i].kind != cellConst {
					return args[i], true
				}
			}
			return constCell{kind: cellConst, val: foldOp(def, args[0].val, args[1].val)}, true
		}
	}
	return bottomCell, false
}

// findDef locates the defining instruction of SSA value id.
func findDef(f *ir.Func, id int) (*ir.Instr, int, int) {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.ID == id {
				return in, b.Index, i
			}
		}
	}
	return nil, -1, -1
}

// storedAfter reports whether slot is stored after instruction index idx
// in block.
func storedAfter(f *ir.Func, block, idx, slot int) bool {
	instrs := f.Blocks[block].Instrs
	for i := idx + 1; i < len(instrs); i++ {
		if instrs[i].Op == ir.OpLStore && instrs[i].Slot == slot {
			return true
		}
	}
	return false
}

// ComputeSCCP runs interprocedural sparse conditional constant
// propagation over a call graph.
func ComputeSCCP(cg *CallGraph) *SCCPInfo {
	si := &SCCPInfo{CG: cg}
	si.fns = make([]*fnConst, len(cg.Funcs))
	for i, f := range cg.Funcs {
		fc := &fnConst{
			vals:   make([]constCell, f.NumVals),
			params: make([]constCell, len(f.Params)),
		}
		// Root functions (no in-module callers: the packet handler, or any
		// externally invoked entry) take arbitrary runtime arguments.
		if len(cg.Callers[i]) == 0 {
			for pi := range fc.params {
				fc.params[pi] = bottomCell
			}
		}
		si.fns[i] = fc
	}
	cg.FixpointSCC(func(node int) bool {
		p := &sccpProblem{si: si, node: node}
		si.fns[node].sol = Solve[sccpState](cg.CFGs[node], Forward, p)
		return p.changed
	})
	return si
}

// Executable reports whether any feasible path reaches block b of node.
func (si *SCCPInfo) Executable(node, b int) bool {
	sol := si.fns[node].sol
	return b == 0 || sol.Out[b].reachable || sol.In[b].reachable
}

// ValCell returns (value, isConst) for SSA value id of the named
// function.
func (si *SCCPInfo) ValCell(fn string, id int) (uint64, bool) {
	node := si.CG.Node(fn)
	if node < 0 {
		return 0, false
	}
	ft := si.fns[node]
	if id < 0 || id >= len(ft.vals) {
		return 0, false
	}
	return ft.vals[id].Const()
}

// ConstBranch describes a two-way branch whose condition is compile-time
// constant.
type ConstBranch struct {
	Fn    string
	Block int
	Pos   ir.Pos
	// Cond is the constant condition value; Taken is the successor block
	// that executes.
	Cond  uint64
	Taken int
}

// ConstBranches lists every executable two-way CondBr whose condition
// folded to a constant, in (node, block) order.
func (si *SCCPInfo) ConstBranches() []ConstBranch {
	var out []ConstBranch
	for node, f := range si.CG.Funcs {
		p := &sccpProblem{si: si, node: node}
		for _, b := range f.Blocks {
			if !si.Executable(node, b.Index) {
				continue
			}
			term := b.Terminator()
			if term == nil || term.Op != ir.OpCondBr || term.True == term.False {
				continue
			}
			c, ok := p.operandCell(term.Args[0]).Const()
			if !ok {
				continue
			}
			taken := term.True
			if c == 0 {
				taken = term.False
			}
			out = append(out, ConstBranch{Fn: f.Name, Block: b.Index, Pos: term.Pos, Cond: c, Taken: taken})
		}
	}
	return out
}

// DeadBlock describes a CFG-reachable block no feasible path executes.
type DeadBlock struct {
	Fn    string
	Block int
	Pos   ir.Pos
}

// DeadBlocks lists blocks that are reachable in the CFG but not
// executable under propagated constants — code behind always-false
// branches.
func (si *SCCPInfo) DeadBlocks() []DeadBlock {
	var out []DeadBlock
	for node, f := range si.CG.Funcs {
		c := si.CG.CFGs[node]
		for _, b := range f.Blocks {
			if !c.Reachable(b.Index) || si.Executable(node, b.Index) {
				continue
			}
			db := DeadBlock{Fn: f.Name, Block: b.Index}
			for _, in := range b.Instrs {
				if in.Pos.IsValid() {
					db.Pos = in.Pos
					break
				}
			}
			out = append(out, db)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// IR simplification.

// SimplifyModule returns a copy of m with SCCP facts applied: constant
// operands folded in place, constant two-way branches straightened,
// unreachable blocks removed, and unused pure value computations dropped.
// The second result counts rewrites (0 means the copy is structurally
// identical). The input module is never mutated; the output always passes
// ir.Verify.
func SimplifyModule(m *ir.Module) (*ir.Module, int) {
	out := cloneModule(m)
	si := ComputeSCCP(BuildCallGraph(out))
	changes := 0
	for node, f := range si.CG.Funcs {
		p := &sccpProblem{si: si, node: node}
		// Fold constant operands and straighten constant branches.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for ai, a := range in.Args {
					if a.Kind != ir.VInstr {
						continue
					}
					if c, ok := p.operandCell(a).Const(); ok {
						in.Args[ai] = ir.ConstVal(int64(c), a.Ty)
						changes++
					}
				}
				if in.Op == ir.OpCondBr {
					if c, ok := p.operandCell(in.Args[0]).Const(); ok {
						if c == 0 {
							in.True = in.False
						}
						in.Op = ir.OpBr
						in.Args = nil
						in.False = 0
						changes++
					}
				}
			}
		}
		changes += removeUnreachable(f)
		changes += removeDeadValues(f)
	}
	if err := ir.Verify(out); err != nil {
		// Defensive: a rewrite that breaks structural invariants must never
		// escape into prediction; fall back to the unmodified input.
		return cloneModule(m), 0
	}
	return out, changes
}

// removeUnreachable drops blocks no terminator path reaches and reindexes
// the remainder.
func removeUnreachable(f *ir.Func) int {
	n := len(f.Blocks)
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[b].Succs() {
			if s >= 0 && s < n && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	remap := make([]int, n)
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if !seen[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(kept)
		b.Index = len(kept)
		kept = append(kept, b)
	}
	removed := n - len(kept)
	if removed == 0 {
		return 0
	}
	for _, b := range kept {
		t := b.Terminator()
		if t == nil {
			continue
		}
		switch t.Op {
		case ir.OpBr:
			t.True = remap[t.True]
		case ir.OpCondBr:
			t.True = remap[t.True]
			t.False = remap[t.False]
		}
	}
	f.Blocks = kept
	return removed
}

// removeDeadValues drops pure value computations (compute ops and local
// loads) whose results are never used, iterating until stable. Global
// loads are kept: they are the stateful memory accesses the predictor
// counts, and dropping them is a placement-relevant decision left to the
// NIC compiler.
func removeDeadValues(f *ir.Func) int {
	removed := 0
	for {
		used := make([]bool, f.NumVals)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					if a.Kind == ir.VInstr && a.ID >= 0 && a.ID < len(used) {
						used[a.ID] = true
					}
				}
			}
		}
		dropped := 0
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				pure := in.Op.IsCompute() || in.Op == ir.OpLLoad
				if pure && in.ID >= 0 && in.ID < len(used) && !used[in.ID] {
					dropped++
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if dropped == 0 {
			return removed
		}
		removed += dropped
	}
}

// cloneModule deep-copies a module (globals, functions, blocks,
// instructions, operand slices).
func cloneModule(m *ir.Module) *ir.Module {
	out := &ir.Module{Name: m.Name}
	for _, g := range m.Globals {
		cg := *g
		out.Globals = append(out.Globals, &cg)
	}
	for _, f := range m.Funcs {
		nf := &ir.Func{
			Name:    f.Name,
			Params:  append([]ir.Param(nil), f.Params...),
			Ret:     f.Ret,
			NumVals: f.NumVals,
			NSlots:  f.NSlots,
		}
		for _, b := range f.Blocks {
			nb := &ir.Block{Index: b.Index, Name: b.Name}
			for _, in := range b.Instrs {
				ni := *in
				ni.Args = append([]ir.Value(nil), in.Args...)
				nb.Instrs = append(nb.Instrs, &ni)
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		out.Funcs = append(out.Funcs, nf)
	}
	return out
}
