// Command claragen drives the NF program synthesizer: it emits random,
// corpus-representative NFC programs (the paper's customized-YarpGen data
// synthesis, §3.2), optionally verifying that they compile.
//
// Usage:
//
//	claragen -n 3 -seed 7           # guided by the element-library profile
//	claragen -uniform               # the unguided Table 1 baseline
//	claragen -crc | -lpm            # labeled accelerator-algorithm variants
//	claragen -record t.bin -pkts 5000 -workload mix   # record a trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"clara/internal/click"
	"clara/internal/lang"
	"clara/internal/synth"
	"clara/internal/traffic"
)

func main() {
	var (
		n        = flag.Int("n", 1, "number of programs")
		seed     = flag.Int64("seed", 1, "starting seed")
		uniform  = flag.Bool("uniform", false, "unguided baseline profile")
		crc      = flag.Bool("crc", false, "emit CRC algorithm variants")
		lpm      = flag.Bool("lpm", false, "emit LPM algorithm variants")
		check    = flag.Bool("check", true, "verify programs compile")
		record   = flag.String("record", "", "record a workload trace to this file and exit")
		pkts     = flag.Int("pkts", 5000, "packets to record")
		workload = flag.String("workload", "mix", "workload for -record: small | large | mix")
	)
	flag.Parse()

	if *record != "" {
		var spec traffic.Spec
		switch *workload {
		case "small":
			spec = traffic.SmallFlows
		case "large":
			spec = traffic.LargeFlows
		case "mix":
			spec = traffic.MediumMix
		default:
			fmt.Fprintf(os.Stderr, "claragen: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "claragen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := traffic.WriteTrace(f, traffic.MustTrace(spec, *pkts)); err != nil {
			fmt.Fprintln(os.Stderr, "claragen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "recorded %d packets of %s to %s\n", *pkts, spec.Name, *record)
		return
	}

	emit := func(name, src string) {
		if *check {
			if _, err := lang.Compile(name, src); err != nil {
				fmt.Fprintf(os.Stderr, "claragen: generated program invalid: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("// ---- %s ----\n%s\n", name, src)
	}

	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		switch {
		case *crc:
			p := synth.CRCVariant(s)
			emit(p.Name, p.Src)
		case *lpm:
			p := synth.LPMVariant(s)
			emit(p.Name, p.Src)
		default:
			prof := synth.UniformProfile()
			if !*uniform {
				mods, err := click.Modules(click.Table2Order)
				if err != nil {
					fmt.Fprintln(os.Stderr, "claragen:", err)
					os.Exit(1)
				}
				prof = synth.ProfileFromModules(mods)
			}
			src := synth.Generate(synth.Config{Profile: prof, Seed: s})
			emit(fmt.Sprintf("synth_%d", s), src)
		}
	}
}
