GO ?= go

.PHONY: build test race vet fmt-check check fuzz bench-fleet update-golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checked run of every package; the fleet tests drive 17 NFs x 3
# workloads across an 8-worker pool under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt-check fails listing any file gofmt would rewrite.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# check is the PR gate: static gates first, then build, plain tests,
# then the race pass.
check: vet fmt-check build test race

# Short smoke runs of every fuzz target (seed corpus always runs under
# plain `go test`; this adds a bounded mutation pass).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=20s ./internal/lang/
	$(GO) test -run=^$$ -fuzz=FuzzCompile$$ -fuzztime=20s ./internal/lang/
	$(GO) test -run=^$$ -fuzz=FuzzCompileNF -fuzztime=20s .
	$(GO) test -run=^$$ -fuzz=FuzzLint -fuzztime=20s ./internal/analysis/

bench-fleet:
	$(GO) test -run=^$$ -bench=BenchmarkFleetAnalyze -benchtime=5x .

# Regenerate the Insights.Report and lint golden files after
# intentional formatting changes.
update-golden:
	$(GO) test ./internal/core/ -run TestReportGolden -update
	$(GO) test ./internal/analysis/ -run TestLintGolden -update
