package synth

import (
	"strings"
	"testing"

	"clara/internal/ir"
	"clara/internal/lang"
)

func TestGeneratedProgramsCompile(t *testing.T) {
	prof := UniformProfile()
	for seed := int64(0); seed < 60; seed++ {
		src := Generate(Config{Profile: prof, Seed: seed})
		m, err := lang.Compile("synth", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if err := ir.Verify(m); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	cfg := Config{Profile: UniformProfile(), Seed: 42}
	if Generate(cfg) != Generate(cfg) {
		t.Error("generator not deterministic")
	}
	if Generate(cfg) == Generate(Config{Profile: UniformProfile(), Seed: 43}) {
		t.Error("different seeds produced identical programs")
	}
}

func TestProfileFromModules(t *testing.T) {
	src := `
map<u64,u64> m[1024];
global u32 c;
void handle() {
	u64 k = u64(pkt_ip_src());
	if (map_contains(m, k)) {
		c += 1;
	}
	for (u32 i = 0; i < 8; i += 1) {
		c ^= i;
	}
	pkt_send(0);
}
`
	mod, err := lang.Compile("p", src)
	if err != nil {
		t.Fatal(err)
	}
	p := ProfileFromModules([]*ir.Module{mod})
	if p.AvgHandlerInstrs == 0 {
		t.Error("no instructions measured")
	}
	if p.BranchPerInstr == 0 {
		t.Error("branchiness not measured")
	}
	if p.LoopFrac == 0 {
		t.Error("loop fraction not measured")
	}
	if p.StatePerInstr == 0 {
		t.Error("state rate not measured")
	}
	var total float64
	for _, w := range p.OpWeights {
		total += w
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("op weights sum to %f", total)
	}
}

func TestGuidedGenerationTracksProfile(t *testing.T) {
	// A xor-heavy profile should produce xor-heavy programs.
	xorProf := UniformProfile()
	for k := range xorProf.OpWeights {
		xorProf.OpWeights[k] = 0.01
	}
	xorProf.OpWeights["^"] = 0.92
	var mods []*ir.Module
	for seed := int64(0); seed < 20; seed++ {
		m, _, err := GenerateModule(Config{Profile: xorProf, Seed: seed}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	got := ProfileFromModules(mods)
	if got.OpWeights["^"] < 0.4 {
		t.Errorf("xor weight %f, want dominant", got.OpWeights["^"])
	}
}

func TestStateBiasShiftsIntensity(t *testing.T) {
	prof := UniformProfile()
	low, high := 0.0, 0.0
	for seed := int64(0); seed < 15; seed++ {
		ml, _, err := GenerateModule(Config{Profile: prof, Seed: seed, StateBias: 0.2}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		mh, _, err := GenerateModule(Config{Profile: prof, Seed: seed, StateBias: 4}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		pl := ProfileFromModules([]*ir.Module{ml})
		ph := ProfileFromModules([]*ir.Module{mh})
		low += pl.StatePerInstr
		high += ph.StatePerInstr
	}
	if high <= low {
		t.Errorf("state bias had no effect: low=%f high=%f", low, high)
	}
}

func TestAlgoCorpusCompilesAndIsLabeled(t *testing.T) {
	corpus := AlgoCorpus(12, 77)
	if len(corpus) != 36 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	counts := map[int]int{}
	for _, p := range corpus {
		counts[p.Label]++
		m, err := lang.Compile(p.Name, p.Src)
		if err != nil {
			t.Fatalf("%s: %v\n%s", p.Name, err, p.Src)
		}
		if err := ir.Verify(m); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	if counts[LabelCRC] != 12 || counts[LabelLPM] != 12 || counts[LabelNone] != 12 {
		t.Errorf("label counts %v", counts)
	}
}

func TestCRCVariantsDiffer(t *testing.T) {
	a := CRCVariant(1).Src
	b := CRCVariant(2).Src
	if a == b {
		t.Error("CRC variants identical across seeds")
	}
	if !strings.Contains(a, "pkt_payload") {
		t.Error("CRC variant does not walk the payload")
	}
}

func TestLPMVariantsCoverKinds(t *testing.T) {
	kinds := map[string]bool{}
	for seed := int64(0); seed < 30; seed++ {
		src := LPMVariant(seed).Src
		switch {
		case strings.Contains(src, "trie_left"):
			kinds["trie"] = true
		case strings.Contains(src, "routes"):
			kinds["maskscan"] = true
		case strings.Contains(src, "rule_prefix"):
			kinds["scan"] = true
		}
	}
	if len(kinds) != 3 {
		t.Errorf("LPM kinds seen: %v", kinds)
	}
}
