package clara

import "testing"

// FuzzCompileNF fuzzes the public compile entry point seeded with every
// library element source — the richest real corpus the repo has (loops,
// maps, vectors, LPM tables, multi-function elements). Mutations of real
// NFs exercise the lowering paths garbage inputs never reach; any input
// must produce a module or an error, never a panic.
func FuzzCompileNF(f *testing.F) {
	for _, e := range Elements() {
		f.Add(e.Src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // bound lowering time, not a correctness limit
		}
		mod, err := CompileNF("fuzz", src)
		if err == nil && mod == nil {
			t.Error("CompileNF returned nil module without error")
		}
	})
}
