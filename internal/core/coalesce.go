package core

import (
	"sort"

	"clara/internal/ir"
	"clara/internal/ml"
)

// This file implements memory access coalescing (§4.4): cluster stateful
// scalars by their per-block access vectors with k-means, pack each
// cluster contiguously, and fetch packs with single coalesced accesses.

// CoalesceConfig controls clustering.
type CoalesceConfig struct {
	// MaxK bounds the number of clusters tried.
	MaxK int
	// Cutoff is the intra-cluster distance threshold used to pick k (the
	// paper's "cutoff threshold to determine some suitable inter-cluster
	// distance", §5.8).
	Cutoff float64
	Seed   int64
}

func (c CoalesceConfig) norm() CoalesceConfig {
	if c.MaxK == 0 {
		c.MaxK = 6
	}
	if c.Cutoff == 0 {
		c.Cutoff = 0.3
	}
	return c
}

// SuggestPacks clusters the NF's scalar globals by access-vector
// similarity and returns packs of co-accessed variables (singletons are
// not packs — a lone variable gains nothing from coalescing).
func SuggestPacks(mod *ir.Module, prof *HostProfile, cfg CoalesceConfig) [][]string {
	cfg = cfg.norm()
	var names []string
	var vecs [][]float64
	for _, g := range mod.Globals {
		if g.Kind != ir.GScalar {
			continue
		}
		v := prof.AccessVector(g.Name)
		if v == nil {
			continue
		}
		names = append(names, g.Name)
		vecs = append(vecs, v)
	}
	if len(names) < 2 {
		return nil
	}

	maxK := cfg.MaxK
	if maxK > len(names) {
		maxK = len(names)
	}
	// Pick the smallest k whose mean within-cluster distance falls under
	// the cutoff. If no k satisfies it, the vectors are all dissimilar;
	// fall back to a coarse two-way grouping — coalescing pays whenever a
	// packet touches at least two pack members, so over-splitting into
	// singletons forfeits the win (the paper's cutoff plays the same
	// tie-breaking role, §5.8).
	var chosen *ml.KMeans
	for k := 1; k <= maxK; k++ {
		km := ml.FitKMeans(vecs, k, cfg.Seed)
		if km.Inertia(vecs)/float64(len(vecs)) <= cfg.Cutoff*cfg.Cutoff {
			chosen = km
			break
		}
	}
	if chosen == nil {
		k := 2
		if k > len(vecs) {
			k = len(vecs)
		}
		chosen = ml.FitKMeans(vecs, k, cfg.Seed)
	}

	clusters := map[int][]string{}
	for i, v := range vecs {
		c := chosen.Assign(v)
		clusters[c] = append(clusters[c], names[i])
	}
	keys := make([]int, 0, len(clusters))
	for c := range clusters {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	var packs [][]string
	for _, c := range keys {
		if len(clusters[c]) >= 2 {
			sort.Strings(clusters[c])
			packs = append(packs, clusters[c])
		}
	}
	return packs
}

// HotScalars returns the scalars accessed from the top-k most frequently
// executed blocks, by descending access frequency — the variable set the
// §5.8 expert sweeps.
func HotScalars(mod *ir.Module, prof *HostProfile, topBlocks, maxVars int) []string {
	type bf struct {
		b int
		f float64
	}
	blocks := make([]bf, len(prof.BlockFreq))
	for b, f := range prof.BlockFreq {
		blocks[b] = bf{b, f}
	}
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].f != blocks[j].f {
			return blocks[i].f > blocks[j].f
		}
		return blocks[i].b < blocks[j].b
	})
	hot := map[int]bool{}
	for i := 0; i < topBlocks && i < len(blocks); i++ {
		hot[blocks[i].b] = true
	}
	type nf struct {
		name string
		f    float64
	}
	var cands []nf
	for _, g := range mod.Globals {
		if g.Kind != ir.GScalar {
			continue
		}
		va := prof.BlockAccess[g.Name]
		if va == nil {
			continue
		}
		inHot := 0.0
		for b, c := range va {
			if hot[b] {
				inHot += c
			}
		}
		if inHot > 0 {
			cands = append(cands, nf{g.Name, prof.GlobalFreq[g.Name]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].f != cands[j].f {
			return cands[i].f > cands[j].f
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) > maxVars {
		cands = cands[:maxVars]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// Partitions enumerates all set partitions of items (the expert's
// exhaustive packing sweep; Bell(5) = 52, so this stays tiny).
func Partitions(items []string) [][][]string {
	if len(items) == 0 {
		return [][][]string{{}}
	}
	head, rest := items[0], items[1:]
	var out [][][]string
	for _, sub := range Partitions(rest) {
		// head joins each existing group...
		for gi := range sub {
			next := make([][]string, len(sub))
			for i := range sub {
				next[i] = append([]string(nil), sub[i]...)
			}
			next[gi] = append([]string{head}, next[gi]...)
			out = append(out, next)
		}
		// ...or starts its own.
		alone := make([][]string, 0, len(sub)+1)
		alone = append(alone, []string{head})
		for i := range sub {
			alone = append(alone, append([]string(nil), sub[i]...))
		}
		out = append(out, alone)
	}
	return out
}

// PacksFromPartition drops singleton groups (they are not packs).
func PacksFromPartition(part [][]string) [][]string {
	var out [][]string
	for _, g := range part {
		if len(g) >= 2 {
			out = append(out, g)
		}
	}
	return out
}
