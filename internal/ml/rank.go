package ml

import (
	"math"
	"math/rand"
)

// PrefPair expresses that sample Better should rank above sample Worse.
type PrefPair struct {
	Better, Worse int
}

// RankConfig configures the pairwise gradient-boosted ranker — the
// LambdaMART-style model Clara trains for NF colocation analysis (§4.5),
// standing in for XGBoost's rank:pairwise objective.
type RankConfig struct {
	Trees    int
	LR       float64
	MaxDepth int
	Seed     int64
}

func (c RankConfig) norm() RankConfig {
	if c.Trees == 0 {
		c.Trees = 80
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	return c
}

// Ranker scores feature vectors such that preferred items score higher.
type Ranker struct {
	lr    float64
	trees []*Tree
}

// FitRanker minimizes the pairwise logistic loss
// Σ log(1 + exp(−(s(better) − s(worse)))) by gradient boosting: each round
// fits a regression tree to the per-sample pseudo-gradients ("lambdas").
func FitRanker(X [][]float64, pairs []PrefPair, cfg RankConfig) *Ranker {
	cfg = cfg.norm()
	rng := rand.New(rand.NewSource(cfg.Seed + 501))
	r := &Ranker{lr: cfg.LR}
	n := len(X)
	scores := make([]float64, n)
	lambdas := make([]float64, n)
	tcfg := TreeConfig{MaxDepth: cfg.MaxDepth, MinSamples: 3, Rng: rng}
	for round := 0; round < cfg.Trees; round++ {
		for i := range lambdas {
			lambdas[i] = 0
		}
		for _, pr := range pairs {
			// d/ds of −log σ(s_b − s_w): push better up, worse down.
			rho := sigmoid(-(scores[pr.Better] - scores[pr.Worse]))
			lambdas[pr.Better] += rho
			lambdas[pr.Worse] -= rho
		}
		tr := FitTree(X, lambdas, tcfg)
		r.trees = append(r.trees, tr)
		for i := range scores {
			scores[i] += cfg.LR * tr.Predict(X[i])
		}
	}
	return r
}

// Score returns the ranking score (higher = preferred).
func (r *Ranker) Score(x []float64) float64 {
	var s float64
	for _, tr := range r.trees {
		s += r.lr * tr.Predict(x)
	}
	return s
}

// PairLoss computes the pairwise logistic loss of the ranker on held-out
// pairs (convergence check).
func (r *Ranker) PairLoss(X [][]float64, pairs []PrefPair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	scores := make([]float64, len(X))
	for i, x := range X {
		scores[i] = r.Score(x)
	}
	var loss float64
	for _, p := range pairs {
		loss += math.Log1p(math.Exp(-(scores[p.Better] - scores[p.Worse])))
	}
	return loss / float64(len(pairs))
}
