// Package clara is the public API of the Clara reproduction: automated
// SmartNIC offloading insights for network functions (SOSP 2021).
//
// The package re-exports the pieces a user composes:
//
//   - CompileNF turns NFC source (a Click-style element) into analyzable IR;
//   - Train builds the Clara tool — the instruction predictor (§3), the
//     accelerator-algorithm identifier (§4.1), and the scale-out cost
//     model (§4.2) — against the simulated SmartNIC;
//   - Tool.Analyze produces the offloading insights for an unported NF and
//     a workload;
//   - the nicsim/traffic aliases let users port, place, pack, and simulate
//     NFs directly (the "hardware" side of the evaluation).
//
// See examples/ for runnable end-to-end scenarios and internal/experiments
// for the harnesses regenerating every table and figure of the paper.
package clara

import (
	"context"
	"fmt"
	"time"

	"clara/internal/analysis"
	"clara/internal/click"
	"clara/internal/cluster"
	"clara/internal/core"
	"clara/internal/fleet"
	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/isa"
	"clara/internal/lang"
	"clara/internal/niccc"
	"clara/internal/nicsim"
	"clara/internal/offload"
	"clara/internal/server"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// Re-exported core types. The aliases are the supported public surface;
// internal packages remain free to evolve behind them.
type (
	// Module is a lowered NF element (the unit of analysis).
	Module = ir.Module
	// Element is a library NF with source, setup and metadata.
	Element = click.Element
	// Tool bundles Clara's trained analyses.
	Tool = core.Clara
	// Insights is the per-NF analysis report.
	Insights = core.Insights
	// NF is a ported network function: program plus porting decisions.
	NF = nicsim.NF
	// Placement assigns stateful globals to NIC memory regions.
	Placement = nicsim.Placement
	// Params is the simulated SmartNIC hardware model.
	Params = nicsim.Params
	// Result is one simulation measurement.
	Result = nicsim.Result
	// Workload is a traffic specification.
	Workload = traffic.Spec
	// Packet is a parsed packet.
	Packet = traffic.Packet
	// AccelConfig selects hardware engines for a port.
	AccelConfig = niccc.AccelConfig
	// Machine executes an NF over packets (host or NIC semantics).
	Machine = interp.Machine
	// InterpBackend selects the interpreter execution engine: the
	// compiled direct-threaded backend or the reference loop. See
	// SetInterpBackend.
	InterpBackend = interp.Backend
	// Route is one LPM rule.
	Route = interp.Route
	// ProfileSetup provides state seeding for host profiling.
	ProfileSetup = core.ProfileSetup
	// Region is a NIC memory level.
	Region = isa.Region
	// Fleet analyzes batches of (NF, workload) jobs over a worker pool
	// with prediction caching.
	Fleet = fleet.Fleet
	// FleetConfig sizes a Fleet (workers, cache).
	FleetConfig = fleet.Config
	// FleetJob is one unit of fleet work.
	FleetJob = fleet.Job
	// FleetResult is one fleet job's outcome.
	FleetResult = fleet.Result
	// Stats is a fleet metrics snapshot (jobs, cache hits/misses,
	// analysis wall-time histogram).
	Stats = fleet.Stats
	// Diagnostic is one offloadability lint finding.
	Diagnostic = analysis.Diagnostic
	// Severity ranks lint findings (error > warning > info).
	Severity = analysis.Severity
	// LintConfig bounds the linter's NIC memory budgets.
	LintConfig = analysis.Config
	// LintSummary counts diagnostics by severity.
	LintSummary = analysis.Summary
	// Server is the HTTP analysis service (clara -serve): JSON insights
	// over bounded admission with cancellation and /metrics.
	Server = server.Server
	// ServerConfig sizes a Server (workers, queue depth, timeouts).
	ServerConfig = server.Config
	// ModelInfo is the served model's provenance (bundle hash, warm
	// start, training wall time) surfaced by /metrics and /healthz.
	ModelInfo = server.ModelInfo
	// Coordinator fronts a fleet of -serve workers (clara -coordinator):
	// content-hash job routing, fan-out/reassembly, health probes, and
	// merged cluster metrics.
	Coordinator = cluster.Coordinator
	// ClusterConfig sizes a Coordinator (worker endpoints, probe cadence,
	// forwarding timeout).
	ClusterConfig = cluster.Config
	// Prediction is Clara's per-NF instruction/memory prediction (§3),
	// as carried by Insights.Prediction.
	Prediction = core.ModulePrediction
	// OffloadScenario describes the flow stream offered to the online
	// offload controller (clara -simulate).
	OffloadScenario = offload.Scenario
	// OffloadPolicy parameterizes a threshold policy (static, dynamic,
	// or insight-seeded).
	OffloadPolicy = offload.PolicyConfig
	// OffloadCapacities are the controller's per-round NIC budgets.
	OffloadCapacities = offload.Capacities
	// OffloadConfig fully determines one controller simulation.
	OffloadConfig = offload.Config
	// OffloadTrajectory is a controller run: one record per round.
	OffloadTrajectory = offload.Trajectory
)

// Diagnostic severities, most severe first.
const (
	SevError   = analysis.SevError
	SevWarning = analysis.SevWarning
	SevInfo    = analysis.SevInfo
)

// Memory regions of the simulated NIC, fastest/smallest first.
const (
	CLS  = isa.CLS
	CTM  = isa.CTM
	IMEM = isa.IMEM
	EMEM = isa.EMEM
)

// Standard workloads (§5 methodology).
var (
	LargeFlows = traffic.LargeFlows
	SmallFlows = traffic.SmallFlows
	MediumMix  = traffic.MediumMix
)

// Interpreter backends. InterpAuto defers to the process-wide default
// (the compiled backend unless overridden).
const (
	InterpAuto      = interp.BackendAuto
	InterpCompiled  = interp.BackendCompiled
	InterpReference = interp.BackendReference
)

// SetInterpBackend selects the process-wide default interpreter backend
// used wherever a Machine's Config leaves Backend at InterpAuto — host
// profiling, fleet batches, the analysis server. The compiled
// direct-threaded backend is the default; the reference interpreter
// exists for differential debugging and produces bit-identical
// observables (steps, fuel, counters, hook traces, goldens).
func SetInterpBackend(b InterpBackend) error { return interp.SetDefaultBackend(b) }

// ParseInterpBackend maps the CLI/config spelling of a backend name
// ("auto" | "compiled" | "reference").
func ParseInterpBackend(s string) (InterpBackend, error) { return interp.ParseBackend(s) }

// CompileNF compiles NFC source into an analyzable module.
func CompileNF(name, src string) (*Module, error) { return lang.Compile(name, src) }

// DefaultParams returns the reference SmartNIC hardware model.
func DefaultParams() Params { return nicsim.DefaultParams() }

// Elements returns the built-in NF element library (Table 2).
func Elements() []*Element { return click.Library() }

// GetElement returns a library element by name, or nil.
func GetElement(name string) *Element { return click.Get(name) }

// TrainConfig sizes Tool training.
type TrainConfig struct {
	// Quick trades accuracy for speed (tests, demos).
	Quick bool
	Seed  int64
	// Workers bounds training parallelism — corpus synthesis, compilation,
	// scale-out measurement, and minibatch gradient sharding (0 =
	// GOMAXPROCS). Any value produces bit-identical models; it only trades
	// wall clock.
	Workers int
	// Quantize serves predictions from the int8-quantized LSTM path
	// (faster, within the quantization accuracy budget). A runtime knob:
	// it is not recorded in bundles and does not affect bundle
	// compatibility.
	Quantize bool
}

// Train builds a full Clara tool: it synthesizes a corpus guided by the
// element library, trains the LSTM instruction predictor, the algorithm
// identifier, and the scale-out cost model against the simulated NIC.
func Train(cfg TrainConfig) (*Tool, error) {
	return TrainContext(context.Background(), cfg)
}

// TrainContext is Train under a context: cancellation is observed
// between training steps and inside the LSTM epoch loop, so a serving
// process interrupted during startup stops training promptly.
func TrainContext(ctx context.Context, cfg TrainConfig) (*Tool, error) {
	params := nicsim.DefaultParams()
	mods, err := click.Modules(click.Table2Order)
	if err != nil {
		return nil, err
	}
	pcfg := core.PredictorConfig{CompactVocab: true, Seed: cfg.Seed, Workers: cfg.Workers}
	acN := 40
	scfg := core.ScaleoutConfig{Params: params, Seed: cfg.Seed, Workers: cfg.Workers}
	if cfg.Quick {
		pcfg.TrainPrograms, pcfg.Epochs, pcfg.Hidden = 50, 6, 16
		acN = 12
		scfg.TrainPrograms, scfg.PacketsPerTrace = 8, 400
		scfg.CoreGrid = []int{2, 8, 16, 32, 48, 60}
	}
	pred, err := core.TrainPredictorContext(ctx, pcfg, core.CorpusProfile(mods))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	algo, err := core.TrainAlgoIdentifier(synthCorpus(acN, cfg.Seed), 48, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sm, err := core.TrainScaleoutContext(ctx, scfg, pred)
	if err != nil {
		return nil, err
	}
	pred.SetQuantize(cfg.Quantize)
	return &Tool{Predictor: pred, AlgoID: algo, Scaleout: sm, Params: params}, nil
}

// Model-bundle rejection causes (see LoadTool), matchable with errors.Is.
var (
	ErrBundleVersion = core.ErrBundleVersion
	ErrBundleCorrupt = core.ErrBundleCorrupt
	ErrBundleStale   = core.ErrBundleStale
	ErrBundleConfig  = core.ErrBundleConfig
)

// SaveTool persists a trained tool as a versioned, content-hashed model
// bundle (atomic write). cfg must be the TrainConfig the tool was trained
// with — it is recorded so LoadTool can refuse mismatched bundles.
// trainSeconds is recorded for telemetry (0 if unknown). Returns the
// bundle's content hash.
func SaveTool(path string, tool *Tool, cfg TrainConfig, trainSeconds float64) (string, error) {
	b, err := core.NewBundle(tool, core.BundleMeta{
		Quick:        cfg.Quick,
		Seed:         cfg.Seed,
		TrainSeconds: trainSeconds,
		CreatedUnix:  time.Now().Unix(),
	})
	if err != nil {
		return "", err
	}
	if err := core.SaveBundle(path, b); err != nil {
		return "", err
	}
	return b.Hash, nil
}

// LoadTool restores a tool from a model bundle, validating the encoding
// version, content hash, vendor-library fingerprint, and that the bundle
// was trained under the requested cfg (Quick and Seed; Workers is a
// wall-clock knob and is ignored). The restored tool predicts
// bit-identically to the one SaveTool captured. Returns the bundle's
// content hash alongside the tool.
func LoadTool(path string, cfg TrainConfig) (*Tool, string, error) {
	b, err := core.LoadBundle(path)
	if err != nil {
		return nil, "", err
	}
	if b.Meta.Quick != cfg.Quick || b.Meta.Seed != cfg.Seed {
		return nil, "", fmt.Errorf("clara: %w: bundle trained with quick=%v seed=%d, want quick=%v seed=%d",
			core.ErrBundleConfig, b.Meta.Quick, b.Meta.Seed, cfg.Quick, cfg.Seed)
	}
	tool, err := b.Tool()
	if err != nil {
		return nil, "", err
	}
	tool.Predictor.SetQuantize(cfg.Quantize)
	return tool, b.Hash, nil
}

// NewServer builds the HTTP analysis service around a trained tool; see
// internal/server for the endpoint surface (/v1/analyze, /v1/lint,
// /v1/elements, /metrics, /debug/pprof).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewCoordinator builds the cluster coordinator over a set of worker
// endpoints; see internal/cluster for the routing and failover
// contract.
func NewCoordinator(cfg ClusterConfig) (*Coordinator, error) { return cluster.New(cfg) }

// Lint runs the offloadability linter over an already-compiled module.
func Lint(mod *Module, cfg LintConfig) []Diagnostic { return analysis.LintModule(mod, cfg) }

// LintNF parses, lowers, and lints NFC source against the reference
// hardware model's memory budgets. Unlike Lint it also reports
// source-level constructs lowering rejects outright (recursion), and it
// anchors state-size findings at the global declarations.
func LintNF(name, src string) ([]Diagnostic, error) {
	t := &Tool{Params: nicsim.DefaultParams()}
	return analysis.LintSource(name, src, t.LintConfig())
}

// RenderDiagnostics renders lint findings as human-readable lines with
// fix hints.
func RenderDiagnostics(ds []Diagnostic) string { return analysis.Render(ds) }

// SummarizeDiagnostics counts lint findings by severity.
func SummarizeDiagnostics(ds []Diagnostic) LintSummary { return analysis.Summarize(ds) }

// NewFleet builds a concurrent fleet analyzer around a trained tool.
func NewFleet(tool *Tool, cfg FleetConfig) (*Fleet, error) { return fleet.New(tool, cfg) }

// FleetSummary renders a fleet result batch as a summary table.
func FleetSummary(results []FleetResult) string { return fleet.Summary(results) }

// LibraryJobs builds one fleet job per (library element, workload) pair,
// in Table 2 row order crossed with the given workloads — the batch the
// analyze-fleet CLI mode runs.
func LibraryJobs(workloads ...Workload) ([]FleetJob, error) {
	if len(workloads) == 0 {
		workloads = []Workload{SmallFlows, LargeFlows, MediumMix}
	}
	var jobs []FleetJob
	for _, name := range click.Table2Order {
		e := click.Get(name)
		if e == nil {
			return nil, fmt.Errorf("clara: unknown library element %q", name)
		}
		mod, err := e.Module()
		if err != nil {
			return nil, err
		}
		for _, wl := range workloads {
			jobs = append(jobs, FleetJob{
				Name: e.Name,
				Mod:  mod,
				PS:   ProfileSetup{Setup: e.Setup, LPMTable: e.Routes},
				WL:   wl,
			})
		}
	}
	return jobs, nil
}

// OffloadScenarios returns the standard controller scenarios (zipf,
// synflood, elephantmice) in CLI/benchmark order.
func OffloadScenarios() []OffloadScenario { return offload.Scenarios() }

// SimulateOffload runs the online offload controller and returns the
// per-round trajectory; a config fully determines the result (see
// internal/offload's determinism contract).
func SimulateOffload(cfg OffloadConfig) (*OffloadTrajectory, error) { return offload.Simulate(cfg) }

// SeedOffload derives the insight-seeded controller setup from a per-NF
// prediction: the NIC capacities the NF leaves the controller, and the
// policy whose initial threshold and step Clara's insight fixes.
func SeedOffload(mp *Prediction, p Params, sc OffloadScenario) (OffloadCapacities, OffloadPolicy) {
	return offload.SeedFromPrediction(mp, p, sc)
}

// Simulate runs a ported NF on the simulated SmartNIC and reports
// throughput and latency.
func Simulate(params Params, nf *NF, wl Workload, packets, cores int) (Result, error) {
	b, err := nf.Build(params)
	if err != nil {
		return Result{}, err
	}
	ts, err := nicsim.GenTraces(b, wl, packets, params)
	if err != nil {
		return Result{}, err
	}
	return nicsim.Simulate(params, cores, ts)
}

// SimulatePair runs two NFs colocated on the NIC (split cores, shared
// memory system) and returns both results.
func SimulatePair(params Params, a, b *NF, wl Workload, packets, coresEach int) ([]Result, error) {
	var parts []nicsim.Part
	for _, nf := range []*NF{a, b} {
		bt, err := nf.Build(params)
		if err != nil {
			return nil, err
		}
		ts, err := nicsim.GenTraces(bt, wl, packets, params)
		if err != nil {
			return nil, err
		}
		parts = append(parts, nicsim.Part{TS: ts, Cores: coresEach})
	}
	return nicsim.SimulateColocation(params, parts)
}

// synthCorpus builds the algorithm-ID training corpus (synthesized
// variants plus library negatives).
func synthCorpus(n int, seed int64) []synth.LabeledProgram {
	corpus := synth.AlgoCorpus(n, seed)
	for _, name := range []string{"tcpack", "udpipencap", "forcetcp", "aggcounter", "timefilter"} {
		corpus = append(corpus, synth.LabeledProgram{
			Name: "click_" + name, Src: click.Get(name).Src, Label: synth.LabelNone,
		})
	}
	return corpus
}
