// Package lang implements NFC, the small C-like NF language this repo uses
// in place of Click/C++ elements. NFC deliberately mirrors the restricted C
// dialects of baremetal SmartNICs (Micro-C): unsigned integer types only,
// no dynamic allocation, statically sized stateful structures, and a
// framework API exposed as intrinsics (the analog of Click's Packet /
// HashMap API that the paper reverse-ports, §3.3).
package lang

import "clara/internal/ir"

// Intrinsic describes one NF framework API function.
type Intrinsic struct {
	Name     string
	Params   []ir.Type // value parameters (excluding the map state argument)
	Ret      ir.Type
	TakesMap bool // first source-level argument names a global map
	// Stateful marks APIs whose implementation touches stateful NF memory
	// (the map APIs). These are the calls whose host/NIC implementations
	// diverge most and thus require reverse porting.
	Stateful bool
	// Accel marks APIs that map to a hardware engine on the NIC
	// (checksum, CRC, LPM, hash).
	Accel bool
	// Float marks APIs whose host implementation uses floating point
	// (Click's rate estimators compute with doubles). Baremetal SmartNIC
	// cores have no FPU, so these calls compile to slow soft-float
	// emulation — the offloadability linter flags them.
	Float bool
}

// Intrinsics is the NF framework API registry, keyed by name.
var Intrinsics = map[string]Intrinsic{
	// Packet field reads (stateless header manipulation class).
	"pkt_len":         {Name: "pkt_len", Ret: ir.U16},
	"pkt_eth_type":    {Name: "pkt_eth_type", Ret: ir.U16},
	"pkt_ip_proto":    {Name: "pkt_ip_proto", Ret: ir.U8},
	"pkt_ip_src":      {Name: "pkt_ip_src", Ret: ir.U32},
	"pkt_ip_dst":      {Name: "pkt_ip_dst", Ret: ir.U32},
	"pkt_ip_ttl":      {Name: "pkt_ip_ttl", Ret: ir.U8},
	"pkt_ip_len":      {Name: "pkt_ip_len", Ret: ir.U16},
	"pkt_ip_hl":       {Name: "pkt_ip_hl", Ret: ir.U8},
	"pkt_tcp_sport":   {Name: "pkt_tcp_sport", Ret: ir.U16},
	"pkt_tcp_dport":   {Name: "pkt_tcp_dport", Ret: ir.U16},
	"pkt_tcp_seq":     {Name: "pkt_tcp_seq", Ret: ir.U32},
	"pkt_tcp_ack":     {Name: "pkt_tcp_ack", Ret: ir.U32},
	"pkt_tcp_flags":   {Name: "pkt_tcp_flags", Ret: ir.U8},
	"pkt_tcp_off":     {Name: "pkt_tcp_off", Ret: ir.U8},
	"pkt_udp_sport":   {Name: "pkt_udp_sport", Ret: ir.U16},
	"pkt_udp_dport":   {Name: "pkt_udp_dport", Ret: ir.U16},
	"pkt_payload":     {Name: "pkt_payload", Params: []ir.Type{ir.U32}, Ret: ir.U8},
	"pkt_payload_len": {Name: "pkt_payload_len", Ret: ir.U16},
	"pkt_time":        {Name: "pkt_time", Ret: ir.U64},

	// Packet field writes.
	"pkt_set_ip_src":    {Name: "pkt_set_ip_src", Params: []ir.Type{ir.U32}},
	"pkt_set_ip_dst":    {Name: "pkt_set_ip_dst", Params: []ir.Type{ir.U32}},
	"pkt_set_ip_ttl":    {Name: "pkt_set_ip_ttl", Params: []ir.Type{ir.U8}},
	"pkt_set_tcp_sport": {Name: "pkt_set_tcp_sport", Params: []ir.Type{ir.U16}},
	"pkt_set_tcp_dport": {Name: "pkt_set_tcp_dport", Params: []ir.Type{ir.U16}},
	"pkt_set_tcp_seq":   {Name: "pkt_set_tcp_seq", Params: []ir.Type{ir.U32}},
	"pkt_set_tcp_ack":   {Name: "pkt_set_tcp_ack", Params: []ir.Type{ir.U32}},
	"pkt_set_tcp_flags": {Name: "pkt_set_tcp_flags", Params: []ir.Type{ir.U8}},
	"pkt_set_udp_sport": {Name: "pkt_set_udp_sport", Params: []ir.Type{ir.U16}},
	"pkt_set_udp_dport": {Name: "pkt_set_udp_dport", Params: []ir.Type{ir.U16}},
	"pkt_set_payload":   {Name: "pkt_set_payload", Params: []ir.Type{ir.U32, ir.U8}},

	// Checksum update: 2000+ cycles in software on the cores, ~300 on the
	// ingress accelerator (paper §2); which one applies is a porting
	// decision.
	"pkt_csum_update": {Name: "pkt_csum_update", Accel: true},

	// Disposition.
	"pkt_send": {Name: "pkt_send", Params: []ir.Type{ir.U32}},
	"pkt_drop": {Name: "pkt_drop"},

	// Utility engines.
	"hash32": {Name: "hash32", Params: []ir.Type{ir.U64}, Ret: ir.U32, Accel: true},
	"rand32": {Name: "rand32", Ret: ir.U32},

	// EWMA rate estimate (Click AverageCounter analog). The host
	// framework maintains the average in double precision; the NIC has no
	// FPU and emulates it in software.
	"ewma_rate": {Name: "ewma_rate", Params: []ir.Type{ir.U32}, Ret: ir.U32, Float: true},

	// Hardware accelerator entry points. Unported NFs implement CRC/LPM
	// procedurally; Clara's algorithm identification (§4.1) suggests
	// rewriting to these.
	"crc32_hw": {Name: "crc32_hw", Params: []ir.Type{ir.U32, ir.U32}, Ret: ir.U32, Accel: true},
	"lpm_hw":   {Name: "lpm_hw", Params: []ir.Type{ir.U32}, Ret: ir.U32, Accel: true},

	// Stateful data-structure API (Click HashMap analog). Host semantics:
	// elastic, linear probing. NIC semantics: fixed buckets, no growth.
	"map_find":     {Name: "map_find", Params: []ir.Type{ir.U64}, Ret: ir.U64, TakesMap: true, Stateful: true},
	"map_contains": {Name: "map_contains", Params: []ir.Type{ir.U64}, Ret: ir.Bool, TakesMap: true, Stateful: true},
	"map_insert":   {Name: "map_insert", Params: []ir.Type{ir.U64, ir.U64}, TakesMap: true, Stateful: true},
	"map_remove":   {Name: "map_remove", Params: []ir.Type{ir.U64}, TakesMap: true, Stateful: true},
	"map_size":     {Name: "map_size", Ret: ir.U32, TakesMap: true, Stateful: true},

	// Click Vector analog. Host semantics: elastic growth, deletions shift
	// the tail down (O(n)). NIC semantics: fixed capacity, deletions only
	// mark entries invalid (§3.3's Vector.delete example).
	"vec_push":   {Name: "vec_push", Params: []ir.Type{ir.U64}, Ret: ir.Bool, TakesMap: true, Stateful: true},
	"vec_get":    {Name: "vec_get", Params: []ir.Type{ir.U32}, Ret: ir.U64, TakesMap: true, Stateful: true},
	"vec_set":    {Name: "vec_set", Params: []ir.Type{ir.U32, ir.U64}, TakesMap: true, Stateful: true},
	"vec_delete": {Name: "vec_delete", Params: []ir.Type{ir.U32}, TakesMap: true, Stateful: true},
	"vec_len":    {Name: "vec_len", Ret: ir.U32, TakesMap: true, Stateful: true},
}

// IsIntrinsic reports whether name is a framework API function.
func IsIntrinsic(name string) bool {
	_, ok := Intrinsics[name]
	return ok
}
