package core

import (
	"context"
	"fmt"

	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/traffic"
)

// HostProfile is the workload-specific access profile Clara collects by
// running the NF on the host (with reverse-ported data-structure
// semantics, so control flow matches the NIC implementation — §3.3, §4.3).
type HostProfile struct {
	Packets int
	// GlobalFreq is stateful accesses per packet, per global (map probes
	// count as accesses to the map).
	GlobalFreq map[string]float64
	// BlockAccess[global][block] counts accesses per basic block (the
	// §4.4 access vectors before normalization).
	BlockAccess map[string][]float64
	// BlockFreq counts block executions.
	BlockFreq []float64
}

// AccessVector returns the normalized per-block access vector of a global
// (the [p1..pk] of §4.4), or nil if it was never accessed.
func (hp *HostProfile) AccessVector(global string) []float64 {
	counts, ok := hp.BlockAccess[global]
	if !ok {
		return nil
	}
	var total float64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = c / total
	}
	return out
}

// ProfileSetup bundles what host profiling needs to execute an element.
type ProfileSetup struct {
	Setup    func(*interp.Machine) error
	LPMTable []interp.Route
	Seed     uint64
}

// ProfileOnHost executes n workload packets through the NF with
// NIC-faithful (reverse-ported) data-structure semantics and collects the
// access profile.
func ProfileOnHost(mod *ir.Module, ps ProfileSetup, wl traffic.Spec, n int) (*HostProfile, error) {
	return ProfileOnHostContext(context.Background(), mod, ps, wl, n)
}

// ProfileOnHostContext is ProfileOnHost with cancellation: the packet
// loop observes ctx, so a canceled analysis request stops profiling
// promptly instead of executing the full workload. The workload trace is
// served from the shared replay cache — a fleet profiling many NFs under
// the same spec generates the packet sequence once — and replaying it
// yields exactly the packets a fresh generator would.
func ProfileOnHostContext(ctx context.Context, mod *ir.Module, ps ProfileSetup, wl traffic.Spec, n int) (*HostProfile, error) {
	gen, err := traffic.Replay(wl, n)
	if err != nil {
		return nil, err
	}
	return ProfileOnHostSourceContext(ctx, mod, ps, gen, n)
}

// ProfileOnHostSource profiles over any packet source, e.g. a recorded
// trace (the paper's pcap-based profiles, §4.3).
func ProfileOnHostSource(mod *ir.Module, ps ProfileSetup, gen traffic.Source, n int) (*HostProfile, error) {
	return ProfileOnHostSourceContext(context.Background(), mod, ps, gen, n)
}

// ProfileOnHostSourceContext profiles over any packet source under a
// context. Cancellation is checked every 64 packets — coarse enough to be
// free, fine enough that profiling (the longest per-analysis stage) stops
// within microseconds of a client disconnect.
func ProfileOnHostSourceContext(ctx context.Context, mod *ir.Module, ps ProfileSetup, gen traffic.Source, n int) (*HostProfile, error) {
	m, err := interp.New(mod, interp.Config{Mode: interp.NICMap, LPMTable: ps.LPMTable, Seed: ps.Seed})
	if err != nil {
		return nil, err
	}
	// The machine goes back to the interpreter's pool on every exit path:
	// the profile below is built from Counters slices, which Release
	// leaves with this caller (pooled reuse hands out fresh ones).
	defer m.Release()
	if ps.Setup != nil {
		if err := ps.Setup(m); err != nil {
			return nil, err
		}
	}
	// Profiling counts natively via interp.Counters — one slice increment
	// per event on the packet hot path — and builds the string-keyed
	// profile maps once afterwards. The counts are identical to what the
	// OnBlock/OnState/OnAPI hooks would accumulate (integer weights summed
	// in float64 are exact well past any realistic packet count).
	ctr := m.EnableCounters()
	// Sources that support caller-provided payload scratch (the trace
	// Replayer) make the loop allocation-free: each packet is fully
	// consumed by RunPacket before the next overwrites the buffer.
	bufSrc, buffered := gen.(interface {
		NextBuf([]byte) (traffic.Packet, []byte)
	})
	var pbuf []byte
	// p is hoisted out of the loop: RunPacket retains &p for the packet's
	// duration, so a per-iteration variable would escape and cost one heap
	// allocation per packet.
	var p traffic.Packet
	for i := 0; i < n; i++ {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: profiling %s: %w", mod.Name, err)
			}
		}
		if buffered {
			p, pbuf = bufSrc.NextBuf(pbuf)
		} else {
			p = gen.Next()
		}
		if err := m.RunPacket(&p); err != nil {
			return nil, fmt.Errorf("core: profiling %s: %w", mod.Name, err)
		}
	}
	nblocks := ctr.NBlocks
	hp := &HostProfile{
		Packets:     n,
		GlobalFreq:  map[string]float64{},
		BlockAccess: map[string][]float64{},
		BlockFreq:   make([]float64, nblocks),
	}
	for b := 0; b < nblocks; b++ {
		hp.BlockFreq[b] = float64(ctr.Block[b])
	}
	for gi, g := range mod.Globals {
		var total uint64
		row := gi * nblocks
		for b := 0; b < nblocks; b++ {
			total += ctr.State[row+b] + ctr.API[row+b]
		}
		if total == 0 {
			continue
		}
		va := make([]float64, nblocks)
		for b := 0; b < nblocks; b++ {
			va[b] = float64(ctr.State[row+b] + ctr.API[row+b])
		}
		hp.BlockAccess[g.Name] = va
		hp.GlobalFreq[g.Name] = float64(total) / float64(n)
	}
	return hp, nil
}
