package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clara/internal/analysis"
	"clara/internal/click"
	"clara/internal/core"
	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/lang"
	"clara/internal/niccc"
	"clara/internal/nicsim"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// The trained tool is shared across tests (training is the expensive
// part; the trained models are read-only, which is exactly what the
// fleet relies on).
var (
	toolOnce sync.Once
	testTool *core.Clara
	toolErr  error
)

func quickTool(t testing.TB) *core.Clara {
	t.Helper()
	toolOnce.Do(func() {
		const seed = 5
		params := nicsim.DefaultParams()
		mods, err := click.Modules(click.Table2Order)
		if err != nil {
			toolErr = err
			return
		}
		pred, err := core.TrainPredictor(core.PredictorConfig{
			TrainPrograms: 50, Epochs: 6, Hidden: 16,
			CompactVocab: true, Seed: seed,
		}, core.CorpusProfile(mods))
		if err != nil {
			toolErr = err
			return
		}
		corpus := synth.AlgoCorpus(12, seed)
		for _, name := range []string{"tcpack", "udpipencap", "aggcounter"} {
			corpus = append(corpus, synth.LabeledProgram{
				Name: "click_" + name, Src: click.Get(name).Src, Label: synth.LabelNone,
			})
		}
		algo, err := core.TrainAlgoIdentifier(corpus, 48, seed)
		if err != nil {
			toolErr = err
			return
		}
		sm, err := core.TrainScaleout(core.ScaleoutConfig{
			TrainPrograms: 8, PacketsPerTrace: 400,
			CoreGrid: []int{2, 8, 16, 32, 48, 60},
			Params:   params, Seed: seed,
		}, pred)
		if err != nil {
			toolErr = err
			return
		}
		testTool = &core.Clara{Predictor: pred, AlgoID: algo, Scaleout: sm, Params: params}
	})
	if toolErr != nil {
		t.Fatalf("training quick tool: %v", toolErr)
	}
	return testTool
}

// libraryJobs builds the full 17-element × 3-workload batch the
// acceptance criteria name.
func libraryJobs(t testing.TB) []Job {
	t.Helper()
	var jobs []Job
	for _, name := range click.Table2Order {
		e := click.Get(name)
		if e == nil {
			t.Fatalf("unknown element %q", name)
		}
		mod, err := e.Module()
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range []traffic.Spec{traffic.SmallFlows, traffic.LargeFlows, traffic.MediumMix} {
			jobs = append(jobs, Job{
				Name: e.Name,
				Mod:  mod,
				PS:   core.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes},
				WL:   wl,
			})
		}
	}
	return jobs
}

// TestFleetLibraryEightWorkers runs the whole library batch on 8 workers
// (this is the test `go test -race` exercises for the concurrent path)
// and checks job accounting and cache behaviour: every module appears
// under 3 workloads, so the batch prewarm computes exactly one
// prediction per module up front and every job lookup is a hit.
func TestFleetLibraryEightWorkers(t *testing.T) {
	tool := quickTool(t)
	jobs := libraryJobs(t)
	if len(jobs) < 17*3 {
		t.Fatalf("batch too small: %d jobs", len(jobs))
	}
	fl, err := New(tool, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	results, err := fl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s/%s) failed: %v", i, r.Name, r.Workload, r.Err)
		}
		if r.Name != jobs[i].Name || r.Workload != jobs[i].WL.Name {
			t.Fatalf("result %d out of order: got %s/%s want %s/%s",
				i, r.Name, r.Workload, jobs[i].Name, jobs[i].WL.Name)
		}
		if r.Insights == nil || r.Insights.Prediction == nil {
			t.Fatalf("job %d has no insights", i)
		}
	}
	s := fl.Stats()
	if s.JobsCompleted != int64(len(jobs)) || s.JobsFailed != 0 {
		t.Errorf("stats: %d completed, %d failed; want %d, 0", s.JobsCompleted, s.JobsFailed, len(jobs))
	}
	if s.CacheMisses != 0 || s.CacheHits != int64(len(jobs)) {
		t.Errorf("cache: %d hits, %d misses; want %d, 0",
			s.CacheHits, s.CacheMisses, int64(len(jobs)))
	}
	if s.Prewarmed != 17 { // one batched prediction per distinct module
		t.Errorf("prewarmed %d predictions, want 17", s.Prewarmed)
	}
	if got := fl.cache.len(); got != 17 {
		t.Errorf("cache holds %d entries, want 17", got)
	}
	if s.Analyses.N != int64(len(jobs)) || s.Analyses.Mean() <= 0 {
		t.Errorf("histogram: n=%d mean=%s", s.Analyses.N, s.Analyses.Mean())
	}
	if s.Wall <= 0 {
		t.Error("no wall time recorded")
	}
}

// TestFleetSummaryTable sanity-checks the rendered batch table.
func TestFleetSummaryTable(t *testing.T) {
	tool := quickTool(t)
	jobs := libraryJobs(t)[:6]
	fl, err := New(tool, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := fl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	tab := Summary(results)
	lines := strings.Split(strings.TrimRight(tab, "\n"), "\n")
	if len(lines) != len(jobs)+1 {
		t.Fatalf("table has %d lines, want %d:\n%s", len(lines), len(jobs)+1, tab)
	}
	if !strings.Contains(lines[0], "NF") || !strings.Contains(lines[0], "CACHE") || !strings.Contains(lines[0], "LINT") {
		t.Errorf("bad header: %q", lines[0])
	}
	for _, r := range results[:2] {
		if !strings.Contains(tab, r.Name) {
			t.Errorf("table missing NF %q:\n%s", r.Name, tab)
		}
	}
}

// TestCacheSingleflight checks that concurrent misses on one key run the
// computation once, and that errors are not retained.
func TestCacheSingleflight(t *testing.T) {
	mod := click.Get("tcpack").MustModule()
	c := newPredCache(0)
	var mu sync.Mutex
	calls := 0
	compute := func() (*core.ModulePrediction, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return &core.ModulePrediction{Name: mod.Name}, nil
	}
	var wg sync.WaitGroup
	hits := make([]bool, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mp, hit, err := c.get(mod, niccc.AccelConfig{}, compute)
			if err != nil || mp == nil {
				t.Errorf("get: mp=%v err=%v", mp, err)
			}
			hits[i] = hit
		}(i)
	}
	wg.Wait()
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	nHits := 0
	for _, h := range hits {
		if h {
			nHits++
		}
	}
	if nHits != 15 {
		t.Errorf("%d hits, want 15", nHits)
	}

	// Distinct accel configs are distinct keys.
	_, hit, _ := c.get(mod, niccc.AccelConfig{CRCEngine: true}, compute)
	if hit || calls != 2 {
		t.Errorf("accel variant: hit=%v calls=%d, want miss and 2", hit, calls)
	}

	// Errors must not poison the key.
	fail := errors.New("boom")
	other := click.Get("aggcounter").MustModule()
	if _, _, err := c.get(other, niccc.AccelConfig{}, func() (*core.ModulePrediction, error) {
		return nil, fail
	}); !errors.Is(err, fail) {
		t.Errorf("error not propagated: %v", err)
	}
	mp, hit, err := c.get(other, niccc.AccelConfig{}, compute)
	if err != nil || hit || mp == nil {
		t.Errorf("after failure: mp=%v hit=%v err=%v; want recompute", mp, hit, err)
	}
}

// TestFleetJobValidation checks malformed batches fail up front.
func TestFleetJobValidation(t *testing.T) {
	tool := quickTool(t)
	fl, err := New(tool, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Run([]Job{{Name: "empty"}}); err == nil {
		t.Error("nil-module job accepted")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil tool accepted")
	}
}

// TestStatsRendering pins the stats snapshot arithmetic.
func TestStatsRendering(t *testing.T) {
	c := newCollector()
	c.record(Result{Elapsed: 1e6, CacheHit: true, Lint: analysis.Summary{Warnings: 1, Infos: 2}})
	c.record(Result{Elapsed: 3e6, Lint: analysis.Summary{Errors: 1}})
	c.record(Result{Elapsed: 2e9, Err: errors.New("x")})
	c.addWall(5e6)
	s := c.snapshot()
	if s.JobsCompleted != 2 || s.JobsFailed != 1 {
		t.Errorf("jobs: %+v", s)
	}
	if s.CacheHits != 1 || s.CacheMisses != 2 {
		t.Errorf("cache: %+v", s)
	}
	if s.LintErrors != 1 || s.LintWarnings != 1 || s.LintInfos != 2 {
		t.Errorf("lint counts: %+v", s)
	}
	if got := s.HitRate(); got < 0.33 || got > 0.34 {
		t.Errorf("hit rate %v", got)
	}
	if s.Analyses.N != 3 || s.Analyses.Max != 2e9 || s.Analyses.Min != 1e6 {
		t.Errorf("histogram: %+v", s.Analyses)
	}
	// Overflow bucket holds the 2s outlier.
	if s.Analyses.Counts[len(s.Analyses.Counts)-1] != 1 {
		t.Errorf("overflow bucket: %v", s.Analyses.Counts)
	}
	out := s.String()
	for _, want := range []string{"2 completed", "1 hits", "batch wall time"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetPanicIsolation checks that a panic inside one job's analysis
// is confined to that job's Result: the rest of the batch completes and
// the pool (the serving process, in -serve mode) survives.
func TestFleetPanicIsolation(t *testing.T) {
	tool := quickTool(t)
	e := click.Get("tcpack")
	mod := e.MustModule()
	ps := core.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes}
	jobs := []Job{
		{Name: "ok-1", Mod: mod, PS: ps, WL: traffic.SmallFlows},
		{Name: "boom", Mod: mod, WL: traffic.SmallFlows, PS: core.ProfileSetup{
			Setup: func(*interp.Machine) error { panic("synthetic NF panic") },
		}},
		{Name: "ok-2", Mod: mod, PS: ps, WL: traffic.LargeFlows},
	}
	fl, err := New(tool, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := fl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !results[1].Panicked || results[1].Err == nil {
		t.Fatalf("panicking job not isolated: %+v", results[1])
	}
	if msg := results[1].Err.Error(); !strings.Contains(msg, "synthetic NF panic") || !strings.Contains(msg, "goroutine") {
		t.Errorf("panic error missing value or stack snippet:\n%s", msg)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Insights == nil {
			t.Errorf("job %d harmed by sibling panic: %+v", i, results[i].Err)
		}
	}
	s := fl.Stats()
	if s.JobsPanicked != 1 || s.JobsCompleted != 2 || s.JobsFailed != 0 {
		t.Errorf("stats: %d panicked, %d completed, %d failed", s.JobsPanicked, s.JobsCompleted, s.JobsFailed)
	}
}

// TestCachePanicRecovery checks a panicking compute neither deadlocks
// waiters nor poisons the key.
func TestCachePanicRecovery(t *testing.T) {
	mod := click.Get("tcpack").MustModule()
	c := newPredCache(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed by cache")
			}
		}()
		c.get(mod, niccc.AccelConfig{}, func() (*core.ModulePrediction, error) {
			panic("compute exploded")
		})
	}()
	if c.len() != 0 {
		t.Fatalf("panicked entry retained: %d", c.len())
	}
	mp, hit, err := c.get(mod, niccc.AccelConfig{}, func() (*core.ModulePrediction, error) {
		return &core.ModulePrediction{Name: mod.Name}, nil
	})
	if err != nil || hit || mp == nil {
		t.Fatalf("key poisoned after panic: mp=%v hit=%v err=%v", mp, hit, err)
	}
}

// TestCacheContentHash checks the serving-mode fix: two modules compiled
// from the same source are distinct pointers but one cache entry, while
// different source stays distinct.
func TestCacheContentHash(t *testing.T) {
	src := click.Get("tcpack").Src
	m1, err := lang.Compile("req-1", src)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := lang.Compile("req-1", src)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("compiler returned a shared module; test needs fresh pointers")
	}
	c := newPredCache(0)
	calls := 0
	compute := func() (*core.ModulePrediction, error) {
		calls++
		return &core.ModulePrediction{Name: "x"}, nil
	}
	if _, hit, _ := c.get(m1, niccc.AccelConfig{}, compute); hit {
		t.Error("first request hit")
	}
	if _, hit, _ := c.get(m2, niccc.AccelConfig{}, compute); !hit {
		t.Error("identical resubmitted source missed the cache")
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	other, err := lang.Compile("req-2", click.Get("aggcounter").Src)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.get(other, niccc.AccelConfig{}, compute); hit {
		t.Error("different source hit")
	}
	if c.len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.len())
	}
}

// TestCacheLRUEviction checks the size cap: the least recently used
// entry is evicted, and a touched entry survives.
func TestCacheLRUEviction(t *testing.T) {
	names := []string{"tcpack", "aggcounter", "udpipencap"}
	var mods []*ir.Module
	for _, n := range names {
		mods = append(mods, click.Get(n).MustModule())
	}
	c := newPredCache(2)
	compute := func() (*core.ModulePrediction, error) {
		return &core.ModulePrediction{}, nil
	}
	c.get(mods[0], niccc.AccelConfig{}, compute)
	c.get(mods[1], niccc.AccelConfig{}, compute)
	// Touch mods[0] so mods[1] is LRU, then insert a third entry.
	if _, hit, _ := c.get(mods[0], niccc.AccelConfig{}, compute); !hit {
		t.Fatal("resident entry missed")
	}
	c.get(mods[2], niccc.AccelConfig{}, compute)
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want cap 2", c.len())
	}
	if _, hit, _ := c.get(mods[0], niccc.AccelConfig{}, compute); !hit {
		t.Error("recently-used entry was evicted")
	}
	if _, hit, _ := c.get(mods[1], niccc.AccelConfig{}, compute); hit {
		t.Error("LRU entry survived past the cap")
	}
}

// TestRunContextCancel proves a mid-batch cancellation stops the
// remaining jobs: with one worker pinned inside job 0, canceling the
// context marks every undispatched job canceled without running it, and
// job 0's own analysis aborts inside its profiling loop.
func TestRunContextCancel(t *testing.T) {
	tool := quickTool(t)
	mod := click.Get("tcpack").MustModule()
	const n = 6
	var executed atomic.Int32
	started := make(chan struct{}, n)
	release := make(chan struct{})
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("job-%d", i),
			Mod:  mod,
			WL:   traffic.SmallFlows,
			PS: core.ProfileSetup{Setup: func(*interp.Machine) error {
				executed.Add(1)
				started <- struct{}{}
				<-release
				return nil
			}},
		}
	}
	fl, err := New(tool, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var results []Result
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		results, runErr = fl.RunContext(ctx, jobs)
	}()
	<-started // job 0 is inside its Setup; the dispatcher is blocked on job 1
	cancel()
	// The dispatcher's only runnable path is now ctx.Done: wait until it
	// has marked the undispatched tail before letting job 0 continue.
	waitFor(t, "undispatched jobs marked canceled", func() bool {
		return fl.Stats().JobsCanceled >= n-1
	})
	close(release)
	<-done
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", runErr)
	}
	if got := executed.Load(); got != 1 {
		t.Errorf("%d jobs executed after cancel, want 1", got)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want canceled", i, r.Err)
		}
		if r.Insights != nil {
			t.Errorf("job %d produced insights after cancel", i)
		}
	}
	if s := fl.Stats(); s.JobsCanceled != n {
		t.Errorf("stats: %d canceled, want %d", s.JobsCanceled, n)
	}
}

// TestCacheNoHitOnErroredSingleflight pins the accounting fix: a waiter
// blocked on an in-flight entry whose leader then fails shares the
// leader's error, not a cached prediction, so it must report hit=false —
// otherwise an errored job would count a CacheHit and inflate the hit
// rate the cluster coordinator uses to judge per-worker cache locality.
func TestCacheNoHitOnErroredSingleflight(t *testing.T) {
	mod := click.Get("tcpack").MustModule()
	c := newPredCache(0)
	boom := errors.New("leader failed")
	started := make(chan struct{})
	release := make(chan struct{})
	failing := func() (*core.ModulePrediction, error) {
		<-release
		return nil, boom
	}

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, hit, err := c.get(mod, niccc.AccelConfig{}, func() (*core.ModulePrediction, error) {
			close(started)
			<-release
			return nil, boom
		})
		if hit || !errors.Is(err, boom) {
			t.Errorf("leader: hit=%v err=%v, want miss and boom", hit, err)
		}
	}()
	<-started

	// Waiters join while the leader is in flight. A waiter that loses the
	// race and arrives after the failed entry is dropped becomes a new
	// leader and recomputes — either way the outcome is (no hit, boom).
	const n = 8
	type outcome struct {
		hit bool
		err error
	}
	outs := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, hit, err := c.get(mod, niccc.AccelConfig{}, failing)
			outs[i] = outcome{hit, err}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters attach to the entry
	close(release)
	wg.Wait()
	<-leaderDone
	for i, o := range outs {
		if o.hit {
			t.Errorf("waiter %d reported a cache hit for an errored prediction", i)
		}
		if !errors.Is(o.err, boom) {
			t.Errorf("waiter %d error = %v, want boom", i, o.err)
		}
	}
	if c.len() != 0 {
		t.Errorf("failed entries retained: %d", c.len())
	}

	// A successful waiter still counts a hit: the semantics only changed
	// for errored entries.
	if _, hit, err := c.get(mod, niccc.AccelConfig{}, func() (*core.ModulePrediction, error) {
		return &core.ModulePrediction{Name: mod.Name}, nil
	}); hit || err != nil {
		t.Fatalf("recompute after failures: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.get(mod, niccc.AccelConfig{}, failing); !hit || err != nil {
		t.Errorf("completed entry: hit=%v err=%v, want hit", hit, err)
	}
}

// TestCacheInFlightEviction drives the claim/fill prewarm path with a
// cap smaller than the batch: the map never exceeds the cap, evicted
// in-flight entries still complete for waiters holding the entry
// pointer, evictions are counted, and an evicted key recomputes.
func TestCacheInFlightEviction(t *testing.T) {
	names := []string{"tcpack", "aggcounter", "udpipencap", "forcetcp"}
	var mods []*ir.Module
	for _, n := range names {
		mods = append(mods, click.Get(n).MustModule())
	}
	c := newPredCache(2)
	var entries []*predEntry
	for i, m := range mods {
		e, leader := c.claim(keyFor(m, niccc.AccelConfig{}))
		if !leader {
			t.Fatalf("claim %d not leader", i)
		}
		if c.len() > 2 {
			t.Fatalf("after claim %d cache holds %d entries, over cap 2", i, c.len())
		}
		entries = append(entries, e)
	}
	if got := c.evicted(); got != 2 {
		t.Errorf("evictions = %d, want 2 (the first two in-flight claims)", got)
	}

	// Waiters on the two evicted in-flight entries, holding the entry
	// pointers exactly the way get's waiter path does.
	got := make([]*core.ModulePrediction, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-entries[i].ready
			got[i] = entries[i].mp
		}(i)
	}
	for i, e := range entries {
		c.fill(e, &core.ModulePrediction{Name: names[i]}, nil)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if got[i] == nil || got[i].Name != names[i] {
			t.Errorf("waiter %d on evicted entry got %+v, want %s", i, got[i], names[i])
		}
	}
	if c.len() != 2 {
		t.Errorf("cache holds %d entries after fills, want 2", c.len())
	}

	// The evicted keys are gone: a fresh lookup recomputes.
	calls := 0
	if _, hit, _ := c.get(mods[0], niccc.AccelConfig{}, func() (*core.ModulePrediction, error) {
		calls++
		return &core.ModulePrediction{}, nil
	}); hit || calls != 1 {
		t.Errorf("evicted key: hit=%v calls=%d, want recompute", hit, calls)
	}
}

// TestFleetPrewarmEviction runs a real batch whose distinct-module count
// exceeds the cache cap: prewarm claims more entries than fit, evicting
// in-flight entries, and every job must still complete with a usable
// prediction (the waiters hold entry pointers, so eviction only affects
// future lookups).
func TestFleetPrewarmEviction(t *testing.T) {
	tool := quickTool(t)
	names := []string{"tcpack", "aggcounter", "udpipencap", "forcetcp", "timefilter"}
	var jobs []Job
	for _, n := range names {
		e := click.Get(n)
		jobs = append(jobs, Job{
			Name: e.Name,
			Mod:  e.MustModule(),
			PS:   core.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes},
			WL:   traffic.SmallFlows,
		})
	}
	fl, err := New(tool, Config{Workers: 2, CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := fl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Insights == nil {
			t.Errorf("job %d (%s) failed under eviction pressure: %v", i, r.Name, r.Err)
		}
	}
	if fl.cache.len() > 2 {
		t.Errorf("cache holds %d entries, over cap 2", fl.cache.len())
	}
	s := fl.Stats()
	if s.CacheEvictions < int64(len(names)-2) {
		t.Errorf("stats evictions = %d, want >= %d", s.CacheEvictions, len(names)-2)
	}
	if s.JobsCompleted != int64(len(names)) {
		t.Errorf("completed = %d, want %d", s.JobsCompleted, len(names))
	}
}
