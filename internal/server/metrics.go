package server

import (
	"net/http"
	"sync"
	"time"

	"clara/internal/fleet"
)

// statusClientClosed marks requests whose client disconnected before a
// response could be written (nginx's 499 convention).
const statusClientClosed = 499

// RouteStats counts one endpoint's requests by outcome class.
type RouteStats struct {
	Total        int64 `json:"total"`
	OK           int64 `json:"ok"`
	ClientErrors int64 `json:"client_errors"` // 4xx except 429
	ServerErrors int64 `json:"server_errors"` // 5xx
	Rejected     int64 `json:"rejected"`      // 429 backpressure
	Canceled     int64 `json:"canceled"`      // client disconnected
}

// HistogramJSON is a latency histogram in milliseconds — the /metrics
// rendering of a fleet.Histogram.
type HistogramJSON struct {
	// BoundsMs[i] is the inclusive upper bound of Counts[i];
	// Counts[len(BoundsMs)] is the overflow bucket.
	BoundsMs []float64 `json:"bounds_ms"`
	Counts   []int64   `json:"counts"`
	N        int64     `json:"n"`
	MinMs    float64   `json:"min_ms"`
	MeanMs   float64   `json:"mean_ms"`
	MaxMs    float64   `json:"max_ms"`
}

func histJSON(h fleet.Histogram) HistogramJSON {
	out := HistogramJSON{
		Counts: h.Counts,
		N:      h.N,
		MinMs:  ms(h.Min),
		MeanMs: ms(h.Mean()),
		MaxMs:  ms(h.Max),
	}
	for _, b := range h.Bounds {
		out.BoundsMs = append(out.BoundsMs, ms(b))
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// FleetStats is the /metrics rendering of fleet.Stats.
type FleetStats struct {
	JobsCompleted int64   `json:"jobs_completed"`
	JobsFailed    int64   `json:"jobs_failed"`
	JobsCanceled  int64   `json:"jobs_canceled"`
	JobsPanicked  int64   `json:"jobs_panicked"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Prewarmed     int64   `json:"prewarmed"`
	LintErrors    int64   `json:"lint_errors"`
	LintWarnings  int64   `json:"lint_warnings"`
	LintInfos     int64   `json:"lint_infos"`
	// Taint classification totals across analyzed jobs: loops bounded by
	// payload bytes and structures keyed by payload-derived values.
	PayloadLoops        int64         `json:"payload_loops"`
	PayloadKeyedStructs int64         `json:"payload_keyed_structs"`
	AnalysisLatency     HistogramJSON `json:"analysis_latency"`
}

// ModelStats is the /metrics rendering of the served model's
// provenance: whether the server has a model at all (false while a
// Train-configured server is still in its startup training run), where
// it came from, and its bundle hash.
type ModelStats struct {
	Ready        bool    `json:"ready"`
	WarmStart    bool    `json:"warm_start"`
	Quantized    bool    `json:"quantized,omitempty"`
	Hash         string  `json:"model_hash,omitempty"`
	TrainSeconds float64 `json:"train_seconds,omitempty"`
	TrainError   string  `json:"train_error,omitempty"`
}

// MetricsSnapshot is the /metrics response schema.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Model reports readiness and provenance of the served model.
	Model ModelStats `json:"model"`
	// Requests counts per-endpoint outcomes (analyze, lint, elements).
	Requests map[string]RouteStats `json:"requests"`
	// Queue reports admission occupancy: Depth slots of Capacity held.
	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	// Latency is the per-endpoint request wall-time distribution.
	Latency map[string]HistogramJSON `json:"latency"`
	// Fleet is the analysis pool's lifetime stats (per-job, not
	// per-request: one batch request contributes many jobs).
	Fleet FleetStats `json:"fleet"`
}

// metrics accumulates per-route counters and latency histograms.
type metrics struct {
	mu     sync.Mutex
	start  time.Time
	routes map[string]*RouteStats
	lat    map[string]*fleet.HistCollector
}

func newMetrics() *metrics {
	return &metrics{
		start:  time.Now(),
		routes: make(map[string]*RouteStats),
		lat:    make(map[string]*fleet.HistCollector),
	}
}

func (m *metrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	rs := m.routes[route]
	if rs == nil {
		rs = &RouteStats{}
		m.routes[route] = rs
	}
	h := m.lat[route]
	if h == nil {
		h = fleet.NewHistCollector()
		m.lat[route] = h
	}
	rs.Total++
	switch {
	case status == statusClientClosed:
		rs.Canceled++
	case status == http.StatusTooManyRequests:
		rs.Rejected++
	case status >= 500:
		rs.ServerErrors++
	case status >= 400:
		rs.ClientErrors++
	default:
		rs.OK++
	}
	m.mu.Unlock()
	h.Observe(d)
}

func (m *metrics) snapshot(fs fleet.Stats, queueDepth, queueCap int) MetricsSnapshot {
	out := MetricsSnapshot{
		Requests: make(map[string]RouteStats),
		Latency:  make(map[string]HistogramJSON),
	}
	m.mu.Lock()
	out.UptimeSeconds = time.Since(m.start).Seconds()
	for route, rs := range m.routes {
		out.Requests[route] = *rs
	}
	hists := make(map[string]*fleet.HistCollector, len(m.lat))
	for route, h := range m.lat {
		hists[route] = h
	}
	m.mu.Unlock()
	for route, h := range hists {
		out.Latency[route] = histJSON(h.Snapshot())
	}
	out.Queue.Depth = queueDepth
	out.Queue.Capacity = queueCap
	out.Fleet = FleetStats{
		JobsCompleted:       fs.JobsCompleted,
		JobsFailed:          fs.JobsFailed,
		JobsCanceled:        fs.JobsCanceled,
		JobsPanicked:        fs.JobsPanicked,
		CacheHits:           fs.CacheHits,
		CacheMisses:         fs.CacheMisses,
		CacheHitRate:        fs.HitRate(),
		Prewarmed:           fs.Prewarmed,
		LintErrors:          fs.LintErrors,
		LintWarnings:        fs.LintWarnings,
		LintInfos:           fs.LintInfos,
		PayloadLoops:        fs.PayloadLoops,
		PayloadKeyedStructs: fs.PayloadKeyedStructs,
		AnalysisLatency:     histJSON(fs.Analyses),
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fl, info, trainErr := s.state()
	var fs fleet.Stats
	if fl != nil {
		fs = fl.Stats()
	}
	snap := s.met.snapshot(fs, len(s.sem), cap(s.sem))
	snap.Model = ModelStats{
		Ready:        fl != nil,
		WarmStart:    info.WarmStart,
		Hash:         info.Hash,
		TrainSeconds: info.TrainSeconds,
	}
	if t := s.tool(); t != nil && t.Predictor != nil {
		snap.Model.Quantized = t.Predictor.Quantized()
	}
	if trainErr != nil {
		snap.Model.TrainError = trainErr.Error()
	}
	writeJSON(w, http.StatusOK, snap)
}
