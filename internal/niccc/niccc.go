package niccc

import (
	"fmt"
	"math/bits"

	"clara/internal/ir"
	"clara/internal/isa"
)

// NumGPRs is the number of general-purpose registers available to the
// register allocator per thread. Locals beyond this pressure spill to LMEM.
const NumGPRs = 14

// maxFoldedImmed is the largest immediate an ALU instruction can embed;
// larger constants need a separate OpImmed load.
const maxFoldedImmed = 255

// Options configures a compilation.
type Options struct {
	Accel AccelConfig
}

// Compile lowers the module's handler to the NIC ISA. The output has one
// compiled block per IR block (same indices), so per-block instruction
// counts line up with Clara's per-block predictions.
func Compile(m *ir.Module, opts Options) (*isa.Program, error) {
	f := m.Handler()
	if f == nil {
		return nil, fmt.Errorf("niccc: module %s has no handler", m.Name)
	}
	c := &compiler{mod: m, f: f, opts: opts}
	c.analyze()
	prog := &isa.Program{Name: m.Name, Blocks: make([]isa.Block, len(f.Blocks))}
	for bi, b := range f.Blocks {
		blk := c.compileBlock(b)
		blk.Summarize()
		prog.Blocks[bi] = blk
	}
	return prog, nil
}

type compiler struct {
	mod  *ir.Module
	f    *ir.Func
	opts Options

	uses     []int        // value ID -> number of uses in the function
	defs     []*ir.Instr  // value ID -> defining instruction
	spilled  map[int]bool // slot -> spilled?
	elemSize map[string]int
}

// analyze performs the whole-function passes: use counting (for fusion) and
// register allocation of local slots (by static access frequency — locals
// that don't fit in the GPR file spill to LMEM).
func (c *compiler) analyze() {
	c.uses = make([]int, c.f.NumVals)
	c.defs = make([]*ir.Instr, c.f.NumVals)
	slotUse := make([]int, c.f.NSlots)
	for _, b := range c.f.Blocks {
		for _, in := range b.Instrs {
			if in.ID >= 0 {
				c.defs[in.ID] = in
			}
			for _, a := range in.Args {
				if a.Kind == ir.VInstr {
					c.uses[a.ID]++
				}
			}
			if in.Op.IsLocalMem() {
				slotUse[in.Slot]++
			}
		}
	}
	// Rank slots by use count; keep the hottest NumGPRs in registers.
	type su struct{ slot, n int }
	order := make([]su, len(slotUse))
	for s, n := range slotUse {
		order[s] = su{s, n}
	}
	// Insertion sort by descending use count (stable, slot index breaks
	// ties deterministically).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && (order[j].n > order[j-1].n ||
			(order[j].n == order[j-1].n && order[j].slot < order[j-1].slot)); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	c.spilled = make(map[int]bool)
	for i, o := range order {
		if i >= NumGPRs && o.n > 0 {
			c.spilled[o.slot] = true
		}
	}
	c.elemSize = make(map[string]int)
	for _, g := range c.mod.Globals {
		c.elemSize[g.Name] = g.Elem.Size()
	}
}

// fusesWithTerminator reports whether an icmp's only use is the same
// block's conditional branch (so the compiler emits a single fused bcc).
func (c *compiler) fusesWithTerminator(b *ir.Block, in *ir.Instr) bool {
	if in.Op != ir.OpICmp || in.ID < 0 || c.uses[in.ID] != 1 {
		return false
	}
	t := b.Terminator()
	if t == nil || t.Op != ir.OpCondBr {
		return false
	}
	return len(t.Args) == 1 && t.Args[0].Kind == ir.VInstr && t.Args[0].ID == in.ID
}

// shlFeedsNextAdd reports whether instruction i is a shift-left by a
// constant whose single use is the immediately following add/sub in the
// same block — the pattern the ALU's fused shifter absorbs for free
// (indexed address arithmetic).
func shlFeedsNextAdd(b *ir.Block, i int, uses []int) bool {
	in := b.Instrs[i]
	if in.Op != ir.OpShl || in.ID < 0 || uses[in.ID] != 1 {
		return false
	}
	if len(in.Args) != 2 || in.Args[1].Kind != ir.VConst {
		return false
	}
	// Scan past instructions that emit no code (register-allocated local
	// loads, zero extensions) to find the consumer.
	for j := i + 1; j < len(b.Instrs); j++ {
		nxt := b.Instrs[j]
		if nxt.Op == ir.OpLLoad || nxt.Op == ir.OpZExt {
			continue
		}
		if nxt.Op != ir.OpAdd && nxt.Op != ir.OpSub && nxt.Op != ir.OpOr {
			return false
		}
		for _, a := range nxt.Args {
			if a.Kind == ir.VInstr && a.ID == in.ID {
				return true
			}
		}
		return false
	}
	return false
}

// compileBlock lowers one basic block.
func (c *compiler) compileBlock(b *ir.Block) isa.Block {
	var out []isa.Instr
	emit := func(in isa.Instr) { out = append(out, in) }

	// Per-block large-constant cache: NFCC materializes each distinct
	// >8-bit immediate once per block and reuses the register.
	immedSeen := map[int64]bool{}
	emitImmeds := func(in *ir.Instr, skip int) {
		for ai, a := range in.Args {
			if ai == skip {
				continue
			}
			if a.Kind == ir.VConst && (a.Const > maxFoldedImmed || a.Const < 0) {
				if !immedSeen[a.Const] {
					immedSeen[a.Const] = true
					emit(isa.Instr{Op: isa.OpImmed})
				}
			}
		}
	}

	// Redundant scalar-load elimination: a reloaded global scalar with no
	// intervening store/call reuses the register — but only over a short
	// window (the peephole pass works on a small sliding window, not whole
	// blocks). This is why IR memory counts sit slightly above NIC memory
	// counts for some NFs: the paper reports 96.4–100%, not always 100%.
	liveScalar := map[string]int{}
	const reloadWindow = 4

	for i := 0; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		switch in.Op {
		case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpLShr, ir.OpNot:
			emitImmeds(in, -1)
			emit(isa.Instr{Op: isa.OpALU, Sub: in.Op.String()})

		case ir.OpShl:
			if shlFeedsNextAdd(b, i, c.uses) {
				// Absorbed by the next instruction's fused shifter.
				continue
			}
			emitImmeds(in, -1)
			emit(isa.Instr{Op: isa.OpALU, Sub: "shl"})

		case ir.OpMul:
			c.emitMul(in, emit, emitImmeds)

		case ir.OpUDiv, ir.OpURem:
			if cst, ok := constArg(in, 1); ok && cst > 0 && cst&(cst-1) == 0 {
				emit(isa.Instr{Op: isa.OpALU, Sub: "shr"})
				continue
			}
			for k := 0; k < 24; k++ {
				emit(isa.Instr{Op: isa.OpDivStep})
			}

		case ir.OpICmp:
			if c.fusesWithTerminator(b, in) {
				continue // folded into the terminator's bcc
			}
			emitImmeds(in, -1)
			emit(isa.Instr{Op: isa.OpALU, Sub: "cmp"})
			emit(isa.Instr{Op: isa.OpALU, Sub: "cset"})

		case ir.OpZExt:
			// Free: registers are 64-bit, upper bits already clear.

		case ir.OpTrunc:
			if in.Ty == ir.U8 || in.Ty == ir.U16 {
				emit(isa.Instr{Op: isa.OpALU, Sub: "mask"})
			}

		case ir.OpLLoad, ir.OpLStore:
			if c.spilled[in.Slot] {
				emit(isa.Instr{Op: isa.OpSpill})
			}
			// Register-allocated locals cost nothing: "stack operations may
			// not result in any memory accesses" (§3.2).

		case ir.OpGLoad:
			g := c.mod.Global(in.Global)
			if g.Kind == ir.GScalar {
				if at, live := liveScalar[in.Global]; live && i-at <= reloadWindow {
					continue // redundant reload eliminated
				}
				liveScalar[in.Global] = i
				emit(isa.Instr{Op: isa.OpMemRead, Size: g.Elem.Size(), Global: in.Global})
			} else {
				emitImmeds(in, -1)
				emit(isa.Instr{Op: isa.OpALU, Sub: "addr"})
				emit(isa.Instr{Op: isa.OpMemRead, Size: g.Elem.Size(), Global: in.Global})
			}

		case ir.OpGStore:
			g := c.mod.Global(in.Global)
			if g.Kind == ir.GScalar {
				delete(liveScalar, in.Global)
				emit(isa.Instr{Op: isa.OpMemWrite, Size: g.Elem.Size(), Global: in.Global})
			} else {
				emitImmeds(in, 1)
				emit(isa.Instr{Op: isa.OpALU, Sub: "addr"})
				emit(isa.Instr{Op: isa.OpMemWrite, Size: g.Elem.Size(), Global: in.Global})
			}

		case ir.OpCall:
			// Library calls may mutate state; the scalar cache dies.
			liveScalar = map[string]int{}
			for _, li := range LowerCall(in.Callee, in.Global, c.opts.Accel) {
				emit(li)
			}

		case ir.OpBr:
			emit(isa.Instr{Op: isa.OpBr})

		case ir.OpCondBr:
			emit(isa.Instr{Op: isa.OpBcc})

		case ir.OpRet:
			emit(isa.Instr{Op: isa.OpRet})
		}
	}
	return isa.Block{Instrs: out}
}

func constArg(in *ir.Instr, i int) (int64, bool) {
	if i < len(in.Args) && in.Args[i].Kind == ir.VConst {
		return in.Args[i].Const, true
	}
	return 0, false
}

// emitMul lowers a multiply: the NIC has no single-cycle multiplier, so the
// toolchain strength-reduces constant multiplies and otherwise emits the
// 8-step sequenced multiplier.
func (c *compiler) emitMul(in *ir.Instr, emit func(isa.Instr), emitImmeds func(*ir.Instr, int)) {
	cst, ok := constArg(in, 1)
	if !ok {
		cst, ok = constArg(in, 0)
	}
	if ok && cst > 0 {
		u := uint64(cst)
		switch pc := bits.OnesCount64(u); {
		case pc == 1:
			emit(isa.Instr{Op: isa.OpALU, Sub: "shl"})
			return
		case pc <= 3:
			// shift-add decomposition: pc shifts + (pc-1) adds
			for k := 0; k < 2*pc-1; k++ {
				emit(isa.Instr{Op: isa.OpALU, Sub: "shladd"})
			}
			return
		}
	}
	emitImmeds(in, -1)
	for k := 0; k < 8; k++ {
		emit(isa.Instr{Op: isa.OpMulStep})
	}
}
