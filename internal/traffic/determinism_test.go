package traffic

import (
	"reflect"
	"testing"
)

// TestGeneratorDeterminism is the table-driven seed contract: a Spec's
// Seed fully determines the packet stream, so two generators built from
// the same spec emit byte-identical traces. The fleet analyzer's
// worker-count invariance (internal/fleet) rests on this.
func TestGeneratorDeterminism(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"large-flows", LargeFlows},
		{"small-flows", SmallFlows},
		{"medium-mix", MediumMix},
		{"custom-seed", Spec{Name: "custom", NumFlows: 128, PktSize: 256, ZipfS: 1.3, SYNRatio: 0.07, UDPRatio: 0.4, PayloadB: 96, Seed: 12345}},
	}
	const n = 2000
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g1, err := NewGenerator(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := NewGenerator(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			a, b := g1.Trace(n), g2.Trace(n)
			if len(a) != n || len(b) != n {
				t.Fatalf("trace lengths: %d, %d", len(a), len(b))
			}
			if !reflect.DeepEqual(a, b) {
				for i := range a {
					if !reflect.DeepEqual(a[i], b[i]) {
						t.Fatalf("packet %d differs:\n%+v\nvs\n%+v", i, a[i], b[i])
					}
				}
			}
		})
	}

	// Different seeds must actually diverge (guards against the seed
	// being ignored, which would make the identity check vacuous).
	a := MediumMix
	b := MediumMix
	b.Seed = a.Seed + 1
	g1, _ := NewGenerator(a)
	g2, _ := NewGenerator(b)
	if reflect.DeepEqual(g1.Trace(200), g2.Trace(200)) {
		t.Error("traces identical across different seeds")
	}
}
