// Package stats provides the evaluation metrics and distribution distances
// the paper reports: WMAPE for instruction prediction (§5.2),
// precision/recall for algorithm identification (§5.3), MAE for core-count
// prediction (§5.4), top-k accuracy for colocation ranking (§5.7), and the
// six distribution distances of Table 1.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// WMAPE is the weighted mean absolute percentage error:
// Σ|y−ŷ| / Σ|y|.
func WMAPE(truth, pred []float64) float64 {
	if len(truth) != len(pred) || len(truth) == 0 {
		return math.NaN()
	}
	var num, den float64
	for i := range truth {
		num += math.Abs(truth[i] - pred[i])
		den += math.Abs(truth[i])
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// MAE is the mean absolute error.
func MAE(truth, pred []float64) float64 {
	if len(truth) != len(pred) || len(truth) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range truth {
		s += math.Abs(truth[i] - pred[i])
	}
	return s / float64(len(truth))
}

// PrecisionRecall computes multi-class averaged precision and recall over
// the positive classes (labels > 0; label 0 is "none").
func PrecisionRecall(truth, pred []int) (precision, recall float64) {
	var tp, fp, fn float64
	for i := range truth {
		switch {
		case pred[i] > 0 && pred[i] == truth[i]:
			tp++
		case pred[i] > 0 && pred[i] != truth[i]:
			fp++
			if truth[i] > 0 {
				fn++
			}
		case pred[i] == 0 && truth[i] > 0:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	return precision, recall
}

// Accuracy is the fraction of exact matches.
func Accuracy(truth, pred []int) float64 {
	if len(truth) == 0 {
		return math.NaN()
	}
	n := 0
	for i := range truth {
		if truth[i] == pred[i] {
			n++
		}
	}
	return float64(n) / float64(len(truth))
}

// TopK reports whether target is among the k highest-scored indices.
func TopK(scores []float64, target, k int) bool {
	type iv struct {
		i int
		v float64
	}
	order := make([]iv, len(scores))
	for i, v := range scores {
		order[i] = iv{i, v}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].v != order[b].v {
			return order[a].v > order[b].v
		}
		return order[a].i < order[b].i
	})
	for i := 0; i < k && i < len(order); i++ {
		if order[i].i == target {
			return true
		}
	}
	return false
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// --- Distribution distances (Table 1) ---

const eps = 1e-12

func checkDist(p, q []float64) error {
	if len(p) != len(q) || len(p) == 0 {
		return fmt.Errorf("stats: distributions must be same nonzero length")
	}
	return nil
}

// KL computes the Kullback-Leibler divergence D(p||q) with epsilon
// smoothing.
func KL(p, q []float64) float64 {
	var s float64
	for i := range p {
		pi, qi := p[i]+eps, q[i]+eps
		s += pi * math.Log(pi/qi)
	}
	return s
}

// JensenShannon computes the Jensen-Shannon divergence (base e).
func JensenShannon(p, q []float64) (float64, error) {
	if err := checkDist(p, q); err != nil {
		return 0, err
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = (p[i] + q[i]) / 2
	}
	return KL(p, m)/2 + KL(q, m)/2, nil
}

// Renyi computes the Rényi divergence of order alpha (the paper uses a
// fixed order; we default to 2 in RenyiDefault).
func Renyi(p, q []float64, alpha float64) (float64, error) {
	if err := checkDist(p, q); err != nil {
		return 0, err
	}
	if alpha == 1 {
		return KL(p, q), nil
	}
	var s float64
	for i := range p {
		pi, qi := p[i]+eps, q[i]+eps
		s += math.Pow(pi, alpha) / math.Pow(qi, alpha-1)
	}
	return math.Log(s) / (alpha - 1), nil
}

// RenyiDefault is Renyi with alpha = 2.
func RenyiDefault(p, q []float64) (float64, error) { return Renyi(p, q, 2) }

// Bhattacharyya computes the Bhattacharyya distance.
func Bhattacharyya(p, q []float64) (float64, error) {
	if err := checkDist(p, q); err != nil {
		return 0, err
	}
	var bc float64
	for i := range p {
		bc += math.Sqrt((p[i] + eps) * (q[i] + eps))
	}
	if bc > 1 {
		bc = 1
	}
	return -math.Log(bc), nil
}

// Cosine computes the cosine distance 1 − cos(p, q).
func Cosine(p, q []float64) (float64, error) {
	if err := checkDist(p, q); err != nil {
		return 0, err
	}
	var dot, np, nq float64
	for i := range p {
		dot += p[i] * q[i]
		np += p[i] * p[i]
		nq += q[i] * q[i]
	}
	if np == 0 || nq == 0 {
		return 1, nil
	}
	return 1 - dot/(math.Sqrt(np)*math.Sqrt(nq)), nil
}

// Euclidean computes the L2 distance.
func Euclidean(p, q []float64) (float64, error) {
	if err := checkDist(p, q); err != nil {
		return 0, err
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// Variational computes the total variation distance scaled by 2 (the L1
// distance), the "variational distance" of Table 1.
func Variational(p, q []float64) (float64, error) {
	if err := checkDist(p, q); err != nil {
		return 0, err
	}
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s, nil
}
