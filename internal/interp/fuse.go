package interp

import "clara/internal/ir"

// Superinstruction fusion for the plain and counting flavors. Shapes are
// matched on opcodes alone — write-through bodies (see compile.go) make
// any adjacent instructions of a matched shape fusable without use-def
// analysis. The catalog covers the sequences -O0-style lowering emits
// for the statements that dominate host profiling:
//
//	load+load+ALU+store  the full `x = a ⊕ b` statement
//	load+load+ALU    operand staging for a binary expression
//	load+ALU+store   `x ⊕= e` on a local
//	gload+ALU+gstore `a[i] ⊕= e` on a pow2 global array (counter bump)
//	payload+ALU[+store]  per-byte packet reads feeding compute (ciphers)
//	hash32+ALU       hash feeding the table-index mask/mod (hash+probe)
//	load+ALU, ALU+store, load+load   the two-instruction remainders
//
// Counter increments in fused global-access bodies are deferred to the
// end of the body: counters are only readable after RunPacket returns
// and no abort point exists inside a block, so the deferral is
// unobservable.

// vstep is one instruction of a chain superinstruction, pre-resolved to
// flat operand indices. A chain closure walks a []vstep with a dense
// switch — one indirect call per run instead of one per instruction —
// so the per-op cost drops to a predicted jump plus the op itself.
type vstep struct {
	mask uint64
	aux  uint64 // pow2 array index mask (gloadAP/gstoreAP) or baked const operand (C variants)
	sm   uint64 // store-width mask (S variants)
	a0   int32
	a1   int32
	id   int32 // result cell; dest slot for lstore
	gi   int32 // global index (gloadAP/gstoreAP) or store slot (S variants)
	k    int32 // baked state-counter index, -1 when not counting
	op   xop
	pred ir.Pred
}

// Chain-only pseudo-ops, produced by peepholeSteps and never present in
// cInstr form: C variants bake a constant right operand into the step
// (const-pool cells are immutable, preloaded at machine construction),
// S variants fold a following local store of the step's own result into
// the same step, CS variants do both. Values start past the real xop
// enum so the execSteps switch can host both sets.
const (
	vAddC xop = 64 + iota
	vSubC
	vMulC
	vAndC
	vOrC
	vXorC
	vShlC
	vLShrC
	vICmpC
	vAddS
	vSubS
	vMulS
	vAndS
	vOrS
	vXorS
	vShlS
	vLShrS
	vMaskS
	vAddCS
	vSubCS
	vMulCS
	vAndCS
	vOrCS
	vXorCS
	vShlCS
	vLShrCS
)

// constOp maps an op to its baked-constant variant (0 = none).
func constOp(op xop) xop {
	switch op {
	case xAdd:
		return vAddC
	case xSub:
		return vSubC
	case xMul:
		return vMulC
	case xAnd:
		return vAndC
	case xOr:
		return vOrC
	case xXor:
		return vXorC
	case xShl:
		return vShlC
	case xLShr:
		return vLShrC
	case xICmp:
		return vICmpC
	}
	return 0
}

// storeOp maps an op to its store-fused variant (0 = none).
func storeOp(op xop) xop {
	switch op {
	case xAdd:
		return vAddS
	case xSub:
		return vSubS
	case xMul:
		return vMulS
	case xAnd:
		return vAndS
	case xOr:
		return vOrS
	case xXor:
		return vXorS
	case xShl:
		return vShlS
	case xLShr:
		return vLShrS
	case xMask:
		return vMaskS
	case vAddC:
		return vAddCS
	case vSubC:
		return vSubCS
	case vMulC:
		return vMulCS
	case vAndC:
		return vAndCS
	case vOrC:
		return vOrCS
	case vXorC:
		return vXorCS
	case vShlC:
		return vShlCS
	case vLShrC:
		return vLShrCS
	}
	return 0
}

// peepholeSteps rewrites a chain into fewer, fatter steps: a constant
// right operand is baked into the step (vs[c] for a const-pool cell c
// always holds the pooled value), and a local store of the step's own
// fresh result folds into the producing step. Both rewrites keep the
// write-through contract — every constituent's result cell is still
// written — so later steps and other blocks observe identical state.
func peepholeSteps(p *program, ss []vstep) []vstep {
	cb := p.vsOff() + int32(p.nvals) // first const-pool cell, combined space
	out := make([]vstep, 0, len(ss))
	for j := 0; j < len(ss); j++ {
		s := ss[j]
		switch s.op {
		case xAdd, xSub, xMul, xAnd, xOr, xXor, xShl, xLShr, xICmp:
			if s.a1 >= cb {
				c := p.pool[s.a1-cb]
				switch s.op {
				case xAnd:
					c &= s.mask // fold the width mask into the constant
				case xShl, xLShr:
					c &= 63 // pre-bake the shift-amount clamp
				}
				s.aux = c
				s.op = constOp(s.op)
			}
		}
		if j+1 < len(ss) && ss[j+1].op == xLStore && ss[j+1].a0 == s.id {
			if so := storeOp(s.op); so != 0 {
				s.gi = ss[j+1].id // the destination slot
				s.sm = ss[j+1].mask
				s.op = so
				out = append(out, s)
				j++
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// chainStep translates an instruction into its vstep if it belongs to
// the chain-fusable class: ops whose effects touch only the register
// file, the packet payload, pow2 global arrays, and baked counter cells
// — everything deterministic with no error or hook path.
func chainStep(p *program, in *cInstr, bi int, counting bool) (vstep, bool) {
	s := vstep{mask: in.mask, a0: in.a0, a1: in.a1, id: in.id, op: in.op, pred: in.pred, k: -1}
	switch in.op {
	case xAdd, xSub, xMul, xUDiv, xURem, xAnd, xOr, xXor, xShl, xLShr,
		xNot, xMask, xICmp, xCallHash32:
	case xLLoad:
		s.a0 = in.slot // vs[id] = vs[slot]
	case xLStore:
		s.id = in.slot // vs[slot] = vs[a0] & mask
	case xCallPayload, xCallSetPayload:
	case xGLoadAP, xGStoreAP:
		s.gi = in.gidx
		s.aux = uint64(p.gmeta[in.gidx].len - 1)
		s.k = int32(ctrIdx(p, in.gidx, bi, counting))
	default:
		return vstep{}, false
	}
	return s, true
}

// fuseChain fuses a maximal run of >= 3 chain-fusable instructions into
// a single closure. Each step replays the exact semantics of its
// plainOp/aluOp closure (including counter bumps at their original
// positions), so the chain is observably identical to dispatching the
// run one closure at a time.
func fuseChain(p *program, body []cInstr, i, bi int, counting bool) (cOp, int) {
	var steps []vstep
	for j := i; j < len(body); j++ {
		s, ok := chainStep(p, &body[j], bi, counting)
		if !ok {
			break
		}
		steps = append(steps, s)
	}
	if len(steps) < 3 {
		return nil, 0
	}
	adv := len(steps) // source instructions consumed, pre-peephole
	ss := peepholeSteps(p, steps)
	return func(m *Machine, vs []uint64) {
		execSteps(m, vs, ss)
	}, adv
}

// execSteps replays a chain, each step with the exact semantics of its
// standalone plainOp/aluOp closure.
func execSteps(m *Machine, vs []uint64, ss []vstep) {
	for k := range ss {
		s := &ss[k]
		switch s.op {
		case xAdd:
			vs[s.id] = (vs[s.a0] + vs[s.a1]) & s.mask
		case xSub:
			vs[s.id] = (vs[s.a0] - vs[s.a1]) & s.mask
		case xMul:
			vs[s.id] = (vs[s.a0] * vs[s.a1]) & s.mask
		case xUDiv:
			if d := vs[s.a1]; d == 0 {
				vs[s.id] = s.mask // all-ones, like NIC firmware
			} else {
				vs[s.id] = (vs[s.a0] / d) & s.mask
			}
		case xURem:
			if d := vs[s.a1]; d == 0 {
				vs[s.id] = 0
			} else {
				vs[s.id] = (vs[s.a0] % d) & s.mask
			}
		case xAnd:
			vs[s.id] = vs[s.a0] & vs[s.a1] & s.mask
		case xOr:
			vs[s.id] = (vs[s.a0] | vs[s.a1]) & s.mask
		case xXor:
			vs[s.id] = (vs[s.a0] ^ vs[s.a1]) & s.mask
		case xShl:
			sh := vs[s.a1] & 63
			vs[s.id] = (vs[s.a0] << sh) & s.mask
		case xLShr:
			sh := vs[s.a1] & 63
			vs[s.id] = (vs[s.a0] >> sh) & s.mask
		case xNot:
			vs[s.id] = ^vs[s.a0] & s.mask
		case xMask:
			vs[s.id] = vs[s.a0] & s.mask
		case xICmp:
			var b bool
			switch s.pred {
			case ir.PredEQ:
				b = vs[s.a0] == vs[s.a1]
			case ir.PredNE:
				b = vs[s.a0] != vs[s.a1]
			case ir.PredULT:
				b = vs[s.a0] < vs[s.a1]
			case ir.PredULE:
				b = vs[s.a0] <= vs[s.a1]
			case ir.PredUGT:
				b = vs[s.a0] > vs[s.a1]
			case ir.PredUGE:
				b = vs[s.a0] >= vs[s.a1]
			}
			vs[s.id] = b2u(b)
		case xLLoad:
			vs[s.id] = vs[s.a0]
		case xLStore:
			vs[s.id] = vs[s.a0] & s.mask
		case xCallPayload:
			if i := vs[s.a0]; i < uint64(len(m.pkt.Payload)) {
				vs[s.id] = uint64(m.pkt.Payload[i])
			} else {
				vs[s.id] = 0
			}
		case xCallSetPayload:
			if i := vs[s.a0]; i < uint64(len(m.pkt.Payload)) {
				m.pkt.Payload[i] = byte(vs[s.a1])
			}
		case xCallHash32:
			vs[s.id] = uint64(Hash32(vs[s.a0]))
		case xGLoadAP:
			vs[s.id] = m.gl[s.gi].array[vs[s.a0]&s.aux]
			if s.k >= 0 {
				m.ctr.State[s.k]++
			}
		case xGStoreAP:
			m.gl[s.gi].array[vs[s.a1]&s.aux] = vs[s.a0] & s.mask
			if s.k >= 0 {
				m.ctr.State[s.k]++
			}
		case vAddC:
			vs[s.id] = (vs[s.a0] + s.aux) & s.mask
		case vSubC:
			vs[s.id] = (vs[s.a0] - s.aux) & s.mask
		case vMulC:
			vs[s.id] = (vs[s.a0] * s.aux) & s.mask
		case vAndC:
			vs[s.id] = vs[s.a0] & s.aux // aux already folds the width mask
		case vOrC:
			vs[s.id] = (vs[s.a0] | s.aux) & s.mask
		case vXorC:
			vs[s.id] = (vs[s.a0] ^ s.aux) & s.mask
		case vShlC:
			vs[s.id] = (vs[s.a0] << s.aux) & s.mask
		case vLShrC:
			vs[s.id] = (vs[s.a0] >> s.aux) & s.mask
		case vICmpC:
			var b bool
			switch s.pred {
			case ir.PredEQ:
				b = vs[s.a0] == s.aux
			case ir.PredNE:
				b = vs[s.a0] != s.aux
			case ir.PredULT:
				b = vs[s.a0] < s.aux
			case ir.PredULE:
				b = vs[s.a0] <= s.aux
			case ir.PredUGT:
				b = vs[s.a0] > s.aux
			case ir.PredUGE:
				b = vs[s.a0] >= s.aux
			}
			vs[s.id] = b2u(b)
		case vAddS:
			r := (vs[s.a0] + vs[s.a1]) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vSubS:
			r := (vs[s.a0] - vs[s.a1]) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vMulS:
			r := (vs[s.a0] * vs[s.a1]) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vAndS:
			r := vs[s.a0] & vs[s.a1] & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vOrS:
			r := (vs[s.a0] | vs[s.a1]) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vXorS:
			r := (vs[s.a0] ^ vs[s.a1]) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vShlS:
			r := (vs[s.a0] << (vs[s.a1] & 63)) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vLShrS:
			r := (vs[s.a0] >> (vs[s.a1] & 63)) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vMaskS:
			r := vs[s.a0] & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vAddCS:
			r := (vs[s.a0] + s.aux) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vSubCS:
			r := (vs[s.a0] - s.aux) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vMulCS:
			r := (vs[s.a0] * s.aux) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vAndCS:
			r := vs[s.a0] & s.aux
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vOrCS:
			r := (vs[s.a0] | s.aux) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vXorCS:
			r := (vs[s.a0] ^ s.aux) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vShlCS:
			r := (vs[s.a0] << s.aux) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		case vLShrCS:
			r := (vs[s.a0] >> s.aux) & s.mask
			vs[s.id] = r
			vs[s.gi] = r & s.sm
		}
	}
}

// chainRunAll builds a whole-block closure — body chain plus terminator
// in one indirect call — when every body instruction is chain-fusable
// and the terminator is a plain branch shape. The hottest profiling
// blocks are tiny loop bodies (one or two ALU ops and a compare-branch),
// where the second dispatch for the terminator was most of the cost.
func chainRunAll(p *program, body []cInstr, tm *cInstr, bi int, counting bool) cTerm {
	switch tm.op {
	case xRet, xBr, xCondBr, xCmpBr:
	default:
		return nil
	}
	ss, ok := chainSteps(p, body, bi, counting)
	if !ok {
		return nil
	}
	kind, pred := tm.op, tm.pred
	ta0, ta1, tid, tt, tf := tm.a0, tm.a1, tm.id, tm.t, tm.f
	return func(m *Machine, vs []uint64) int32 {
		execSteps(m, vs, ss)
		switch kind {
		case xRet:
			return retSignal
		case xBr:
			return tt
		case xCondBr:
			if vs[ta0] != 0 {
				return tt
			}
			return tf
		default: // xCmpBr: store the compare result, then branch on it
			var b bool
			switch pred {
			case ir.PredEQ:
				b = vs[ta0] == vs[ta1]
			case ir.PredNE:
				b = vs[ta0] != vs[ta1]
			case ir.PredULT:
				b = vs[ta0] < vs[ta1]
			case ir.PredULE:
				b = vs[ta0] <= vs[ta1]
			case ir.PredUGT:
				b = vs[ta0] > vs[ta1]
			case ir.PredUGE:
				b = vs[ta0] >= vs[ta1]
			}
			if b {
				vs[tid] = 1
				return tt
			}
			vs[tid] = 0
			return tf
		}
	}
}

// fuseOps tries to start a superinstruction at body[i], returning its
// closure and how many instructions it consumed (nil = no fusion).
// Chains are tried first (they subsume most catalog shapes over longer
// runs), then triples before pairs.
func fuseOps(p *program, body []cInstr, i, bi int, counting bool) (cOp, int) {
	if op, adv := fuseChain(p, body, i, bi, counting); op != nil {
		return op, adv
	}
	if i+3 < len(body) {
		a, b, c, d := &body[i], &body[i+1], &body[i+2], &body[i+3]
		if a.op == xLLoad && b.op == xLLoad && d.op == xLStore {
			if op := fuse4LoadLoadALUStore(a, b, c, d); op != nil {
				return op, 4
			}
		}
	}
	if i+2 < len(body) {
		a, b, c := &body[i], &body[i+1], &body[i+2]
		switch {
		case a.op == xLLoad && b.op == xLLoad:
			if op := fuse3LoadLoadALU(a, b, c); op != nil {
				return op, 3
			}
		case a.op == xLLoad && c.op == xLStore:
			if op := fuse3LoadALUStore(a, b, c); op != nil {
				return op, 3
			}
		case a.op == xGLoadAP && c.op == xGStoreAP:
			if op := fuse3Bump(p, a, b, c, bi, counting); op != nil {
				return op, 3
			}
		case a.op == xCallPayload && c.op == xLStore:
			if op := fuse3PayloadALUStore(a, b, c); op != nil {
				return op, 3
			}
		default:
			if op := fuse3ALU(a, b, c); op != nil {
				return op, 3
			}
		}
	}
	if i+1 < len(body) {
		a, b := &body[i], &body[i+1]
		switch a.op {
		case xLLoad:
			if b.op == xLLoad {
				id1, s1, id2, s2 := a.id, a.slot, b.id, b.slot
				return func(m *Machine, vs []uint64) {
					vs[id1] = vs[s1]
					vs[id2] = vs[s2]
				}, 2
			}
			if op := fuseLLoadALU(a, b); op != nil {
				return op, 2
			}
		case xCallPayload:
			if op := fusePayloadALU(a, b); op != nil {
				return op, 2
			}
		case xCallHash32:
			if op := fuseHashALU(a, b); op != nil {
				return op, 2
			}
		case xGLoadAP:
			if op := fuseGLoadAPALU(p, a, b, bi, counting); op != nil {
				return op, 2
			}
		case xAdd, xSub, xMul, xAnd, xOr, xXor, xShl, xLShr, xMask, xURem:
			if op := fuseALUALU(a, b); op != nil {
				return op, 2
			}
		}
		if b.op == xLStore {
			if op := fuseALULStore(a, b); op != nil {
				return op, 2
			}
		}
	}
	return nil, 0
}

// fuse4LoadLoadALUStore fuses the full -O0 lowering of the canonical
// binary statement `x = a ⊕ b`: stage both operands, compute, store.
// As everywhere in this catalog the body write-throughs every
// intermediate cell, so the shape is legal on opcodes alone.
func fuse4LoadLoadALUStore(l1, l2, al, st *cInstr) cOp {
	id1, s1, id2, s2 := l1.id, l1.slot, l2.id, l2.slot
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	sa0, ss, smask := st.a0, st.slot, st.mask
	switch al.op {
	case xAdd:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] + vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xSub:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] - vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xMul:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] * vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = vs[a0] & vs[a1] & mask
			vs[ss] = vs[sa0] & smask
		}
	case xOr:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] | vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] ^ vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xShl:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			sh := vs[a1] & 63
			vs[id] = (vs[a0] << sh) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xLShr:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			sh := vs[a1] & 63
			vs[id] = (vs[a0] >> sh) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xURem:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			if d := vs[a1]; d == 0 {
				vs[id] = 0
			} else {
				vs[id] = (vs[a0] % d) & mask
			}
			vs[ss] = vs[sa0] & smask
		}
	case xMask:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = vs[a0] & mask
			vs[ss] = vs[sa0] & smask
		}
	}
	return nil
}

// fuse3LoadLoadALU fuses the operand staging of a binary expression:
// two local loads followed by the compute op.
func fuse3LoadLoadALU(l1, l2, al *cInstr) cOp {
	id1, s1, id2, s2 := l1.id, l1.slot, l2.id, l2.slot
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	switch al.op {
	case xAdd:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] + vs[a1]) & mask
		}
	case xSub:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] - vs[a1]) & mask
		}
	case xMul:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] * vs[a1]) & mask
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = vs[a0] & vs[a1] & mask
		}
	case xOr:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] | vs[a1]) & mask
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = (vs[a0] ^ vs[a1]) & mask
		}
	case xShl:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			sh := vs[a1] & 63
			vs[id] = (vs[a0] << sh) & mask
		}
	case xLShr:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			sh := vs[a1] & 63
			vs[id] = (vs[a0] >> sh) & mask
		}
	case xURem:
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			if d := vs[a1]; d == 0 {
				vs[id] = 0
			} else {
				vs[id] = (vs[a0] % d) & mask
			}
		}
	case xICmp:
		pred := al.pred
		return func(m *Machine, vs []uint64) {
			vs[id1] = vs[s1]
			vs[id2] = vs[s2]
			vs[id] = b2u(cmpPred(pred, vs[a0], vs[a1]))
		}
	}
	return nil
}

// fuse3LoadALUStore fuses "local load; ALU; local store" — the full
// lowering of an `x ⊕= e` statement.
func fuse3LoadALUStore(ld, al, st *cInstr) cOp {
	lid, ls := ld.id, ld.slot
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	sa0, ss, smask := st.a0, st.slot, st.mask
	switch al.op {
	case xAdd:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] + vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xSub:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] - vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xMul:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] * vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = vs[a0] & vs[a1] & mask
			vs[ss] = vs[sa0] & smask
		}
	case xOr:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] | vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] ^ vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xShl:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			sh := vs[a1] & 63
			vs[id] = (vs[a0] << sh) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xLShr:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			sh := vs[a1] & 63
			vs[id] = (vs[a0] >> sh) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xMask:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = vs[a0] & mask
			vs[ss] = vs[sa0] & smask
		}
	}
	return nil
}

// fuse3Bump fuses "pow2 array load; ALU; pow2 array store" — the
// counter/sketch bump `a[i] ⊕= e`.
func fuse3Bump(p *program, ld, al, st *cInstr, bi int, counting bool) cOp {
	lid, la0, lgi := ld.id, ld.a0, ld.gidx
	lamask := uint64(p.gmeta[lgi].len - 1)
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	sa0, sa1, sgi, smask := st.a0, st.a1, st.gidx, st.mask
	samask := uint64(p.gmeta[sgi].len - 1)
	k1 := ctrIdx(p, lgi, bi, counting)
	k2 := ctrIdx(p, sgi, bi, counting)
	switch al.op {
	case xAdd:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = (vs[a0] + vs[a1]) & mask
			m.gl[sgi].array[vs[sa1]&samask] = vs[sa0] & smask
			if k1 >= 0 {
				m.ctr.State[k1]++
				m.ctr.State[k2]++
			}
		}
	case xSub:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = (vs[a0] - vs[a1]) & mask
			m.gl[sgi].array[vs[sa1]&samask] = vs[sa0] & smask
			if k1 >= 0 {
				m.ctr.State[k1]++
				m.ctr.State[k2]++
			}
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = vs[a0] & vs[a1] & mask
			m.gl[sgi].array[vs[sa1]&samask] = vs[sa0] & smask
			if k1 >= 0 {
				m.ctr.State[k1]++
				m.ctr.State[k2]++
			}
		}
	case xOr:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = (vs[a0] | vs[a1]) & mask
			m.gl[sgi].array[vs[sa1]&samask] = vs[sa0] & smask
			if k1 >= 0 {
				m.ctr.State[k1]++
				m.ctr.State[k2]++
			}
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = (vs[a0] ^ vs[a1]) & mask
			m.gl[sgi].array[vs[sa1]&samask] = vs[sa0] & smask
			if k1 >= 0 {
				m.ctr.State[k1]++
				m.ctr.State[k2]++
			}
		}
	}
	return nil
}

// fuse3PayloadALUStore fuses "payload byte; ALU; local store" — the
// lowering of `x = f(pkt_payload(i))`.
func fuse3PayloadALUStore(pl, al, st *cInstr) cOp {
	pid, pa0 := pl.id, pl.a0
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	sa0, ss, smask := st.a0, st.slot, st.mask
	switch al.op {
	case xMask:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = vs[a0] & mask
			vs[ss] = vs[sa0] & smask
		}
	case xAdd:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = (vs[a0] + vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = (vs[a0] ^ vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = vs[a0] & vs[a1] & mask
			vs[ss] = vs[sa0] & smask
		}
	}
	return nil
}

// fuseLLoadALU fuses a local load with the compute op that follows it.
func fuseLLoadALU(ld, al *cInstr) cOp {
	lid, ls := ld.id, ld.slot
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	switch al.op {
	case xAdd:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] + vs[a1]) & mask
		}
	case xSub:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] - vs[a1]) & mask
		}
	case xMul:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] * vs[a1]) & mask
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = vs[a0] & vs[a1] & mask
		}
	case xOr:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] | vs[a1]) & mask
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = (vs[a0] ^ vs[a1]) & mask
		}
	case xShl:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			sh := vs[a1] & 63
			vs[id] = (vs[a0] << sh) & mask
		}
	case xLShr:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			sh := vs[a1] & 63
			vs[id] = (vs[a0] >> sh) & mask
		}
	case xURem:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			if d := vs[a1]; d == 0 {
				vs[id] = 0
			} else {
				vs[id] = (vs[a0] % d) & mask
			}
		}
	case xMask:
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = vs[a0] & mask
		}
	case xICmp:
		pred := al.pred
		return func(m *Machine, vs []uint64) {
			vs[lid] = vs[ls]
			vs[id] = b2u(cmpPred(pred, vs[a0], vs[a1]))
		}
	}
	return nil
}

// fuseALULStore fuses a compute op with the local store that follows it.
func fuseALULStore(al, st *cInstr) cOp {
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	sa0, ss, smask := st.a0, st.slot, st.mask
	switch al.op {
	case xAdd:
		return func(m *Machine, vs []uint64) {
			vs[id] = (vs[a0] + vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xSub:
		return func(m *Machine, vs []uint64) {
			vs[id] = (vs[a0] - vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xMul:
		return func(m *Machine, vs []uint64) {
			vs[id] = (vs[a0] * vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			vs[id] = vs[a0] & vs[a1] & mask
			vs[ss] = vs[sa0] & smask
		}
	case xOr:
		return func(m *Machine, vs []uint64) {
			vs[id] = (vs[a0] | vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			vs[id] = (vs[a0] ^ vs[a1]) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xShl:
		return func(m *Machine, vs []uint64) {
			sh := vs[a1] & 63
			vs[id] = (vs[a0] << sh) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xLShr:
		return func(m *Machine, vs []uint64) {
			sh := vs[a1] & 63
			vs[id] = (vs[a0] >> sh) & mask
			vs[ss] = vs[sa0] & smask
		}
	case xURem:
		return func(m *Machine, vs []uint64) {
			if d := vs[a1]; d == 0 {
				vs[id] = 0
			} else {
				vs[id] = (vs[a0] % d) & mask
			}
			vs[ss] = vs[sa0] & smask
		}
	case xMask:
		return func(m *Machine, vs []uint64) {
			vs[id] = vs[a0] & mask
			vs[ss] = vs[sa0] & smask
		}
	}
	return nil
}

// fusePayloadALU fuses a per-byte payload read with the compute op that
// follows it (cipher/sketch inner loops).
func fusePayloadALU(pl, al *cInstr) cOp {
	pid, pa0 := pl.id, pl.a0
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	switch al.op {
	case xAdd:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = (vs[a0] + vs[a1]) & mask
		}
	case xSub:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = (vs[a0] - vs[a1]) & mask
		}
	case xMul:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = (vs[a0] * vs[a1]) & mask
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = vs[a0] & vs[a1] & mask
		}
	case xOr:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = (vs[a0] | vs[a1]) & mask
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = (vs[a0] ^ vs[a1]) & mask
		}
	case xMask:
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = vs[a0] & mask
		}
	case xICmp:
		pred := al.pred
		return func(m *Machine, vs []uint64) {
			if i := vs[pa0]; i < uint64(len(m.pkt.Payload)) {
				vs[pid] = uint64(m.pkt.Payload[i])
			} else {
				vs[pid] = 0
			}
			vs[id] = b2u(cmpPred(pred, vs[a0], vs[a1]))
		}
	}
	return nil
}

// fuseHashALU fuses the hash32 mix with the table-index reduction that
// follows it (hash+probe).
func fuseHashALU(h, al *cInstr) cOp {
	hid, ha0 := h.id, h.a0
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	switch al.op {
	case xAdd:
		return func(m *Machine, vs []uint64) {
			vs[hid] = uint64(Hash32(vs[ha0]))
			vs[id] = (vs[a0] + vs[a1]) & mask
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			vs[hid] = uint64(Hash32(vs[ha0]))
			vs[id] = (vs[a0] ^ vs[a1]) & mask
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			vs[hid] = uint64(Hash32(vs[ha0]))
			vs[id] = vs[a0] & vs[a1] & mask
		}
	case xURem:
		return func(m *Machine, vs []uint64) {
			vs[hid] = uint64(Hash32(vs[ha0]))
			if d := vs[a1]; d == 0 {
				vs[id] = 0
			} else {
				vs[id] = (vs[a0] % d) & mask
			}
		}
	case xMask:
		return func(m *Machine, vs []uint64) {
			vs[hid] = uint64(Hash32(vs[ha0]))
			vs[id] = vs[a0] & mask
		}
	}
	return nil
}

// fuseGLoadAPALU fuses a pow2 array load with the compute op that
// follows it.
func fuseGLoadAPALU(p *program, ld, al *cInstr, bi int, counting bool) cOp {
	lid, la0, lgi := ld.id, ld.a0, ld.gidx
	lamask := uint64(p.gmeta[lgi].len - 1)
	id, a0, a1, mask := al.id, al.a0, al.a1, al.mask
	k := ctrIdx(p, lgi, bi, counting)
	switch al.op {
	case xAdd:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = (vs[a0] + vs[a1]) & mask
			if k >= 0 {
				m.ctr.State[k]++
			}
		}
	case xSub:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = (vs[a0] - vs[a1]) & mask
			if k >= 0 {
				m.ctr.State[k]++
			}
		}
	case xAnd:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = vs[a0] & vs[a1] & mask
			if k >= 0 {
				m.ctr.State[k]++
			}
		}
	case xOr:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = (vs[a0] | vs[a1]) & mask
			if k >= 0 {
				m.ctr.State[k]++
			}
		}
	case xXor:
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = (vs[a0] ^ vs[a1]) & mask
			if k >= 0 {
				m.ctr.State[k]++
			}
		}
	case xICmp:
		pred := al.pred
		return func(m *Machine, vs []uint64) {
			vs[lid] = m.gl[lgi].array[vs[la0]&lamask]
			vs[id] = b2u(cmpPred(pred, vs[a0], vs[a1]))
			if k >= 0 {
				m.ctr.State[k]++
			}
		}
	}
	return nil
}

// fuseALUALU fuses two adjacent compute ops. After load elision
// (lvnBlock) straight-line statement bodies are mostly pure ALU chains,
// so this is the workhorse pair; the combo set covers the mixes NF
// compute kernels actually emit (polynomial hashes, shift-xor mixing,
// index masking, modulo table probes).
func fuseALUALU(a, b *cInstr) cOp {
	id1, x0, x1, m1 := a.id, a.a0, a.a1, a.mask
	id2, y0, y1, m2 := b.id, b.a0, b.a1, b.mask
	switch a.op {
	case xMul:
		switch b.op {
		case xAdd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] * vs[x1]) & m1
				vs[id2] = (vs[y0] + vs[y1]) & m2
			}
		case xSub:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] * vs[x1]) & m1
				vs[id2] = (vs[y0] - vs[y1]) & m2
			}
		case xXor:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] * vs[x1]) & m1
				vs[id2] = (vs[y0] ^ vs[y1]) & m2
			}
		}
	case xAdd:
		switch b.op {
		case xAdd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] + vs[x1]) & m1
				vs[id2] = (vs[y0] + vs[y1]) & m2
			}
		case xMul:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] + vs[x1]) & m1
				vs[id2] = (vs[y0] * vs[y1]) & m2
			}
		case xXor:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] + vs[x1]) & m1
				vs[id2] = (vs[y0] ^ vs[y1]) & m2
			}
		case xAnd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] + vs[x1]) & m1
				vs[id2] = vs[y0] & vs[y1] & m2
			}
		case xMask:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] + vs[x1]) & m1
				vs[id2] = vs[y0] & m2
			}
		case xLShr:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] + vs[x1]) & m1
				sh := vs[y1] & 63
				vs[id2] = (vs[y0] >> sh) & m2
			}
		case xURem:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] + vs[x1]) & m1
				if d := vs[y1]; d == 0 {
					vs[id2] = 0
				} else {
					vs[id2] = (vs[y0] % d) & m2
				}
			}
		case xICmp:
			pred := b.pred
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] + vs[x1]) & m1
				vs[id2] = b2u(cmpPred(pred, vs[y0], vs[y1]))
			}
		}
	case xSub:
		switch b.op {
		case xAdd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] - vs[x1]) & m1
				vs[id2] = (vs[y0] + vs[y1]) & m2
			}
		case xAnd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] - vs[x1]) & m1
				vs[id2] = vs[y0] & vs[y1] & m2
			}
		case xMask:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] - vs[x1]) & m1
				vs[id2] = vs[y0] & m2
			}
		}
	case xXor:
		switch b.op {
		case xAdd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] ^ vs[x1]) & m1
				vs[id2] = (vs[y0] + vs[y1]) & m2
			}
		case xMul:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] ^ vs[x1]) & m1
				vs[id2] = (vs[y0] * vs[y1]) & m2
			}
		case xXor:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] ^ vs[x1]) & m1
				vs[id2] = (vs[y0] ^ vs[y1]) & m2
			}
		case xAnd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] ^ vs[x1]) & m1
				vs[id2] = vs[y0] & vs[y1] & m2
			}
		case xMask:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] ^ vs[x1]) & m1
				vs[id2] = vs[y0] & m2
			}
		case xLShr:
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] ^ vs[x1]) & m1
				sh := vs[y1] & 63
				vs[id2] = (vs[y0] >> sh) & m2
			}
		case xICmp:
			pred := b.pred
			return func(m *Machine, vs []uint64) {
				vs[id1] = (vs[x0] ^ vs[x1]) & m1
				vs[id2] = b2u(cmpPred(pred, vs[y0], vs[y1]))
			}
		}
	case xLShr:
		switch b.op {
		case xXor:
			return func(m *Machine, vs []uint64) {
				sh := vs[x1] & 63
				vs[id1] = (vs[x0] >> sh) & m1
				vs[id2] = (vs[y0] ^ vs[y1]) & m2
			}
		case xAnd:
			return func(m *Machine, vs []uint64) {
				sh := vs[x1] & 63
				vs[id1] = (vs[x0] >> sh) & m1
				vs[id2] = vs[y0] & vs[y1] & m2
			}
		case xAdd:
			return func(m *Machine, vs []uint64) {
				sh := vs[x1] & 63
				vs[id1] = (vs[x0] >> sh) & m1
				vs[id2] = (vs[y0] + vs[y1]) & m2
			}
		case xMask:
			return func(m *Machine, vs []uint64) {
				sh := vs[x1] & 63
				vs[id1] = (vs[x0] >> sh) & m1
				vs[id2] = vs[y0] & m2
			}
		}
	case xShl:
		switch b.op {
		case xOr:
			return func(m *Machine, vs []uint64) {
				sh := vs[x1] & 63
				vs[id1] = (vs[x0] << sh) & m1
				vs[id2] = (vs[y0] | vs[y1]) & m2
			}
		case xXor:
			return func(m *Machine, vs []uint64) {
				sh := vs[x1] & 63
				vs[id1] = (vs[x0] << sh) & m1
				vs[id2] = (vs[y0] ^ vs[y1]) & m2
			}
		case xAdd:
			return func(m *Machine, vs []uint64) {
				sh := vs[x1] & 63
				vs[id1] = (vs[x0] << sh) & m1
				vs[id2] = (vs[y0] + vs[y1]) & m2
			}
		}
	case xAnd:
		switch b.op {
		case xAdd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = vs[x0] & vs[x1] & m1
				vs[id2] = (vs[y0] + vs[y1]) & m2
			}
		case xXor:
			return func(m *Machine, vs []uint64) {
				vs[id1] = vs[x0] & vs[x1] & m1
				vs[id2] = (vs[y0] ^ vs[y1]) & m2
			}
		case xAnd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = vs[x0] & vs[x1] & m1
				vs[id2] = vs[y0] & vs[y1] & m2
			}
		case xICmp:
			pred := b.pred
			return func(m *Machine, vs []uint64) {
				vs[id1] = vs[x0] & vs[x1] & m1
				vs[id2] = b2u(cmpPred(pred, vs[y0], vs[y1]))
			}
		}
	case xMask:
		switch b.op {
		case xAdd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = vs[x0] & m1
				vs[id2] = (vs[y0] + vs[y1]) & m2
			}
		case xAnd:
			return func(m *Machine, vs []uint64) {
				vs[id1] = vs[x0] & m1
				vs[id2] = vs[y0] & vs[y1] & m2
			}
		case xMask:
			return func(m *Machine, vs []uint64) {
				vs[id1] = vs[x0] & m1
				vs[id2] = vs[y0] & m2
			}
		case xICmp:
			pred := b.pred
			return func(m *Machine, vs []uint64) {
				vs[id1] = vs[x0] & m1
				vs[id2] = b2u(cmpPred(pred, vs[y0], vs[y1]))
			}
		}
	case xURem:
		switch b.op {
		case xAdd:
			return func(m *Machine, vs []uint64) {
				if d := vs[x1]; d == 0 {
					vs[id1] = 0
				} else {
					vs[id1] = (vs[x0] % d) & m1
				}
				vs[id2] = (vs[y0] + vs[y1]) & m2
			}
		case xMask:
			return func(m *Machine, vs []uint64) {
				if d := vs[x1]; d == 0 {
					vs[id1] = 0
				} else {
					vs[id1] = (vs[x0] % d) & m1
				}
				vs[id2] = vs[y0] & m2
			}
		}
	}
	return nil
}

// fuse3ALU fuses three adjacent compute ops. The combos are the
// statement-level chains NF kernels emit most: a polynomial-hash step
// (mul,add,shift), xorshift mixing, and double-masked index arithmetic.
// Longer chains decay gracefully into a triple plus pairs.
func fuse3ALU(a, b, c *cInstr) cOp {
	id1, x0, x1, m1 := a.id, a.a0, a.a1, a.mask
	id2, y0, y1, m2 := b.id, b.a0, b.a1, b.mask
	id3, z0, z1, m3 := c.id, c.a0, c.a1, c.mask
	switch {
	case a.op == xMul && b.op == xAdd && c.op == xLShr:
		return func(m *Machine, vs []uint64) {
			vs[id1] = (vs[x0] * vs[x1]) & m1
			vs[id2] = (vs[y0] + vs[y1]) & m2
			sh := vs[z1] & 63
			vs[id3] = (vs[z0] >> sh) & m3
		}
	case a.op == xMul && b.op == xAdd && c.op == xXor:
		return func(m *Machine, vs []uint64) {
			vs[id1] = (vs[x0] * vs[x1]) & m1
			vs[id2] = (vs[y0] + vs[y1]) & m2
			vs[id3] = (vs[z0] ^ vs[z1]) & m3
		}
	case a.op == xMul && b.op == xAdd && c.op == xAnd:
		return func(m *Machine, vs []uint64) {
			vs[id1] = (vs[x0] * vs[x1]) & m1
			vs[id2] = (vs[y0] + vs[y1]) & m2
			vs[id3] = vs[z0] & vs[z1] & m3
		}
	case a.op == xAdd && b.op == xAnd && c.op == xAnd:
		return func(m *Machine, vs []uint64) {
			vs[id1] = (vs[x0] + vs[x1]) & m1
			vs[id2] = vs[y0] & vs[y1] & m2
			vs[id3] = vs[z0] & vs[z1] & m3
		}
	case a.op == xAdd && b.op == xAnd && c.op == xXor:
		return func(m *Machine, vs []uint64) {
			vs[id1] = (vs[x0] + vs[x1]) & m1
			vs[id2] = vs[y0] & vs[y1] & m2
			vs[id3] = (vs[z0] ^ vs[z1]) & m3
		}
	case a.op == xXor && b.op == xLShr && c.op == xXor:
		return func(m *Machine, vs []uint64) {
			vs[id1] = (vs[x0] ^ vs[x1]) & m1
			sh := vs[y1] & 63
			vs[id2] = (vs[y0] >> sh) & m2
			vs[id3] = (vs[z0] ^ vs[z1]) & m3
		}
	case a.op == xLShr && b.op == xXor && c.op == xMul:
		return func(m *Machine, vs []uint64) {
			sh := vs[x1] & 63
			vs[id1] = (vs[x0] >> sh) & m1
			vs[id2] = (vs[y0] ^ vs[y1]) & m2
			vs[id3] = (vs[z0] * vs[z1]) & m3
		}
	case a.op == xLShr && b.op == xXor && c.op == xAdd:
		return func(m *Machine, vs []uint64) {
			sh := vs[x1] & 63
			vs[id1] = (vs[x0] >> sh) & m1
			vs[id2] = (vs[y0] ^ vs[y1]) & m2
			vs[id3] = (vs[z0] + vs[z1]) & m3
		}
	case a.op == xShl && b.op == xOr && c.op == xAnd:
		return func(m *Machine, vs []uint64) {
			sh := vs[x1] & 63
			vs[id1] = (vs[x0] << sh) & m1
			vs[id2] = (vs[y0] | vs[y1]) & m2
			vs[id3] = vs[z0] & vs[z1] & m3
		}
	case a.op == xXor && b.op == xAnd && c.op == xAdd:
		return func(m *Machine, vs []uint64) {
			vs[id1] = (vs[x0] ^ vs[x1]) & m1
			vs[id2] = vs[y0] & vs[y1] & m2
			vs[id3] = (vs[z0] + vs[z1]) & m3
		}
	}
	return nil
}

// chainSteps compiles a whole instruction sequence into peephole-reduced
// chain steps, or reports that some instruction is not chain-fusable.
func chainSteps(p *program, body []cInstr, bi int, counting bool) ([]vstep, bool) {
	ss := make([]vstep, 0, len(body))
	for j := range body {
		s, ok := chainStep(p, &body[j], bi, counting)
		if !ok {
			return nil, false
		}
		ss = append(ss, s)
	}
	return peepholeSteps(p, ss), true
}

// regBlock is one block of a fused loop region: its body as chain
// steps, the accounting identity (global block index and source size),
// and its terminator with branch targets resolved to region indices —
// or, for targets outside the region, to the bitwise complement of the
// global block index (always negative, so the dispatcher distinguishes
// the two without a flag).
type regBlock struct {
	ss   []vstep
	bi   int32
	size int
	kind xop // xBr, xCondBr, or xCmpBr
	pred ir.Pred
	ta0  int32
	ta1  int32
	tid  int32
	t    int32
	f    int32
}

// maxRegion bounds how many blocks a fused region may span. Profiling
// loop nests (outer byte loop, inner bit loop, a conditional diamond in
// the body) fit comfortably; the bound keeps pathological CFGs from
// compiling whole functions into one closure.
const maxRegion = 16

// attachCycles fuses loop regions (plain and counting flavors only).
// A block whose terminator is a conditional branch seeds a region: the
// set of blocks reachable from it — each fully chain-fusable with a
// Br/CondBr/CmpBr terminator — up to maxRegion, with every escaping
// edge kept as an exit. The region compiles to one closure running a
// local dispatch loop with the per-block accounting — block counter,
// then fuel gate, then Steps — inlined in exactly the trampoline's
// order, so counters, fuel aborts, and Steps stay bit-identical to the
// reference loop. Regions are attached only when some member branches
// back to the seed (a real loop): the dominant profiling shapes are
// RC4/CRC-style nests that otherwise pay a trampoline pass plus an
// indirect call per block, hundreds of times per packet.
func attachCycles(p *program, t *threaded, fl tFlavor, cross map[int32]bool) {
	counting := fl == fCounting
	for bi := range t.blocks {
		t.blocks[bi].cycle = buildRegion(p, bi, fl, cross, counting)
	}
}

// lowerRegionBlock returns block bi's body as chain steps plus its
// terminator, or ok=false when the block cannot live inside a region.
func lowerRegionBlock(p *program, bi int, fl tFlavor, cross map[int32]bool, counting bool) ([]vstep, cInstr, bool) {
	instrs := lowerBlock(p, bi, fl, cross)
	tm := instrs[len(instrs)-1]
	switch tm.op {
	case xBr, xCondBr, xCmpBr:
	default:
		return nil, cInstr{}, false
	}
	ss, ok := chainSteps(p, instrs[:len(instrs)-1], bi, counting)
	if !ok {
		return nil, cInstr{}, false
	}
	return ss, tm, true
}

func buildRegion(p *program, hbi int, fl tFlavor, cross map[int32]bool, counting bool) cLoop {
	hss, htm, ok := lowerRegionBlock(p, hbi, fl, cross, counting)
	if !ok || htm.op == xBr {
		return nil // a loop seed is a conditional branch (the loop test)
	}
	// Phase 1: collect members breadth-first. Blocks that fail
	// lowerRegionBlock stay outside and become exit targets.
	type member struct {
		ss []vstep
		tm cInstr
	}
	idx := map[int32]int32{int32(hbi): 0}
	mems := []member{{ss: hss, tm: htm}}
	order := []int32{int32(hbi)}
	rejected := map[int32]bool{}
	queue := []int32{htm.t, htm.f}
	for len(queue) > 0 && len(mems) < maxRegion {
		b := queue[0]
		queue = queue[1:]
		if _, ok := idx[b]; ok || rejected[b] {
			continue
		}
		ss, tm, ok := lowerRegionBlock(p, int(b), fl, cross, counting)
		if !ok {
			rejected[b] = true
			continue
		}
		idx[b] = int32(len(mems))
		mems = append(mems, member{ss: ss, tm: tm})
		order = append(order, b)
		if tm.op == xBr {
			queue = append(queue, tm.t)
		} else {
			queue = append(queue, tm.t, tm.f)
		}
	}
	// Phase 2: resolve targets and require a back edge to the seed.
	region := make([]regBlock, len(mems))
	resolve := func(g int32) int32 {
		if ri, ok := idx[g]; ok {
			return ri
		}
		return ^g
	}
	back := false
	for i, mm := range mems {
		tm := mm.tm
		rb := regBlock{
			ss: mm.ss, bi: order[i], size: p.blocks[order[i]].size,
			kind: tm.op, pred: tm.pred, ta0: tm.a0, ta1: tm.a1, tid: tm.id,
			t: resolve(tm.t), f: resolve(tm.f),
		}
		if i > 0 && (rb.t == 0 || (tm.op != xBr && rb.f == 0)) {
			back = true
		}
		region[i] = rb
	}
	if !back {
		return nil
	}
	return regionClosure(region, counting)
}

// regionClosure builds the fused region runner. On entry the trampoline
// has already charged the seed block (counter, fuel, Steps), so the
// dispatch loop starts with its body; every region-internal transition
// replays the trampoline's accounting inline before entering the next
// block. In the counting flavor m.ctr is always non-nil (flavor
// selection guarantees it), so the counter bump needs no nil check.
func regionClosure(region []regBlock, counting bool) cLoop {
	return func(m *Machine, vs []uint64, fuel int, steps uint64) (int32, int, uint64) {
		// The block-counter slice is loaded once per region entry, not
		// per transition (the counting flavor guarantees m.ctr != nil).
		var blk []uint64
		if counting {
			blk = m.ctr.Block
		}
		ri := int32(0)
		for {
			rb := &region[ri]
			if len(rb.ss) > 0 {
				execSteps(m, vs, rb.ss)
			}
			var next int32
			switch rb.kind {
			case xBr:
				next = rb.t
			case xCondBr:
				if vs[rb.ta0] != 0 {
					next = rb.t
				} else {
					next = rb.f
				}
			default: // xCmpBr: store the compare result, then branch on it
				var b bool
				switch rb.pred {
				case ir.PredEQ:
					b = vs[rb.ta0] == vs[rb.ta1]
				case ir.PredNE:
					b = vs[rb.ta0] != vs[rb.ta1]
				case ir.PredULT:
					b = vs[rb.ta0] < vs[rb.ta1]
				case ir.PredULE:
					b = vs[rb.ta0] <= vs[rb.ta1]
				case ir.PredUGT:
					b = vs[rb.ta0] > vs[rb.ta1]
				case ir.PredUGE:
					b = vs[rb.ta0] >= vs[rb.ta1]
				}
				vs[rb.tid] = b2u(b)
				if b {
					next = rb.t
				} else {
					next = rb.f
				}
			}
			if next < 0 {
				return ^next, fuel, steps
			}
			nb := &region[next]
			if counting {
				blk[nb.bi]++
			}
			fuel -= nb.size
			if fuel < 0 {
				return fuelSignal, fuel, steps
			}
			steps += uint64(nb.size)
			ri = next
		}
	}
}
