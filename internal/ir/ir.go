// Package ir defines the typed, SSA-flavored intermediate representation
// that Clara analyzes. It plays the role LLVM IR plays in the paper: NF
// programs written in the NFC mini-language (internal/lang) are lowered to
// this IR "with most optimizations disabled" — in particular, function-local
// variables remain explicit stack-slot loads and stores (as LLVM -O0 would
// emit), so that the NIC compiler's register allocation is something a
// learned model has to infer, exactly as in the paper (§3.2).
//
// The IR distinguishes, by opcode, the three instruction classes the paper's
// analysis cares about (Figure 5):
//
//   - compute instructions (arithmetic, logic, compares, casts),
//   - memory accesses to stateful NF variables (GLoad/GStore on globals),
//   - stateless local-variable traffic (LLoad/LStore on stack slots), and
//   - NF framework API calls (Call), which are reverse ported rather than
//     predicted.
package ir

import (
	"fmt"
	"strings"
	"sync"
)

// Type is an IR value type. The NFC language is an unsigned-integer subset
// (plus booleans), which mirrors the restricted C dialects of baremetal
// SmartNICs.
type Type uint8

// Value types.
const (
	Void Type = iota
	Bool      // 1-bit truth value (icmp results, conditions)
	U8
	U16
	U32
	U64
)

// Size returns the size of the type in bytes (Bool occupies one byte in
// stateful storage).
func (t Type) Size() int {
	switch t {
	case U8, Bool:
		return 1
	case U16:
		return 2
	case U32:
		return 4
	case U64:
		return 8
	default:
		return 0
	}
}

// Bits returns the width of the type in bits.
func (t Type) Bits() int {
	if t == Bool {
		return 1
	}
	return t.Size() * 8
}

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case Bool:
		return "i1"
	case U8:
		return "u8"
	case U16:
		return "u16"
	case U32:
		return "u32"
	case U64:
		return "u64"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Op is an IR opcode.
type Op uint8

// Opcodes.
const (
	OpInvalid Op = iota

	// Compute.
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpICmp // predicate in Instr.Pred
	OpZExt
	OpTrunc
	OpNot // bitwise complement

	// Stateless local-variable traffic (stack slots; the NIC compiler
	// register-allocates these away, possibly with spills).
	OpLLoad  // result <- slot
	OpLStore // slot <- arg

	// Stateful memory accesses (global NF state).
	OpGLoad  // result <- global[index?]
	OpGStore // global[index?] <- value

	// NF framework API call (reverse ported, never predicted).
	OpCall

	// Control flow (block terminators).
	OpBr     // unconditional
	OpCondBr // Args[0] = condition; True/False successors
	OpRet    // optional Args[0]
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpUDiv:    "udiv",
	OpURem:    "urem",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpLShr:    "lshr",
	OpICmp:    "icmp",
	OpZExt:    "zext",
	OpTrunc:   "trunc",
	OpNot:     "not",
	OpLLoad:   "lload",
	OpLStore:  "lstore",
	OpGLoad:   "gload",
	OpGStore:  "gstore",
	OpCall:    "call",
	OpBr:      "br",
	OpCondBr:  "cbr",
	OpRet:     "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsCompute reports whether the opcode is a stateless compute instruction.
func (o Op) IsCompute() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpAnd, OpOr, OpXor,
		OpShl, OpLShr, OpICmp, OpZExt, OpTrunc, OpNot:
		return true
	}
	return false
}

// IsStatefulMem reports whether the opcode accesses stateful (global) NF
// memory. These are the accesses the paper counts directly from the IR.
func (o Op) IsStatefulMem() bool { return o == OpGLoad || o == OpGStore }

// IsLocalMem reports whether the opcode accesses a function-local stack
// slot (stateless variable traffic).
func (o Op) IsLocalMem() bool { return o == OpLLoad || o == OpLStore }

// IsTerminator reports whether the opcode terminates a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// Pos is a source position (1-based line and column) carried from the NFC
// frontend through lowering. The zero Pos means "unknown": synthesized or
// hand-built IR has no source to point into. Diagnostics (internal/analysis)
// anchor to these positions.
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position refers to real source.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Pred is an integer-comparison predicate for OpICmp.
type Pred uint8

// Comparison predicates (unsigned).
const (
	PredNone Pred = iota
	PredEQ
	PredNE
	PredULT
	PredULE
	PredUGT
	PredUGE
)

func (p Pred) String() string {
	switch p {
	case PredEQ:
		return "eq"
	case PredNE:
		return "ne"
	case PredULT:
		return "ult"
	case PredULE:
		return "ule"
	case PredUGT:
		return "ugt"
	case PredUGE:
		return "uge"
	default:
		return "none"
	}
}

// Negate returns the logically negated predicate.
func (p Pred) Negate() Pred {
	switch p {
	case PredEQ:
		return PredNE
	case PredNE:
		return PredEQ
	case PredULT:
		return PredUGE
	case PredULE:
		return PredUGT
	case PredUGT:
		return PredULE
	case PredUGE:
		return PredULT
	default:
		return PredNone
	}
}

// ValueKind discriminates the operand kinds an instruction may reference.
// The kinds double as the paper's "vocabulary compaction" (§3.2): a concrete
// operand is abstracted to its kind when instructions are encoded for the
// sequence model.
type ValueKind uint8

// Operand kinds.
const (
	VInvalid ValueKind = iota
	VInstr             // result of another instruction (a virtual register)
	VConst             // integer literal
	VParam             // function parameter
)

// Value is an instruction operand.
type Value struct {
	Kind  ValueKind
	ID    int   // instruction ID for VInstr, parameter index for VParam
	Const int64 // literal for VConst
	Ty    Type
}

// ConstVal returns a constant operand of the given type.
func ConstVal(c int64, ty Type) Value { return Value{Kind: VConst, Const: c, Ty: ty} }

// InstrVal returns an operand referring to instruction id.
func InstrVal(id int, ty Type) Value { return Value{Kind: VInstr, ID: id, Ty: ty} }

// ParamVal returns an operand referring to parameter index.
func ParamVal(idx int, ty Type) Value { return Value{Kind: VParam, ID: idx, Ty: ty} }

func (v Value) String() string {
	switch v.Kind {
	case VInstr:
		return fmt.Sprintf("%%%d", v.ID)
	case VConst:
		return fmt.Sprintf("%d", v.Const)
	case VParam:
		return fmt.Sprintf("$%d", v.ID)
	default:
		return "<invalid>"
	}
}

// Instr is a single IR instruction. Instructions producing a value carry a
// non-negative ID unique within their function.
type Instr struct {
	ID   int // SSA value number; -1 when the instruction produces no value
	Op   Op
	Ty   Type // result type (or stored value type for stores)
	Pred Pred // icmp predicate

	Args []Value

	// Slot is the stack-slot index for LLoad/LStore.
	Slot int

	// Global is the referenced global's name for GLoad/GStore, and the
	// state argument for map/vector framework calls.
	Global string

	// Callee is the framework API name for OpCall.
	Callee string

	// True/False are successor block indices for terminators (True doubles
	// as the unconditional target for OpBr).
	True, False int

	// Pos is the source position the instruction was lowered from (zero
	// for synthesized IR).
	Pos Pos
}

// Uses returns the operand values of the instruction.
func (in *Instr) Uses() []Value { return in.Args }

func (in *Instr) String() string {
	var b strings.Builder
	if in.ID >= 0 {
		fmt.Fprintf(&b, "%%%d = ", in.ID)
	}
	b.WriteString(in.Op.String())
	if in.Op == OpICmp {
		b.WriteByte(' ')
		b.WriteString(in.Pred.String())
	}
	if in.Ty != Void {
		b.WriteByte(' ')
		b.WriteString(in.Ty.String())
	}
	switch in.Op {
	case OpLLoad, OpLStore:
		fmt.Fprintf(&b, " slot%d", in.Slot)
	case OpGLoad, OpGStore:
		fmt.Fprintf(&b, " @%s", in.Global)
	case OpCall:
		fmt.Fprintf(&b, " @%s", in.Callee)
		if in.Global != "" {
			fmt.Fprintf(&b, "<%s>", in.Global)
		}
	}
	for i, a := range in.Args {
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	switch in.Op {
	case OpBr:
		fmt.Fprintf(&b, " b%d", in.True)
	case OpCondBr:
		fmt.Fprintf(&b, " b%d, b%d", in.True, in.False)
	}
	return b.String()
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. Blocks correspond to the CFG nodes of Figure 2(b).
type Block struct {
	Index  int
	Name   string
	Instrs []*Instr
}

// Terminator returns the block's terminating instruction, or nil if the
// block is not yet terminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the indices of the block's successor blocks.
func (b *Block) Succs() []int {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []int{t.True}
	case OpCondBr:
		if t.True == t.False {
			return []int{t.True}
		}
		return []int{t.True, t.False}
	default:
		return nil
	}
}

// Param is a function parameter.
type Param struct {
	Name string
	Ty   Type
}

// Func is an IR function: a list of basic blocks, entry first.
type Func struct {
	Name    string
	Params  []Param
	Ret     Type
	Blocks  []*Block
	NumVals int // number of SSA values (instruction IDs are [0, NumVals))
	NSlots  int // number of local stack slots
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Preds computes the predecessor lists of all blocks.
func (f *Func) Preds() [][]int {
	preds := make([][]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.Index)
		}
	}
	return preds
}

// GlobalKind discriminates stateful NF data-structure kinds.
type GlobalKind uint8

// Global kinds.
const (
	GScalar GlobalKind = iota
	GArray
	GMap
	GVec
)

func (k GlobalKind) String() string {
	switch k {
	case GScalar:
		return "scalar"
	case GArray:
		return "array"
	case GMap:
		return "map"
	case GVec:
		return "vec"
	default:
		return "?"
	}
}

// Global is a stateful NF variable: a scalar counter, a fixed-capacity
// array, or a hash map (Click HashMap analog). Data-structure sizes are
// static, as required by baremetal NICs without dynamic allocation.
type Global struct {
	Name string
	Kind GlobalKind
	Elem Type // scalar/array element type; map value type
	Key  Type // map key type
	Len  int  // array length or map capacity (entries)
}

// mapSlotOverhead is the per-entry metadata overhead (occupancy tag) of a
// map entry in stateful storage, in bytes.
const mapSlotOverhead = 1

// SizeBytes returns the stateful-storage footprint of the global.
func (g *Global) SizeBytes() int {
	switch g.Kind {
	case GScalar:
		return g.Elem.Size()
	case GArray:
		return g.Len * g.Elem.Size()
	case GMap:
		return g.Len * (g.Key.Size() + g.Elem.Size() + mapSlotOverhead)
	case GVec:
		// element + occupancy tag per slot, plus a length word
		return g.Len*(g.Elem.Size()+1) + 4
	default:
		return 0
	}
}

// Module is a compilation unit: one NF element. By convention the packet
// handler is the function named "handle".
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func

	// fp memoizes Fingerprint. Modules are immutable once built (the
	// invariant every fingerprint consumer already relies on), so the
	// content hash is computed at most once; fpOnce makes the memo safe
	// under the fleet's concurrent per-job hashing.
	fp     [32]byte
	fpOnce sync.Once
}

// HandlerName is the conventional name of an NF element's per-packet entry
// point (the analog of Click's simple_action).
const HandlerName = "handle"

// Global returns the named global, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Handler returns the packet-handler function, or nil.
func (m *Module) Handler() *Func { return m.Func(HandlerName) }

// String renders the module in a textual form resembling LLVM assembly.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	for _, g := range m.Globals {
		switch g.Kind {
		case GScalar:
			fmt.Fprintf(&b, "global %s @%s\n", g.Elem, g.Name)
		case GArray:
			fmt.Fprintf(&b, "global %s @%s[%d]\n", g.Elem, g.Name, g.Len)
		case GMap:
			fmt.Fprintf(&b, "global map<%s,%s> @%s[%d]\n", g.Key, g.Elem, g.Name, g.Len)
		case GVec:
			fmt.Fprintf(&b, "global vec<%s> @%s[%d]\n", g.Elem, g.Name, g.Len)
		}
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(&b, "func @%s(", f.Name)
		for i, p := range f.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", p.Ty, p.Name)
		}
		fmt.Fprintf(&b, ") %s {\n", f.Ret)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "b%d: ; %s\n", blk.Index, blk.Name)
			for _, in := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", in)
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// Stats summarizes a module the way Table 2 summarizes an element.
type Stats struct {
	Compute   int // compute IR instructions
	LocalMem  int // stateless local slot accesses
	StateMem  int // stateful global accesses (static count)
	APICalls  int // framework API call sites
	Blocks    int
	Stateful  bool // has globals
	StateSize int  // total stateful bytes
}

// ModuleStats computes static instruction statistics over all functions.
func ModuleStats(m *Module) Stats {
	var s Stats
	for _, f := range m.Funcs {
		s.Blocks += len(f.Blocks)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch {
				case in.Op.IsCompute():
					s.Compute++
				case in.Op.IsLocalMem():
					s.LocalMem++
				case in.Op.IsStatefulMem():
					s.StateMem++
				case in.Op == OpCall:
					s.APICalls++
				}
			}
		}
	}
	s.Stateful = len(m.Globals) > 0
	for _, g := range m.Globals {
		s.StateSize += g.SizeBytes()
	}
	return s
}
