// Command clara analyzes an unported NF and prints its offloading
// insights: predicted instruction counts, accelerator opportunities,
// suggested core count, state placement, and coalescing packs.
//
// Usage:
//
//	clara -nf mazunat [-workload small|large|mix] [-quick]
//	clara -src element.nfc [-workload mix]
//	clara -nf udpcount -trace capture.bin   # profile over a recorded trace
//	clara -fleet [-workers 8] [-quick]      # whole library × all workloads
//	clara -lint -src element.nfc [-json]    # offloadability lint, no training
//	clara -serve :8080 [-workers 8] [-quick]  # HTTP analysis service
//	clara -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clara"
	"clara/internal/core"
	"clara/internal/traffic"
)

func main() {
	var (
		nfName    = flag.String("nf", "", "analyze a library element by name")
		srcPath   = flag.String("src", "", "analyze an NFC source file")
		workload  = flag.String("workload", "mix", "workload: small | large | mix")
		tracePath = flag.String("trace", "", "profile over a recorded trace file instead of a synthetic workload")
		quick     = flag.Bool("quick", false, "fast, lower-accuracy training")
		list      = flag.Bool("list", false, "list library elements and exit")
		fleetMode = flag.Bool("fleet", false, "analyze-fleet mode: every library element under every standard workload")
		workers   = flag.Int("workers", 0, "fleet worker pool size (0 = GOMAXPROCS)")
		lintMode  = flag.Bool("lint", false, "offloadability lint only (static, no training); exits 1 on error-severity findings")
		jsonOut   = flag.Bool("json", false, "with -lint: emit diagnostics as a JSON array")
		serveAddr = flag.String("serve", "", "serve the HTTP analysis API on this address (e.g. :8080)")
		queue     = flag.Int("queue", 0, "with -serve: max concurrent analysis requests (0 = 4x workers)")
		timeout   = flag.Duration("timeout", 0, "with -serve: per-request analysis deadline (0 = 30s)")
	)
	flag.Parse()

	validateFlags(*nfName, *srcPath, *fleetMode, *lintMode, *list, *jsonOut,
		*serveAddr, *tracePath, *workers, *queue, *timeout)

	if *serveAddr != "" {
		serve(*serveAddr, *workers, *queue, *timeout, *quick)
		return
	}

	if *list {
		fmt.Println("Built-in NF elements:")
		for _, e := range clara.Elements() {
			fmt.Printf("  %-14s %s (%d LoC)\n", e.Name, e.Desc, e.LoC())
		}
		return
	}

	if *fleetMode {
		analyzeFleet(*workers, *quick)
		return
	}

	if *lintMode {
		name, src, err := pickSource(*nfName, *srcPath)
		if err != nil {
			fatal(err)
		}
		lint(name, src, *jsonOut)
		return
	}

	wl, err := pickWorkload(*workload)
	if err != nil {
		fatal(err)
	}

	var mod *clara.Module
	var ps clara.ProfileSetup
	switch {
	case *nfName != "":
		e := clara.GetElement(*nfName)
		if e == nil {
			fatal(fmt.Errorf("unknown element %q (try -list)", *nfName))
		}
		m, err := e.Module()
		if err != nil {
			fatal(err)
		}
		mod = m
		ps = clara.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes}
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			fatal(err)
		}
		mod, err = clara.CompileNF(*srcPath, string(src))
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Fprintln(os.Stderr, "training Clara (predictor + algorithm ID + scale-out model)...")
	tool, err := clara.Train(clara.TrainConfig{Quick: *quick, Seed: 42})
	if err != nil {
		fatal(err)
	}

	if *tracePath != "" {
		// Workload comes from a recorded trace (the paper's pcap profile
		// input): run the workload-specific analyses over it directly.
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		pkts, err := traffic.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rep, err := traffic.NewReplayer(pkts)
		if err != nil {
			fatal(err)
		}
		prof, err := core.ProfileOnHostSource(mod, ps, rep, len(pkts))
		if err != nil {
			fatal(err)
		}
		placement, err := core.SuggestPlacement(mod, prof, tool.Params)
		if err != nil {
			fatal(err)
		}
		packs := core.SuggestPacks(mod, prof, tool.Coalesce)
		fmt.Printf("trace-driven analysis over %d recorded packets (%s):\n", len(pkts), *tracePath)
		fmt.Println("\nState placement:")
		for g, r := range placement {
			fmt.Printf("  %-16s -> %s\n", g, r)
		}
		if len(packs) > 0 {
			fmt.Println("Coalescing packs:")
			for i, p := range packs {
				fmt.Printf("  pack %d: %v\n", i, p)
			}
		}
		return
	}

	ins, err := tool.Analyze(mod, ps, wl)
	if err != nil {
		fatal(err)
	}
	fmt.Print(ins.Report())
}

// validateFlags rejects incoherent flag combinations up front (exit 2
// with usage) instead of silently ignoring the extra flags.
func validateFlags(nf, src string, fleetMode, lintMode, list, jsonOut bool,
	serveAddr, tracePath string, workers, queue int, timeout time.Duration) {
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "clara: "+format+"\n\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if jsonOut && !lintMode {
		usageErr("-json only applies to -lint output")
	}
	if workers < 0 {
		usageErr("-workers must be >= 0 (got %d)", workers)
	}
	if fleetMode && (nf != "" || src != "") {
		usageErr("-fleet analyzes the whole library; it cannot be combined with -nf or -src")
	}
	if fleetMode && lintMode {
		usageErr("-fleet and -lint are mutually exclusive modes")
	}
	if nf != "" && src != "" {
		usageErr("-nf and -src are mutually exclusive; pick one input")
	}
	if serveAddr != "" {
		incompatible := []struct {
			name string
			set  bool
		}{
			{"-fleet", fleetMode}, {"-lint", lintMode}, {"-list", list},
			{"-nf", nf != ""}, {"-src", src != ""}, {"-trace", tracePath != ""},
		}
		for _, f := range incompatible {
			if f.set {
				usageErr("-serve runs the HTTP service; it cannot be combined with %s", f.name)
			}
		}
	} else if queue != 0 || timeout != 0 {
		usageErr("-queue and -timeout only apply to -serve")
	}
	if queue < 0 {
		usageErr("-queue must be >= 0 (got %d)", queue)
	}
	if timeout < 0 {
		usageErr("-timeout must be >= 0 (got %s)", timeout)
	}
}

// serve trains the tool, then runs the HTTP analysis service until
// SIGINT/SIGTERM, draining in-flight analyses before exiting.
func serve(addr string, workers, queue int, timeout time.Duration, quick bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintln(os.Stderr, "training Clara (predictor + algorithm ID + scale-out model)...")
	tool, err := clara.TrainContext(ctx, clara.TrainConfig{Quick: quick, Seed: 42})
	if err != nil {
		fatal(err)
	}
	srv, err := clara.NewServer(clara.ServerConfig{
		Tool:           tool,
		Workers:        workers,
		QueueDepth:     queue,
		RequestTimeout: timeout,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "clara: serving on %s (%d workers)\n", addr, srv.Fleet().Workers())
	if err := srv.ListenAndServe(ctx, addr); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "clara: shut down cleanly")
}

// pickSource resolves -nf/-src to a (name, NFC source) pair.
func pickSource(nfName, srcPath string) (string, string, error) {
	switch {
	case nfName != "":
		e := clara.GetElement(nfName)
		if e == nil {
			return "", "", fmt.Errorf("unknown element %q (try -list)", nfName)
		}
		return e.Name, e.Src, nil
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return "", "", err
		}
		return srcPath, string(src), nil
	default:
		return "", "", fmt.Errorf("-lint needs -nf or -src")
	}
}

// lint runs the static offloadability linter — no training, no
// workload — and exits non-zero when any error-severity finding exists.
func lint(name, src string, jsonOut bool) {
	ds, err := clara.LintNF(name, src)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		blob, err := json.MarshalIndent(ds, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(blob))
	} else if len(ds) == 0 {
		fmt.Printf("%s: no findings\n", name)
	} else {
		s := clara.SummarizeDiagnostics(ds)
		fmt.Printf("%s: %d error(s), %d warning(s), %d note(s)\n", name, s.Errors, s.Warnings, s.Infos)
		fmt.Print(clara.RenderDiagnostics(ds))
	}
	if clara.SummarizeDiagnostics(ds).Errors > 0 {
		os.Exit(1)
	}
}

// analyzeFleet runs the whole element library (Table 2 order) under the
// three standard workloads on a bounded worker pool and prints the
// summary table plus the fleet's cache/latency metrics.
func analyzeFleet(workers int, quick bool) {
	fmt.Fprintln(os.Stderr, "training Clara (predictor + algorithm ID + scale-out model)...")
	tool, err := clara.Train(clara.TrainConfig{Quick: quick, Seed: 42})
	if err != nil {
		fatal(err)
	}
	jobs, err := clara.LibraryJobs()
	if err != nil {
		fatal(err)
	}
	fl, err := clara.NewFleet(tool, clara.FleetConfig{Workers: workers})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "analyzing %d jobs on %d workers...\n", len(jobs), fl.Workers())
	results, err := fl.Run(jobs)
	if err != nil {
		fatal(err)
	}
	fmt.Print(clara.FleetSummary(results))
	fmt.Printf("\n%s", fl.Stats())
	for _, r := range results {
		if r.Err != nil {
			os.Exit(1)
		}
	}
}

func pickWorkload(name string) (traffic.Spec, error) {
	switch name {
	case "small":
		return traffic.SmallFlows, nil
	case "large":
		return traffic.LargeFlows, nil
	case "mix":
		return traffic.MediumMix, nil
	default:
		return traffic.Spec{}, fmt.Errorf("unknown workload %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clara:", err)
	os.Exit(1)
}
