// Package isa defines the instruction set of the simulated baremetal
// SmartNIC ("NFP", loosely modeled on the Netronome flow processors the
// paper targets). The vendor compiler (internal/niccc) lowers IR to this
// ISA; the simulator (internal/nicsim) charges cycles for it.
//
// The ISA is deliberately not a superset of the IR: multiplies are
// sequenced (no single-cycle multiplier), compares fuse into branches,
// casts vanish into register semantics, and immediates above 8 bits need a
// separate load — the cross-ISA wrinkles that make instruction counts
// nonlinear in the IR and motivate learned prediction (paper §3.2).
package isa

import "fmt"

// Region identifies a level of the NIC memory hierarchy, in increasing
// size and latency order (paper §4.3).
type Region uint8

// Memory regions.
const (
	LMEM Region = iota // per-core local memory (register spill space)
	CLS                // cluster local scratch
	CTM                // cluster target memory
	IMEM               // internal SRAM
	EMEM               // external DRAM (with a small SRAM cache in front)
	NumRegions
)

func (r Region) String() string {
	switch r {
	case LMEM:
		return "LMEM"
	case CLS:
		return "CLS"
	case CTM:
		return "CTM"
	case IMEM:
		return "IMEM"
	case EMEM:
		return "EMEM"
	default:
		return fmt.Sprintf("region(%d)", uint8(r))
	}
}

// Op is a NIC instruction opcode.
type Op uint8

// Opcodes.
const (
	OpNop      Op = iota
	OpImmed       // load a >8-bit immediate into a register
	OpALU         // single-cycle ALU operation (add/sub/logic/shift/compare)
	OpMulStep     // one step of the sequenced multiplier
	OpDivStep     // one step of the software divide loop
	OpSpill       // local-memory spill/fill of a register-allocated local
	OpBr          // unconditional branch
	OpBcc         // fused compare-and-branch
	OpMemRead     // read from a stateful memory region
	OpMemWrite    // write to a stateful memory region
	OpLibCall     // NF framework library routine (reverse-ported code)
	OpCsum        // ingress checksum engine
	OpCrc         // CRC engine
	OpLpm         // LPM engine
	OpHash        // hash engine
	OpSend        // packet egress
	OpDrop        // packet drop
	OpRet         // handler return
)

var opNames = [...]string{
	OpNop: "nop", OpImmed: "immed", OpALU: "alu", OpMulStep: "mul_step",
	OpDivStep: "div_step", OpSpill: "spill", OpBr: "br", OpBcc: "bcc",
	OpMemRead: "mem[read]", OpMemWrite: "mem[write]", OpLibCall: "libcall",
	OpCsum: "csum", OpCrc: "crc", OpLpm: "lpm", OpHash: "hash",
	OpSend: "send", OpDrop: "drop", OpRet: "rtn",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsCompute reports whether the instruction retires on the core pipeline
// (vs memory or an engine) and therefore counts toward the paper's
// "number of compute instructions".
func (o Op) IsCompute() bool {
	switch o {
	case OpImmed, OpALU, OpMulStep, OpDivStep, OpSpill, OpBr, OpBcc, OpNop:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses stateful memory.
func (o Op) IsMem() bool { return o == OpMemRead || o == OpMemWrite }

// Cycles returns the core-pipeline cost of the instruction. Memory and
// engine instructions additionally incur latency modeled by the simulator.
func (o Op) Cycles() int {
	switch o {
	case OpNop, OpImmed, OpALU, OpMulStep, OpDivStep:
		return 1
	case OpSpill:
		return 2 // LMEM round trip
	case OpBr:
		return 1
	case OpBcc:
		return 2 // compare + taken-branch bubble
	case OpMemRead, OpMemWrite:
		return 1 // issue cost; latency charged by the simulator
	case OpSend, OpDrop, OpRet:
		return 1
	default:
		return 0 // engines and libcalls are costed elsewhere
	}
}

// Instr is one NIC instruction.
type Instr struct {
	Op   Op
	Sub  string // ALU sub-operation or library routine name
	Size int    // access size in bytes for memory instructions
	// Global is the stateful variable a memory instruction or stateful
	// libcall targets; the simulator resolves it to a Region through the
	// active placement.
	Global string
}

func (i Instr) String() string {
	s := i.Op.String()
	if i.Sub != "" {
		s += "." + i.Sub
	}
	if i.Global != "" {
		s += " @" + i.Global
	}
	if i.Size != 0 {
		s += fmt.Sprintf(" %dB", i.Size)
	}
	return s
}

// Block is the compiled form of one IR basic block.
type Block struct {
	Instrs []Instr
	// Cached summaries (filled by Summarize).
	ComputeCount  int // instructions counted by cross-platform prediction
	MemCount      int // stateful memory instructions
	ComputeCycles int // core cycles for the compute portion
}

// Summarize recomputes the cached summary fields.
func (b *Block) Summarize() {
	b.ComputeCount, b.MemCount, b.ComputeCycles = 0, 0, 0
	for _, in := range b.Instrs {
		if in.Op.IsCompute() {
			b.ComputeCount++
			b.ComputeCycles += in.Op.Cycles()
		}
		if in.Op.IsMem() {
			b.MemCount++
		}
	}
}

// Program is a compiled NF handler: one compiled block per IR block, same
// indexing.
type Program struct {
	Name   string
	Blocks []Block
}

// TotalCompute sums compute instructions over all blocks.
func (p *Program) TotalCompute() int {
	n := 0
	for i := range p.Blocks {
		n += p.Blocks[i].ComputeCount
	}
	return n
}

// TotalMem sums stateful memory instructions over all blocks.
func (p *Program) TotalMem() int {
	n := 0
	for i := range p.Blocks {
		n += p.Blocks[i].MemCount
	}
	return n
}
