package interp

import (
	"fmt"
	"sync/atomic"

	"clara/internal/traffic"
)

// Backend selects the execution engine for a Machine.
//
// BackendCompiled runs direct-threaded closure programs (compile.go):
// each basic block is lowered once into a flat sequence of fused Go
// closures with operand indices, global slots, pow2 masks, and branch
// targets bound at compile time, so per-packet execution performs no
// opcode dispatch. BackendReference runs the original switch loop, which
// remains the semantic definition the compiled backend is verified
// against. The two are observationally identical — Steps, fuel, state
// counters, hook traces, packet mutations — differing only in speed.
type Backend uint8

const (
	// BackendAuto defers to the process default (SetDefaultBackend);
	// out of the box that is BackendCompiled.
	BackendAuto Backend = iota
	// BackendCompiled executes direct-threaded closure programs.
	BackendCompiled
	// BackendReference executes the switch-dispatch interpreter.
	BackendReference
)

// defaultBackend is the process-wide resolution of BackendAuto,
// adjustable at runtime (clara -interp, server config).
var defaultBackend atomic.Int32

func init() { defaultBackend.Store(int32(BackendCompiled)) }

// SetDefaultBackend sets what BackendAuto resolves to for machines built
// afterwards. BackendAuto itself is rejected.
func SetDefaultBackend(b Backend) error {
	switch b {
	case BackendCompiled, BackendReference:
		defaultBackend.Store(int32(b))
		return nil
	default:
		return fmt.Errorf("interp: invalid default backend %d", b)
	}
}

// DefaultBackend reports what BackendAuto currently resolves to.
func DefaultBackend() Backend { return Backend(defaultBackend.Load()) }

// ParseBackend maps the CLI/config spelling of a backend name.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "compiled":
		return BackendCompiled, nil
	case "reference":
		return BackendReference, nil
	default:
		return BackendAuto, fmt.Errorf("interp: unknown backend %q (want compiled or reference)", s)
	}
}

// String returns the ParseBackend spelling.
func (b Backend) String() string {
	switch b {
	case BackendCompiled:
		return "compiled"
	case BackendReference:
		return "reference"
	default:
		return "auto"
	}
}

func (b Backend) resolve() Backend {
	if b == BackendAuto {
		return DefaultBackend()
	}
	return b
}

// tFlavor indexes the threaded specializations of a program. Splitting
// by observability at compile time is what lets the hot flavors drop
// every per-instruction nil check: the plain flavor carries no counter
// or hook code at all, the counting flavor bakes each event's flat
// counter index into its closure as a captured constant, and the hooked
// flavor — the only one whose event stream is externally visible — is
// compiled 1:1 with no fusion so hook traces are ordered exactly like
// the reference loop's.
type tFlavor uint8

const (
	fPlain    tFlavor = iota // no counters, no hooks
	fCounting                // counters attached, no hooks
	fHooked                  // hooks attached (counters optional)
	numFlavors
)

// cOp is one threaded straight-line operation. The machine's combined
// register array (local slots, then instruction results, then the const
// pool — see Machine.regs) is passed as an argument so closure bodies
// read it out of registers: loading it from the Machine per access would
// force the compiler to reload the slice header after every store.
// Operand indices are pre-offset into the combined space at compile
// time. cTerm is a block terminator: it returns the next block index, or
// retSignal to stop.
type cOp func(m *Machine, vs []uint64)
type cTerm func(m *Machine, vs []uint64) int32

// retSignal is the cTerm return meaning "handler returned".
const retSignal = int32(-1)

// cLoop executes a whole loop cycle (header plus back-edge blocks) in
// one indirect call. Fuel and Steps travel through the arguments — the
// plain/counting trampoline keeps them in locals, and a cycle must
// charge them per block entry exactly as the trampoline would — and the
// returned block index is the loop's exit target, or fuelSignal when
// fuel ran out at a block entry inside the cycle.
type cLoop func(m *Machine, vs []uint64, fuel int, steps uint64) (int32, int, uint64)

// fuelSignal is the cLoop return meaning "fuel exhausted mid-cycle".
const fuelSignal = int32(-2)

// tBlock is one basic block in threaded form.
type tBlock struct {
	// head fires the hooked flavor's block-entry events (OnBlock,
	// OnCompute); nil in the plain and counting flavors.
	head cOp
	ops  []cOp
	term cTerm
	// runAll, when non-nil, executes the whole block — body and
	// terminator — in a single indirect call (chainRunAll); ops and term
	// are then unused. Only blocks whose every instruction is
	// chain-fusable get one, which also means they carry no Machine.call
	// ops, so the trampoline's chk gate cannot apply.
	runAll cTerm
	// cycle, when non-nil, marks this block as the header of a fused
	// loop cycle (attachCycles): the closure runs the whole loop to its
	// exit with per-block accounting inlined, and takes priority over
	// runAll/ops in the plain and counting trampolines.
	cycle cLoop
	// size is the source IR instruction count — fuel, Steps, and compute
	// hooks charge by it, so fusion never changes the cost model.
	size int
	// chk marks blocks containing an op routed through Machine.call (the
	// only ops that can set m.err); the trampoline skips the error gate
	// for every other block.
	chk bool
}

// threaded is one flavor's lowering of a program: shared, immutable, and
// machine-independent (closures reach mutable state only through the
// *Machine they are passed).
type threaded struct {
	blocks []tBlock
}

// threadedFor returns the program's threaded lowering for one flavor,
// building it on first use. A nil result (sticky, via the Once) means
// the threaded compiler declined the module and callers must use the
// reference loop.
func (p *program) threadedFor(fl tFlavor) *threaded {
	p.tOnce[fl].Do(func() { p.tProg[fl] = compileThreaded(p, fl) })
	return p.tProg[fl]
}

// runThreaded executes one packet through a plain- or counting-flavor
// threaded program. The block trampoline reproduces the reference loop's
// observable order exactly: block counter, then the fuel check (a packet
// that exhausts fuel aborts at block entry with Steps not charged for
// the aborted block), then the instruction sequence, then the
// terminator. Fuel and Steps live in locals while the loop runs — no
// hooks exist in these flavors, so nothing can observe the machine
// mid-packet — and are flushed on every exit path so the fields read
// exactly as the reference loop leaves them.
func (m *Machine) runThreaded(t *threaded, p *traffic.Packet) error {
	p.Reset()
	m.pkt = p
	m.err = nil
	ctr := m.ctr
	vs := m.regs
	fuel := m.cfg.Fuel
	steps := uint64(0)
	bi := int32(0)
	for {
		cb := &t.blocks[bi]
		if ctr != nil {
			ctr.Block[bi]++
		}
		fuel -= cb.size
		if fuel < 0 {
			m.fuel = fuel
			m.Steps += steps
			return ErrFuel
		}
		steps += uint64(cb.size)
		if cb.cycle != nil {
			bi, fuel, steps = cb.cycle(m, vs, fuel, steps)
			if bi == fuelSignal {
				m.fuel = fuel
				m.Steps += steps
				return ErrFuel
			}
			continue
		}
		if cb.runAll != nil {
			bi = cb.runAll(m, vs)
			if bi < 0 {
				m.fuel = fuel
				m.Steps += steps
				return nil
			}
			continue
		}
		for _, op := range cb.ops {
			op(m, vs)
		}
		if cb.chk && m.err != nil {
			m.fuel = fuel
			m.Steps += steps
			return m.err
		}
		bi = cb.term(m, vs)
		if bi < 0 {
			m.fuel = fuel
			m.Steps += steps
			return nil
		}
	}
}

// runThreadedHooked is the trampoline for the hooked flavor. Hook
// callbacks are arbitrary user code that may inspect the machine (Steps,
// fuel) mid-packet, so this variant keeps the accounting in the machine
// fields per block, exactly like the reference loop, and fires the
// block-entry events from the compiled head.
func (m *Machine) runThreadedHooked(t *threaded, p *traffic.Packet) error {
	p.Reset()
	m.pkt = p
	m.fuel = m.cfg.Fuel
	m.err = nil
	vs := m.regs
	bi := int32(0)
	for {
		cb := &t.blocks[bi]
		if m.ctr != nil {
			m.ctr.Block[bi]++
		}
		cb.head(m, vs)
		m.fuel -= cb.size
		if m.fuel < 0 {
			return ErrFuel
		}
		m.Steps += uint64(cb.size)
		for _, op := range cb.ops {
			op(m, vs)
		}
		if m.err != nil {
			return m.err
		}
		bi = cb.term(m, vs)
		if bi < 0 {
			return nil
		}
	}
}
