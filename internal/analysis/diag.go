package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic: errors block a direct offload, warnings
// likely degrade it, infos describe required porting work (e.g. reverse
// porting an API call to the host).
type Severity int

// Severities, most severe first.
const (
	SevError Severity = iota
	SevWarning
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "info"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalText encodes the severity as its name for JSON/text output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText decodes a severity name.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("unknown severity %q", b)
	}
	return nil
}

// Diagnostic is one linter finding, anchored to NFC source when the IR
// carries positions.
type Diagnostic struct {
	// Rule is the stable rule identifier (e.g. "loop-unbounded").
	Rule string `json:"rule"`
	// Severity is the finding's class.
	Severity Severity `json:"severity"`
	// Elem names the NF element (module) the finding is in.
	Elem string `json:"elem,omitempty"`
	// Fn names the containing IR function, if any.
	Fn string `json:"fn,omitempty"`
	// Line and Col are the 1-based source position (0 when unknown).
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Msg states the finding.
	Msg string `json:"msg"`
	// Hint suggests a fix or porting strategy, when one is known.
	Hint string `json:"hint,omitempty"`
	// Cause explains *why* the finding holds, when a deeper analysis knows
	// (e.g. a loop bound classified payload-dependent by taint tracking,
	// naming the source API).
	Cause string `json:"cause,omitempty"`
}

// String renders the diagnostic in the conventional
// elem:line:col: severity: message [rule] form.
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.Elem)
	if d.Line > 0 {
		fmt.Fprintf(&b, ":%d:%d", d.Line, d.Col)
	}
	fmt.Fprintf(&b, ": %s: %s [%s]", d.Severity, d.Msg, d.Rule)
	return b.String()
}

// SortDiagnostics orders findings by source position, then rule — the
// stable source-order reading a reviewer expects, independent of which
// pass produced each finding.
func SortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		return a.Msg < b.Msg
	})
}

// NormalizeDiagnostics sorts findings into position-then-rule order and
// removes duplicates: the same rule at the same position with the same
// message, whichever passes emitted it, appears once. The richer copy
// wins — a duplicate carrying a Cause or Hint fills in a bare one.
func NormalizeDiagnostics(ds []Diagnostic) []Diagnostic {
	SortDiagnostics(ds)
	out := ds[:0]
	for _, d := range ds {
		if n := len(out); n > 0 {
			p := &out[n-1]
			if p.Rule == d.Rule && p.Fn == d.Fn && p.Line == d.Line &&
				p.Col == d.Col && p.Msg == d.Msg {
				if p.Cause == "" {
					p.Cause = d.Cause
				}
				if p.Hint == "" {
					p.Hint = d.Hint
				}
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// Summary counts diagnostics by severity.
type Summary struct {
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
}

// Summarize tallies a diagnostic list.
func Summarize(ds []Diagnostic) Summary {
	var s Summary
	for _, d := range ds {
		switch d.Severity {
		case SevError:
			s.Errors++
		case SevWarning:
			s.Warnings++
		default:
			s.Infos++
		}
	}
	return s
}

// Clean reports whether the list carries no offload blockers (errors) or
// likely degradations (warnings); info-level notes are allowed.
func Clean(ds []Diagnostic) bool {
	s := Summarize(ds)
	return s.Errors == 0 && s.Warnings == 0
}

// Render formats diagnostics for humans, one per line, hints indented
// beneath their finding.
func Render(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
		if d.Cause != "" {
			fmt.Fprintf(&b, "\tcause: %s\n", d.Cause)
		}
		if d.Hint != "" {
			fmt.Fprintf(&b, "\thint: %s\n", d.Hint)
		}
	}
	return b.String()
}
