package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// --- k-nearest neighbors ---

// KNN is a k-nearest-neighbor regressor and classifier.
type KNN struct {
	K      int
	X      [][]float64
	Y      []float64
	Labels []int
}

// FitKNNRegressor memorizes the training set.
func FitKNNRegressor(X [][]float64, y []float64, k int) *KNN {
	return &KNN{K: k, X: X, Y: y}
}

// FitKNNClassifier memorizes the training set with labels.
func FitKNNClassifier(X [][]float64, labels []int, k int) *KNN {
	return &KNN{K: k, X: X, Labels: labels}
}

func (m *KNN) neighbors(x []float64) []int {
	type dv struct {
		d float64
		i int
	}
	ds := make([]dv, len(m.X))
	for i, xi := range m.X {
		var d float64
		for j := range x {
			diff := x[j] - xi[j]
			d += diff * diff
		}
		ds[i] = dv{d, i}
	}
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].d != ds[b].d {
			return ds[a].d < ds[b].d
		}
		return ds[a].i < ds[b].i
	})
	k := m.K
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].i
	}
	return out
}

// Predict averages the k nearest targets.
func (m *KNN) Predict(x []float64) float64 {
	nb := m.neighbors(x)
	var s float64
	for _, i := range nb {
		s += m.Y[i]
	}
	return s / float64(len(nb))
}

// PredictClass majority-votes the k nearest labels.
func (m *KNN) PredictClass(x []float64) int {
	votes := map[int]int{}
	for _, i := range m.neighbors(x) {
		votes[m.Labels[i]]++
	}
	best, bestN := 0, -1
	for _, c := range distinctLabels(m.Labels) {
		if votes[c] > bestN {
			bestN = votes[c]
			best = c
		}
	}
	return best
}

// --- linear SVM (Pegasos) ---

// SVM is a linear support-vector classifier trained with the Pegasos
// subgradient method, wrapped one-vs-rest for multi-class problems — the
// classifier Clara uses for algorithm identification (§4.1).
type SVM struct {
	Classes []int
	w       [][]float64 // per class, length nf+1 (bias last)
}

// SVMConfig controls SVM training.
type SVMConfig struct {
	Lambda float64
	Epochs int
	Seed   int64
}

// FitSVM trains one-vs-rest linear SVMs.
func FitSVM(X [][]float64, labels []int, cfg SVMConfig) *SVM {
	if cfg.Lambda == 0 {
		cfg.Lambda = 1e-3
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 20
	}
	classes := distinctLabels(labels)
	nf := len(X[0])
	svm := &SVM{Classes: classes}
	for _, c := range classes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
		w := make([]float64, nf+1)
		t := 0
		for e := 0; e < cfg.Epochs; e++ {
			perm := rng.Perm(len(X))
			for _, i := range perm {
				t++
				eta := 1 / (cfg.Lambda * float64(t))
				yi := -1.0
				if labels[i] == c {
					yi = 1.0
				}
				margin := yi * (Dot(w[:nf], X[i]) + w[nf])
				Scale(1-eta*cfg.Lambda, w[:nf])
				if margin < 1 {
					Axpy(eta*yi, X[i], w[:nf])
					w[nf] += eta * yi * 0.1
				}
			}
		}
		svm.w = append(svm.w, w)
	}
	return svm
}

// Score returns the decision value for class index ci.
func (s *SVM) Score(x []float64, ci int) float64 {
	w := s.w[ci]
	return Dot(w[:len(w)-1], x) + w[len(w)-1]
}

// PredictClass returns the class with the highest decision value.
func (s *SVM) PredictClass(x []float64) int {
	best, bestScore := s.Classes[0], math.Inf(-1)
	for i := range s.w {
		if v := s.Score(x, i); v > bestScore {
			bestScore = v
			best = s.Classes[i]
		}
	}
	return best
}

// --- ridge regression ---

// Ridge is L2-regularized linear regression solved by normal equations.
type Ridge struct {
	w []float64 // nf+1, bias last
}

// FitRidge solves (XᵀX + λI) w = Xᵀy with Gaussian elimination.
func FitRidge(X [][]float64, y []float64, lambda float64) (*Ridge, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	nf := len(X[0]) + 1 // with bias column
	A := make([][]float64, nf)
	for i := range A {
		A[i] = make([]float64, nf+1)
	}
	xi := make([]float64, nf)
	for r := 0; r < n; r++ {
		copy(xi, X[r])
		xi[nf-1] = 1
		for i := 0; i < nf; i++ {
			for j := 0; j < nf; j++ {
				A[i][j] += xi[i] * xi[j]
			}
			A[i][nf] += xi[i] * y[r]
		}
	}
	for i := 0; i < nf-1; i++ {
		A[i][i] += lambda
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < nf; col++ {
		piv := col
		for r := col + 1; r < nf; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("ml: singular system in ridge fit")
		}
		A[col], A[piv] = A[piv], A[col]
		for r := 0; r < nf; r++ {
			if r == col {
				continue
			}
			f := A[r][col] / A[col][col]
			for c := col; c <= nf; c++ {
				A[r][c] -= f * A[col][c]
			}
		}
	}
	w := make([]float64, nf)
	for i := 0; i < nf; i++ {
		w[i] = A[i][nf] / A[i][i]
	}
	return &Ridge{w: w}, nil
}

// Predict evaluates the linear model.
func (r *Ridge) Predict(x []float64) float64 {
	return Dot(r.w[:len(r.w)-1], x) + r.w[len(r.w)-1]
}

// --- k-means ---

// KMeans holds fitted cluster centroids.
type KMeans struct {
	Centroids [][]float64
}

// FitKMeans clusters X into k groups with k-means++ seeding and Lloyd
// iterations (Clara's variable-packing clustering, §4.4).
func FitKMeans(X [][]float64, k int, seed int64) *KMeans {
	if k < 1 {
		k = 1
	}
	if k > len(X) {
		k = len(X)
	}
	rng := rand.New(rand.NewSource(seed + 11))
	nf := len(X[0])

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := append([]float64(nil), X[rng.Intn(len(X))]...)
	centroids = append(centroids, first)
	d2 := make([]float64, len(X))
	for len(centroids) < k {
		var sum float64
		for i, x := range X {
			d2[i] = math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(x, c); d < d2[i] {
					d2[i] = d
				}
			}
			sum += d2[i]
		}
		pick := 0
		if sum > 0 {
			r := rng.Float64() * sum
			for i := range X {
				r -= d2[i]
				if r <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(len(X))
		}
		centroids = append(centroids, append([]float64(nil), X[pick]...))
	}

	assign := make([]int, len(X))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, x := range X {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				if d := sqDist(x, c); d < bestD {
					bestD = d
					best = ci
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		counts := make([]int, k)
		next := make([][]float64, k)
		for ci := range next {
			next[ci] = make([]float64, nf)
		}
		for i, x := range X {
			counts[assign[i]]++
			Axpy(1, x, next[assign[i]])
		}
		for ci := range next {
			if counts[ci] > 0 {
				Scale(1/float64(counts[ci]), next[ci])
				centroids[ci] = next[ci]
			}
		}
		if !changed {
			break
		}
	}
	return &KMeans{Centroids: centroids}
}

// Assign returns the nearest centroid index for x.
func (km *KMeans) Assign(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for ci, c := range km.Centroids {
		if d := sqDist(x, c); d < bestD {
			bestD = d
			best = ci
		}
	}
	return best
}

// Inertia is the total within-cluster squared distance (elbow criterion).
func (km *KMeans) Inertia(X [][]float64) float64 {
	var s float64
	for _, x := range X {
		s += sqDist(x, km.Centroids[km.Assign(x)])
	}
	return s
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// --- PCA ---

// PCA holds the top principal components of a dataset.
type PCA struct {
	Mean       []float64
	Components [][]float64 // row per component
}

// FitPCA extracts the top-k principal components by power iteration with
// deflation (used for the Figure 10(a) projection).
func FitPCA(X [][]float64, k int, seed int64) *PCA {
	n, nf := len(X), len(X[0])
	mean := make([]float64, nf)
	for _, x := range X {
		Axpy(1, x, mean)
	}
	Scale(1/float64(n), mean)
	C := make([][]float64, n)
	for i, x := range X {
		C[i] = make([]float64, nf)
		for j := range x {
			C[i][j] = x[j] - mean[j]
		}
	}
	rng := rand.New(rand.NewSource(seed + 17))
	p := &PCA{Mean: mean}
	for comp := 0; comp < k; comp++ {
		v := make([]float64, nf)
		randInit(rng, v, 1)
		normalize(v)
		for iter := 0; iter < 100; iter++ {
			// v <- Cov * v, computed as Cᵀ(Cv)/n.
			cv := make([]float64, n)
			for i := range C {
				cv[i] = Dot(C[i], v)
			}
			nv := make([]float64, nf)
			for i := range C {
				Axpy(cv[i], C[i], nv)
			}
			Scale(1/float64(n), nv)
			normalize(nv)
			v = nv
		}
		p.Components = append(p.Components, v)
		// Deflate: remove the component from the data.
		for i := range C {
			proj := Dot(C[i], v)
			Axpy(-proj, v, C[i])
		}
	}
	return p
}

// Project maps x to component space.
func (p *PCA) Project(x []float64) []float64 {
	cx := make([]float64, len(x))
	for i := range x {
		cx[i] = x[i] - p.Mean[i]
	}
	out := make([]float64, len(p.Components))
	for i, c := range p.Components {
		out[i] = Dot(cx, c)
	}
	return out
}

func normalize(v []float64) {
	n := math.Sqrt(Dot(v, v))
	if n > 0 {
		Scale(1/n, v)
	}
}
