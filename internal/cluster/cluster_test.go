package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clara/internal/click"
	"clara/internal/core"
	"clara/internal/fleet"
	"clara/internal/interp"
	"clara/internal/nicsim"
	"clara/internal/server"
	"clara/internal/synth"
)

// One trained tool shared by every worker in every test: training
// dominates package test time and the models are read-only.
var (
	toolOnce sync.Once
	testTool *core.Clara
	toolErr  error
)

func quickTool(t testing.TB) *core.Clara {
	t.Helper()
	toolOnce.Do(func() {
		const seed = 7
		params := nicsim.DefaultParams()
		mods, err := click.Modules(click.Table2Order)
		if err != nil {
			toolErr = err
			return
		}
		pred, err := core.TrainPredictor(core.PredictorConfig{
			TrainPrograms: 50, Epochs: 6, Hidden: 16,
			CompactVocab: true, Seed: seed,
		}, core.CorpusProfile(mods))
		if err != nil {
			toolErr = err
			return
		}
		algo, err := core.TrainAlgoIdentifier(synth.AlgoCorpus(12, seed), 48, seed)
		if err != nil {
			toolErr = err
			return
		}
		sm, err := core.TrainScaleout(core.ScaleoutConfig{
			TrainPrograms: 8, PacketsPerTrace: 400,
			CoreGrid: []int{2, 8, 16, 32, 48, 60},
			Params:   params, Seed: seed,
		}, pred)
		if err != nil {
			toolErr = err
			return
		}
		testTool = &core.Clara{Predictor: pred, AlgoID: algo, Scaleout: sm, Params: params}
	})
	if toolErr != nil {
		t.Fatalf("training quick tool: %v", toolErr)
	}
	return testTool
}

// worker is one in-process cluster member: a real server.Server behind
// an httptest listener, with a kill switch that makes the process
// vanish from the network (new requests abort the connection,
// CloseClientConnections severs in-flight ones) without stopping the
// Go process — the sharpest crash we can simulate in-process.
type worker struct {
	srv    *server.Server
	ts     *httptest.Server
	killed atomic.Bool
}

func newWorker(t *testing.T, cfg server.Config) *worker {
	t.Helper()
	cfg.Tool = quickTool(t)
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := &worker{srv: srv}
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if w.killed.Load() {
			panic(http.ErrAbortHandler)
		}
		srv.Handler().ServeHTTP(rw, r)
	}))
	t.Cleanup(w.ts.Close)
	return w
}

// kill severs the worker from the network mid-flight.
func (w *worker) kill() {
	w.killed.Store(true)
	w.ts.CloseClientConnections()
}

func (w *worker) revive() { w.killed.Store(false) }

func newCluster(t *testing.T, cfg Config, workers ...*worker) *Coordinator {
	t.Helper()
	for _, w := range workers {
		cfg.Workers = append(cfg.Workers, w.ts.URL)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(blob))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeAnalyze(t *testing.T, rec *httptest.ResponseRecorder) server.AnalyzeResponse {
	t.Helper()
	var resp server.AnalyzeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad analyze response (%d): %v\n%s", rec.Code, err, rec.Body.String())
	}
	return resp
}

var batchNames = []string{"tcpack", "udpipencap", "forcetcp", "aggcounter", "timefilter", "anonipaddr"}

// checkOrdered asserts a response carries exactly the requested jobs,
// in request order, each with insights and no error.
func checkOrdered(t *testing.T, resp server.AnalyzeResponse, names []string) {
	t.Helper()
	if len(resp.Results) != len(names) {
		t.Fatalf("got %d results for %d jobs", len(resp.Results), len(names))
	}
	for i, r := range resp.Results {
		if r.Name != names[i] {
			t.Errorf("result %d = %q, want %q (order lost)", i, r.Name, names[i])
		}
		if r.Error != "" || r.Insights == nil {
			t.Errorf("job %s failed: %q", r.Name, r.Error)
		}
	}
}

// TestClusterRoutingAndCacheLocality is the happy-path e2e: a batch
// fans out over two workers and reassembles in order, and the
// content-hash routing keeps the workers' prediction caches disjoint —
// across two identical batches, each distinct module is predicted
// exactly once cluster-wide and the rerun is served entirely from
// cache.
func TestClusterRoutingAndCacheLocality(t *testing.T) {
	a, b := newWorker(t, server.Config{}), newWorker(t, server.Config{})
	c := newCluster(t, Config{}, a, b)

	rec := postJSON(t, c.Handler(), "/v1/analyze", server.AnalyzeRequest{NFs: batchNames})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d:\n%s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(server.FailedJobsHeader); got != "" {
		t.Fatalf("clean batch carried %s=%q", server.FailedJobsHeader, got)
	}
	checkOrdered(t, decodeAnalyze(t, rec), batchNames)

	rec = postJSON(t, c.Handler(), "/v1/analyze", server.AnalyzeRequest{NFs: batchNames})
	resp := decodeAnalyze(t, rec)
	checkOrdered(t, resp, batchNames)
	for _, r := range resp.Results {
		if !r.CacheHit {
			t.Errorf("rerun job %s missed its owner's cache", r.Name)
		}
	}

	// Merged metrics: every job completed, and the number of predictions
	// actually computed (misses + prewarmed) equals the distinct module
	// count — each module was predicted on exactly one worker.
	req := httptest.NewRequest("GET", "/metrics", nil)
	mrec := httptest.NewRecorder()
	c.Handler().ServeHTTP(mrec, req)
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", mrec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(mrec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap.Cluster.Live != 2 || len(snap.Cluster.Workers) != 2 {
		t.Errorf("cluster view: %+v", snap.Cluster)
	}
	total := int64(2 * len(batchNames))
	if snap.Merged.Fleet.JobsCompleted != total {
		t.Errorf("merged jobs completed = %d, want %d", snap.Merged.Fleet.JobsCompleted, total)
	}
	computed := snap.Merged.Fleet.CacheMisses + snap.Merged.Fleet.Prewarmed
	if computed != int64(len(batchNames)) {
		t.Errorf("predictions computed cluster-wide = %d, want %d (disjoint caches)",
			computed, len(batchNames))
	}
	var routed int64
	for _, w := range snap.Cluster.Workers {
		routed += w.JobsRouted
	}
	if routed != total {
		t.Errorf("jobs routed = %d, want %d", routed, total)
	}
	if !snap.Merged.Model.Ready {
		t.Errorf("merged model not ready: %+v", snap.Merged.Model)
	}
}

// TestClusterSrcRouting: submitted source routes by the same content
// hash the workers cache on, so resubmission hits.
func TestClusterSrcRouting(t *testing.T) {
	a, b := newWorker(t, server.Config{}), newWorker(t, server.Config{})
	c := newCluster(t, Config{}, a, b)
	src := click.Get("tcpack").Src

	rec := postJSON(t, c.Handler(), "/v1/analyze", server.AnalyzeRequest{Src: src, Name: "mine"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d:\n%s", rec.Code, rec.Body.String())
	}
	if resp := decodeAnalyze(t, rec); resp.Results[0].Error != "" || resp.Results[0].Name != "mine" {
		t.Fatalf("src job: %+v", resp.Results[0])
	}
	rec = postJSON(t, c.Handler(), "/v1/analyze", server.AnalyzeRequest{Src: src, Name: "mine"})
	if resp := decodeAnalyze(t, rec); !resp.Results[0].CacheHit {
		t.Error("resubmitted source missed the owner's cache")
	}
}

// blockingSetup is a JobHook whose Setup announces each started job and
// blocks until release closes.
func blockingSetup(started chan<- struct{}, release <-chan struct{}) func(*fleet.Job) {
	return func(j *fleet.Job) {
		j.PS = core.ProfileSetup{Setup: func(*interp.Machine) error {
			started <- struct{}{}
			<-release
			return nil
		}}
	}
}

// TestClusterWorkerKillMidBatch is the failure e2e the cluster exists
// for: a worker is severed while its sub-batch is in flight. The
// coordinator must mark it dead, re-route exactly that sub-batch to
// the surviving owner (exactly one retry), and still deliver the full
// batch — every job present once, in request order, with insights.
func TestClusterWorkerKillMidBatch(t *testing.T) {
	startedA := make(chan struct{}, 4*len(batchNames))
	startedB := make(chan struct{}, 4*len(batchNames))
	releaseA, releaseB := make(chan struct{}), make(chan struct{})
	a := newWorker(t, server.Config{JobHook: blockingSetup(startedA, releaseA)})
	b := newWorker(t, server.Config{JobHook: blockingSetup(startedB, releaseB)})
	c := newCluster(t, Config{}, a, b)

	// The victim is whichever worker owns the batch's first job, so the
	// test is deterministic no matter how the hash assigns the rest.
	req := server.AnalyzeRequest{NFs: batchNames}
	jobs, errMsg := resolveJobs(&req)
	if errMsg != "" {
		t.Fatal(errMsg)
	}
	ownerState, ok := c.owner(jobs[0].key, nil)
	if !ok {
		t.Fatal("no owner for first job")
	}
	victim, startedV := a, startedA
	if ownerState.addr == b.ts.URL {
		victim, startedV = b, startedB
	}

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- postJSON(t, c.Handler(), "/v1/analyze", req)
	}()

	<-startedV // the victim's sub-batch is in flight, pinned in Setup
	victim.kill()
	close(releaseA)
	close(releaseB)

	rec := <-done
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d:\n%s", rec.Code, rec.Body.String())
	}
	checkOrdered(t, decodeAnalyze(t, rec), batchNames)
	if got := rec.Header().Get(server.FailedJobsHeader); got != "" {
		t.Errorf("retried batch carried %s=%q", server.FailedJobsHeader, got)
	}
	if got := c.Retries(); got != 1 {
		t.Errorf("retries = %d, want exactly 1", got)
	}
	if c.alive(victim.ts.URL) {
		t.Error("killed worker still marked alive")
	}
	snap := c.Stats()
	if snap.Cluster.Live != 1 {
		t.Errorf("live workers = %d, want 1", snap.Cluster.Live)
	}
}

// TestClusterRejoinRestoresRange: probes demote a dead worker (its keys
// rebalance to the survivors) and promote it on recovery — after which
// every key maps exactly where it did before the death.
func TestClusterRejoinRestoresRange(t *testing.T) {
	a, b := newWorker(t, server.Config{}), newWorker(t, server.Config{})
	c := newCluster(t, Config{ProbeInterval: 10 * time.Millisecond, ProbeBackoffMax: 40 * time.Millisecond}, a, b)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)

	req := server.AnalyzeRequest{NFs: batchNames}
	jobs, errMsg := resolveJobs(&req)
	if errMsg != "" {
		t.Fatal(errMsg)
	}
	before := make(map[int]string)
	for i, j := range jobs {
		w, ok := c.owner(j.key, nil)
		if !ok {
			t.Fatal("no owner")
		}
		before[i] = w.addr
	}

	b.kill()
	waitFor(t, "probe demotes killed worker", func() bool { return !c.alive(b.ts.URL) })
	for i, j := range jobs {
		w, ok := c.owner(j.key, nil)
		if !ok {
			t.Fatal("no owner with one live worker")
		}
		if w.addr != a.ts.URL {
			t.Fatalf("job %d routed to dead worker", i)
		}
	}
	// The degraded cluster still serves (everything on the survivor).
	rec := postJSON(t, c.Handler(), "/v1/analyze", server.AnalyzeRequest{NFs: batchNames[:2]})
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded status %d:\n%s", rec.Code, rec.Body.String())
	}
	checkOrdered(t, decodeAnalyze(t, rec), batchNames[:2])

	b.revive()
	waitFor(t, "probe revives worker", func() bool { return c.alive(b.ts.URL) })
	for i, j := range jobs {
		w, ok := c.owner(j.key, nil)
		if !ok || w.addr != before[i] {
			t.Errorf("job %d owner after rejoin = %v, want %s (range not restored)", i, w, before[i])
		}
	}
}

// TestClusterNoLiveWorkers: when every worker is unreachable the
// coordinator answers 503, and healthz reports the loss.
func TestClusterNoLiveWorkers(t *testing.T) {
	a := newWorker(t, server.Config{})
	c := newCluster(t, Config{}, a)
	a.kill()

	rec := postJSON(t, c.Handler(), "/v1/analyze", server.AnalyzeRequest{NF: "tcpack"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503:\n%s", rec.Code, rec.Body.String())
	}
	hreq := httptest.NewRequest("GET", "/healthz", nil)
	hrec := httptest.NewRecorder()
	c.Handler().ServeHTTP(hrec, hreq)
	if hrec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz status %d, want 503", hrec.Code)
	}
}

// TestClusterValidation: the coordinator rejects malformed requests
// itself — no worker round trip for input errors.
func TestClusterValidation(t *testing.T) {
	a := newWorker(t, server.Config{})
	c := newCluster(t, Config{}, a)
	for name, body := range map[string]server.AnalyzeRequest{
		"no selector":     {},
		"two selectors":   {NF: "tcpack", Src: "void handle() {}"},
		"unknown element": {NF: "nosuch"},
		"bad source":      {Src: "not nfc ("},
	} {
		if rec := postJSON(t, c.Handler(), "/v1/analyze", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
}

// TestClusterForwardedEndpoints: lint and elements proxy through to a
// worker.
func TestClusterForwardedEndpoints(t *testing.T) {
	a, b := newWorker(t, server.Config{}), newWorker(t, server.Config{})
	c := newCluster(t, Config{}, a, b)

	rec := postJSON(t, c.Handler(), "/v1/lint", server.LintRequest{NF: "tcpack"})
	if rec.Code != http.StatusOK {
		t.Fatalf("lint via coordinator: %d\n%s", rec.Code, rec.Body.String())
	}
	var lint server.LintResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lint); err != nil || lint.Name != "tcpack" {
		t.Fatalf("lint response: %v %+v", err, lint)
	}

	ereq := httptest.NewRequest("GET", "/v1/elements", nil)
	erec := httptest.NewRecorder()
	c.Handler().ServeHTTP(erec, ereq)
	if erec.Code != http.StatusOK || !bytes.Contains(erec.Body.Bytes(), []byte("tcpack")) {
		t.Fatalf("elements via coordinator: %d", erec.Code)
	}
}

// TestClusterPerJobErrorsNotRetried: a deterministic per-job failure
// inside a 200 worker response must surface to the client as that
// job's error — not kill the worker, not trigger a retry.
func TestClusterPerJobErrorsNotRetried(t *testing.T) {
	hook := func(j *fleet.Job) {
		if j.Name == "aggcounter" {
			j.PS = core.ProfileSetup{Setup: func(*interp.Machine) error {
				panic("poisoned element")
			}}
		}
	}
	a := newWorker(t, server.Config{JobHook: hook})
	b := newWorker(t, server.Config{JobHook: hook})
	c := newCluster(t, Config{}, a, b)

	names := []string{"tcpack", "aggcounter", "forcetcp"}
	rec := postJSON(t, c.Handler(), "/v1/analyze", server.AnalyzeRequest{NFs: names})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d:\n%s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(server.FailedJobsHeader); got != "1" {
		t.Errorf("%s = %q, want \"1\"", server.FailedJobsHeader, got)
	}
	resp := decodeAnalyze(t, rec)
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.Results[1].Error == "" || !resp.Results[1].Panicked {
		t.Errorf("poisoned job not surfaced: %+v", resp.Results[1])
	}
	for _, i := range []int{0, 2} {
		if resp.Results[i].Error != "" || resp.Results[i].Insights == nil {
			t.Errorf("good job %s damaged: %+v", names[i], resp.Results[i])
		}
	}
	if got := c.Retries(); got != 0 {
		t.Errorf("retries = %d, want 0 (per-job errors are final)", got)
	}
	if !c.alive(a.ts.URL) || !c.alive(b.ts.URL) {
		t.Error("per-job error demoted a live worker")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
