package offload

import "testing"

// FuzzSimulate throws arbitrary controller configurations at the
// simulator: whatever Validate accepts must simulate without panicking
// and uphold every per-round invariant (conservation, budget ceilings,
// threshold clamps). Invalid configs must be rejected by Validate —
// never reached by the simulation loop. Wired into `make fuzz`.
func FuzzSimulate(f *testing.F) {
	// Corpus: the three standard scenarios in compact form plus edge
	// shapes (tiny capacities, threshold pinned at Min/Max).
	f.Add(int64(7), 8, 200, 1<<14, uint8(1), 512, 8, 1, 1024, 1.2, 1, 1024, 5000, 1000, 256, 32, 0, 0)
	f.Add(int64(1), 6, 100, 1<<12, uint8(2), 12, 1, 1, 512, 1.5, 1, 512, 4000, 800, 128, 16, 300, 2)
	f.Add(int64(99), 4, 50, 1<<10, uint8(0), 64, 4, 2, 64, 2.0, 4, 64, 100, 50, 8, 2, 0, 0)
	f.Add(int64(-3), 3, 10, 64, uint8(1), 1, 1, 1, 1, 1.1, 1, 2, 1, 1, 1, 1, 5, 1)

	f.Fuzz(func(t *testing.T, seed int64, rounds, cps, pps int, kind uint8,
		initial, step, min, max int, zipfS float64, sizeMin, sizeMax int,
		fast, slow, table, perRound int, attackCPS, attackStart int) {
		// Bound the work per input, not the validity: oversized knobs are
		// clamped into ranges that keep one fuzz iteration cheap, then the
		// config goes through the real Validate like any user input.
		clamp := func(v, lo, hi int) int {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		cfg := Config{
			Scenario: Scenario{
				Name: "fuzz",
				CPS:  clamp(cps, -10, 2000),
				PPS:  clamp(pps, -10, 1<<16),
				Sizes: SizeDist{
					Kind: SizeZipf,
					S:    zipfS,
					Min:  clamp(sizeMin, -4, 64),
					Max:  clamp(sizeMax, -4, 2048),
				},
				AttackCPS:   clamp(attackCPS, -10, 2000),
				AttackStart: clamp(attackStart, -10, 32),
			},
			Capacity: Capacities{
				FastPathPPS:     clamp(fast, -10, 1<<16),
				SlowPathPPS:     clamp(slow, -10, 1<<16),
				OffloadTable:    clamp(table, -10, 1<<12),
				OffloadPerRound: clamp(perRound, -10, 1<<10),
			},
			Policy: PolicyConfig{
				Kind:    PolicyKind(kind % 4), // includes one invalid kind
				Initial: clamp(initial, -10, 4096),
				Step:    clamp(step, -10, 512),
				Min:     clamp(min, -10, 4096),
				Max:     clamp(max, -10, 4096),
			},
			Rounds: clamp(rounds, -2, 24),
			Seed:   seed,
		}
		if kind%4 == 2 {
			// Exercise the bimodal family on a slice of the input space.
			cfg.Scenario.Sizes = SizeDist{
				Kind:         SizeBimodal,
				ElephantSize: clamp(sizeMax, -4, 2048),
				MouseMax:     clamp(sizeMin, -4, 64),
				ElephantFrac: zipfS - float64(int(zipfS)),
			}
		}
		traj, err := Simulate(cfg)
		if err != nil {
			if cfg.Validate() == nil {
				t.Fatalf("Simulate rejected a config Validate accepts: %v", err)
			}
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Simulate accepted a config Validate rejects: %v", err)
		}
		checkInvariants(t, cfg, traj)
	})
}
