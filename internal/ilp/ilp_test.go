package ilp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveSimple(t *testing.T) {
	// Two items, two bins; both prefer bin 0 but it only fits one.
	p := &Problem{
		Cost: [][]float64{{1, 10}, {2, 4}},
		Size: []int{5, 5},
		Cap:  []int{5, 10},
	}
	a, cost, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5 { // item0->bin0 (1), item1->bin1 (4)
		t.Fatalf("cost = %f, want 5 (assign %v)", cost, a)
	}
	if a[0] != 0 || a[1] != 1 {
		t.Errorf("assignment = %v", a)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		Cost: [][]float64{{1, 1}},
		Size: []int{100},
		Cap:  []int{5, 50},
	}
	if _, _, err := Solve(p); err == nil {
		t.Error("infeasible instance solved")
	}
}

func TestSolveForbiddenPairs(t *testing.T) {
	inf := math.Inf(1)
	p := &Problem{
		Cost: [][]float64{{inf, 3}, {1, inf}},
		Size: []int{1, 1},
		Cap:  []int{10, 10},
	}
	a, cost, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 1 || a[1] != 0 || cost != 4 {
		t.Errorf("assign %v cost %f", a, cost)
	}
}

func TestSolveEmpty(t *testing.T) {
	a, cost, err := Solve(&Problem{Cap: []int{1}})
	if err != nil || len(a) != 0 || cost != 0 {
		t.Errorf("empty solve: %v %f %v", a, cost, err)
	}
}

func TestValidate(t *testing.T) {
	p := &Problem{Cost: [][]float64{{1}}, Size: []int{1, 2}, Cap: []int{3}}
	if err := p.Validate(); err == nil {
		t.Error("row/item mismatch accepted")
	}
	p = &Problem{Cost: [][]float64{{1, 2}}, Size: []int{1}, Cap: []int{3}}
	if err := p.Validate(); err == nil {
		t.Error("cost width mismatch accepted")
	}
	p = &Problem{Cost: [][]float64{{1}}, Size: []int{-1}, Cap: []int{3}}
	if err := p.Validate(); err == nil {
		t.Error("negative size accepted")
	}
}

// TestSolveMatchesExhaustive cross-checks branch-and-bound against brute
// force on random instances shaped like real placement problems.
func TestSolveMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		bins := 2 + rng.Intn(3)
		p := &Problem{Cap: make([]int, bins)}
		for j := range p.Cap {
			p.Cap[j] = 5 + rng.Intn(30)
		}
		for i := 0; i < n; i++ {
			row := make([]float64, bins)
			for j := range row {
				row[j] = float64(1 + rng.Intn(100))
			}
			p.Cost = append(p.Cost, row)
			p.Size = append(p.Size, 1+rng.Intn(12))
		}
		a1, c1, err1 := Solve(p)
		a2, c2, err2 := Enumerate(p, 1<<20)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: feasibility disagrees: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(c1-c2) > 1e-9 {
			t.Fatalf("trial %d: cost %f (bb %v) != %f (exh %v)", trial, c1, a1, c2, a2)
		}
		// Verify feasibility of the returned assignment.
		left := append([]int(nil), p.Cap...)
		for i, j := range a1 {
			left[j] -= p.Size[i]
			if left[j] < 0 {
				t.Fatalf("trial %d: assignment violates capacity", trial)
			}
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	p := &Problem{
		Cost: make([][]float64, 30),
		Size: make([]int, 30),
		Cap:  []int{1000, 1000, 1000, 1000},
	}
	for i := range p.Cost {
		p.Cost[i] = []float64{1, 2, 3, 4}
		p.Size[i] = 1
	}
	if _, _, err := Enumerate(p, 1000); err == nil {
		t.Error("enumerate accepted an oversized instance")
	}
}
