package click

import (
	"fmt"
	"math/rand"

	"clara/internal/interp"
)

// GenRoutes deterministically generates n LPM rules: a default-ish /8 for
// the 10/8 server space plus more-specific /16s and /24s, so generated
// workloads (which target 10.0.0.0/24 by default) exercise multiple match
// lengths.
func GenRoutes(n int, seed int64) []interp.Route {
	rng := rand.New(rand.NewSource(seed))
	routes := []interp.Route{{Prefix: 0x0A000000, Len: 8, Port: 1}}
	for len(routes) < n {
		var r interp.Route
		switch rng.Intn(3) {
		case 0:
			r = interp.Route{Prefix: 0x0A000000 | uint32(rng.Intn(256))<<16, Len: 16}
		case 1:
			r = interp.Route{Prefix: 0x0A000000 | uint32(rng.Intn(1<<16))<<8, Len: 24}
		default:
			r = interp.Route{Prefix: 0x0A000000 | uint32(rng.Intn(1<<24)), Len: 32}
		}
		r.Port = uint32(rng.Intn(15))
		routes = append(routes, r)
	}
	return routes[:n]
}

// InstallTrie builds a binary trie from routes into the three global
// arrays (left, right, port). Ports are stored +1 so 0 can mean "no route
// at this node".
func InstallTrie(m *interp.Machine, routes []interp.Route, left, right, port string, capacity int) error {
	l := make([]uint64, capacity)
	r := make([]uint64, capacity)
	p := make([]uint64, capacity)
	next := 1 // node 0 is the root
	for _, rt := range routes {
		node := 0
		for d := 0; d < rt.Len; d++ {
			bit := (rt.Prefix >> (31 - d)) & 1
			arr := l
			if bit == 1 {
				arr = r
			}
			if arr[node] == 0 {
				if next >= capacity {
					return fmt.Errorf("click: trie overflow (%d nodes)", capacity)
				}
				arr[node] = uint64(next)
				next++
			}
			node = int(arr[node])
		}
		p[node] = uint64(rt.Port) + 1
	}
	if err := m.SetArray(left, l); err != nil {
		return err
	}
	if err := m.SetArray(right, r); err != nil {
		return err
	}
	return m.SetArray(port, p)
}

// DefaultRouteCount is the rule-table size installed by iplookup's default
// setup (Figure 10(c) sweeps this).
const DefaultRouteCount = 256

func setupIPLookupTrie(m *interp.Machine) error {
	return InstallTrie(m, Get("iplookup").Routes, "trie_left", "trie_right", "trie_port", 65536)
}

func setupUDPCount(m *interp.Machine) error {
	// Port classes: 0 default, 1 monitored, 2 blocked.
	classes := make([]uint64, 256)
	for _, blocked := range []int{19, 111, 137} { // chargen, portmap, netbios
		classes[blocked] = 2
	}
	for _, mon := range []int{53, 123, 161} {
		classes[mon] = 1
	}
	return m.SetArray("port_class", classes)
}

func setupFirewall(m *interp.Machine) error {
	// Seed the deny list with a deterministic blocked set.
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 512; i++ {
		addr := 0xC0A80000 | uint32(rng.Intn(1<<16))
		if err := m.MapSeed("deny", uint64(addr), 1); err != nil {
			return err
		}
	}
	return nil
}

func setupIPClassifier(m *interp.Machine) error {
	pfx := make([]uint64, 1024)
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 128; i++ {
		pfx[rng.Intn(1024)] = uint64(1 + rng.Intn(8))
	}
	return m.SetArray("pfx_table", pfx)
}

func init() {
	IPLookup.Routes = GenRoutes(DefaultRouteCount, 41)
	IPLookupAccel.Routes = IPLookup.Routes
}

func setupECMP(m *interp.Machine) error {
	// Twelve of sixteen backends start healthy.
	h := make([]uint64, 16)
	for i := 0; i < 12; i++ {
		h[i] = 1
	}
	return m.SetArray("healthy", h)
}
