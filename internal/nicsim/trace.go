package nicsim

import (
	"fmt"

	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/isa"
	"clara/internal/niccc"
	"clara/internal/traffic"
)

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds.
const (
	EvCompute EventKind = iota // core-local cycles
	EvMem                      // shared-memory access
	EvEngine                   // hardware engine operation
)

// Event is one costed step of a packet's processing.
type Event struct {
	Kind   EventKind
	Server uint8   // contention server (srvNone for core-local)
	Cycles int32   // compute cycles, or access/engine latency
	Occupy float32 // server occupancy
}

// TraceSet is the costed execution trace of one NF over one workload,
// replayable under any core count.
type TraceSet struct {
	Name   string
	Events []Event
	Off    []int32 // packet i spans Events[Off[i]:Off[i+1]]

	// OfferedMpps caps the arrival rate (0 = saturate the ingress).
	OfferedMpps float64

	// Aggregate statistics from generation.
	Sent, Dropped  int
	FlowCacheHits  int
	MemAccesses    [isa.NumRegions]int
	EMEMHits       int
	EMEMMisses     int
	ComputeCycles  int64
	CoalesceMerged int // scalar accesses absorbed into fetched packs
}

// Packets returns the number of traced packets.
func (ts *TraceSet) Packets() int { return len(ts.Off) - 1 }

// globalInfo is the precomputed per-global metadata used in the hot path.
type globalInfo struct {
	region   isa.Region
	server   uint8
	elemSize int
	pack     int // -1 if not packed
	id       uint64
}

// tracer accumulates events for one packet at a time.
type tracer struct {
	params Params
	b      *Built
	ts     *TraceSet
	info   map[string]*globalInfo
	pkt    *globalInfo // pseudo-global for packet buffer accesses

	// EMEM cache (direct-mapped, shared; evaluated in arrival order).
	cacheTags []uint64

	// Flow cache.
	flowTags []uint64

	// Per-packet coalescing residency.
	fetched  []bool
	dirty    []bool
	packInfo []*globalInfo // representative member per pack

	err error
}

func newTracer(params Params, b *Built, ts *TraceSet) *tracer {
	tr := &tracer{params: params, b: b, ts: ts, info: map[string]*globalInfo{}}
	for i, g := range b.NF.Mod.Globals {
		gi := &globalInfo{
			region:   b.place[i],
			server:   serverOf(b.place[i]),
			elemSize: g.Elem.Size(),
			pack:     -1,
			id:       uint64(i+1) << 44,
		}
		if g.Kind == ir.GMap {
			gi.elemSize = g.Key.Size() + g.Elem.Size() + 1
		}
		if p, ok := b.packOf[g.Name]; ok {
			gi.pack = p
		}
		tr.info[g.Name] = gi
	}
	tr.pkt = &globalInfo{region: isa.CTM, server: srvCTM, elemSize: 1, pack: -1, id: 0}
	if params.EMEMCacheLines > 0 {
		tr.cacheTags = make([]uint64, params.EMEMCacheLines)
	}
	if params.FlowCacheEntries > 0 {
		tr.flowTags = make([]uint64, params.FlowCacheEntries)
	}
	tr.fetched = make([]bool, len(b.packSz))
	tr.dirty = make([]bool, len(b.packSz))
	tr.packInfo = make([]*globalInfo, len(b.packSz))
	for pi, members := range b.NF.Packs {
		if len(members) > 0 {
			tr.packInfo[pi] = tr.info[members[0]]
		} else {
			tr.packInfo[pi] = tr.pkt
		}
	}
	return tr
}

func (tr *tracer) emit(e Event) { tr.ts.Events = append(tr.ts.Events, e) }

func (tr *tracer) compute(cycles int) {
	if cycles <= 0 {
		return
	}
	tr.ts.ComputeCycles += int64(cycles)
	// Merge with a preceding compute event of the same packet if possible.
	n := len(tr.ts.Events)
	lastOff := int(tr.ts.Off[len(tr.ts.Off)-1])
	if n > lastOff && tr.ts.Events[n-1].Kind == EvCompute {
		tr.ts.Events[n-1].Cycles += int32(cycles)
		return
	}
	tr.emit(Event{Kind: EvCompute, Server: srvNone, Cycles: int32(cycles)})
}

// mem records one stateful access of size bytes at element addr of g.
func (tr *tracer) mem(g *globalInfo, addr uint64, size int, write bool) {
	lat := tr.params.Regions[g.region].Latency
	occ := tr.params.Regions[g.region].Issue
	srv := g.server
	if g.region == isa.EMEM && tr.cacheTags != nil {
		line := g.id | (addr*uint64(g.elemSize))/64
		slot := (line * 0x9E3779B97F4A7C15 >> 33) % uint64(len(tr.cacheTags))
		if tr.cacheTags[slot] == line {
			tr.ts.EMEMHits++
			lat = tr.params.EMEMCacheHitLat
			occ = tr.params.EMEMCacheIssue
		} else {
			tr.ts.EMEMMisses++
			tr.cacheTags[slot] = line
		}
	}
	// Wide accesses occupy the server proportionally (32B per beat).
	if size > 32 {
		occ *= float64(size) / 32
	}
	tr.ts.MemAccesses[g.region]++
	tr.emit(Event{Kind: EvMem, Server: srv, Cycles: int32(lat), Occupy: float32(occ)})
}

// state handles an OnState access, applying the coalescing plan for packed
// scalars: the first touch of a pack fetches the whole pack in one access;
// later touches are register hits; dirty packs write back once at packet
// end.
func (tr *tracer) state(global string, write bool, addr uint64) {
	g, ok := tr.info[global]
	if !ok {
		tr.err = fmt.Errorf("nicsim: access to unknown global %q", global)
		return
	}
	if g.pack >= 0 {
		if write {
			tr.dirty[g.pack] = true
		}
		if tr.fetched[g.pack] {
			tr.ts.CoalesceMerged++
			return
		}
		tr.fetched[g.pack] = true
		tr.mem(g, 0, tr.b.packSz[g.pack], false)
		return
	}
	tr.mem(g, addr, g.elemSize, write)
}

func (tr *tracer) engine(srv uint8, lat int, ep EngineParams) {
	tr.emit(Event{Kind: EvEngine, Server: srv, Cycles: int32(lat), Occupy: float32(ep.Issue)})
}

// api expands a framework API call into cost events. probes carries the
// dynamic work reported by the interpreter (map slot probes, bytes hashed).
func (tr *tracer) api(name, global string, probes int, addr uint64) {
	accel := tr.b.NF.Accel
	switch name {
	case "pkt_csum_update":
		if accel.CsumEngine {
			p := niccc.Library["csum_hw"]
			tr.compute(p.Cycles)
			tr.engine(srvCsum, tr.params.Csum.Latency, tr.params.Csum)
		} else {
			// Software loop: cost scales with the bytes summed (probes).
			tr.compute(240 + 4*probes)
			for i := 0; i < probes/32; i++ {
				tr.mem(tr.pkt, uint64(i), 32, false)
			}
		}
		return
	case "crc32_hw":
		if accel.CRCEngine {
			p := niccc.Library["crc32_hw"]
			tr.compute(p.Cycles)
			tr.engine(srvCrc, tr.params.Crc.Latency+probes/8, tr.params.Crc)
		} else {
			tr.compute(30 + 6*probes)
			for i := 0; i < probes/32; i++ {
				tr.mem(tr.pkt, uint64(i), 32, false)
			}
		}
		return
	case "lpm_hw":
		if accel.LPMEngine {
			p := niccc.Library["lpm_hw"]
			tr.compute(p.Cycles)
			tr.engine(srvLpm, tr.params.Lpm.Latency, tr.params.Lpm)
		} else {
			p := niccc.SoftwareFallbacks["lpm_sw"]
			tr.compute(p.Cycles)
		}
		return
	case "hash32":
		p := niccc.Library["hash32"]
		tr.compute(p.Cycles)
		tr.engine(srvHash, tr.params.Hash.Latency, tr.params.Hash)
		return
	}

	p, ok := niccc.Library[name]
	if !ok {
		tr.err = fmt.Errorf("nicsim: API %q has no library profile", name)
		return
	}
	tr.compute(p.Cycles)
	for i := 0; i < p.PayloadReads; i++ {
		tr.mem(tr.pkt, addr+uint64(i), 32, false)
	}
	if p.PerProbeBytes > 0 && global != "" {
		g, ok := tr.info[global]
		if !ok {
			tr.err = fmt.Errorf("nicsim: map API on unknown global %q", global)
			return
		}
		for i := 0; i < probes; i++ {
			tr.mem(g, addr+uint64(i), p.PerProbeBytes, false)
		}
	}
}

// GenTraces executes n packets of workload wl through the built NF and
// returns the replayable trace set.
func GenTraces(b *Built, wl traffic.Spec, n int, params Params) (*TraceSet, error) {
	gen, err := traffic.Replay(wl, n)
	if err != nil {
		return nil, err
	}
	offered := 0.0
	if wl.RatePps > 0 {
		offered = wl.RatePps / 1e6
	}
	return GenTracesSource(b, gen, n, offered, params)
}

// GenTracesSource is GenTraces over any packet source (e.g. a recorded
// trace Replayer). offeredMpps caps the replayed arrival rate (0 =
// saturate the ingress).
func GenTracesSource(b *Built, gen traffic.Source, n int, offeredMpps float64, params Params) (*TraceSet, error) {
	ts := &TraceSet{Name: b.NF.Name, Off: make([]int32, 1, n+1), OfferedMpps: offeredMpps}
	tr := newTracer(params, b, ts)

	prog := b.Prog
	b.Machine.SetHooks(interp.Hooks{
		OnBlock: func(bi int) {
			blk := &prog.Blocks[bi]
			if blk.ComputeCycles > 0 {
				tr.compute(blk.ComputeCycles)
			}
		},
		OnState: func(g string, store bool, addr uint64, _ int) {
			tr.state(g, store, addr)
		},
		OnAPI: func(name, g string, probes int, addr uint64, _ int) {
			tr.api(name, g, probes, addr)
		},
	})

	for i := 0; i < n; i++ {
		p := gen.Next()

		// Ingress flow cache: hits bypass the cores entirely.
		if b.NF.Accel.FlowCache && tr.flowTags != nil {
			key := p.FlowKey() | 1<<63
			slot := (key * 0x9E3779B97F4A7C15 >> 33) % uint64(len(tr.flowTags))
			if tr.flowTags[slot] == key {
				ts.FlowCacheHits++
				ts.Sent++
				// Flow-cache hits are handled in the ingress pipeline and
				// never occupy a core: pure latency, no pipeline occupancy.
				tr.emit(Event{Kind: EvEngine, Server: srvNone, Cycles: int32(params.FlowCacheHitCycles)})
				ts.Off = append(ts.Off, int32(len(ts.Events)))
				continue
			}
			if err := runOne(b, tr, &p); err != nil {
				return nil, err
			}
			if !p.Dropped() {
				tr.flowTags[slot] = key
			}
		} else {
			if err := runOne(b, tr, &p); err != nil {
				return nil, err
			}
		}
		if p.Dropped() {
			ts.Dropped++
		} else {
			ts.Sent++
		}
		ts.Off = append(ts.Off, int32(len(ts.Events)))
	}
	return ts, nil
}

func runOne(b *Built, tr *tracer, p *traffic.Packet) error {
	if err := b.Machine.RunPacket(p); err != nil {
		return fmt.Errorf("nicsim: %s: %w", b.NF.Name, err)
	}
	if tr.err != nil {
		return tr.err
	}
	// Write back dirty packs and reset per-packet coalescing state.
	for pi := range tr.fetched {
		if tr.dirty[pi] {
			tr.mem(tr.packInfo[pi], 0, tr.b.packSz[pi], true)
		}
		tr.fetched[pi] = false
		tr.dirty[pi] = false
	}
	return nil
}
