// Command clarabench regenerates the paper's evaluation: every table and
// figure of §5, printed in paper order.
//
// Usage:
//
//	clarabench                 # full scale (minutes)
//	clarabench -quick          # reduced scale (seconds)
//	clarabench -only figure12  # one experiment
//	clarabench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clara/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced training/packet scale")
		only  = flag.String("only", "", "run a single experiment by ID")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		seed  = flag.Int64("seed", 42, "global seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Quick = *quick
	cfg.Seed = *seed
	ctx := experiments.NewContext(cfg)

	run := experiments.All()
	if *only != "" {
		e := experiments.Get(*only)
		if e == nil {
			fmt.Fprintf(os.Stderr, "clarabench: unknown experiment %q (try -list)\n", *only)
			os.Exit(2)
		}
		run = []experiments.Experiment{*e}
	}

	for _, e := range run {
		start := time.Now()
		t, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clarabench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
