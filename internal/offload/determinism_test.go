package offload

import (
	"runtime"
	"testing"
)

// TestDeterminismBitIdentical: the determinism contract's first half —
// the same config produces byte-identical NDJSON on repeated runs in
// the same process. Runs under -race in `make race`, so any accidental
// shared mutable state would also trip the detector.
func TestDeterminismBitIdentical(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, kind := range []PolicyKind{PolicyDynamic, PolicyInsight} {
			cfg := goldenConfig(sc, kind)
			a, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.NDJSON() != b.NDJSON() {
				t.Errorf("%s/%s: two runs of the same config diverged", sc.Name, kind)
			}
		}
	}
}

// TestDeterminismAcrossGOMAXPROCS: the contract's second half — the
// trajectory does not depend on the scheduler's parallelism. The
// simulation is single-goroutine by design; this pins that property
// so a future "parallelize the flow loop" change cannot silently break
// the golden files.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	cfg := goldenConfig(SYNFloodScenario(), PolicyInsight)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	one, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(4)
	four, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.NDJSON() != four.NDJSON() {
		t.Error("trajectory differs between GOMAXPROCS=1 and GOMAXPROCS=4")
	}
}

// TestRoundSeedDecorrelated pins the splitmix64 derivation: distinct
// (seed, round) pairs map to distinct PRNG seeds, and the mapping is a
// pure function (the foundation the goldens stand on).
func TestRoundSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for _, seed := range []int64{0, 1, 7, -5} {
		for round := 0; round < 64; round++ {
			s := roundSeed(seed, round)
			if seen[s] {
				t.Fatalf("roundSeed collision at seed=%d round=%d", seed, round)
			}
			seen[s] = true
			if s != roundSeed(seed, round) {
				t.Fatalf("roundSeed not pure at seed=%d round=%d", seed, round)
			}
		}
	}
}
