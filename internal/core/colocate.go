package core

import (
	"math/rand"

	"clara/internal/lang"
	"clara/internal/ml"
	"clara/internal/nicsim"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// This file implements NF colocation analysis (§4.5): pairwise ranking of
// colocation friendliness with a LambdaMART-style gradient-boosted ranker.
// Friendliness ground truth comes from colocated vs exclusive simulator
// runs; features are the paper's: per-NF arithmetic intensity, compute
// instruction counts, and the colocated pair's intensity ratio.

// RankObjective selects the training objective (§5.7 trains all four).
type RankObjective uint8

// Objectives.
const (
	ObjThroughputTotal RankObjective = iota
	ObjThroughputAvg
	ObjLatencyTotal
	ObjLatencyAvg
)

func (o RankObjective) String() string {
	switch o {
	case ObjThroughputTotal:
		return "Th.Tot"
	case ObjThroughputAvg:
		return "Th.Avg"
	case ObjLatencyTotal:
		return "Lat.Tot"
	case ObjLatencyAvg:
		return "Lat.Avg"
	default:
		return "?"
	}
}

// ColocNF is one candidate NF prepared for colocation analysis.
type ColocNF struct {
	Name    string
	Traces  *nicsim.TraceSet
	Solo    nicsim.Result // exclusive run on half the NIC's cores
	Compute float64       // predicted compute instructions (§3)
	Mem     float64       // stateful accesses per packet
}

// AI returns the arithmetic intensity (compute per stateful access).
func (c *ColocNF) AI() float64 { return c.Compute / (c.Mem + 1) }

// PairFeatures builds the §4.5 feature vector for a colocation pair.
func PairFeatures(a, b *ColocNF) []float64 {
	aiA, aiB := a.AI(), b.AI()
	ratio := aiA / (aiB + 1e-9)
	if ratio > 1 {
		ratio = 1 / ratio // order-invariant
	}
	return []float64{
		aiA + aiB,
		aiA * aiB,
		a.Compute + b.Compute,
		a.Mem + b.Mem,
		ratio,
		minF(aiA, aiB),
		maxF(aiA, aiB),
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// PairOutcome is a measured colocation of two NFs.
type PairOutcome struct {
	A, B     int // indices into the candidate set
	Features []float64
	// Friendliness per objective: higher is friendlier.
	Friendliness [4]float64
}

// PrepareColocNF builds traces and the exclusive-use baseline for one NF.
func PrepareColocNF(nf *nicsim.NF, wl traffic.Spec, packets, cores int, params nicsim.Params, pred *Predictor) (*ColocNF, error) {
	built, err := nf.Build(params)
	if err != nil {
		return nil, err
	}
	ts, err := nicsim.GenTraces(built, wl, packets, params)
	if err != nil {
		return nil, err
	}
	solo, err := nicsim.Simulate(params, cores, ts)
	if err != nil {
		return nil, err
	}
	mp, err := pred.PredictModule(nf.Mod, nf.Accel)
	if err != nil {
		return nil, err
	}
	var mem float64
	for r, n := range ts.MemAccesses {
		_ = r
		mem += float64(n)
	}
	mem /= float64(ts.Packets())
	return &ColocNF{
		Name: nf.Name, Traces: ts, Solo: solo,
		Compute: mp.TotalCompute + float64(mp.TotalAPI), Mem: mem,
	}, nil
}

// MeasurePair simulates a colocation and computes all four friendliness
// objectives (collective metrics normalized by exclusive-use runs, §5.7).
func MeasurePair(a, b *ColocNF, cores int, params nicsim.Params) (PairOutcome, error) {
	rs, err := nicsim.SimulateColocation(params, []nicsim.Part{
		{TS: a.Traces, Cores: cores}, {TS: b.Traces, Cores: cores},
	})
	if err != nil {
		return PairOutcome{}, err
	}
	coA, coB := rs[0], rs[1]
	out := PairOutcome{Features: PairFeatures(a, b)}
	out.Friendliness[ObjThroughputTotal] =
		(coA.ThroughputMpps + coB.ThroughputMpps) / (a.Solo.ThroughputMpps + b.Solo.ThroughputMpps + 1e-9)
	out.Friendliness[ObjThroughputAvg] =
		(coA.ThroughputMpps/(a.Solo.ThroughputMpps+1e-9) + coB.ThroughputMpps/(b.Solo.ThroughputMpps+1e-9)) / 2
	out.Friendliness[ObjLatencyTotal] =
		(a.Solo.AvgLatencyUs + b.Solo.AvgLatencyUs) / (coA.AvgLatencyUs + coB.AvgLatencyUs + 1e-9)
	out.Friendliness[ObjLatencyAvg] =
		(a.Solo.AvgLatencyUs/(coA.AvgLatencyUs+1e-9) + b.Solo.AvgLatencyUs/(coB.AvgLatencyUs+1e-9)) / 2
	return out, nil
}

// ColocConfig controls ranker training.
type ColocConfig struct {
	TrainNFs  int
	PairsMax  int
	Packets   int
	CoresEach int
	Workload  traffic.Spec
	Params    nicsim.Params
	Seed      int64
}

func (c ColocConfig) norm() ColocConfig {
	if c.TrainNFs == 0 {
		c.TrainNFs = 20
	}
	if c.PairsMax == 0 {
		c.PairsMax = 110
	}
	if c.Packets == 0 {
		c.Packets = 1200
	}
	if c.CoresEach == 0 {
		c.CoresEach = 24
	}
	if c.Workload.NumFlows == 0 {
		c.Workload = traffic.MediumMix
	}
	if c.Params.NumCores == 0 {
		c.Params = nicsim.DefaultParams()
	}
	return c
}

// Colocator is the trained colocation ranker.
type Colocator struct {
	cfg    ColocConfig
	ranker *ml.Ranker
	// Outcomes retains the training measurements for evaluation.
	Outcomes []PairOutcome
}

// TrainColocator synthesizes candidate NFs, measures random colocations,
// and fits a pairwise ranker on the chosen objective.
func TrainColocator(cfg ColocConfig, pred *Predictor, obj RankObjective) (*Colocator, error) {
	cfg = cfg.norm()
	rng := rand.New(rand.NewSource(cfg.Seed + 71))

	var cands []*ColocNF
	for i := 0; i < cfg.TrainNFs; i++ {
		mod, _, err := synth.GenerateModule(synth.Config{
			Profile:   synth.UniformProfile(),
			Seed:      cfg.Seed + 1700 + int64(i)*17,
			StateBias: 0.25 + 4*float64(i%6)/5,
		}, lang.Compile)
		if err != nil {
			return nil, err
		}
		nf := &nicsim.NF{Name: mod.Name, Mod: mod}
		c, err := PrepareColocNF(nf, cfg.Workload, cfg.Packets, cfg.CoresEach, cfg.Params, pred)
		if err != nil {
			return nil, err
		}
		cands = append(cands, c)
	}

	outcomes, err := samplePairs(cands, cfg, rng)
	if err != nil {
		return nil, err
	}
	co := &Colocator{cfg: cfg, Outcomes: outcomes}
	co.ranker = fitRanker(outcomes, obj, cfg.Seed)
	return co, nil
}

func samplePairs(cands []*ColocNF, cfg ColocConfig, rng *rand.Rand) ([]PairOutcome, error) {
	n := len(cands)
	var all [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, [2]int{i, j})
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if len(all) > cfg.PairsMax {
		all = all[:cfg.PairsMax]
	}
	var outcomes []PairOutcome
	for _, p := range all {
		o, err := MeasurePair(cands[p[0]], cands[p[1]], cfg.CoresEach, cfg.Params)
		if err != nil {
			return nil, err
		}
		o.A, o.B = p[0], p[1]
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

func fitRanker(outcomes []PairOutcome, obj RankObjective, seed int64) *ml.Ranker {
	X := make([][]float64, len(outcomes))
	var prefs []ml.PrefPair
	for i, o := range outcomes {
		X[i] = o.Features
	}
	for i := range outcomes {
		for j := range outcomes {
			if i == j {
				continue
			}
			if outcomes[i].Friendliness[obj] > outcomes[j].Friendliness[obj]+0.01 {
				prefs = append(prefs, ml.PrefPair{Better: i, Worse: j})
			}
		}
	}
	return ml.FitRanker(X, prefs, ml.RankConfig{Trees: 140, MaxDepth: 4, Seed: seed})
}

// Retrain refits the ranker on a different objective using the cached
// measurements.
func (co *Colocator) Retrain(obj RankObjective) {
	co.ranker = fitRanker(co.Outcomes, obj, co.cfg.Seed)
}

// Score ranks one candidate pair (higher = friendlier).
func (co *Colocator) Score(a, b *ColocNF) float64 {
	return co.ranker.Score(PairFeatures(a, b))
}

// RankPairs scores all pairs of the candidate set and returns pair indices
// ordered best-first.
func (co *Colocator) RankPairs(cands []*ColocNF) [][2]int {
	type sp struct {
		p [2]int
		s float64
	}
	var all []sp
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			all = append(all, sp{[2]int{i, j}, co.Score(cands[i], cands[j])})
		}
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].s > all[j-1].s ||
			(all[j].s == all[j-1].s && less(all[j].p, all[j-1].p))); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	out := make([][2]int, len(all))
	for i, s := range all {
		out[i] = s.p
	}
	return out
}

func less(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
