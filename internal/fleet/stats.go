package fleet

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// histBounds are the upper bounds of the per-analysis wall-time
// histogram buckets; the final implicit bucket is +Inf.
var histBounds = []time.Duration{
	500 * time.Microsecond,
	time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// Histogram is a snapshot of the analysis wall-time distribution.
type Histogram struct {
	// Bounds[i] is the inclusive upper bound of Counts[i];
	// Counts[len(Bounds)] is the overflow bucket.
	Bounds []time.Duration
	Counts []int64
	Min    time.Duration
	Max    time.Duration
	Sum    time.Duration
	N      int64
}

// Mean returns the mean analysis time.
func (h Histogram) Mean() time.Duration {
	if h.N == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.N)
}

// String renders the non-empty buckets compactly.
func (h Histogram) String() string {
	if h.N == 0 {
		return "no analyses"
	}
	var parts []string
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		label := "+Inf"
		if i < len(h.Bounds) {
			label = "≤" + h.Bounds[i].String()
		}
		parts = append(parts, fmt.Sprintf("%s:%d", label, c))
	}
	return fmt.Sprintf("n=%d min=%s mean=%s max=%s [%s]",
		h.N, h.Min, h.Mean(), h.Max, strings.Join(parts, " "))
}

// Stats is a consistent snapshot of a fleet's lifetime metrics.
type Stats struct {
	JobsCompleted int64
	JobsFailed    int64
	CacheHits     int64
	CacheMisses   int64
	// Lint findings across all completed jobs, by severity.
	LintErrors   int64
	LintWarnings int64
	LintInfos    int64
	// Analyses is the per-analysis wall-time distribution.
	Analyses Histogram
	// Wall is the cumulative wall time of every Run call.
	Wall time.Duration
}

// HitRate returns cache hits over prediction lookups, in [0,1].
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// String renders the snapshot as the CLI's stats footer.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs: %d completed, %d failed\n", s.JobsCompleted, s.JobsFailed)
	fmt.Fprintf(&b, "prediction cache: %d hits, %d misses (%.0f%% hit rate)\n",
		s.CacheHits, s.CacheMisses, 100*s.HitRate())
	fmt.Fprintf(&b, "lint findings: %d errors, %d warnings, %d notes\n",
		s.LintErrors, s.LintWarnings, s.LintInfos)
	fmt.Fprintf(&b, "analysis time: %s\n", s.Analyses)
	fmt.Fprintf(&b, "batch wall time: %s\n", s.Wall)
	return b.String()
}

// collector accumulates metrics under one mutex. Analysis latencies are
// a few milliseconds, so a single lock per completed job is invisible
// next to the work it measures and keeps snapshots trivially consistent.
type collector struct {
	mu     sync.Mutex
	s      Stats
	counts []int64
}

func newCollector() *collector {
	return &collector{counts: make([]int64, len(histBounds)+1)}
}

func (c *collector) record(r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.Err != nil {
		c.s.JobsFailed++
	} else {
		c.s.JobsCompleted++
	}
	if r.CacheHit {
		c.s.CacheHits++
	} else {
		c.s.CacheMisses++
	}
	c.s.LintErrors += int64(r.Lint.Errors)
	c.s.LintWarnings += int64(r.Lint.Warnings)
	c.s.LintInfos += int64(r.Lint.Infos)
	h := &c.s.Analyses
	if h.N == 0 || r.Elapsed < h.Min {
		h.Min = r.Elapsed
	}
	if r.Elapsed > h.Max {
		h.Max = r.Elapsed
	}
	h.Sum += r.Elapsed
	h.N++
	c.counts[bucket(r.Elapsed)]++
}

func bucket(d time.Duration) int {
	for i, b := range histBounds {
		if d <= b {
			return i
		}
	}
	return len(histBounds)
}

func (c *collector) addWall(d time.Duration) {
	c.mu.Lock()
	c.s.Wall += d
	c.mu.Unlock()
}

func (c *collector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.s
	s.Analyses.Bounds = append([]time.Duration(nil), histBounds...)
	s.Analyses.Counts = append([]int64(nil), c.counts...)
	return s
}
