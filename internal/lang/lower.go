package lang

import (
	"fmt"
	"strings"

	"clara/internal/ir"
)

// Compile parses and lowers NFC source to an IR module. Mirroring the
// paper's program-preparation step (§3.1): user-defined subroutines that do
// not depend on the host framework are inlined into the packet handler, and
// local variables remain explicit stack-slot traffic (optimizations are the
// NIC compiler's job, not the frontend's).
func Compile(name, src string) (*ir.Module, error) {
	f, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	return Lower(f)
}

// MustCompile is Compile for trusted, in-tree element sources.
func MustCompile(name, src string) *ir.Module {
	m, err := Compile(name, src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustCompile(%s): %v", name, err))
	}
	return m
}

// Lower type-checks a parsed file and lowers it to IR.
func Lower(f *File) (*ir.Module, error) {
	lo := &lowerer{
		file:    f,
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*ir.Global),
	}
	m := &ir.Module{Name: f.Name}
	for _, g := range f.Globals {
		if lo.globals[g.Name] != nil {
			return nil, fmt.Errorf("%s:%d: global %q redeclared", f.Name, g.Line, g.Name)
		}
		if g.Kind != ir.GScalar && g.Len <= 0 {
			return nil, fmt.Errorf("%s:%d: global %q must have positive capacity", f.Name, g.Line, g.Name)
		}
		ig := &ir.Global{Name: g.Name, Kind: g.Kind, Elem: g.Elem, Key: g.Key, Len: g.Len}
		m.Globals = append(m.Globals, ig)
		lo.globals[g.Name] = ig
	}
	var handler *FuncDecl
	for _, fn := range f.Funcs {
		if lo.funcs[fn.Name] != nil {
			return nil, fmt.Errorf("%s:%d: func %q redeclared", f.Name, fn.Line, fn.Name)
		}
		if IsIntrinsic(fn.Name) {
			return nil, fmt.Errorf("%s:%d: func %q shadows a framework API", f.Name, fn.Line, fn.Name)
		}
		lo.funcs[fn.Name] = fn
		if fn.Name == ir.HandlerName {
			handler = fn
		}
	}
	if handler == nil {
		return nil, fmt.Errorf("%s: element has no %q function", f.Name, ir.HandlerName)
	}
	if len(handler.Params) != 0 || handler.Ret != ir.Void {
		return nil, fmt.Errorf("%s:%d: %q must be 'void %s()'", f.Name, handler.Line, ir.HandlerName, ir.HandlerName)
	}

	lo.b = ir.NewBuilder(ir.HandlerName, nil, ir.Void)
	lo.pushScope()
	if err := lo.lowerBlock(handler.Body); err != nil {
		return nil, err
	}
	lo.popScope()
	if !lo.b.Terminated() {
		lo.b.Ret(nil)
	}
	m.Funcs = append(m.Funcs, lo.b.F)
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("%s: internal error: lowered IR invalid: %w", f.Name, err)
	}
	return m, nil
}

type local struct {
	slot int
	ty   ir.Type
}

type loopCtx struct {
	cont *ir.Block // continue target
	exit *ir.Block // break target
}

type inlineCtx struct {
	fn      *FuncDecl
	retSlot int
	retTy   ir.Type
	exit    *ir.Block
}

type lowerer struct {
	file    *File
	funcs   map[string]*FuncDecl
	globals map[string]*ir.Global
	b       *ir.Builder
	scopes  []map[string]local
	loops   []loopCtx
	inlines []*inlineCtx
	nblk    int
}

func (lo *lowerer) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", lo.file.Name, line, fmt.Sprintf(format, args...))
}

// stmtPos returns the source position of a statement node.
func stmtPos(s Stmt) ir.Pos {
	switch st := s.(type) {
	case *VarDecl:
		return ir.Pos{Line: st.Line, Col: st.Col}
	case *AssignStmt:
		return ir.Pos{Line: st.Line, Col: st.Col}
	case *IfStmt:
		return ir.Pos{Line: st.Line, Col: st.Col}
	case *WhileStmt:
		return ir.Pos{Line: st.Line, Col: st.Col}
	case *ForStmt:
		return ir.Pos{Line: st.Line, Col: st.Col}
	case *ReturnStmt:
		return ir.Pos{Line: st.Line, Col: st.Col}
	case *BreakStmt:
		return ir.Pos{Line: st.Line, Col: st.Col}
	case *ContinueStmt:
		return ir.Pos{Line: st.Line, Col: st.Col}
	case *ExprStmt:
		return ir.Pos{Line: st.Line, Col: st.Col}
	}
	return ir.Pos{}
}

// exprPos returns the source position of an expression node.
func exprPos(e Expr) ir.Pos {
	switch x := e.(type) {
	case *IntLit:
		return ir.Pos{Line: x.Line, Col: x.Col}
	case *BoolLit:
		return ir.Pos{Line: x.Line, Col: x.Col}
	case *Ident:
		return ir.Pos{Line: x.Line, Col: x.Col}
	case *IndexExpr:
		return ir.Pos{Line: x.Line, Col: x.Col}
	case *CallExpr:
		return ir.Pos{Line: x.Line, Col: x.Col}
	case *CastExpr:
		return ir.Pos{Line: x.Line, Col: x.Col}
	case *UnaryExpr:
		return ir.Pos{Line: x.Line, Col: x.Col}
	case *BinaryExpr:
		return ir.Pos{Line: x.Line, Col: x.Col}
	}
	return ir.Pos{}
}

func (lo *lowerer) pushScope() { lo.scopes = append(lo.scopes, map[string]local{}) }
func (lo *lowerer) popScope()  { lo.scopes = lo.scopes[:len(lo.scopes)-1] }

func (lo *lowerer) lookup(name string) (local, bool) {
	for i := len(lo.scopes) - 1; i >= 0; i-- {
		if v, ok := lo.scopes[i][name]; ok {
			return v, true
		}
	}
	return local{}, false
}

func (lo *lowerer) declare(name string, ty ir.Type) local {
	v := local{slot: lo.b.NewSlot(), ty: ty}
	lo.scopes[len(lo.scopes)-1][name] = v
	return v
}

// newBlock appends a fresh block without moving the insertion point.
func (lo *lowerer) newBlock(kind string) *ir.Block {
	cur := lo.b.Current()
	lo.nblk++
	blk := lo.b.NewBlock(fmt.Sprintf("%s%d", kind, lo.nblk))
	lo.b.SetBlock(cur)
	return blk
}

func (lo *lowerer) lowerBlock(b *BlockStmt) error {
	lo.pushScope()
	defer lo.popScope()
	for _, s := range b.List {
		if lo.b.Terminated() {
			// Dead code after return/break; skip it (keeps lowering simple
			// and matches what -O0 compilers drop anyway).
			return nil
		}
		if err := lo.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) lowerStmt(s Stmt) error {
	if p := stmtPos(s); p.IsValid() {
		lo.b.At(p)
	}
	switch st := s.(type) {
	case *BlockStmt:
		return lo.lowerBlock(st)

	case *VarDecl:
		if _, exists := lo.scopes[len(lo.scopes)-1][st.Name]; exists {
			return lo.errf(st.Line, "variable %q redeclared", st.Name)
		}
		var init ir.Value
		if st.Init != nil {
			v, err := lo.lowerExpr(st.Init, st.Ty)
			if err != nil {
				return err
			}
			init = lo.convert(st.Ty, v)
		} else {
			init = ir.ConstVal(0, st.Ty)
		}
		v := lo.declare(st.Name, st.Ty)
		lo.b.LStore(v.slot, init)
		return nil

	case *AssignStmt:
		return lo.lowerAssign(st)

	case *IfStmt:
		cond, err := lo.lowerCond(st.Cond)
		if err != nil {
			return err
		}
		curr := lo.b.Current()
		thenB := lo.newBlock("then")
		lo.b.SetBlock(thenB)
		if err := lo.lowerBlock(st.Then); err != nil {
			return err
		}
		thenEnd := lo.b.Current()
		var elseB, elseEnd *ir.Block
		if st.Else != nil {
			elseB = lo.newBlock("else")
			lo.b.SetBlock(elseB)
			if err := lo.lowerBlock(st.Else); err != nil {
				return err
			}
			elseEnd = lo.b.Current()
		}
		join := lo.newBlock("join")
		lo.b.SetBlock(curr)
		lo.b.At(stmtPos(st)) // the branch belongs to the 'if' line
		if elseB != nil {
			lo.b.CondBr(cond, thenB, elseB)
		} else {
			lo.b.CondBr(cond, thenB, join)
		}
		if thenEnd.Terminator() == nil {
			lo.b.SetBlock(thenEnd)
			lo.b.Br(join)
		}
		if elseEnd != nil && elseEnd.Terminator() == nil {
			lo.b.SetBlock(elseEnd)
			lo.b.Br(join)
		}
		lo.b.SetBlock(join)
		return nil

	case *WhileStmt:
		return lo.lowerLoop(lo.newBlock("head"), st.Cond, nil, st.Body)

	case *ForStmt:
		lo.pushScope()
		defer lo.popScope()
		if st.Init != nil {
			if err := lo.lowerStmt(st.Init); err != nil {
				return err
			}
		}
		return lo.lowerLoop(lo.newBlock("head"), st.Cond, st.Post, st.Body)

	case *ReturnStmt:
		if n := len(lo.inlines); n > 0 {
			ic := lo.inlines[n-1]
			if ic.retTy != ir.Void {
				if st.Value == nil {
					return lo.errf(st.Line, "return needs a value in %q", ic.fn.Name)
				}
				v, err := lo.lowerExpr(st.Value, ic.retTy)
				if err != nil {
					return err
				}
				lo.b.LStore(ic.retSlot, lo.convert(ic.retTy, v))
			} else if st.Value != nil {
				return lo.errf(st.Line, "void function %q returns a value", ic.fn.Name)
			}
			lo.b.Br(ic.exit)
			return nil
		}
		if st.Value != nil {
			return lo.errf(st.Line, "%q returns no value", ir.HandlerName)
		}
		lo.b.Ret(nil)
		return nil

	case *BreakStmt:
		if len(lo.loops) == 0 {
			return lo.errf(st.Line, "break outside loop")
		}
		lo.b.Br(lo.loops[len(lo.loops)-1].exit)
		return nil

	case *ContinueStmt:
		if len(lo.loops) == 0 {
			return lo.errf(st.Line, "continue outside loop")
		}
		lo.b.Br(lo.loops[len(lo.loops)-1].cont)
		return nil

	case *ExprStmt:
		_, err := lo.lowerExpr(st.X, ir.Void)
		return err

	default:
		return fmt.Errorf("unhandled statement %T", s)
	}
}

// lowerLoop lowers a while/for loop. Precondition: head was just created and
// the builder is positioned at the block that should fall into head.
func (lo *lowerer) lowerLoop(head *ir.Block, cond Expr, post Stmt, body *BlockStmt) error {
	lo.b.Br(head)
	lo.b.SetBlock(head)

	var condV ir.Value
	if cond != nil {
		v, err := lo.lowerCond(cond)
		if err != nil {
			return err
		}
		condV = v
	}
	condEnd := lo.b.Current()

	bodyB := lo.newBlock("body")
	var postB *ir.Block
	cont := head
	if post != nil {
		postB = lo.newBlock("post")
		cont = postB
	}
	exit := lo.newBlock("exit")

	lo.b.SetBlock(condEnd)
	if cond != nil {
		lo.b.At(exprPos(cond)) // the loop branch belongs to the condition
		lo.b.CondBr(condV, bodyB, exit)
	} else {
		lo.b.Br(bodyB)
	}

	lo.loops = append(lo.loops, loopCtx{cont: cont, exit: exit})
	lo.b.SetBlock(bodyB)
	err := lo.lowerBlock(body)
	lo.loops = lo.loops[:len(lo.loops)-1]
	if err != nil {
		return err
	}
	if !lo.b.Terminated() {
		lo.b.Br(cont)
	}
	if postB != nil {
		lo.b.SetBlock(postB)
		if err := lo.lowerStmt(post); err != nil {
			return err
		}
		if !lo.b.Terminated() {
			lo.b.Br(head)
		}
	}
	lo.b.SetBlock(exit)
	return nil
}

func (lo *lowerer) lowerAssign(st *AssignStmt) error {
	t := st.Target
	// Local variable.
	if v, ok := lo.lookup(t.Name); ok {
		if t.Index != nil {
			return lo.errf(t.Line, "%q is not an array", t.Name)
		}
		val, err := lo.assignValue(st, v.ty, func() ir.Value { return lo.b.LLoad(v.slot, v.ty) })
		if err != nil {
			return err
		}
		lo.b.LStore(v.slot, val)
		return nil
	}
	// Global.
	g, ok := lo.globals[t.Name]
	if !ok {
		return lo.errf(t.Line, "undefined variable %q", t.Name)
	}
	switch g.Kind {
	case ir.GScalar:
		if t.Index != nil {
			return lo.errf(t.Line, "%q is not an array", t.Name)
		}
		val, err := lo.assignValue(st, g.Elem, func() ir.Value { return lo.b.GLoad(g.Name, g.Elem, nil) })
		if err != nil {
			return err
		}
		lo.b.GStore(g.Name, val, nil)
		return nil
	case ir.GArray:
		if t.Index == nil {
			return lo.errf(t.Line, "array %q needs an index", t.Name)
		}
		idx, err := lo.lowerExpr(t.Index, ir.U32)
		if err != nil {
			return err
		}
		idx = lo.convert(ir.U32, idx)
		val, err := lo.assignValue(st, g.Elem, func() ir.Value { return lo.b.GLoad(g.Name, g.Elem, &idx) })
		if err != nil {
			return err
		}
		lo.b.GStore(g.Name, val, &idx)
		return nil
	default:
		return lo.errf(t.Line, "cannot assign to %s %q; use its API", g.Kind, t.Name)
	}
}

// assignValue computes the right-hand side of an assignment, applying the
// compound operator if present.
func (lo *lowerer) assignValue(st *AssignStmt, ty ir.Type, load func() ir.Value) (ir.Value, error) {
	rhs, err := lo.lowerExpr(st.Value, ty)
	if err != nil {
		return ir.Value{}, err
	}
	rhs = lo.convert(ty, rhs)
	if st.Op == "" {
		return rhs, nil
	}
	op, ok := binOps[st.Op]
	if !ok {
		return ir.Value{}, lo.errf(st.Line, "bad compound operator %q", st.Op)
	}
	cur := load()
	return lo.b.Bin(op, ty, cur, rhs), nil
}

var binOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpUDiv, "%": ir.OpURem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpLShr,
}

var cmpOps = map[string]ir.Pred{
	"==": ir.PredEQ, "!=": ir.PredNE,
	"<": ir.PredULT, "<=": ir.PredULE, ">": ir.PredUGT, ">=": ir.PredUGE,
}

// convert coerces v to ty (explicit zext/trunc instructions, as in the IR
// the host compiler would emit).
func (lo *lowerer) convert(ty ir.Type, v ir.Value) ir.Value {
	if v.Ty == ty || ty == ir.Void {
		return v
	}
	if v.Kind == ir.VConst {
		// Constants convert for free; mask to the destination width.
		c := v.Const
		if ty != ir.U64 && ty != ir.Void {
			c &= (1 << ty.Bits()) - 1
		}
		return ir.ConstVal(c, ty)
	}
	return lo.b.Convert(ty, v)
}

// lowerCond lowers an expression in boolean context; non-bool integers are
// compared against zero.
func (lo *lowerer) lowerCond(e Expr) (ir.Value, error) {
	v, err := lo.lowerExpr(e, ir.Bool)
	if err != nil {
		return ir.Value{}, err
	}
	if v.Ty == ir.Bool {
		return v, nil
	}
	return lo.b.ICmp(ir.PredNE, v, ir.ConstVal(0, v.Ty)), nil
}

// lowerExpr lowers an expression. hint is the preferred result type for
// otherwise-untyped literals (Void means "no preference").
func (lo *lowerer) lowerExpr(e Expr, hint ir.Type) (ir.Value, error) {
	if p := exprPos(e); p.IsValid() {
		lo.b.At(p)
	}
	switch x := e.(type) {
	case *IntLit:
		ty := hint
		if ty == ir.Void || ty == ir.Bool {
			ty = ir.U32
			if x.Val > 0xffffffff {
				ty = ir.U64
			}
		}
		return ir.ConstVal(int64(x.Val), ty), nil

	case *BoolLit:
		c := int64(0)
		if x.Val {
			c = 1
		}
		return ir.ConstVal(c, ir.Bool), nil

	case *Ident:
		if v, ok := lo.lookup(x.Name); ok {
			return lo.b.LLoad(v.slot, v.ty), nil
		}
		if g, ok := lo.globals[x.Name]; ok {
			if g.Kind != ir.GScalar {
				return ir.Value{}, lo.errf(x.Line, "%q is not a scalar", x.Name)
			}
			return lo.b.GLoad(g.Name, g.Elem, nil), nil
		}
		return ir.Value{}, lo.errf(x.Line, "undefined variable %q", x.Name)

	case *IndexExpr:
		g, ok := lo.globals[x.Name]
		if !ok || g.Kind != ir.GArray {
			return ir.Value{}, lo.errf(x.Line, "%q is not a global array", x.Name)
		}
		idx, err := lo.lowerExpr(x.Index, ir.U32)
		if err != nil {
			return ir.Value{}, err
		}
		idx = lo.convert(ir.U32, idx)
		return lo.b.GLoad(g.Name, g.Elem, &idx), nil

	case *CastExpr:
		v, err := lo.lowerExpr(x.X, x.Ty)
		if err != nil {
			return ir.Value{}, err
		}
		return lo.convert(x.Ty, v), nil

	case *UnaryExpr:
		switch x.Op {
		case "!":
			v, err := lo.lowerCond(x.X)
			if err != nil {
				return ir.Value{}, err
			}
			return lo.b.Bin(ir.OpXor, ir.Bool, v, ir.ConstVal(1, ir.Bool)), nil
		case "~":
			v, err := lo.lowerExpr(x.X, hint)
			if err != nil {
				return ir.Value{}, err
			}
			if v.Ty == ir.Bool {
				return ir.Value{}, lo.errf(x.Line, "~ needs an integer operand")
			}
			return lo.b.Not(v.Ty, v), nil
		case "-":
			v, err := lo.lowerExpr(x.X, hint)
			if err != nil {
				return ir.Value{}, err
			}
			return lo.b.Bin(ir.OpSub, v.Ty, ir.ConstVal(0, v.Ty), v), nil
		}
		return ir.Value{}, lo.errf(x.Line, "bad unary operator %q", x.Op)

	case *BinaryExpr:
		return lo.lowerBinary(x, hint)

	case *CallExpr:
		return lo.lowerCall(x, hint)

	default:
		return ir.Value{}, fmt.Errorf("unhandled expression %T", e)
	}
}

func (lo *lowerer) lowerBinary(x *BinaryExpr, hint ir.Type) (ir.Value, error) {
	// Logical operators: evaluated on booleans. NFC does not short-circuit
	// (both operands are evaluated), which keeps expression lowering free
	// of hidden control flow; NF conditions are side-effect free in
	// practice.
	if x.Op == "&&" || x.Op == "||" {
		a, err := lo.lowerCond(x.X)
		if err != nil {
			return ir.Value{}, err
		}
		b, err := lo.lowerCond(x.Y)
		if err != nil {
			return ir.Value{}, err
		}
		op := ir.OpAnd
		if x.Op == "||" {
			op = ir.OpOr
		}
		return lo.b.Bin(op, ir.Bool, a, b), nil
	}

	if p, ok := cmpOps[x.Op]; ok {
		a, b, err := lo.lowerOperands(x, ir.Void)
		if err != nil {
			return ir.Value{}, err
		}
		a, b = lo.unify(a, b)
		return lo.b.ICmp(p, a, b), nil
	}

	op, ok := binOps[x.Op]
	if !ok {
		return ir.Value{}, lo.errf(x.Line, "bad binary operator %q", x.Op)
	}
	if op == ir.OpShl || op == ir.OpLShr {
		a, err := lo.lowerExpr(x.X, hint)
		if err != nil {
			return ir.Value{}, err
		}
		if a.Ty == ir.Bool {
			a = lo.convert(ir.U32, a)
		}
		b, err := lo.lowerExpr(x.Y, ir.U32)
		if err != nil {
			return ir.Value{}, err
		}
		b = lo.convert(a.Ty, b)
		return lo.b.Bin(op, a.Ty, a, b), nil
	}
	a, b, err := lo.lowerOperands(x, hint)
	if err != nil {
		return ir.Value{}, err
	}
	a, b = lo.unify(a, b)
	return lo.b.Bin(op, a.Ty, a, b), nil
}

// lowerOperands lowers both operands, letting a typed side give literal
// operands their type.
func (lo *lowerer) lowerOperands(x *BinaryExpr, hint ir.Type) (ir.Value, ir.Value, error) {
	_, xLit := x.X.(*IntLit)
	_, yLit := x.Y.(*IntLit)
	if xLit && !yLit {
		b, err := lo.lowerExpr(x.Y, hint)
		if err != nil {
			return ir.Value{}, ir.Value{}, err
		}
		a, err := lo.lowerExpr(x.X, b.Ty)
		if err != nil {
			return ir.Value{}, ir.Value{}, err
		}
		return a, b, nil
	}
	a, err := lo.lowerExpr(x.X, hint)
	if err != nil {
		return ir.Value{}, ir.Value{}, err
	}
	bHint := a.Ty
	if bHint == ir.Bool {
		bHint = hint
	}
	b, err := lo.lowerExpr(x.Y, bHint)
	if err != nil {
		return ir.Value{}, ir.Value{}, err
	}
	return a, b, nil
}

// unify widens the narrower operand (bools widen to the other side's type,
// or u32 when both are bool).
func (lo *lowerer) unify(a, b ir.Value) (ir.Value, ir.Value) {
	at, bt := a.Ty, b.Ty
	if at == ir.Bool && bt == ir.Bool {
		return a, b
	}
	if at == ir.Bool {
		return lo.convert(bt, a), b
	}
	if bt == ir.Bool {
		return a, lo.convert(at, b)
	}
	if at.Bits() > bt.Bits() {
		return a, lo.convert(at, b)
	}
	if bt.Bits() > at.Bits() {
		return lo.convert(bt, a), b
	}
	return a, b
}

func (lo *lowerer) lowerCall(x *CallExpr, hint ir.Type) (ir.Value, error) {
	if intr, ok := Intrinsics[x.Name]; ok {
		return lo.lowerIntrinsic(x, intr)
	}
	fn, ok := lo.funcs[x.Name]
	if !ok {
		return ir.Value{}, lo.errf(x.Line, "undefined function %q", x.Name)
	}
	return lo.inlineCall(x, fn)
}

func (lo *lowerer) lowerIntrinsic(x *CallExpr, intr Intrinsic) (ir.Value, error) {
	args := x.Args
	global := ""
	if intr.TakesMap {
		if len(args) == 0 {
			return ir.Value{}, lo.errf(x.Line, "%s needs a state argument", intr.Name)
		}
		id, ok := args[0].(*Ident)
		if !ok {
			return ir.Value{}, lo.errf(x.Line, "%s: first argument must name a stateful structure", intr.Name)
		}
		g, ok := lo.globals[id.Name]
		want := ir.GMap
		kindName := "map"
		if strings.HasPrefix(intr.Name, "vec_") {
			want = ir.GVec
			kindName = "vec"
		}
		if !ok || g.Kind != want {
			return ir.Value{}, lo.errf(x.Line, "%s: %q is not a %s", intr.Name, id.Name, kindName)
		}
		global = id.Name
		args = args[1:]
	}
	if len(args) != len(intr.Params) {
		return ir.Value{}, lo.errf(x.Line, "%s expects %d argument(s), got %d", intr.Name, len(intr.Params), len(args))
	}
	vals := make([]ir.Value, len(args))
	for i, a := range args {
		v, err := lo.lowerExpr(a, intr.Params[i])
		if err != nil {
			return ir.Value{}, err
		}
		vals[i] = lo.convert(intr.Params[i], v)
	}
	lo.b.At(exprPos(x)) // the call instruction belongs to the call site
	return lo.b.Call(intr.Name, global, intr.Ret, vals...), nil
}

// inlineCall lowers a user-function call by inlining its body, binding
// parameters to fresh stack slots and routing returns through a shared exit
// block. Recursion is rejected (baremetal NIC dialects forbid it too).
func (lo *lowerer) inlineCall(x *CallExpr, fn *FuncDecl) (ir.Value, error) {
	for _, ic := range lo.inlines {
		if ic.fn == fn {
			return ir.Value{}, lo.errf(x.Line, "recursive call to %q is not supported", fn.Name)
		}
	}
	if len(x.Args) != len(fn.Params) {
		return ir.Value{}, lo.errf(x.Line, "%s expects %d argument(s), got %d", fn.Name, len(fn.Params), len(x.Args))
	}

	// Bind arguments.
	lo.pushScope()
	defer lo.popScope()
	// Evaluate all arguments before declaring parameters so that an
	// argument expression cannot see a half-bound parameter scope.
	vals := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := lo.lowerExpr(a, fn.Params[i].Ty)
		if err != nil {
			return ir.Value{}, err
		}
		vals[i] = lo.convert(fn.Params[i].Ty, v)
	}
	for i, p := range fn.Params {
		pv := lo.declare(p.Name, p.Ty)
		lo.b.LStore(pv.slot, vals[i])
	}

	ic := &inlineCtx{fn: fn, retTy: fn.Ret, exit: lo.newBlock("inl_exit")}
	if fn.Ret != ir.Void {
		ic.retSlot = lo.b.NewSlot()
		lo.b.LStore(ic.retSlot, ir.ConstVal(0, fn.Ret))
	}

	// The parameter scope must not leak the caller's locals into the
	// inlined body: NFC functions only see their own parameters and
	// globals. Temporarily mask outer scopes.
	saved := lo.scopes
	lo.scopes = []map[string]local{saved[len(saved)-1]}

	lo.inlines = append(lo.inlines, ic)
	err := lo.lowerBlock(fn.Body)
	lo.inlines = lo.inlines[:len(lo.inlines)-1]
	lo.scopes = saved
	if err != nil {
		return ir.Value{}, err
	}
	if !lo.b.Terminated() {
		if fn.Ret != ir.Void {
			return ir.Value{}, lo.errf(fn.Line, "function %q can fall off the end without returning", fn.Name)
		}
		lo.b.Br(ic.exit)
	}
	lo.b.SetBlock(ic.exit)
	if fn.Ret != ir.Void {
		return lo.b.LLoad(ic.retSlot, fn.Ret), nil
	}
	return ir.Value{}, nil
}
