package fleet

import (
	"container/list"
	"crypto/sha256"
	"errors"
	"sync"

	"clara/internal/core"
	"clara/internal/ir"
	"clara/internal/niccc"
)

// errComputePanicked is what cache waiters observe when the leader's
// computation panicked: the key is dropped (a later request recomputes)
// and the waiters fail cleanly instead of blocking forever or sharing
// the panic.
var errComputePanicked = errors.New("fleet: prediction computation panicked")

// DefaultCacheSize is the prediction cache's entry cap when Config does
// not set one. Each entry is one (module, accel) prediction — a few KB —
// so the default bounds a long-running server to a few MB of cache.
const DefaultCacheSize = 512

// predKey identifies one memoized prediction: the module's content hash
// plus the accelerator configuration the prediction assumed. Content
// hashing (over the module's printed IR) rather than pointer identity
// matters for serving: modules parsed from submitted source get a fresh
// *ir.Module per request, so a pointer key could never hit, while the
// same source resubmitted hashes to the same key. Library modules are
// cached singletons, so their hash is stable too (and hashing a
// module's IR costs microseconds against the milliseconds a prediction
// takes).
type predKey struct {
	hash  [sha256.Size]byte
	accel niccc.AccelConfig
}

func keyFor(mod *ir.Module, accel niccc.AccelConfig) predKey {
	return predKey{hash: ContentHash(mod), accel: accel}
}

// ContentHash is the sha256 content hash of a module's printed IR — the
// module half of the prediction-cache key. The cluster coordinator
// routes jobs with the same hash, so its consistent-hash assignment and
// each worker's cache agree on module identity: every module lands on
// the one worker whose cache can already hold its prediction. The
// interpreter's compiled-program cache keys on the same hash
// (ir.Fingerprint), so that worker also holds the module's compiled
// program.
func ContentHash(mod *ir.Module) [sha256.Size]byte {
	return ir.Fingerprint(mod)
}

// predEntry is one cache slot. The first requester owns the computation;
// later requesters block on ready. Keeping the slot in the map while the
// leader computes gives singleflight semantics: N workers analyzing the
// same module under N workloads run PredictModule exactly once. Waiters
// hold the entry pointer directly, so evicting an in-flight entry only
// affects future lookups, never a blocked waiter.
type predEntry struct {
	key   predKey
	ready chan struct{} // closed when mp/err are set
	mp    *core.ModulePrediction
	err   error
}

// predCache memoizes PredictModule results under an LRU entry cap.
// Failed computations are not retained, so a transient failure does not
// poison the key.
type predCache struct {
	mu  sync.Mutex
	cap int
	m   map[predKey]*list.Element // values are *predEntry
	lru *list.List                // front = most recently used
	// evictions counts entries dropped by the LRU cap (not failed
	// computations, which are removed as a retry policy, not for space).
	evictions int64
}

func newPredCache(capacity int) *predCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &predCache{
		cap: capacity,
		m:   make(map[predKey]*list.Element),
		lru: list.New(),
	}
}

// get returns the cached prediction for (mod, accel), computing it via
// compute on first request. hit reports whether this caller skipped the
// computation AND got a usable prediction: a waiter whose singleflight
// leader failed (or panicked) shares the leader's error, not a cached
// value, so it must not count as a hit — otherwise an errored job would
// inflate the hit rate the cluster coordinator uses to judge cache
// locality.
func (c *predCache) get(mod *ir.Module, accel niccc.AccelConfig, compute func() (*core.ModulePrediction, error)) (mp *core.ModulePrediction, hit bool, err error) {
	k := keyFor(mod, accel)
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*predEntry)
		c.mu.Unlock()
		<-e.ready
		return e.mp, e.err == nil, e.err
	}
	e := &predEntry{key: k, ready: make(chan struct{})}
	c.m[k] = c.lru.PushFront(e)
	c.evictOverCapLocked()
	c.mu.Unlock()

	done := false
	defer func() {
		if e.err != nil || !done {
			if !done { // compute panicked; the panic is unwinding past us
				e.mp, e.err = nil, errComputePanicked
			}
			c.mu.Lock()
			// Only remove our own entry — it may already have been
			// evicted (or replaced after eviction) while we computed.
			if el, ok := c.m[k]; ok && el.Value.(*predEntry) == e {
				c.lru.Remove(el)
				delete(c.m, k)
			}
			c.mu.Unlock()
		}
		close(e.ready)
	}()
	e.mp, e.err = compute()
	done = true
	return e.mp, false, e.err
}

// claim inserts an in-flight entry for key k if none exists, returning
// the entry and whether the caller became its leader (and so must fill
// it). Non-leaders get the existing entry, completed or in flight. This
// is the batch-prewarm half of the singleflight protocol: RunContext
// claims every distinct key in a batch up front, predicts all claimed
// modules in one sweep, and fills the entries before workers start.
func (c *predCache) claim(k predKey) (*predEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*predEntry), false
	}
	e := &predEntry{key: k, ready: make(chan struct{})}
	c.m[k] = c.lru.PushFront(e)
	c.evictOverCapLocked()
	return e, true
}

// evictOverCapLocked drops least-recently-used entries until the cache
// is within its cap. Evicting an in-flight entry is safe: waiters hold
// the entry pointer, so they still complete when the leader fills it —
// only future lookups recompute. Callers must hold c.mu.
func (c *predCache) evictOverCapLocked() {
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		old := oldest.Value.(*predEntry)
		c.lru.Remove(oldest)
		delete(c.m, old.key)
		c.evictions++
	}
}

// evicted reports the lifetime count of cap-evicted entries.
func (c *predCache) evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// fill completes a claimed entry. Failed computations are dropped from
// the map (same policy as get), so a transient failure is retried by the
// next request; waiters still observe the error through the entry.
func (c *predCache) fill(e *predEntry, mp *core.ModulePrediction, err error) {
	e.mp, e.err = mp, err
	if err != nil {
		c.mu.Lock()
		if el, ok := c.m[e.key]; ok && el.Value.(*predEntry) == e {
			c.lru.Remove(el)
			delete(c.m, e.key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
}

// len reports the number of resident entries (completed or in flight).
func (c *predCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
