package click

import (
	"testing"

	"clara/internal/interp"
	"clara/internal/traffic"
)

// Behavior tests: each element's semantics, not just "it runs".

func newMachine(t *testing.T, name string) *interp.Machine {
	t.Helper()
	e := Get(name)
	m, err := interp.New(e.MustModule(), interp.Config{Mode: interp.NICMap, LPMTable: e.Routes, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Setup != nil {
		if err := e.Setup(m); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func tcpPkt(src, dst uint32, sport, dport uint16, flags uint8) traffic.Packet {
	return traffic.Packet{
		EthType: traffic.EthIPv4, Proto: traffic.ProtoTCP,
		SrcIP: src, DstIP: dst, SrcPort: sport, DstPort: dport,
		TCPFlag: flags, TCPOff: 5, IPHL: 5, IPLen: 114, Len: 128, TTL: 64,
		Seq: 1000, Ack: 0, OutPort: -2,
		Payload: []byte("GET /index.html HTTP/1.1\r\n"),
	}
}

func TestAnonIPAddrPreservesSlash8(t *testing.T) {
	m := newMachine(t, "anonipaddr")
	p := tcpPkt(0xC0A80505, 0x0A000001, 1234, 80, 0x10)
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if p.SrcIP>>24 != 0xC0 || p.DstIP>>24 != 0x0A {
		t.Errorf("/8 not preserved: %08x %08x", p.SrcIP, p.DstIP)
	}
	if p.SrcIP == 0xC0A80505 {
		t.Error("source not anonymized")
	}
	if !p.CsumUpdated {
		t.Error("checksum not updated after rewrite")
	}
	// Same input anonymizes to the same output (deterministic keyed mix).
	q := tcpPkt(0xC0A80505, 0x0A000001, 1234, 80, 0x10)
	if err := m.RunPacket(&q); err != nil {
		t.Fatal(err)
	}
	if q.SrcIP != p.SrcIP {
		t.Error("anonymization not deterministic")
	}
}

func TestTCPAckComputesCumulativeAck(t *testing.T) {
	m := newMachine(t, "tcpack")
	p := tcpPkt(1, 2, 1000, 80, 0x10) // 128B frame, 20B IP, 20B TCP -> 74B segment
	p.Seq = 5000
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	seg := uint32(114 - 20 - 20)
	if p.Ack != 5000+seg {
		t.Errorf("ack = %d, want %d", p.Ack, 5000+seg)
	}
	// Addresses and ports swapped.
	if p.SrcIP != 2 || p.DstIP != 1 || p.SrcPort != 80 || p.DstPort != 1000 {
		t.Error("response not swapped")
	}
	// SYN consumes one extra sequence number.
	q := tcpPkt(1, 2, 1000, 80, 0x02)
	q.Seq = 7000
	if err := m.RunPacket(&q); err != nil {
		t.Fatal(err)
	}
	if q.Ack != 7000+seg+1 {
		t.Errorf("SYN ack = %d, want %d", q.Ack, 7000+seg+1)
	}
	// RSTs are dropped.
	r := tcpPkt(1, 2, 1000, 80, 0x04)
	if err := m.RunPacket(&r); err != nil {
		t.Fatal(err)
	}
	if !r.Dropped() {
		t.Error("RST not dropped")
	}
}

func TestTCPRespSynGetsSynAck(t *testing.T) {
	m := newMachine(t, "tcpresp")
	p := tcpPkt(0xC0A80001, 0x0A000002, 1234, 80, 0x02)
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if p.TCPFlag != 0x12 {
		t.Errorf("flags = %02x, want SYN-ACK", p.TCPFlag)
	}
	if p.Ack != 1000+1 {
		t.Errorf("ack = %d, want ISN+1", p.Ack)
	}
	// Cookie ISNs are deterministic per 4-tuple.
	q := tcpPkt(0xC0A80001, 0x0A000002, 1234, 80, 0x02)
	q.Seq = 999999
	if err := m.RunPacket(&q); err != nil {
		t.Fatal(err)
	}
	if q.Seq != p.Seq {
		t.Error("cookie ISN not deterministic")
	}
}

func TestUDPIPEncapSetsTunnelHeaders(t *testing.T) {
	m := newMachine(t, "udpipencap")
	p := tcpPkt(0xC0A80001, 0x0A000002, 5555, 9999, 0x10)
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if p.SrcIP != 0x0a000001 || p.DstIP != 0x0a0000fe {
		t.Errorf("tunnel endpoints wrong: %08x -> %08x", p.SrcIP, p.DstIP)
	}
	if p.DstPort != 4789 {
		t.Errorf("VXLAN-ish port = %d", p.DstPort)
	}
	if p.SrcPort < 4789 || p.SrcPort > 4789+15 {
		t.Errorf("entropy source port %d out of range", p.SrcPort)
	}
	if p.TTL != 64 {
		t.Errorf("TTL = %d", p.TTL)
	}
}

func TestForceTCPStripsIllegalFlagCombos(t *testing.T) {
	m := newMachine(t, "forcetcp")
	p := tcpPkt(1, 2, 1000, 80, 0x03) // SYN+FIN
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if p.TCPFlag&0x01 != 0 {
		t.Errorf("FIN survived SYN+FIN: %02x", p.TCPFlag)
	}
	q := tcpPkt(1, 2, 0, 0, 0) // zero ports and flags get repaired
	if err := m.RunPacket(&q); err != nil {
		t.Fatal(err)
	}
	if q.Dropped() {
		t.Fatal("repairable packet dropped")
	}
	if q.SrcPort == 0 || q.DstPort == 0 || q.TCPFlag == 0 {
		t.Errorf("not repaired: sport=%d dport=%d flags=%02x", q.SrcPort, q.DstPort, q.TCPFlag)
	}
}

func TestTimeFilterRollsWindows(t *testing.T) {
	m := newMachine(t, "timefilter")
	p := tcpPkt(1, 2, 1, 2, 0x10)
	p.Time = 100
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	q := tcpPkt(1, 2, 1, 2, 0x10)
	q.Time = 100 + 3_000_000 // 3ms later: beyond the 1ms window
	if err := m.RunPacket(&q); err != nil {
		t.Fatal(err)
	}
	if rolled, _ := m.Scalar("windows_rolled"); rolled != 1 {
		t.Errorf("windows_rolled = %d, want 1", rolled)
	}
	if wp, _ := m.Scalar("win_pkts"); wp != 1 {
		t.Errorf("win_pkts = %d after roll, want 1", wp)
	}
}

func TestAggCounterAggregates(t *testing.T) {
	m := newMachine(t, "aggcounter")
	for i := 0; i < 10; i++ {
		p := tcpPkt(0xC0A80000|uint32(i), 2, 1, 2, 0x10)
		if err := m.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
	}
	tot, _ := m.Scalar("total_pkts")
	if tot != 10 {
		t.Errorf("total_pkts = %d", tot)
	}
	bytes, _ := m.Scalar("total_bytes")
	if bytes != 10*128 {
		t.Errorf("total_bytes = %d", bytes)
	}
	// All ten sources share the /16, so one bucket holds all of them.
	bucket, _ := m.ArrayAt("agg_pkts", int((0xC0A80000>>16)&4095))
	if bucket != 10 {
		t.Errorf("bucket count = %d", bucket)
	}
	if mx, _ := m.Scalar("max_bucket"); mx != 10 {
		t.Errorf("max_bucket = %d", mx)
	}
}

func TestWepDecapDecryptsDeterministically(t *testing.T) {
	// Same IV and payload decrypt identically across machines; different
	// IVs produce different keystreams.
	run := func(iv uint32) []byte {
		m := newMachine(t, "wepdecap")
		p := tcpPkt(1, 2, 1, 2, 0x10)
		p.Seq = iv
		p.Payload = []byte("0123456789abcdef")
		if err := m.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), p.Payload...)
	}
	a1 := run(42)
	a2 := run(42)
	b := run(43)
	if string(a1) != string(a2) {
		t.Error("decryption not deterministic")
	}
	if string(a1) == string(b) {
		t.Error("different IVs produced identical keystreams")
	}
	if string(a1) == "0123456789abcdef" {
		t.Error("payload not transformed")
	}
}

func TestIPRewriterIsBidirectional(t *testing.T) {
	m := newMachine(t, "iprewriter")
	// Outbound flow learns a mapping.
	out := tcpPkt(0xC0A80001, 0x0B000001, 1111, 80, 0x02)
	if err := m.RunPacket(&out); err != nil {
		t.Fatal(err)
	}
	if out.Dropped() {
		t.Fatal("outbound dropped")
	}
	rewrittenDst := out.DstIP
	if rewrittenDst == 0x0B000001 {
		t.Fatal("destination not rewritten to the pool")
	}
	// Reply from the pool address maps back.
	in := tcpPkt(rewrittenDst, 0xC0A80001, 80, 1111, 0x12)
	if err := m.RunPacket(&in); err != nil {
		t.Fatal(err)
	}
	if in.SrcIP != 0x0B000001 {
		t.Errorf("reverse rewrite gave %08x, want original destination", in.SrcIP)
	}
}

func TestIPClassifierDropsBogons(t *testing.T) {
	m := newMachine(t, "ipclassifier")
	p := tcpPkt(0x7F000001, 2, 1, 80, 0x10) // 127/8 source
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if !p.Dropped() {
		t.Error("loopback source not dropped")
	}
	if b, _ := m.Scalar("bogon_pkts"); b != 1 {
		t.Errorf("bogon_pkts = %d", b)
	}
	q := tcpPkt(0xC0A80001, 2, 1200, 443, 0x10)
	if err := m.RunPacket(&q); err != nil {
		t.Fatal(err)
	}
	if q.Dropped() {
		t.Error("HTTPS packet dropped")
	}
	if c, _ := m.ArrayAt("class_pkts", 2); c != 1 {
		t.Errorf("class 2 (443) count = %d", c)
	}
}

func TestWebGenTracksRTT(t *testing.T) {
	m := newMachine(t, "webgen")
	// Generate one request.
	p := tcpPkt(1, 2, 1, 2, 0x10)
	p.Time = 1000
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if p.TCPFlag != 0x02 {
		t.Fatalf("generated packet not a SYN: %02x", p.TCPFlag)
	}
	reqDst, reqSport := p.DstIP, p.SrcPort
	// Synthesize the response.
	resp := tcpPkt(reqDst, 0xC0A80001, 80, reqSport, 0x10)
	resp.Time = 6000
	if err := m.RunPacket(&resp); err != nil {
		t.Fatal(err)
	}
	rtt, _ := m.Scalar("rtt_accum")
	if rtt != 5000 {
		t.Errorf("rtt_accum = %d, want 5000", rtt)
	}
	done, _ := m.ArrayAt("srv_done", int(reqDst&63))
	if done != 1 {
		t.Errorf("srv_done = %d", done)
	}
}

func TestDPIFlagsDirectoryTraversal(t *testing.T) {
	m := newMachine(t, "dpi")
	p := tcpPkt(1, 2, 1, 80, 0x10)
	p.Payload = []byte("GET /../etc/passwd")
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if !p.Dropped() {
		t.Error("traversal signature not dropped")
	}
	q := tcpPkt(1, 2, 1, 80, 0x10)
	q.Payload = []byte("GET /index.html")
	if err := m.RunPacket(&q); err != nil {
		t.Fatal(err)
	}
	if q.Dropped() {
		t.Error("benign request dropped")
	}
}

func TestMazuNATMidStreamWithoutBindingDropped(t *testing.T) {
	m := newMachine(t, "mazunat")
	p := tcpPkt(0xC0A80001, 0x0A000001, 1234, 80, 0x10) // ACK, no binding
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if !p.Dropped() {
		t.Error("mid-stream packet without binding forwarded")
	}
	// SYN creates the binding; the next ACK passes.
	syn := tcpPkt(0xC0A80001, 0x0A000001, 1234, 80, 0x02)
	if err := m.RunPacket(&syn); err != nil {
		t.Fatal(err)
	}
	ack := tcpPkt(0xC0A80001, 0x0A000001, 1234, 80, 0x10)
	if err := m.RunPacket(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Dropped() {
		t.Error("bound flow dropped")
	}
	if ack.SrcIP>>16 != 0x0a01 {
		t.Errorf("source not translated: %08x", ack.SrcIP)
	}
}

func TestDedupDropsDuplicates(t *testing.T) {
	m := newMachine(t, "dedup")
	p := tcpPkt(1, 2, 10, 80, 0x10)
	p.Seq = 42
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if p.Dropped() {
		t.Fatal("first occurrence dropped")
	}
	q := tcpPkt(1, 2, 10, 80, 0x10)
	q.Seq = 42
	if err := m.RunPacket(&q); err != nil {
		t.Fatal(err)
	}
	if !q.Dropped() {
		t.Fatal("duplicate not dropped")
	}
	if d, _ := m.Scalar("dup_drops"); d != 1 {
		t.Errorf("dup_drops = %d", d)
	}
	// Distinct signatures pass.
	r := tcpPkt(1, 2, 10, 80, 0x10)
	r.Seq = 43
	if err := m.RunPacket(&r); err != nil {
		t.Fatal(err)
	}
	if r.Dropped() {
		t.Error("distinct signature dropped")
	}
}

func TestDedupEvictsWhenFull(t *testing.T) {
	m := newMachine(t, "dedup")
	for i := uint32(0); i < 45; i++ {
		p := tcpPkt(100+i, 2, 10, 80, 0x10)
		p.Seq = i
		if err := m.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
	}
	if ev, _ := m.Scalar("evictions"); ev == 0 {
		t.Error("no evictions at capacity")
	}
	if live, _ := m.VecLive("recent"); live > 48 {
		t.Errorf("vector live = %d beyond capacity", live)
	}
}

func TestTokenBucketPolices(t *testing.T) {
	m := newMachine(t, "tokenbucket")
	// Exhaust the burst with back-to-back packets at t=1.
	drops, sends := 0, 0
	for i := 0; i < 2000; i++ {
		p := tcpPkt(1, 2, 10, 80, 0x10)
		p.Time = 1
		if err := m.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
		if p.Dropped() {
			drops++
		} else {
			sends++
		}
	}
	if drops == 0 {
		t.Fatal("bucket never exhausted")
	}
	if sends == 0 {
		t.Fatal("nothing conformed")
	}
	// After a long quiet period the bucket refills.
	p := tcpPkt(1, 2, 10, 80, 0x10)
	p.Time = 1_000_000_000
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if p.Dropped() {
		t.Error("packet after refill dropped")
	}
}

func TestECMPSpreadsAndRespectsHealth(t *testing.T) {
	m := newMachine(t, "ecmp")
	used := map[int32]bool{}
	for i := uint32(0); i < 200; i++ {
		p := tcpPkt(0xC0A80000+i*7, 0x0A000001+i, 10, 80, 0x10)
		if err := m.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
		if p.Dropped() {
			t.Fatal("flow dropped with healthy backends")
		}
		if p.DstIP>>16 != 0x0a03 {
			t.Fatalf("not rewritten to a backend: %08x", p.DstIP)
		}
		b := int32(p.DstIP & 15)
		if b >= 12 {
			t.Fatalf("flow sent to unhealthy backend %d", b)
		}
		used[b] = true
	}
	if len(used) < 6 {
		t.Errorf("poor spread: only %d backends used", len(used))
	}
	// Flows are sticky: same 5-tuple, same backend.
	a := tcpPkt(0xC0A80001, 0x0A000002, 10, 80, 0x10)
	b := tcpPkt(0xC0A80001, 0x0A000002, 10, 80, 0x10)
	if err := m.RunPacket(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.RunPacket(&b); err != nil {
		t.Fatal(err)
	}
	if a.DstIP != b.DstIP {
		t.Error("flow not sticky")
	}
	// Mark a backend down via a control packet; traffic avoids it.
	target := a.DstIP & 15
	ctrl := tcpPkt(target, 0, 0, 0, 0)
	ctrl.Proto = 253
	ctrl.TTL = 0
	if err := m.RunPacket(&ctrl); err != nil {
		t.Fatal(err)
	}
	c := tcpPkt(0xC0A80001, 0x0A000002, 10, 80, 0x10)
	if err := m.RunPacket(&c); err != nil {
		t.Fatal(err)
	}
	if c.DstIP == a.DstIP {
		t.Error("flow still sent to downed backend")
	}
}
