package experiments

import (
	"fmt"
	"math"

	"clara/internal/core"
	"clara/internal/nicsim"
	"clara/internal/traffic"
)

// coalesceNFs are the four elements with extensive global-variable use
// evaluated by §5.6 and §5.8.
var coalesceNFs = []string{"aggcounter", "timefilter", "webtcp", "tcpgen"}

// coalesceMetric runs one pack plan and reports the cores needed to reach
// 95% of peak throughput plus the latency at that operating point.
func coalesceMetric(ctx *Context, name string, packs [][]string) (cores int, lat float64, err error) {
	params := ctx.Cfg.Params
	wl := traffic.MediumMix
	b, err := elementNF(name, func(nf *nicsim.NF) { nf.Packs = packs }).Build(params)
	if err != nil {
		return 0, 0, err
	}
	ts, err := nicsim.GenTraces(b, wl, ctx.packets(2500), params)
	if err != nil {
		return 0, 0, err
	}
	rs, err := nicsim.SweepCores(params, ts, nicsim.DefaultCoreSweep)
	if err != nil {
		return 0, 0, err
	}
	cores = nicsim.CoresToSaturate(rs, 0.95)
	for _, r := range rs {
		if r.Cores == cores {
			lat = r.AvgLatencyUs
		}
	}
	return cores, lat, nil
}

// Figure13 reproduces the coalescing evaluation: cores-to-saturation and
// latency, naive vs Clara's k-means packing (§5.6: latency −42–68%, cores
// −25–55%).
func Figure13(ctx *Context) (*Table, error) {
	wl := traffic.MediumMix
	t := &Table{
		ID:     "figure13",
		Title:  "Memory access coalescing: naive vs Clara packing",
		Header: []string{"NF", "port", "cores-to-saturate", "latency(us)", "packs"},
	}
	for _, name := range coalesceNFs {
		mod := elementNF(name, nil).Mod
		prof, err := core.ProfileOnHost(mod, profileSetup(name), wl, ctx.packets(1200))
		if err != nil {
			return nil, err
		}
		packs := core.SuggestPacks(mod, prof, core.CoalesceConfig{Seed: ctx.Cfg.Seed})
		nc, nl, err := coalesceMetric(ctx, name, nil)
		if err != nil {
			return nil, err
		}
		cc, cl, err := coalesceMetric(ctx, name, packs)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, "naive", fmt.Sprintf("%d", nc), f2(nl), "")
		t.AddRow(name, "Clara", fmt.Sprintf("%d", cc), f2(cl), packsString(packs))
		t.Notef("%s: latency %+.0f%%, cores %+.0f%%", name, 100*(cl-nl)/nl, 100*float64(cc-nc)/float64(nc))
	}
	t.Notef("paper: latency down 42–68%%, core counts down 25–55%%")
	return t, nil
}

func packsString(packs [][]string) string {
	s := ""
	for i, p := range packs {
		if i > 0 {
			s += " | "
		}
		for j, v := range p {
			if j > 0 {
				s += "+"
			}
			s += v
		}
	}
	return s
}

// Figure16 reproduces the expert-emulation comparison for coalescing:
// Clara's clustering vs an exhaustive sweep over all pack partitions of
// the hottest variables (§5.8: the expert holds a small advantage).
func Figure16(ctx *Context) (*Table, error) {
	wl := traffic.MediumMix
	t := &Table{
		ID:     "figure16",
		Title:  "Coalescing: Clara(k-means) vs expert (exhaustive partitions)",
		Header: []string{"NF", "port", "cores-to-saturate", "latency(us)"},
	}
	for _, name := range coalesceNFs {
		mod := elementNF(name, nil).Mod
		prof, err := core.ProfileOnHost(mod, profileSetup(name), wl, ctx.packets(1200))
		if err != nil {
			return nil, err
		}
		packs := core.SuggestPacks(mod, prof, core.CoalesceConfig{Seed: ctx.Cfg.Seed})
		cc, cl, err := coalesceMetric(ctx, name, packs)
		if err != nil {
			return nil, err
		}

		// Expert: all partitions of the variables in the top-3 hottest
		// blocks (capped at 5 variables, as in §5.8 where "the total
		// number of variables is too large for an exhaustive analysis").
		hot := core.HotScalars(mod, prof, 3, 5)
		parts := core.Partitions(hot)
		if ctx.Cfg.Quick && len(parts) > 10 {
			parts = parts[:10]
		}
		bestCores, bestLat := math.MaxInt32, math.Inf(1)
		for _, part := range parts {
			pc, plat, err := coalesceMetric(ctx, name, core.PacksFromPartition(part))
			if err != nil {
				return nil, err
			}
			if pc < bestCores || (pc == bestCores && plat < bestLat) {
				bestCores, bestLat = pc, plat
			}
		}
		t.AddRow(name, "Clara", fmt.Sprintf("%d", cc), f2(cl))
		t.AddRow(name, "expert", fmt.Sprintf("%d", bestCores), f2(bestLat))
	}
	t.Notef("paper: exhaustive tuning delivers a small advantage; Clara remains competitive")
	return t, nil
}
