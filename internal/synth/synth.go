// Package synth generates random-but-representative NFC programs. It plays
// the role of the paper's customized YarpGen (§3.2 "Data synthesis"): the
// generator is guided by the statistical properties of a target program
// corpus (our Click-style element library), emits packet-handling programs
// against the NF framework API, and only uses operations with SmartNIC
// support — producing the (host IR, NIC assembly) training pairs that the
// instruction-prediction model learns from.
//
// A deliberately unguided "baseline" mode ignores the corpus profile; the
// Table 1 experiment contrasts the two.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"clara/internal/ir"
)

// Profile captures the statistical properties of a program corpus that
// guide generation: the mix of compute operators, the branchiness and
// loopiness of the CFG, and how often stateful structures and framework
// APIs appear.
type Profile struct {
	// OpWeights is the relative frequency of each binary operator.
	OpWeights map[string]float64
	// BranchPerInstr is CFG branchiness: conditional branches per
	// instruction.
	BranchPerInstr float64
	// LoopFrac is the fraction of blocks participating in loops.
	LoopFrac float64
	// StatePerInstr is stateful accesses (incl. map API) per instruction.
	StatePerInstr float64
	// APIPerInstr is packet-API calls per instruction.
	APIPerInstr float64
	// AvgHandlerInstrs is the average handler size in IR instructions.
	AvgHandlerInstrs float64
}

// opNames are the NFC binary operators the generator may emit (all have
// SmartNIC support).
var opNames = []string{"+", "-", "*", "&", "|", "^", "<<", ">>", "/"}

var irOpToSrc = map[string]string{
	"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|",
	"xor": "^", "shl": "<<", "lshr": ">>", "udiv": "/", "urem": "/",
}

// ProfileFromModules measures a corpus of lowered elements.
func ProfileFromModules(mods []*ir.Module) Profile {
	p := Profile{OpWeights: map[string]float64{}}
	var instrs, branches, state, api, loopBlocks, blocks float64
	for _, m := range mods {
		f := m.Handler()
		if f == nil {
			continue
		}
		lb := ir.LoopBlocks(f)
		for bi, b := range f.Blocks {
			blocks++
			if lb[bi] {
				loopBlocks++
			}
			for _, in := range b.Instrs {
				instrs++
				switch {
				case in.Op == ir.OpCondBr:
					branches++
				case in.Op.IsStatefulMem():
					state++
				case in.Op == ir.OpCall:
					if strings.HasPrefix(in.Callee, "map_") {
						state++
					} else {
						api++
					}
				case in.Op.IsCompute():
					if src, ok := irOpToSrc[in.Op.String()]; ok {
						p.OpWeights[src]++
					}
				}
			}
		}
	}
	var totalOps float64
	for _, w := range p.OpWeights {
		totalOps += w
	}
	if totalOps > 0 {
		for k := range p.OpWeights {
			p.OpWeights[k] /= totalOps
		}
	}
	if instrs > 0 {
		p.BranchPerInstr = branches / instrs
		p.StatePerInstr = state / instrs
		p.APIPerInstr = api / instrs
	}
	if blocks > 0 {
		p.LoopFrac = loopBlocks / blocks
	}
	if n := float64(len(mods)); n > 0 {
		p.AvgHandlerInstrs = instrs / n
	}
	return p
}

// UniformProfile is the unguided baseline synthesizer profile (Table 1's
// comparison point): every operator equally likely, corpus-independent
// structural rates.
func UniformProfile() Profile {
	ow := map[string]float64{}
	for _, op := range opNames {
		ow[op] = 1 / float64(len(opNames))
	}
	return Profile{
		OpWeights:        ow,
		BranchPerInstr:   0.02,
		LoopFrac:         0.5,
		StatePerInstr:    0.02,
		APIPerInstr:      0.02,
		AvgHandlerInstrs: 120,
	}
}

// Config controls generation.
type Config struct {
	Profile Profile
	// SizeJitter scales program sizes in [1−j, 1+j].
	SizeJitter float64
	// StateBias multiplies the profile's stateful-access rate — the
	// scale-out training sweep uses it to span arithmetic intensities.
	StateBias float64
	// ComputeBias multiplies straight-line compute block lengths.
	ComputeBias float64
	Seed        int64
}

func (c Config) norm() Config {
	if c.SizeJitter == 0 {
		c.SizeJitter = 0.5
	}
	if c.StateBias == 0 {
		c.StateBias = 1
	}
	if c.ComputeBias == 0 {
		c.ComputeBias = 1
	}
	return c
}

// generator emits one program.
type generator struct {
	cfg  Config
	rng  *rand.Rand
	b    strings.Builder
	vars []genVar // declared locals in scope
	n    int      // emitted statement budget tracker

	scalars  []string
	scalarTy []string
	arrays   []arrayVar
	maps     []string

	indent int
	vid    int
}

type genVar struct {
	name string
	ty   string
}

type arrayVar struct {
	name string
	size int
}

var pktGetters = []struct {
	name string
	ty   string
}{
	{"pkt_ip_src", "u32"}, {"pkt_ip_dst", "u32"}, {"pkt_ip_ttl", "u8"},
	{"pkt_ip_len", "u16"}, {"pkt_tcp_sport", "u16"}, {"pkt_tcp_dport", "u16"},
	{"pkt_tcp_seq", "u32"}, {"pkt_tcp_ack", "u32"}, {"pkt_tcp_flags", "u8"},
	{"pkt_len", "u16"}, {"pkt_ip_proto", "u8"},
	{"pkt_payload_len", "u16"}, {"pkt_time", "u64"}, {"pkt_ip_hl", "u8"},
	{"pkt_tcp_off", "u8"}, {"rand32", "u32"},
}

var pktSetters = []struct {
	name string
	ty   string
}{
	{"pkt_set_ip_src", "u32"}, {"pkt_set_ip_dst", "u32"}, {"pkt_set_ip_ttl", "u8"},
	{"pkt_set_tcp_sport", "u16"}, {"pkt_set_tcp_dport", "u16"},
	{"pkt_set_tcp_seq", "u32"}, {"pkt_set_tcp_ack", "u32"},
}

// Generate produces one compilable NFC element source.
func Generate(cfg Config) string {
	cfg = cfg.norm()
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	return g.program()
}

// GenerateModule generates and lowers one element, panicking on internal
// generator bugs (generated programs are valid by construction).
func GenerateModule(cfg Config, compile func(name, src string) (*ir.Module, error)) (*ir.Module, string, error) {
	src := Generate(cfg)
	name := fmt.Sprintf("synth_%d", cfg.Seed)
	m, err := compile(name, src)
	if err != nil {
		return nil, src, fmt.Errorf("synth: generated invalid program: %w", err)
	}
	return m, src, nil
}

func (g *generator) w(format string, args ...any) {
	for i := 0; i < g.indent; i++ {
		g.b.WriteByte('\t')
	}
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *generator) fresh(prefix string) string {
	g.vid++
	return fmt.Sprintf("%s%d", prefix, g.vid)
}

func (g *generator) pickOp() string {
	p := g.cfg.Profile
	r := g.rng.Float64()
	acc := 0.0
	for _, op := range opNames {
		acc += p.OpWeights[op]
		if r < acc {
			return op
		}
	}
	return "+"
}

// clampP bounds a statement-kind probability so that the cumulative
// selection ranges stay under 1 and every statement kind remains reachable
// regardless of the measured corpus profile.
func clampP(p, max float64) float64 {
	if p > max {
		return max
	}
	return p
}

func (g *generator) pickType() string {
	// Weight toward u32, the dominant packet-field width.
	switch g.rng.Intn(6) {
	case 0:
		return "u8"
	case 1:
		return "u16"
	case 2:
		return "u64"
	default:
		return "u32"
	}
}

// expr emits an expression of the given type with bounded depth.
func (g *generator) expr(ty string, depth int) string {
	if depth <= 0 || g.rng.Float64() < 0.3 {
		return g.atom(ty)
	}
	op := g.pickOp()
	l := g.expr(ty, depth-1)
	r := g.atom(ty)
	switch op {
	case "<<", ">>":
		return fmt.Sprintf("(%s %s %d)", l, op, 1+g.rng.Intn(7))
	case "/":
		// Constant divisors only; power-of-two vs general divides (and
		// remainders) exercise different compiler strength reductions.
		if g.rng.Intn(3) == 0 {
			return fmt.Sprintf("(%s %% %d)", l, 2+g.rng.Intn(14))
		}
		return fmt.Sprintf("(%s / %d)", l, 2+g.rng.Intn(14))
	default:
		return fmt.Sprintf("(%s %s %s)", l, op, r)
	}
}

// atom emits a leaf expression of the given type. The mix matters: the
// vendor compiler treats variable operands, small immediates and large
// immediates differently, so the training corpus must exercise all three.
func (g *generator) atom(ty string) string {
	apiP := g.cfg.Profile.APIPerInstr * 4
	if apiP > 0.22 {
		apiP = 0.22
	}
	roll := g.rng.Float64()
	// In-scope variable of the right type (real elements bind fields to
	// locals and reuse them; variable-dense atoms keep the lload/call mix
	// close to the corpus).
	if roll < 0.62 {
		var same []genVar
		for _, v := range g.vars {
			if v.ty == ty {
				same = append(same, v)
			}
		}
		if len(same) > 0 {
			return same[g.rng.Intn(len(same))].name
		}
	}
	// Packet getter (cast if needed).
	if roll < 0.62+apiP {
		gt := pktGetters[g.rng.Intn(len(pktGetters))]
		if gt.ty == ty {
			return gt.name + "()"
		}
		return fmt.Sprintf("%s(%s())", ty, gt.name)
	}
	// Literal: mix of small (foldable) and large (IMMED-requiring).
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("%d", g.rng.Intn(250)+1)
	}
	return fmt.Sprintf("0x%x", 0x100+g.rng.Intn(1<<24))
}

// simpleCond emits one comparison.
func (g *generator) simpleCond() string {
	ty := g.pickType()
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	switch g.rng.Intn(4) {
	case 0:
		// Flag-mask test, the forcetcp idiom: (x & M) == M / != 0.
		m := []int{1, 2, 3, 4, 6, 0x10, 0x12}[g.rng.Intn(7)]
		rhs := "0"
		if g.rng.Intn(2) == 0 {
			rhs = fmt.Sprintf("%d", m)
		}
		op := "!="
		if rhs != "0" {
			op = "=="
		}
		return fmt.Sprintf("(%s & %d) %s %s", g.atom("u8"), m, op, rhs)
	case 1:
		// Threshold against a constant.
		return fmt.Sprintf("%s %s %d", g.expr(ty, 1), ops[g.rng.Intn(len(ops))], g.rng.Intn(250))
	default:
		return fmt.Sprintf("%s %s %s", g.expr(ty, 1), ops[g.rng.Intn(len(ops))], g.atom(ty))
	}
}

func (g *generator) condition() string {
	c := g.simpleCond()
	switch g.rng.Intn(5) {
	case 0:
		// Compound condition (port lists, the ipclassifier idiom).
		return fmt.Sprintf("%s || %s", c, g.simpleCond())
	case 1:
		// Range test.
		v := g.atom("u16")
		lo := 1024 + g.rng.Intn(20000)
		return fmt.Sprintf("%s >= %d && %s <= %d", v, lo, v, lo+g.rng.Intn(200))
	default:
		return c
	}
}

// stmt emits one statement; budget counts down toward zero.
func (g *generator) stmt(budget *int, depth int) {
	if *budget <= 0 {
		return
	}
	*budget--
	p := g.cfg.Profile
	r := g.rng.Float64()

	stateP := clampP(p.StatePerInstr*6*g.cfg.StateBias, 0.40)
	branchP := clampP(p.BranchPerInstr*8, 0.22)
	loopP := clampP(p.LoopFrac*0.12, 0.10)
	setterP := clampP(p.APIPerInstr*2, 0.10)

	switch {
	case r < stateP && len(g.maps) > 0 && g.rng.Intn(2) == 0:
		m := g.maps[g.rng.Intn(len(g.maps))]
		key := g.fresh("k")
		g.w("u64 %s = (u64(%s) << 32) | u64(%s);", key, g.atom("u32"), g.atom("u32"))
		g.vars = append(g.vars, genVar{key, "u64"})
		switch g.rng.Intn(3) {
		case 0:
			v := g.fresh("v")
			g.w("u64 %s = map_find(%s, %s);", v, m, key)
			g.vars = append(g.vars, genVar{v, "u64"})
		case 1:
			g.w("map_insert(%s, %s, %s);", m, key, g.expr("u64", 1))
		default:
			g.w("if (map_contains(%s, %s)) { map_remove(%s, %s); }", m, key, m, key)
		}

	case r < stateP && len(g.arrays) > 0:
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		idx := fmt.Sprintf("%s & %d", g.atom("u32"), a.size-1)
		if g.rng.Intn(2) == 0 {
			v := g.fresh("t")
			g.w("u32 %s = %s[%s];", v, a.name, idx)
			g.vars = append(g.vars, genVar{v, "u32"})
		} else {
			g.w("%s[%s] += %s;", a.name, idx, g.expr("u32", 1))
		}

	case r < stateP+0.04 && len(g.scalars) > 0:
		i := g.rng.Intn(len(g.scalars))
		g.w("%s += %s;", g.scalars[i], g.expr(g.scalarTy[i], 1))

	case r < stateP+0.04+branchP*0.3 && depth < 2:
		// Dispatch chain: if/else-if ladder over a field, each arm doing a
		// little work and usually disposing of the packet (the protocol /
		// port dispatch idiom of classifiers and counters).
		field := []string{"pkt_ip_proto()", "pkt_tcp_dport()", "pkt_udp_dport()"}[g.rng.Intn(3)]
		arms := 2 + g.rng.Intn(3)
		for a := 0; a < arms; a++ {
			kw := "if"
			if a > 0 {
				kw = "} else if"
			}
			g.w("%s (%s == %d) {", kw, field, []int{1, 6, 17, 53, 80, 443, 123}[g.rng.Intn(7)])
			g.indent++
			saved := len(g.vars)
			g.stmt(budget, depth+2)
			if g.rng.Intn(2) == 0 {
				if g.rng.Intn(2) == 0 {
					g.w("pkt_drop();")
				} else {
					g.w("pkt_send(%d);", g.rng.Intn(4))
				}
				g.w("return;")
			}
			g.vars = g.vars[:saved]
			g.indent--
		}
		g.w("}")

	case r < stateP+0.04+branchP && depth < 3:
		g.w("if (%s) {", g.condition())
		g.indent++
		saved := len(g.vars)
		inner := 1 + g.rng.Intn(4)
		for i := 0; i < inner && *budget > 0; i++ {
			g.stmt(budget, depth+1)
		}
		g.vars = g.vars[:saved]
		g.indent--
		if g.rng.Intn(3) == 0 {
			g.w("} else {")
			g.indent++
			saved := len(g.vars)
			inner := 1 + g.rng.Intn(3)
			for i := 0; i < inner && *budget > 0; i++ {
				g.stmt(budget, depth+1)
			}
			g.vars = g.vars[:saved]
			g.indent--
		}
		g.w("}")

	case r < stateP+0.04+branchP+loopP && depth < 2:
		i := g.fresh("i")
		bound := []int{4, 8, 16, 32}[g.rng.Intn(4)]
		g.w("for (u32 %s = 0; %s < %d; %s += 1) {", i, i, bound, i)
		g.indent++
		saved := len(g.vars)
		g.vars = append(g.vars, genVar{i, "u32"})
		inner := 1 + g.rng.Intn(3)
		for k := 0; k < inner && *budget > 0; k++ {
			g.stmt(budget, depth+1)
		}
		g.vars = g.vars[:saved]
		g.indent--
		g.w("}")

	case r < stateP+0.04+branchP+loopP+setterP:
		st := pktSetters[g.rng.Intn(len(pktSetters))]
		g.w("%s(%s(%s));", st.name, st.ty, g.expr("u32", 1))

	case r < stateP+0.04+branchP+loopP+setterP+0.07:
		// Header-rewrite run: the dominant Click idiom — a straight block
		// of getter/setter calls with almost no core compute between them
		// (address swaps, encapsulation). Without these in the corpus the
		// model overpredicts compute for call-dense blocks.
		n := 2 + g.rng.Intn(5)
		for k := 0; k < n; k++ {
			st := pktSetters[g.rng.Intn(len(pktSetters))]
			gt := pktGetters[g.rng.Intn(len(pktGetters))]
			switch g.rng.Intn(3) {
			case 0: // pure field copy
				g.w("%s(%s(%s()));", st.name, st.ty, gt.name)
			case 1: // field with a small adjustment
				g.w("%s(%s(%s() + %d));", st.name, st.ty, gt.name, 1+g.rng.Intn(8))
			default: // masked/shifted field
				g.w("%s(%s((%s(%s()) >> %d) & 0x%x));", st.name, st.ty, st.ty,
					gt.name, g.rng.Intn(5), 0xf+g.rng.Intn(0xff0))
			}
		}
		if g.rng.Intn(2) == 0 {
			g.w("pkt_csum_update();")
		}

	case r < stateP+0.04+branchP+loopP+setterP+0.07+0.04:
		// Header-length arithmetic (the hdr_size idiom of Figure 4).
		v := g.fresh("hm")
		g.w("u16 %s = pkt_ip_len() - (u16(pkt_ip_hl()) << 2) - (u16(pkt_tcp_off()) << 2);", v)
		g.vars = append(g.vars, genVar{v, "u16"})

	case r < stateP+0.04+branchP+loopP+setterP+0.07+0.04+0.08:
		// Cover the rest of the framework surface so real elements'
		// instruction words all appear in the training vocabulary.
		switch g.rng.Intn(6) {
		case 0:
			g.w("pkt_csum_update();")
		case 1:
			v := g.fresh("pb")
			g.w("u8 %s = pkt_payload(%s & 63);", v, g.atom("u32"))
			g.vars = append(g.vars, genVar{v, "u8"})
		case 2:
			g.w("pkt_set_payload(%s & 63, u8(%s));", g.atom("u32"), g.expr("u32", 1))
		case 3:
			v := g.fresh("ts")
			g.w("u64 %s = pkt_time();", v)
			g.vars = append(g.vars, genVar{v, "u64"})
		case 4:
			v := g.fresh("h")
			g.w("u32 %s = hash32(u64(%s));", v, g.atom("u32"))
			g.vars = append(g.vars, genVar{v, "u32"})
		default:
			v := g.fresh("nv")
			g.w("u32 %s = ~%s;", v, g.atom("u32"))
			g.vars = append(g.vars, genVar{v, "u32"})
		}

	default:
		// Straight-line compute: declare-and-combine.
		ty := g.pickType()
		v := g.fresh("x")
		depthE := 1 + int(float64(g.rng.Intn(3))*g.cfg.ComputeBias)
		g.w("%s %s = %s;", ty, v, g.expr(ty, depthE))
		g.vars = append(g.vars, genVar{v, ty})
	}
}

func (g *generator) program() string {
	p := g.cfg.Profile

	// Stateful declarations scale with the profile's state rate.
	nScalars := g.rng.Intn(3)
	nArrays := 0
	nMaps := 0
	if p.StatePerInstr > 0.005 {
		nScalars = 1 + g.rng.Intn(4)
		nArrays = g.rng.Intn(3)
		nMaps = g.rng.Intn(3)
	}
	for i := 0; i < nScalars; i++ {
		name := g.fresh("g")
		ty := "u32"
		if g.rng.Intn(4) == 0 {
			ty = "u64"
		}
		g.scalars = append(g.scalars, name)
		g.scalarTy = append(g.scalarTy, ty)
		g.w("global %s %s;", ty, name)
	}
	for i := 0; i < nArrays; i++ {
		name := g.fresh("arr")
		size := []int{64, 256, 1024, 4096}[g.rng.Intn(4)]
		g.arrays = append(g.arrays, arrayVar{name, size})
		g.w("global u32 %s[%d];", name, size)
	}
	for i := 0; i < nMaps; i++ {
		name := g.fresh("m")
		size := []int{1024, 4096, 16384, 65536}[g.rng.Intn(4)]
		g.maps = append(g.maps, name)
		g.w("map<u64,u64> %s[%d];", name, size)
	}

	g.w("")
	g.w("void handle() {")
	g.indent++
	// Prologue: bind a handful of packet fields to locals — the universal
	// Click element idiom (Figure 4 reads header fields into temporaries
	// before the core logic).
	nBind := 2 + g.rng.Intn(4)
	for i := 0; i < nBind; i++ {
		gt := pktGetters[g.rng.Intn(len(pktGetters))]
		v := g.fresh("f")
		g.w("%s %s = %s();", gt.ty, v, gt.name)
		g.vars = append(g.vars, genVar{v, gt.ty})
	}
	jit := 1 + (g.rng.Float64()*2-1)*g.cfg.SizeJitter
	budget := int(p.AvgHandlerInstrs / 4 * jit)
	if budget < 4 {
		budget = 4
	}
	for budget > 0 {
		g.stmt(&budget, 0)
	}
	if g.rng.Intn(4) == 0 {
		g.w("pkt_drop();")
	} else {
		g.w("pkt_send(%d);", g.rng.Intn(4))
	}
	g.indent--
	g.w("}")
	return g.b.String()
}
