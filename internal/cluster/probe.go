package cluster

import (
	"context"
	"net/http"
	"time"
)

// probeLoop health-checks one worker until ctx ends. A live worker is
// probed every ProbeInterval; once it fails (or a dispatch marks it
// dead first), the interval doubles per failed probe up to
// ProbeBackoffMax — a crashed worker should not be hammered at full
// cadence, but a restarted one should be rediscovered within one
// backoff step. A 200 /healthz resets both the liveness and the
// cadence, which is what restores the worker's hash range: owner()
// consults only the alive flag, so rejoin is effective the instant the
// probe succeeds.
func (c *Coordinator) probeLoop(ctx context.Context, w *workerState) {
	interval := c.cfg.ProbeInterval
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		ok := c.probe(ctx, w)
		c.mu.Lock()
		switch {
		case ok:
			w.alive = true
			interval = c.cfg.ProbeInterval
		case w.alive:
			w.alive = false
			w.deaths++
			interval = c.cfg.ProbeInterval
		default:
			interval *= 2
			if interval > c.cfg.ProbeBackoffMax {
				interval = c.cfg.ProbeBackoffMax
			}
		}
		c.mu.Unlock()
		t.Reset(interval)
	}
}

// probe issues one /healthz check. Anything but a 200 inside the
// probe timeout — transport error, 503 while training or draining —
// counts as down; a draining worker in particular must shed its hash
// range before it stops answering analyses.
func (c *Coordinator) probe(ctx context.Context, w *workerState) bool {
	timeout := c.cfg.ProbeInterval
	if timeout > 5*time.Second {
		timeout = 5 * time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, "GET", w.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
