package core

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"clara/internal/click"
	"clara/internal/niccc"
)

// Quantized weights persisted in the bundle must predict bit-identically
// to the quantized twins the original tool built in memory — and to the
// twins a loader rebuilds on the fly — because quantization itself is
// deterministic.
func TestBundleQuantizedRoundTrip(t *testing.T) {
	path, _, tool := saveTinyBundle(t)
	loaded, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Minor != BundleMinor {
		t.Fatalf("Minor = %d, want %d", loaded.Minor, BundleMinor)
	}
	got, err := loaded.Tool()
	if err != nil {
		t.Fatal(err)
	}
	tool.Predictor.SetQuantize(true)
	got.Predictor.SetQuantize(true)
	defer tool.Predictor.SetQuantize(false)
	for _, name := range []string{"tcpack", "mazunat", "iprewriter"} {
		m := click.Get(name).MustModule()
		want, err := tool.Predictor.PredictModule(m, niccc.AccelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Predictor.PredictModule(m, niccc.AccelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Blocks {
			if math.Float64bits(want.Blocks[i].Compute) != math.Float64bits(have.Blocks[i].Compute) {
				t.Fatalf("%s block %d: quantized compute differs after reload", name, i)
			}
		}
	}
}

// A pre-minor-1 bundle (no "minor" field, no persisted quantized state)
// must still load, and its tool must quantize on the fly when asked.
func TestBundleMinorZeroCompat(t *testing.T) {
	path, _, _ := saveTinyBundle(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	// Strip the minor-1 additions the way an old writer would have:
	// neither field existed, and both are omitempty, so removing them
	// recreates a minor-0 document. The content hash must be recomputed
	// as an old writer's would be.
	delete(raw, "minor")
	var pred map[string]json.RawMessage
	if err := json.Unmarshal(raw["predictor"], &pred); err != nil {
		t.Fatal(err)
	}
	delete(pred, "quant")
	pblob, err := json.Marshal(pred)
	if err != nil {
		t.Fatal(err)
	}
	raw["predictor"] = pblob
	delete(raw, "hash")
	unhashed, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var b Bundle
	if err := json.Unmarshal(unhashed, &b); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(t.TempDir(), "minor0.json")
	if err := SaveBundle(old, &b); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(old)
	if err != nil {
		t.Fatalf("minor-0 bundle rejected: %v", err)
	}
	tool, err := loaded.Tool()
	if err != nil {
		t.Fatal(err)
	}
	tool.Predictor.SetQuantize(true)
	m := click.Get("tcpack").MustModule()
	if _, err := tool.Predictor.PredictModule(m, niccc.AccelConfig{}); err != nil {
		t.Fatalf("quantize-on-the-fly predict: %v", err)
	}
	if !tool.Predictor.Quantized() {
		t.Fatal("predictor did not report quantized")
	}
}
