// Command compare diffs two perfbench reports field by field:
//
//	compare OLD.json NEW.json
//
// Numeric fields print old, new, and the relative change; fields present
// in only one report are listed informationally — a metric missing from
// the older committed baseline prints as "(new)" and is never an error,
// so growing the perfbench report can't break `make bench-compare`
// against historical BENCH_PR*.json files. Nested structures (the
// convergence and cluster grids) flatten into dotted keys — cluster rows
// by worker count (cluster.w2.jobs_per_sec), convergence rows by
// scenario/policy — so their numeric cells diff like top-level fields.
// It exits 0 regardless of the deltas — benchmark numbers from different
// machines are not comparable, so the diff informs rather than gates
// (the Makefile's bench-compare target wraps it fail-soft).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: compare OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(os.Args[1])
	if err != nil {
		fatal(err)
	}
	newRep, err := load(os.Args[2])
	if err != nil {
		fatal(err)
	}
	for _, line := range diff(oldRep, newRep) {
		fmt.Println(line)
	}
}

// diff renders the field-by-field comparison of two flattened reports.
// Asymmetric keys are informational by construction: "(new)" for metrics
// the older baseline predates, "(removed)" for ones the newer report
// dropped. Unchanged non-numeric fields are omitted.
func diff(oldRep, newRep map[string]any) []string {
	keys := make(map[string]bool)
	for k := range oldRep {
		keys[k] = true
	}
	for k := range newRep {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var out []string
	for _, k := range sorted {
		ov, oldOK := oldRep[k]
		nv, newOK := newRep[k]
		switch {
		case !oldOK:
			out = append(out, fmt.Sprintf("  %-36s (new)        %v", k, nv))
		case !newOK:
			out = append(out, fmt.Sprintf("  %-36s (removed)    %v", k, ov))
		default:
			of, oNum := ov.(float64)
			nf, nNum := nv.(float64)
			if oNum && nNum && of != 0 {
				out = append(out, fmt.Sprintf("  %-36s %12.4g -> %-12.4g (%+.1f%%)", k, of, nf, 100*(nf-of)/of))
			} else if fmt.Sprint(ov) != fmt.Sprint(nv) {
				out = append(out, fmt.Sprintf("  %-36s %v -> %v", k, ov, nv))
			}
		}
	}
	return out
}

func load(path string) (map[string]any, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(blob, path)
}

// parse decodes a report into its flattened leaf-key form. Reports are
// schema-free maps, so a baseline written before a metric existed simply
// lacks its keys — never a decode error.
func parse(blob []byte, path string) (map[string]any, error) {
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		flatten(k, v, out)
	}
	return out, nil
}

// flatten expands nested objects and arrays into dotted keys so every
// leaf diffs independently. Array elements get a content-derived label
// when the row has a natural identity — worker count for cluster rows,
// scenario/policy for convergence rows — and fall back to the index,
// so reordered rows still line up across reports where possible.
func flatten(prefix string, v any, out map[string]any) {
	switch t := v.(type) {
	case map[string]any:
		for k, sub := range t {
			flatten(prefix+"."+k, sub, out)
		}
	case []any:
		for i, sub := range t {
			flatten(prefix+"."+rowLabel(i, sub), sub, out)
		}
	default:
		out[prefix] = v
	}
}

func rowLabel(i int, v any) string {
	m, ok := v.(map[string]any)
	if !ok {
		return fmt.Sprint(i)
	}
	if w, ok := m["workers"].(float64); ok {
		return fmt.Sprintf("w%.0f", w)
	}
	if sc, ok := m["scenario"].(string); ok {
		if pol, ok := m["policy"].(string); ok {
			return sc + "/" + pol
		}
	}
	return fmt.Sprint(i)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}
