package experiments

import (
	"fmt"

	"clara/internal/click"
	"clara/internal/interp"
	"clara/internal/lang"
	"clara/internal/ml"
	"clara/internal/nicsim"
	"clara/internal/stats"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// Figure9 reproduces the algorithm-identification comparison: precision
// and recall of Clara's SVM against AutoML, kNN, DNN, DT and GBDT on a
// held-out corpus (§5.3).
func Figure9(ctx *Context) (*Table, error) {
	id, err := ctx.AlgoID()
	if err != nil {
		return nil, err
	}
	nTest := 40
	if ctx.Cfg.Quick {
		nTest = 12
	}
	test := synth.AlgoCorpus(nTest, ctx.Cfg.Seed+31337)

	// Shared feature sets for the baselines: the same mined-subsequence +
	// manual features Clara's SVM consumes.
	trainCorpus := algoTrainCorpus(40, ctx.Cfg.Seed)
	if ctx.Cfg.Quick {
		trainCorpus = algoTrainCorpus(14, ctx.Cfg.Seed)
	}
	Xtr, ytr, err := id.FeatureDataset(trainCorpus)
	if err != nil {
		return nil, err
	}
	Xte, yte, err := id.FeatureDataset(test)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "figure9",
		Title:  "Algorithm identification precision/recall",
		Header: []string{"model", "precision", "recall"},
	}

	evalPreds := func(preds []int) (float64, float64) {
		return stats.PrecisionRecall(yte, preds)
	}

	// Clara (SVM over summary features + structural prior).
	var claraPred []int
	for _, p := range test {
		m, err := lang.Compile(p.Name, p.Src)
		if err != nil {
			return nil, err
		}
		claraPred = append(claraPred, id.Classify(m))
	}
	cp, cr := evalPreds(claraPred)
	t.AddRow("Clara(SVM)", pct(cp), pct(cr))

	run := func(name string, model ml.Classifier) {
		preds := make([]int, len(Xte))
		for i := range Xte {
			preds[i] = model.PredictClass(Xte[i])
		}
		p, r := evalPreds(preds)
		t.AddRow(name, pct(p), pct(r))
	}
	auto, autoRes, err := ml.AutoMLClassifier(Xtr, ytr, 4, ctx.Cfg.Seed+41)
	if err != nil {
		return nil, err
	}
	run("AutoML", auto)
	run("kNN", ml.FitKNNClassifier(Xtr, ytr, 5))
	dnn, _ := ml.TrainMLP(Xtr, ml.OneHot(ytr, 3), ml.MLPConfig{
		Layers: []int{len(Xtr[0]), 24, 3}, Epochs: 40, Seed: ctx.Cfg.Seed + 42, Classification: true,
	})
	run("DNN", dnn)
	run("DT", ml.FitTreeClassifier(Xtr, ytr, ml.TreeConfig{MaxDepth: 8}))
	run("GBDT", ml.FitGBDTClassifier(Xtr, ytr, ml.GBDTConfig{Trees: 40, Seed: ctx.Cfg.Seed + 43}))

	t.Notef("paper: Clara precision 96.6%%, recall 83.3%%; other models on par (distinct features)")
	t.Notef("AutoML selected: %s", autoRes.Pipeline)
	return t, nil
}

// Figure10a reproduces the PCA view: the two leading principal components
// of the classifier features separate positive and negative examples.
func Figure10a(ctx *Context) (*Table, error) {
	id, err := ctx.AlgoID()
	if err != nil {
		return nil, err
	}
	n := 30
	if ctx.Cfg.Quick {
		n = 10
	}
	corpus := synth.AlgoCorpus(n, ctx.Cfg.Seed+555)
	X, y, err := id.FeatureDataset(corpus)
	if err != nil {
		return nil, err
	}
	pca := ml.FitPCA(X, 2, ctx.Cfg.Seed)
	// Quantify separation: distance between class centroids in PC space
	// relative to within-class spread.
	type acc struct {
		sum [2]float64
		n   float64
	}
	cents := map[int]*acc{}
	var proj [][]float64
	for i, x := range X {
		p := pca.Project(x)
		proj = append(proj, p)
		a := cents[y[i]]
		if a == nil {
			a = &acc{}
			cents[y[i]] = a
		}
		a.sum[0] += p[0]
		a.sum[1] += p[1]
		a.n++
	}
	var spread float64
	for i, p := range proj {
		a := cents[y[i]]
		dx := p[0] - a.sum[0]/a.n
		dy := p[1] - a.sum[1]/a.n
		spread += dx*dx + dy*dy
	}
	spread /= float64(len(proj))

	t := &Table{
		ID:     "figure10a",
		Title:  "PCA separation of algorithm-ID features (class centroids in PC1/PC2)",
		Header: []string{"class", "centroid PC1", "centroid PC2", "count"},
	}
	for _, cls := range []int{0, 1, 2} {
		a := cents[cls]
		if a == nil {
			continue
		}
		name := []string{"none", "CRC", "LPM"}[cls]
		t.AddRow(name, f2(a.sum[0]/a.n), f2(a.sum[1]/a.n), fmt.Sprintf("%d", int(a.n)))
	}
	// Pairwise centroid separation vs within-class spread.
	var minSep float64 = 1e18
	classes := []int{0, 1, 2}
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			a, b := cents[classes[i]], cents[classes[j]]
			dx := a.sum[0]/a.n - b.sum[0]/b.n
			dy := a.sum[1]/a.n - b.sum[1]/b.n
			if d := dx*dx + dy*dy; d < minSep {
				minSep = d
			}
		}
	}
	t.Notef("min centroid separation / mean within-class spread = %.2f (>1 means visibly separated clusters)", minSep/spread)
	return t, nil
}

// Figure10b reproduces the CRC-accelerator benefit: cmsketch and wepdecap
// under naive porting vs Clara's engine port (§5.3: throughput up to 1.6x,
// latency −25%).
func Figure10b(ctx *Context) (*Table, error) {
	params := ctx.Cfg.Params
	n := ctx.packets(3000)
	cores := 16
	wl := traffic.MediumMix

	t := &Table{
		ID:     "figure10b",
		Title:  "CRC accelerator: naive port vs Clara port",
		Header: []string{"NF", "port", "throughput(Mpps)", "latency(us)"},
	}
	pairs := [][2]string{{"cmsketch", "cmsketch_crc"}, {"wepdecap", "wepdecap_crc"}}
	for _, pair := range pairs {
		naive, _, err := runNF(params, elementNF(pair[0], nil), wl, n, cores)
		if err != nil {
			return nil, err
		}
		accel, _, err := runNF(params, elementNF(pair[1], func(nf *nicsim.NF) {
			nf.Accel.CRCEngine = true
		}), wl, n, cores)
		if err != nil {
			return nil, err
		}
		t.AddRow(pair[0], "naive", f2(naive.ThroughputMpps), f2(naive.AvgLatencyUs))
		t.AddRow(pair[0], "Clara(CRC engine)", f2(accel.ThroughputMpps), f2(accel.AvgLatencyUs))
		t.Notef("%s: throughput %.2fx, latency %+.0f%%", pair[0],
			accel.ThroughputMpps/naive.ThroughputMpps,
			100*(accel.AvgLatencyUs-naive.AvgLatencyUs)/naive.AvgLatencyUs)
	}
	t.Notef("paper: peak throughput up to 1.6x, latency down up to 25%%")
	return t, nil
}

// Figure10c reproduces the LPM-accelerator sweep: iplookup naive (software
// trie) vs Clara port (LPM engine + flow cache) across rule-table sizes
// (§5.3: roughly one order of magnitude).
func Figure10c(ctx *Context) (*Table, error) {
	params := ctx.Cfg.Params
	n := ctx.packets(2500)
	cores := 16
	wl := traffic.MediumMix

	t := &Table{
		ID:     "figure10c",
		Title:  "LPM accelerator sweep over rule-table size",
		Header: []string{"rules", "naive Th", "naive Lat", "Clara Th", "Clara Lat", "lat ratio"},
	}
	sizes := []int{16, 32, 64, 128, 256, 512, 1024}
	if ctx.Cfg.Quick {
		sizes = []int{16, 128, 1024}
	}
	for _, rules := range sizes {
		routes := click.GenRoutes(rules, 41)
		naiveNF := elementNF("iplookup", func(nf *nicsim.NF) {
			nf.Setup = func(m *interp.Machine) error {
				return click.InstallTrie(m, routes, "trie_left", "trie_right", "trie_port", 65536)
			}
		})
		naive, _, err := runNF(params, naiveNF, wl, n, cores)
		if err != nil {
			return nil, err
		}
		accelNF := elementNF("iplookup_lpm", func(nf *nicsim.NF) {
			nf.LPMTable = routes
			nf.Accel.LPMEngine = true
			nf.Accel.FlowCache = true
			nf.Accel.CsumEngine = true
		})
		accel, _, err := runNF(params, accelNF, wl, n, cores)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", rules),
			f2(naive.ThroughputMpps), f2(naive.AvgLatencyUs),
			f2(accel.ThroughputMpps), f2(accel.AvgLatencyUs),
			fmt.Sprintf("%.1fx", naive.AvgLatencyUs/accel.AvgLatencyUs))
	}
	t.Notef("paper: throughput up and latency down by roughly one order of magnitude")
	return t, nil
}
