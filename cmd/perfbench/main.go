// Command perfbench measures the training/serving fast path end to end
// and writes the numbers as JSON (the committed BENCH_PR6.json):
//
//   - cold-start: full quick-mode tool training (corpus synthesis +
//     LSTM predictor + algorithm ID + scale-out model);
//   - warm-start: persisting the trained tool as a model bundle and
//     loading it back — the `clara -serve -model-load` startup path;
//   - train throughput: LSTM minibatch training samples/sec at the
//     bundle's batch size;
//   - predict latency: µs per basic block across the whole element
//     library, module by module;
//   - batched predict latency: the same library predicted in one
//     PredictModules sweep (f32 and int8-quantized paths);
//   - quantized accuracy drift: worst per-element WMAPE delta between
//     the int8 and f32 paths;
//   - fleet throughput: library × workloads jobs/sec on the analysis
//     pool (cold prediction cache);
//   - offload convergence: rounds-to-steady-state of the online offload
//     controller per threshold policy per traffic scenario, with the
//     insight policy seeded from the trained predictor's prediction for
//     a real library NF (the PR7 headline comparison);
//   - cluster throughput: the same analysis batch served through an
//     in-process coordinator fronting 1, 2, and 4 single-threaded
//     workers (the PR9 scaling grid; speedup_vs_1 is recorded honestly,
//     so a 1-CPU runner reports ~1x);
//   - host profiling: µs per workload packet through the compiled
//     direct-threaded interpreter backend, and its speedup over the
//     reference switch-dispatch loop on the identical packet stream
//     (the PR10 headline).
//
// Usage:
//
//	perfbench [-quick] [-out BENCH_PR10.json]
//
// -quick shrinks the measured workloads for CI smoke runs; the
// committed numbers come from a run without it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"clara"
	"clara/internal/core"
	"clara/internal/interp"
	"clara/internal/ml"
	"clara/internal/niccc"
	"clara/internal/offload"
	"clara/internal/traffic"
)

// report is the BENCH_PR7.json schema.
type report struct {
	GeneratedUnix      int64   `json:"generated_unix"`
	GoMaxProcs         int     `json:"gomaxprocs"`
	Quick              bool    `json:"quick"`
	ColdStartSeconds   float64 `json:"cold_start_seconds"`
	WarmStartSeconds   float64 `json:"warm_start_seconds"`
	BundleBytes        int64   `json:"bundle_bytes"`
	ModelHash          string  `json:"model_hash"`
	TrainSamplesPerSec float64 `json:"train_samples_per_sec"`
	PredictUsPerBlock  float64 `json:"predict_us_per_block"`
	// PredictBatchUsPerBlock amortizes one PredictModules sweep over the
	// whole element library; PredictInt8UsPerBlock is the same sweep on
	// the int8-quantized path.
	PredictBatchUsPerBlock float64 `json:"predict_batch_us_per_block"`
	PredictInt8UsPerBlock  float64 `json:"predict_int8_us_per_block"`
	// QuantizedWmapeDrift is the worst per-element |WMAPE(int8) -
	// WMAPE(f32)| (the accuracy gate pins it below 0.005).
	QuantizedWmapeDrift float64 `json:"quantized_wmape_drift"`
	FleetJobsPerSec     float64 `json:"fleet_jobs_per_sec"`
	// ProfileUsPerPacket is host profiling's per-packet cost on the
	// compiled direct-threaded backend (the fleet's hot loop);
	// CompiledSpeedup is the reference interpreter's wall time over the
	// compiled backend's on the identical profiling workload.
	ProfileUsPerPacket float64 `json:"profile_us_per_packet"`
	CompiledSpeedup    float64 `json:"compiled_speedup"`
	// ConvergenceNF is the library element whose trained prediction
	// derives the NIC capacities and seeds the insight policy; the
	// Convergence rows compare rounds-to-steady-state (drop rate <= 1%)
	// across the three threshold policies on each traffic scenario
	// (convergence_round -1 = never converged within the run).
	ConvergenceNF     string           `json:"convergence_nf"`
	ConvergenceRounds int              `json:"convergence_rounds"`
	Convergence       []convergenceRow `json:"convergence"`
	// Cluster is the coordinator/worker scaling grid: hot-cache batch
	// throughput through an in-process cluster of N workers.
	Cluster []clusterRow `json:"cluster"`
}

// clusterRow is one worker-count cell of the cluster scaling grid.
type clusterRow struct {
	Workers    int     `json:"workers"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// SpeedupVs1 is JobsPerSec over the 1-worker row's — the scaling
	// headline. On a single-CPU host the in-process workers share one
	// core, so ~1.0 is the honest expectation there.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	// CacheHitRate is the merged cluster hit rate after the measured
	// batches: content-hash routing should keep it near 1.0 once warm.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// convergenceRow is one policy × scenario cell of the offload-controller
// comparison.
type convergenceRow struct {
	Scenario         string  `json:"scenario"`
	Policy           string  `json:"policy"`
	InitialThreshold int     `json:"initial_threshold"`
	FinalThreshold   int     `json:"final_threshold"`
	ConvergenceRound int     `json:"convergence_round"`
	FinalDropRate    float64 `json:"final_drop_rate"`
	FinalOffloadRate float64 `json:"final_offload_rate"`
}

func main() {
	quick := flag.Bool("quick", false, "smaller measured workloads (CI smoke)")
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	flag.Parse()

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Quick:         *quick,
	}
	cfg := clara.TrainConfig{Quick: true, Seed: 42}

	// Cold start: the whole training pipeline, as `clara -serve` without
	// a bundle would run it.
	fmt.Fprintln(os.Stderr, "perfbench: cold-start training...")
	t0 := time.Now()
	tool, err := clara.TrainContext(context.Background(), cfg)
	if err != nil {
		fatal(err)
	}
	rep.ColdStartSeconds = time.Since(t0).Seconds()

	// Warm start: bundle round trip — `-model-save` then `-model-load`.
	dir, err := os.MkdirTemp("", "perfbench-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	bundlePath := filepath.Join(dir, "model.json")
	if _, err := clara.SaveTool(bundlePath, tool, cfg, rep.ColdStartSeconds); err != nil {
		fatal(err)
	}
	if fi, err := os.Stat(bundlePath); err == nil {
		rep.BundleBytes = fi.Size()
	}
	t0 = time.Now()
	warm, hash, err := clara.LoadTool(bundlePath, cfg)
	if err != nil {
		fatal(err)
	}
	rep.WarmStartSeconds = time.Since(t0).Seconds()
	rep.ModelHash = hash

	// Training throughput: LSTM minibatch epochs over a synthetic token
	// corpus, the shape the predictor trains on.
	n, epochs := 400, 6
	if *quick {
		n, epochs = 100, 2
	}
	rep.TrainSamplesPerSec = trainThroughput(n, epochs)

	// Predict latency: every library element, block by block, on the
	// warm-started tool.
	iters := 5
	if *quick {
		iters = 1
	}
	us, err := predictLatency(warm, iters)
	if err != nil {
		fatal(err)
	}
	rep.PredictUsPerBlock = us

	// Batched predict latency: the whole library in one sweep, f32 then
	// int8; plus the quantization accuracy drift the gate test pins.
	batchIters := 20
	if *quick {
		batchIters = 2
	}
	if rep.PredictBatchUsPerBlock, err = predictBatchLatency(warm, batchIters, false); err != nil {
		fatal(err)
	}
	if rep.PredictInt8UsPerBlock, err = predictBatchLatency(warm, batchIters, true); err != nil {
		fatal(err)
	}
	if rep.QuantizedWmapeDrift, err = quantizedDrift(warm); err != nil {
		fatal(err)
	}

	// Fleet throughput: the full library × standard-workloads sweep on
	// the analysis pool, cold prediction cache.
	jobs, err := clara.LibraryJobs()
	if err != nil {
		fatal(err)
	}
	fl, err := clara.NewFleet(warm, clara.FleetConfig{})
	if err != nil {
		fatal(err)
	}
	t0 = time.Now()
	results, err := fl.Run(jobs)
	if err != nil {
		fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			fatal(fmt.Errorf("fleet job %s: %w", r.Name, r.Err))
		}
	}
	rep.FleetJobsPerSec = float64(len(results)) / time.Since(t0).Seconds()

	// Host-profiling microbench: the same packet stream through both
	// interpreter backends.
	fmt.Fprintln(os.Stderr, "perfbench: host-profiling backends benchmark...")
	profPkts := 40000
	if *quick {
		profPkts = 4000
	}
	if rep.ProfileUsPerPacket, rep.CompiledSpeedup, err = profileBench(profPkts); err != nil {
		fatal(err)
	}

	// Offload-controller convergence: how many rounds each threshold
	// policy needs to reach steady state, with the insight policy seeded
	// from the warm-started predictor's prediction for a real NF.
	fmt.Fprintln(os.Stderr, "perfbench: offload convergence benchmark...")
	rep.ConvergenceNF = "ecmp"
	rep.ConvergenceRounds = 96
	rep.Convergence, err = convergenceBench(warm, rep.ConvergenceNF, rep.ConvergenceRounds)
	if err != nil {
		fatal(err)
	}

	// Cluster scaling: the library batch served through a coordinator
	// fronting 1/2/4 in-process workers.
	fmt.Fprintln(os.Stderr, "perfbench: cluster scaling benchmark...")
	clusterIters := 10
	if *quick {
		clusterIters = 2
	}
	rep.Cluster, err = clusterBench(warm, clusterIters)
	if err != nil {
		fatal(err)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "perfbench: wrote %s\n", *out)
	fmt.Println(string(blob))
}

// trainThroughput times LSTM minibatch training over a synthetic
// sequence corpus (the predictor's training shape) and returns
// samples/sec, counting each sample once per epoch.
func trainThroughput(n, epochs int) float64 {
	const vocab = 16
	rng := rand.New(rand.NewSource(11))
	samples := make([]ml.SeqSample, n)
	for i := range samples {
		ln := 4 + rng.Intn(24)
		toks := make([]int, ln)
		sum := 0.0
		for j := range toks {
			toks[j] = rng.Intn(vocab)
			sum += float64(toks[j])
		}
		samples[i] = ml.SeqSample{Tokens: toks, Target: []float64{sum}}
	}
	cfg := ml.LSTMConfig{Vocab: vocab, Hidden: 24, Epochs: epochs, Seed: 3, Batch: 8}
	t0 := time.Now()
	ml.TrainLSTM(samples, cfg)
	return float64(n*epochs) / time.Since(t0).Seconds()
}

// predictLatency runs the predictor over every library element and
// returns mean µs per basic block.
func predictLatency(tool *clara.Tool, iters int) (float64, error) {
	var blocks int
	var total time.Duration
	for it := 0; it < iters; it++ {
		for _, e := range clara.Elements() {
			mod, err := e.Module()
			if err != nil {
				return 0, err
			}
			t0 := time.Now()
			pred, err := tool.Predictor.PredictModule(mod, niccc.AccelConfig{})
			if err != nil {
				return 0, err
			}
			total += time.Since(t0)
			blocks += len(pred.Blocks)
		}
	}
	if blocks == 0 {
		return 0, fmt.Errorf("no blocks predicted")
	}
	return float64(total.Microseconds()) / float64(blocks), nil
}

// predictBatchLatency predicts every library element in one
// PredictModules sweep per iteration and returns mean µs per basic
// block, optionally on the int8-quantized path.
func predictBatchLatency(tool *clara.Tool, iters int, quantize bool) (float64, error) {
	var mods []*clara.Module
	for _, e := range clara.Elements() {
		mod, err := e.Module()
		if err != nil {
			return 0, err
		}
		mods = append(mods, mod)
	}
	tool.Predictor.SetQuantize(quantize)
	defer tool.Predictor.SetQuantize(false)
	var blocks int
	var total time.Duration
	for it := 0; it < iters; it++ {
		t0 := time.Now()
		preds, err := tool.Predictor.PredictModules(mods, niccc.AccelConfig{})
		if err != nil {
			return 0, err
		}
		total += time.Since(t0)
		for _, p := range preds {
			blocks += len(p.Blocks)
		}
	}
	if blocks == 0 {
		return 0, fmt.Errorf("no blocks predicted")
	}
	return float64(total.Nanoseconds()) / 1e3 / float64(blocks), nil
}

// quantizedDrift returns the worst per-element |WMAPE(int8) -
// WMAPE(f32)| across the library.
func quantizedDrift(tool *clara.Tool) (float64, error) {
	p := tool.Predictor
	defer p.SetQuantize(false)
	var worst float64
	for _, e := range clara.Elements() {
		mod, err := e.Module()
		if err != nil {
			return 0, err
		}
		p.SetQuantize(false)
		f32, err := p.Evaluate(mod)
		if err != nil {
			return 0, err
		}
		p.SetQuantize(true)
		q, err := p.Evaluate(mod)
		if err != nil {
			return 0, err
		}
		if d := math.Abs(q.WMAPE - f32.WMAPE); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// convergenceBench runs the policy × scenario grid of the offload
// controller at a fixed seed: capacities derive from the trained
// predictor's prediction for nfName, the baselines start from the
// hand-set defaults, the insight policy from SeedFromPrediction.
func convergenceBench(tool *clara.Tool, nfName string, rounds int) ([]convergenceRow, error) {
	e := clara.GetElement(nfName)
	if e == nil {
		return nil, fmt.Errorf("unknown element %q", nfName)
	}
	mod, err := e.Module()
	if err != nil {
		return nil, err
	}
	mp, err := tool.Predictor.PredictModule(mod, niccc.AccelConfig{})
	if err != nil {
		return nil, err
	}
	caps := offload.DeriveCapacities(tool.Params, mp)
	var rows []convergenceRow
	for _, sc := range offload.Scenarios() {
		for _, kind := range []offload.PolicyKind{offload.PolicyStatic, offload.PolicyDynamic, offload.PolicyInsight} {
			var pol offload.PolicyConfig
			if kind == offload.PolicyInsight {
				pol = offload.SeedPolicy(sc, caps)
			} else {
				pol = offload.BaselinePolicy(kind, sc)
			}
			traj, err := offload.Simulate(offload.Config{
				Scenario: sc, Capacity: caps, Policy: pol, Rounds: rounds, Seed: 7,
			})
			if err != nil {
				return nil, err
			}
			last := traj.Rounds[len(traj.Rounds)-1]
			rows = append(rows, convergenceRow{
				Scenario:         sc.Name,
				Policy:           kind.String(),
				InitialThreshold: pol.Initial,
				FinalThreshold:   last.Threshold,
				ConvergenceRound: traj.ConvergenceRound(offload.DefaultConvergenceTarget),
				FinalDropRate:    traj.FinalDropRate(),
				FinalOffloadRate: traj.FinalOffloadRate(),
			})
			fmt.Fprintf(os.Stderr, "perfbench: %s\n", traj)
		}
	}
	return rows, nil
}

// profileBench times ProfileOnHost — the fleet's measured floor — over a
// loop-heavy element slice of the library, n packets of the mix workload
// each, once per interpreter backend, and returns the compiled backend's
// µs/packet plus its speedup over the reference loop. The best-of-3
// median-free minimum is used per backend: profiling is deterministic, so
// the minimum is the run least disturbed by the machine.
func profileBench(n int) (usPerPkt, speedup float64, err error) {
	defer interp.SetDefaultBackend(interp.BackendCompiled)
	elems := []string{"mazunat", "cmsketch", "udpcount", "firewall", "dedup"}
	timeBackend := func(b interp.Backend) (time.Duration, error) {
		if err := interp.SetDefaultBackend(b); err != nil {
			return 0, err
		}
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			for _, name := range elems {
				e := clara.GetElement(name)
				if e == nil {
					return 0, fmt.Errorf("unknown element %q", name)
				}
				mod, err := e.Module()
				if err != nil {
					return 0, err
				}
				ps := core.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes}
				if _, err := core.ProfileOnHost(mod, ps, traffic.MediumMix, n); err != nil {
					return 0, err
				}
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best, nil
	}
	compiled, err := timeBackend(interp.BackendCompiled)
	if err != nil {
		return 0, 0, err
	}
	reference, err := timeBackend(interp.BackendReference)
	if err != nil {
		return 0, 0, err
	}
	pkts := float64(len(elems) * n)
	usPerPkt = float64(compiled.Microseconds()) / pkts
	speedup = float64(reference) / float64(compiled)
	fmt.Fprintf(os.Stderr, "perfbench: profiling compiled=%.2fus/pkt reference=%.2fus/pkt speedup=%.2fx\n",
		usPerPkt, float64(reference.Microseconds())/pkts, speedup)
	return usPerPkt, speedup, nil
}

// clusterBench serves the whole element library as one /v1/analyze
// batch through a coordinator fronting n in-process workers, for n in
// {1, 2, 4}. Each worker is a single-threaded server (Workers: 1) so
// the grid isolates the coordinator's fan-out from the pool's own
// parallelism; all workers share the one trained tool (process-local
// model sharing — the network cluster would load the same bundle).
// One unmeasured warm-up batch fills the per-worker prediction caches,
// so the measured rows are hot-cache routing throughput.
func clusterBench(tool *clara.Tool, iters int) ([]clusterRow, error) {
	var names []string
	for _, e := range clara.Elements() {
		names = append(names, e.Name)
	}
	var rows []clusterRow
	for _, n := range []int{1, 2, 4} {
		row, err := clusterRun(tool, n, names, iters)
		if err != nil {
			return nil, fmt.Errorf("cluster n=%d: %w", n, err)
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if rows[0].JobsPerSec > 0 {
			rows[i].SpeedupVs1 = rows[i].JobsPerSec / rows[0].JobsPerSec
		}
	}
	return rows, nil
}

func clusterRun(tool *clara.Tool, n int, names []string, iters int) (clusterRow, error) {
	var workerURLs []string
	for i := 0; i < n; i++ {
		srv, err := clara.NewServer(clara.ServerConfig{Tool: tool, Workers: 1, QueueDepth: 64})
		if err != nil {
			return clusterRow{}, err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		workerURLs = append(workerURLs, ts.Listener.Addr().String())
	}
	coord, err := clara.NewCoordinator(clara.ClusterConfig{Workers: workerURLs})
	if err != nil {
		return clusterRow{}, err
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	body, err := json.Marshal(map[string]any{"nfs": names})
	if err != nil {
		return clusterRow{}, err
	}
	post := func() error {
		resp, err := http.Post(cs.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("analyze: HTTP %d", resp.StatusCode)
		}
		if resp.Header.Get("X-Clara-Failed-Jobs") != "" {
			return fmt.Errorf("analyze: %s jobs failed", resp.Header.Get("X-Clara-Failed-Jobs"))
		}
		return nil
	}
	if err := post(); err != nil { // warm-up: fill the per-worker caches
		return clusterRow{}, err
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := post(); err != nil {
			return clusterRow{}, err
		}
	}
	elapsed := time.Since(t0).Seconds()

	row := clusterRow{
		Workers:    n,
		JobsPerSec: float64(iters*len(names)) / elapsed,
	}
	// The merged cluster metrics carry the hit rate the content-hash
	// routing earned across the measured batches.
	resp, err := http.Get(cs.URL + "/metrics")
	if err != nil {
		return clusterRow{}, err
	}
	defer resp.Body.Close()
	var snap struct {
		Merged struct {
			Fleet struct {
				CacheHitRate float64 `json:"cache_hit_rate"`
			} `json:"fleet"`
		} `json:"merged"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return clusterRow{}, err
	}
	row.CacheHitRate = snap.Merged.Fleet.CacheHitRate
	fmt.Fprintf(os.Stderr, "perfbench: cluster workers=%d jobs/sec=%.1f hit-rate=%.3f\n",
		n, row.JobsPerSec, row.CacheHitRate)
	return row, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfbench:", err)
	os.Exit(1)
}
