package clara

import (
	"strings"
	"testing"
)

func TestCompileNFAndSimulate(t *testing.T) {
	mod, err := CompileNF("t", `
global u32 seen;
void handle() { seen += 1; pkt_send(0); }
`)
	if err != nil {
		t.Fatal(err)
	}
	nf := &NF{Name: "t", Mod: mod}
	r, err := Simulate(DefaultParams(), nf, MediumMix, 800, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.ThroughputMpps <= 0 || r.AvgLatencyUs <= 0 {
		t.Errorf("degenerate result %+v", r)
	}
}

func TestElementsExposed(t *testing.T) {
	if len(Elements()) < 19 {
		t.Errorf("library too small: %d", len(Elements()))
	}
	if GetElement("mazunat") == nil {
		t.Error("mazunat missing")
	}
	if GetElement("nope") != nil {
		t.Error("phantom element")
	}
}

func TestTrainQuickAndAnalyze(t *testing.T) {
	tool, err := Train(TrainConfig{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := GetElement("iplookup")
	mod, err := e.Module()
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tool.Analyze(mod, ProfileSetup{Setup: e.Setup, LPMTable: e.Routes}, MediumMix)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Prediction.TotalCompute <= 0 {
		t.Error("no compute prediction")
	}
	if ins.SuggestedCores < 1 || ins.SuggestedCores > 60 {
		t.Errorf("cores = %d", ins.SuggestedCores)
	}
	if !strings.Contains(ins.Report(), "State placement") {
		t.Error("report missing placement section")
	}
}

func TestSimulatePair(t *testing.T) {
	a := &NF{Name: "a", Mod: GetElement("aggcounter").MustModule()}
	b := &NF{Name: "b", Mod: GetElement("dpi").MustModule()}
	rs, err := SimulatePair(DefaultParams(), a, b, MediumMix, 800, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].ThroughputMpps <= 0 || rs[1].ThroughputMpps <= 0 {
		t.Errorf("bad pair results %+v", rs)
	}
}
