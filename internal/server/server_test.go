package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"clara/internal/click"
	"clara/internal/core"
	"clara/internal/fleet"
	"clara/internal/interp"
	"clara/internal/nicsim"
	"clara/internal/synth"
)

// The trained tool is shared across tests; training dominates test time
// and the trained models are read-only.
var (
	toolOnce sync.Once
	testTool *core.Clara
	toolErr  error
)

func quickTool(t testing.TB) *core.Clara {
	t.Helper()
	toolOnce.Do(func() {
		const seed = 7
		params := nicsim.DefaultParams()
		mods, err := click.Modules(click.Table2Order)
		if err != nil {
			toolErr = err
			return
		}
		pred, err := core.TrainPredictor(core.PredictorConfig{
			TrainPrograms: 50, Epochs: 6, Hidden: 16,
			CompactVocab: true, Seed: seed,
		}, core.CorpusProfile(mods))
		if err != nil {
			toolErr = err
			return
		}
		algo, err := core.TrainAlgoIdentifier(synth.AlgoCorpus(12, seed), 48, seed)
		if err != nil {
			toolErr = err
			return
		}
		sm, err := core.TrainScaleout(core.ScaleoutConfig{
			TrainPrograms: 8, PacketsPerTrace: 400,
			CoreGrid: []int{2, 8, 16, 32, 48, 60},
			Params:   params, Seed: seed,
		}, pred)
		if err != nil {
			toolErr = err
			return
		}
		testTool = &core.Clara{Predictor: pred, AlgoID: algo, Scaleout: sm, Params: params}
	})
	if toolErr != nil {
		t.Fatalf("training quick tool: %v", toolErr)
	}
	return testTool
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Tool = quickTool(t)
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(blob))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeAnalyze(t *testing.T, rec *httptest.ResponseRecorder) AnalyzeResponse {
	t.Helper()
	var resp AnalyzeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad analyze response (%d): %v\n%s", rec.Code, err, rec.Body.String())
	}
	return resp
}

// TestAnalyzeSubmittedSource is the end-to-end serving path: POST NFC
// source, get JSON insights back — and a resubmission of the same
// source hits the content-hashed prediction cache even though it is
// compiled to a fresh module.
func TestAnalyzeSubmittedSource(t *testing.T) {
	s := newTestServer(t, Config{})
	src := click.Get("tcpack").Src
	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{Src: src, Name: "submitted-tcpack", Workload: "mix"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d:\n%s", rec.Code, rec.Body.String())
	}
	resp := decodeAnalyze(t, rec)
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	r := resp.Results[0]
	if r.Error != "" || r.Insights == nil || r.Insights.Prediction == nil {
		t.Fatalf("no insights: %+v", r)
	}
	if r.Name != "submitted-tcpack" || r.Workload != "medium-mix" && r.Workload == "" {
		t.Errorf("bad labels: %+v", r)
	}
	if r.Insights.Prediction.TotalCompute <= 0 {
		t.Errorf("empty prediction: %+v", r.Insights.Prediction)
	}
	if r.CacheHit {
		t.Error("first submission claimed a cache hit")
	}

	rec2 := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{Src: src, Name: "submitted-tcpack", Workload: "small"})
	resp2 := decodeAnalyze(t, rec2)
	if !resp2.Results[0].CacheHit {
		t.Error("resubmitted source missed the prediction cache")
	}
}

// TestAnalyzeLibraryBatch analyzes library elements by name, as a batch.
func TestAnalyzeLibraryBatch(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NFs: []string{"tcpack", "aggcounter"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d:\n%s", rec.Code, rec.Body.String())
	}
	resp := decodeAnalyze(t, rec)
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	for _, r := range resp.Results {
		if r.Error != "" || r.Insights == nil {
			t.Errorf("job %s failed: %s", r.Name, r.Error)
		}
	}
}

// TestAnalyzeValidation pins the 400 paths.
func TestAnalyzeValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	for name, body := range map[string]AnalyzeRequest{
		"no selector":      {},
		"two selectors":    {NF: "tcpack", Src: "void handle() {}"},
		"unknown element":  {NF: "nosuch"},
		"unknown workload": {NF: "tcpack", Workload: "insane"},
		"bad source":       {Src: "not nfc at all ("},
	} {
		if rec := postJSON(t, s.Handler(), "/v1/analyze", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", rec.Code)
	}
}

// TestLintOnly exercises the static path: no profiling, and findings
// for SmartNIC-hostile source.
func TestLintOnly(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/lint", LintRequest{
		Name: "floaty",
		Src: `void handle() {
	u32 rate = ewma_rate(u32(pkt_len()));
	if (rate > 1000000) { pkt_drop(); return; }
	pkt_send(0);
}
`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d:\n%s", rec.Code, rec.Body.String())
	}
	var resp LintResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Diagnostics) == 0 {
		t.Fatal("float-using NF linted clean")
	}
	found := false
	for _, d := range resp.Diagnostics {
		if strings.Contains(d.Rule, "float") {
			found = true
		}
	}
	if !found {
		t.Errorf("no float rule fired: %+v", resp.Diagnostics)
	}

	rec = postJSON(t, s.Handler(), "/v1/lint", LintRequest{NF: "tcpack"})
	if rec.Code != http.StatusOK {
		t.Fatalf("library lint status %d", rec.Code)
	}
}

// blockingHook returns a job hook whose Setup announces itself on
// started and then blocks until release is closed.
func blockingHook(started chan<- struct{}, release <-chan struct{}) func(*fleet.Job) {
	return func(j *fleet.Job) {
		j.PS = core.ProfileSetup{Setup: func(*interp.Machine) error {
			started <- struct{}{}
			<-release
			return nil
		}}
	}
}

// TestQueueFullBackpressure fills the admission queue with one pinned
// request and checks the next one is rejected with 429 — visible
// backpressure, not unbounded queueing.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := newTestServer(t, Config{QueueDepth: 1, Workers: 1,
		JobHook: blockingHook(started, release)})

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		firstDone <- postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "tcpack"})
	}()
	<-started // the slot is held and the analysis is in flight

	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "aggcounter"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429:\n%s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(release)
	if rec := <-firstDone; rec.Code != http.StatusOK {
		t.Fatalf("pinned request failed: %d\n%s", rec.Code, rec.Body.String())
	}
	snap := s.met.snapshot(s.fl.Stats(), len(s.sem), cap(s.sem))
	if snap.Requests["analyze"].Rejected != 1 {
		t.Errorf("rejected count = %d, want 1", snap.Requests["analyze"].Rejected)
	}
}

// TestClientCancelStopsAnalysis proves a client disconnect cancels the
// underlying fleet work: the analysis aborts inside its profiling loop
// and the fleet records a canceled job, not a completed one.
func TestClientCancelStopsAnalysis(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, JobHook: blockingHook(started, release)})

	blob, _ := json.Marshal(AnalyzeRequest{NF: "tcpack"})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(blob)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rec, req)
	}()
	<-started // analysis running; worker pinned in Setup
	cancel()  // client goes away
	close(release)
	<-done

	fs := s.fl.Stats()
	if fs.JobsCanceled != 1 {
		t.Errorf("fleet canceled jobs = %d, want 1 (completed=%d failed=%d)",
			fs.JobsCanceled, fs.JobsCompleted, fs.JobsFailed)
	}
	snap := s.met.snapshot(fs, len(s.sem), cap(s.sem))
	if snap.Requests["analyze"].Canceled != 1 {
		t.Errorf("canceled request count = %d, want 1", snap.Requests["analyze"].Canceled)
	}
}

// TestRequestTimeout checks the per-request deadline: an analysis that
// cannot finish inside timeout_ms answers 504.
func TestRequestTimeout(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	defer close(release)
	hook := func(j *fleet.Job) {
		j.PS = core.ProfileSetup{Setup: func(*interp.Machine) error {
			started <- struct{}{}
			select {
			case <-release:
			case <-time.After(5 * time.Second):
			}
			return nil
		}}
	}
	s := newTestServer(t, Config{Workers: 1, JobHook: hook})
	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "tcpack", TimeoutMs: 50})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504:\n%s", rec.Code, rec.Body.String())
	}
}

// TestPanickingNFIsolation submits a job whose analysis panics: the
// batch is still delivered as 200 with the per-job error in its result
// and the failure count in X-Clara-Failed-Jobs, and the server keeps
// serving. (A 500 here would make retrying proxies re-run the whole
// batch against a deterministic fault.)
func TestPanickingNFIsolation(t *testing.T) {
	s := newTestServer(t, Config{
		JobHook: func(j *fleet.Job) {
			j.PS = core.ProfileSetup{Setup: func(*interp.Machine) error {
				panic("synthetic NF panic")
			}}
		},
	})
	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "tcpack"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200:\n%s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(FailedJobsHeader); got != "1" {
		t.Fatalf("%s = %q, want \"1\"", FailedJobsHeader, got)
	}
	resp := decodeAnalyze(t, rec)
	if !resp.Results[0].Panicked || !strings.Contains(resp.Results[0].Error, "synthetic NF panic") {
		t.Fatalf("panic not surfaced: %+v", resp.Results[0])
	}

	// The process survived; a clean request still works.
	s2 := newTestServer(t, Config{})
	_ = s2
	rec = postJSON(t, s.Handler(), "/v1/lint", LintRequest{NF: "tcpack"})
	if rec.Code != http.StatusOK {
		t.Fatalf("server unhealthy after panic: %d", rec.Code)
	}
	if got := s.fl.Stats().JobsPanicked; got != 1 {
		t.Errorf("panicked jobs = %d, want 1", got)
	}
}

// TestPartialBatchFailure analyzes a batch where exactly one job fails:
// the response is 200 with the good job's insights intact, the bad
// job's error inline, and X-Clara-Failed-Jobs counting the failures.
func TestPartialBatchFailure(t *testing.T) {
	s := newTestServer(t, Config{
		JobHook: func(j *fleet.Job) {
			if j.Name == "aggcounter" {
				j.PS = core.ProfileSetup{Setup: func(*interp.Machine) error {
					panic("poisoned element")
				}}
			}
		},
	})
	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NFs: []string{"tcpack", "aggcounter"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200:\n%s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(FailedJobsHeader); got != "1" {
		t.Fatalf("%s = %q, want \"1\"", FailedJobsHeader, got)
	}
	resp := decodeAnalyze(t, rec)
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Insights == nil {
		t.Errorf("good job damaged: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || !resp.Results[1].Panicked {
		t.Errorf("bad job not surfaced: %+v", resp.Results[1])
	}

	// An all-good batch must not carry the header.
	rec = postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NFs: []string{"tcpack", "udpipencap"}})
	if rec.Code != http.StatusOK || rec.Header().Get(FailedJobsHeader) != "" {
		t.Fatalf("clean batch: status %d, header %q", rec.Code, rec.Header().Get(FailedJobsHeader))
	}
}

// TestDrainWinsOver429: a server that is both full and draining must
// answer 503 "shutting down", not 429 "retry later" — a client told to
// retry would hammer a process that is about to exit instead of failing
// over.
func TestDrainWinsOver429(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := newTestServer(t, Config{QueueDepth: 1, Workers: 1,
		JobHook: blockingHook(started, release)})

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		firstDone <- postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "tcpack"})
	}()
	<-started // queue is now full (the one slot is held)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "aggcounter"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("full+draining: status %d, want 503:\n%s", rec.Code, rec.Body.String())
	}

	close(release)
	if rec := <-firstDone; rec.Code != http.StatusOK {
		t.Fatalf("drained request failed: %d", rec.Code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestRetryAfterScalesWithOccupancy pins three slots of a depth-3 queue
// on a one-worker server and checks the rejected request's Retry-After
// reflects the occupancy (3 requests ahead / 1 worker = 3s), not a
// hardcoded constant.
func TestRetryAfterScalesWithOccupancy(t *testing.T) {
	started := make(chan struct{}, 3)
	release := make(chan struct{})
	s := newTestServer(t, Config{QueueDepth: 3, Workers: 1,
		JobHook: blockingHook(started, release)})

	var wg sync.WaitGroup
	for _, nf := range []string{"tcpack", "aggcounter", "udpipencap"} {
		wg.Add(1)
		go func(nf string) {
			defer wg.Done()
			postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: nf})
		}(nf)
	}
	for i := 0; i < 3; i++ {
		<-started
	}

	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "forcetcp"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429:\n%s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\" (3 held slots / 1 worker)", got)
	}
	close(release)
	wg.Wait()
}

// TestMergeSnapshots checks the cluster metric fold: counters sum,
// histograms merge bucket-wise with correct moments, hit rate is
// recomputed over the merged counters, readiness requires every worker,
// and differing model hashes are flagged.
func TestMergeSnapshots(t *testing.T) {
	mk := func(uptime float64, hits, misses int64, ready bool, hash string) MetricsSnapshot {
		var s MetricsSnapshot
		s.UptimeSeconds = uptime
		s.Model = ModelStats{Ready: ready, Hash: hash}
		s.Requests = map[string]RouteStats{
			"analyze": {Total: 10, OK: 8, Rejected: 1, ServerErrors: 1},
		}
		s.Latency = map[string]HistogramJSON{
			"analyze": {BoundsMs: []float64{1, 5}, Counts: []int64{3, 4, 3}, N: 10, MinMs: 0.5, MeanMs: 2, MaxMs: 9},
		}
		s.Queue.Depth = 1
		s.Queue.Capacity = 4
		s.Fleet = FleetStats{
			JobsCompleted: 9, JobsFailed: 1,
			CacheHits: hits, CacheMisses: misses, CacheEvictions: 2,
		}
		return s
	}
	a := mk(100, 6, 4, true, "aaaa")
	b := mk(50, 2, 8, true, "aaaa")
	m := MergeSnapshots([]MetricsSnapshot{a, b})

	if m.UptimeSeconds != 50 {
		t.Errorf("uptime = %v, want min 50", m.UptimeSeconds)
	}
	if rs := m.Requests["analyze"]; rs.Total != 20 || rs.OK != 16 || rs.Rejected != 2 || rs.ServerErrors != 2 {
		t.Errorf("merged route stats: %+v", rs)
	}
	h := m.Latency["analyze"]
	if h.N != 20 || h.Counts[0] != 6 || h.Counts[2] != 6 || h.MinMs != 0.5 || h.MaxMs != 9 || h.MeanMs != 2 {
		t.Errorf("merged histogram: %+v", h)
	}
	if m.Queue.Depth != 2 || m.Queue.Capacity != 8 {
		t.Errorf("merged queue: %+v", m.Queue)
	}
	if m.Fleet.JobsCompleted != 18 || m.Fleet.CacheHits != 8 || m.Fleet.CacheMisses != 12 || m.Fleet.CacheEvictions != 4 {
		t.Errorf("merged fleet: %+v", m.Fleet)
	}
	if m.Fleet.CacheHitRate != 0.4 {
		t.Errorf("merged hit rate = %v, want 0.4 (8/20)", m.Fleet.CacheHitRate)
	}
	if !m.Model.Ready || m.Model.Hash != "aaaa" {
		t.Errorf("merged model: %+v", m.Model)
	}

	// One unready worker makes the cluster unready; skewed hashes flag.
	c := mk(75, 0, 0, false, "bbbb")
	m = MergeSnapshots([]MetricsSnapshot{a, c})
	if m.Model.Ready || m.Model.Hash != "mixed" {
		t.Errorf("skewed merge model: %+v", m.Model)
	}
	if got := MergeSnapshots(nil); got.Model.Ready || got.Requests == nil {
		t.Errorf("empty merge: %+v", got)
	}
}

// TestMetricsEndpoint drives a few requests and checks the snapshot
// schema: request counts, cache hit rate, latency histograms, queue
// occupancy.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 3})
	src := click.Get("aggcounter").Src
	for i := 0; i < 2; i++ {
		if rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{Src: src, Name: "m"}); rec.Code != http.StatusOK {
			t.Fatalf("analyze %d: %d", i, rec.Code)
		}
	}
	postJSON(t, s.Handler(), "/v1/lint", LintRequest{NF: "tcpack"})

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Requests["analyze"].Total != 2 || snap.Requests["analyze"].OK != 2 {
		t.Errorf("analyze counts: %+v", snap.Requests["analyze"])
	}
	if snap.Requests["lint"].OK != 1 {
		t.Errorf("lint counts: %+v", snap.Requests["lint"])
	}
	if snap.Queue.Capacity != 3 || snap.Queue.Depth != 0 {
		t.Errorf("queue: %+v", snap.Queue)
	}
	if h := snap.Latency["analyze"]; h.N != 2 || len(h.Counts) != len(h.BoundsMs)+1 {
		t.Errorf("analyze latency histogram: %+v", h)
	}
	// Identical source twice: second request's prediction is a hit.
	if snap.Fleet.CacheHits != 1 || snap.Fleet.CacheHitRate <= 0 {
		t.Errorf("fleet cache: hits=%d rate=%v", snap.Fleet.CacheHits, snap.Fleet.CacheHitRate)
	}
	if snap.Fleet.JobsCompleted != 2 || snap.Fleet.AnalysisLatency.N != 2 {
		t.Errorf("fleet jobs: %+v", snap.Fleet)
	}
}

// TestGracefulShutdownDrains starts an analysis, begins shutdown, and
// checks: shutdown waits for the in-flight request, new requests get
// 503, and the drained request still completes successfully.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2,
		JobHook: blockingHook(started, release)})

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		firstDone <- postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "tcpack"})
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned before drain: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "aggcounter"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d, want 503", rec.Code)
	}

	close(release)
	if rec := <-firstDone; rec.Code != http.StatusOK {
		t.Fatalf("drained request failed: %d\n%s", rec.Code, rec.Body.String())
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestConcurrentRequests hammers the server with parallel analyze and
// lint requests — the -race run for the whole serving stack.
func TestConcurrentRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 32})
	var wg sync.WaitGroup
	names := []string{"tcpack", "aggcounter", "udpipencap", "forcetcp"}
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := names[i%len(names)]
			if i%4 == 3 {
				if rec := postJSON(t, s.Handler(), "/v1/lint", LintRequest{NF: name}); rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("lint %s: %d", name, rec.Code)
				}
				return
			}
			rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: name})
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("analyze %s: %d", name, rec.Code)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// Analyze requests cycle names[i%4] for i%4 in {0,1,2}: 12 jobs over
	// 3 distinct modules, so exactly 3 predictions are computed.
	if fs := s.fl.Stats(); fs.JobsCompleted != 12 || fs.CacheMisses != 3 {
		t.Errorf("fleet stats after hammer: %+v", fs)
	}
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func metricsSnap(t *testing.T, h http.Handler) MetricsSnapshot {
	t.Helper()
	rec := getPath(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	return snap
}

// TestTrainingGateThenReady builds the server with a Train function and
// checks the startup contract: the port-facing handlers answer
// immediately (healthz 503 "training", analyze 503 with Retry-After,
// metrics model.ready=false) while training runs, and everything flips
// to serving once the model installs.
func TestTrainingGateThenReady(t *testing.T) {
	tool := quickTool(t)
	release := make(chan struct{})
	s, err := New(Config{
		Workers: 2,
		Train: func(ctx context.Context) (*core.Clara, ModelInfo, error) {
			select {
			case <-release:
				return tool, ModelInfo{Hash: "feedface", TrainSeconds: 1.5}, nil
			case <-ctx.Done():
				return nil, ModelInfo{}, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())

	if rec := getPath(t, s.Handler(), "/healthz"); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "training") {
		t.Fatalf("healthz during training: %d %s", rec.Code, rec.Body.String())
	}
	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "tcpack"})
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("analyze during training: %d (Retry-After %q)", rec.Code, rec.Header().Get("Retry-After"))
	}
	if rec := postJSON(t, s.Handler(), "/v1/lint", LintRequest{NF: "tcpack"}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("lint during training: %d", rec.Code)
	}
	if snap := metricsSnap(t, s.Handler()); snap.Model.Ready || snap.Model.Hash != "" {
		t.Fatalf("model stats during training: %+v", snap.Model)
	}
	// Elements is static metadata; it must not be gated on the model.
	if rec := getPath(t, s.Handler(), "/v1/elements"); rec.Code != http.StatusOK {
		t.Fatalf("elements during training: %d", rec.Code)
	}

	close(release)
	if err := s.Ready(context.Background()); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if rec := getPath(t, s.Handler(), "/healthz"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "feedface") {
		t.Fatalf("healthz after training: %d %s", rec.Code, rec.Body.String())
	}
	if rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "tcpack"}); rec.Code != http.StatusOK {
		t.Fatalf("analyze after training: %d %s", rec.Code, rec.Body.String())
	}
	snap := metricsSnap(t, s.Handler())
	if !snap.Model.Ready || snap.Model.Hash != "feedface" ||
		snap.Model.TrainSeconds != 1.5 || snap.Model.WarmStart {
		t.Fatalf("model stats after training: %+v", snap.Model)
	}
}

// TestWarmStartFromBundle is the end-to-end warm-start path: persist
// the trained tool as a model bundle, reload it, and build a server
// around the reloaded tool. The server must be ready in well under a
// second (no training) and answer analyses immediately, with the
// bundle's content hash surfaced in /metrics and /healthz.
func TestWarmStartFromBundle(t *testing.T) {
	tool := quickTool(t)
	b, err := core.NewBundle(tool, core.BundleMeta{Quick: true, Seed: 7, TrainSeconds: 12.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := core.SaveBundle(path, b); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	loaded, err := core.LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	warmTool, err := loaded.Tool()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Tool:    warmTool,
		Workers: 2,
		Model:   ModelInfo{Hash: loaded.Hash, WarmStart: true, TrainSeconds: loaded.Meta.TrainSeconds},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("warm start took %s; want < 1s", elapsed)
	}
	if err := s.Ready(context.Background()); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if rec := getPath(t, s.Handler(), "/healthz"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), loaded.Hash) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "tcpack"})
	if rec.Code != http.StatusOK {
		t.Fatalf("analyze on warm-started server: %d %s", rec.Code, rec.Body.String())
	}
	if resp := decodeAnalyze(t, rec); len(resp.Results) != 1 || resp.Results[0].Error != "" {
		t.Fatalf("bad warm analysis: %+v", resp)
	}
	snap := metricsSnap(t, s.Handler())
	if !snap.Model.Ready || !snap.Model.WarmStart || snap.Model.Hash != loaded.Hash ||
		snap.Model.TrainSeconds != 12.5 {
		t.Fatalf("model stats: %+v", snap.Model)
	}
}

// TestTrainingFailureSurfaces: a terminal training error flips healthz
// to "failed" and analysis requests to 500 — the server stays up and
// reports why it cannot serve instead of crashing.
func TestTrainingFailureSurfaces(t *testing.T) {
	s, err := New(Config{
		Workers: 2,
		Train: func(ctx context.Context) (*core.Clara, ModelInfo, error) {
			return nil, ModelInfo{}, fmt.Errorf("corpus synthesis exploded")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	if err := s.Ready(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "exploded") {
		t.Fatalf("Ready error: %v", err)
	}
	if rec := getPath(t, s.Handler(), "/healthz"); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "failed") {
		t.Fatalf("healthz after failure: %d %s", rec.Code, rec.Body.String())
	}
	if rec := postJSON(t, s.Handler(), "/v1/analyze", AnalyzeRequest{NF: "tcpack"}); rec.Code != http.StatusInternalServerError {
		t.Fatalf("analyze after failure: %d", rec.Code)
	}
	if snap := metricsSnap(t, s.Handler()); snap.Model.Ready || snap.Model.TrainError == "" {
		t.Fatalf("model stats after failure: %+v", snap.Model)
	}
}
