package ml

import "fmt"

// This file defines the plain-data state types the model bundle
// (internal/core/bundle.go) persists. Models re-created from state are
// bit-identical to the originals: the flat parameter vectors are copied
// verbatim, and JSON round-trips float64 exactly (Go marshals the
// shortest representation that parses back to the same bits).

// LSTMState is the serializable form of a trained LSTM.
type LSTMState struct {
	Config LSTMConfig `json:"config"`
	Params []float64  `json:"params"`
}

// Export returns the model's persistent state. The Workers knob is
// cleared: it only affects training wall-clock, never weights, so a
// bundle must not be invalidated by the host's core count.
func (m *LSTM) Export() LSTMState {
	cfg := m.cfg
	cfg.Workers = 0
	return LSTMState{Config: cfg, Params: append([]float64(nil), m.params...)}
}

// NewLSTMFromState reconstructs a model from persisted state.
func NewLSTMFromState(st LSTMState) (*LSTM, error) {
	m := NewLSTM(st.Config)
	if len(st.Params) != len(m.params) {
		return nil, fmt.Errorf("ml: LSTM state has %d params, config %+v needs %d",
			len(st.Params), st.Config, len(m.params))
	}
	copy(m.params, st.Params)
	return m, nil
}

// SVMState is the serializable form of a trained linear SVM.
type SVMState struct {
	Classes []int       `json:"classes"`
	W       [][]float64 `json:"w"`
}

// Export returns the classifier's persistent state.
func (s *SVM) Export() SVMState {
	w := make([][]float64, len(s.w))
	for i, row := range s.w {
		w[i] = append([]float64(nil), row...)
	}
	return SVMState{Classes: append([]int(nil), s.Classes...), W: w}
}

// NewSVMFromState reconstructs a classifier from persisted state.
func NewSVMFromState(st SVMState) (*SVM, error) {
	if len(st.Classes) != len(st.W) {
		return nil, fmt.Errorf("ml: SVM state has %d classes but %d weight rows",
			len(st.Classes), len(st.W))
	}
	s := &SVM{Classes: append([]int(nil), st.Classes...)}
	for _, row := range st.W {
		s.w = append(s.w, append([]float64(nil), row...))
	}
	return s, nil
}

// TreeNodeState mirrors one CART node (Left = -1 marks a leaf).
type TreeNodeState struct {
	Feature int     `json:"f"`
	Thresh  float64 `json:"t"`
	Left    int     `json:"l"`
	Right   int     `json:"r"`
	Value   float64 `json:"v"`
}

// TreeState is the serializable form of a regression tree.
type TreeState struct {
	Nodes []TreeNodeState `json:"nodes"`
}

// Export returns the tree's persistent state.
func (t *Tree) Export() TreeState {
	nodes := make([]TreeNodeState, len(t.nodes))
	for i, n := range t.nodes {
		nodes[i] = TreeNodeState{Feature: n.feature, Thresh: n.thresh,
			Left: n.left, Right: n.right, Value: n.value}
	}
	return TreeState{Nodes: nodes}
}

// NewTreeFromState reconstructs a tree from persisted state.
func NewTreeFromState(st TreeState) (*Tree, error) {
	t := &Tree{nodes: make([]treeNode, len(st.Nodes))}
	for i, n := range st.Nodes {
		if n.Left >= len(st.Nodes) || n.Right >= len(st.Nodes) {
			return nil, fmt.Errorf("ml: tree node %d has child out of range (%d nodes)", i, len(st.Nodes))
		}
		t.nodes[i] = treeNode{feature: n.Feature, thresh: n.Thresh,
			left: n.Left, right: n.Right, value: n.Value}
	}
	return t, nil
}

// GBDTState is the serializable form of a boosted ensemble.
type GBDTState struct {
	Base  float64     `json:"base"`
	LR    float64     `json:"lr"`
	Trees []TreeState `json:"trees"`
}

// Export returns the ensemble's persistent state.
func (g *GBDT) Export() GBDTState {
	st := GBDTState{Base: g.base, LR: g.lr}
	for _, tr := range g.trees {
		st.Trees = append(st.Trees, tr.Export())
	}
	return st
}

// NewGBDTFromState reconstructs an ensemble from persisted state.
func NewGBDTFromState(st GBDTState) (*GBDT, error) {
	g := &GBDT{base: st.Base, lr: st.LR}
	for i, ts := range st.Trees {
		tr, err := NewTreeFromState(ts)
		if err != nil {
			return nil, fmt.Errorf("ml: GBDT tree %d: %w", i, err)
		}
		g.trees = append(g.trees, tr)
	}
	return g, nil
}
