// Package nicsim simulates the baremetal SoC SmartNIC the paper evaluates
// on (a Netronome-Agilio-class device): many wimpy run-to-completion cores,
// a four-level stateful memory hierarchy with per-level bandwidth, hardware
// engines (checksum, CRC, LPM, hash), an ingress flow cache, and a packet
// IO ceiling.
//
// The simulator is trace-based: an NF's packet handler is executed
// functionally (internal/interp, NIC data-structure semantics) while its
// dynamic cost events — compute cycles from the compiled NIC program,
// stateful memory accesses, engine operations — are recorded. Traces are
// then replayed under a discrete-event contention model for any core count
// or colocation mix, which makes parameter sweeps (Figure 11) cheap: the
// trace is generated once per (NF, workload).
package nicsim

import (
	"fmt"

	"clara/internal/isa"
)

// RegionParams models one level of the memory hierarchy.
type RegionParams struct {
	// Latency is the unloaded access latency in core cycles.
	Latency int
	// Issue is the server occupancy per access in cycles — the reciprocal
	// bandwidth of the level. 0 means private/unbounded (LMEM).
	Issue float64
	// Capacity is the usable stateful capacity in bytes.
	Capacity int
}

// Server indices for the contention model: the four shared memory levels
// followed by the hardware engines.
const (
	srvCLS = iota
	srvCTM
	srvIMEM
	srvEMEM
	srvCsum
	srvCrc
	srvLpm
	srvHash
	numServers
	srvNone = 255
)

// EngineParams models one hardware engine.
type EngineParams struct {
	Latency int     // base operation latency, cycles
	Issue   float64 // occupancy per op (pipelining), cycles
}

// Params is the full hardware model. DefaultParams documents the concrete
// values our EXPERIMENTS.md numbers are produced with.
type Params struct {
	NumCores int
	CoreGHz  float64
	// ThreadsPerCore models the hardware threads each core multiplexes to
	// hide memory latency (Netronome MEs run 8 contexts). While one thread
	// waits on a memory or engine access, the core runs another; compute
	// cycles still serialize on the core pipeline.
	ThreadsPerCore int

	Regions [isa.NumRegions]RegionParams

	// EMEM carries a small SRAM cache in front of DRAM (the paper's §5.4
	// setup: "DRAM-based EMEM with a small SRAM cache").
	EMEMCacheLines  int // direct-mapped, 64B lines
	EMEMCacheHitLat int // hit latency, cycles
	EMEMCacheIssue  float64

	Csum EngineParams
	Crc  EngineParams // latency grows with bytes processed
	Lpm  EngineParams
	Hash EngineParams

	// IngressMpps is the packet IO ceiling of the NIC (MAC + DMA path).
	IngressMpps float64

	// Flow cache: an accelerated flow-match mechanism in the ingress path
	// (§2: LPM implementations using it outperform regular match
	// processing by orders of magnitude).
	FlowCacheEntries   int
	FlowCacheHitCycles int

	// WireOverheadCycles is the fixed ingress+egress path cost added to
	// every packet's latency.
	WireOverheadCycles int
}

// DefaultParams returns the reference hardware model: 60 cores at 1.2 GHz
// (§4.2), hierarchy latencies ordered CLS < CTM < IMEM < EMEM (§4.3).
func DefaultParams() Params {
	var p Params
	p.NumCores = 60
	p.CoreGHz = 1.2
	p.ThreadsPerCore = 8
	p.Regions[isa.LMEM] = RegionParams{Latency: 2, Issue: 0, Capacity: 4 << 10}
	p.Regions[isa.CLS] = RegionParams{Latency: 26, Issue: 0.6, Capacity: 64 << 10}
	p.Regions[isa.CTM] = RegionParams{Latency: 60, Issue: 1.0, Capacity: 224 << 10}
	p.Regions[isa.IMEM] = RegionParams{Latency: 160, Issue: 2.0, Capacity: 4 << 20}
	p.Regions[isa.EMEM] = RegionParams{Latency: 490, Issue: 4.0, Capacity: 1 << 30}
	p.EMEMCacheLines = 4096
	p.EMEMCacheHitLat = 260
	p.EMEMCacheIssue = 2.0
	p.Csum = EngineParams{Latency: 300, Issue: 4}
	p.Crc = EngineParams{Latency: 40, Issue: 8}
	p.Lpm = EngineParams{Latency: 55, Issue: 4}
	p.Hash = EngineParams{Latency: 18, Issue: 2}
	p.IngressMpps = 54
	p.FlowCacheEntries = 2048
	p.FlowCacheHitCycles = 120
	p.WireOverheadCycles = 140
	return p
}

// Validate sanity-checks a parameter set.
func (p *Params) Validate() error {
	if p.NumCores <= 0 || p.CoreGHz <= 0 {
		return fmt.Errorf("nicsim: cores/frequency must be positive")
	}
	if p.ThreadsPerCore <= 0 {
		return fmt.Errorf("nicsim: ThreadsPerCore must be positive")
	}
	prev := 0
	for r := isa.CLS; r <= isa.EMEM; r++ {
		if p.Regions[r].Latency <= prev {
			return fmt.Errorf("nicsim: region latencies must increase along the hierarchy (%s)", r)
		}
		prev = p.Regions[r].Latency
	}
	if p.IngressMpps <= 0 {
		return fmt.Errorf("nicsim: ingress ceiling must be positive")
	}
	return nil
}

// IngressPPS returns the packet IO ceiling in packets per second — the
// budget the offload controller's fast path is bounded by.
func (p Params) IngressPPS() float64 { return p.IngressMpps * 1e6 }

// ExceptionPathCores returns the cores reserved for the slow (exception)
// path: run-to-completion NICs dedicate almost all cores to the datapath
// pipeline, leaving a small reservation (1/16 of the cores, minimum 2)
// to run the full NF for flows that have no installed rule yet. The
// offload controller derives its slow-path capacity from this.
func (p Params) ExceptionPathCores() int {
	n := p.NumCores / 16
	if n < 2 {
		n = 2
	}
	return n
}

// serverOf maps a memory region to its contention server.
func serverOf(r isa.Region) uint8 {
	switch r {
	case isa.CLS:
		return srvCLS
	case isa.CTM:
		return srvCTM
	case isa.IMEM:
		return srvIMEM
	case isa.EMEM:
		return srvEMEM
	default:
		return srvNone // LMEM is core-private
	}
}
