package niccc

import (
	"testing"

	"clara/internal/ir"
	"clara/internal/isa"
	"clara/internal/lang"
	"clara/internal/synth"
)

// TestCompilerInvariantsOnSynthCorpus checks structural invariants of the
// vendor compiler over a random program corpus:
//
//  1. output has one compiled block per IR block;
//  2. NIC stateful-memory counts never exceed IR counts (the compiler only
//     removes accesses, never invents them);
//  3. every IR stateful store is preserved (stores are never elided);
//  4. compilation is deterministic.
func TestCompilerInvariantsOnSynthCorpus(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		mod, src, err := synth.GenerateModule(synth.Config{
			Profile: synth.UniformProfile(), Seed: seed, StateBias: 2,
		}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(mod, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		f := mod.Handler()
		if len(prog.Blocks) != len(f.Blocks) {
			t.Fatalf("seed %d: %d blocks for %d IR blocks", seed, len(prog.Blocks), len(f.Blocks))
		}
		for bi, b := range f.Blocks {
			irLoads, irStores := 0, 0
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpGLoad:
					irLoads++
				case ir.OpGStore:
					irStores++
				}
			}
			nicReads, nicWrites := 0, 0
			for _, in := range prog.Blocks[bi].Instrs {
				switch in.Op {
				case isa.OpMemRead:
					nicReads++
				case isa.OpMemWrite:
					nicWrites++
				}
			}
			if nicReads > irLoads {
				t.Fatalf("seed %d b%d: NIC reads %d > IR loads %d", seed, bi, nicReads, irLoads)
			}
			if nicWrites != irStores {
				t.Fatalf("seed %d b%d: NIC writes %d != IR stores %d", seed, bi, nicWrites, irStores)
			}
		}
		again, err := Compile(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again.TotalCompute() != prog.TotalCompute() || again.TotalMem() != prog.TotalMem() {
			t.Fatalf("seed %d: nondeterministic compilation", seed)
		}
	}
}

// TestMemInstrsCarryGlobals verifies every emitted memory instruction
// names a resolvable global (the simulator requires it for placement).
func TestMemInstrsCarryGlobals(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		mod, _, err := synth.GenerateModule(synth.Config{
			Profile: synth.UniformProfile(), Seed: seed, StateBias: 3,
		}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for bi, b := range prog.Blocks {
			for _, in := range b.Instrs {
				if in.Op.IsMem() {
					if in.Global == "" {
						t.Fatalf("seed %d b%d: memory instruction without a global", seed, bi)
					}
					if mod.Global(in.Global) == nil && in.Global != PktMeta {
						t.Fatalf("seed %d b%d: unknown global %q", seed, bi, in.Global)
					}
					if in.Size <= 0 {
						t.Fatalf("seed %d b%d: memory access with size %d", seed, bi, in.Size)
					}
				}
			}
		}
	}
}

// TestAccelConfigNeverChangesMemoryCounts ensures acceleration decisions
// (checksum/CRC/LPM engines) do not alter the program's stateful access
// profile — they replace compute, not state.
func TestAccelConfigNeverChangesMemoryCounts(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		mod, _, err := synth.GenerateModule(synth.Config{
			Profile: synth.UniformProfile(), Seed: seed, StateBias: 2,
		}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Compile(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		accel, err := Compile(mod, Options{Accel: AccelConfig{
			CsumEngine: true, CRCEngine: true, LPMEngine: true,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if plain.TotalMem() != accel.TotalMem() {
			t.Fatalf("seed %d: accel changed memory counts %d -> %d",
				seed, plain.TotalMem(), accel.TotalMem())
		}
	}
}
