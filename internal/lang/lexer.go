package lang

import (
	"fmt"
	"strconv"
)

// TokKind is a lexical token kind.
type TokKind uint8

// Token kinds.
const (
	TEOF TokKind = iota
	TIdent
	TInt
	TKeyword
	TPunct
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  uint64 // for TInt
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TEOF {
		return "<eof>"
	}
	return t.Text
}

var keywords = map[string]bool{
	"global": true, "map": true, "vec": true, "void": true,
	"u8": true, "u16": true, "u32": true, "u64": true, "bool": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
	"true": true, "false": true,
}

// Lexer tokenizes NFC source.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) next() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	// Skip whitespace and comments.
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.next()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.next()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.next()
			lx.next()
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
					lx.next()
					lx.next()
					break
				}
				lx.next()
			}
		default:
			goto tokenStart
		}
	}
tokenStart:
	if lx.pos >= len(lx.src) {
		return Token{Kind: TEOF, Line: lx.line, Col: lx.col}, nil
	}
	line, col := lx.line, lx.col
	c := lx.peekByte()

	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.next()
		}
		text := lx.src[start:lx.pos]
		kind := TIdent
		if keywords[text] {
			kind = TKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case isDigit(c):
		start := lx.pos
		if c == '0' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == 'x' || lx.src[lx.pos+1] == 'X') {
			lx.next()
			lx.next()
			for lx.pos < len(lx.src) && isHexDigit(lx.peekByte()) {
				lx.next()
			}
		} else {
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.next()
			}
		}
		text := lx.src[start:lx.pos]
		v, err := strconv.ParseUint(text, 0, 64)
		if err != nil {
			return Token{}, fmt.Errorf("line %d: bad integer literal %q", line, text)
		}
		return Token{Kind: TInt, Text: text, Val: v, Line: line, Col: col}, nil
	}

	// Punctuation: longest match first.
	three := ""
	if lx.pos+3 <= len(lx.src) {
		three = lx.src[lx.pos : lx.pos+3]
	}
	two := ""
	if lx.pos+2 <= len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch three {
	case "<<=", ">>=":
		lx.next()
		lx.next()
		lx.next()
		return Token{Kind: TPunct, Text: three, Line: line, Col: col}, nil
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
		"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=":
		lx.next()
		lx.next()
		return Token{Kind: TPunct, Text: two, Line: line, Col: col}, nil
	}
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
		'(', ')', '{', '}', '[', ']', ',', ';':
		lx.next()
		return Token{Kind: TPunct, Text: string(c), Line: line, Col: col}, nil
	}
	return Token{}, fmt.Errorf("line %d:%d: unexpected character %q", line, col, string(c))
}

// LexAll tokenizes the whole input (testing helper).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TEOF {
			return out, nil
		}
	}
}
