// Command clara analyzes an unported NF and prints its offloading
// insights: predicted instruction counts, accelerator opportunities,
// suggested core count, state placement, and coalescing packs.
//
// Usage:
//
//	clara -nf mazunat [-workload small|large|mix] [-quick]
//	clara -src element.nfc [-workload mix]
//	clara -nf udpcount -trace capture.bin   # profile over a recorded trace
//	clara -fleet [-workers 8] [-quick]      # whole library × all workloads
//	clara -lint -src element.nfc [-json]    # offloadability lint, no training
//	clara -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"clara"
	"clara/internal/core"
	"clara/internal/traffic"
)

func main() {
	var (
		nfName    = flag.String("nf", "", "analyze a library element by name")
		srcPath   = flag.String("src", "", "analyze an NFC source file")
		workload  = flag.String("workload", "mix", "workload: small | large | mix")
		tracePath = flag.String("trace", "", "profile over a recorded trace file instead of a synthetic workload")
		quick     = flag.Bool("quick", false, "fast, lower-accuracy training")
		list      = flag.Bool("list", false, "list library elements and exit")
		fleetMode = flag.Bool("fleet", false, "analyze-fleet mode: every library element under every standard workload")
		workers   = flag.Int("workers", 0, "fleet worker pool size (0 = GOMAXPROCS)")
		lintMode  = flag.Bool("lint", false, "offloadability lint only (static, no training); exits 1 on error-severity findings")
		jsonOut   = flag.Bool("json", false, "with -lint: emit diagnostics as a JSON array")
	)
	flag.Parse()

	if *list {
		fmt.Println("Built-in NF elements:")
		for _, e := range clara.Elements() {
			fmt.Printf("  %-14s %s (%d LoC)\n", e.Name, e.Desc, e.LoC())
		}
		return
	}

	if *fleetMode {
		analyzeFleet(*workers, *quick)
		return
	}

	if *lintMode {
		name, src, err := pickSource(*nfName, *srcPath)
		if err != nil {
			fatal(err)
		}
		lint(name, src, *jsonOut)
		return
	}

	wl, err := pickWorkload(*workload)
	if err != nil {
		fatal(err)
	}

	var mod *clara.Module
	var ps clara.ProfileSetup
	switch {
	case *nfName != "":
		e := clara.GetElement(*nfName)
		if e == nil {
			fatal(fmt.Errorf("unknown element %q (try -list)", *nfName))
		}
		m, err := e.Module()
		if err != nil {
			fatal(err)
		}
		mod = m
		ps = clara.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes}
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			fatal(err)
		}
		mod, err = clara.CompileNF(*srcPath, string(src))
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Fprintln(os.Stderr, "training Clara (predictor + algorithm ID + scale-out model)...")
	tool, err := clara.Train(clara.TrainConfig{Quick: *quick, Seed: 42})
	if err != nil {
		fatal(err)
	}

	if *tracePath != "" {
		// Workload comes from a recorded trace (the paper's pcap profile
		// input): run the workload-specific analyses over it directly.
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		pkts, err := traffic.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rep, err := traffic.NewReplayer(pkts)
		if err != nil {
			fatal(err)
		}
		prof, err := core.ProfileOnHostSource(mod, ps, rep, len(pkts))
		if err != nil {
			fatal(err)
		}
		placement, err := core.SuggestPlacement(mod, prof, tool.Params)
		if err != nil {
			fatal(err)
		}
		packs := core.SuggestPacks(mod, prof, tool.Coalesce)
		fmt.Printf("trace-driven analysis over %d recorded packets (%s):\n", len(pkts), *tracePath)
		fmt.Println("\nState placement:")
		for g, r := range placement {
			fmt.Printf("  %-16s -> %s\n", g, r)
		}
		if len(packs) > 0 {
			fmt.Println("Coalescing packs:")
			for i, p := range packs {
				fmt.Printf("  pack %d: %v\n", i, p)
			}
		}
		return
	}

	ins, err := tool.Analyze(mod, ps, wl)
	if err != nil {
		fatal(err)
	}
	fmt.Print(ins.Report())
}

// pickSource resolves -nf/-src to a (name, NFC source) pair.
func pickSource(nfName, srcPath string) (string, string, error) {
	switch {
	case nfName != "":
		e := clara.GetElement(nfName)
		if e == nil {
			return "", "", fmt.Errorf("unknown element %q (try -list)", nfName)
		}
		return e.Name, e.Src, nil
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return "", "", err
		}
		return srcPath, string(src), nil
	default:
		return "", "", fmt.Errorf("-lint needs -nf or -src")
	}
}

// lint runs the static offloadability linter — no training, no
// workload — and exits non-zero when any error-severity finding exists.
func lint(name, src string, jsonOut bool) {
	ds, err := clara.LintNF(name, src)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		blob, err := json.MarshalIndent(ds, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(blob))
	} else if len(ds) == 0 {
		fmt.Printf("%s: no findings\n", name)
	} else {
		s := clara.SummarizeDiagnostics(ds)
		fmt.Printf("%s: %d error(s), %d warning(s), %d note(s)\n", name, s.Errors, s.Warnings, s.Infos)
		fmt.Print(clara.RenderDiagnostics(ds))
	}
	if clara.SummarizeDiagnostics(ds).Errors > 0 {
		os.Exit(1)
	}
}

// analyzeFleet runs the whole element library (Table 2 order) under the
// three standard workloads on a bounded worker pool and prints the
// summary table plus the fleet's cache/latency metrics.
func analyzeFleet(workers int, quick bool) {
	fmt.Fprintln(os.Stderr, "training Clara (predictor + algorithm ID + scale-out model)...")
	tool, err := clara.Train(clara.TrainConfig{Quick: quick, Seed: 42})
	if err != nil {
		fatal(err)
	}
	jobs, err := clara.LibraryJobs()
	if err != nil {
		fatal(err)
	}
	fl, err := clara.NewFleet(tool, clara.FleetConfig{Workers: workers})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "analyzing %d jobs on %d workers...\n", len(jobs), fl.Workers())
	results, err := fl.Run(jobs)
	if err != nil {
		fatal(err)
	}
	fmt.Print(clara.FleetSummary(results))
	fmt.Printf("\n%s", fl.Stats())
	for _, r := range results {
		if r.Err != nil {
			os.Exit(1)
		}
	}
}

func pickWorkload(name string) (traffic.Spec, error) {
	switch name {
	case "small":
		return traffic.SmallFlows, nil
	case "large":
		return traffic.LargeFlows, nil
	case "mix":
		return traffic.MediumMix, nil
	default:
		return traffic.Spec{}, fmt.Errorf("unknown workload %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clara:", err)
	os.Exit(1)
}
