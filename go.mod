module clara

go 1.22
