package traffic

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements a compact binary trace format — the stand-in for
// the pcap traces the paper's workload-specific analyses consume (§4.3).
// Traces round-trip losslessly, so a recorded workload can be replayed
// into host profiling or the simulator.

// traceMagic identifies the format; traceVersion gates decoding.
const (
	traceMagic   = 0x434C5452 // "CLTR"
	traceVersion = 1
)

// WriteTrace serializes packets to w.
func WriteTrace(w io.Writer, pkts []Packet) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(pkts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [44]byte
	for i := range pkts {
		p := &pkts[i]
		if len(p.Payload) > 0xffff {
			return fmt.Errorf("traffic: packet %d payload too large (%d)", i, len(p.Payload))
		}
		binary.LittleEndian.PutUint64(rec[0:], p.Time)
		binary.LittleEndian.PutUint16(rec[8:], p.Len)
		binary.LittleEndian.PutUint16(rec[10:], p.EthType)
		rec[12] = p.Proto
		rec[13] = p.TTL
		rec[14] = p.IPHL
		rec[15] = p.TCPFlag
		binary.LittleEndian.PutUint32(rec[16:], p.SrcIP)
		binary.LittleEndian.PutUint32(rec[20:], p.DstIP)
		binary.LittleEndian.PutUint16(rec[24:], p.IPLen)
		binary.LittleEndian.PutUint16(rec[26:], p.SrcPort)
		binary.LittleEndian.PutUint16(rec[28:], p.DstPort)
		rec[30] = p.TCPOff
		rec[31] = 0
		binary.LittleEndian.PutUint32(rec[32:], p.Seq)
		binary.LittleEndian.PutUint32(rec[36:], p.Ack)
		binary.LittleEndian.PutUint16(rec[40:], uint16(len(p.Payload)))
		binary.LittleEndian.PutUint16(rec[42:], 0)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(p.Payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Packet, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("traffic: short trace header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("traffic: not a trace file (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("traffic: unsupported trace version %d", v)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	const maxTracePackets = 64 << 20
	if n > maxTracePackets {
		return nil, fmt.Errorf("traffic: implausible packet count %d", n)
	}
	pkts := make([]Packet, 0, n)
	var rec [44]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("traffic: truncated record %d: %w", i, err)
		}
		p := Packet{
			Time:    binary.LittleEndian.Uint64(rec[0:]),
			Len:     binary.LittleEndian.Uint16(rec[8:]),
			EthType: binary.LittleEndian.Uint16(rec[10:]),
			Proto:   rec[12],
			TTL:     rec[13],
			IPHL:    rec[14],
			TCPFlag: rec[15],
			SrcIP:   binary.LittleEndian.Uint32(rec[16:]),
			DstIP:   binary.LittleEndian.Uint32(rec[20:]),
			IPLen:   binary.LittleEndian.Uint16(rec[24:]),
			SrcPort: binary.LittleEndian.Uint16(rec[26:]),
			DstPort: binary.LittleEndian.Uint16(rec[28:]),
			TCPOff:  rec[30],
			Seq:     binary.LittleEndian.Uint32(rec[32:]),
			Ack:     binary.LittleEndian.Uint32(rec[36:]),
			OutPort: -2,
		}
		plen := binary.LittleEndian.Uint16(rec[40:])
		if plen > 0 {
			p.Payload = make([]byte, plen)
			if _, err := io.ReadFull(br, p.Payload); err != nil {
				return nil, fmt.Errorf("traffic: truncated payload %d: %w", i, err)
			}
		}
		pkts = append(pkts, p)
	}
	return pkts, nil
}

// Source is any packet producer: a synthetic Generator or a trace
// Replayer.
type Source interface {
	Next() Packet
}

// Replayer replays a recorded trace as a packet source (the counterpart of
// Generator for captured workloads). It loops when the trace is exhausted,
// shifting timestamps so time stays monotone.
type Replayer struct {
	pkts   []Packet
	i      int
	offset uint64
	span   uint64
}

// NewReplayer wraps a recorded trace.
func NewReplayer(pkts []Packet) (*Replayer, error) {
	if len(pkts) == 0 {
		return nil, fmt.Errorf("traffic: empty trace")
	}
	span := pkts[len(pkts)-1].Time - pkts[0].Time
	if span == 0 {
		span = uint64(len(pkts)) * 50
	}
	return &Replayer{pkts: pkts, span: span}, nil
}

// Next returns the next packet (fresh copy; payload shared copy-on-use).
func (r *Replayer) Next() Packet {
	p := r.pkts[r.i]
	if len(p.Payload) > 0 {
		p.Payload = append([]byte(nil), p.Payload...)
	}
	r.advance(&p)
	return p
}

// NextBuf is Next with caller-provided payload scratch: the packet's
// payload is copied into buf — grown once and then reused — instead of
// a per-packet allocation, so a profiling loop that fully consumes each
// packet before requesting the next runs allocation-free. The returned
// buffer must be passed back in on the next call. Every other observable
// (field values, timestamp shifting, loop behavior) matches Next
// exactly.
func (r *Replayer) NextBuf(buf []byte) (Packet, []byte) {
	p := r.pkts[r.i]
	if n := len(p.Payload); n > 0 {
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		b := buf[:n]
		copy(b, p.Payload)
		p.Payload = b
	}
	r.advance(&p)
	return p, buf
}

// advance applies the replay-loop bookkeeping shared by Next and
// NextBuf: timestamp shifting, disposition reset, and wraparound.
func (r *Replayer) advance(p *Packet) {
	p.Time += r.offset
	p.OutPort = -2
	p.CsumUpdated = false
	r.i++
	if r.i == len(r.pkts) {
		r.i = 0
		r.offset += r.span + 50
	}
}
