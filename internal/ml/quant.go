package ml

import (
	"fmt"
	"math"

	"clara/internal/ml/vek"
)

// int8 quantized inference. The recurrent matmul dominates the forward
// pass (H×4H multiply-adds per live sequence per timestep), so that is
// the only place quantization is applied:
//
//   - Wh is quantized per *gate row*: gate g's column of Wh becomes an
//     int8 row qWh[g] with symmetric scale s_g = max|Wh[·][g]| / 127,
//     stored transposed (4H rows × H) so the int8 dot product streams
//     contiguously.
//   - The hidden state h ∈ (−1, 1) (it is o·tanh(c)) quantizes with the
//     fixed scale 127: qh[j] = round(h[j]·127).
//   - Accumulation is exact int32; the gate pre-activation dequantizes
//     in one multiply: z_g += acc · s_g/127 ≡ acc · max|row| / 127².
//
// The input projection stays a float64 row lookup (one-hot input — there
// is no matmul to quantize) and the D-wide read-out stays float64 (28
// multiply-adds per sequence, not worth the extra error). Nonlinearities
// use a linearly interpolated tanh table (max error ~2e-6, far below the
// quantization noise).
//
// Quantization is a pure, deterministic function of the f32 weights, so
// a QuantizedLSTM rebuilt on the fly from an old bundle is bit-identical
// to one round-tripped through QuantizedLSTMState.

const (
	tanhTableBits = 11  // 2048 intervals
	tanhTableMax  = 8.0 // tanh(8) ≈ 1 − 2.2e-7; saturate beyond
)

var tanhTable [1<<tanhTableBits + 2]float64

func init() {
	for i := range tanhTable {
		tanhTable[i] = math.Tanh(float64(i) * tanhTableMax / (1 << tanhTableBits))
	}
}

// fastTanh is a table lookup with linear interpolation. Odd symmetry is
// applied explicitly; |x| ≥ 8 saturates to ±1.
func fastTanh(x float64) float64 {
	ax, sign := x, 1.0
	if x < 0 {
		ax, sign = -x, -1.0
	}
	if ax >= tanhTableMax {
		return sign
	}
	f := ax * ((1 << tanhTableBits) / tanhTableMax)
	i := int(f)
	return sign * (tanhTable[i] + (tanhTable[i+1]-tanhTable[i])*(f-float64(i)))
}

// fastSigmoid uses σ(x) = ½ + ½·tanh(x/2).
func fastSigmoid(x float64) float64 { return 0.5 + 0.5*fastTanh(0.5*x) }

// QuantizedLSTM is the int8 inference twin of an LSTM. It shares the
// float64 parameter vector of its source model (input rows, biases,
// read-out) and owns the quantized recurrent weights. Immutable after
// construction, safe for concurrent use.
type QuantizedLSTM struct {
	src *LSTM
	// qWh is Wh transposed and quantized: row g (of 4H) holds gate g's
	// H input weights. whFactor[g] = max|Wh[·][g]| / 127² folds both the
	// weight and activation scales into the dequantize multiply.
	qWh      []int8
	whFactor []float64
}

// Quantize builds the int8 inference twin. Deterministic: depends only
// on the model weights.
func (m *LSTM) Quantize() *QuantizedLSTM {
	H := m.cfg.Hidden
	G := 4 * H
	wh := m.params[m.oWh:m.oB] // H rows × 4H cols
	q := &QuantizedLSTM{
		src:      m,
		qWh:      make([]int8, G*H),
		whFactor: make([]float64, G),
	}
	for g := 0; g < G; g++ {
		maxAbs := 0.0
		for r := 0; r < H; r++ {
			if a := math.Abs(wh[r*G+g]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue // row stays zero, factor stays zero
		}
		inv := 127 / maxAbs
		for r := 0; r < H; r++ {
			v := math.Round(wh[r*G+g] * inv)
			if v > 127 {
				v = 127
			} else if v < -127 {
				v = -127
			}
			q.qWh[g*H+r] = int8(v)
		}
		q.whFactor[g] = maxAbs / (127 * 127)
	}
	return q
}

// Config returns the source model's configuration.
func (q *QuantizedLSTM) Config() LSTMConfig { return q.src.cfg }

// PredictRawBatch is the quantized counterpart of LSTM.PredictRawBatch:
// same wavefront batching and deduplication, int8 recurrent matmul,
// table-driven nonlinearities.
func (q *QuantizedLSTM) PredictRawBatch(seqs [][]int) [][]float64 {
	m := q.src
	H, D := m.cfg.Hidden, m.cfg.Out
	G := 4 * H
	out := make([][]float64, len(seqs))
	sc := takeBatchScratch()
	defer sc.release()

	pl := planBatch(sc, seqs)
	Bu := len(sc.uniq)
	if Bu == 0 {
		for i := range out {
			out[i] = make([]float64, D)
		}
		return out
	}

	p := m.params
	bias := p[m.oB : m.oB+G]
	hs := sc.ar.Take(Bu * H)
	cs := sc.ar.Take(Bu * H)
	zs := sc.ar.Take(Bu * G)
	qh := sc.ai8.Take(Bu * H)
	acc := sc.ai32.Take(Bu * G)
	act := Bu
	for t := 0; t < pl.maxT; t++ {
		for act > 0 && len(pl.row(seqs, act-1)) <= t {
			act--
		}
		for b := 0; b < act; b++ {
			tok := pl.row(seqs, b)[t]
			z := zs[b*G : (b+1)*G]
			copy(z, p[m.oWx+tok*G:m.oWx+(tok+1)*G])
			vek.Add(bias, z)
		}
		if t > 0 {
			for b := 0; b < act; b++ {
				h := hs[b*H : (b+1)*H]
				qhb := qh[b*H : (b+1)*H]
				for j := 0; j < H; j++ {
					qhb[j] = int8(math.Round(h[j] * 127))
				}
			}
			a := acc[:act*G]
			for i := range a {
				a[i] = 0
			}
			vek.GemmNTI8(a, qh, q.qWh, act, G, H)
			for b := 0; b < act; b++ {
				z := zs[b*G : (b+1)*G]
				ab := acc[b*G : (b+1)*G]
				for g := 0; g < G; g++ {
					z[g] += float64(ab[g]) * q.whFactor[g]
				}
			}
		}
		for b := 0; b < act; b++ {
			z := zs[b*G : (b+1)*G]
			h := hs[b*H : (b+1)*H]
			c := cs[b*H : (b+1)*H]
			for j := 0; j < H; j++ {
				ij := fastSigmoid(z[j])
				fj := fastSigmoid(z[H+j])
				gj := fastTanh(z[2*H+j])
				oj := fastSigmoid(z[3*H+j])
				cj := fj*c[j] + ij*gj
				c[j] = cj
				h[j] = oj * fastTanh(cj)
			}
		}
	}

	ys := sc.ar.Take(Bu * D)
	for b := 0; b < Bu; b++ {
		copy(ys[b*D:(b+1)*D], p[m.oBo:m.oBo+D])
	}
	vek.Gemm(ys, hs, p[m.oWo:m.oBo], Bu, D, H)

	for i := range seqs {
		o := make([]float64, D)
		if u := pl.assign[i]; u >= 0 {
			row := ys[pl.rank[u]*D : (pl.rank[u]+1)*D]
			for d := 0; d < D; d++ {
				o[d] = row[d] * m.cfg.TargetScale
			}
		}
		out[i] = o
	}
	return out
}

// PredictBatch is PredictRawBatch with the nonnegative clamp.
func (q *QuantizedLSTM) PredictBatch(seqs [][]int) [][]float64 {
	outs := q.PredictRawBatch(seqs)
	for _, o := range outs {
		for d := range o {
			if o[d] < 0 {
				o[d] = 0
			}
		}
	}
	return outs
}

// PredictRaw runs a single sequence through the quantized path.
func (q *QuantizedLSTM) PredictRaw(tokens []int) []float64 {
	return q.PredictRawBatch([][]int{tokens})[0]
}

// QuantizedLSTMState is the serializable form of the quantized recurrent
// weights. The float64 parts (input rows, biases, read-out) live in the
// companion LSTMState; this only persists what quantization produced, so
// a bundle can warm-start the int8 path without requantizing.
type QuantizedLSTMState struct {
	QWh      []byte    `json:"qwh"` // int8 bytes, 4H rows × H, transposed
	WhFactor []float64 `json:"whf"` // 4H dequantize factors
}

// Export returns the quantized state.
func (q *QuantizedLSTM) Export() QuantizedLSTMState {
	qwh := make([]byte, len(q.qWh))
	for i, v := range q.qWh {
		qwh[i] = byte(v)
	}
	return QuantizedLSTMState{
		QWh:      qwh,
		WhFactor: append([]float64(nil), q.whFactor...),
	}
}

// NewQuantizedLSTMFromState attaches persisted quantized weights to
// their source model, validating shapes against the model config.
func NewQuantizedLSTMFromState(st QuantizedLSTMState, src *LSTM) (*QuantizedLSTM, error) {
	H := src.cfg.Hidden
	G := 4 * H
	if len(st.QWh) != G*H || len(st.WhFactor) != G {
		return nil, fmt.Errorf("ml: quantized LSTM state has %d weights / %d factors, config needs %d / %d",
			len(st.QWh), len(st.WhFactor), G*H, G)
	}
	q := &QuantizedLSTM{
		src:      src,
		qWh:      make([]int8, len(st.QWh)),
		whFactor: append([]float64(nil), st.WhFactor...),
	}
	for i, b := range st.QWh {
		q.qWh[i] = int8(b)
	}
	return q, nil
}
