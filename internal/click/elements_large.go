package click

// Large elements: the bottom rows of Table 2 — the composed, multi-map NFs
// used in the scale-out, placement, and colocation experiments.

// IPLookup performs longest-prefix match with a procedural binary trie
// walk (the 'radixiplookup' sub-element the paper's algorithm ID flags).
var IPLookup = register(&Element{
	Name:     "iplookup",
	Desc:     "LPM forwarding via software radix trie",
	Stateful: true,
	Insights: []string{"pred", "algo", "rev", "scale", "place"},
	Src: `
// iplookup: walk a binary trie one address bit at a time, remembering the
// last port seen (longest match). Ported naively from host code, each trie
// step is a dependent stateful load — the pointer-chasing pattern §4.1
// calls out.
global u32 trie_left[65536];
global u32 trie_right[65536];
global u32 trie_port[65536];
global u32 lkp_hits;
global u32 lkp_misses;
global u32 lkp_defaulted;

void handle() {
	if (pkt_eth_type() != 0x0800) { pkt_drop(); return; }
	u32 addr = pkt_ip_dst();
	u32 node = 0;
	u32 best = 0xffffffff;
	for (u32 depth = 0; depth < 32; depth += 1) {
		u32 p = trie_port[node];
		if (p != 0) { best = p - 1; }
		u32 next = trie_left[node];
		if (((addr >> (31 - depth)) & 1) != 0) { next = trie_right[node]; }
		if (next == 0) { break; }
		node = next;
	}
	if (best == 0xffffffff) {
		lkp_misses += 1;
		// Default route.
		best = 0;
		lkp_defaulted += 1;
	} else {
		lkp_hits += 1;
	}
	u8 ttl = pkt_ip_ttl();
	if (ttl <= 1) { pkt_drop(); return; }
	pkt_set_ip_ttl(ttl - 1);
	pkt_csum_update();
	pkt_send(best);
}
`,
	Setup: setupIPLookupTrie,
})

// IPLookupAccel is the Clara port of iplookup: one LPM-engine lookup (and
// the flow cache is recommended on top, configured at build time).
var IPLookupAccel = register(&Element{
	Name:     "iplookup_lpm",
	Desc:     "iplookup ported to the LPM engine",
	Stateful: true,
	Insights: []string{"pred", "scale", "place"},
	Src: `
// iplookup_lpm: Clara's accelerator port — the trie walk becomes a single
// LPM engine operation against the installed table.
global u32 lkp_hits;
global u32 lkp_misses;

void handle() {
	if (pkt_eth_type() != 0x0800) { pkt_drop(); return; }
	u32 port = lpm_hw(pkt_ip_dst());
	if (port == 0xffffffff) {
		lkp_misses += 1;
		port = 0;
	} else {
		lkp_hits += 1;
	}
	u8 ttl = pkt_ip_ttl();
	if (ttl <= 1) { pkt_drop(); return; }
	pkt_set_ip_ttl(ttl - 1);
	pkt_csum_update();
	pkt_send(port);
}
`,
})

// IPClassifier is a long multi-field packet classifier (Click's
// IPClassifier pattern compiled into nested conditionals plus rule
// tables).
var IPClassifier = register(&Element{
	Name:     "ipclassifier",
	Desc:     "multi-field packet classifier",
	Stateful: true,
	Insights: []string{"pred", "rev", "scale", "place"},
	Src: `
// ipclassifier: a compiled classifier — protocol and flag tests, port
// ranges, prefix tables, plus per-class accounting.
global u32 class_pkts[16];
global u32 class_bytes[16];
global u32 pfx_table[1024];
global u32 frag_pkts;
global u32 bogon_pkts;

u32 classify_ports(u16 sport, u16 dport) {
	if (dport == 80 || dport == 8080) { return 1; }
	if (dport == 443) { return 2; }
	if (dport == 53 || sport == 53) { return 3; }
	if (dport == 22) { return 4; }
	if (dport >= 6000 && dport <= 6063) { return 5; }
	if (dport >= 27000 && dport <= 27050) { return 6; }
	if (sport >= 1024 && dport >= 1024) { return 7; }
	return 8;
}

void handle() {
	if (pkt_eth_type() != 0x0800) { class_pkts[0] += 1; pkt_send(0); return; }
	u32 src = pkt_ip_src();
	u32 dst = pkt_ip_dst();
	// Bogon filtering.
	if ((src >> 24) == 127 || (src >> 24) == 0) { bogon_pkts += 1; pkt_drop(); return; }
	if ((src & 0xf0000000) == 0xe0000000) { bogon_pkts += 1; pkt_drop(); return; }
	u8 proto = pkt_ip_proto();
	u32 class = 0;
	if (proto == 6) {
		u8 flags = pkt_tcp_flags();
		if ((flags & 0x02) != 0 && (flags & 0x10) == 0) {
			class = 9; // new connection attempts
		} else if ((flags & 0x04) != 0) {
			class = 10;
		} else {
			class = classify_ports(pkt_tcp_sport(), pkt_tcp_dport());
		}
	} else if (proto == 17) {
		u16 dport = pkt_udp_dport();
		if (dport == 53) { class = 3; }
		else if (dport == 4789 || dport == 4790) { class = 11; }
		else { class = 12; }
	} else if (proto == 1) {
		class = 13;
	} else {
		class = 14;
	}
	// Prefix table refines the class for known networks.
	u32 pfx = pfx_table[(dst >> 22) & 1023];
	if (pfx != 0) { class = pfx & 15; }
	u16 hl = u16(pkt_ip_hl()) << 2;
	if (hl > 20) { frag_pkts += 1; }
	class_pkts[class & 15] += 1;
	class_bytes[class & 15] += u32(pkt_len());
	if (class == 10 || class == 13) { pkt_drop(); return; }
	pkt_send(class & 3);
}
`,
	Setup: setupIPClassifier,
})

// DNSProxy proxies and caches DNS lookups.
var DNSProxy = register(&Element{
	Name:     "dnsproxy",
	Desc:     "caching DNS proxy",
	Stateful: true,
	Insights: []string{"pred", "rev", "scale", "place", "coloc"},
	Src: `
// dnsproxy: hash the query name bytes, answer from cache when possible,
// otherwise forward upstream and account the miss. Heavy payload access
// plus two maps of very different temperature.
map<u64,u64> answer_cache[65536];
map<u64,u64> inflight[4096];
global u32 dns_queries;
global u32 dns_cache_hits;
global u32 dns_upstream;
global u32 dns_malformed;
global u32 dns_responses;

u64 qname_hash() {
	// DNS header is 12 bytes; hash the QNAME labels after it.
	u64 h = 1469598103934665603;
	u32 n = u32(pkt_payload_len());
	if (n > 64) { n = 64; }
	for (u32 i = 12; i < n; i += 1) {
		u8 c = pkt_payload(i);
		if (c == 0) { break; }
		h = (h ^ u64(c)) * 1099511628211;
	}
	return h;
}

void handle() {
	if (pkt_ip_proto() != 17) { pkt_send(0); return; }
	u16 dport = pkt_udp_dport();
	u16 sport = pkt_udp_sport();
	if (dport != 53 && sport != 53) { pkt_send(0); return; }
	u32 n = u32(pkt_payload_len());
	if (n < 12) { dns_malformed += 1; pkt_drop(); return; }
	u16 qid = (u16(pkt_payload(0)) << 8) | u16(pkt_payload(1));
	u8 qr = pkt_payload(2) >> 7;
	if (sport == 53 && qr == 1) {
		// Upstream response: cache it and complete the in-flight query.
		dns_responses += 1;
		u64 key = u64(qid);
		if (map_contains(inflight, key)) {
			u64 qh = map_find(inflight, key);
			map_remove(inflight, key);
			map_insert(answer_cache, qh, u64(pkt_ip_src()));
		}
		pkt_send(1);
		return;
	}
	dns_queries += 1;
	u64 qh = qname_hash();
	if (map_contains(answer_cache, qh)) {
		dns_cache_hits += 1;
		// Answer from cache: swap the packet around.
		u32 s = pkt_ip_src();
		pkt_set_ip_src(pkt_ip_dst());
		pkt_set_ip_dst(s);
		pkt_set_udp_sport(53);
		pkt_set_udp_dport(sport);
		pkt_csum_update();
		pkt_send(1);
		return;
	}
	// Miss: forward upstream, remember the query id.
	map_insert(inflight, u64(qid), qh);
	dns_upstream += 1;
	pkt_set_ip_dst(0x08080808);
	pkt_set_udp_dport(53);
	pkt_csum_update();
	pkt_send(2);
}
`,
})

// MazuNAT is the full NAT of Mazu Networks' Click configuration: paired
// translation tables, port allocation, and connection lifecycle.
var MazuNAT = register(&Element{
	Name:     "mazunat",
	Desc:     "full NAT (Mazu Networks configuration)",
	Stateful: true,
	Insights: []string{"pred", "rev", "scale", "place", "coloc"},
	Src: `
// mazunat: NAT between the 192.168/16 inside and the 10.1.0.x public pool.
// SYNs allocate a public (addr, port); FIN/RST tears the mapping down;
// both directions are translated with checksum repair.
map<u64,u64> nat_out[131072];
map<u64,u64> nat_in[131072];
global u32 nat_next_port;
global u32 nat_active;
global u32 nat_teardown;
global u32 nat_dropped;
global u32 nat_translated;

u64 out_key() {
	return (u64(pkt_ip_src()) << 32) | (u64(pkt_tcp_sport()) << 16) | u64(pkt_ip_proto());
}

u64 in_key() {
	return (u64(pkt_ip_dst()) << 32) | (u64(pkt_tcp_dport()) << 16) | u64(pkt_ip_proto());
}

void handle() {
	if (pkt_eth_type() != 0x0800) { nat_dropped += 1; pkt_drop(); return; }
	u8 proto = pkt_ip_proto();
	if (proto != 6 && proto != 17) { nat_dropped += 1; pkt_drop(); return; }
	u32 src = pkt_ip_src();
	u8 flags = 0;
	if (proto == 6) { flags = pkt_tcp_flags(); }
	if ((src & 0xffff0000) == 0xc0a80000) {
		// Outbound.
		u64 key = out_key();
		if (map_contains(nat_out, key)) {
			u64 m = map_find(nat_out, key);
			pkt_set_ip_src(u32(m >> 16));
			pkt_set_tcp_sport(u16(m & 0xffff));
			nat_translated += 1;
			if (proto == 6 && (flags & 0x05) != 0) {
				// FIN or RST: tear down both directions.
				map_remove(nat_out, key);
				map_remove(nat_in, (m << 16) | u64(proto));
				nat_teardown += 1;
			}
		} else {
			if (proto == 6 && (flags & 0x02) == 0) {
				// Mid-stream packet without a binding: drop.
				nat_dropped += 1;
				pkt_drop();
				return;
			}
			// Allocate a public endpoint.
			if (nat_next_port < 1024 || nat_next_port > 65000) { nat_next_port = 1024; }
			u32 pub_ip = 0x0a010000 | (nat_next_port & 7);
			u16 pub_port = u16(nat_next_port);
			nat_next_port += 1;
			u64 pub = (u64(pub_ip) << 16) | u64(pub_port);
			map_insert(nat_out, key, pub);
			map_insert(nat_in, (pub << 16) | u64(proto), key);
			nat_active += 1;
			pkt_set_ip_src(pub_ip);
			pkt_set_tcp_sport(pub_port);
			nat_translated += 1;
		}
		u8 ttl = pkt_ip_ttl();
		if (ttl <= 1) { pkt_drop(); return; }
		pkt_set_ip_ttl(ttl - 1);
		pkt_csum_update();
		pkt_send(0);
		return;
	}
	// Inbound: translate back to the internal host.
	u64 key = (u64(in_key()) << 16) | u64(proto);
	if (map_contains(nat_in, key)) {
		u64 orig = map_find(nat_in, key);
		pkt_set_ip_dst(u32(orig >> 32));
		pkt_set_tcp_dport(u16((orig >> 16) & 0xffff));
		nat_translated += 1;
		pkt_csum_update();
		pkt_send(1);
		return;
	}
	nat_dropped += 1;
	pkt_drop();
}
`,
})

// WebGen generates web request load against configured servers.
var WebGen = register(&Element{
	Name:     "webgen",
	Desc:     "web request generator",
	Stateful: true,
	Insights: []string{"pred", "rev", "scale", "place", "coloc"},
	Src: `
// webgen: rewrite incoming tokens into HTTP-ish request load against a
// server pool, tracking per-server outstanding requests and latency
// accounting.
map<u64,u64> open_reqs[65536];
global u32 srv_sent[64];
global u32 srv_done[64];
global u32 gen_seq;
global u32 gen_errors;
global u64 rtt_accum;

void handle() {
	if (pkt_ip_proto() != 6) { gen_errors += 1; pkt_drop(); return; }
	u8 flags = pkt_tcp_flags();
	if ((flags & 0x10) != 0 && (flags & 0x02) == 0 && pkt_tcp_sport() == 80) {
		// A response: close out the request.
		u64 key = (u64(pkt_ip_src()) << 32) | u64(pkt_tcp_dport());
		if (map_contains(open_reqs, key)) {
			u64 t0 = map_find(open_reqs, key);
			map_remove(open_reqs, key);
			rtt_accum += pkt_time() - t0;
			u32 srv = pkt_ip_src() & 63;
			srv_done[srv] += 1;
		}
		pkt_drop();
		return;
	}
	// Generate a request: pick a server by weighted hash of a fresh id.
	u32 id = rand32();
	u32 srv = id & 63;
	u32 dst = 0x0a020000 | srv;
	u16 sport = u16(30000 + (gen_seq & 16383));
	gen_seq += 1;
	pkt_set_ip_dst(dst);
	pkt_set_tcp_dport(80);
	pkt_set_tcp_sport(sport);
	pkt_set_tcp_seq(id);
	pkt_set_tcp_flags(0x02);
	srv_sent[srv] += 1;
	map_insert(open_reqs, (u64(dst) << 32) | u64(sport), pkt_time());
	pkt_csum_update();
	pkt_send(0);
}
`,
})
