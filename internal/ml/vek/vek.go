// Package vek is the shared vector-kernel layer under every model in
// internal/ml: tight, allocation-free float64 primitives (dot products,
// saxpy, matrix–vector products) plus a reusable scratch-buffer arena.
//
// The kernels are written for the Go compiler's strengths: 4-way unrolled
// loops break the loop-carried dependency chain of a naive accumulation
// (the dominant cost of Dot) and give the bounds-check eliminator simple
// induction variables. Everything is pure Go — no assembly, no unsafe —
// so results are deterministic across platforms for a fixed input order.
//
// Note the unrolled kernels fix a particular floating-point association
// order (four partial sums, combined at the end). That order is part of
// the training fast path's determinism contract: all callers see the same
// sums on every run, but the sums differ in ulps from a naive
// left-to-right loop.
package vek

// Dot returns the inner product of a and b. len(b) must be >= len(a);
// extra elements of b are ignored (slice views over flat parameter
// buffers rely on this).
func Dot(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy computes y += alpha*x elementwise over len(x) elements.
func Axpy(alpha float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Add computes y += x elementwise.
func Add(x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += x[i]
		y[i+1] += x[i+1]
		y[i+2] += x[i+2]
		y[i+3] += x[i+3]
	}
	for ; i < n; i++ {
		y[i] += x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Zero clears x in place.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Gemv computes y = A·x for a row-major rows×cols matrix A. y must have
// length rows; x must have at least cols elements.
func Gemv(y, a, x []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		y[r] = Dot(a[r*cols:r*cols+cols], x)
	}
}

// GemvAdd computes y += A·x for a row-major rows×cols matrix A.
func GemvAdd(y, a, x []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		y[r] += Dot(a[r*cols:r*cols+cols], x)
	}
}

// GemvTAdd computes y += Aᵀ·x for a row-major rows×cols matrix A
// (y has cols elements, x has rows elements). Implemented as a sum of
// scaled rows so the inner loop stays contiguous.
func GemvTAdd(y, a, x []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		if xr := x[r]; xr != 0 {
			Axpy(xr, a[r*cols:r*cols+cols], y)
		}
	}
}

// Arena hands out float64 scratch slices carved from one growing backing
// buffer, so a hot loop's per-step temporaries cost zero allocations after
// the first iteration. Take returns zeroed slices; Reset recycles the
// whole arena without clearing (the next Take re-zeroes its slice).
//
// An Arena is not safe for concurrent use; give each goroutine its own
// (see the sync.Pool wiring in internal/ml).
type Arena struct {
	buf []float64
	off int
}

// Take returns a zeroed scratch slice of length n valid until Reset.
func (ar *Arena) Take(n int) []float64 {
	if ar.off+n > len(ar.buf) {
		grown := make([]float64, max(2*len(ar.buf), ar.off+n))
		// Abandon the old buffer: outstanding slices stay valid, new
		// ones come from the fresh allocation.
		copy(grown, ar.buf[:ar.off])
		ar.buf = grown
	}
	s := ar.buf[ar.off : ar.off+n : ar.off+n]
	ar.off += n
	Zero(s)
	return s
}

// Reset recycles every slice handed out since the last Reset. Slices
// returned by earlier Takes must no longer be used.
func (ar *Arena) Reset() { ar.off = 0 }
