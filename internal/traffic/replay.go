package traffic

import (
	"container/list"
	"sync"
)

// This file provides a process-wide cache of generated traces. A fleet
// run executes the same synthetic workload against every NF in a batch,
// and each analysis previously paid to rebuild the generator (which
// materializes every flow eagerly — 64k flows for the small-flows spec)
// and re-derive the identical packet sequence. Replay generates each
// (spec, length) trace once and replays the cached packets; a Replayer
// yields the exact sequence a fresh Generator would, packet for packet.

// replayCacheCap bounds the trace cache. The evaluation uses a handful
// of standard specs; user-supplied specs (e.g. per-request workloads in
// serving mode) age out LRU so the cache cannot grow with an unbounded
// stream of distinct workloads.
const replayCacheCap = 16

// traceEntry caches one spec's generator together with the packets drawn
// from it so far; requests longer than any previous one extend the trace
// by drawing more packets from the retained generator.
type traceEntry struct {
	mu   sync.Mutex
	gen  *Generator
	pkts []Packet
}

var replayCache = struct {
	mu  sync.Mutex
	m   map[Spec]*list.Element // values are *replayItem
	lru *list.List
}{m: make(map[Spec]*list.Element), lru: list.New()}

type replayItem struct {
	spec  Spec
	entry *traceEntry
}

// Replay returns a Replayer over the first n packets of spec's packet
// sequence, generating (or extending) the cached trace on first use. The
// replayed sequence is identical to what a fresh NewGenerator(spec)
// would produce. Safe for concurrent use; each call returns an
// independent cursor.
func Replay(spec Spec, n int) (*Replayer, error) {
	replayCache.mu.Lock()
	var e *traceEntry
	if el, ok := replayCache.m[spec]; ok {
		replayCache.lru.MoveToFront(el)
		e = el.Value.(*replayItem).entry
		replayCache.mu.Unlock()
	} else {
		e = &traceEntry{}
		replayCache.m[spec] = replayCache.lru.PushFront(&replayItem{spec: spec, entry: e})
		for replayCache.lru.Len() > replayCacheCap {
			oldest := replayCache.lru.Back()
			replayCache.lru.Remove(oldest)
			delete(replayCache.m, oldest.Value.(*replayItem).spec)
		}
		replayCache.mu.Unlock()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gen == nil {
		gen, err := NewGenerator(spec)
		if err != nil {
			// Drop the poisoned entry so a corrected spec is not shadowed.
			replayCache.mu.Lock()
			if el, ok := replayCache.m[spec]; ok && el.Value.(*replayItem).entry == e {
				replayCache.lru.Remove(el)
				delete(replayCache.m, spec)
			}
			replayCache.mu.Unlock()
			return nil, err
		}
		e.gen = gen
	}
	for len(e.pkts) < n {
		e.pkts = append(e.pkts, e.gen.Next())
	}
	// The trace Replayer copies each packet and its payload on Next, so
	// callers may mutate what they receive (NFs rewrite headers and
	// payload bytes in place) without corrupting the shared trace.
	return NewReplayer(e.pkts[:n:n])
}

// Len returns the trace length before wrap-around.
func (r *Replayer) Len() int { return len(r.pkts) }
