package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// histBounds are the upper bounds of the per-analysis wall-time
// histogram buckets; the final implicit bucket is +Inf.
var histBounds = []time.Duration{
	500 * time.Microsecond,
	time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// Histogram is a snapshot of the analysis wall-time distribution.
type Histogram struct {
	// Bounds[i] is the inclusive upper bound of Counts[i];
	// Counts[len(Bounds)] is the overflow bucket.
	Bounds []time.Duration
	Counts []int64
	Min    time.Duration
	Max    time.Duration
	Sum    time.Duration
	N      int64
}

// Mean returns the mean analysis time.
func (h Histogram) Mean() time.Duration {
	if h.N == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.N)
}

// String renders the non-empty buckets compactly.
func (h Histogram) String() string {
	if h.N == 0 {
		return "no analyses"
	}
	var parts []string
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		label := "+Inf"
		if i < len(h.Bounds) {
			label = "≤" + h.Bounds[i].String()
		}
		parts = append(parts, fmt.Sprintf("%s:%d", label, c))
	}
	return fmt.Sprintf("n=%d min=%s mean=%s max=%s [%s]",
		h.N, h.Min, h.Mean(), h.Max, strings.Join(parts, " "))
}

// Stats is a consistent snapshot of a fleet's lifetime metrics.
type Stats struct {
	JobsCompleted int64
	JobsFailed    int64
	// JobsCanceled counts jobs that ended with a context error — either
	// never dispatched after cancellation or aborted mid-analysis.
	JobsCanceled int64
	// JobsPanicked counts jobs whose analysis panicked (the panic is
	// isolated per job; see Result.Panicked). Disjoint from JobsFailed.
	JobsPanicked int64
	CacheHits    int64
	CacheMisses  int64
	// CacheEvictions counts prediction-cache entries dropped by the LRU
	// cap over the fleet's lifetime. A high rate relative to misses means
	// the cap is smaller than the working set (each eviction is a future
	// recompute), which in cluster mode reads as poor per-worker locality.
	CacheEvictions int64
	// Prewarmed counts predictions computed by batch prewarm sweeps
	// (RunContext predicts a batch's distinct uncached modules in one
	// LSTM pass before dispatching workers). Prewarmed entries surface
	// as CacheHits to the jobs that consume them.
	Prewarmed int64
	// Lint findings across all completed jobs, by severity.
	LintErrors   int64
	LintWarnings int64
	LintInfos    int64
	// Taint classification across all completed jobs: payload-bounded
	// loops and payload-keyed structures (from each NF's static state
	// profile).
	PayloadLoops        int64
	PayloadKeyedStructs int64
	// Analyses is the per-analysis wall-time distribution.
	Analyses Histogram
	// Wall is the cumulative wall time of every Run call.
	Wall time.Duration
}

// HitRate returns cache hits over prediction lookups, in [0,1].
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// String renders the snapshot as the CLI's stats footer.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs: %d completed, %d failed", s.JobsCompleted, s.JobsFailed)
	if s.JobsCanceled > 0 {
		fmt.Fprintf(&b, ", %d canceled", s.JobsCanceled)
	}
	if s.JobsPanicked > 0 {
		fmt.Fprintf(&b, ", %d panicked", s.JobsPanicked)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "prediction cache: %d hits, %d misses (%.0f%% hit rate)",
		s.CacheHits, s.CacheMisses, 100*s.HitRate())
	if s.Prewarmed > 0 {
		fmt.Fprintf(&b, ", %d prewarmed", s.Prewarmed)
	}
	if s.CacheEvictions > 0 {
		fmt.Fprintf(&b, ", %d evicted", s.CacheEvictions)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "lint findings: %d errors, %d warnings, %d notes\n",
		s.LintErrors, s.LintWarnings, s.LintInfos)
	if s.PayloadLoops > 0 || s.PayloadKeyedStructs > 0 {
		fmt.Fprintf(&b, "payload-dependent: %d loop(s), %d keyed structure(s)\n",
			s.PayloadLoops, s.PayloadKeyedStructs)
	}
	fmt.Fprintf(&b, "analysis time: %s\n", s.Analyses)
	fmt.Fprintf(&b, "batch wall time: %s\n", s.Wall)
	return b.String()
}

// HistCollector accumulates a wall-time histogram over the standard
// bucket bounds; it is safe for concurrent use. The fleet's per-analysis
// histogram and the serving layer's per-endpoint request-latency
// histograms are both instances of it.
type HistCollector struct {
	mu     sync.Mutex
	counts []int64
	min    time.Duration
	max    time.Duration
	sum    time.Duration
	n      int64
}

// NewHistCollector returns an empty histogram collector.
func NewHistCollector() *HistCollector {
	return &HistCollector{counts: make([]int64, len(histBounds)+1)}
}

// Observe records one duration.
func (h *HistCollector) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.sum += d
	h.n++
	h.counts[bucket(d)]++
}

// Snapshot returns a consistent copy of the distribution.
func (h *HistCollector) Snapshot() Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Histogram{
		Bounds: append([]time.Duration(nil), histBounds...),
		Counts: append([]int64(nil), h.counts...),
		Min:    h.min,
		Max:    h.max,
		Sum:    h.sum,
		N:      h.n,
	}
}

// collector accumulates metrics under one mutex. Analysis latencies are
// a few milliseconds, so a single lock per completed job is invisible
// next to the work it measures and keeps snapshots trivially consistent.
type collector struct {
	mu   sync.Mutex
	s    Stats
	hist *HistCollector
}

func newCollector() *collector {
	return &collector{hist: NewHistCollector()}
}

func (c *collector) record(r Result) {
	c.mu.Lock()
	switch {
	case r.Panicked:
		c.s.JobsPanicked++
	case r.Err != nil && (errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded)):
		c.s.JobsCanceled++
	case r.Err != nil:
		c.s.JobsFailed++
	default:
		c.s.JobsCompleted++
	}
	if r.CacheHit {
		c.s.CacheHits++
	} else {
		c.s.CacheMisses++
	}
	c.s.LintErrors += int64(r.Lint.Errors)
	c.s.LintWarnings += int64(r.Lint.Warnings)
	c.s.LintInfos += int64(r.Lint.Infos)
	c.s.PayloadLoops += int64(r.PayloadLoops)
	c.s.PayloadKeyedStructs += int64(r.PayloadKeyedStructs)
	c.mu.Unlock()
	c.hist.Observe(r.Elapsed)
}

// recordSkipped accounts a job that was canceled before dispatch: it
// consulted neither the cache nor ran any analysis, so only the canceled
// counter moves.
func (c *collector) recordSkipped() {
	c.mu.Lock()
	c.s.JobsCanceled++
	c.mu.Unlock()
}

func bucket(d time.Duration) int {
	for i, b := range histBounds {
		if d <= b {
			return i
		}
	}
	return len(histBounds)
}

func (c *collector) addPrewarmed(n int64) {
	c.mu.Lock()
	c.s.Prewarmed += n
	c.mu.Unlock()
}

func (c *collector) addWall(d time.Duration) {
	c.mu.Lock()
	c.s.Wall += d
	c.mu.Unlock()
}

func (c *collector) snapshot() Stats {
	c.mu.Lock()
	s := c.s
	c.mu.Unlock()
	s.Analyses = c.hist.Snapshot()
	return s
}
