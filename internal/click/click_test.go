package click

import (
	"testing"

	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/traffic"
)

func TestAllElementsCompile(t *testing.T) {
	lib := Library()
	if len(lib) < 19 {
		t.Fatalf("library has %d elements, want >= 19", len(lib))
	}
	for _, e := range lib {
		m, err := e.Module()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if err := ir.Verify(m); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if e.LoC() < 10 {
			t.Errorf("%s: suspiciously small (%d LoC)", e.Name, e.LoC())
		}
		st := ir.ModuleStats(m)
		if st.Stateful != e.Stateful {
			t.Errorf("%s: Stateful flag %v but IR says %v", e.Name, e.Stateful, st.Stateful)
		}
	}
}

func TestTable2OrderComplete(t *testing.T) {
	if len(Table2Order) != 17 {
		t.Fatalf("Table 2 should list 17 elements, has %d", len(Table2Order))
	}
	for _, n := range Table2Order {
		if Get(n) == nil {
			t.Errorf("Table 2 element %q missing from registry", n)
		}
	}
	if _, err := Modules(Table2Order); err != nil {
		t.Fatal(err)
	}
	if _, err := Modules([]string{"nonesuch"}); err == nil {
		t.Error("unknown element accepted")
	}
}

// runElement executes an element over a workload in NIC-map mode.
func runElement(t *testing.T, name string, wl traffic.Spec, n int) (*interp.Machine, int, int) {
	t.Helper()
	e := Get(name)
	m, err := interp.New(e.MustModule(), interp.Config{Mode: interp.NICMap, LPMTable: e.Routes})
	if err != nil {
		t.Fatal(err)
	}
	if e.Setup != nil {
		if err := e.Setup(m); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := traffic.NewGenerator(wl)
	if err != nil {
		t.Fatal(err)
	}
	sent, dropped := 0, 0
	for i := 0; i < n; i++ {
		p := gen.Next()
		if err := m.RunPacket(&p); err != nil {
			t.Fatalf("%s: packet %d: %v", name, i, err)
		}
		if p.Dropped() {
			dropped++
		} else {
			sent++
		}
	}
	return m, sent, dropped
}

func TestAllElementsProcessTraffic(t *testing.T) {
	wl := traffic.MediumMix
	for _, e := range Library() {
		m, sent, dropped := runElement(t, e.Name, wl, 300)
		if sent+dropped != 300 {
			t.Fatalf("%s: %d+%d packets", e.Name, sent, dropped)
		}
		_ = m
		if sent == 0 && e.Name != "firewall" {
			t.Errorf("%s: forwarded nothing on a generic mix", e.Name)
		}
	}
}

func TestMazuNATTranslatesAndTearsDown(t *testing.T) {
	m, sent, _ := runElement(t, "mazunat", traffic.LargeFlows, 2000)
	if sent == 0 {
		t.Fatal("NAT forwarded nothing")
	}
	tr, _ := m.Scalar("nat_translated")
	act, _ := m.Scalar("nat_active")
	if tr == 0 || act == 0 {
		t.Errorf("translated=%d active=%d", tr, act)
	}
	// Outbound packets from 192.168/16 got public sources.
	gen, _ := traffic.NewGenerator(traffic.LargeFlows)
	p := gen.Next()
	p.Proto = traffic.ProtoTCP
	p.TCPFlag = traffic.FlagSYN
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if !p.Dropped() && (p.SrcIP>>16) != 0x0a01 {
		t.Errorf("outbound source not translated: %08x", p.SrcIP)
	}
}

func TestIPLookupMatchesLPMEngine(t *testing.T) {
	// The software trie and the hardware LPM table must agree on the
	// forwarding decision (same routes).
	soft := Get("iplookup")
	hard := Get("iplookup_lpm")
	ms, err := interp.New(soft.MustModule(), interp.Config{Mode: interp.NICMap})
	if err != nil {
		t.Fatal(err)
	}
	if err := soft.Setup(ms); err != nil {
		t.Fatal(err)
	}
	mh, err := interp.New(hard.MustModule(), interp.Config{Mode: interp.NICMap, LPMTable: hard.Routes})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := traffic.NewGenerator(traffic.MediumMix)
	for i := 0; i < 500; i++ {
		p1 := gen.Next()
		p2 := p1
		p2.Payload = append([]byte(nil), p1.Payload...)
		if err := ms.RunPacket(&p1); err != nil {
			t.Fatal(err)
		}
		if err := mh.RunPacket(&p2); err != nil {
			t.Fatal(err)
		}
		if p1.OutPort != p2.OutPort {
			t.Fatalf("pkt %d (dst %08x): trie port %d != engine port %d",
				i, p1.DstIP, p1.OutPort, p2.OutPort)
		}
	}
}

func TestCMSketchVariantsAgreeOnHeaviness(t *testing.T) {
	// Both cmsketch variants count every packet.
	m1, _, _ := runElement(t, "cmsketch", traffic.LargeFlows, 500)
	m2, _, _ := runElement(t, "cmsketch_crc", traffic.LargeFlows, 500)
	t1, _ := m1.Scalar("cms_total")
	t2, _ := m2.Scalar("cms_total")
	if t1 != 500 || t2 != 500 {
		t.Errorf("totals %d/%d", t1, t2)
	}
}

func TestFirewallBlocksDeniedSources(t *testing.T) {
	m, _, dropped := runElement(t, "firewall", traffic.SmallFlows, 1500)
	deny, _ := m.Scalar("fw_deny")
	pass, _ := m.Scalar("fw_pass")
	nf, _ := m.Scalar("fw_newflow")
	if deny == 0 {
		t.Error("firewall denied nothing under a broad workload")
	}
	if pass+nf == 0 {
		t.Error("firewall admitted nothing")
	}
	if dropped == 0 {
		t.Error("no drops observed")
	}
}

func TestDNSProxyCachesAnswers(t *testing.T) {
	e := Get("dnsproxy")
	m, err := interp.New(e.MustModule(), interp.Config{Mode: interp.NICMap})
	if err != nil {
		t.Fatal(err)
	}
	mkQuery := func(qid uint16) traffic.Packet {
		return traffic.Packet{
			EthType: traffic.EthIPv4, Proto: traffic.ProtoUDP,
			SrcIP: 0xC0A80001, DstIP: 0x0A000001, SrcPort: 5555, DstPort: 53,
			Len: 128, IPLen: 114, IPHL: 5, OutPort: -2,
			Payload: []byte{byte(qid >> 8), byte(qid), 0x01, 0, 0, 1, 0, 0, 0, 0, 0, 0,
				3, 'w', 'w', 'w', 4, 't', 'e', 's', 't', 0},
		}
	}
	q := mkQuery(7)
	if err := m.RunPacket(&q); err != nil {
		t.Fatal(err)
	}
	if up, _ := m.Scalar("dns_upstream"); up != 1 {
		t.Fatalf("first query should go upstream, got %d", up)
	}
	// Upstream response for qid 7.
	resp := traffic.Packet{
		EthType: traffic.EthIPv4, Proto: traffic.ProtoUDP,
		SrcIP: 0x08080808, DstIP: 0x0A000001, SrcPort: 53, DstPort: 5555,
		Len: 128, IPLen: 114, IPHL: 5, OutPort: -2,
		Payload: []byte{0, 7, 0x81, 0x80, 0, 1, 0, 1, 0, 0, 0, 0},
	}
	if err := m.RunPacket(&resp); err != nil {
		t.Fatal(err)
	}
	// Same query again: cache hit.
	q2 := mkQuery(9)
	if err := m.RunPacket(&q2); err != nil {
		t.Fatal(err)
	}
	if hits, _ := m.Scalar("dns_cache_hits"); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if q2.SrcPort != 53 {
		t.Errorf("cached answer source port = %d", q2.SrcPort)
	}
}

func TestGenRoutesAndInstallTrie(t *testing.T) {
	routes := GenRoutes(64, 5)
	if len(routes) != 64 {
		t.Fatalf("routes = %d", len(routes))
	}
	if routes[0].Len != 8 || routes[0].Prefix != 0x0A000000 {
		t.Error("first route should be the 10/8 cover")
	}
	// Determinism.
	again := GenRoutes(64, 5)
	for i := range routes {
		if routes[i] != again[i] {
			t.Fatal("GenRoutes not deterministic")
		}
	}
}

func TestTrieOverflowDetected(t *testing.T) {
	e := Get("iplookup")
	m, err := interp.New(e.MustModule(), interp.Config{Mode: interp.NICMap})
	if err != nil {
		t.Fatal(err)
	}
	// A capacity far too small must error, not corrupt.
	if err := InstallTrie(m, GenRoutes(512, 3), "trie_left", "trie_right", "trie_port", 16); err == nil {
		t.Error("trie overflow not detected")
	}
}

func TestDPIScalesWithPayload(t *testing.T) {
	big := traffic.MediumMix
	big.PayloadB = 512
	big.PktSize = 1024
	small := traffic.MediumMix
	small.PayloadB = 16
	mBig, _, _ := runElement(t, "dpi", big, 200)
	mSmall, _, _ := runElement(t, "dpi", small, 200)
	sb, _ := mBig.Scalar("scanned_bytes")
	ss, _ := mSmall.Scalar("scanned_bytes")
	if sb <= ss*4 {
		t.Errorf("scanned bytes big=%d small=%d", sb, ss)
	}
}
