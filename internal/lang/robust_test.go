package lang

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCompileNeverPanicsOnGarbage feeds the full pipeline random byte
// soup and truncated/mutated valid programs: every input must produce a
// value or an error, never a panic.
func TestCompileNeverPanicsOnGarbage(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("compiler panicked: %v", r)
		}
	}()

	rng := rand.New(rand.NewSource(99))
	alphabet := "abcdefgxyz0123456789 \t\n(){}[]<>=+-*/%&|^~!;,.\"'uvoidglobalmapwhileforif"
	for i := 0; i < 300; i++ {
		n := rng.Intn(200)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		_, _ = Compile("garbage", b.String())
	}

	valid := `
map<u64,u64> m[1024];
global u32 c;
void handle() {
	u64 k = u64(pkt_ip_src());
	for (u32 i = 0; i < 8; i += 1) {
		c ^= u32(k >> i);
	}
	if (map_contains(m, k)) { c += 1; } else { map_insert(m, k, 1); }
	pkt_send(0);
}
`
	// Truncations.
	for cut := 0; cut < len(valid); cut += 7 {
		_, _ = Compile("trunc", valid[:cut])
	}
	// Single-byte mutations.
	for i := 0; i < 400; i++ {
		pos := rng.Intn(len(valid))
		mut := valid[:pos] + string(alphabet[rng.Intn(len(alphabet))]) + valid[pos+1:]
		_, _ = Compile("mut", mut)
	}
}

// TestDeeplyNestedStructures exercises recursion limits gracefully.
func TestDeeplyNestedStructures(t *testing.T) {
	var b strings.Builder
	b.WriteString("void handle() {\n\tu32 x = ")
	for i := 0; i < 200; i++ {
		b.WriteString("(1 + ")
	}
	b.WriteString("2")
	for i := 0; i < 200; i++ {
		b.WriteString(")")
	}
	b.WriteString(";\n\tpkt_send(0);\n}\n")
	if _, err := Compile("deep-expr", b.String()); err != nil {
		t.Fatalf("deep expression rejected: %v", err)
	}

	b.Reset()
	b.WriteString("void handle() {\n")
	for i := 0; i < 60; i++ {
		b.WriteString(strings.Repeat("\t", i+1))
		b.WriteString("if (pkt_ip_ttl() > 0) {\n")
	}
	b.WriteString(strings.Repeat("\t", 61) + "pkt_drop();\n")
	for i := 60; i > 0; i-- {
		b.WriteString(strings.Repeat("\t", i) + "}\n")
	}
	b.WriteString("}\n")
	if _, err := Compile("deep-if", b.String()); err != nil {
		t.Fatalf("deep nesting rejected: %v", err)
	}
}
