package analysis_test

import (
	"testing"

	"clara/internal/analysis"
	"clara/internal/click"
	"clara/internal/ir"
	"clara/internal/lang"
)

// TestCFGLibraryInvariants builds the CFG of every click element's every
// function and checks the structural invariants all analyses rely on.
func TestCFGLibraryInvariants(t *testing.T) {
	for _, name := range click.Table2Order {
		name := name
		t.Run(name, func(t *testing.T) {
			m := click.Get(name).MustModule()
			for _, f := range m.Funcs {
				c := analysis.BuildCFG(f)
				if !c.Reachable(0) {
					t.Fatalf("%s: entry unreachable", f.Name)
				}
				if len(c.RPO) == 0 || c.RPO[0] != 0 {
					t.Fatalf("%s: RPO must start at the entry, got %v", f.Name, c.RPO)
				}
				// Succ/pred symmetry.
				for b, ss := range c.Succs {
					for _, s := range ss {
						found := false
						for _, p := range c.Preds[s] {
							if p == b {
								found = true
							}
						}
						if !found {
							t.Fatalf("%s: edge b%d->b%d missing from preds", f.Name, b, s)
						}
					}
				}
				// Dominator sanity: the entry dominates every reachable
				// block; every non-entry reachable block has a reachable
				// idom that dominates it.
				for _, b := range c.RPO {
					if !c.Dominates(0, b) {
						t.Errorf("%s: entry does not dominate b%d", f.Name, b)
					}
					if b == 0 {
						if c.Idom(0) != -1 {
							t.Errorf("%s: entry idom = %d, want -1", f.Name, c.Idom(0))
						}
						continue
					}
					id := c.Idom(b)
					if id < 0 || !c.Reachable(id) || !c.Dominates(id, b) {
						t.Errorf("%s: bad idom %d for b%d", f.Name, id, b)
					}
				}
				// Loop sanity: the header dominates every loop block, back
				// edges come from inside, exits leave the loop, and every
				// loop entered from outside goes through the header.
				for _, l := range c.NaturalLoops() {
					for _, b := range l.Blocks {
						if !c.Dominates(l.Head, b) {
							t.Errorf("%s: loop head b%d does not dominate member b%d", f.Name, l.Head, b)
						}
					}
					for _, u := range l.Backs {
						if !l.Contains(u) {
							t.Errorf("%s: back-edge source b%d outside loop", f.Name, u)
						}
					}
					for _, e := range l.Exits {
						if !l.Contains(e.From) || l.Contains(e.To) {
							t.Errorf("%s: bad exit edge %v", f.Name, e)
						}
					}
					if len(c.Preheaders(l)) == 0 {
						t.Errorf("%s: loop at b%d has no entry from outside", f.Name, l.Head)
					}
				}
			}
		})
	}
}

// TestLibraryLoopFacts pins the loop structure and inferred trip bounds of
// every Table 2 element's handler: which elements loop at all, and that
// every loop in the stock library is provably bounded (the lint-clean
// contract depends on exactly this).
func TestLibraryLoopFacts(t *testing.T) {
	// maxes is the multiset of inferred per-loop iteration bounds.
	expect := map[string][]uint64{
		"anonipaddr":   {},
		"tcpack":       {},
		"udpipencap":   {},
		"forcetcp":     {},
		"tcpresp":      {},
		"tcpgen":       {},
		"aggcounter":   {},
		"timefilter":   {},
		"cmsketch":     {8, 8, 8, 8, 8, 8, 8, 8}, // 4 CRC rows x (byte loop + bit loop)
		"wepdecap":     {16, 16, 64, 64, 8},
		"iplookup":     {32}, // bit-serial trie walk over a /32
		"iprewriter":   {},
		"ipclassifier": {},
		"dnsproxy":     {52}, // QNAME hash: payload capped at 64, starting at offset 12
		"mazunat":      {},
		"udpcount":     {},
		"webgen":       {},
	}
	for _, name := range click.Table2Order {
		want, ok := expect[name]
		if !ok {
			t.Fatalf("no expectation for %s", name)
		}
		f := click.Get(name).MustModule().Handler()
		c := analysis.BuildCFG(f)
		ri := analysis.ComputeRanges(c)
		var got []uint64
		for _, l := range c.NaturalLoops() {
			tc := ri.InferTripCount(c, l)
			if !tc.HasFeasibleExit {
				t.Errorf("%s: loop at b%d has no feasible exit", name, l.Head)
				continue
			}
			if !tc.Bounded {
				t.Errorf("%s: loop at b%d not bounded", name, l.Head)
				continue
			}
			got = append(got, tc.Max)
		}
		if len(got) != len(want) {
			t.Errorf("%s: %d bounded loops %v, want %d %v", name, len(got), got, len(want), want)
			continue
		}
		used := make([]bool, len(want))
		for _, g := range got {
			matched := false
			for i, w := range want {
				if !used[i] && w == g {
					used[i] = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected loop bound %d (got %v, want %v)", name, g, got, want)
			}
		}
	}
}

// TestCFGStructured checks the derived structures on a small known shape:
// a diamond followed by a while loop.
func TestCFGStructured(t *testing.T) {
	src := `
void handle() {
	u32 x = 0;
	if (pkt_ip_proto() == 6) { x = 1; } else { x = 2; }
	while (x < 10) { x = x + 1; }
	pkt_send(x);
}
`
	m, err := lang.Compile("structured", src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Handler()
	c := analysis.BuildCFG(f)

	loops := c.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	l := loops[0]
	if len(l.Backs) != 1 || len(l.Exits) != 1 {
		t.Fatalf("loop shape: backs=%v exits=%v", l.Backs, l.Exits)
	}
	if pres := c.Preheaders(l); len(pres) != 1 {
		t.Fatalf("want 1 preheader, got %v", pres)
	}
	// The diamond join dominates the loop; neither arm does.
	join := c.Idom(l.Head)
	arms := 0
	for _, b := range c.RPO {
		if b == 0 || b == join {
			continue
		}
		if c.Dominates(b, l.Head) {
			continue
		}
		if !l.Contains(b) && c.Dominates(0, b) && !c.Dominates(b, join) {
			arms++
		}
	}
	if arms < 2 {
		t.Errorf("expected two non-dominating diamond arms, found %d", arms)
	}

	ri := analysis.ComputeRanges(c)
	tc := ri.InferTripCount(c, l)
	// x enters the loop as 1 or 2, so at most 10-1 iterations remain.
	if !tc.Bounded || tc.Max != 9 {
		t.Errorf("trip count = %+v, want bounded max 9", tc)
	}
}

// buildStraight hand-builds:
//
//	b0: s0 <- 1; s1 <- gload; cbr (s1load < 5) b1 b2
//	b1: s0 <- s1load2 ; br b2       (s0 overwritten before any read)
//	b2: ret s0load
func buildStraight() *ir.Func {
	b := ir.NewBuilder("handle", nil, ir.U32)
	s0, s1 := b.NewSlot(), b.NewSlot()
	entry := b.Current()
	b.LStore(s0, ir.ConstVal(1, ir.U32))
	g := b.GLoad("ctr", ir.U32, nil)
	b.LStore(s1, g)
	v := b.LLoad(s1, ir.U32)
	cond := b.ICmp(ir.PredULT, v, ir.ConstVal(5, ir.U32))
	then := b.NewBlock("then")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	b.CondBr(cond, then, exit)
	b.SetBlock(then)
	v2 := b.LLoad(s1, ir.U32)
	b.LStore(s0, v2)
	b.Br(exit)
	b.SetBlock(exit)
	r := b.LLoad(s0, ir.U32)
	b.Ret(&r)
	return b.F
}

func TestLivenessStraight(t *testing.T) {
	f := buildStraight()
	c := analysis.BuildCFG(f)
	lv := analysis.ComputeLiveness(c)
	// s0 is read in b2, so it is live out of b0 and b1 and live into b2.
	if !lv.LiveOut(0).Has(0) || !lv.LiveOut(1).Has(0) || !lv.LiveIn(2).Has(0) {
		t.Errorf("slot0 liveness wrong: out0=%v out1=%v in2=%v",
			lv.LiveOut(0).Has(0), lv.LiveOut(1).Has(0), lv.LiveIn(2).Has(0))
	}
	// s1 is read in b1 but never after b1 completes.
	if !lv.LiveOut(0).Has(1) {
		t.Error("slot1 should be live out of the entry (b1 reads it)")
	}
	if lv.LiveOut(1).Has(1) || lv.LiveIn(2).Has(1) {
		t.Error("slot1 should be dead after b1")
	}
}

func TestReachingDefsStraight(t *testing.T) {
	f := buildStraight()
	c := analysis.BuildCFG(f)
	rd := analysis.ComputeReachingDefs(c)
	// At the b2 load of s0, both the entry store and the b1 store reach.
	defs := rd.At(2, 0, 0)
	if len(defs) != 2 {
		t.Fatalf("want 2 reaching defs for slot0 at b2, got %v", defs)
	}
	for _, d := range defs {
		if d == analysis.UninitDef {
			t.Errorf("slot0 is initialized on every path; got uninit def in %v", defs)
		}
	}
}

func TestReachingDefsUninit(t *testing.T) {
	// b0: cbr (param0 < 5) b1 b2 ; b1: s0 <- 7 ; b2: ret s0load
	// s0 is uninitialized on the fallthrough path.
	b := ir.NewBuilder("handle", []ir.Param{{Name: "p", Ty: ir.U32}}, ir.U32)
	s0 := b.NewSlot()
	entry := b.Current()
	cond := b.ICmp(ir.PredULT, ir.ParamVal(0, ir.U32), ir.ConstVal(5, ir.U32))
	then := b.NewBlock("then")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	b.CondBr(cond, then, exit)
	b.SetBlock(then)
	b.LStore(s0, ir.ConstVal(7, ir.U32))
	b.Br(exit)
	b.SetBlock(exit)
	r := b.LLoad(s0, ir.U32)
	b.Ret(&r)

	c := analysis.BuildCFG(b.F)
	rd := analysis.ComputeReachingDefs(c)
	defs := rd.At(2, 0, 0)
	hasUninit, hasStore := false, false
	for _, d := range defs {
		if d == analysis.UninitDef {
			hasUninit = true
		} else {
			hasStore = true
		}
	}
	if !hasUninit || !hasStore {
		t.Errorf("want both the uninit pseudo-def and the b1 store to reach, got %v", defs)
	}
}

// TestRangeRefinement checks the branch-refined interval propagation on
// the clamp idiom the library leans on (wepdecap's limit cap).
func TestRangeRefinement(t *testing.T) {
	src := `
void handle() {
	u32 limit = u32(pkt_payload_len());
	if (limit > 64) { limit = 64; }
	u32 i = 0;
	while (i < limit) { i = i + 1; }
	pkt_send(i);
}
`
	m, err := lang.Compile("clamp", src)
	if err != nil {
		t.Fatal(err)
	}
	c := analysis.BuildCFG(m.Handler())
	ri := analysis.ComputeRanges(c)
	loops := c.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	tc := ri.InferTripCount(c, loops[0])
	if !tc.Bounded || tc.Max != 64 {
		t.Errorf("clamped loop trip = %+v, want bounded max 64", tc)
	}
}

// TestRangeInfeasibleExit: a constant-true loop condition yields no
// feasible exit.
func TestRangeInfeasibleExit(t *testing.T) {
	src := `
void handle() {
	u32 i = 0;
	while (true) { i = i + 1; }
}
`
	m, err := lang.Compile("spin", src)
	if err != nil {
		t.Fatal(err)
	}
	c := analysis.BuildCFG(m.Handler())
	ri := analysis.ComputeRanges(c)
	loops := c.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	tc := ri.InferTripCount(c, loops[0])
	if tc.HasFeasibleExit {
		t.Errorf("while(true) reported a feasible exit: %+v", tc)
	}
}
