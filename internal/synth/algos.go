package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// This file synthesizes the labeled corpus for algorithm identification
// (§4.1). The paper curates 600+ Click elements and 9000+ crawled programs
// containing CRC and LPM implementations "in idiosyncratic manners"; we
// synthesize the same diversity parametrically: CRC variants differ in
// width, polynomial, reflection, processing granularity and surrounding
// context; LPM variants differ between bit-trie walks, mask scans, and
// linear rule scans.

// Labels for the algorithm-identification task.
const (
	LabelNone = 0
	LabelCRC  = 1
	LabelLPM  = 2
)

// LabeledProgram is one corpus entry.
type LabeledProgram struct {
	Name  string
	Src   string
	Label int
}

// CRCVariant emits one procedural CRC implementation. Variants:
// polynomial, width (16/32), bit vs nibble processing, init/xor-out,
// whether length comes from the packet or a constant, and unrelated
// surrounding logic.
func CRCVariant(seed int64) LabeledProgram {
	rng := rand.New(rand.NewSource(seed))
	width := 32
	if rng.Intn(3) == 0 {
		width = 16
	}
	var poly uint64
	if width == 32 {
		poly = []uint64{0xEDB88320, 0x82F63B78, 0x04C11DB7}[rng.Intn(3)]
	} else {
		poly = []uint64{0xA001, 0x8408, 0x1021}[rng.Intn(3)]
	}
	kind := rng.Intn(4) // 0,1: bitwise; 2: nibble; 3: table-driven
	nibble := kind == 2
	table := kind == 3
	xorOut := rng.Intn(2) == 0
	dynLen := rng.Intn(2) == 0
	context := rng.Intn(2) == 0
	ty := "u32"
	if width == 16 || table {
		// The table variant keeps u32 arithmetic for the lookup math.
	}
	if width == 16 && !table {
		ty = "u16"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "global %s last_crc;\nglobal u32 crc_pkts;\n", ty)
	if table {
		b.WriteString("global u32 crc_table[256];\nglobal u32 tbl_ready;\n")
	}
	if context {
		// Embed the algorithm in a richer element: per-flow accounting
		// with loaded-index array walks, like real elements do.
		fmt.Fprintf(&b, "global u32 ctx_counts[%d];\nglobal u32 ctx_next[%d];\n",
			256+rng.Intn(256), 256)
	}
	b.WriteString("\nvoid handle() {\n")
	if rng.Intn(2) == 0 {
		b.WriteString("\tif (pkt_ip_proto() != 6) { pkt_drop(); return; }\n")
	}
	if context {
		// Pointer-chase-looking bookkeeping unrelated to the CRC itself.
		b.WriteString("\tu32 cur = pkt_ip_src() & 255;\n")
		fmt.Fprintf(&b, "\tfor (u32 d = 0; d < %d; d += 1) {\n", 2+rng.Intn(4))
		b.WriteString("\t\tctx_counts[cur] += 1;\n\t\tcur = ctx_next[cur] & 255;\n\t}\n")
	}
	if table {
		// Lazily build the lookup table once (memoized-table strategy).
		b.WriteString("\tif (tbl_ready == 0) {\n\t\ttbl_ready = 1;\n")
		b.WriteString("\t\tfor (u32 t = 0; t < 256; t += 1) {\n\t\t\tu32 c = t;\n")
		b.WriteString("\t\t\tfor (u32 k = 0; k < 8; k += 1) {\n")
		fmt.Fprintf(&b, "\t\t\t\tif ((c & 1) != 0) { c = (c >> 1) ^ 0x%x; } else { c = c >> 1; }\n", poly)
		b.WriteString("\t\t\t}\n\t\t\tcrc_table[t] = c;\n\t\t}\n\t}\n")
	}
	init := "0xffffffff"
	if width == 16 {
		init = "0xffff"
	}
	if rng.Intn(3) == 0 {
		init = "0"
	}
	fmt.Fprintf(&b, "\t%s crc = %s(%s);\n", ty, ty, init)
	// Input source: payload bytes, or a flow key assembled from headers
	// (how sketches checksum their keys).
	keyed := rng.Intn(3) == 0
	if keyed {
		b.WriteString("\tu64 fkey = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());\n")
		b.WriteString("\tu32 n = 8;\n")
	} else if dynLen {
		b.WriteString("\tu32 n = u32(pkt_payload_len());\n")
	} else {
		fmt.Fprintf(&b, "\tu32 n = %d;\n", 16+rng.Intn(48))
	}
	byteExpr := "pkt_payload(i)"
	if keyed {
		byteExpr = "u8((fkey >> (i << 3)) & 0xff)"
	}
	b.WriteString("\tfor (u32 i = 0; i < n; i += 1) {\n")
	if table {
		// Table-driven byte step: crc = (crc>>8) ^ T[(crc ^ b) & 255].
		fmt.Fprintf(&b, "\t\tcrc = (crc >> 8) ^ crc_table[(crc ^ u32(%s)) & 255];\n", byteExpr)
	} else {
		fmt.Fprintf(&b, "\t\tcrc = crc ^ %s(%s);\n", ty, byteExpr)
		steps, shift := 8, 1
		if nibble {
			steps, shift = 2, 4
		}
		fmt.Fprintf(&b, "\t\tfor (u32 b = 0; b < %d; b += 1) {\n", steps)
		if nibble {
			// Nibble-at-a-time: fold 4 bits per step.
			fmt.Fprintf(&b, "\t\t\tu32 idx = u32(crc) & 15;\n")
			fmt.Fprintf(&b, "\t\t\tcrc = (crc >> %d) ^ %s(idx * %d);\n", shift, ty, poly&0xffff)
		} else {
			b.WriteString("\t\t\tif ((crc & 1) != 0) {\n")
			fmt.Fprintf(&b, "\t\t\t\tcrc = (crc >> 1) ^ %s(0x%x);\n", ty, poly)
			b.WriteString("\t\t\t} else {\n\t\t\t\tcrc = crc >> 1;\n\t\t\t}\n")
		}
		b.WriteString("\t\t}\n")
	}
	b.WriteString("\t}\n")
	if xorOut {
		b.WriteString("\tcrc = ~crc;\n")
	}
	b.WriteString("\tlast_crc = crc;\n\tcrc_pkts += 1;\n")
	if rng.Intn(2) == 0 {
		b.WriteString("\tif (u32(crc) == 0) { pkt_drop(); return; }\n")
	}
	fmt.Fprintf(&b, "\tpkt_send(%d);\n}\n", rng.Intn(3))
	return LabeledProgram{Name: fmt.Sprintf("crc_var_%d", seed), Src: b.String(), Label: LabelCRC}
}

// LPMVariant emits one procedural longest-prefix-match implementation:
// a bit-trie walk (pointer chasing through child arrays), a mask scan over
// prefix lengths, or a linear scan over a rule table.
func LPMVariant(seed int64) LabeledProgram {
	rng := rand.New(rand.NewSource(seed + 5000))
	var b strings.Builder
	context := rng.Intn(2) == 0
	preamble := func() {
		if !context {
			return
		}
		// Real lookup elements carry accounting and header fiddling around
		// the match loop.
		b.WriteString("\tif (pkt_ip_ttl() <= 1) { pkt_drop(); return; }\n")
		b.WriteString("\tlpm_bytes += u32(pkt_len());\n")
		b.WriteString("\tu32 mix = (pkt_ip_src() ^ (pkt_ip_dst() >> 3)) * 2654435761;\n")
		b.WriteString("\tlpm_mix ^= mix;\n")
	}
	ctxDecls := func() {
		if context {
			b.WriteString("global u32 lpm_bytes;\nglobal u32 lpm_mix;\n")
		}
	}
	kind := rng.Intn(3)
	switch kind {
	case 0: // bit-trie walk
		size := []int{512, 1024, 2048}[rng.Intn(3)]
		fmt.Fprintf(&b, "global u32 trie_left[%d];\nglobal u32 trie_right[%d];\nglobal u32 trie_port[%d];\nglobal u32 lpm_hits;\n", size, size, size)
		ctxDecls()
		b.WriteString("\nvoid handle() {\n")
		preamble()
		b.WriteString("\tu32 addr = pkt_ip_dst();\n\tu32 node = 0;\n\tu32 best = 0xffffffff;\n")
		depth := 16 + rng.Intn(17)
		fmt.Fprintf(&b, "\tfor (u32 d = 0; d < %d; d += 1) {\n", depth)
		b.WriteString("\t\tu32 p = trie_port[node];\n")
		b.WriteString("\t\tif (p != 0) { best = p; }\n")
		fmt.Fprintf(&b, "\t\tu32 bit = (addr >> (%d - d)) & 1;\n", 31)
		b.WriteString("\t\tu32 next = trie_left[node];\n")
		b.WriteString("\t\tif (bit != 0) { next = trie_right[node]; }\n")
		b.WriteString("\t\tif (next == 0) { break; }\n\t\tnode = next;\n\t}\n")
		b.WriteString("\tif (best == 0xffffffff) { pkt_drop(); return; }\n")
		b.WriteString("\tlpm_hits += 1;\n\tpkt_send(best);\n}\n")
	case 1: // mask scan over prefix lengths with a hash table
		size := []int{4096, 16384}[rng.Intn(2)]
		fmt.Fprintf(&b, "map<u64,u64> routes[%d];\nglobal u32 lpm_miss;\n", size)
		ctxDecls()
		b.WriteString("\nvoid handle() {\n")
		preamble()
		b.WriteString("\tu32 addr = pkt_ip_dst();\n")
		b.WriteString("\tu32 plen = 32;\n")
		b.WriteString("\twhile (plen > 0) {\n")
		b.WriteString("\t\tu32 mask = 0xffffffff << (32 - plen);\n")
		b.WriteString("\t\tu64 key = (u64(addr & mask) << 8) | u64(plen);\n")
		b.WriteString("\t\tif (map_contains(routes, key)) {\n")
		b.WriteString("\t\t\tpkt_send(u32(map_find(routes, key)));\n\t\t\treturn;\n\t\t}\n")
		step := 1 + rng.Intn(2)
		fmt.Fprintf(&b, "\t\tplen -= %d;\n\t}\n", step)
		b.WriteString("\tlpm_miss += 1;\n\tpkt_drop();\n}\n")
	default: // linear rule scan keeping the longest match
		rules := []int{32, 64, 128}[rng.Intn(3)]
		fmt.Fprintf(&b, "global u32 rule_prefix[%d];\nglobal u32 rule_len[%d];\nglobal u32 rule_port[%d];\n", rules, rules, rules)
		ctxDecls()
		b.WriteString("\nvoid handle() {\n")
		preamble()
		b.WriteString("\tu32 addr = pkt_ip_dst();\n\tu32 bestlen = 0;\n\tu32 port = 0xffffffff;\n")
		fmt.Fprintf(&b, "\tfor (u32 r = 0; r < %d; r += 1) {\n", rules)
		b.WriteString("\t\tu32 len = rule_len[r];\n")
		b.WriteString("\t\tif (len == 0) { continue; }\n")
		b.WriteString("\t\tu32 mask = 0xffffffff << (32 - len);\n")
		b.WriteString("\t\tif ((addr & mask) == (rule_prefix[r] & mask)) {\n")
		b.WriteString("\t\t\tif (len >= bestlen) { bestlen = len; port = rule_port[r]; }\n\t\t}\n\t}\n")
		b.WriteString("\tif (port == 0xffffffff) { pkt_drop(); return; }\n\tpkt_send(port);\n}\n")
	}
	return LabeledProgram{Name: fmt.Sprintf("lpm_var_%d", seed), Src: b.String(), Label: LabelLPM}
}

// NegativeVariant emits a program that is neither CRC nor LPM but shares
// surface features (loops over payload, hash-like mixing, stateful maps) —
// the hard negatives that make the classification task nontrivial.
func NegativeVariant(seed int64) LabeledProgram {
	rng := rand.New(rand.NewSource(seed + 9000))
	switch rng.Intn(4) {
	case 0:
		// Byte histogram over the payload (loop, but no feedback shifts).
		return LabeledProgram{Name: fmt.Sprintf("neg_hist_%d", seed), Label: LabelNone, Src: `
global u32 hist[256];
void handle() {
	u32 n = u32(pkt_payload_len());
	for (u32 i = 0; i < n; i += 1) {
		hist[u32(pkt_payload(i))] += 1;
	}
	pkt_send(0);
}
`}
	case 1:
		// Additive checksum (sums, not polynomial division).
		return LabeledProgram{Name: fmt.Sprintf("neg_sum_%d", seed), Label: LabelNone, Src: fmt.Sprintf(`
global u32 sum_total;
void handle() {
	u32 s = %d;
	u32 n = u32(pkt_payload_len());
	for (u32 i = 0; i < n; i += 1) {
		s = s + u32(pkt_payload(i)) * %d;
	}
	sum_total += s;
	pkt_send(0);
}
`, rng.Intn(100), 1+rng.Intn(5))}
	case 2:
		// Flow counting with multiplicative hashing (xors and shifts, but
		// no bounded pointer chase / bit-feedback loop).
		return LabeledProgram{Name: fmt.Sprintf("neg_flow_%d", seed), Label: LabelNone, Src: fmt.Sprintf(`
map<u64,u64> tbl[%d];
void handle() {
	u64 k = (u64(pkt_ip_src()) * 2654435761) ^ u64(pkt_ip_dst());
	k = k ^ (k >> 16);
	map_insert(tbl, k, map_find(tbl, k) + 1);
	pkt_send(0);
}
`, []int{4096, 16384}[rng.Intn(2)])}
	default:
		// Random structured program from the guided generator.
		src := Generate(Config{Profile: UniformProfile(), Seed: seed + 31})
		return LabeledProgram{Name: fmt.Sprintf("neg_rand_%d", seed), Src: src, Label: LabelNone}
	}
}

// AlgoCorpus builds a labeled corpus with n programs per class.
func AlgoCorpus(n int, seed int64) []LabeledProgram {
	var out []LabeledProgram
	for i := 0; i < n; i++ {
		out = append(out, CRCVariant(seed+int64(i)))
		out = append(out, LPMVariant(seed+int64(i)))
		out = append(out, NegativeVariant(seed+int64(i)))
	}
	return out
}
