package nicsim

import (
	"fmt"
)

// Result summarizes one simulated run of one NF.
type Result struct {
	Name           string
	Cores          int
	Packets        int
	ThroughputMpps float64
	AvgLatencyUs   float64
	MaxLatencyUs   float64
}

// Ratio returns the throughput/latency ratio (Mpps/µs), the paper's knee
// metric in Figure 11(c)(d).
func (r Result) Ratio() float64 {
	if r.AvgLatencyUs == 0 {
		return 0
	}
	return r.ThroughputMpps / r.AvgLatencyUs
}

// coreState is one hardware thread's position in the replay. Threads of
// the same core share the core's compute pipeline (the pipe index into a
// per-core busy clock): compute serializes per core, while memory and
// engine waits overlap across threads — run-to-completion contexts hiding
// latency, as on Netronome MEs.
type coreState struct {
	t     float64 // time of the thread's next action
	part  int
	pipe  int // index into the shared per-core pipeline clocks
	pkt   int // current packet (-1: idle, awaiting dispatch)
	ev    int32
	start float64
}

// coreRef is one heap entry: a thread's next-action time paired with its
// index into the flat thread array. Keeping the sort key inline keeps
// every sift comparison inside the contiguous heap slice — the previous
// []*coreState layout dereferenced a pointer per comparison, and those
// cache misses dominated simulation time.
type coreRef struct {
	t  float64
	ci int32
}

// coreHeap is a min-heap over core next-action times. The sift operations
// are hand-rolled (same algorithm and tie behaviour as container/heap, so
// schedules are unchanged) because the simulator re-sorts the root after
// every event — an interface-dispatched Less/Swap pair per comparison
// dominated simulation time.
type coreHeap []coreRef

func (h coreHeap) Len() int { return len(h) }

// siftDown restores the heap property from the root, mirroring
// container/heap's down(0): the smaller child wins ties exactly the same
// way, so event order is identical to the container/heap implementation.
func (h coreHeap) siftDown() {
	n := len(h)
	i := 0
	root := h[0]
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].t < h[j].t {
			j = j2
		}
		if h[j].t >= root.t {
			break
		}
		h[i] = h[j]
		i = j
	}
	h[i] = root
}

// fixRoot re-sorts the root after its time advanced. The common case —
// the root is still no later than both children — is a two-compare
// no-op, skipping the full sift.
func (h coreHeap) fixRoot() {
	if len(h) > 1 {
		j := 1
		if len(h) > 2 && h[2].t < h[1].t {
			j = 2
		}
		if h[j].t < h[0].t {
			h.siftDown()
		}
	}
}

// popRoot removes the root (a drained part's core retiring).
func (h *coreHeap) popRoot() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		(*h).siftDown()
	}
}

// initHeap establishes the heap property (container/heap.Init order).
func (h coreHeap) initHeap() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		// Sift h[i] down within h[:n], same comparisons as siftDown but
		// rooted at i.
		root := h[i]
		k := i
		for {
			j := 2*k + 1
			if j >= n {
				break
			}
			if j2 := j + 1; j2 < n && h[j2].t < h[j].t {
				j = j2
			}
			if h[j].t >= root.t {
				break
			}
			h[k] = h[j]
			k = j
		}
		h[k] = root
	}
}

// Part is one colocated NF's share of the NIC.
type Part struct {
	TS    *TraceSet
	Cores int
}

// warmupFrac is the fraction of each trace excluded from measurements
// (state and cache warmup).
const warmupFrac = 0.1

// Simulate replays one trace set on the given number of cores.
func Simulate(params Params, cores int, ts *TraceSet) (Result, error) {
	rs, err := SimulateColocation(params, []Part{{TS: ts, Cores: cores}})
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// partState tracks one NF's dispatch progress and measurements.
type partState struct {
	ts       *TraceSet
	cpp      float64 // cycles between consecutive arrivals
	next     int
	warm     int
	count    int
	sumLat   float64
	maxLat   float64
	firstEnd float64
	lastEnd  float64
}

// SimulateColocation replays multiple trace sets sharing the NIC's memory
// system, engines and ingress path, each on a private core pool — the
// paper's colocation setup (§4.5: "each NF is given the same amount of
// SmartNIC resources" by default).
//
// The replay is a discrete-event simulation: cores advance one trace event
// per scheduling step in global time order, so concurrently executing
// packets interleave their accesses at the shared memory servers. A memory
// or engine access occupies its server for the access's Occupy cycles
// (reciprocal bandwidth) while the requesting core blocks for the full
// access latency — run-to-completion cores over pipelined memory units.
func SimulateColocation(params Params, parts []Part) ([]Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("nicsim: no parts to simulate")
	}
	totalCores := 0
	for _, p := range parts {
		if p.Cores <= 0 {
			return nil, fmt.Errorf("nicsim: part %q has no cores", p.TS.Name)
		}
		if p.TS.Packets() == 0 {
			return nil, fmt.Errorf("nicsim: part %q has an empty trace", p.TS.Name)
		}
		totalCores += p.Cores
	}
	if totalCores > params.NumCores {
		return nil, fmt.Errorf("nicsim: %d cores requested, NIC has %d", totalCores, params.NumCores)
	}

	ghz := params.CoreGHz
	states := make([]*partState, len(parts))
	var threads []coreState
	var pipes []float64 // per-core compute-pipeline busy clocks
	for i, p := range parts {
		// Each colocated NF is fed through its own port at up to
		// IngressMpps (the modeled NIC, like the Agilio CX, has one MAC
		// per colocated service); interference between colocated NFs comes
		// from the shared memory subsystem and engines, "primarily from
		// contention at the memory subsystems" (§4.5).
		share := params.IngressMpps
		if p.TS.OfferedMpps > 0 && p.TS.OfferedMpps < share {
			share = p.TS.OfferedMpps
		}
		states[i] = &partState{
			ts:   p.TS,
			cpp:  ghz * 1e9 / (share * 1e6),
			warm: int(float64(p.TS.Packets()) * warmupFrac),
		}
		for c := 0; c < p.Cores; c++ {
			pipe := len(pipes)
			pipes = append(pipes, 0)
			for th := 0; th < params.ThreadsPerCore; th++ {
				threads = append(threads, coreState{part: i, pkt: -1, pipe: pipe})
			}
		}
	}
	cores := make(coreHeap, len(threads))
	for i := range cores {
		cores[i] = coreRef{ci: int32(i)}
	}
	cores.initHeap()

	var servers [numServers]float64
	wire := float64(params.WireOverheadCycles)

	// Invariant: at the top of each iteration every heap entry's cached t
	// equals its thread's t — only the root's t drifts while its events
	// are applied, and it is written back right before fixRoot.
	for cores.Len() > 0 {
		c := &threads[cores[0].ci]
		st := states[c.part]

		if c.pkt < 0 {
			// Dispatch the part's next packet onto this idle core.
			if st.next >= st.ts.Packets() {
				cores.popRoot() // part drained; retire the core
				continue
			}
			arr := float64(st.next) * st.cpp
			if arr > c.t {
				c.t = arr // core idles until the packet arrives
			}
			c.pkt = st.next
			c.ev = st.ts.Off[c.pkt]
			c.start = c.t
			st.next++
			cores[0].t = c.t
			cores.fixRoot()
			continue
		}

		if c.ev >= st.ts.Off[c.pkt+1] {
			// Packet complete.
			end := c.t + wire
			if c.pkt >= st.warm {
				lat := end - c.start
				st.sumLat += lat
				if lat > st.maxLat {
					st.maxLat = lat
				}
				if st.count == 0 {
					st.firstEnd = c.start
				}
				st.count++
				if end > st.lastEnd {
					st.lastEnd = end
				}
			}
			c.pkt = -1
			cores.fixRoot()
			continue
		}

		// Drain this core's events while it remains the earliest thread.
		// The stay-or-yield test below uses exactly the comparisons
		// fixRoot performs, so the batched loop replays the same global
		// event order as re-extracting the root after every event — it
		// only skips the redundant heap reads in between. (math.Max is
		// spelled as a compare: these clocks are never NaN, and the
		// intrinsic's NaN/±0 handling kept it from inlining.)
		evEnd := st.ts.Off[c.pkt+1]
		for {
			ev := &st.ts.Events[c.ev]
			c.ev++
			if ev.Server == srvNone {
				if ev.Kind == EvCompute {
					// Compute serializes on the core's pipeline across its
					// threads.
					p := &pipes[c.pipe]
					start := c.t
					if *p > start {
						start = *p
					}
					*p = start + float64(ev.Cycles)
					c.t = start + float64(ev.Cycles)
				} else {
					// Pure latency (ingress-path handling): no core resource.
					c.t += float64(ev.Cycles)
				}
			} else {
				s := &servers[ev.Server]
				issue := c.t
				if *s > issue {
					issue = *s
				}
				*s = issue + float64(ev.Occupy)
				c.t = issue + float64(ev.Cycles)
			}
			if c.ev >= evEnd {
				break // packet complete: handled on re-extraction
			}
			if len(cores) > 1 {
				j := 1
				if len(cores) > 2 && cores[2].t < cores[1].t {
					j = 2
				}
				if cores[j].t < c.t {
					break // another thread is now earlier: yield
				}
			}
		}
		cores[0].t = c.t
		cores.fixRoot()
	}

	out := make([]Result, len(parts))
	for i, st := range states {
		r := Result{Name: st.ts.Name, Cores: parts[i].Cores, Packets: st.count}
		if st.count > 0 {
			r.AvgLatencyUs = st.sumLat / float64(st.count) / (ghz * 1e3)
			r.MaxLatencyUs = st.maxLat / (ghz * 1e3)
			span := st.lastEnd - st.firstEnd
			if span > 0 {
				r.ThroughputMpps = float64(st.count) / (span / (ghz * 1e9)) / 1e6
			}
		}
		out[i] = r
	}
	return out, nil
}

// SweepCores simulates ts at each core count.
func SweepCores(params Params, ts *TraceSet, coreCounts []int) ([]Result, error) {
	out := make([]Result, 0, len(coreCounts))
	for _, c := range coreCounts {
		r, err := Simulate(params, c, ts)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultCoreSweep is the core-count grid used by the scale-out analyses.
var DefaultCoreSweep = []int{1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60}

// KneeCores picks the core count at the knee of the throughput/latency
// tradeoff (§4.2, Figure 11): the smallest core count whose ratio is
// within 2%% of the sweep's maximum — beyond the knee, more cores buy
// contention, not useful ratio.
func KneeCores(results []Result) int {
	bestRatio := -1.0
	for _, r := range results {
		if ratio := r.Ratio(); ratio > bestRatio {
			bestRatio = ratio
		}
	}
	for _, r := range results {
		if r.Ratio() >= 0.98*bestRatio {
			return r.Cores
		}
	}
	return 0
}

// CoresToSaturate returns the smallest core count reaching frac of the
// sweep's peak throughput (the Figure 13 metric: "number of cores required
// to saturate the bandwidth").
func CoresToSaturate(results []Result, frac float64) int {
	peak := 0.0
	for _, r := range results {
		if r.ThroughputMpps > peak {
			peak = r.ThroughputMpps
		}
	}
	for _, r := range results {
		if r.ThroughputMpps >= frac*peak {
			return r.Cores
		}
	}
	if len(results) == 0 {
		return 0
	}
	return results[len(results)-1].Cores
}
