package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickSuiteRuns exercises every experiment end-to-end at quick scale:
// each must produce a non-empty table without errors.
func TestQuickSuiteRuns(t *testing.T) {
	ctx := NewContext(Config{Quick: true, Seed: 42, Params: DefaultConfig().Params})
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("empty table")
			}
			var buf bytes.Buffer
			tb.Fprint(&buf)
			if !strings.Contains(buf.String(), e.ID) {
				t.Errorf("rendered table missing its ID header")
			}
		})
	}
}

func TestGetExperiment(t *testing.T) {
	if Get("figure8") == nil {
		t.Error("figure8 missing")
	}
	if Get("nope") != nil {
		t.Error("phantom experiment")
	}
}
