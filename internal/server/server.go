// Package server turns Clara from a one-shot CLI into a long-running
// HTTP analysis service: clients POST NFC source (or library element
// names) and receive the full offloading insights as JSON.
//
// The serving layer adds exactly the robustness a continuously-invoked
// analyzer needs on top of core.Clara + fleet:
//
//   - per-request context: timeouts and client disconnects cancel the
//     underlying analysis (observed inside fleet.RunContext and the
//     core profiling loop), so abandoned requests stop burning workers;
//   - bounded admission: at most Config.QueueDepth requests hold
//     analysis slots at once; requests beyond that are rejected with
//     429 (backpressure) instead of queueing without bound;
//   - panic isolation: a poisoned NF panics its own fleet job, which is
//     converted to a per-job error — the process survives;
//   - graceful shutdown: Shutdown stops admitting work and drains the
//     in-flight requests before returning;
//   - observability: /metrics returns a JSON snapshot (request counts,
//     queue depth, per-endpoint latency histograms, fleet cache/lint
//     stats, model provenance) and /debug/pprof exposes the runtime
//     profiles;
//   - readiness: a server built with a Train function binds its port
//     immediately and answers /healthz with 503 "training" until the
//     model is ready, so orchestrators see liveness during the cold
//     start; a warm-started server (pre-loaded model bundle) is ready
//     before the first request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"clara/internal/analysis"
	"clara/internal/click"
	"clara/internal/core"
	"clara/internal/fleet"
	"clara/internal/interp"
	"clara/internal/lang"
	"clara/internal/traffic"
)

// ModelInfo describes the served model's provenance for /metrics and
// /healthz: where it came from (warm start vs in-process training), its
// bundle content hash, and how long training took.
type ModelInfo struct {
	// Hash is the model bundle's content hash ("" when the tool was
	// trained in process and never bundled).
	Hash string
	// WarmStart is true when the tool was loaded from a persisted
	// bundle instead of trained at startup.
	WarmStart bool
	// TrainSeconds is the training wall time (the original training run
	// for a warm-started bundle, this process's for a cold start).
	TrainSeconds float64
}

// Config sizes a Server.
type Config struct {
	// Tool is the trained analyzer. Exactly one of Tool and Train must
	// be set: with Tool the server is ready immediately (warm start),
	// with Train it trains in the background after Start and answers
	// 503 on the analysis endpoints until training completes.
	Tool *core.Clara
	// Train builds the tool asynchronously at startup. It observes ctx
	// (server shutdown cancels training) and returns the tool plus its
	// provenance.
	Train func(ctx context.Context) (*core.Clara, ModelInfo, error)
	// Model is the provenance of a pre-built Tool; ignored when Train
	// is used (Train returns its own ModelInfo).
	Model ModelInfo
	// Workers bounds the fleet's analysis pool; 0 = GOMAXPROCS.
	Workers int
	// QueueDepth bounds concurrently admitted /v1/analyze requests
	// (lint is static and cheap, so it bypasses admission); requests
	// beyond it get 429. 0 means 4 × the resolved worker count.
	QueueDepth int
	// RequestTimeout caps one request's analysis time (a client-supplied
	// timeout_ms may only shorten it). 0 means 30s.
	RequestTimeout time.Duration
	// CacheSize caps the fleet prediction cache; 0 = fleet default.
	CacheSize int
	// InterpBackend selects the interpreter execution engine used by
	// host profiling ("" or "auto" = process default, "compiled",
	// "reference"). Applied process-wide at New; both backends produce
	// bit-identical analysis results — "reference" exists for
	// differential debugging.
	InterpBackend string

	// JobHook, when set, is applied to every job built from a request —
	// a seam for injecting slow or panicking analyses (used by the
	// server's and the cluster coordinator's failure-mode tests).
	JobHook func(j *fleet.Job)
}

// Server is the HTTP analysis service. Create with New, expose via
// Handler (for tests / custom listeners) or ListenAndServe. A server
// built with Config.Train additionally needs Start (ListenAndServe
// calls it) to kick off background training.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	sem     chan struct{} // admission slots
	met     *metrics
	drain   drainGate
	httpSrv *http.Server

	// Model state, installed once (at New for a pre-built tool, from
	// the training goroutine otherwise). ready is closed after install
	// or terminal training failure; mu guards the fields themselves.
	mu       sync.Mutex
	fl       *fleet.Fleet
	model    ModelInfo
	trainErr error
	ready    chan struct{}
	started  atomic.Bool
}

// New builds a server around a trained tool, or — when Config.Train is
// set — around a tool that will be trained in the background.
func New(cfg Config) (*Server, error) {
	if cfg.Tool == nil && cfg.Train == nil {
		return nil, errors.New("server: need a tool or a train function")
	}
	if cfg.Tool != nil && cfg.Train != nil {
		return nil, errors.New("server: tool and train function are mutually exclusive")
	}
	if cfg.QueueDepth <= 0 {
		w := cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		cfg.QueueDepth = 4 * w
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.InterpBackend != "" {
		bk, err := interp.ParseBackend(cfg.InterpBackend)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		if bk != interp.BackendAuto {
			if err := interp.SetDefaultBackend(bk); err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
		}
	}
	s := &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.QueueDepth),
		met:   newMetrics(),
		ready: make(chan struct{}),
	}
	if cfg.Tool != nil {
		if err := s.install(cfg.Tool, cfg.Model); err != nil {
			return nil, err
		}
	}
	s.drain.idle = make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/lint", s.handleLint)
	mux.HandleFunc("GET /v1/elements", s.handleElements)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s, nil
}

// install builds the fleet around a trained tool and marks the server
// ready. Called exactly once: from New (pre-built tool) or from the
// training goroutine.
func (s *Server) install(tool *core.Clara, info ModelInfo) error {
	fl, err := fleet.New(tool, fleet.Config{Workers: s.cfg.Workers, CacheSize: s.cfg.CacheSize})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.cfg.Tool = tool
	s.fl = fl
	s.model = info
	s.mu.Unlock()
	close(s.ready)
	return nil
}

// Start launches background training when the server was built with a
// Train function; it returns immediately and is idempotent. Shutdown of
// ctx cancels an in-flight training run. ListenAndServe calls Start;
// tests serving via Handler call it themselves.
func (s *Server) Start(ctx context.Context) {
	if s.cfg.Train == nil || !s.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		tool, info, err := s.cfg.Train(ctx)
		if err == nil {
			err = s.install(tool, info)
			if err == nil {
				return
			}
		}
		s.mu.Lock()
		s.trainErr = err
		s.mu.Unlock()
		close(s.ready)
	}()
}

// Ready blocks until the model is installed or training failed
// terminally; it reports whether the server can analyze.
func (s *Server) Ready(ctx context.Context) error {
	select {
	case <-s.ready:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trainErr
}

// state snapshots the model machinery for the handlers: the fleet (nil
// until ready), the provenance, and a terminal training error.
func (s *Server) state() (*fleet.Fleet, ModelInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fl, s.model, s.trainErr
}

// Handler returns the service's HTTP handler (for httptest or custom
// servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Fleet exposes the underlying fleet (its Stats feed /metrics); nil
// until a Train-configured server finishes training.
func (s *Server) Fleet() *fleet.Fleet {
	fl, _, _ := s.state()
	return fl
}

// tool returns the installed tool (nil until training completes).
func (s *Server) tool() *core.Clara {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Tool
}

// ListenAndServe serves on addr until ctx is canceled, then shuts down
// gracefully, draining in-flight analyses (bounded by a 30s grace
// period).
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	s.Start(ctx)
	s.httpSrv = &http.Server{Addr: addr, Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- s.httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	grace, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(grace); err != nil {
		return err
	}
	return s.httpSrv.Shutdown(grace)
}

// Shutdown stops admitting new analysis requests (they get 503) and
// blocks until every in-flight request has drained or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drain.close()
	select {
	case <-s.drain.idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun: the server answers 503
// on the analysis endpoints and /healthz says "draining". Exposed for
// in-process embedders (tests, benchmarks, the cluster coordinator's
// harness) that hold a *Server rather than probing over HTTP.
func (s *Server) Draining() bool { return s.drain.closing() }

// drainGate tracks in-flight requests so Shutdown can drain them. (A
// bare WaitGroup would race Add against Wait; the mutex-guarded counter
// makes enter-after-close an explicit rejection instead.)
type drainGate struct {
	mu     sync.Mutex
	n      int
	closed bool
	idle   chan struct{} // closed once closed && n == 0
}

func (d *drainGate) enter() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.n++
	return true
}

func (d *drainGate) exit() {
	d.mu.Lock()
	d.n--
	if d.closed && d.n == 0 {
		close(d.idle)
	}
	d.mu.Unlock()
}

func (d *drainGate) close() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		if d.n == 0 {
			close(d.idle)
		}
	}
	d.mu.Unlock()
}

// maxBodyBytes bounds request bodies; NFC sources are small programs.
const maxBodyBytes = 1 << 20

// AnalyzeRequest is the /v1/analyze body. Exactly one of NF, NFs, or
// Src selects what to analyze.
type AnalyzeRequest struct {
	// NF names one library element; NFs names several (one batch).
	NF  string   `json:"nf,omitempty"`
	NFs []string `json:"nfs,omitempty"`
	// Src is NFC source to compile and analyze; Name labels it.
	Src  string `json:"src,omitempty"`
	Name string `json:"name,omitempty"`
	// Workload is small | large | mix (default mix).
	Workload string `json:"workload,omitempty"`
	// TimeoutMs optionally shortens the server's request timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// AnalyzeResult is one job's JSON outcome.
type AnalyzeResult struct {
	Name      string         `json:"name"`
	Workload  string         `json:"workload"`
	Insights  *core.Insights `json:"insights,omitempty"`
	Error     string         `json:"error,omitempty"`
	Panicked  bool           `json:"panicked,omitempty"`
	CacheHit  bool           `json:"cache_hit"`
	ElapsedMs float64        `json:"elapsed_ms"`
}

type AnalyzeResponse struct {
	Results []AnalyzeResult `json:"results"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "analyze"
	fl := s.gate(w, route)
	if fl == nil {
		return
	}
	var req AnalyzeRequest
	if !s.decode(w, r, route, &req) {
		return
	}
	jobs, errMsg := s.buildJobs(&req)
	if errMsg != "" {
		s.writeError(w, route, http.StatusBadRequest, errMsg)
		return
	}

	// Drain first, admission second. A draining server must always
	// answer 503 "shutting down" — checking the semaphore first made a
	// full, draining server tell clients "retry later" (429) against a
	// process that was about to exit, which a retrying proxy (or the
	// cluster coordinator) would obligingly hammer instead of failing
	// over to a live worker.
	if !s.drain.enter() {
		s.writeError(w, route, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	defer s.drain.exit()

	// Admission: a slot per request, held for its whole analysis. No
	// hidden queue behind it — a full service answers 429 immediately
	// and the client retries against visible backpressure.
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(fl)))
		s.met.observe(route, http.StatusTooManyRequests, time.Since(start))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "analysis queue full",
		})
		return
	}
	defer func() { <-s.sem }()

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 && time.Duration(req.TimeoutMs)*time.Millisecond < timeout {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	results, runErr := fl.RunContext(ctx, jobs)
	elapsed := time.Since(start)

	if r.Context().Err() != nil {
		// Client went away: there is nobody to write to. Record the
		// cancellation (the analysis itself stopped inside RunContext).
		s.met.observe(route, statusClientClosed, elapsed)
		return
	}
	if runErr != nil && errors.Is(runErr, context.DeadlineExceeded) {
		s.writeError(w, route, http.StatusGatewayTimeout,
			fmt.Sprintf("analysis timed out after %s", timeout))
		return
	}
	if runErr != nil {
		s.writeError(w, route, http.StatusInternalServerError, runErr.Error())
		return
	}

	resp := AnalyzeResponse{Results: make([]AnalyzeResult, len(results))}
	failed := 0
	for i, res := range results {
		out := AnalyzeResult{
			Name:      res.Name,
			Workload:  res.Workload,
			Insights:  res.Insights,
			CacheHit:  res.CacheHit,
			Panicked:  res.Panicked,
			ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
			failed++
		}
		resp.Results[i] = out
	}
	// A batch with failed jobs is still a delivered batch: per-job errors
	// ride in the results and the count in X-Clara-Failed-Jobs. Answering
	// 500 here made every retrying proxy re-run the whole batch — good
	// jobs included — to retry failures that are deterministic analysis
	// faults, not transient server state.
	if failed > 0 {
		w.Header().Set(FailedJobsHeader, strconv.Itoa(failed))
	}
	s.met.observe(route, http.StatusOK, elapsed)
	writeJSON(w, http.StatusOK, resp)
}

// FailedJobsHeader carries the number of jobs in a 200 batch response
// that failed with per-job errors (absent when all jobs succeeded).
const FailedJobsHeader = "X-Clara-Failed-Jobs"

// retryAfterSeconds estimates when an admission slot is likely to free:
// the current slot occupancy divided by the analysis pool's parallelism
// (each worker retires roughly one queued request at a time), clamped to
// [1, 30] seconds. A deeper queue pushes clients further out instead of
// the old hardcoded "1", which synchronized every rejected client into
// a retry storm one second later.
func (s *Server) retryAfterSeconds(fl *fleet.Fleet) int {
	workers := 1
	if fl != nil {
		workers = fl.Workers()
	}
	secs := (len(s.sem) + workers - 1) / workers
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// buildJobs resolves an analyze request into fleet jobs.
func (s *Server) buildJobs(req *AnalyzeRequest) ([]fleet.Job, string) {
	wl, err := pickWorkload(req.Workload)
	if err != nil {
		return nil, err.Error()
	}
	selectors := 0
	for _, set := range []bool{req.NF != "", len(req.NFs) > 0, req.Src != ""} {
		if set {
			selectors++
		}
	}
	if selectors != 1 {
		return nil, "exactly one of nf, nfs, or src must be set"
	}
	var jobs []fleet.Job
	switch {
	case req.Src != "":
		name := req.Name
		if name == "" {
			name = "submitted"
		}
		mod, err := lang.Compile(name, req.Src)
		if err != nil {
			return nil, fmt.Sprintf("compiling %s: %v", name, err)
		}
		jobs = append(jobs, fleet.Job{Name: name, Mod: mod, WL: wl})
	default:
		names := req.NFs
		if req.NF != "" {
			names = []string{req.NF}
		}
		for _, n := range names {
			e := click.Get(n)
			if e == nil {
				return nil, fmt.Sprintf("unknown element %q (GET /v1/elements lists them)", n)
			}
			mod, err := e.Module()
			if err != nil {
				return nil, err.Error()
			}
			jobs = append(jobs, fleet.Job{
				Name: e.Name,
				Mod:  mod,
				PS:   core.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes},
				WL:   wl,
			})
		}
	}
	if s.cfg.JobHook != nil {
		for i := range jobs {
			s.cfg.JobHook(&jobs[i])
		}
	}
	return jobs, ""
}

// LintRequest is the /v1/lint body: a library element name or source.
type LintRequest struct {
	NF   string `json:"nf,omitempty"`
	Src  string `json:"src,omitempty"`
	Name string `json:"name,omitempty"`
}

type LintResponse struct {
	Name        string                `json:"name"`
	Summary     analysis.Summary      `json:"summary"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const route = "lint"
	// Lint is static, but its thresholds come from the trained tool's
	// hardware model — it waits for readiness like analyze does.
	if s.gate(w, route) == nil {
		return
	}
	var req LintRequest
	if !s.decode(w, r, route, &req) {
		return
	}
	name, src := req.Name, req.Src
	switch {
	case req.NF != "" && req.Src == "":
		e := click.Get(req.NF)
		if e == nil {
			s.writeError(w, route, http.StatusBadRequest, fmt.Sprintf("unknown element %q", req.NF))
			return
		}
		name, src = e.Name, e.Src
	case req.Src != "" && req.NF == "":
		if name == "" {
			name = "submitted"
		}
	default:
		s.writeError(w, route, http.StatusBadRequest, "exactly one of nf or src must be set")
		return
	}
	if !s.drain.enter() {
		s.writeError(w, route, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	defer s.drain.exit()

	ds, err := analysis.LintSource(name, src, s.cfg.Tool.LintConfig())
	if err != nil {
		s.writeError(w, route, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.met.observe(route, http.StatusOK, time.Since(start))
	writeJSON(w, http.StatusOK, LintResponse{
		Name:        name,
		Summary:     analysis.Summarize(ds),
		Diagnostics: ds,
	})
}

// elementInfo is one row of /v1/elements.
type elementInfo struct {
	Name     string `json:"name"`
	Desc     string `json:"desc"`
	LoC      int    `json:"loc"`
	Stateful bool   `json:"stateful"`
}

func (s *Server) handleElements(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var out []elementInfo
	for _, e := range click.Library() {
		out = append(out, elementInfo{Name: e.Name, Desc: e.Desc, LoC: e.LoC(), Stateful: e.Stateful})
	}
	s.met.observe("elements", http.StatusOK, time.Since(start))
	writeJSON(w, http.StatusOK, out)
}

// gate rejects analysis-bearing requests while no model is installed:
// 503 with Retry-After during startup training, 500 once training has
// failed terminally. It returns the fleet when the server is ready.
func (s *Server) gate(w http.ResponseWriter, route string) *fleet.Fleet {
	fl, _, trainErr := s.state()
	if trainErr != nil {
		s.writeError(w, route, http.StatusInternalServerError,
			"model training failed: "+trainErr.Error())
		return nil
	}
	if fl == nil {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, route, http.StatusServiceUnavailable, "model training in progress")
		return nil
	}
	return fl
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.drain.closing() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	fl, info, trainErr := s.state()
	switch {
	case trainErr != nil:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "failed", "error": trainErr.Error(),
		})
	case fl == nil:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "training"})
	default:
		out := map[string]string{"status": "ok"}
		if info.Hash != "" {
			out["model_hash"] = info.Hash
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func (d *drainGate) closing() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// decode parses a JSON request body, answering 400 on malformed input.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, route string, into any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.writeError(w, route, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) writeError(w http.ResponseWriter, route string, status int, msg string) {
	s.met.observe(route, status, 0)
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client may already be gone
}

func pickWorkload(name string) (traffic.Spec, error) {
	switch name {
	case "small":
		return traffic.SmallFlows, nil
	case "large":
		return traffic.LargeFlows, nil
	case "mix", "":
		return traffic.MediumMix, nil
	default:
		return traffic.Spec{}, fmt.Errorf("unknown workload %q (small | large | mix)", name)
	}
}
