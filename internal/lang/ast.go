package lang

import "clara/internal/ir"

// File is a parsed NFC compilation unit (one NF element).
type File struct {
	Name    string
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a stateful NF variable.
type GlobalDecl struct {
	Name string
	Kind ir.GlobalKind
	Elem ir.Type // scalar/array element, map value
	Key  ir.Type // map key
	Len  int     // array length / map capacity
	Line int
	Col  int
}

// FuncDecl declares a function. The packet handler is named "handle".
type FuncDecl struct {
	Name   string
	Params []ir.Param
	Ret    ir.Type
	Body   *BlockStmt
	Line   int
	Col    int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a { ... } statement list.
type BlockStmt struct{ List []Stmt }

// VarDecl declares (and optionally initializes) a local variable.
type VarDecl struct {
	Name string
	Ty   ir.Type
	Init Expr // may be nil
	Line int
	Col  int
}

// AssignStmt assigns to a local variable, global scalar, or array element.
// Op is "" for plain assignment or the compound operator ("+=", ...).
type AssignStmt struct {
	Target *LValue
	Op     string
	Value  Expr
	Line   int
	Col    int
}

// LValue is an assignable location.
type LValue struct {
	Name  string
	Index Expr // non-nil for array element
	Line  int
	Col   int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
	Line int
	Col  int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
	Col  int
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Stmt // VarDecl or AssignStmt, may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // AssignStmt, may be nil
	Body *BlockStmt
	Line int
	Col  int
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	Value Expr // may be nil
	Line  int
	Col   int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line, Col int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line, Col int }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X    Expr
	Line int
	Col  int
}

func (*BlockStmt) stmtNode()    {}
func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val  uint64
	Line int
	Col  int
}

// BoolLit is true/false.
type BoolLit struct {
	Val  bool
	Line int
	Col  int
}

// Ident references a local variable, parameter, or global scalar.
type Ident struct {
	Name string
	Line int
	Col  int
}

// IndexExpr is array indexing: name[idx].
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
	Col   int
}

// CallExpr calls an intrinsic or a user function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
	Col  int
}

// CastExpr is an explicit conversion: u32(expr).
type CastExpr struct {
	Ty   ir.Type
	X    Expr
	Line int
	Col  int
}

// UnaryExpr is !x, ~x, or -x.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
	Col  int
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Line int
	Col  int
}

func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*CastExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
