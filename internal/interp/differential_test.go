// Differential suite for the compiled direct-threaded backend: every
// observable the interpreter exposes — Steps, fuel exhaustion, packet
// disposition and mutation, state counters, hook event traces, and
// post-run state inspection — must be bit-identical between
// BackendCompiled and BackendReference on identical packet streams. The
// tests live in an external package so they can drive the real NF
// library (internal/click imports interp).
package interp_test

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"clara/internal/click"
	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/traffic"
)

// observe runs pkts through a fresh machine for e and returns a full
// textual transcript of every observable. Two backends agree iff their
// transcripts are byte-equal, so a divergence report pinpoints the first
// differing packet or event.
func observe(tb testing.TB, e *click.Element, pkts []traffic.Packet, cfg interp.Config, hooked bool) string {
	tb.Helper()
	mod, err := e.Module()
	if err != nil {
		tb.Fatalf("%s: %v", e.Name, err)
	}
	m, err := interp.New(mod, cfg)
	if err != nil {
		tb.Fatalf("%s: %v", e.Name, err)
	}
	if e.Setup != nil {
		if err := e.Setup(m); err != nil {
			tb.Fatalf("%s setup: %v", e.Name, err)
		}
	}
	ctr := m.EnableCounters()
	var b strings.Builder
	if hooked {
		m.SetHooks(interp.Hooks{
			OnBlock: func(block int) { fmt.Fprintf(&b, "B%d ", block) },
			OnState: func(global string, store bool, addr uint64, block int) {
				fmt.Fprintf(&b, "S(%s,%v,%d,%d) ", global, store, addr, block)
			},
			OnLocal:   func(store bool, block int) { fmt.Fprintf(&b, "L(%v,%d) ", store, block) },
			OnCompute: func(block, n int) { fmt.Fprintf(&b, "C(%d,%d) ", block, n) },
			OnAPI: func(name, global string, probes int, addr uint64, block int) {
				fmt.Fprintf(&b, "A(%s,%s,%d,%d,%d) ", name, global, probes, addr, block)
			},
		})
	}
	for i := range pkts {
		p := pkts[i]
		if len(p.Payload) > 0 {
			p.Payload = append([]byte(nil), p.Payload...)
		}
		err := m.RunPacket(&p)
		fmt.Fprintf(&b, "\npkt%d err=%v steps=%d out=%d csum=%v ttl=%d seq=%d ack=%d pay=%x",
			i, err, m.Steps, p.OutPort, p.CsumUpdated, p.TTL, p.Seq, p.Ack, p.Payload)
	}
	fmt.Fprintf(&b, "\nblock=%v\nstate=%v\napi=%v\n", ctr.Block, ctr.State, ctr.API)
	// Post-run state inspection: scalars exactly, aggregate shape for the
	// bulk structures (full array dumps would bloat the transcript
	// without adding discriminating power — stores already hook/count).
	for gi := range mod.Globals {
		g := mod.Globals[gi]
		switch g.Kind {
		case ir.GScalar:
			v, err := m.Scalar(g.Name)
			fmt.Fprintf(&b, "scalar %s=%d err=%v\n", g.Name, v, err)
		case ir.GArray:
			var sum uint64
			for i := 0; i < g.Len; i++ {
				v, err := m.ArrayAt(g.Name, i)
				if err != nil {
					tb.Fatalf("%s array %s[%d]: %v", e.Name, g.Name, i, err)
				}
				sum += v ^ uint64(i)
			}
			fmt.Fprintf(&b, "array %s sum=%d\n", g.Name, sum)
		case ir.GMap:
			n, err := m.MapLen(g.Name)
			fi, _ := m.FailedInserts(g.Name)
			fmt.Fprintf(&b, "map %s len=%d failed=%d err=%v\n", g.Name, n, fi, err)
		case ir.GVec:
			n, err := m.VecLive(g.Name)
			d, _ := m.VecDropped(g.Name)
			fmt.Fprintf(&b, "vec %s live=%d dropped=%d err=%v\n", g.Name, n, d, err)
		}
	}
	// Releasing after inspection routes the next observe through the
	// machine pool, so the equivalence sweep also proves a pooled reset
	// is indistinguishable from a fresh machine.
	m.Release()
	return b.String()
}

// diffLine locates the first divergent line of two transcripts.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  ref: %s\n  cmp: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("transcript lengths differ: %d vs %d lines", len(al), len(bl))
}

func equivCheck(t *testing.T, e *click.Element, pkts []traffic.Packet, cfg interp.Config, hooked bool) {
	t.Helper()
	ref, cmp := cfg, cfg
	ref.Backend = interp.BackendReference
	cmp.Backend = interp.BackendCompiled
	want := observe(t, e, pkts, ref, hooked)
	got := observe(t, e, pkts, cmp, hooked)
	if want != got {
		t.Errorf("%s: compiled backend diverges from reference (hooked=%v):\n%s",
			e.Name, hooked, diffLine(want, got))
	}
}

// TestCompiledBackendEquivalence drives every library element under every
// standard traffic spec through both backends, in both observability
// modes (counters only → the fused counting flavor; full hooks → the
// strict 1:1 hooked flavor), and requires byte-identical transcripts.
func TestCompiledBackendEquivalence(t *testing.T) {
	specs := []struct {
		name string
		spec traffic.Spec
	}{
		{"small", traffic.SmallFlows},
		{"large", traffic.LargeFlows},
		{"mix", traffic.MediumMix},
	}
	const n = 160
	for _, e := range click.Library() {
		e := e
		for _, sp := range specs {
			pkts := traffic.MustTrace(sp.spec, n)
			for _, hooked := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/hooked=%v", e.Name, sp.name, hooked)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := interp.Config{Mode: interp.NICMap, LPMTable: e.Routes}
					equivCheck(t, e, pkts, cfg, hooked)
				})
			}
		}
	}
}

// TestCompiledBackendEquivalenceFuel starves the machines so the ErrFuel
// path is exercised: the compiled backend must abort on exactly the same
// packet, with exactly the same Steps charged, as the reference.
func TestCompiledBackendEquivalenceFuel(t *testing.T) {
	pkts := traffic.MustTrace(traffic.MediumMix, 64)
	for _, fuel := range []int{1, 7, 33, 120} {
		fuel := fuel
		t.Run(fmt.Sprint(fuel), func(t *testing.T) {
			t.Parallel()
			for _, e := range click.Library() {
				cfg := interp.Config{Mode: interp.NICMap, LPMTable: e.Routes, Fuel: fuel}
				equivCheck(t, e, pkts, cfg, false)
			}
		})
	}
}

// TestCompiledBackendEquivalenceHostMode repeats the sweep under HostMap
// semantics (native map behavior) — the mode interp benchmarks and ad-hoc
// Machine users run in.
func TestCompiledBackendEquivalenceHostMode(t *testing.T) {
	pkts := traffic.MustTrace(traffic.MediumMix, 120)
	for _, e := range click.Library() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			cfg := interp.Config{Mode: interp.HostMap, LPMTable: e.Routes, Seed: 99}
			equivCheck(t, e, pkts, cfg, false)
		})
	}
}

// fuzzPackets decodes an arbitrary byte string into a packet stream:
// 28-byte chunks become header fields, the chunk tail becomes payload.
// Every decoded stream is legal input — the interpreter's contract is
// total — so the only property checked is backend agreement.
func fuzzPackets(data []byte) []traffic.Packet {
	const rec = 28
	var pkts []traffic.Packet
	for off := 0; off+rec <= len(data) && len(pkts) < 48; off += rec {
		c := data[off : off+rec]
		p := traffic.Packet{
			Time:    uint64(len(pkts)) * 100,
			Len:     binary.LittleEndian.Uint16(c[0:]),
			EthType: binary.LittleEndian.Uint16(c[2:]),
			Proto:   c[4],
			TTL:     c[5],
			IPHL:    c[6],
			TCPFlag: c[7],
			SrcIP:   binary.LittleEndian.Uint32(c[8:]),
			DstIP:   binary.LittleEndian.Uint32(c[12:]),
			IPLen:   binary.LittleEndian.Uint16(c[16:]),
			SrcPort: binary.LittleEndian.Uint16(c[18:]),
			DstPort: binary.LittleEndian.Uint16(c[20:]),
			TCPOff:  c[22],
			Seq:     binary.LittleEndian.Uint32(c[23:]),
			OutPort: -2,
		}
		if n := int(c[27]) % 16; n > 0 {
			p.Payload = make([]byte, n)
			copy(p.Payload, data[off:])
		}
		pkts = append(pkts, p)
	}
	return pkts
}

// FuzzCompiledExec is the differential fuzz target: arbitrary packet
// streams through arbitrary library elements must yield identical
// transcripts (Steps, fuel, counters, hook traces, packet mutations,
// final state) from both backends. Seeded with every library element so
// the corpus starts covering all 4 compiled flavors and every API.
func FuzzCompiledExec(f *testing.F) {
	lib := click.Library()
	base := traffic.MustTrace(traffic.MediumMix, 4)
	var seed []byte
	for i := range base {
		var c [28]byte
		p := &base[i]
		binary.LittleEndian.PutUint16(c[0:], p.Len)
		binary.LittleEndian.PutUint16(c[2:], p.EthType)
		c[4], c[5], c[6], c[7] = p.Proto, p.TTL, p.IPHL, p.TCPFlag
		binary.LittleEndian.PutUint32(c[8:], p.SrcIP)
		binary.LittleEndian.PutUint32(c[12:], p.DstIP)
		binary.LittleEndian.PutUint16(c[16:], p.IPLen)
		binary.LittleEndian.PutUint16(c[18:], p.SrcPort)
		binary.LittleEndian.PutUint16(c[20:], p.DstPort)
		c[22] = p.TCPOff
		binary.LittleEndian.PutUint32(c[23:], p.Seq)
		c[27] = byte(len(p.Payload))
		seed = append(seed, c[:]...)
	}
	for i := range lib {
		f.Add(uint8(i), uint8(i%4), seed)
	}
	f.Fuzz(func(t *testing.T, elem, mode uint8, data []byte) {
		e := lib[int(elem)%len(lib)]
		pkts := fuzzPackets(data)
		if len(pkts) == 0 {
			return
		}
		// Fuel is always capped: adversarial headers can drive loop-heavy
		// elements to the default 1M-step budget, which would throttle the
		// fuzzer to ~1 exec/s without exploring anything new. Equivalence
		// must hold at every budget, so a small one loses no coverage —
		// and mode&2 shrinks it further to hammer the mid-block abort path.
		cfg := interp.Config{Mode: interp.NICMap, LPMTable: e.Routes, Seed: uint64(mode), Fuel: 4096}
		if mode&2 != 0 {
			cfg.Fuel = 24 + int(mode)
		}
		equivCheck(t, e, pkts, cfg, mode&1 != 0)
	})
}
