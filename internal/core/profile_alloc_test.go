package core

import (
	"testing"

	"clara/internal/click"
	"clara/internal/interp"
	"clara/internal/traffic"
)

// profileLoop builds the exact machinery of the ProfileOnHostSourceContext
// hot loop — NICMap machine, native counters, trace replayer with caller
// scratch — and returns a closure replaying n packets through it. One warm
// pass is run first so the one-time costs (threaded-program compile,
// payload scratch growth, map state reaching its steady-state size) are
// paid before the caller measures.
func profileLoop(tb testing.TB, name string, n int) func() {
	tb.Helper()
	e := click.Get(name)
	if e == nil {
		tb.Fatalf("no library element %q", name)
	}
	mod := e.MustModule()
	m, err := interp.New(mod, interp.Config{Mode: interp.NICMap})
	if err != nil {
		tb.Fatal(err)
	}
	if e.Setup != nil {
		if err := e.Setup(m); err != nil {
			tb.Fatal(err)
		}
	}
	m.EnableCounters()
	rep, err := traffic.NewReplayer(traffic.MustTrace(traffic.MediumMix, n))
	if err != nil {
		tb.Fatal(err)
	}
	var pbuf []byte
	// p hoisted exactly as in ProfileOnHostSourceContext: RunPacket
	// retains &p, so a per-iteration variable would escape.
	var p traffic.Packet
	loop := func() {
		for i := 0; i < n; i++ {
			p, pbuf = rep.NextBuf(pbuf)
			if err := m.RunPacket(&p); err != nil {
				tb.Fatal(err)
			}
		}
	}
	loop()
	return loop
}

// TestProfileLoopZeroAllocs pins the host-profiling packet loop at zero
// heap allocations per packet: the replayer copies payloads into reused
// scratch, the machine's register file and counters are preallocated, and
// the compiled backend's closures are built once per module. A regression
// here silently taxes every fleet job, so it fails the build rather than
// just a benchmark delta.
func TestProfileLoopZeroAllocs(t *testing.T) {
	for _, name := range []string{"udpcount", "cmsketch"} {
		t.Run(name, func(t *testing.T) {
			const n = 256
			loop := profileLoop(t, name, n)
			if a := testing.AllocsPerRun(5, loop); a > 0 {
				t.Fatalf("profiling loop allocates: %.1f allocs per %d packets", a, n)
			}
		})
	}
}

// BenchmarkProfilePacketLoop measures the steady-state per-packet cost of
// host profiling (replayer + compiled machine + counters), with allocs
// reported so `-benchmem` shows the 0 allocs/op contract.
func BenchmarkProfilePacketLoop(b *testing.B) {
	const n = 256
	loop := profileLoop(b, "udpcount", n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += n {
		loop()
	}
}
