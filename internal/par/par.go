// Package par provides the small deterministic parallel-for used by the
// training fast path. Work items are indexed; each worker claims the next
// index from an atomic counter and writes results only into that index's
// slot. Because item i's computation never depends on which worker ran it
// (callers seed any randomness per index), output is bit-identical for
// every worker count — parallelism changes wall-clock, never results.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: n <= 0 means GOMAXPROCS, and
// the result is clamped to jobs (no idle goroutines).
func Workers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 means GOMAXPROCS). fn must confine its writes to
// per-index state.
func For(workers, n int, fn func(i int)) {
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr is For with error propagation and cancellation: workers stop
// claiming new indices once any fn fails or ctx is done. The returned
// error is the lowest-index failure (deterministic, because indices are
// claimed in order: every index below a failed one was already claimed
// and allowed to finish), or ctx.Err() if the context fired first.
func ForErr(ctx context.Context, workers, n int, fn func(i int) error) error {
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
