package fleet

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"clara/internal/analysis"
	"clara/internal/core"
	"clara/internal/isa"
)

// Summary renders a result batch as the analyze-fleet mode's table: one
// row per (NF, workload) with the headline insight from each analysis.
func Summary(results []Result) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NF\tWORKLOAD\tCOMPUTE\tAPI\tMEM\tALGO\tCORES\tPLACEMENT\tPACKS\tLINT\tCACHE\tTIME")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "%s\t%s\terror: %v\t\t\t\t\t\t\t\t\t\n", r.Name, r.Workload, r.Err)
			continue
		}
		ins := r.Insights
		cache := "miss"
		if r.CacheHit {
			cache = "hit"
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%d\t%d\t%s\t%d\t%s\t%d\t%s\t%s\t%s\n",
			r.Name, r.Workload,
			ins.Prediction.TotalCompute, ins.Prediction.TotalAPI, ins.Prediction.TotalMem,
			core.AlgoName(ins.Algorithm), ins.SuggestedCores,
			placementSummary(ins), len(ins.Packs), lintSummary(r.Lint), cache,
			r.Elapsed.Round(r.Elapsed/100+1))
	}
	w.Flush()
	return b.String()
}

// lintSummary compresses a diagnostic summary to "1E/2W/3I" (errors,
// warnings, infos), or "-" when the NF linted completely clean.
func lintSummary(s analysis.Summary) string {
	if s.Errors == 0 && s.Warnings == 0 && s.Infos == 0 {
		return "-"
	}
	return fmt.Sprintf("%dE/%dW/%dI", s.Errors, s.Warnings, s.Infos)
}

// placementSummary compresses a placement map to per-region counts in
// region order ("CLS:2 EMEM:1"), or "-" for stateless NFs.
func placementSummary(ins *core.Insights) string {
	if len(ins.Placement) == 0 {
		return "-"
	}
	counts := map[isa.Region]int{}
	for _, r := range ins.Placement {
		counts[r]++
	}
	regions := make([]isa.Region, 0, len(counts))
	for r := range counts { //claravet:allow keys are sorted before rendering
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	parts := make([]string, 0, len(regions))
	for _, r := range regions {
		parts = append(parts, fmt.Sprintf("%s:%d", r, counts[r]))
	}
	return strings.Join(parts, " ")
}
