// Package analysis is Clara's static-analysis layer over the NFC IR: CFG
// construction (dominators, reverse postorder, natural loops), a generic
// worklist dataflow framework (liveness, reaching definitions, and
// constant/range propagation are the stock instantiations), and the
// offloadability linter that turns those facts into structured diagnostics
// for SmartNIC-hostile constructs (paper §3: a legacy NF is analyzed
// statically, before porting).
//
// Downstream consumers: core.Clara attaches lint diagnostics to every
// Insights report, cmd/clara exposes them as a -lint mode, and
// internal/fleet aggregates per-job diagnostic counts into its Stats.
package analysis

import (
	"sort"

	"clara/internal/ir"
)

// CFG is the control-flow graph of one IR function, with the derived
// structures every analysis needs: predecessor lists, reverse postorder,
// and immediate dominators.
type CFG struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int

	// RPO is the reverse postorder of the blocks reachable from entry.
	RPO []int
	// rpoPos[b] is b's index in RPO, or -1 if b is unreachable.
	rpoPos []int
	// idom[b] is b's immediate dominator (-1 for the entry block and for
	// unreachable blocks).
	idom []int
}

// BuildCFG derives the CFG of f.
func BuildCFG(f *ir.Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		F:      f,
		Succs:  make([][]int, n),
		Preds:  make([][]int, n),
		rpoPos: make([]int, n),
		idom:   make([]int, n),
	}
	for _, b := range f.Blocks {
		c.Succs[b.Index] = b.Succs()
	}
	for b, ss := range c.Succs {
		for _, s := range ss {
			c.Preds[s] = append(c.Preds[s], b)
		}
	}
	// Postorder DFS from the entry block (iterative: the fuzzers feed
	// deeply nested sources whose CFGs would overflow a recursive walk).
	seen := make([]bool, n)
	type frame struct{ b, i int }
	var post []int
	if n > 0 {
		stack := []frame{{0, 0}}
		seen[0] = true
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.i < len(c.Succs[fr.b]) {
				s := c.Succs[fr.b][fr.i]
				fr.i++
				if !seen[s] {
					seen[s] = true
					stack = append(stack, frame{s, 0})
				}
				continue
			}
			post = append(post, fr.b)
			stack = stack[:len(stack)-1]
		}
	}
	c.RPO = make([]int, len(post))
	for i := range post {
		c.RPO[i] = post[len(post)-1-i]
	}
	for i := range c.rpoPos {
		c.rpoPos[i] = -1
	}
	for i, b := range c.RPO {
		c.rpoPos[b] = i
	}
	c.computeDominators()
	return c
}

// Reachable reports whether block b is reachable from the entry.
func (c *CFG) Reachable(b int) bool { return c.rpoPos[b] >= 0 }

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm
// over the reverse postorder.
func (c *CFG) computeDominators() {
	for i := range c.idom {
		c.idom[i] = -1
	}
	if len(c.RPO) == 0 {
		return
	}
	entry := c.RPO[0]
	c.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO[1:] {
			newIdom := -1
			for _, p := range c.Preds[b] {
				if c.idom[p] < 0 {
					continue // not yet processed or unreachable
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = c.intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && c.idom[b] != newIdom {
				c.idom[b] = newIdom
				changed = true
			}
		}
	}
	c.idom[entry] = -1 // conventional: the entry has no idom
}

func (c *CFG) intersect(a, b int) int {
	for a != b {
		for c.rpoPos[a] > c.rpoPos[b] {
			a = c.idom[a]
		}
		for c.rpoPos[b] > c.rpoPos[a] {
			b = c.idom[b]
		}
	}
	return a
}

// Idom returns b's immediate dominator, or -1.
func (c *CFG) Idom(b int) int { return c.idom[b] }

// Dominates reports whether block a dominates block b (every block
// dominates itself). Unreachable blocks dominate nothing.
func (c *CFG) Dominates(a, b int) bool {
	if !c.Reachable(a) || !c.Reachable(b) {
		return false
	}
	for b != a && b >= 0 {
		b = c.idom[b]
	}
	return b == a
}

// Edge is one CFG edge.
type Edge struct{ From, To int }

// Loop is a natural loop: the target of one or more back edges plus every
// block that can reach a back-edge source without passing through the
// header.
type Loop struct {
	// Head is the loop header (the unique entry, by reducibility).
	Head int
	// Blocks lists the loop body including the header, ascending.
	Blocks []int
	// Backs lists the back-edge source blocks.
	Backs []int
	// Exits lists the edges leaving the loop.
	Exits []Edge

	in []bool
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool { return b < len(l.in) && l.in[b] }

// NaturalLoops finds every natural loop, merging back edges that share a
// header, ordered by header index. Loops are detected through dominance
// (edge u→h with h dominating u); cycles in irreducible control flow —
// which the NFC lowerer never emits — are ignored.
func (c *CFG) NaturalLoops() []*Loop {
	byHead := map[int]*Loop{}
	n := len(c.F.Blocks)
	for _, u := range c.RPO {
		for _, h := range c.Succs[u] {
			if !c.Dominates(h, u) {
				continue
			}
			l := byHead[h]
			if l == nil {
				l = &Loop{Head: h, in: make([]bool, n)}
				l.in[h] = true
				byHead[h] = l
			}
			l.Backs = append(l.Backs, u)
			// Walk predecessors backward from the back-edge source until
			// the header.
			stack := []int{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.in[b] {
					continue
				}
				l.in[b] = true
				for _, p := range c.Preds[b] {
					if c.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	heads := make([]int, 0, len(byHead))
	for h := range byHead {
		heads = append(heads, h)
	}
	sort.Ints(heads)
	loops := make([]*Loop, 0, len(heads))
	for _, h := range heads {
		l := byHead[h]
		for b := 0; b < n; b++ {
			if !l.in[b] {
				continue
			}
			l.Blocks = append(l.Blocks, b)
			for _, s := range c.Succs[b] {
				if !l.in[s] {
					l.Exits = append(l.Exits, Edge{From: b, To: s})
				}
			}
		}
		loops = append(loops, l)
	}
	return loops
}

// Preheaders returns the loop-entry predecessors of the header (the blocks
// that enter the loop from outside).
func (c *CFG) Preheaders(l *Loop) []int {
	var out []int
	for _, p := range c.Preds[l.Head] {
		if !l.Contains(p) && c.Reachable(p) {
			out = append(out, p)
		}
	}
	return out
}
