// Colocation planner: given four NFs and one SmartNIC, measure every
// pairing and report which two NFs share the NIC most gracefully (§4.5).
package main

import (
	"fmt"
	"log"

	"clara"
)

func main() {
	params := clara.DefaultParams()
	wl := clara.MediumMix
	names := []string{"mazunat", "dnsproxy", "udpcount", "dpi"}

	// Exclusive-use baselines.
	solo := map[string]clara.Result{}
	nfs := map[string]*clara.NF{}
	for _, n := range names {
		e := clara.GetElement(n)
		mod, err := e.Module()
		if err != nil {
			log.Fatal(err)
		}
		nf := &clara.NF{Name: n, Mod: mod, Setup: e.Setup, LPMTable: e.Routes}
		nfs[n] = nf
		r, err := clara.Simulate(params, nf, wl, 2500, 24)
		if err != nil {
			log.Fatal(err)
		}
		solo[n] = r
		fmt.Printf("solo %-9s %.2f Mpps  %.2f us (24 cores)\n", n, r.ThroughputMpps, r.AvgLatencyUs)
	}

	fmt.Println("\npairwise colocation (24+24 cores, shared memory system):")
	type outcome struct {
		pair string
		norm float64
	}
	var best outcome
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := names[i], names[j]
			rs, err := clara.SimulatePair(params, nfs[a], nfs[b], wl, 2500, 24)
			if err != nil {
				log.Fatal(err)
			}
			norm := (rs[0].ThroughputMpps + rs[1].ThroughputMpps) /
				(solo[a].ThroughputMpps + solo[b].ThroughputMpps)
			fmt.Printf("  %-9s + %-9s  normalized throughput %.3f\n", a, b, norm)
			if norm > best.norm {
				best = outcome{a + " + " + b, norm}
			}
		}
	}
	fmt.Printf("\nfriendliest colocation: %s (keeps %.1f%% of exclusive throughput)\n",
		best.pair, 100*best.norm)
}
