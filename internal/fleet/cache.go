package fleet

import (
	"sync"

	"clara/internal/core"
	"clara/internal/ir"
	"clara/internal/niccc"
)

// predKey identifies one memoized prediction: the module's identity plus
// the accelerator configuration the prediction assumed. Module identity
// is the *ir.Module pointer — modules are immutable after lowering, and
// the element library hands out one cached module per element (see
// click.Element.Module), so pointer identity is exactly "same NF".
type predKey struct {
	mod   *ir.Module
	accel niccc.AccelConfig
}

// predEntry is one cache slot. The first requester owns the computation;
// later requesters block on ready. Keeping the slot in the map while the
// leader computes gives singleflight semantics: N workers analyzing the
// same module under N workloads run PredictModule exactly once.
type predEntry struct {
	ready chan struct{} // closed when mp/err are set
	mp    *core.ModulePrediction
	err   error
}

// predCache memoizes PredictModule results. Failed computations are not
// retained, so a transient failure does not poison the key.
type predCache struct {
	mu sync.Mutex
	m  map[predKey]*predEntry
}

func newPredCache() *predCache {
	return &predCache{m: make(map[predKey]*predEntry)}
}

// get returns the cached prediction for (mod, accel), computing it via
// compute on first request. hit reports whether this caller skipped the
// computation (found a completed or in-flight entry).
func (c *predCache) get(mod *ir.Module, accel niccc.AccelConfig, compute func() (*core.ModulePrediction, error)) (mp *core.ModulePrediction, hit bool, err error) {
	k := predKey{mod: mod, accel: accel}
	c.mu.Lock()
	if e, ok := c.m[k]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.mp, true, e.err
	}
	e := &predEntry{ready: make(chan struct{})}
	c.m[k] = e
	c.mu.Unlock()

	e.mp, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		delete(c.m, k)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.mp, false, e.err
}

// len reports the number of resident entries (completed or in flight).
func (c *predCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
