package core

import (
	"context"
	"fmt"
	"math"

	"clara/internal/ir"
	"clara/internal/lang"
	"clara/internal/ml"
	"clara/internal/niccc"
	"clara/internal/nicsim"
	"clara/internal/par"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// This file implements multicore scale-out analysis (§4.2). Following the
// TVM-inspired recipe, Clara synthesizes training programs spanning a wide
// range of arithmetic intensities, deploys them to the (simulated) NIC
// under different "schedules" (core counts) and workloads, and fits a GBDT
// regressor from static + workload features to the measured knee.

// ScaleoutConfig controls training.
type ScaleoutConfig struct {
	TrainPrograms   int
	PacketsPerTrace int
	CoreGrid        []int
	Workloads       []traffic.Spec
	Params          nicsim.Params
	Seed            int64
	// Workers bounds the goroutines measuring training programs
	// (0 = GOMAXPROCS). Dataset contents are identical for any value.
	Workers int
}

func (c ScaleoutConfig) norm() ScaleoutConfig {
	if c.TrainPrograms == 0 {
		c.TrainPrograms = 48
	}
	if c.PacketsPerTrace == 0 {
		c.PacketsPerTrace = 1500
	}
	if len(c.CoreGrid) == 0 {
		c.CoreGrid = nicsim.DefaultCoreSweep
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []traffic.Spec{traffic.LargeFlows, traffic.SmallFlows}
	}
	if c.Params.NumCores == 0 {
		c.Params = nicsim.DefaultParams()
	}
	return c
}

// ScaleoutFeatures builds the model input for one (NF, workload): the
// predicted compute/memory parameters from §3, the host access profile,
// state footprint, and the workload spec.
func ScaleoutFeatures(pred *ModulePrediction, prof *HostProfile, wl traffic.Spec, stateBytes int) []float64 {
	var accessesPerPkt float64
	for _, f := range prof.GlobalFreq {
		accessesPerPkt += f
	}
	compute := pred.TotalCompute + float64(pred.TotalAPI)
	mem := float64(pred.TotalMem)
	ai := compute / (accessesPerPkt + 1)
	return []float64{
		compute,
		mem,
		accessesPerPkt,
		ai,
		math.Log2(float64(stateBytes) + 1),
		math.Log2(float64(wl.NumFlows) + 1),
		float64(wl.PktSize) / 64,
	}
}

// ScaleoutSample is one training observation.
type ScaleoutSample struct {
	Features []float64
	Optimal  int // knee core count measured by sweeping
}

// ScaleoutModel predicts near-optimal core counts.
type ScaleoutModel struct {
	cfg  ScaleoutConfig
	gbdt *ml.GBDT
	// Train is the training set, retained so the evaluation can fit
	// baseline models (kNN/DNN/AutoML) on identical data (§5.4).
	Train []ScaleoutSample
}

// BuildScaleoutDataset measures knee core counts for synthesized programs
// across workloads.
func BuildScaleoutDataset(cfg ScaleoutConfig, pred *Predictor) ([]ScaleoutSample, error) {
	return BuildScaleoutDatasetContext(context.Background(), cfg, pred)
}

// BuildScaleoutDatasetContext is BuildScaleoutDataset with cancellation,
// checked once per training program (each program is a bounded
// profile-and-sweep unit of a few milliseconds). Programs are generated,
// profiled, and swept in parallel; each is derived from a per-index seed
// and lands in its index's slot, so the dataset is identical — in content
// and order — for any worker count.
func BuildScaleoutDatasetContext(ctx context.Context, cfg ScaleoutConfig, pred *Predictor) ([]ScaleoutSample, error) {
	cfg = cfg.norm()
	perProg := make([][]ScaleoutSample, cfg.TrainPrograms)
	err := par.ForErr(ctx, cfg.Workers, cfg.TrainPrograms, func(i int) error {
		// Span arithmetic intensities: bias state and compute rates.
		bias := synth.Config{
			Profile:     synth.UniformProfile(),
			Seed:        cfg.Seed + int64(i)*13,
			StateBias:   0.25 + 4*float64(i%5)/4,
			ComputeBias: 0.5 + 2*float64(i%3)/2,
		}
		mod, _, err := synth.GenerateModule(bias, lang.Compile)
		if err != nil {
			return err
		}
		samples, err := MeasureScaleout(mod, ProfileSetup{}, cfg, pred)
		if err != nil {
			return err
		}
		perProg[i] = samples
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []ScaleoutSample
	for _, s := range perProg {
		out = append(out, s...)
	}
	return out, nil
}

// MeasureScaleout sweeps core counts for one module under the configured
// workloads, returning one sample per workload.
func MeasureScaleout(mod *ir.Module, ps ProfileSetup, cfg ScaleoutConfig, pred *Predictor) ([]ScaleoutSample, error) {
	cfg = cfg.norm()
	mp, err := pred.PredictModule(mod, niccc.AccelConfig{})
	if err != nil {
		return nil, err
	}
	stateBytes := 0
	for _, g := range mod.Globals {
		stateBytes += g.SizeBytes()
	}
	var out []ScaleoutSample
	for _, wl := range cfg.Workloads {
		prof, err := ProfileOnHost(mod, ps, wl, cfg.PacketsPerTrace/2)
		if err != nil {
			return nil, err
		}
		nf := &nicsim.NF{Name: mod.Name, Mod: mod, LPMTable: ps.LPMTable, Seed: ps.Seed}
		if ps.Setup != nil {
			nf.Setup = ps.Setup
		}
		built, err := nf.Build(cfg.Params)
		if err != nil {
			return nil, err
		}
		ts, err := nicsim.GenTraces(built, wl, cfg.PacketsPerTrace, cfg.Params)
		if err != nil {
			return nil, err
		}
		rs, err := nicsim.SweepCores(cfg.Params, ts, cfg.CoreGrid)
		if err != nil {
			return nil, err
		}
		out = append(out, ScaleoutSample{
			Features: ScaleoutFeatures(mp, prof, wl, stateBytes),
			Optimal:  nicsim.KneeCores(rs),
		})
	}
	return out, nil
}

// TrainScaleout builds the dataset and fits the GBDT cost model.
func TrainScaleout(cfg ScaleoutConfig, pred *Predictor) (*ScaleoutModel, error) {
	return TrainScaleoutContext(context.Background(), cfg, pred)
}

// TrainScaleoutContext is TrainScaleout with cancellation (threaded
// through dataset construction, the dominant cost).
func TrainScaleoutContext(ctx context.Context, cfg ScaleoutConfig, pred *Predictor) (*ScaleoutModel, error) {
	cfg = cfg.norm()
	data, err := BuildScaleoutDatasetContext(ctx, cfg, pred)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("core: scale-out training set too small (%d)", len(data))
	}
	X := make([][]float64, len(data))
	y := make([]float64, len(data))
	for i, s := range data {
		X[i] = s.Features
		y[i] = float64(s.Optimal)
	}
	g := ml.FitGBDT(X, y, ml.GBDTConfig{Trees: 120, MaxDepth: 4, LR: 0.08, Seed: cfg.Seed})
	return &ScaleoutModel{cfg: cfg, gbdt: g, Train: data}, nil
}

// Suggest predicts the core count for an NF and workload from its features.
func (sm *ScaleoutModel) Suggest(features []float64) int {
	v := sm.gbdt.Predict(features)
	c := int(math.Round(v))
	if c < 1 {
		c = 1
	}
	if c > sm.cfg.Params.NumCores {
		c = sm.cfg.Params.NumCores
	}
	return c
}

// SuggestForNF runs the full pipeline for a concrete NF: predict (§3),
// profile on the host, featurize, and query the cost model. accel reflects
// the porting decisions already applied to the NF.
func (sm *ScaleoutModel) SuggestForNF(mod *ir.Module, ps ProfileSetup, wl traffic.Spec, pred *Predictor, accel niccc.AccelConfig) (int, error) {
	mp, err := pred.PredictModule(mod, accel)
	if err != nil {
		return 0, err
	}
	prof, err := ProfileOnHost(mod, ps, wl, 600)
	if err != nil {
		return 0, err
	}
	stateBytes := 0
	for _, g := range mod.Globals {
		stateBytes += g.SizeBytes()
	}
	return sm.Suggest(ScaleoutFeatures(mp, prof, wl, stateBytes)), nil
}
