package core

import (
	"testing"

	"clara/internal/click"
	"clara/internal/isa"
	"clara/internal/nicsim"
	"clara/internal/traffic"
)

// TestStaticPlacementMatchesOracle checks the §4.3 ILP fed with
// statically estimated frequencies (analysis.ComputeStateProfile: trip
// counts × branch probabilities) against the dynamic-profile oracle: on
// every stateful library element, SuggestPlacementStatic must produce
// the same placement as profiling 800 medium-mix packets on the host.
func TestStaticPlacementMatchesOracle(t *testing.T) {
	params := nicsim.DefaultParams()
	for _, name := range click.Table2Order {
		e := click.Get(name)
		mod := e.MustModule()
		if len(mod.Globals) == 0 {
			continue
		}
		static, err := SuggestPlacementStatic(mod, params)
		if err != nil {
			t.Fatalf("%s: static placement: %v", name, err)
		}
		prof, err := ProfileOnHost(mod, ProfileSetup{Setup: e.Setup, LPMTable: e.Routes}, traffic.MediumMix, 800)
		if err != nil {
			t.Fatalf("%s: profiling: %v", name, err)
		}
		dynamic, err := SuggestPlacement(mod, prof, params)
		if err != nil {
			t.Fatalf("%s: dynamic placement: %v", name, err)
		}
		for g, r := range dynamic {
			if static[g] != r {
				t.Errorf("%s: %s placed %v statically but %v under the profiled oracle", name, g, static[g], r)
			}
		}
	}
}

// TestStaticPlacementBeatsUniform pins the element whose placement the
// static frequencies actually change: cmsketch's four count-min rows are
// each touched ~8× per packet by the hash loops while its scalars are
// touched once, so the frequency-weighted ILP promotes the last row into
// CLS and demotes the scalars to CTM — exactly what the dynamic profile
// concludes, and the opposite of what uniform frequencies pick.
func TestStaticPlacementBeatsUniform(t *testing.T) {
	params := nicsim.DefaultParams()
	mod := click.Get("cmsketch").MustModule()

	uniform := map[string]float64{}
	for _, g := range mod.Globals {
		uniform[g.Name] = 1
	}
	flat, err := placeWithFreq(mod, uniform, params)
	if err != nil {
		t.Fatal(err)
	}
	static, err := SuggestPlacementStatic(mod, params)
	if err != nil {
		t.Fatal(err)
	}

	changed := 0
	for g := range static {
		if static[g] != flat[g] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("static frequencies left the uniform placement unchanged; the weights are not reaching the ILP")
	}
	// The loop-heavy sketch row belongs in the fastest tier; the
	// once-per-packet scalars don't.
	if static["cms_row3"] != isa.CLS {
		t.Errorf("cms_row3 (8 accesses/packet) placed in %v, want CLS", static["cms_row3"])
	}
	if static["cms_total"] != isa.CTM || static["cms_heavy"] != isa.CTM {
		t.Errorf("scalars placed in %v/%v, want CTM both", static["cms_total"], static["cms_heavy"])
	}
}
