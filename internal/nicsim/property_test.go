package nicsim

import (
	"testing"

	"clara/internal/lang"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// TestSimulationInvariantsOnSynthCorpus replays random NFs and checks
// physical invariants of the simulator:
//
//  1. throughput never exceeds the ingress ceiling;
//  2. average latency never drops below the fixed wire overhead;
//  3. adding cores never reduces throughput by more than measurement noise;
//  4. results are finite and positive.
func TestSimulationInvariantsOnSynthCorpus(t *testing.T) {
	params := DefaultParams()
	for seed := int64(300); seed < 312; seed++ {
		mod, src, err := synth.GenerateModule(synth.Config{
			Profile: synth.UniformProfile(), Seed: seed, StateBias: 1.5,
		}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		nf := &NF{Name: mod.Name, Mod: mod}
		b, err := nf.Build(params)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		ts, err := GenTraces(b, traffic.MediumMix, 1200, params)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r1, err := Simulate(params, 1, ts)
		if err != nil {
			t.Fatal(err)
		}
		r8, err := Simulate(params, 8, ts)
		if err != nil {
			t.Fatal(err)
		}
		r60, err := Simulate(params, 60, ts)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []Result{r1, r8, r60} {
			if r.ThroughputMpps <= 0 || r.AvgLatencyUs <= 0 {
				t.Fatalf("seed %d: degenerate result %+v", seed, r)
			}
			if r.ThroughputMpps > params.IngressMpps*1.02 {
				t.Fatalf("seed %d: throughput %f exceeds ingress ceiling", seed, r.ThroughputMpps)
			}
			floor := float64(params.WireOverheadCycles) / (params.CoreGHz * 1e3)
			if r.AvgLatencyUs < floor {
				t.Fatalf("seed %d: latency %f below the wire floor %f", seed, r.AvgLatencyUs, floor)
			}
			if r.MaxLatencyUs < r.AvgLatencyUs {
				t.Fatalf("seed %d: max < avg latency", seed)
			}
		}
		if r8.ThroughputMpps < r1.ThroughputMpps*0.95 {
			t.Fatalf("seed %d: throughput fell with more cores: %f -> %f",
				seed, r1.ThroughputMpps, r8.ThroughputMpps)
		}
		if r60.ThroughputMpps < r8.ThroughputMpps*0.9 {
			t.Fatalf("seed %d: throughput collapsed at 60 cores: %f -> %f",
				seed, r8.ThroughputMpps, r60.ThroughputMpps)
		}
	}
}

// TestColocationConservation: colocating two NFs can only hurt each of
// them relative to exclusive use of the same cores, and the shares still
// respect the ingress ceiling.
func TestColocationConservation(t *testing.T) {
	params := DefaultParams()
	var sets []*TraceSet
	for seed := int64(400); seed < 402; seed++ {
		mod, _, err := synth.GenerateModule(synth.Config{
			Profile: synth.UniformProfile(), Seed: seed, StateBias: 2.5,
		}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (&NF{Name: mod.Name, Mod: mod}).Build(params)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := GenTraces(b, traffic.MediumMix, 1500, params)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, ts)
	}
	soloA, err := Simulate(params, 24, sets[0])
	if err != nil {
		t.Fatal(err)
	}
	soloB, err := Simulate(params, 24, sets[1])
	if err != nil {
		t.Fatal(err)
	}
	co, err := SimulateColocation(params, []Part{{sets[0], 24}, {sets[1], 24}})
	if err != nil {
		t.Fatal(err)
	}
	for i, solo := range []Result{soloA, soloB} {
		bound := solo.ThroughputMpps
		if co[i].ThroughputMpps > bound*1.05 {
			t.Errorf("part %d: colocated %f exceeds solo bound %f", i, co[i].ThroughputMpps, bound)
		}
		if co[i].AvgLatencyUs < solo.AvgLatencyUs*0.9 {
			t.Errorf("part %d: colocated latency %f below solo %f", i, co[i].AvgLatencyUs, solo.AvgLatencyUs)
		}
	}
}

// TestTraceReplayIndependentOfSweepOrder: sweeping core counts must not
// mutate the trace (replays are pure).
func TestTraceReplayIndependentOfSweepOrder(t *testing.T) {
	params := DefaultParams()
	mod, _, err := synth.GenerateModule(synth.Config{
		Profile: synth.UniformProfile(), Seed: 555, StateBias: 2,
	}, lang.Compile)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&NF{Name: mod.Name, Mod: mod}).Build(params)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := GenTraces(b, traffic.MediumMix, 1000, params)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Simulate(params, 16, ts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepCores(params, ts, []int{1, 60, 8, 32}); err != nil {
		t.Fatal(err)
	}
	again, err := Simulate(params, 16, ts)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Errorf("replay mutated the trace: %+v vs %+v", first, again)
	}
}
