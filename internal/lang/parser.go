package lang

import (
	"fmt"

	"clara/internal/ir"
)

// Parser is a recursive-descent parser for NFC.
type Parser struct {
	lx   *Lexer
	tok  Token
	peek Token
	has2 bool
	name string
}

// Parse parses a full NFC element source into a File.
func Parse(name, src string) (*File, error) {
	p := &Parser{lx: NewLexer(src), name: name}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{Name: name}
	for p.tok.Kind != TEOF {
		switch {
		case p.isKw("global") || p.isKw("map") || p.isKw("vec"):
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
		case p.isKw("void") || p.isType():
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, p.errf("expected declaration, got %q", p.tok)
		}
	}
	return f, nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.name, p.tok.Line, fmt.Sprintf(format, args...))
}

func (p *Parser) advance() error {
	if p.has2 {
		p.tok = p.peek
		p.has2 = false
		return nil
	}
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peekTok() Token {
	if !p.has2 {
		t, err := p.lx.Next()
		if err != nil {
			// Surface the error at the next advance; return EOF here.
			t = Token{Kind: TEOF}
		}
		p.peek = t
		p.has2 = true
	}
	return p.peek
}

func (p *Parser) isKw(k string) bool { return p.tok.Kind == TKeyword && p.tok.Text == k }

func (p *Parser) isPunct(s string) bool { return p.tok.Kind == TPunct && p.tok.Text == s }

func (p *Parser) isType() bool {
	if p.tok.Kind != TKeyword {
		return false
	}
	switch p.tok.Text {
	case "u8", "u16", "u32", "u64", "bool":
		return true
	}
	return false
}

func (p *Parser) typeOf(t Token) ir.Type {
	switch t.Text {
	case "u8":
		return ir.U8
	case "u16":
		return ir.U16
	case "u32":
		return ir.U32
	case "u64":
		return ir.U64
	case "bool":
		return ir.Bool
	}
	return ir.Void
}

func (p *Parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, got %q", s, p.tok)
	}
	return p.advance()
}

func (p *Parser) expectIdent() (Token, error) {
	if p.tok.Kind != TIdent {
		return Token{}, p.errf("expected identifier, got %q", p.tok)
	}
	t := p.tok
	return t, p.advance()
}

func (p *Parser) expectInt() (uint64, error) {
	if p.tok.Kind != TInt {
		return 0, p.errf("expected integer, got %q", p.tok)
	}
	v := p.tok.Val
	return v, p.advance()
}

// parseGlobal parses:
//
//	global u32 name;            (scalar)
//	global u32 name[256];       (array)
//	map<u64,u64> name[4096];    (hash map)
//	vec<u64> name[256];         (vector)
func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	line, col := p.tok.Line, p.tok.Col
	if p.isKw("vec") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("<"); err != nil {
			return nil, err
		}
		if !p.isType() {
			return nil, p.errf("expected element type")
		}
		elem := p.typeOf(p.tok)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &GlobalDecl{Name: name.Text, Kind: ir.GVec, Elem: elem, Len: int(n), Line: line, Col: col}, nil
	}
	if p.isKw("map") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("<"); err != nil {
			return nil, err
		}
		if !p.isType() {
			return nil, p.errf("expected key type")
		}
		key := p.typeOf(p.tok)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if !p.isType() {
			return nil, p.errf("expected value type")
		}
		val := p.typeOf(p.tok)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &GlobalDecl{Name: name.Text, Kind: ir.GMap, Key: key, Elem: val, Len: int(n), Line: line, Col: col}, nil
	}

	// global <type> name ( [N] )? ;
	if err := p.advance(); err != nil { // consume 'global'
		return nil, err
	}
	if !p.isType() {
		return nil, p.errf("expected type after 'global'")
	}
	elem := p.typeOf(p.tok)
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name.Text, Kind: ir.GScalar, Elem: elem, Line: line, Col: col}
	if p.isPunct("[") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		g.Kind = ir.GArray
		g.Len = int(n)
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	line, col := p.tok.Line, p.tok.Col
	ret := ir.Void
	if p.isType() {
		ret = p.typeOf(p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []ir.Param
	for !p.isPunct(")") {
		if len(params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		if !p.isType() {
			return nil, p.errf("expected parameter type")
		}
		ty := p.typeOf(p.tok)
		if err := p.advance(); err != nil {
			return nil, err
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, ir.Param{Name: pn.Text, Ty: ty})
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Ret: ret, Body: body, Line: line, Col: col}, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.isPunct("}") {
		if p.tok.Kind == TEOF {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.List = append(b.List, s)
	}
	return b, p.advance()
}

func (p *Parser) parseStmt() (Stmt, error) {
	line, col := p.tok.Line, p.tok.Col
	switch {
	case p.isPunct("{"):
		return p.parseBlock()

	case p.isType():
		return p.parseVarDeclOrCast()

	case p.isKw("if"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: line, Col: col}
		if p.isKw("else") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isKw("if") {
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				st.Else = &BlockStmt{List: []Stmt{inner}}
			} else {
				st.Else, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return st, nil

	case p.isKw("while"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line, Col: col}, nil

	case p.isKw("for"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		st := &ForStmt{Line: line, Col: col}
		if !p.isPunct(";") {
			var err error
			if p.isType() {
				st.Init, err = p.parseVarDeclOrCast()
				if err != nil {
					return nil, err
				}
			} else {
				st.Init, err = p.parseSimpleStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(";"); err != nil {
					return nil, err
				}
			}
		} else if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isPunct(";") {
			var err error
			st.Cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			var err error
			st.Post, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil

	case p.isKw("return"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		st := &ReturnStmt{Line: line, Col: col}
		if !p.isPunct(";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		return st, p.expectPunct(";")

	case p.isKw("break"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line, Col: col}, p.expectPunct(";")

	case p.isKw("continue"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line, Col: col}, p.expectPunct(";")

	default:
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return st, p.expectPunct(";")
	}
}

// parseVarDeclOrCast parses a statement that begins with a type keyword.
// That is always a variable declaration at statement position ("u32 x = ..;").
func (p *Parser) parseVarDeclOrCast() (Stmt, error) {
	line, col := p.tok.Line, p.tok.Col
	ty := p.typeOf(p.tok)
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name.Text, Ty: ty, Line: line, Col: col}
	if p.isPunct("=") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return d, p.expectPunct(";")
}

// parseSimpleStmt parses an assignment or expression statement, without the
// trailing semicolon (for-loop posts reuse it).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	line, col := p.tok.Line, p.tok.Col
	if p.tok.Kind == TIdent {
		// Look ahead: ident (= | op=) → assignment to scalar; ident [ ... ] (=|op=)
		// → array element; otherwise an expression statement.
		nxt := p.peekTok()
		if nxt.Kind == TPunct {
			switch nxt.Text {
			case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
				name := p.tok.Text
				if err := p.advance(); err != nil {
					return nil, err
				}
				op := p.tok.Text
				if err := p.advance(); err != nil {
					return nil, err
				}
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				as := &AssignStmt{Target: &LValue{Name: name, Line: line, Col: col}, Value: v, Line: line, Col: col}
				if op != "=" {
					as.Op = op[:len(op)-1]
				}
				return as, nil
			case "[":
				// Could be an indexed assignment or an indexed read inside a
				// larger expression statement; NFC expression statements are
				// calls only, so '[' after ident at statement position is an
				// indexed assignment.
				name := p.tok.Text
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.advance(); err != nil { // consume '['
					return nil, err
				}
				idx, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				op := p.tok.Text
				switch op {
				case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
				default:
					return nil, p.errf("expected assignment operator, got %q", p.tok)
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				as := &AssignStmt{Target: &LValue{Name: name, Index: idx, Line: line, Col: col}, Value: v, Line: line, Col: col}
				if op != "=" {
					as.Op = op[:len(op)-1]
				}
				return as, nil
			}
		}
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Line: line, Col: col}, nil
}

// Binary operator precedence (higher binds tighter).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.Kind != TPunct {
			return x, nil
		}
		prec, ok := binPrec[p.tok.Text]
		if !ok || prec < minPrec {
			return x, nil
		}
		op := p.tok.Text
		line, col := p.tok.Line, p.tok.Col
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y, Line: line, Col: col}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TPunct {
		switch p.tok.Text {
		case "!", "~", "-":
			op := p.tok.Text
			line, col := p.tok.Line, p.tok.Col
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: op, X: x, Line: line, Col: col}, nil
		}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	line, col := p.tok.Line, p.tok.Col
	switch {
	case p.tok.Kind == TInt:
		v := p.tok.Val
		return &IntLit{Val: v, Line: line, Col: col}, p.advance()

	case p.isKw("true"):
		return &BoolLit{Val: true, Line: line, Col: col}, p.advance()

	case p.isKw("false"):
		return &BoolLit{Val: false, Line: line, Col: col}, p.advance()

	case p.isType():
		ty := p.typeOf(p.tok)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &CastExpr{Ty: ty, X: x, Line: line, Col: col}, nil

	case p.tok.Kind == TIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.isPunct("("):
			if err := p.advance(); err != nil {
				return nil, err
			}
			c := &CallExpr{Name: name, Line: line, Col: col}
			for !p.isPunct(")") {
				if len(c.Args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
			}
			return c, p.advance()
		case p.isPunct("["):
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: name, Index: idx, Line: line, Col: col}, nil
		default:
			return &Ident{Name: name, Line: line, Col: col}, nil
		}

	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expectPunct(")")
	}
	return nil, p.errf("unexpected token %q in expression", p.tok)
}
