package ml

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"clara/internal/ml/vek"
)

// Batched inference. The per-block path walks one sequence at a time, so
// every timestep costs one 28×112 GemvTAdd. PredictRawBatch instead packs
// the hidden states of every in-flight sequence into a matrix and runs
// the recurrent step as a single Gemm per timestep *wavefront*: sequences
// are sorted by length descending, so at step t the first `act` rows are
// exactly the sequences still alive and the Gemm shrinks as short
// sequences retire. Identical token sequences are deduplicated first —
// the forward pass is a pure function of the tokens, so duplicates (44%
// of the element library's blocks share a sequence with an earlier block)
// are computed once and fanned back out.
//
// Determinism: results are bit-identical to the per-sequence path. At
// t=0 the hidden state is all-zero and the recurrent Gemm is skipped
// outright, mirroring GemvTAdd's zero-row skip. At t>0 Gemm accumulates
// the same products in the same k-ascending order GemvTAdd does; the
// only divergence would be a hidden unit that is *exactly* 0.0 after a
// step (GemvTAdd skips it, Gemm adds a signed zero), which cannot change
// any finite sum except an exact -0 accumulator. The library-wide
// bit-identity test pins this in practice.

// lstmBatchScratch carries the reusable buffers one PredictRawBatch call
// needs; pooled like lstmScratch so concurrent callers don't contend.
type lstmBatchScratch struct {
	ar   vek.Arena
	ai8  vek.ArenaI8
	ai32 vek.ArenaI32
	key  []byte
	idx  map[string]int
	uniq []int // unique sequence slots, as indices into the caller's seqs
}

var lstmBatchScratchPool = sync.Pool{New: func() any {
	return &lstmBatchScratch{idx: make(map[string]int)}
}}

func takeBatchScratch() *lstmBatchScratch {
	return lstmBatchScratchPool.Get().(*lstmBatchScratch)
}

func (sc *lstmBatchScratch) release() {
	clear(sc.idx)
	sc.uniq = sc.uniq[:0]
	sc.ar.Reset()
	sc.ai8.Reset()
	sc.ai32.Reset()
	lstmBatchScratchPool.Put(sc)
}

// batchPlan is the shared pre-pass for batched inference: deduplicated
// unique sequences sorted by length descending so each timestep's live
// set is a prefix (the wavefront).
type batchPlan struct {
	assign []int // input i -> unique slot, -1 for empty
	order  []int // sorted row r -> unique slot
	rank   []int // unique slot -> sorted row
	uniq   []int // unique slot -> first input index
	maxT   int
}

// row returns the input index computing sorted row r.
func (pl *batchPlan) row(seqs [][]int, r int) []int { return seqs[pl.uniq[pl.order[r]]] }

func planBatch(sc *lstmBatchScratch, seqs [][]int) batchPlan {
	// Deduplicate: assign[i] is the unique slot computing seqs[i], or -1
	// for an empty sequence.
	assign := make([]int, len(seqs))
	for i, seq := range seqs {
		if len(seq) == 0 {
			assign[i] = -1
			continue
		}
		sc.key = sc.key[:0]
		for _, tok := range seq {
			sc.key = binary.LittleEndian.AppendUint32(sc.key, uint32(tok))
		}
		if u, ok := sc.idx[string(sc.key)]; ok {
			assign[i] = u
			continue
		}
		u := len(sc.uniq)
		sc.idx[string(sc.key)] = u
		sc.uniq = append(sc.uniq, i)
		assign[i] = u
	}
	Bu := len(sc.uniq)
	pl := batchPlan{assign: assign, uniq: sc.uniq}
	if Bu == 0 {
		return pl
	}
	// Sort unique slots by length descending (stable, so order is a
	// function of the input alone).
	pl.order = make([]int, Bu)
	for i := range pl.order {
		pl.order[i] = i
	}
	sort.SliceStable(pl.order, func(a, b int) bool {
		return len(seqs[sc.uniq[pl.order[a]]]) > len(seqs[sc.uniq[pl.order[b]]])
	})
	pl.rank = make([]int, Bu)
	for r, u := range pl.order {
		pl.rank[u] = r
	}
	pl.maxT = len(pl.row(seqs, 0))
	return pl
}

// PredictRawBatch returns PredictRaw(seqs[i]) for every i, computed as
// one wavefront of Gemm calls over the deduplicated batch. Outputs are
// freshly allocated per entry (duplicates get copies, so callers may
// mutate results independently).
func (m *LSTM) PredictRawBatch(seqs [][]int) [][]float64 {
	H, D := m.cfg.Hidden, m.cfg.Out
	out := make([][]float64, len(seqs))
	sc := takeBatchScratch()
	defer sc.release()

	pl := planBatch(sc, seqs)
	Bu := len(sc.uniq)
	if Bu == 0 {
		for i := range out {
			out[i] = make([]float64, D)
		}
		return out
	}

	p := m.params
	bias := p[m.oB : m.oB+4*H]
	wh := p[m.oWh:m.oB]
	hs := sc.ar.Take(Bu * H)
	cs := sc.ar.Take(Bu * H)
	zs := sc.ar.Take(Bu * 4 * H)
	act := Bu
	for t := 0; t < pl.maxT; t++ {
		for act > 0 && len(pl.row(seqs, act-1)) <= t {
			act--
		}
		for b := 0; b < act; b++ {
			tok := pl.row(seqs, b)[t]
			z := zs[b*4*H : (b+1)*4*H]
			copy(z, p[m.oWx+tok*4*H:m.oWx+(tok+1)*4*H])
			vek.Add(bias, z)
		}
		if t > 0 {
			// h0 = 0, so the t=0 recurrent term vanishes — skipping it
			// matches GemvTAdd's zero-skip bit-for-bit.
			vek.Gemm(zs, hs, wh, act, 4*H, H)
		}
		for b := 0; b < act; b++ {
			z := zs[b*4*H : (b+1)*4*H]
			h := hs[b*H : (b+1)*H]
			c := cs[b*H : (b+1)*H]
			for j := 0; j < H; j++ {
				ij := sigmoid(z[j])
				fj := sigmoid(z[H+j])
				gj := math.Tanh(z[2*H+j])
				oj := sigmoid(z[3*H+j])
				cj := fj*c[j] + ij*gj
				c[j] = cj
				h[j] = oj * math.Tanh(cj)
			}
		}
	}

	// Read-out for every unique sequence in one Gemm: rows of hs hold
	// each sequence's final hidden state (rows stop being touched once
	// their sequence retires). Y = bo + H·Wo accumulates over j in the
	// same ascending order as the scalar read-out loop.
	ys := sc.ar.Take(Bu * D)
	for b := 0; b < Bu; b++ {
		copy(ys[b*D:(b+1)*D], p[m.oBo:m.oBo+D])
	}
	vek.Gemm(ys, hs, p[m.oWo:m.oBo], Bu, D, H)

	for i := range seqs {
		o := make([]float64, D)
		if u := pl.assign[i]; u >= 0 {
			row := ys[pl.rank[u]*D : (pl.rank[u]+1)*D]
			for d := 0; d < D; d++ {
				o[d] = row[d] * m.cfg.TargetScale
			}
		}
		out[i] = o
	}
	return out
}

// PredictBatch is PredictRawBatch with the nonnegative clamp Predict
// applies (instruction counts).
func (m *LSTM) PredictBatch(seqs [][]int) [][]float64 {
	outs := m.PredictRawBatch(seqs)
	for _, o := range outs {
		for d := range o {
			if o[d] < 0 {
				o[d] = 0
			}
		}
	}
	return outs
}

// LSTMPredictBatch is the package-level spelling of (*LSTM).PredictBatch.
func LSTMPredictBatch(m *LSTM, seqs [][]int) [][]float64 {
	return m.PredictBatch(seqs)
}
