package ml

import (
	"math"
	"testing"
)

// The minibatch trainers promise bit-determinism across worker counts:
// per-slot gradient buffers reduced in slot order make the float
// summation tree a function of (seed, batch) only. These tests pin that
// contract — they compare raw bits, not tolerances.

func TestLSTMParallelDeterminism(t *testing.T) {
	samples := seqData(48, 10, 5)
	base := LSTMConfig{Vocab: 10, Hidden: 16, Epochs: 3, Seed: 11, Batch: 8, Workers: 1}
	m1, l1 := TrainLSTM(samples, base)
	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.Workers = workers
		mN, lN := TrainLSTM(samples, cfg)
		if len(m1.params) != len(mN.params) {
			t.Fatalf("param count differs: %d vs %d", len(m1.params), len(mN.params))
		}
		for i := range m1.params {
			if math.Float64bits(m1.params[i]) != math.Float64bits(mN.params[i]) {
				t.Fatalf("workers=1 vs workers=%d: params[%d] differ: %v vs %v",
					workers, i, m1.params[i], mN.params[i])
			}
		}
		if math.Float64bits(l1) != math.Float64bits(lN) {
			t.Fatalf("workers=1 vs workers=%d: loss differs: %v vs %v", workers, l1, lN)
		}
	}
}

func TestLSTMBatchOneMatchesDefault(t *testing.T) {
	// Batch 0 (legacy default) and Batch 1 are the same training schedule.
	samples := seqData(32, 8, 3)
	m0, _ := TrainLSTM(samples, LSTMConfig{Vocab: 8, Hidden: 12, Epochs: 2, Seed: 4})
	m1, _ := TrainLSTM(samples, LSTMConfig{Vocab: 8, Hidden: 12, Epochs: 2, Seed: 4, Batch: 1, Workers: 4})
	for i := range m0.params {
		if math.Float64bits(m0.params[i]) != math.Float64bits(m1.params[i]) {
			t.Fatalf("Batch=0 vs Batch=1: params[%d] differ: %v vs %v", i, m0.params[i], m1.params[i])
		}
	}
}

func TestMLPParallelDeterminism(t *testing.T) {
	X, yv := synthReg(96, 21)
	targets := make([][]float64, len(yv))
	for i, v := range yv {
		targets[i] = []float64{v}
	}
	base := MLPConfig{Layers: []int{3, 12, 1}, Epochs: 4, Seed: 9, Batch: 8, Workers: 1}
	m1, l1 := TrainMLP(X, targets, base)
	cfg := base
	cfg.Workers = 8
	m8, l8 := TrainMLP(X, targets, cfg)
	for l := range m1.W {
		for i := range m1.W[l] {
			if math.Float64bits(m1.W[l][i]) != math.Float64bits(m8.W[l][i]) {
				t.Fatalf("workers=1 vs 8: W[%d][%d] differ: %v vs %v", l, i, m1.W[l][i], m8.W[l][i])
			}
		}
	}
	if math.Float64bits(l1) != math.Float64bits(l8) {
		t.Fatalf("workers=1 vs 8: loss differs: %v vs %v", l1, l8)
	}
}

func TestLSTMBatchTrainingStillLearns(t *testing.T) {
	// Minibatch mode must still converge on the counting task, not just
	// be deterministic.
	samples := seqData(200, 12, 2)
	m, _ := TrainLSTM(samples, LSTMConfig{
		Vocab: 12, Hidden: 20, Epochs: 40, Seed: 1, Batch: 8, Workers: 4,
	})
	var absErr, absTgt float64
	for _, s := range samples {
		p := m.Predict(s.Tokens)
		absErr += math.Abs(p[0] - s.Target[0])
		absTgt += math.Abs(s.Target[0])
	}
	wmape := absErr / absTgt
	if wmape > 0.35 {
		t.Fatalf("minibatch LSTM WMAPE = %.3f, want <= 0.35", wmape)
	}
}
