package lang

import (
	"strings"
	"testing"
)

// fuzzSeeds are hand-picked parser entry points: valid programs, every
// declaration form, and known-tricky malformed fragments. The click
// element sources seed the end-to-end FuzzCompileNF target at the repo
// root (this package cannot import the element library).
var fuzzSeeds = []string{
	"",
	"void handle() { pkt_send(0); }",
	`global u32 c;
void handle() { c += 1; pkt_drop(); }`,
	`map<u64,u64> m[1024];
void handle() {
	u64 k = u64(pkt_ip_src());
	if (map_contains(m, k)) { map_insert(m, k, 1); }
	pkt_send(0);
}`,
	`global u64 tbl[256];
u64 f(u64 x) { return tbl[x & 255]; }
void handle() {
	for (u32 i = 0; i < 8; i += 1) { tbl[i] = f(u64(i)); }
	pkt_send(0);
}`,
	// Malformed fragments that historically stress parsers.
	"void handle( {",
	"global u32",
	"void handle() { u32 x = ((((1; }",
	"map<u64> m[0];",
	"void handle() { for (;;) {} }",
	"void handle() { x += ; }",
	"\x00\xff\xfe",
	"void handle() { pkt_send(0); } void handle() { pkt_drop(); }",
}

// FuzzParse feeds arbitrary source to the parser: any input must return
// a file or an error, never panic (malformed NFC reaching Clara's CLI is
// user input, not a library bug).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse("fuzz", src)
		if err == nil && file == nil {
			t.Errorf("Parse returned nil file without error for %q", src)
		}
	})
}

// FuzzCompile drives the full lexer→parser→lowering pipeline; lowering
// has its own invariants (SSA construction, type checks) that malformed
// but parseable programs can reach.
func FuzzCompile(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // pathological inputs time out lowering, not crash it
		}
		mod, err := Compile("fuzz", src)
		if err == nil && mod == nil {
			t.Errorf("Compile returned nil module without error for %q", src)
		}
		if err != nil && !strings.Contains(err.Error(), "fuzz") && err.Error() == "" {
			t.Errorf("empty error message for %q", src)
		}
	})
}
