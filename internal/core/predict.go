// Package core implements Clara itself: cross-platform instruction
// prediction (§3), and the porting-strategy analyses — algorithm
// identification, multicore scale-out, NF state placement, memory access
// coalescing, and NF colocation (§4).
//
// Everything here observes only what the paper's Clara can observe: the
// unported NF's IR, workload profiles gathered on the host, and black-box
// measurements of training programs on the (simulated) SmartNIC. The
// vendor compiler's internals (internal/niccc) are never inspected — they
// are only sampled through compiled training pairs.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"clara/internal/analysis"
	"clara/internal/ir"
	"clara/internal/lang"
	"clara/internal/ml"
	"clara/internal/niccc"
	"clara/internal/par"
	"clara/internal/stats"
	"clara/internal/synth"
)

// PredictorConfig controls training of the §3.2 LSTM+FC model.
type PredictorConfig struct {
	// TrainPrograms is the number of synthesized training programs.
	TrainPrograms int
	// Profile guides the synthesizer (zero value: measure the Click
	// library corpus).
	Profile *synth.Profile
	Hidden  int
	Epochs  int
	// CompactVocab applies the paper's vocabulary compaction; disabling it
	// is the ablation discussed in §6 ("applying LSTM without vocabulary
	// compaction shows much lower performance").
	CompactVocab bool
	// Ensemble averages this many independently-seeded LSTMs (1 = the
	// paper's single model; small ensembles reduce variance on blocks far
	// from the synthesized training distribution).
	Ensemble int
	// PredictAPI is the reverse-porting ablation (§3.3): instead of taking
	// framework library instruction counts from the reverse-ported code
	// (exact), the LSTM must predict them too.
	PredictAPI bool
	Seed       int64
	// Batch is the LSTM minibatch size (samples per optimizer step);
	// 0 picks the tuned default. Changing it changes training dynamics
	// (and therefore the exact trained weights), so it participates in
	// the model-bundle config hash.
	Batch int
	// Workers bounds the goroutines used for corpus synthesis,
	// compilation, and minibatch gradient sharding (0 = GOMAXPROCS).
	// Any value produces bit-identical models — it only trades wall
	// clock, so it is *not* part of the bundle config hash.
	Workers int
	// Quantize routes inference through the int8-quantized LSTM twins
	// (per-gate-row symmetric weights, int32 accumulate, table-driven
	// nonlinearities). Pure runtime knob like Workers: it never changes
	// the trained f32 weights, so it is cleared in bundles and omitted
	// from the config hash (the json tag keeps pre-quantization bundle
	// hashes valid).
	Quantize bool `json:",omitempty"`
	// Simplify runs the SCCP-based IR simplification
	// (analysis.SimplifyModule) on each module before prediction: constant
	// branches straighten, unreachable blocks drop, and the LSTM predicts
	// the code that would actually ship. Runtime knob like Quantize — it
	// never changes the trained weights, is cleared in bundles, and the
	// json tag keeps pre-existing bundle hashes valid. Note per-block
	// predictions then index the simplified module's blocks.
	Simplify bool `json:",omitempty"`
}

func (c PredictorConfig) norm() PredictorConfig {
	if c.TrainPrograms == 0 {
		c.TrainPrograms = 220
	}
	if c.Hidden == 0 {
		c.Hidden = 28
	}
	if c.Epochs == 0 {
		c.Epochs = 24
	}
	if c.Ensemble == 0 {
		c.Ensemble = 1
	}
	if c.Batch == 0 {
		c.Batch = 8
	}
	return c
}

// BlockSample pairs one basic block's word sequence with its NIC
// compilation ground truth.
type BlockSample struct {
	Words     []string
	Compute   int // NIC core compute instructions (excl. library bodies)
	APIInstrs int // library-routine instructions in the block (reverse-ported)
	Mem       int // NIC stateful memory instructions
	IRMem     int // memory accesses counted directly from the IR
	IRCompute int // compute instructions counted directly from the IR
}

// BlockCorpus extracts per-block samples from modules by compiling them
// with the vendor toolchain (accelerators off: training programs are naive
// ports, like the paper's). Modules compile in parallel; sample order is
// module order regardless of worker scheduling.
func BlockCorpus(mods []*ir.Module, compact bool) ([]BlockSample, error) {
	return blockCorpus(mods, compact, 0)
}

func blockCorpus(mods []*ir.Module, compact bool, workers int) ([]BlockSample, error) {
	perMod := make([][]BlockSample, len(mods))
	err := par.ForErr(context.Background(), workers, len(mods), func(i int) error {
		m := mods[i]
		prog, err := niccc.Compile(m, niccc.Options{})
		if err != nil {
			return err
		}
		f := m.Handler()
		samples := make([]BlockSample, 0, len(f.Blocks))
		for bi, b := range f.Blocks {
			irMem, irCompute, apiInstrs := 0, 0, 0
			for _, in := range b.Instrs {
				if in.Op.IsStatefulMem() {
					irMem++
				}
				if in.Op.IsCompute() || in.Op.IsTerminator() {
					irCompute++
				}
				if in.Op == ir.OpCall {
					if n, ok := niccc.APIInstrCount(in.Callee, niccc.AccelConfig{}); ok {
						apiInstrs += n
					}
				}
			}
			samples = append(samples, BlockSample{
				Words:     ir.BlockWords(b, compact),
				Compute:   prog.Blocks[bi].ComputeCount,
				APIInstrs: apiInstrs,
				Mem:       prog.Blocks[bi].MemCount,
				IRMem:     irMem,
				IRCompute: irCompute,
			})
		}
		perMod[i] = samples
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []BlockSample
	for _, s := range perMod {
		out = append(out, s...)
	}
	return out, nil
}

// SynthTrainingModules generates the synthesized training corpus (the data
// synthesis step of §3.2). Programs are independent — each is derived from
// seed+i — so they generate in parallel with the output in index order,
// identical to the serial corpus for any worker count.
func SynthTrainingModules(n int, prof synth.Profile, seed int64) ([]*ir.Module, error) {
	return synthTrainingModules(n, prof, seed, 0)
}

func synthTrainingModules(n int, prof synth.Profile, seed int64, workers int) ([]*ir.Module, error) {
	mods := make([]*ir.Module, n)
	err := par.ForErr(context.Background(), workers, n, func(i int) error {
		m, _, err := synth.GenerateModule(synth.Config{Profile: prof, Seed: seed + int64(i)}, lang.Compile)
		if err != nil {
			return err
		}
		mods[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mods, nil
}

// CorpusProfile measures the Click element corpus to guide synthesis.
func CorpusProfile(mods []*ir.Module) synth.Profile {
	return synth.ProfileFromModules(mods)
}

// Predictor is the trained cross-platform performance predictor.
type Predictor struct {
	cfg    PredictorConfig
	Vocab  *ir.Vocab
	models []*ml.LSTM
	// quants are the int8 inference twins, one per ensemble member.
	// Built once (at train time, bundle load, or first quantized use) —
	// quantization is deterministic, so every construction path yields
	// the same twins.
	quants    []*ml.QuantizedLSTM
	quantOnce sync.Once
	// TrainLoss is the final mean training loss (convergence telemetry).
	TrainLoss float64
}

// ensureQuant builds the quantized twins unless a loader already
// attached them (e.g. from persisted bundle state).
func (p *Predictor) ensureQuant() {
	p.quantOnce.Do(func() {
		if p.quants == nil {
			for _, m := range p.models {
				p.quants = append(p.quants, m.Quantize())
			}
		}
	})
}

// SetQuantize flips the int8 inference path at runtime (bundles clear
// the knob, so serving re-applies it after a warm start).
func (p *Predictor) SetQuantize(on bool) {
	if on {
		p.ensureQuant()
	}
	p.cfg.Quantize = on
}

// Quantized reports whether inference runs on the int8 path.
func (p *Predictor) Quantized() bool { return p.cfg.Quantize }

// TrainPredictor synthesizes a corpus, compiles it with the black-box
// toolchain, and fits the LSTM+FC model.
func TrainPredictor(cfg PredictorConfig, corpusProfile synth.Profile) (*Predictor, error) {
	return TrainPredictorContext(context.Background(), cfg, corpusProfile)
}

// TrainPredictorContext is TrainPredictor with cancellation: the context
// is observed between the coarse training steps (calibration, synthesis,
// corpus compilation) and once per LSTM epoch, so a canceled training
// request — e.g. a serving process shutting down mid-start — stops within
// one epoch rather than running training to completion.
func TrainPredictorContext(ctx context.Context, cfg PredictorConfig, corpusProfile synth.Profile) (*Predictor, error) {
	cfg = cfg.norm()
	// Close the generator loop on the corpus profile so the synthesized
	// training distribution actually lands on the target (Table 1).
	probe := cfg.TrainPrograms / 5
	if probe < 10 {
		probe = 10
	}
	guide, err := synth.Calibrate(corpusProfile, probe, cfg.Seed+9999, lang.Compile)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mods, err := synthTrainingModules(cfg.TrainPrograms, guide, cfg.Seed+1000, cfg.Workers)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vocab := ir.BuildVocab(mods, cfg.CompactVocab)
	samples, err := blockCorpus(mods, cfg.CompactVocab, cfg.Workers)
	if err != nil {
		return nil, err
	}
	// The model learns the *residual* between the NIC instruction count
	// and the raw IR compute count: the fusions, expansions and spills the
	// closed-source toolchain applies are the opaque part; the IR count is
	// a visible prior. Residual targets transfer much better to program
	// shapes outside the synthesized distribution.
	seq := make([]ml.SeqSample, 0, len(samples))
	for _, s := range samples {
		if len(s.Words) == 0 {
			continue
		}
		target := float64(s.Compute - s.IRCompute)
		if cfg.PredictAPI {
			// Ablation: the model must absorb library-routine costs too.
			target = float64(s.Compute + s.APIInstrs - s.IRCompute)
		}
		seq = append(seq, ml.SeqSample{
			Tokens: vocab.Encode(s.Words),
			Target: []float64{target},
		})
	}
	p := &Predictor{cfg: cfg, Vocab: vocab}
	for k := 0; k < cfg.Ensemble; k++ {
		model, loss, err := ml.TrainLSTMContext(ctx, seq, ml.LSTMConfig{
			Vocab: vocab.Size(), Hidden: cfg.Hidden, Out: 1,
			Epochs: cfg.Epochs, Seed: cfg.Seed + int64(k)*7919,
			Batch: cfg.Batch, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		p.models = append(p.models, model)
		p.TrainLoss += loss / float64(cfg.Ensemble)
	}
	p.ensureQuant()
	return p, nil
}

// PredictBlock predicts one block's NIC compute-instruction count and
// counts its stateful memory accesses directly from the IR (§3.2: memory
// accesses "have a clear correspondence to the load/store instructions at
// the IR level").
func (p *Predictor) PredictBlock(b *ir.Block) (compute float64, mem int) {
	words := ir.BlockWords(b, p.cfg.CompactVocab)
	irCompute := 0
	for _, in := range b.Instrs {
		if in.Op.IsStatefulMem() {
			mem++
		}
		if in.Op.IsCompute() || in.Op.IsTerminator() {
			irCompute++
		}
	}
	if len(words) > 0 {
		var resid float64
		toks := p.Vocab.Encode(words)
		if p.cfg.Quantize {
			p.ensureQuant()
			for _, q := range p.quants {
				resid += q.PredictRaw(toks)[0]
			}
		} else {
			for _, m := range p.models {
				resid += m.PredictRaw(toks)[0]
			}
		}
		resid /= float64(len(p.models))
		compute = float64(irCompute) + resid
		if compute < 0 {
			compute = 0
		}
	}
	return compute, mem
}

// residualBatch predicts the compute residual for every encoded block
// sequence in one batched sweep per ensemble member. Model order and the
// final division match PredictBlock exactly, and the underlying batch
// forward is bit-identical to the per-sequence one, so batched
// predictions equal per-block predictions bit-for-bit.
func (p *Predictor) residualBatch(seqs [][]int) []float64 {
	resid := make([]float64, len(seqs))
	if p.cfg.Quantize {
		p.ensureQuant()
		for _, q := range p.quants {
			outs := q.PredictRawBatch(seqs)
			for i := range resid {
				resid[i] += outs[i][0]
			}
		}
	} else {
		for _, m := range p.models {
			outs := m.PredictRawBatch(seqs)
			for i := range resid {
				resid[i] += outs[i][0]
			}
		}
	}
	for i := range resid {
		resid[i] /= float64(len(p.models))
	}
	return resid
}

// predictBlocksBatch is the batched core of PredictModule/Evaluate: one
// LSTM sweep over every block with a non-empty word sequence, direct IR
// counting for the rest.
func (p *Predictor) predictBlocksBatch(blocks []*ir.Block) (compute []float64, mem []int) {
	compute = make([]float64, len(blocks))
	mem = make([]int, len(blocks))
	irCompute := make([]int, len(blocks))
	seqs := make([][]int, 0, len(blocks))
	seqBlock := make([]int, 0, len(blocks))
	for i, b := range blocks {
		for _, in := range b.Instrs {
			if in.Op.IsStatefulMem() {
				mem[i]++
			}
			if in.Op.IsCompute() || in.Op.IsTerminator() {
				irCompute[i]++
			}
		}
		if words := ir.BlockWords(b, p.cfg.CompactVocab); len(words) > 0 {
			seqs = append(seqs, p.Vocab.Encode(words))
			seqBlock = append(seqBlock, i)
		}
	}
	if len(seqs) > 0 {
		resid := p.residualBatch(seqs)
		for k, i := range seqBlock {
			c := float64(irCompute[i]) + resid[k]
			if c < 0 {
				c = 0
			}
			compute[i] = c
		}
	}
	return compute, mem
}

// BlockPrediction is one block's predicted parameters.
type BlockPrediction struct {
	Block   int
	Compute float64
	Mem     int
	API     int // exact reverse-ported API instruction count
}

// ModulePrediction is the §3 output for one NF: its predicted performance
// parameters on the SmartNIC.
type ModulePrediction struct {
	Name         string
	Blocks       []BlockPrediction
	TotalCompute float64
	TotalMem     int
	TotalAPI     int
}

// PredictModule runs the full Figure 3 algorithm on an unported NF:
// LSTM inference for core-logic blocks, direct IR counting for stateful
// memory, and reverse-ported library costs for framework API calls. All
// blocks go through one batched LSTM sweep; results are bit-identical
// to per-block PredictBlock calls.
func (p *Predictor) PredictModule(m *ir.Module, accel niccc.AccelConfig) (*ModulePrediction, error) {
	outs, err := p.PredictModules([]*ir.Module{m}, accel)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// PredictModules predicts a whole batch of NFs in a single LSTM sweep —
// the fleet/serving fast path. Cross-module batching compounds with
// sequence deduplication: identical basic blocks appearing in different
// modules are inferred once.
func (p *Predictor) PredictModules(mods []*ir.Module, accel niccc.AccelConfig) ([]*ModulePrediction, error) {
	if p.cfg.Simplify {
		simplified := make([]*ir.Module, len(mods))
		for i, m := range mods {
			simplified[i], _ = analysis.SimplifyModule(m)
		}
		mods = simplified
	}
	var blocks []*ir.Block
	starts := make([]int, len(mods)+1)
	for i, m := range mods {
		f := m.Handler()
		if f == nil {
			return nil, fmt.Errorf("core: module %s has no handler", m.Name)
		}
		blocks = append(blocks, f.Blocks...)
		starts[i+1] = len(blocks)
	}
	compute, mem := p.predictBlocksBatch(blocks)
	outs := make([]*ModulePrediction, len(mods))
	for i, m := range mods {
		out := &ModulePrediction{Name: m.Name}
		for bi, b := range m.Handler().Blocks {
			gi := starts[i] + bi
			api := 0
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					n, ok := niccc.APIInstrCount(in.Callee, accel)
					if !ok {
						return nil, fmt.Errorf("core: API %q has no reverse port", in.Callee)
					}
					api += n
				}
			}
			out.Blocks = append(out.Blocks, BlockPrediction{Block: bi, Compute: compute[gi], Mem: mem[gi], API: api})
			out.TotalCompute += compute[gi]
			out.TotalMem += mem[gi]
			out.TotalAPI += api
		}
		outs[i] = out
	}
	return outs, nil
}

// EvalResult reports prediction accuracy against the vendor toolchain's
// ground truth for one NF.
type EvalResult struct {
	Name        string
	WMAPE       float64 // per-block compute prediction error
	MemAccuracy float64 // fraction of blocks with exact memory counts
	Blocks      int
}

// Evaluate measures per-code-block accuracy on an NF (the §5.2
// methodology: compare against the instruction counts of the compiled
// port).
func (p *Predictor) Evaluate(m *ir.Module) (EvalResult, error) {
	prog, err := niccc.Compile(m, niccc.Options{})
	if err != nil {
		return EvalResult{}, err
	}
	f := m.Handler()
	var truth, pred []float64
	var memErr, memTruth float64
	computes, mems := p.predictBlocksBatch(f.Blocks)
	for bi, b := range f.Blocks {
		compute, mem := computes[bi], mems[bi]
		gt := prog.Blocks[bi].ComputeCount
		if p.cfg.PredictAPI {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					if n, ok := niccc.APIInstrCount(in.Callee, niccc.AccelConfig{}); ok {
						gt += n
					}
				}
			}
		}
		if gt == 0 && len(b.Instrs) <= 1 {
			continue // empty join blocks carry no signal
		}
		truth = append(truth, float64(gt))
		pred = append(pred, compute)
		memErr += math.Abs(float64(prog.Blocks[bi].MemCount - mem))
		memTruth += float64(prog.Blocks[bi].MemCount)
	}
	res := EvalResult{Name: m.Name, WMAPE: stats.WMAPE(truth, pred), Blocks: len(truth)}
	if memTruth > 0 {
		res.MemAccuracy = 1 - memErr/memTruth
	} else {
		res.MemAccuracy = 1
	}
	return res, nil
}

// BagOfWords featurizes a word sequence as a vocabulary histogram plus a
// length feature — the representation the non-sequence baselines (DNN,
// AutoML) consume.
func BagOfWords(v *ir.Vocab, words []string) []float64 {
	x := make([]float64, v.Size()+1)
	for _, w := range words {
		x[v.Index(w)]++
	}
	x[v.Size()] = float64(len(words))
	return x
}
