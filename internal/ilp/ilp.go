// Package ilp solves the small 0/1 integer linear programs Clara's NF state
// placement formulates (§4.3): assign each of k data structures to one of t
// memory levels, minimizing Σ L_j · f_i · x_ij subject to per-level
// capacity. Problem sizes are tiny (k is "typically small", and "ILP
// solving finishes within a few seconds in all cases"), so an exact
// branch-and-bound with an admissible relaxation bound suffices.
package ilp

import (
	"fmt"
	"math"
	"sort"
)

// Assignment is the per-item chosen bin.
type Assignment []int

// Problem is a generalized-assignment minimization instance.
type Problem struct {
	// Cost[i][j] is the objective contribution of placing item i in bin j
	// (math.Inf(1) forbids the pairing).
	Cost [][]float64
	// Size[i] is item i's capacity consumption.
	Size []int
	// Cap[j] is bin j's capacity.
	Cap []int
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if len(p.Cost) != len(p.Size) {
		return fmt.Errorf("ilp: %d cost rows for %d items", len(p.Cost), len(p.Size))
	}
	for i, row := range p.Cost {
		if len(row) != len(p.Cap) {
			return fmt.Errorf("ilp: item %d has %d costs for %d bins", i, len(row), len(p.Cap))
		}
		if p.Size[i] < 0 {
			return fmt.Errorf("ilp: item %d has negative size", i)
		}
	}
	return nil
}

// Solve finds a minimum-cost feasible assignment, or an error if none
// exists. The search is exact: branch on items in decreasing size order,
// bound with the sum of each unassigned item's cheapest still-feasible bin
// (an admissible relaxation that ignores future capacity interaction).
func Solve(p *Problem) (Assignment, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.Size)
	t := len(p.Cap)
	if n == 0 {
		return Assignment{}, 0, nil
	}

	// Branch order: big items first prunes earlier.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if p.Size[order[a]] != p.Size[order[b]] {
			return p.Size[order[a]] > p.Size[order[b]]
		}
		return order[a] < order[b]
	})

	// minCost[i] = cheapest bin cost for item i ignoring capacity.
	minCost := make([]float64, n)
	for i := 0; i < n; i++ {
		minCost[i] = math.Inf(1)
		for j := 0; j < t; j++ {
			if p.Cost[i][j] < minCost[i] {
				minCost[i] = p.Cost[i][j]
			}
		}
		if math.IsInf(minCost[i], 1) {
			return nil, 0, fmt.Errorf("ilp: item %d has no feasible bin", i)
		}
	}
	// tailBound[d] = Σ minCost of items ordered at depth >= d.
	tailBound := make([]float64, n+1)
	for d := n - 1; d >= 0; d-- {
		tailBound[d] = tailBound[d+1] + minCost[order[d]]
	}

	best := math.Inf(1)
	bestAssign := make(Assignment, n)
	cur := make(Assignment, n)
	left := append([]int(nil), p.Cap...)

	var dfs func(depth int, cost float64)
	dfs = func(depth int, cost float64) {
		if cost+tailBound[depth] >= best {
			return
		}
		if depth == n {
			best = cost
			copy(bestAssign, cur)
			return
		}
		i := order[depth]
		// Try bins cheapest-first for this item.
		type jc struct {
			j int
			c float64
		}
		cands := make([]jc, 0, t)
		for j := 0; j < t; j++ {
			if p.Size[i] <= left[j] && !math.IsInf(p.Cost[i][j], 1) {
				cands = append(cands, jc{j, p.Cost[i][j]})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].c != cands[b].c {
				return cands[a].c < cands[b].c
			}
			return cands[a].j < cands[b].j
		})
		for _, cand := range cands {
			cur[i] = cand.j
			left[cand.j] -= p.Size[i]
			dfs(depth+1, cost+cand.c)
			left[cand.j] += p.Size[i]
		}
	}
	dfs(0, 0)
	if math.IsInf(best, 1) {
		return nil, 0, fmt.Errorf("ilp: infeasible (capacity exceeded for every assignment)")
	}
	return bestAssign, best, nil
}

// Enumerate exhaustively searches all t^n assignments and returns the best
// (testing oracle and the paper's "expert emulation" baseline, §5.8). It
// refuses instances with more than maxExhaustive combinations.
func Enumerate(p *Problem, maxExhaustive int) (Assignment, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n, t := len(p.Size), len(p.Cap)
	total := 1
	for i := 0; i < n; i++ {
		total *= t
		if total > maxExhaustive {
			return nil, 0, fmt.Errorf("ilp: %d combinations exceed limit %d", total, maxExhaustive)
		}
	}
	best := math.Inf(1)
	var bestAssign Assignment
	cur := make(Assignment, n)
	for code := 0; code < total; code++ {
		c := code
		for i := 0; i < n; i++ {
			cur[i] = c % t
			c /= t
		}
		left := append([]int(nil), p.Cap...)
		cost := 0.0
		ok := true
		for i := 0; i < n && ok; i++ {
			j := cur[i]
			if math.IsInf(p.Cost[i][j], 1) || p.Size[i] > left[j] {
				ok = false
				break
			}
			left[j] -= p.Size[i]
			cost += p.Cost[i][j]
		}
		if ok && cost < best {
			best = cost
			bestAssign = append(Assignment(nil), cur...)
		}
	}
	if bestAssign == nil {
		return nil, 0, fmt.Errorf("ilp: infeasible")
	}
	return bestAssign, best, nil
}
