GO ?= go

.PHONY: build test race check fuzz bench-fleet update-golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checked run of every package; the fleet tests drive 17 NFs x 3
# workloads across an 8-worker pool under the race detector.
race:
	$(GO) test -race ./...

# check is the PR gate: build, plain tests, then the race pass.
check: build test race

# Short smoke runs of every fuzz target (seed corpus always runs under
# plain `go test`; this adds a bounded mutation pass).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=20s ./internal/lang/
	$(GO) test -run=^$$ -fuzz=FuzzCompile$$ -fuzztime=20s ./internal/lang/
	$(GO) test -run=^$$ -fuzz=FuzzCompileNF -fuzztime=20s .

bench-fleet:
	$(GO) test -run=^$$ -bench=BenchmarkFleetAnalyze -benchtime=5x .

# Regenerate the Insights.Report golden files after intentional
# formatting changes.
update-golden:
	$(GO) test ./internal/core/ -run TestReportGolden -update
