package synth

import (
	"context"

	"clara/internal/ir"
	"clara/internal/par"
)

// Calibrate closes the loop between the target corpus profile and what the
// generator actually emits: it generates a probe corpus, measures its
// profile, and multiplicatively adjusts the guidance rates so the emitted
// distribution lands on the target. Three iterations suffice in practice.
//
// This is the working form of the paper's "analyzes existing Click
// elements to obtain representative AST distributions, and then feeds such
// properties to the program generator": the generator's knobs are rates,
// not final distributions, so the mapping must be inverted empirically.
func Calibrate(target Profile, probeSize int, seed int64,
	compile func(name, src string) (*ir.Module, error)) (Profile, error) {
	guide := clone(target)
	for iter := 0; iter < 3; iter++ {
		// Probe programs are independent (per-index seeds), so each
		// iteration's corpus generates in parallel; mods keeps index
		// order, making the measured profile worker-count-invariant.
		mods := make([]*ir.Module, probeSize)
		err := par.ForErr(noCtx, 0, probeSize, func(i int) error {
			m, _, err := GenerateModule(Config{
				Profile: guide,
				Seed:    seed + int64(iter)*100000 + int64(i),
			}, compile)
			if err != nil {
				return err
			}
			mods[i] = m
			return nil
		})
		if err != nil {
			return Profile{}, err
		}
		got := ProfileFromModules(mods)
		guide.BranchPerInstr = adjust(guide.BranchPerInstr, target.BranchPerInstr, got.BranchPerInstr)
		guide.StatePerInstr = adjust(guide.StatePerInstr, target.StatePerInstr, got.StatePerInstr)
		guide.APIPerInstr = adjust(guide.APIPerInstr, target.APIPerInstr, got.APIPerInstr)
		guide.LoopFrac = adjust(guide.LoopFrac, target.LoopFrac, got.LoopFrac)
		guide.AvgHandlerInstrs = adjust(guide.AvgHandlerInstrs, target.AvgHandlerInstrs, got.AvgHandlerInstrs)
		ow := map[string]float64{}
		var total float64
		for _, op := range opNames {
			w := adjust(guide.OpWeights[op], target.OpWeights[op], got.OpWeights[op])
			ow[op] = w
			total += w
		}
		if total > 0 {
			for k := range ow {
				ow[k] /= total
			}
		}
		guide.OpWeights = ow
	}
	return guide, nil
}

// noCtx: calibration has no cancellation path of its own (it runs inside
// coarser per-step context checks in core).
var noCtx = context.Background()

func clone(p Profile) Profile {
	ow := map[string]float64{}
	for k, v := range p.OpWeights {
		ow[k] = v
	}
	p.OpWeights = ow
	return p
}

// adjust multiplies the knob by target/measured, bounded to [1/4, 4] per
// step to keep the fixed-point iteration stable.
func adjust(knob, target, measured float64) float64 {
	if measured <= 0 || target <= 0 {
		return knob
	}
	r := target / measured
	if r > 4 {
		r = 4
	}
	if r < 0.25 {
		r = 0.25
	}
	return knob * r
}
