package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"clara/internal/analysis"
	"clara/internal/ir"
	"clara/internal/isa"
	"clara/internal/niccc"
	"clara/internal/nicsim"
	"clara/internal/traffic"
)

// Clara bundles the trained analysis components into the tool the paper
// describes: given an unported NF and a workload specification, emit
// offloading insights (Figure 2c).
type Clara struct {
	Predictor *Predictor
	AlgoID    *AlgoIdentifier
	Scaleout  *ScaleoutModel
	Params    nicsim.Params
	Coalesce  CoalesceConfig
}

// Insights is the full report for one NF and workload.
type Insights struct {
	NF       string
	Workload string

	// Cross-platform prediction (§3).
	Prediction *ModulePrediction

	// Accelerator opportunities (§4.1).
	Algorithm int // AlgoCRC / AlgoLPM / AlgoNone

	// Multicore scale-out (§4.2).
	SuggestedCores int

	// NF state placement (§4.3).
	Placement nicsim.Placement

	// Memory access coalescing (§4.4).
	Packs [][]string

	// Offloadability lint findings (internal/analysis): SmartNIC-hostile
	// constructs detected statically in the unported NF.
	Diagnostics []analysis.Diagnostic

	// StateProfile is the interprocedural static profile: every loop and
	// stateful structure classified header-only vs payload-dependent
	// (taint) and weighted by estimated access frequency (trip counts ×
	// branch probabilities). The placement ILP can consume its weights in
	// place of a host profile (SuggestPlacementStatic), and the offload
	// controller refines its fast/slow split from its header-only share
	// (offload.DeriveCapacitiesProfile).
	StateProfile *analysis.StateProfile
}

// LintConfig derives the linter budgets from the hardware model: the
// largest tier bounds what can be placed at all, the on-chip tiers bound
// what stays in SRAM.
func (c *Clara) LintConfig() analysis.Config {
	cfg := analysis.DefaultConfig()
	if emem := c.Params.Regions[isa.EMEM].Capacity; emem > 0 {
		cfg.TotalBudget = emem
	}
	fast := c.Params.Regions[isa.CLS].Capacity +
		c.Params.Regions[isa.CTM].Capacity +
		c.Params.Regions[isa.IMEM].Capacity
	if fast > 0 {
		cfg.FastBudget = fast
	}
	return cfg
}

// Analyze runs every analysis on an unported NF.
func (c *Clara) Analyze(mod *ir.Module, ps ProfileSetup, wl traffic.Spec) (*Insights, error) {
	return c.AnalyzeContext(context.Background(), mod, ps, wl)
}

// AnalyzeContext is Analyze under a context: prediction, profiling,
// placement, and scale-out all stop promptly when ctx is canceled (a
// serving layer's per-request timeout or client disconnect).
func (c *Clara) AnalyzeContext(ctx context.Context, mod *ir.Module, ps ProfileSetup, wl traffic.Spec) (*Insights, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mp, err := c.Predictor.PredictModule(mod, niccc.AccelConfig{})
	if err != nil {
		return nil, err
	}
	return c.AnalyzeWithPredictionContext(ctx, mod, ps, wl, mp)
}

// AnalyzeWithPrediction runs the workload-dependent analyses against an
// already-computed §3 prediction. Fleet runs use it to share one
// PredictModule result across every workload an NF is analyzed under; the
// prediction is read-only here, so a cached *ModulePrediction may be
// passed to concurrent calls.
func (c *Clara) AnalyzeWithPrediction(mod *ir.Module, ps ProfileSetup, wl traffic.Spec, mp *ModulePrediction) (*Insights, error) {
	return c.AnalyzeWithPredictionContext(context.Background(), mod, ps, wl, mp)
}

// AnalyzeWithPredictionContext is AnalyzeWithPrediction with
// cancellation. The context is observed inside the profiling packet loop
// (the longest stage) and between stages, so canceling stops the analysis
// within at most one stage boundary or 64 profiled packets.
func (c *Clara) AnalyzeWithPredictionContext(ctx context.Context, mod *ir.Module, ps ProfileSetup, wl traffic.Spec, mp *ModulePrediction) (*Insights, error) {
	if mp == nil {
		return nil, fmt.Errorf("core: nil prediction for %s", mod.Name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ins := &Insights{NF: mod.Name, Workload: wl.Name}
	ins.Prediction = mp
	ins.Diagnostics = analysis.LintModule(mod, c.LintConfig())
	ins.StateProfile = analysis.ComputeStateProfile(mod)

	if c.AlgoID != nil {
		ins.Algorithm = c.AlgoID.Classify(mod)
	}

	prof, err := ProfileOnHostContext(ctx, mod, ps, wl, 800)
	if err != nil {
		return nil, err
	}
	if len(mod.Globals) > 0 {
		pl, err := SuggestPlacementContext(ctx, mod, prof, c.Params)
		if err != nil {
			return nil, err
		}
		ins.Placement = pl
		ins.Packs = SuggestPacks(mod, prof, c.Coalesce)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.Scaleout != nil {
		stateBytes := 0
		for _, g := range mod.Globals {
			stateBytes += g.SizeBytes()
		}
		ins.SuggestedCores = c.Scaleout.Suggest(ScaleoutFeatures(mp, prof, wl, stateBytes))
	}
	return ins, nil
}

// Report renders the insights as the CLI's human-readable output.
func (ins *Insights) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Clara offloading insights — NF %q, workload %q\n", ins.NF, ins.Workload)
	fmt.Fprintf(&b, "\nPredicted performance parameters (per handler invocation):\n")
	fmt.Fprintf(&b, "  compute instructions (core logic): %.1f\n", ins.Prediction.TotalCompute)
	fmt.Fprintf(&b, "  framework API instructions:        %d (reverse-ported, exact)\n", ins.Prediction.TotalAPI)
	fmt.Fprintf(&b, "  stateful memory accesses (static): %d\n", ins.Prediction.TotalMem)

	fmt.Fprintf(&b, "\nAccelerator opportunities: ")
	if ins.Algorithm == AlgoNone {
		b.WriteString("none detected\n")
	} else {
		fmt.Fprintf(&b, "%s — rewrite the matching code to the %s engine\n",
			AlgoName(ins.Algorithm), AlgoName(ins.Algorithm))
	}

	if ins.SuggestedCores > 0 {
		fmt.Fprintf(&b, "\nMulticore scale-out: use ~%d cores for this workload\n", ins.SuggestedCores)
	}

	if len(ins.Placement) > 0 {
		fmt.Fprintf(&b, "\nState placement:\n")
		byRegion := map[isa.Region][]string{}
		for g, r := range ins.Placement {
			byRegion[r] = append(byRegion[r], g)
		}
		for r := isa.CLS; r <= isa.EMEM; r++ {
			if gs := byRegion[r]; len(gs) > 0 {
				fmt.Fprintf(&b, "  %-4s: %s\n", r, strings.Join(sorted(gs), ", "))
			}
		}
	}
	if len(ins.Packs) > 0 {
		fmt.Fprintf(&b, "\nCoalescing packs (allocate adjacently, fetch together):\n")
		for i, p := range ins.Packs {
			fmt.Fprintf(&b, "  pack %d: %s\n", i, strings.Join(p, ", "))
		}
	}
	if sp := ins.StateProfile; sp != nil && (len(sp.Loops) > 0 || len(sp.Structs) > 0) {
		fmt.Fprintf(&b, "\nStatic state profile (header-only share %.0f%%, %d payload-dependent loop(s)):\n",
			100*sp.HeaderOnlyShare(), sp.PayloadLoops())
		for _, line := range strings.Split(strings.TrimRight(sp.Render(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	if len(ins.Diagnostics) > 0 {
		s := analysis.Summarize(ins.Diagnostics)
		fmt.Fprintf(&b, "\nOffloadability lint (%d error(s), %d warning(s), %d note(s)):\n",
			s.Errors, s.Warnings, s.Infos)
		for _, d := range ins.Diagnostics {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	}
	return b.String()
}

func sorted(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

// ReversePortNICMapSource is the NFC source of the NIC-style map lookup —
// the reverse-ported Click element of §3.3. Its control flow mirrors the
// SmartNIC library (fixed bucket slots probed in order, free slot ends the
// chain) so host execution triggers the same branch behaviour as the NIC;
// internal/interp's NICMap mode implements exactly these semantics, and
// the vendor library's instruction counts (niccc.Library) are its compiled
// cost.
const ReversePortNICMapSource = `
// Reverse-ported HashMap.find: fixed buckets of 4 slots, no growth.
global u64 slot_key[4096];
global u64 slot_val[4096];
global u32 slot_used[4096];

u64 nic_map_find(u64 key) {
	u32 bucket = (hash32(key) & 1023) * 4;
	for (u32 i = 0; i < 4; i += 1) {
		u32 s = bucket + i;
		if (slot_used[s] == 0) { return 0; }
		if (slot_used[s] == 1 && slot_key[s] == key) { return slot_val[s]; }
	}
	return 0;
}

void handle() {
	u64 v = nic_map_find(u64(pkt_ip_src()));
	if (v == 0) { pkt_drop(); return; }
	pkt_send(u32(v));
}
`

// HostMapSource is the host-style (Click) counterpart: elastic growth with
// linear probing. The asymmetry between the two sources is what reverse
// porting eliminates from Clara's analysis inputs.
const HostMapSource = `
// Click-style HashMap.find: open addressing with linear probing over a
// table that reallocates as it fills (growth elided: probe semantics only).
global u64 slot_key[8192];
global u64 slot_val[8192];
global u32 slot_used[8192];

u64 click_map_find(u64 key) {
	u32 idx = hash32(key) & 8191;
	for (u32 i = 0; i < 8192; i += 1) {
		u32 s = (idx + i) & 8191;
		if (slot_used[s] == 0) { return 0; }
		if (slot_key[s] == key) { return slot_val[s]; }
	}
	return 0;
}

void handle() {
	u64 v = click_map_find(u64(pkt_ip_src()));
	if (v == 0) { pkt_drop(); return; }
	pkt_send(u32(v));
}
`
