package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// vetSource runs the analyzer over one or more fixture files (given as
// name→source) and returns the findings as "line:rule" strings.
func vetSource(t *testing.T, files map[string]string) []string {
	t.Helper()
	dir := t.TempDir()
	var paths []string
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	fs, err := vetPackage(dir, paths)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, f := range fs {
		out = append(out, strings.Join([]string{filepath.Base(f.pos.Filename), itoa(f.pos.Line), f.rule}, ":"))
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func contains(fs []string, want string) bool {
	for _, f := range fs {
		if f == want {
			return true
		}
	}
	return false
}

func TestTimeNowAndGlobalRand(t *testing.T) {
	fs := vetSource(t, map[string]string{"a.go": `package p

import (
	"math/rand"
	"time"
)

func f() {
	_ = time.Now()
	_ = rand.Intn(4)
	_ = rand.New(rand.NewSource(1))
	_ = time.Since(time.Time{})
}
`})
	want := []string{"a.go:9:time-now", "a.go:10:global-rand"}
	if len(fs) != len(want) {
		t.Fatalf("findings = %v, want %v", fs, want)
	}
	for _, w := range want {
		if !contains(fs, w) {
			t.Errorf("missing %s in %v", w, fs)
		}
	}
}

func TestMapRangePerFile(t *testing.T) {
	// idx is a map in a.go but a slice in b.go: only a.go's range over it
	// may be flagged — map names must not leak across files.
	fs := vetSource(t, map[string]string{
		"a.go": `package p

var idx = map[string]int{}

func f() {
	for k := range idx {
		_ = k
	}
}
`,
		"b.go": `package p

func g(idx []int) int {
	s := 0
	for _, v := range idx {
		s += v
	}
	return s
}
`,
	})
	if len(fs) != 1 || fs[0] != "a.go:6:map-range" {
		t.Fatalf("findings = %v, want exactly [a.go:6:map-range]", fs)
	}
}

func TestMapRangeSources(t *testing.T) {
	// Struct fields, params, := of make(map) all teach the map table.
	fs := vetSource(t, map[string]string{"a.go": `package p

type s struct{ byName map[string]int }

func f(v s, arg map[int]bool) {
	local := make(map[string]string)
	for k := range v.byName {
		_ = k
	}
	for k := range arg {
		_ = k
	}
	for k := range local {
		_ = k
	}
}
`})
	want := []string{"a.go:7:map-range", "a.go:10:map-range", "a.go:13:map-range"}
	if len(fs) != len(want) {
		t.Fatalf("findings = %v, want %v", fs, want)
	}
}

func TestFloatReducePureOnly(t *testing.T) {
	fs := vetSource(t, map[string]string{"a.go": `package p

func sum(a []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i]
	}
	return s
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := 0; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

func gather(y []float64, nb []int) float64 {
	s := 0.0
	for _, i := range nb {
		s += y[i]
	}
	return s
}

func fused(a []float64) float64 {
	s := 0.0
	for i := range a {
		x := a[i] * a[i]
		s += x
	}
	return s
}

func guarded(a []float64, use []bool) float64 {
	s := 0.0
	for i := range a {
		if !use[i] {
			continue
		}
		s += a[i]
	}
	return s
}
`})
	// Only the pure sum and pure dot are kernel-shaped; the gather (index
	// is the range value, not the induction variable), the fused
	// compute+accumulate, and the guarded sum are not.
	want := []string{"a.go:6:float-reduce", "a.go:14:float-reduce"}
	if len(fs) != len(want) {
		t.Fatalf("findings = %v, want %v", fs, want)
	}
	for _, w := range want {
		if !contains(fs, w) {
			t.Errorf("missing %s in %v", w, fs)
		}
	}
}

func TestAllowDirective(t *testing.T) {
	fs := vetSource(t, map[string]string{"a.go": `package p

import "time"

func f() {
	_ = time.Now() //claravet:allow metrics only
	//claravet:allow metrics only
	_ = time.Now()
	_ = time.Now()
}
`})
	if len(fs) != 1 || fs[0] != "a.go:9:time-now" {
		t.Fatalf("findings = %v, want only the unannotated line 9", fs)
	}
}
