package interp

import (
	"testing"
	"testing/quick"

	"clara/internal/ir"
	"clara/internal/lang"
	"clara/internal/traffic"
)

func compile(t *testing.T, name, src string) *ir.Module {
	t.Helper()
	m, err := lang.Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tcpPacket(src, dst uint32) traffic.Packet {
	return traffic.Packet{
		Len: 128, EthType: traffic.EthIPv4, Proto: traffic.ProtoTCP,
		SrcIP: src, DstIP: dst, TTL: 64, IPLen: 114, IPHL: 5,
		SrcPort: 1234, DstPort: 80, TCPOff: 5, OutPort: -2,
		Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
}

func TestArithmeticAndForwarding(t *testing.T) {
	src := `
global u32 seen;
void handle() {
	u8 ttl = pkt_ip_ttl();
	if (ttl <= 1) { pkt_drop(); return; }
	pkt_set_ip_ttl(ttl - 1);
	seen += 1;
	pkt_send(2);
}
`
	m, err := New(compile(t, "ttl", src), Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := tcpPacket(1, 2)
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if p.TTL != 63 || p.OutPort != 2 {
		t.Errorf("TTL=%d OutPort=%d", p.TTL, p.OutPort)
	}
	p.TTL = 1
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if !p.Dropped() {
		t.Error("TTL=1 packet not dropped")
	}
	if v, _ := m.Scalar("seen"); v != 1 {
		t.Errorf("seen=%d, want 1", v)
	}
}

const natSrc = `
map<u64,u64> nat[1024];
global u32 misses;
void handle() {
	u64 key = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	if (map_contains(nat, key)) {
		u64 f = map_find(nat, key);
		pkt_set_ip_dst(u32(f >> 16));
		pkt_set_tcp_dport(u16(f & 0xffff));
		pkt_csum_update();
		pkt_send(0);
	} else {
		misses += 1;
		map_insert(nat, key, (u64(pkt_ip_dst()) << 16) | 8080);
		pkt_drop();
	}
}
`

func TestMapSemanticsHostVsNIC(t *testing.T) {
	for _, mode := range []MapMode{HostMap, NICMap} {
		mod := compile(t, "nat", natSrc)
		m, err := New(mod, Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		p := tcpPacket(0xC0A80001, 0x0A000001)
		if err := m.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
		if !p.Dropped() {
			t.Fatalf("mode %d: first packet should miss", mode)
		}
		p = tcpPacket(0xC0A80001, 0x0A000001)
		if err := m.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
		if p.OutPort != 0 || p.DstIP != 0x0A000001>>0 && p.DstPort != 8080 {
			t.Fatalf("mode %d: second packet not translated: port=%d dst=%x dport=%d",
				mode, p.OutPort, p.DstIP, p.DstPort)
		}
		if !p.CsumUpdated {
			t.Fatalf("mode %d: checksum not updated", mode)
		}
		if n, _ := m.MapLen("nat"); n != 1 {
			t.Fatalf("mode %d: map size %d", mode, n)
		}
	}
}

func TestNICMapBucketOverflow(t *testing.T) {
	// Capacity 4 => a single bucket of 4 slots. Force ≥5 distinct keys into
	// it; the NIC map must drop inserts while the host map grows.
	src := `
map<u64,u64> m[4];
void handle() {
	map_insert(m, u64(pkt_ip_src()), 1);
	pkt_send(0);
}
`
	mod := compile(t, "overflow", src)
	nic, err := New(mod, Config{Mode: NICMap})
	if err != nil {
		t.Fatal(err)
	}
	host, err := New(compile(t, "overflow", src), Config{Mode: HostMap})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 16; i++ {
		p := tcpPacket(i, 9)
		if err := nic.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
		p = tcpPacket(i, 9)
		if err := host.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
	}
	nn, _ := nic.MapLen("m")
	hn, _ := host.MapLen("m")
	if nn > 4 {
		t.Errorf("NIC map grew beyond capacity: %d", nn)
	}
	if hn != 16 {
		t.Errorf("host map should hold 16, has %d", hn)
	}
	if fi, _ := nic.FailedInserts("m"); fi == 0 {
		t.Error("expected failed inserts on the NIC map")
	}
}

func TestNICMapRemoveMarksInvalid(t *testing.T) {
	src := `
map<u64,u64> m[64];
void handle() {
	if (pkt_ip_ttl() == 1) { map_insert(m, 7, 42); }
	if (pkt_ip_ttl() == 2) { map_remove(m, 7); }
	pkt_send(0);
}
`
	m, err := New(compile(t, "rm", src), Config{Mode: NICMap})
	if err != nil {
		t.Fatal(err)
	}
	p := tcpPacket(1, 2)
	p.TTL = 1
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.MapGet("m", 7); !ok {
		t.Fatal("insert failed")
	}
	p.TTL = 2
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.MapGet("m", 7); ok {
		t.Fatal("remove failed")
	}
	if n, _ := m.MapLen("m"); n != 0 {
		t.Fatalf("size %d after remove", n)
	}
	// Reinsertion reuses the invalidated slot.
	p.TTL = 1
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := m.MapGet("m", 7); !ok || v != 42 {
		t.Fatal("reinsert after remove failed")
	}
}

func TestFuelStopsRunawayLoop(t *testing.T) {
	src := `
void handle() {
	u32 i = 0;
	while (true) { i += 1; }
}
`
	m, err := New(compile(t, "loop", src), Config{Fuel: 10000})
	if err != nil {
		t.Fatal(err)
	}
	p := tcpPacket(1, 2)
	if err := m.RunPacket(&p); err != ErrFuel {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
}

func TestHooksFire(t *testing.T) {
	mod := compile(t, "nat", natSrc)
	m, err := New(mod, Config{Mode: NICMap})
	if err != nil {
		t.Fatal(err)
	}
	var blocks, state, local, api, compute int
	m.SetHooks(Hooks{
		OnBlock:   func(int) { blocks++ },
		OnState:   func(string, bool, uint64, int) { state++ },
		OnLocal:   func(bool, int) { local++ },
		OnCompute: func(_, n int) { compute += n },
		OnAPI: func(name, global string, probes int, _ uint64, _ int) {
			api++
			if name == "map_insert" && global != "nat" {
				t.Errorf("map_insert global = %q", global)
			}
			if name == "map_insert" && probes < 1 {
				t.Errorf("map_insert probes = %d", probes)
			}
		},
	})
	p := tcpPacket(3, 4)
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if blocks == 0 || state == 0 || local == 0 || api == 0 || compute == 0 {
		t.Errorf("hooks missed events: blocks=%d state=%d local=%d api=%d compute=%d",
			blocks, state, local, api, compute)
	}
}

func TestCRC32KnownVector(t *testing.T) {
	// IEEE CRC-32 of "123456789" is 0xCBF43926.
	data := []byte("123456789")
	if got := CRC32(data, 0, 9); got != 0xCBF43926 {
		t.Errorf("CRC32 = %08x, want CBF43926", got)
	}
	if CRC32(data, 100, 4) != 0 {
		t.Error("out-of-range CRC should be 0")
	}
}

func TestLPMLookup(t *testing.T) {
	table := []Route{
		{Prefix: 0x0A000000, Len: 8, Port: 1},
		{Prefix: 0x0A010000, Len: 16, Port: 2},
		{Prefix: 0x0A010100, Len: 24, Port: 3},
	}
	src := `
void handle() {
	u32 port = lpm_hw(pkt_ip_dst());
	if (port == 0xffffffff) { pkt_drop(); return; }
	pkt_send(port);
}
`
	m, err := New(compile(t, "lpm", src), Config{LPMTable: table})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dst  uint32
		port int32
	}{
		{0x0A020304, 1},  // matches /8 only
		{0x0A01FF01, 2},  // /16
		{0x0A010105, 3},  // /24 longest
		{0x0B000001, -1}, // no match -> drop
	}
	for _, c := range cases {
		p := tcpPacket(1, c.dst)
		if err := m.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
		if p.OutPort != c.port {
			t.Errorf("dst %08x -> port %d, want %d", c.dst, p.OutPort, c.port)
		}
	}
}

func TestDivRemByZeroFirmwareSemantics(t *testing.T) {
	src := `
global u32 q;
global u32 r;
void handle() {
	u32 d = u32(pkt_ip_ttl());
	q = 100 / d;
	r = 100 % d;
	pkt_send(0);
}
`
	m, err := New(compile(t, "div", src), Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := tcpPacket(1, 2)
	p.TTL = 0
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	q, _ := m.Scalar("q")
	r, _ := m.Scalar("r")
	if q != 0xffffffff || r != 0 {
		t.Errorf("q=%x r=%x; want all-ones and 0", q, r)
	}
}

func TestMaskingPropertyU16(t *testing.T) {
	src := `
global u64 out;
void handle() {
	u16 a = u16(pkt_ip_len());
	u16 b = u16(pkt_tcp_sport());
	out = u64(a * b);
	pkt_send(0);
}
`
	m, err := New(compile(t, "mask", src), Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		p := tcpPacket(1, 2)
		p.IPLen = a
		p.SrcPort = b
		if err := m.RunPacket(&p); err != nil {
			return false
		}
		got, _ := m.Scalar("out")
		return got == uint64(a*b) // Go u16 mul wraps identically
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArrayIndexWraps(t *testing.T) {
	src := `
global u32 a[8];
void handle() {
	a[pkt_ip_src()] += 1;
	pkt_send(0);
}
`
	m, err := New(compile(t, "wrap", src), Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := tcpPacket(9, 2) // 9 % 8 == 1
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ArrayAt("a", 1); v != 1 {
		t.Errorf("a[1] = %d, want 1", v)
	}
}

func TestResetState(t *testing.T) {
	mod := compile(t, "nat", natSrc)
	m, err := New(mod, Config{Mode: NICMap})
	if err != nil {
		t.Fatal(err)
	}
	p := tcpPacket(5, 6)
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if n, _ := m.MapLen("nat"); n != 1 {
		t.Fatal("setup failed")
	}
	m.ResetState()
	if n, _ := m.MapLen("nat"); n != 0 {
		t.Error("map not cleared")
	}
	if v, _ := m.Scalar("misses"); v != 0 {
		t.Error("scalar not cleared")
	}
}

func TestRand32Deterministic(t *testing.T) {
	src := `
global u32 x;
void handle() { x = rand32(); pkt_send(0); }
`
	run := func() uint64 {
		m, err := New(compile(t, "rng", src), Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		p := tcpPacket(1, 2)
		if err := m.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
		v, _ := m.Scalar("x")
		return v
	}
	if run() != run() {
		t.Error("rand32 not deterministic across identical machines")
	}
}
