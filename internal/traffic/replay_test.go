package traffic

import (
	"reflect"
	"testing"
)

// The replayed sequence must be indistinguishable from a fresh
// generator's: host profiles and simulator traces are defined over the
// generator's deterministic stream, and the cache must not change them.
func TestReplayMatchesGenerator(t *testing.T) {
	spec := MediumMix
	const n = 256
	want := MustTrace(spec, n)
	r, err := Replay(spec, n)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	for i := 0; i < n; i++ {
		got := r.Next()
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("packet %d differs:\ngot  %+v\nwant %+v", i, got, want[i])
		}
	}
	// Wrap-around restarts the trace (with a shifted timestamp so time
	// stays monotone).
	got := r.Next()
	if got.Time <= want[n-1].Time {
		t.Fatalf("wrap time %d not after %d", got.Time, want[n-1].Time)
	}
	got.Time = want[0].Time
	if !reflect.DeepEqual(got, want[0]) {
		t.Fatalf("wrap packet differs: got %+v want %+v", got, want[0])
	}
}

// A shorter replay of an already-cached spec and an extension past the
// cached length must both stay aligned with the generator sequence.
func TestReplayExtendAndTruncate(t *testing.T) {
	spec := LargeFlows
	want := MustTrace(spec, 100)
	for _, n := range []int{10, 100, 37} {
		r, err := Replay(spec, n)
		if err != nil {
			t.Fatalf("Replay(%d): %v", n, err)
		}
		for i := 0; i < n; i++ {
			if got := r.Next(); !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("n=%d packet %d differs", n, i)
			}
		}
	}
}

// NFs mutate packets in place (pkt_set_payload writes payload bytes), so
// each replayed packet must carry an independent payload.
func TestReplayPayloadIsolation(t *testing.T) {
	spec := SmallFlows
	const n = 8
	r1, err := Replay(spec, n)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	p := r1.Next()
	if len(p.Payload) == 0 {
		t.Fatal("expected nonzero payload")
	}
	orig := p.Payload[0]
	p.Payload[0] = ^orig

	r2, err := Replay(spec, n)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if q := r2.Next(); q.Payload[0] != orig {
		t.Fatalf("shared trace corrupted: payload[0] = %#x, want %#x", q.Payload[0], orig)
	}
}

func TestReplayInvalidSpec(t *testing.T) {
	bad := Spec{Name: "bad", NumFlows: 0, PktSize: 128}
	if _, err := Replay(bad, 4); err == nil {
		t.Fatal("expected error for invalid spec")
	}
	// The failed entry must not poison the cache for a corrected spec of
	// the same shape.
	bad.NumFlows = 4
	if _, err := Replay(bad, 4); err != nil {
		t.Fatalf("corrected spec: %v", err)
	}
}
