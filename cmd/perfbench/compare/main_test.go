package main

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, blob string) map[string]any {
	t.Helper()
	m, err := parse([]byte(blob), "test.json")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDiffNewMetricInformational: a metric the older committed baseline
// predates must show up as "(new)" — informational, never an error. This
// is the contract that lets perfbench grow fields (profile_us_per_packet,
// compiled_speedup, ...) without breaking `make bench-compare` against
// historical BENCH_PR*.json files.
func TestDiffNewMetricInformational(t *testing.T) {
	oldRep := mustParse(t, `{"fleet_jobs_per_sec": 198.0}`)
	newRep := mustParse(t, `{"fleet_jobs_per_sec": 260.0, "profile_us_per_packet": 0.31, "compiled_speedup": 1.4}`)
	lines := diff(oldRep, newRep)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"profile_us_per_packet", "compiled_speedup"} {
		found := false
		for _, l := range lines {
			if strings.Contains(l, want) && strings.Contains(l, "(new)") {
				found = true
			}
		}
		if !found {
			t.Errorf("metric %q not reported as (new):\n%s", want, joined)
		}
	}
	if !strings.Contains(joined, "fleet_jobs_per_sec") || !strings.Contains(joined, "+31.3%") {
		t.Errorf("numeric delta missing:\n%s", joined)
	}
}

func TestDiffRemovedMetric(t *testing.T) {
	oldRep := mustParse(t, `{"a": 1, "legacy": 5}`)
	newRep := mustParse(t, `{"a": 1}`)
	joined := strings.Join(diff(oldRep, newRep), "\n")
	if !strings.Contains(joined, "legacy") || !strings.Contains(joined, "(removed)") {
		t.Errorf("want (removed) line for legacy, got:\n%s", joined)
	}
}

func TestDiffUnchangedOmitted(t *testing.T) {
	rep := mustParse(t, `{"go": "go1.22", "n": 3}`)
	// Same report on both sides: the numeric field still prints its
	// (zero) delta; the unchanged string is omitted.
	lines := diff(rep, rep)
	for _, l := range lines {
		if strings.Contains(l, "go1.22") {
			t.Errorf("unchanged string field printed: %q", l)
		}
	}
}

// TestParseFlattensRows: nested grids flatten to dotted keys with
// content-derived row labels, so a new column inside an existing row also
// lands on the informational "(new)" path rather than a shape mismatch.
func TestParseFlattensRows(t *testing.T) {
	m := mustParse(t, `{
		"cluster": [{"workers": 2, "jobs_per_sec": 10}],
		"conv": [{"scenario": "zipf", "policy": "insight", "rounds": 96}]
	}`)
	if _, ok := m["cluster.w2.jobs_per_sec"]; !ok {
		t.Errorf("cluster row not labeled by worker count: %v", m)
	}
	if _, ok := m["conv.zipf/insight.rounds"]; !ok {
		t.Errorf("convergence row not labeled by scenario/policy: %v", m)
	}

	oldRep := m
	newRep := mustParse(t, `{
		"cluster": [{"workers": 2, "jobs_per_sec": 12, "p99_ms": 4}],
		"conv": [{"scenario": "zipf", "policy": "insight", "rounds": 96}]
	}`)
	joined := strings.Join(diff(oldRep, newRep), "\n")
	if !strings.Contains(joined, "cluster.w2.p99_ms") || !strings.Contains(joined, "(new)") {
		t.Errorf("new nested metric not informational:\n%s", joined)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parse([]byte("not json"), "x.json"); err == nil {
		t.Fatal("want error for malformed report")
	}
}
