package fleet

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"clara/internal/analysis"
	"clara/internal/click"
	"clara/internal/core"
	"clara/internal/niccc"
	"clara/internal/nicsim"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// The trained tool is shared across tests (training is the expensive
// part; the trained models are read-only, which is exactly what the
// fleet relies on).
var (
	toolOnce sync.Once
	testTool *core.Clara
	toolErr  error
)

func quickTool(t testing.TB) *core.Clara {
	t.Helper()
	toolOnce.Do(func() {
		const seed = 5
		params := nicsim.DefaultParams()
		mods, err := click.Modules(click.Table2Order)
		if err != nil {
			toolErr = err
			return
		}
		pred, err := core.TrainPredictor(core.PredictorConfig{
			TrainPrograms: 50, Epochs: 6, Hidden: 16,
			CompactVocab: true, Seed: seed,
		}, core.CorpusProfile(mods))
		if err != nil {
			toolErr = err
			return
		}
		corpus := synth.AlgoCorpus(12, seed)
		for _, name := range []string{"tcpack", "udpipencap", "aggcounter"} {
			corpus = append(corpus, synth.LabeledProgram{
				Name: "click_" + name, Src: click.Get(name).Src, Label: synth.LabelNone,
			})
		}
		algo, err := core.TrainAlgoIdentifier(corpus, 48, seed)
		if err != nil {
			toolErr = err
			return
		}
		sm, err := core.TrainScaleout(core.ScaleoutConfig{
			TrainPrograms: 8, PacketsPerTrace: 400,
			CoreGrid: []int{2, 8, 16, 32, 48, 60},
			Params:   params, Seed: seed,
		}, pred)
		if err != nil {
			toolErr = err
			return
		}
		testTool = &core.Clara{Predictor: pred, AlgoID: algo, Scaleout: sm, Params: params}
	})
	if toolErr != nil {
		t.Fatalf("training quick tool: %v", toolErr)
	}
	return testTool
}

// libraryJobs builds the full 17-element × 3-workload batch the
// acceptance criteria name.
func libraryJobs(t testing.TB) []Job {
	t.Helper()
	var jobs []Job
	for _, name := range click.Table2Order {
		e := click.Get(name)
		if e == nil {
			t.Fatalf("unknown element %q", name)
		}
		mod, err := e.Module()
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range []traffic.Spec{traffic.SmallFlows, traffic.LargeFlows, traffic.MediumMix} {
			jobs = append(jobs, Job{
				Name: e.Name,
				Mod:  mod,
				PS:   core.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes},
				WL:   wl,
			})
		}
	}
	return jobs
}

// TestFleetLibraryEightWorkers runs the whole library batch on 8 workers
// (this is the test `go test -race` exercises for the concurrent path)
// and checks job accounting and cache behaviour: every module appears
// under 3 workloads, so exactly one prediction per module is computed
// and the rest are hits.
func TestFleetLibraryEightWorkers(t *testing.T) {
	tool := quickTool(t)
	jobs := libraryJobs(t)
	if len(jobs) < 17*3 {
		t.Fatalf("batch too small: %d jobs", len(jobs))
	}
	fl, err := New(tool, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	results, err := fl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s/%s) failed: %v", i, r.Name, r.Workload, r.Err)
		}
		if r.Name != jobs[i].Name || r.Workload != jobs[i].WL.Name {
			t.Fatalf("result %d out of order: got %s/%s want %s/%s",
				i, r.Name, r.Workload, jobs[i].Name, jobs[i].WL.Name)
		}
		if r.Insights == nil || r.Insights.Prediction == nil {
			t.Fatalf("job %d has no insights", i)
		}
	}
	s := fl.Stats()
	if s.JobsCompleted != int64(len(jobs)) || s.JobsFailed != 0 {
		t.Errorf("stats: %d completed, %d failed; want %d, 0", s.JobsCompleted, s.JobsFailed, len(jobs))
	}
	wantMisses := int64(17) // one per distinct module
	if s.CacheMisses != wantMisses || s.CacheHits != int64(len(jobs))-wantMisses {
		t.Errorf("cache: %d hits, %d misses; want %d, %d",
			s.CacheHits, s.CacheMisses, int64(len(jobs))-wantMisses, wantMisses)
	}
	if got := fl.cache.len(); got != 17 {
		t.Errorf("cache holds %d entries, want 17", got)
	}
	if s.Analyses.N != int64(len(jobs)) || s.Analyses.Mean() <= 0 {
		t.Errorf("histogram: n=%d mean=%s", s.Analyses.N, s.Analyses.Mean())
	}
	if s.Wall <= 0 {
		t.Error("no wall time recorded")
	}
}

// TestFleetSummaryTable sanity-checks the rendered batch table.
func TestFleetSummaryTable(t *testing.T) {
	tool := quickTool(t)
	jobs := libraryJobs(t)[:6]
	fl, err := New(tool, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := fl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	tab := Summary(results)
	lines := strings.Split(strings.TrimRight(tab, "\n"), "\n")
	if len(lines) != len(jobs)+1 {
		t.Fatalf("table has %d lines, want %d:\n%s", len(lines), len(jobs)+1, tab)
	}
	if !strings.Contains(lines[0], "NF") || !strings.Contains(lines[0], "CACHE") || !strings.Contains(lines[0], "LINT") {
		t.Errorf("bad header: %q", lines[0])
	}
	for _, r := range results[:2] {
		if !strings.Contains(tab, r.Name) {
			t.Errorf("table missing NF %q:\n%s", r.Name, tab)
		}
	}
}

// TestCacheSingleflight checks that concurrent misses on one key run the
// computation once, and that errors are not retained.
func TestCacheSingleflight(t *testing.T) {
	mod := click.Get("tcpack").MustModule()
	c := newPredCache()
	var mu sync.Mutex
	calls := 0
	compute := func() (*core.ModulePrediction, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return &core.ModulePrediction{Name: mod.Name}, nil
	}
	var wg sync.WaitGroup
	hits := make([]bool, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mp, hit, err := c.get(mod, niccc.AccelConfig{}, compute)
			if err != nil || mp == nil {
				t.Errorf("get: mp=%v err=%v", mp, err)
			}
			hits[i] = hit
		}(i)
	}
	wg.Wait()
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	nHits := 0
	for _, h := range hits {
		if h {
			nHits++
		}
	}
	if nHits != 15 {
		t.Errorf("%d hits, want 15", nHits)
	}

	// Distinct accel configs are distinct keys.
	_, hit, _ := c.get(mod, niccc.AccelConfig{CRCEngine: true}, compute)
	if hit || calls != 2 {
		t.Errorf("accel variant: hit=%v calls=%d, want miss and 2", hit, calls)
	}

	// Errors must not poison the key.
	fail := errors.New("boom")
	other := click.Get("aggcounter").MustModule()
	if _, _, err := c.get(other, niccc.AccelConfig{}, func() (*core.ModulePrediction, error) {
		return nil, fail
	}); !errors.Is(err, fail) {
		t.Errorf("error not propagated: %v", err)
	}
	mp, hit, err := c.get(other, niccc.AccelConfig{}, compute)
	if err != nil || hit || mp == nil {
		t.Errorf("after failure: mp=%v hit=%v err=%v; want recompute", mp, hit, err)
	}
}

// TestFleetJobValidation checks malformed batches fail up front.
func TestFleetJobValidation(t *testing.T) {
	tool := quickTool(t)
	fl, err := New(tool, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Run([]Job{{Name: "empty"}}); err == nil {
		t.Error("nil-module job accepted")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil tool accepted")
	}
}

// TestStatsRendering pins the stats snapshot arithmetic.
func TestStatsRendering(t *testing.T) {
	c := newCollector()
	c.record(Result{Elapsed: 1e6, CacheHit: true, Lint: analysis.Summary{Warnings: 1, Infos: 2}})
	c.record(Result{Elapsed: 3e6, Lint: analysis.Summary{Errors: 1}})
	c.record(Result{Elapsed: 2e9, Err: errors.New("x")})
	c.addWall(5e6)
	s := c.snapshot()
	if s.JobsCompleted != 2 || s.JobsFailed != 1 {
		t.Errorf("jobs: %+v", s)
	}
	if s.CacheHits != 1 || s.CacheMisses != 2 {
		t.Errorf("cache: %+v", s)
	}
	if s.LintErrors != 1 || s.LintWarnings != 1 || s.LintInfos != 2 {
		t.Errorf("lint counts: %+v", s)
	}
	if got := s.HitRate(); got < 0.33 || got > 0.34 {
		t.Errorf("hit rate %v", got)
	}
	if s.Analyses.N != 3 || s.Analyses.Max != 2e9 || s.Analyses.Min != 1e6 {
		t.Errorf("histogram: %+v", s.Analyses)
	}
	// Overflow bucket holds the 2s outlier.
	if s.Analyses.Counts[len(s.Analyses.Counts)-1] != 1 {
		t.Errorf("overflow bucket: %v", s.Analyses.Counts)
	}
	out := s.String()
	for _, want := range []string{"2 completed", "1 hits", "batch wall time"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}
