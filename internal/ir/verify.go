package ir

import "fmt"

// Verify checks structural well-formedness of a module: every block is
// terminated, branch targets are in range, operand IDs refer to defined
// values, slot and global references are valid, and the handler exists.
// It returns the first violation found.
func Verify(m *Module) error {
	if m.Handler() == nil {
		return fmt.Errorf("module %s: no %q function", m.Name, HandlerName)
	}
	for _, f := range m.Funcs {
		if err := verifyFunc(m, f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	defined := make([]bool, f.NumVals)
	for bi, b := range f.Blocks {
		if b.Index != bi {
			return fmt.Errorf("block %d has index %d", bi, b.Index)
		}
		t := b.Terminator()
		if t == nil {
			return fmt.Errorf("block b%d (%s) not terminated", bi, b.Name)
		}
		for ii, in := range b.Instrs {
			if in.Op.IsTerminator() && ii != len(b.Instrs)-1 {
				return fmt.Errorf("b%d: terminator %s not last", bi, in)
			}
			if in.ID >= 0 {
				if in.ID >= f.NumVals {
					return fmt.Errorf("b%d: value %%%d out of range", bi, in.ID)
				}
				if defined[in.ID] {
					return fmt.Errorf("b%d: value %%%d redefined", bi, in.ID)
				}
				defined[in.ID] = true
			}
			for _, a := range in.Args {
				switch a.Kind {
				case VInstr:
					if a.ID < 0 || a.ID >= f.NumVals {
						return fmt.Errorf("b%d: %s: bad operand %%%d", bi, in, a.ID)
					}
				case VParam:
					if a.ID < 0 || a.ID >= len(f.Params) {
						return fmt.Errorf("b%d: %s: bad param $%d", bi, in, a.ID)
					}
				case VConst:
				default:
					return fmt.Errorf("b%d: %s: invalid operand kind", bi, in)
				}
			}
			switch in.Op {
			case OpLLoad, OpLStore:
				if in.Slot < 0 || in.Slot >= f.NSlots {
					return fmt.Errorf("b%d: %s: bad slot", bi, in)
				}
			case OpGLoad, OpGStore:
				if m.Global(in.Global) == nil {
					return fmt.Errorf("b%d: %s: unknown global %q", bi, in, in.Global)
				}
			case OpBr:
				if in.True < 0 || in.True >= len(f.Blocks) {
					return fmt.Errorf("b%d: br target out of range", bi)
				}
			case OpCondBr:
				if in.True < 0 || in.True >= len(f.Blocks) ||
					in.False < 0 || in.False >= len(f.Blocks) {
					return fmt.Errorf("b%d: cbr target out of range", bi)
				}
				if len(in.Args) != 1 {
					return fmt.Errorf("b%d: cbr needs 1 operand", bi)
				}
			case OpRet:
				if f.Ret != Void && len(in.Args) != 1 {
					return fmt.Errorf("b%d: ret needs a value", bi)
				}
			}
		}
	}
	return nil
}

// Reachable returns the set of block indices reachable from the entry.
func Reachable(f *Func) []bool {
	seen := make([]bool, len(f.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[n].Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// LoopBlocks returns, for each block, whether it participates in a cycle of
// the CFG (i.e. is part of a loop). Used by feature extractors that look
// for "bounded-loop pointer chasing" patterns (paper §4.1).
func LoopBlocks(f *Func) []bool {
	n := len(f.Blocks)
	// Reachability closure via repeated DFS is fine at NF scale.
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		stack := []int{i}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range f.Blocks[u].Succs() {
				if !reach[i][s] {
					reach[i][s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	in := make([]bool, n)
	for i := 0; i < n; i++ {
		in[i] = reach[i][i]
	}
	return in
}
