package interp

import (
	"testing"
)

// Native counters must agree exactly with what the closure hooks report:
// the host profiler switched from hooks to counters, so any divergence
// would silently change every access profile.
func TestCountersMatchHooks(t *testing.T) {
	src := `
global u32 total;
map<u64,u64> conns[1024];
void handle() {
	u64 k = pkt_ip_src();
	u64 c = map_find(conns, k);
	map_insert(conns, k, c + 1);
	total += 1;
	if (pkt_ip_ttl() <= 1) { pkt_drop(); return; }
	pkt_send(1);
}
`
	mod := compile(t, "ctrhooks", src)
	run := func(m *Machine) {
		for i := 0; i < 200; i++ {
			p := tcpPacket(uint32(i%17), 2)
			if err := m.RunPacket(&p); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reference run: accumulate the same shapes via hooks.
	hm, err := New(mod, Config{Mode: NICMap})
	if err != nil {
		t.Fatal(err)
	}
	nb := len(hm.blocks)
	gidx := hm.gidx
	refBlock := make([]uint64, nb)
	refState := make([]uint64, len(mod.Globals)*nb)
	refAPI := make([]uint64, len(mod.Globals)*nb)
	hm.SetHooks(Hooks{
		OnBlock: func(b int) { refBlock[b]++ },
		OnState: func(g string, _ bool, _ uint64, b int) { refState[gidx[g]*nb+b]++ },
		OnAPI: func(_, g string, probes int, _ uint64, b int) {
			if g != "" && probes > 0 {
				refAPI[gidx[g]*nb+b] += uint64(probes)
			}
		},
	})
	run(hm)

	cm, err := New(mod, Config{Mode: NICMap})
	if err != nil {
		t.Fatal(err)
	}
	ctr := cm.EnableCounters()
	run(cm)

	if ctr.NBlocks != nb {
		t.Fatalf("NBlocks = %d, want %d", ctr.NBlocks, nb)
	}
	for b, want := range refBlock {
		if ctr.Block[b] != want {
			t.Errorf("Block[%d] = %d, want %d", b, ctr.Block[b], want)
		}
	}
	for i, want := range refState {
		if ctr.State[i] != want {
			t.Errorf("State[%d] = %d, want %d", i, ctr.State[i], want)
		}
	}
	for i, want := range refAPI {
		if ctr.API[i] != want {
			t.Errorf("API[%d] = %d, want %d", i, ctr.API[i], want)
		}
	}
}

// Machines for the same module share one compiled program, and const
// pooling must not let one machine's execution leak values into another:
// the pool region is read-only at runtime and all mutable state is
// per-machine.
func TestSharedProgramIsolation(t *testing.T) {
	src := `
global u32 count;
void handle() {
	count += 1;
	pkt_send(1);
}
`
	mod := compile(t, "shared", src)
	m1, err := New(mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if &m1.blocks[0] != &m2.blocks[0] {
		t.Error("machines for the same module should share compiled blocks")
	}
	for i := 0; i < 5; i++ {
		p := tcpPacket(1, 2)
		if err := m1.RunPacket(&p); err != nil {
			t.Fatal(err)
		}
	}
	p := tcpPacket(1, 2)
	if err := m2.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	v1, _ := m1.Scalar("count")
	v2, _ := m2.Scalar("count")
	if v1 != 5 || v2 != 1 {
		t.Errorf("count: m1=%d m2=%d, want 5 and 1", v1, v2)
	}
}
