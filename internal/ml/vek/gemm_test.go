package vek

import (
	"math"
	"math/rand"
	"testing"
)

// refGemm is the contract reference: per element, single accumulator,
// k ascending. Gemm must match it bitwise for every shape.
func refGemm(c, a, b []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := c[i*n+j]
			for p := 0; p < k; p++ {
				acc += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = acc
		}
	}
}

func randSlice(rng *rand.Rand, n int, avoidZero bool) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
		if avoidZero && s[i] == 0 {
			s[i] = 1e-9
		}
	}
	return s
}

func TestGemmMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, n, k int }{
		{0, 5, 5}, {5, 0, 5}, {5, 5, 0}, // empty
		{1, 1, 1}, {1, 17, 3}, {17, 1, 3}, // 1×N, N×1
		{4, 8, 4}, {8, 8, 8}, // tile multiples
		{5, 7, 3}, {6, 9, 11}, {13, 5, 28}, // non-multiples of the 4-row tile
		{3, 112, 28}, {9, 112, 28}, // the LSTM wavefront shape
	}
	for _, sh := range shapes {
		a := randSlice(rng, sh.m*sh.k, false)
		b := randSlice(rng, sh.k*sh.n, false)
		got := randSlice(rng, sh.m*sh.n, false)
		want := append([]float64(nil), got...)
		Gemm(got, a, b, sh.m, sh.n, sh.k)
		refGemm(want, a, b, sh.m, sh.n, sh.k)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("shape %dx%dx%d: C[%d] = %x, want %x",
					sh.m, sh.n, sh.k, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// The batched LSTM depends on Gemm reproducing a per-row GemvTAdd sweep
// bit-for-bit when A has no exact zeros (GemvTAdd skips zero rows; with
// none present the accumulation orders coincide).
func TestGemmMatchesGemvTAddRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range []struct{ m, n, k int }{{1, 112, 28}, {5, 112, 28}, {12, 33, 7}} {
		a := randSlice(rng, sh.m*sh.k, true)
		b := randSlice(rng, sh.k*sh.n, false)
		got := randSlice(rng, sh.m*sh.n, false)
		want := append([]float64(nil), got...)
		Gemm(got, a, b, sh.m, sh.n, sh.k)
		for i := 0; i < sh.m; i++ {
			// GemvTAdd(y, B, x): y += Bᵀ·x with B laid out k rows × n cols,
			// i.e. one C row with A row i as x.
			GemvTAdd(want[i*sh.n:(i+1)*sh.n], b, a[i*sh.k:(i+1)*sh.k], sh.k, sh.n)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("shape %dx%dx%d: C[%d] = %v, want %v", sh.m, sh.n, sh.k, i, got[i], want[i])
			}
		}
	}
}

func TestGemmNTMatchesDotRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range []struct{ m, n, k int }{{0, 3, 3}, {1, 1, 5}, {3, 4, 28}, {7, 5, 13}} {
		a := randSlice(rng, sh.m*sh.k, false)
		b := randSlice(rng, sh.n*sh.k, false)
		got := randSlice(rng, sh.m*sh.n, false)
		want := append([]float64(nil), got...)
		GemmNT(got, a, b, sh.m, sh.n, sh.k)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want[i*sh.n+j] += Dot(a[i*sh.k:(i+1)*sh.k], b[j*sh.k:(j+1)*sh.k])
			}
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("shape %dx%dx%d: C[%d] = %v, want %v", sh.m, sh.n, sh.k, i, got[i], want[i])
			}
		}
	}
}

func TestDotI8Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 3, 4, 5, 28, 127} {
		a := make([]int8, n)
		b := make([]int8, n)
		var want int32
		for i := range a {
			a[i] = int8(rng.Intn(256) - 128)
			b[i] = int8(rng.Intn(256) - 128)
			want += int32(a[i]) * int32(b[i])
		}
		if got := DotI8(a, b); got != want {
			t.Fatalf("n=%d: DotI8 = %d, want %d", n, got, want)
		}
	}
	// Worst case magnitude: all -128·-128 at the LSTM hidden size.
	n := 28
	a := make([]int8, n)
	b := make([]int8, n)
	for i := range a {
		a[i], b[i] = -128, -128
	}
	if got, want := DotI8(a, b), int32(n*128*128); got != want {
		t.Fatalf("saturated DotI8 = %d, want %d", got, want)
	}
}

func TestGemmNTI8MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range []struct{ m, n, k int }{{0, 4, 4}, {1, 1, 1}, {3, 112, 28}, {5, 7, 9}} {
		a := make([]int8, sh.m*sh.k)
		b := make([]int8, sh.n*sh.k)
		for i := range a {
			a[i] = int8(rng.Intn(256) - 128)
		}
		for i := range b {
			b[i] = int8(rng.Intn(256) - 128)
		}
		got := make([]int32, sh.m*sh.n)
		want := make([]int32, sh.m*sh.n)
		for i := range got {
			got[i] = int32(rng.Intn(100))
			want[i] = got[i]
		}
		GemmNTI8(got, a, b, sh.m, sh.n, sh.k)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				for p := 0; p < sh.k; p++ {
					want[i*sh.n+j] += int32(a[i*sh.k+p]) * int32(b[j*sh.k+p])
				}
			}
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %dx%dx%d: C[%d] = %d, want %d", sh.m, sh.n, sh.k, i, got[i], want[i])
			}
		}
	}
}

func TestTypedArenas(t *testing.T) {
	var a8 ArenaI8
	var a32 ArenaI32
	for round := 0; round < 3; round++ {
		s8 := a8.Take(37)
		s32 := a32.Take(53)
		for i := range s8 {
			if s8[i] != 0 {
				t.Fatalf("ArenaI8.Take not zeroed at %d (round %d)", i, round)
			}
			s8[i] = int8(i)
		}
		for i := range s32 {
			if s32[i] != 0 {
				t.Fatalf("ArenaI32.Take not zeroed at %d (round %d)", i, round)
			}
			s32[i] = int32(i)
		}
		// Second Take must not alias the first.
		t8 := a8.Take(37)
		if &t8[0] == &s8[0] {
			t.Fatal("ArenaI8 second Take aliases first")
		}
		a8.Reset()
		a32.Reset()
	}
}
