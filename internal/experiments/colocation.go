package experiments

import (
	"fmt"
	"math/rand"

	"clara/internal/core"
	"clara/internal/lang"
	"clara/internal/nicsim"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// Figure14a reproduces the colocation ranking accuracy: top-1/2/3 accuracy
// of the pairwise ranker on random groups of synthesized NFs, for all four
// training objectives (§5.7: 70+% top-1 and 85+% top-3 with Th.Tot).
func Figure14a(ctx *Context) (*Table, error) {
	pred, err := ctx.Predictor()
	if err != nil {
		return nil, err
	}
	ccfg := core.ColocConfig{Params: ctx.Cfg.Params, Seed: ctx.Cfg.Seed}
	groups := 30
	groupSize := 4
	if ctx.Cfg.Quick {
		ccfg.TrainNFs = 8
		ccfg.PairsMax = 20
		ccfg.Packets = 500
		groups = 8
	}
	co, err := core.TrainColocator(ccfg, pred, core.ObjThroughputTotal)
	if err != nil {
		return nil, err
	}

	// Evaluation candidates: fresh synthesized NFs, measured exhaustively
	// per group so the ranker's choice can be graded against the truth.
	nEval := 10
	if ctx.Cfg.Quick {
		nEval = 6
	}
	var cands []*core.ColocNF
	for i := 0; i < nEval; i++ {
		mod, _, err := synth.GenerateModule(synth.Config{
			Profile:   synth.UniformProfile(),
			Seed:      ctx.Cfg.Seed + 99000 + int64(i)*23,
			StateBias: 0.3 + 3.5*float64(i%5)/4,
		}, lang.Compile)
		if err != nil {
			return nil, err
		}
		nf := &nicsim.NF{Name: fmt.Sprintf("eval%d", i), Mod: mod}
		c, err := core.PrepareColocNF(nf, traffic.MediumMix, ctx.packets(1200), 24, ctx.Cfg.Params, pred)
		if err != nil {
			return nil, err
		}
		cands = append(cands, c)
	}

	t := &Table{
		ID:     "figure14a",
		Title:  "Colocation ranking accuracy over random NF groups",
		Header: []string{"objective", "top-1", "top-2", "top-3"},
	}
	rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 777))
	for _, obj := range []core.RankObjective{
		core.ObjThroughputTotal, core.ObjThroughputAvg,
		core.ObjLatencyTotal, core.ObjLatencyAvg,
	} {
		co.Retrain(obj)
		top := [3]int{}
		for g := 0; g < groups; g++ {
			// Pick a random group and measure every pair's true
			// friendliness.
			perm := rng.Perm(len(cands))[:groupSize]
			group := make([]*core.ColocNF, groupSize)
			for i, pi := range perm {
				group[i] = cands[pi]
			}
			type pairScore struct {
				i, j  int
				truth float64
			}
			var pairsList []pairScore
			for i := 0; i < groupSize; i++ {
				for j := i + 1; j < groupSize; j++ {
					o, err := core.MeasurePair(group[i], group[j], 24, ctx.Cfg.Params)
					if err != nil {
						return nil, err
					}
					pairsList = append(pairsList, pairScore{i, j, o.Friendliness[obj]})
				}
			}
			bestTruth := -1.0
			scores := make([]float64, len(pairsList))
			for k, p := range pairsList {
				if p.truth > bestTruth {
					bestTruth = p.truth
				}
				scores[k] = co.Score(group[p.i], group[p.j])
			}
			// Tie-aware success: a suggestion counts if it is within one
			// point of the measured best (colocations this close are
			// interchangeable in practice).
			order := make([]int, len(pairsList))
			for k := range order {
				order[k] = k
			}
			for a := 1; a < len(order); a++ {
				for b := a; b > 0 && scores[order[b]] > scores[order[b-1]]; b-- {
					order[b], order[b-1] = order[b-1], order[b]
				}
			}
			for k := 0; k < 3; k++ {
				hit := false
				for _, oi := range order[:k+1] {
					if pairsList[oi].truth >= bestTruth-0.01 {
						hit = true
					}
				}
				if hit {
					top[k]++
				}
			}
		}
		t.AddRow(obj.String(),
			pct(float64(top[0])/float64(groups)),
			pct(float64(top[1])/float64(groups)),
			pct(float64(top[2])/float64(groups)))
	}
	t.Notef("success@k = a top-k suggestion within 1 point of the measured best")
	t.Notef("paper: Th.Tot objective best, 70+%% top-1 and 85+%% top-3")
	return t, nil
}

// Figure14bc reproduces the real-NF colocation measurement: throughput
// degradation and latency increase for all six pairs of the four complex
// NFs, ordered by Clara's ranking (§5.7: degradation varies up to ~15
// points across strategies; top choices degrade least).
func Figure14bc(ctx *Context) (*Table, error) {
	pred, err := ctx.Predictor()
	if err != nil {
		return nil, err
	}
	ccfg := core.ColocConfig{Params: ctx.Cfg.Params, Seed: ctx.Cfg.Seed}
	if ctx.Cfg.Quick {
		ccfg.TrainNFs = 8
		ccfg.PairsMax = 20
		ccfg.Packets = 500
	}
	co, err := core.TrainColocator(ccfg, pred, core.ObjThroughputTotal)
	if err != nil {
		return nil, err
	}

	var cands []*core.ColocNF
	for _, name := range complexNFs {
		// Small flows defeat the EMEM cache, so colocated NFs genuinely
		// meet at the memory subsystem (§4.5).
		c, err := core.PrepareColocNF(elementNF(name, nil), traffic.SmallFlows,
			ctx.packets(2000), 24, ctx.Cfg.Params, pred)
		if err != nil {
			return nil, err
		}
		cands = append(cands, c)
	}
	ranked := co.RankPairs(cands)

	t := &Table{
		ID:     "figure14bc",
		Title:  "Colocation of the four complex NFs, best-ranked first",
		Header: []string{"pair", "norm.throughput", "latA co/solo(us)", "latB co/solo(us)"},
	}
	var norms []float64
	var spear []float64
	for rank, p := range ranked {
		a, b := cands[p[0]], cands[p[1]]
		o, err := core.MeasurePair(a, b, 24, ctx.Cfg.Params)
		if err != nil {
			return nil, err
		}
		rs, err := nicsim.SimulateColocation(ctx.Cfg.Params, []nicsim.Part{
			{TS: a.Traces, Cores: 24}, {TS: b.Traces, Cores: 24},
		})
		if err != nil {
			return nil, err
		}
		norm := o.Friendliness[core.ObjThroughputTotal]
		norms = append(norms, norm)
		spear = append(spear, float64(rank))
		t.AddRow(a.Name+"+"+b.Name, f3(norm),
			fmt.Sprintf("%s/%s", f2(rs[0].AvgLatencyUs), f2(a.Solo.AvgLatencyUs)),
			fmt.Sprintf("%s/%s", f2(rs[1].AvgLatencyUs), f2(b.Solo.AvgLatencyUs)))
	}
	minN, maxN := norms[0], norms[0]
	for _, v := range norms {
		if v < minN {
			minN = v
		}
		if v > maxN {
			maxN = v
		}
	}
	t.Notef("normalized throughput spread %.1f points across strategies (paper: up to ~15)", 100*(maxN-minN))
	// Is the ranking consistent with measured friendliness?
	misorder := 0
	for i := 0; i+1 < len(norms); i++ {
		if norms[i] < norms[i+1]-1e-9 {
			misorder++
		}
	}
	t.Notef("ranking inversions vs measured truth: %d/%d adjacent pairs", misorder, len(norms)-1)
	return t, nil
}
