package click

// Small elements: the stateless header manipulators and light stateful
// counters of Table 2's upper rows.

// AnonIPAddr anonymizes source and destination addresses with a keyed
// multiplicative mix (prefix-preserving enough for lab traces).
var AnonIPAddr = register(&Element{
	Name:     "anonipaddr",
	Desc:     "IP address anonymizer",
	Insights: []string{"pred", "scale"},
	Src: `
// anonipaddr: anonymize addresses with a keyed Feistel-ish mix so traces
// can leave the lab. Stateless: every packet is rewritten independently.
void handle() {
	if (pkt_eth_type() != 0x0800) { pkt_send(0); return; }
	u32 key = 0x9e3779b9;
	u32 src = pkt_ip_src();
	u32 dst = pkt_ip_dst();
	u32 a = (src ^ key) * 2654435761;
	a = a ^ (a >> 13);
	a = a * 2246822519;
	a = a ^ (a >> 16);
	u32 b = (dst + key) * 2654435761;
	b = b ^ (b >> 15);
	b = b * 3266489917;
	b = b ^ (b >> 13);
	// Preserve the /8 so operators can still eyeball networks.
	pkt_set_ip_src((src & 0xff000000) | (a & 0x00ffffff));
	pkt_set_ip_dst((dst & 0xff000000) | (b & 0x00ffffff));
	pkt_csum_update();
	pkt_send(0);
}
`,
})

// TCPAck turns an inbound TCP segment into its acknowledgment.
var TCPAck = register(&Element{
	Name:     "tcpack",
	Desc:     "TCP acknowledgment generator",
	Insights: []string{"pred", "scale"},
	Src: `
// tcpack: acknowledge inbound TCP segments (reflector-style).
void handle() {
	if (pkt_ip_proto() != 6) { pkt_drop(); return; }
	u8 flags = pkt_tcp_flags();
	if ((flags & 0x04) != 0) { pkt_drop(); return; } // RST
	u32 seq = pkt_tcp_seq();
	u16 seg = pkt_ip_len() - (u16(pkt_ip_hl()) << 2) - (u16(pkt_tcp_off()) << 2);
	u32 ackno = seq + u32(seg);
	if ((flags & 0x02) != 0) { ackno += 1; } // SYN consumes a sequence number
	if ((flags & 0x01) != 0) { ackno += 1; } // FIN too
	u32 s = pkt_ip_src();
	pkt_set_ip_src(pkt_ip_dst());
	pkt_set_ip_dst(s);
	u16 sp = pkt_tcp_sport();
	pkt_set_tcp_sport(pkt_tcp_dport());
	pkt_set_tcp_dport(sp);
	pkt_set_tcp_ack(ackno);
	pkt_set_tcp_flags(0x10);
	pkt_csum_update();
	pkt_send(1);
}
`,
})

// UDPIPEncap rewrites packets into a fixed UDP/IP encapsulation.
var UDPIPEncap = register(&Element{
	Name:     "udpipencap",
	Desc:     "UDP/IP encapsulation",
	Insights: []string{"pred", "scale"},
	Src: `
// udpipencap: stamp a canonical UDP/IP header onto the packet (tunnel
// ingress). The outer addresses are configuration constants.
void handle() {
	u32 tunnel_src = 0x0a000001;
	u32 tunnel_dst = 0x0a0000fe;
	u16 base_port = 4789;
	// Spread tunnels across 16 UDP source ports for RSS at the far end.
	u16 entropy = u16(pkt_ip_src() ^ pkt_ip_dst());
	entropy = entropy ^ (entropy >> 8);
	pkt_set_ip_src(tunnel_src);
	pkt_set_ip_dst(tunnel_dst);
	pkt_set_udp_sport(base_port + (entropy & 15));
	pkt_set_udp_dport(base_port);
	u8 ttl = pkt_ip_ttl();
	if (ttl <= 1) { pkt_drop(); return; }
	pkt_set_ip_ttl(64);
	pkt_csum_update();
	pkt_send(2);
}
`,
})

// ForceTCP coerces packets into well-formed TCP (test-harness element).
var ForceTCP = register(&Element{
	Name:     "forcetcp",
	Desc:     "coerce packets into valid TCP",
	Insights: []string{"pred", "scale"},
	Src: `
// forcetcp: Click's test element that rewrites arbitrary packets into
// plausible TCP segments (used to feed TCP-only elements).
void handle() {
	if (pkt_eth_type() != 0x0800) { pkt_drop(); return; }
	u16 sport = pkt_tcp_sport();
	u16 dport = pkt_tcp_dport();
	if (sport == 0) { sport = 1024 + (u16(pkt_ip_src()) & 0x3ff); }
	if (dport == 0) { dport = 80; }
	u8 flags = pkt_tcp_flags();
	// Strip illegal flag combinations: SYN+FIN, SYN+RST.
	if ((flags & 0x03) == 0x03) { flags = flags & 0xfe; }
	if ((flags & 0x06) == 0x06) { flags = flags & 0xfb; }
	if (flags == 0) { flags = 0x10; }
	u16 hl = u16(pkt_ip_hl()) << 2;
	if (hl < 20) { pkt_drop(); return; }
	u16 tl = pkt_ip_len();
	if (tl < hl + 20) { pkt_drop(); return; }
	pkt_set_tcp_sport(sport);
	pkt_set_tcp_dport(dport);
	pkt_set_tcp_flags(flags);
	pkt_csum_update();
	pkt_send(0);
}
`,
})

// TCPResp crafts a canned TCP response (SYN-ACK or ACK echo).
var TCPResp = register(&Element{
	Name:     "tcpresp",
	Desc:     "TCP responder",
	Insights: []string{"pred", "scale"},
	Src: `
// tcpresp: answer SYNs with SYN-ACKs and data with ACKs; a miniature
// server front end used for load testing.
u32 cookie(u32 a, u32 b, u16 p) {
	u32 h = a ^ (b * 2654435761) ^ u32(p);
	h = h ^ (h >> 11);
	h = h * 2246822519;
	h = h ^ (h >> 15);
	return h;
}

void handle() {
	if (pkt_ip_proto() != 6) { pkt_drop(); return; }
	u8 flags = pkt_tcp_flags();
	u32 s = pkt_ip_src();
	u32 d = pkt_ip_dst();
	u16 sp = pkt_tcp_sport();
	u16 dp = pkt_tcp_dport();
	// Capture the inbound sequence number before any header rewriting.
	u32 iseq = pkt_tcp_seq();
	pkt_set_ip_src(d);
	pkt_set_ip_dst(s);
	pkt_set_tcp_sport(dp);
	pkt_set_tcp_dport(sp);
	if ((flags & 0x02) != 0) {
		// SYN: reply SYN-ACK with a stateless cookie as our ISN.
		u32 isn = cookie(s, d, sp);
		pkt_set_tcp_seq(isn);
		pkt_set_tcp_ack(iseq + 1);
		pkt_set_tcp_flags(0x12);
	} else if ((flags & 0x01) != 0) {
		// FIN: acknowledge and close.
		pkt_set_tcp_ack(iseq + 1);
		pkt_set_tcp_flags(0x11);
	} else {
		u16 seg = pkt_ip_len() - (u16(pkt_ip_hl()) << 2) - (u16(pkt_tcp_off()) << 2);
		pkt_set_tcp_ack(iseq + u32(seg));
		pkt_set_tcp_flags(0x10);
	}
	pkt_csum_update();
	pkt_send(1);
}
`,
})

// AggCounter aggregates packet and byte counts by address prefix.
var AggCounter = register(&Element{
	Name:     "aggcounter",
	Desc:     "per-prefix packet/byte aggregation",
	Stateful: true,
	Insights: []string{"pred", "scale", "pack"},
	Src: `
// aggcounter: aggregate traffic by /16 prefix with global tallies. The
// scalar tallies are accessed together on every packet — prime coalescing
// material (Figure 13).
global u32 agg_pkts[4096];
global u32 agg_bytes[4096];
global u32 total_pkts;
global u32 total_bytes;
global u32 nonip_pkts;
global u32 max_bucket;

void handle() {
	if (pkt_eth_type() != 0x0800) {
		nonip_pkts += 1;
		pkt_send(0);
		return;
	}
	u32 bucket = (pkt_ip_src() >> 16) & 4095;
	u32 len = u32(pkt_len());
	agg_pkts[bucket] += 1;
	agg_bytes[bucket] += len;
	total_pkts += 1;
	total_bytes += len;
	if (agg_pkts[bucket] > max_bucket) { max_bucket = agg_pkts[bucket]; }
	pkt_send(0);
}
`,
})

// TimeFilter drops packets outside a rolling admission window.
var TimeFilter = register(&Element{
	Name:     "timefilter",
	Desc:     "time-window admission filter",
	Stateful: true,
	Insights: []string{"pred", "scale", "pack"},
	Src: `
// timefilter: admit packets within a rolling time window and keep window
// accounting. Window state scalars travel together (Figure 13).
global u64 win_start;
global u64 win_end;
global u32 win_pkts;
global u32 win_bytes;
global u32 dropped_early;
global u32 dropped_late;
global u32 windows_rolled;

void handle() {
	u64 now = pkt_time();
	if (win_end == 0) {
		win_start = now;
		win_end = now + 1000000; // 1ms windows
	}
	if (now < win_start) {
		dropped_early += 1;
		pkt_drop();
		return;
	}
	if (now > win_end) {
		// Roll the window forward; carry nothing over.
		win_start = win_end;
		win_end = win_end + 1000000;
		win_pkts = 0;
		win_bytes = 0;
		windows_rolled += 1;
	}
	if (win_pkts >= 100000) {
		dropped_late += 1;
		pkt_drop();
		return;
	}
	win_pkts += 1;
	win_bytes += u32(pkt_len());
	pkt_send(0);
}
`,
})

// TCPGen generates TCP load and tracks connection progress.
var TCPGen = register(&Element{
	Name:     "tcpgen",
	Desc:     "TCP traffic generator",
	Stateful: true,
	Insights: []string{"pred", "scale", "pack"},
	Src: `
// tcpgen: rewrite incoming packets into generated TCP load, tracking a
// single generator connection's progress. The port pair and the
// ACK-machine scalars cluster separately; good_pkt/bad_pkt are never
// accessed with them (the §5.6 example).
global u32 gen_init;
global u32 tcp_state;
global u32 send_next;
global u32 recv_next;
global u32 iss;
global u16 gen_sport;
global u16 gen_dport;
global u32 good_pkt;
global u32 bad_pkt;

void handle() {
	if (pkt_ip_proto() != 6) {
		bad_pkt += 1;
		pkt_drop();
		return;
	}
	if (gen_init == 0) {
		gen_init = 1;
		gen_sport = 33000 + (u16(rand32()) & 8191);
		gen_dport = 80;
		iss = rand32();
		send_next = iss + 1;
		tcp_state = 1; // SYN sent
	}
	pkt_set_tcp_sport(gen_sport);
	pkt_set_tcp_dport(gen_dport);
	u8 flags = pkt_tcp_flags();
	if (tcp_state == 1 && (flags & 0x12) == 0x12) {
		// SYN-ACK: move to established.
		if (pkt_tcp_ack() == iss + 1) {
			tcp_state = 2;
			recv_next = pkt_tcp_seq() + 1;
			good_pkt += 1;
		} else {
			bad_pkt += 1;
		}
	} else if (tcp_state == 2) {
		u16 seg = pkt_ip_len() - (u16(pkt_ip_hl()) << 2) - (u16(pkt_tcp_off()) << 2);
		if (pkt_tcp_seq() == recv_next) {
			recv_next += u32(seg);
			good_pkt += 1;
		} else {
			bad_pkt += 1;
		}
	}
	pkt_set_tcp_seq(send_next);
	pkt_set_tcp_ack(recv_next);
	send_next += 64;
	pkt_set_tcp_flags(0x10);
	pkt_csum_update();
	pkt_send(3);
}
`,
})

// WebTCP tracks server-side TCP connection health (Figure 13's fourth
// element).
var WebTCP = register(&Element{
	Name:     "webtcp",
	Desc:     "web-server TCP state tracker",
	Stateful: true,
	Insights: []string{"pred", "scale", "pack"},
	Src: `
// webtcp: track web-server connection health: handshake progress, bytes
// in flight, and retransmission symptoms.
global u32 syn_seen;
global u32 est_seen;
global u32 fin_seen;
global u32 rst_seen;
global u32 bytes_in;
global u32 bytes_out;
global u32 retrans;
global u32 last_seq;

void handle() {
	if (pkt_ip_proto() != 6) { pkt_drop(); return; }
	u8 flags = pkt_tcp_flags();
	u16 seg = pkt_ip_len() - (u16(pkt_ip_hl()) << 2) - (u16(pkt_tcp_off()) << 2);
	if ((flags & 0x02) != 0) { syn_seen += 1; }
	if ((flags & 0x10) != 0 && (flags & 0x02) == 0) { est_seen += 1; }
	if ((flags & 0x01) != 0) { fin_seen += 1; }
	if ((flags & 0x04) != 0) { rst_seen += 1; pkt_drop(); return; }
	u32 seq = pkt_tcp_seq();
	if (seq == last_seq && seg > 0) { retrans += 1; }
	last_seq = seq;
	if (pkt_tcp_dport() == 80 || pkt_tcp_dport() == 443) {
		bytes_in += u32(seg);
	} else {
		bytes_out += u32(seg);
	}
	pkt_send(0);
}
`,
})
