package core

import (
	"fmt"
	"sort"
	"testing"

	"clara/internal/lang"
	"clara/internal/nicsim"
	"clara/internal/synth"
	"clara/internal/traffic"
)

func TestDebugColoc(t *testing.T) {
	p := getPredictor(t)
	cfg := ColocConfig{Packets: 1200, Seed: 42}
	co, err := TrainColocator(cfg, p, ObjThroughputTotal)
	if err != nil {
		t.Fatal(err)
	}
	var fr []float64
	good, total := 0, 0
	scores := make([]float64, len(co.Outcomes))
	for i, o := range co.Outcomes {
		fr = append(fr, o.Friendliness[ObjThroughputTotal])
		scores[i] = co.ranker.Score(o.Features)
	}
	for i := range co.Outcomes {
		for j := i + 1; j < len(co.Outcomes); j++ {
			fi, fj := co.Outcomes[i].Friendliness[0], co.Outcomes[j].Friendliness[0]
			if fi == fj {
				continue
			}
			total++
			if (scores[i] > scores[j]) == (fi > fj) {
				good++
			}
		}
	}
	sort.Float64s(fr)
	fmt.Printf("friendliness: min=%.3f med=%.3f max=%.3f\n", fr[0], fr[len(fr)/2], fr[len(fr)-1])
	fmt.Printf("training concordance: %d/%d = %.2f\n", good, total, float64(good)/float64(total))

	// Eval transfer: fresh candidates, all pairs measured.
	params := nicsim.DefaultParams()
	var cands []*ColocNF
	for i := 0; i < 8; i++ {
		mod, _, err := synth.GenerateModule(synth.Config{
			Profile:   synth.UniformProfile(),
			Seed:      42 + 99000 + int64(i)*23,
			StateBias: 0.3 + 3.5*float64(i%5)/4,
		}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		c, err := PrepareColocNF(&nicsim.NF{Name: fmt.Sprintf("e%d", i), Mod: mod},
			traffic.MediumMix, 1200, 24, params, p)
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, c)
	}
	type pe struct{ f, s float64 }
	var pes []pe
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			o, err := MeasurePair(cands[i], cands[j], 24, params)
			if err != nil {
				t.Fatal(err)
			}
			pes = append(pes, pe{o.Friendliness[0], co.Score(cands[i], cands[j])})
		}
	}
	eg, et := 0, 0
	for i := range pes {
		for j := i + 1; j < len(pes); j++ {
			if pes[i].f == pes[j].f {
				continue
			}
			et++
			if (pes[i].s > pes[j].s) == (pes[i].f > pes[j].f) {
				eg++
			}
		}
	}
	fmt.Printf("eval concordance: %d/%d = %.2f\n", eg, et, float64(eg)/float64(et))
	for i := 0; i < 6 && i < len(pes); i++ {
		fmt.Printf("eval pair f=%.3f s=%.3f\n", pes[i].f, pes[i].s)
	}
}
