package core

import (
	"sort"

	"clara/internal/ir"
	"clara/internal/lang"
	"clara/internal/ml"
	"clara/internal/synth"
)

// This file implements algorithm identification (§4.1): classify NF code
// as containing CRC or LPM logic that the SmartNIC's ASIC engines can
// replace. Features are mined instruction subsequences (the Sequential
// Pattern Extraction of [29]) selected for high support and confidence,
// augmented with the manual features the paper names (bitwise-operation
// density, bounded-loop pointer chasing), classified by a one-vs-rest SVM.

// Algorithm labels (aliases of the synth corpus labels).
const (
	AlgoNone = synth.LabelNone
	AlgoCRC  = synth.LabelCRC
	AlgoLPM  = synth.LabelLPM
)

// AlgoName renders a label.
func AlgoName(label int) string {
	switch label {
	case AlgoCRC:
		return "CRC"
	case AlgoLPM:
		return "LPM"
	default:
		return "none"
	}
}

// spe mines frequent word n-grams per class.
type gramStat struct {
	gram    string
	support [3]float64 // per-label program frequency
}

// blockGrams returns the distinct word n-grams (n = 2..3) of the given
// blocks (subsequences never cross block boundaries, like the paper's
// per-block sequences).
func blockGrams(m *ir.Module, blocks []int) map[string]bool {
	out := map[string]bool{}
	f := m.Handler()
	for _, bi := range blocks {
		words := ir.BlockWords(f.Blocks[bi], true)
		for n := 2; n <= 3; n++ {
			for i := 0; i+n <= len(words); i++ {
				g := words[i]
				for k := 1; k < n; k++ {
					g += "|" + words[i+k]
				}
				out[g] = true
			}
		}
	}
	return out
}

// programGrams returns all grams of the handler.
func programGrams(m *ir.Module) map[string]bool {
	return blockGrams(m, allBlocks(m))
}

func allBlocks(m *ir.Module) []int {
	f := m.Handler()
	out := make([]int, len(f.Blocks))
	for i := range out {
		out[i] = i
	}
	return out
}

// loopRegions decomposes the handler into candidate algorithm regions: the
// connected loop components of the CFG, each widened by one successor ring
// (exit tests and epilogues carry signal too). The paper's classifier
// labels NF code blocks, not whole programs (§4.1); region granularity is
// what lets a CRC kernel inside a large NF stand out.
func loopRegions(m *ir.Module) [][]int {
	f := m.Handler()
	inLoop := ir.LoopBlocks(f)
	seen := make([]bool, len(f.Blocks))
	var regions [][]int
	for start := range f.Blocks {
		if !inLoop[start] || seen[start] {
			continue
		}
		// Flood-fill the loop component over CFG edges restricted to loop
		// blocks.
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range f.Blocks[u].Succs() {
				if inLoop[v] && !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		// Widen with the immediate non-loop successors.
		ring := map[int]bool{}
		for _, u := range comp {
			for _, v := range f.Blocks[u].Succs() {
				if !inLoop[v] {
					ring[v] = true
				}
			}
		}
		for v := range ring {
			comp = append(comp, v)
		}
		sortInts(comp)
		regions = append(regions, comp)
	}
	return regions
}

func sortInts(xs []int) { sort.Ints(xs) }

// AlgoIdentifier is the trained §4.1 classifier.
type AlgoIdentifier struct {
	Grams     []string // selected subsequence features, in feature order
	GramClass []int    // the positive class each gram was mined for
	svm       *ml.SVM
}

// AlgoFeatureCount is the number of manual features appended after the
// mined subsequences and the two per-class gram-coverage aggregates.
const AlgoFeatureCount = 6

// manualFeatures computes the hand-crafted features of §4.1 over the whole
// handler.
func manualFeatures(m *ir.Module) []float64 {
	return manualFeaturesFor(m, allBlocks(m))
}

// manualFeaturesFor computes the hand-crafted features over a block subset.
func manualFeaturesFor(m *ir.Module, blocks []int) []float64 {
	f := m.Handler()
	loops := ir.LoopBlocks(f)
	var total, bitwise, shifts, cmps float64
	pointerChase := 0.0
	loopState := 0.0

	// Defining instruction per value, and stores per stack slot, for
	// dependence walks: locals are explicit slot traffic in the IR, so the
	// chain must flow through slot stores.
	defs := make(map[int]*ir.Instr)
	slotStores := map[int][]*ir.Instr{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ID >= 0 {
				defs[in.ID] = in
			}
			if in.Op == ir.OpLStore {
				slotStores[in.Slot] = append(slotStores[in.Slot], in)
			}
		}
	}
	// dependsOnLoad reports whether v's def chain (bounded) reaches a
	// stateful load — the "moving from one address to a child address"
	// trait.
	visitedSlots := map[int]bool{}
	var dependsOnLoad func(v ir.Value, depth int) bool
	dependsOnLoad = func(v ir.Value, depth int) bool {
		if depth <= 0 || v.Kind != ir.VInstr {
			return false
		}
		in := defs[v.ID]
		if in == nil {
			return false
		}
		switch in.Op {
		case ir.OpGLoad:
			return true
		case ir.OpLLoad:
			if visitedSlots[in.Slot] {
				return false
			}
			visitedSlots[in.Slot] = true
			for _, st := range slotStores[in.Slot] {
				if dependsOnLoad(st.Args[0], depth-1) {
					return true
				}
			}
			return false
		}
		for _, a := range in.Args {
			if dependsOnLoad(a, depth-1) {
				return true
			}
		}
		return false
	}

	for _, bi := range blocks {
		b := f.Blocks[bi]
		for _, in := range b.Instrs {
			if !in.Op.IsCompute() && !in.Op.IsStatefulMem() {
				continue
			}
			total++
			switch in.Op {
			case ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot:
				bitwise++
			case ir.OpShl, ir.OpLShr:
				shifts++
			case ir.OpICmp:
				cmps++
			}
			if loops[bi] && in.Op.IsStatefulMem() {
				loopState++
				if in.Op == ir.OpGLoad && len(in.Args) == 1 {
					visitedSlots = map[int]bool{}
					if dependsOnLoad(in.Args[0], 8) {
						pointerChase = 1
					}
				}
			}
		}
	}
	if total == 0 {
		total = 1
	}
	return []float64{
		bitwise / total,
		shifts / total,
		cmps / total,
		pointerChase,
		loopState / total,
		float64(len(blocks)) / 16,
	}
}

// TrainAlgoIdentifier mines subsequence features from the labeled corpus
// and fits the SVM. maxGrams bounds the mined feature count.
func TrainAlgoIdentifier(corpus []synth.LabeledProgram, maxGrams int, seed int64) (*AlgoIdentifier, error) {
	if maxGrams == 0 {
		maxGrams = 48
	}
	type labeled struct {
		m     *ir.Module
		label int
	}
	var progs []labeled
	counts := [3]float64{}
	gramFreq := map[string]*gramStat{}
	for _, p := range corpus {
		m, err := lang.Compile(p.Name, p.Src)
		if err != nil {
			return nil, err
		}
		progs = append(progs, labeled{m, p.Label})
		counts[p.Label]++
		for g := range programGrams(m) {
			gs := gramFreq[g]
			if gs == nil {
				gs = &gramStat{gram: g}
				gramFreq[g] = gs
			}
			gs.support[p.Label]++
		}
	}

	// Select grams with high support in a positive class and high
	// confidence (rarely present elsewhere).
	type scored struct {
		gram  string
		score float64
	}
	type classScored struct {
		gram  string
		cls   int
		score float64
	}
	var cands []classScored
	for _, gs := range gramFreq {
		for _, cls := range []int{AlgoCRC, AlgoLPM} {
			if counts[cls] == 0 {
				continue
			}
			support := gs.support[cls] / counts[cls]
			othersN := counts[AlgoNone] + counts[3-cls]
			others := 0.0
			if othersN > 0 {
				others = (gs.support[AlgoNone] + gs.support[3-cls]) / othersN
			}
			confidence := support / (support + others + 1e-9)
			if support >= 0.4 && confidence >= 0.7 {
				cands = append(cands, classScored{gs.gram, cls, support * confidence})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].gram < cands[j].gram
	})
	seen := map[string]bool{}
	id := &AlgoIdentifier{}
	for _, c := range cands {
		if seen[c.gram] {
			continue
		}
		seen[c.gram] = true
		id.Grams = append(id.Grams, c.gram)
		id.GramClass = append(id.GramClass, c.cls)
		if len(id.Grams) >= maxGrams {
			break
		}
	}

	X := make([][]float64, len(progs))
	y := make([]int, len(progs))
	for i, p := range progs {
		X[i] = id.svmFeatures(id.Features(p.m))
		y[i] = p.label
	}
	id.svm = ml.FitSVM(X, y, ml.SVMConfig{Epochs: 40, Seed: seed})
	return id, nil
}

// svmFeatures projects the full feature vector onto the generalizing
// summary the SVM classifies on: the per-class subsequence coverage
// aggregates plus the manual features. Individual gram indicators stay
// available (Features) for the PCA view and the baseline models, but a
// hyperplane over thousands of synthetic-corpus-specific indicators
// overfits to the synthesizer's idioms; the coverage fractions carry the
// same signal and transfer to real elements.
func (id *AlgoIdentifier) svmFeatures(x []float64) []float64 {
	return x[len(id.Grams):]
}

// featuresForBlocks builds one region's feature vector: mined subsequence
// indicators, per-class gram-coverage aggregates (fraction of each class's
// signature subsequences present), and the manual features.
func (id *AlgoIdentifier) featuresForBlocks(m *ir.Module, blocks []int) []float64 {
	grams := blockGrams(m, blocks)
	x := make([]float64, len(id.Grams)+2+AlgoFeatureCount)
	classHits := [3]float64{}
	classTotal := [3]float64{}
	for i, g := range id.Grams {
		classTotal[id.GramClass[i]]++
		if grams[g] {
			x[i] = 1
			classHits[id.GramClass[i]]++
		}
	}
	for k, cls := range []int{AlgoCRC, AlgoLPM} {
		if classTotal[cls] > 0 {
			x[len(id.Grams)+k] = classHits[cls] / classTotal[cls]
		}
	}
	copy(x[len(id.Grams)+2:], manualFeaturesFor(m, blocks))
	return x
}

// Features builds the module-level feature vector: per-loop-region
// features, max-pooled. Pooling keeps an algorithm kernel visible inside a
// large NF — exactly why the paper labels code blocks rather than whole
// programs.
func (id *AlgoIdentifier) Features(m *ir.Module) []float64 {
	regions := loopRegions(m)
	if len(regions) == 0 {
		return id.featuresForBlocks(m, allBlocks(m))
	}
	pooled := id.featuresForBlocks(m, regions[0])
	for _, r := range regions[1:] {
		x := id.featuresForBlocks(m, r)
		for i, v := range x {
			if v > pooled[i] {
				pooled[i] = v
			}
		}
	}
	return pooled
}

// Classify labels a module with the accelerator algorithm it contains (or
// AlgoNone). Programs without loops are structurally incapable of either
// algorithm (both are iterative), so they short-circuit to none — one of
// the manually-engineered decision rules of §4.1.
func (id *AlgoIdentifier) Classify(m *ir.Module) int {
	hasLoop := false
	for _, in := range ir.LoopBlocks(m.Handler()) {
		if in {
			hasLoop = true
			break
		}
	}
	if !hasLoop {
		return AlgoNone
	}
	return id.svm.PredictClass(id.svmFeatures(id.Features(m)))
}

// FeatureDataset featurizes a labeled corpus (shared by the baseline
// classifiers and the PCA view of Figure 10a).
func (id *AlgoIdentifier) FeatureDataset(corpus []synth.LabeledProgram) (X [][]float64, y []int, err error) {
	for _, p := range corpus {
		m, err := lang.Compile(p.Name, p.Src)
		if err != nil {
			return nil, nil, err
		}
		X = append(X, id.Features(m))
		y = append(y, p.Label)
	}
	return X, y, nil
}
