package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clara/internal/click"
	"clara/internal/niccc"
	"clara/internal/nicsim"
	"clara/internal/synth"
)

// tinyTool builds a small-but-complete trained tool (predictor + algo-ID
// + scale-out) shared across bundle tests.
var sharedTinyTool *Clara

func getTinyTool(t *testing.T) *Clara {
	t.Helper()
	if sharedTinyTool != nil {
		return sharedTinyTool
	}
	pred := getPredictor(t)
	algo, err := TrainAlgoIdentifier(synth.AlgoCorpus(8, 7), 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := TrainScaleout(ScaleoutConfig{
		TrainPrograms: 6, PacketsPerTrace: 300,
		CoreGrid: []int{2, 8, 24, 48}, Seed: 7,
	}, pred)
	if err != nil {
		t.Fatal(err)
	}
	sharedTinyTool = &Clara{Predictor: pred, AlgoID: algo, Scaleout: sm,
		Params: nicsim.DefaultParams()}
	return sharedTinyTool
}

func saveTinyBundle(t *testing.T) (string, *Bundle, *Clara) {
	t.Helper()
	tool := getTinyTool(t)
	b, err := NewBundle(tool, BundleMeta{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveBundle(path, b); err != nil {
		t.Fatal(err)
	}
	return path, b, tool
}

func TestBundleRoundTripBitIdenticalPredict(t *testing.T) {
	path, saved, tool := saveTinyBundle(t)
	loaded, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash != saved.Hash || loaded.Hash == "" {
		t.Fatalf("hash mismatch after round trip: %q vs %q", loaded.Hash, saved.Hash)
	}
	got, err := loaded.Tool()
	if err != nil {
		t.Fatal(err)
	}
	// Every analysis output must be bit-identical, module by module.
	for _, name := range []string{"tcpack", "udpipencap", "aggcounter", "mazunat", "iprewriter"} {
		m := click.Get(name).MustModule()
		want, err := tool.Predictor.PredictModule(m, niccc.AccelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Predictor.PredictModule(m, niccc.AccelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(want.TotalCompute) != math.Float64bits(have.TotalCompute) ||
			want.TotalMem != have.TotalMem || want.TotalAPI != have.TotalAPI {
			t.Fatalf("%s: prediction differs after reload: %+v vs %+v", name, want, have)
		}
		for i := range want.Blocks {
			if math.Float64bits(want.Blocks[i].Compute) != math.Float64bits(have.Blocks[i].Compute) {
				t.Fatalf("%s block %d: compute differs after reload", name, i)
			}
		}
		if a, b := tool.AlgoID.Classify(m), got.AlgoID.Classify(m); a != b {
			t.Fatalf("%s: algorithm label differs after reload: %d vs %d", name, a, b)
		}
	}
	// Scale-out model: identical suggestions over the retained train set.
	for i, s := range tool.Scaleout.Train {
		if a, b := tool.Scaleout.Suggest(s.Features), got.Scaleout.Suggest(s.Features); a != b {
			t.Fatalf("train sample %d: scale-out suggestion differs: %d vs %d", i, a, b)
		}
	}
}

func TestBundleSaveLoadSaveStable(t *testing.T) {
	path, saved, _ := saveTinyBundle(t)
	loaded, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), "model2.json")
	if err := SaveBundle(path2, loaded); err != nil {
		t.Fatal(err)
	}
	again, err := LoadBundle(path2)
	if err != nil {
		t.Fatal(err)
	}
	if again.Hash != saved.Hash {
		t.Fatalf("content hash drifted across save/load/save: %q vs %q", again.Hash, saved.Hash)
	}
}

func TestBundleCorruptionRejected(t *testing.T) {
	path, _, _ := saveTinyBundle(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one digit inside a params array — hash must catch it.
	s := string(blob)
	i := strings.Index(s, `"params": [`)
	if i < 0 {
		t.Fatal("no params array found in bundle JSON")
	}
	j := strings.IndexAny(s[i+12:], "0123456789") + i + 12
	mutated := s[:j] + flipDigit(s[j]) + s[j+1:]
	if _, err := DecodeBundle([]byte(mutated)); !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("tampered bundle: got %v, want ErrBundleCorrupt", err)
	}

	// Truncation must also be rejected cleanly.
	if _, err := DecodeBundle(blob[:len(blob)/2]); !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("truncated bundle: got %v, want ErrBundleCorrupt", err)
	}
}

func flipDigit(b byte) string {
	if b == '9' {
		return "8"
	}
	return "9"
}

func TestBundleVersionMismatchRejected(t *testing.T) {
	_, b, _ := saveTinyBundle(t)
	b.Version = BundleVersion + 1
	blob, err := EncodeBundle(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBundle(blob); !errors.Is(err, ErrBundleVersion) {
		t.Fatalf("future-version bundle: got %v, want ErrBundleVersion", err)
	}
	b.Version = BundleVersion
}

func TestBundleStaleLibraryRejected(t *testing.T) {
	_, b, _ := saveTinyBundle(t)
	orig := b.LibHash
	b.LibHash = strings.Repeat("0", 64)
	blob, err := EncodeBundle(b)
	if err != nil {
		t.Fatal(err)
	}
	b.LibHash = orig
	if _, err := DecodeBundle(blob); !errors.Is(err, ErrBundleStale) {
		t.Fatalf("stale-library bundle: got %v, want ErrBundleStale", err)
	}
}
