package ml

import (
	"math"
	"math/rand"
	"testing"
)

// synthReg builds y = 3*x0 - 2*x1 + noiseless nonlinearity on x2.
func synthReg(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
		X[i] = x
		y[i] = 3*x[0] - 2*x[1]
		if x[2] > 2 {
			y[i] += 5
		}
	}
	return X, y
}

func maeOf(m Regressor, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		s += math.Abs(m.Predict(X[i]) - y[i])
	}
	return s / float64(len(X))
}

func TestTreeLearnsStep(t *testing.T) {
	X, y := synthReg(400, 1)
	tr := FitTree(X, y, TreeConfig{MaxDepth: 8})
	if mae := maeOf(tr, X, y); mae > 1.0 {
		t.Errorf("tree train MAE %f too high", mae)
	}
}

func TestGBDTBeatsSingleTree(t *testing.T) {
	X, y := synthReg(400, 2)
	Xt, yt := synthReg(200, 3)
	tr := FitTree(X, y, TreeConfig{MaxDepth: 3})
	gb := FitGBDT(X, y, GBDTConfig{Trees: 120, MaxDepth: 3, Seed: 4})
	if maeOf(gb, Xt, yt) >= maeOf(tr, Xt, yt) {
		t.Errorf("GBDT (%f) should beat a depth-3 tree (%f)",
			maeOf(gb, Xt, yt), maeOf(tr, Xt, yt))
	}
}

func TestForestGeneralizes(t *testing.T) {
	X, y := synthReg(400, 5)
	Xt, yt := synthReg(200, 6)
	f := FitForest(X, y, ForestConfig{Trees: 40, Seed: 7})
	if mae := maeOf(f, Xt, yt); mae > 1.5 {
		t.Errorf("forest test MAE %f too high", mae)
	}
}

func TestRidgeRecoversLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = 4*X[i][0] - 7*X[i][1] + 2
	}
	r, err := FitRidge(X, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if mae := maeOf(r, X, y); mae > 1e-6 {
		t.Errorf("ridge MAE %g on noiseless linear data", mae)
	}
}

func TestKNNRegressorAndClassifier(t *testing.T) {
	X := [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}}
	y := []float64{1, 1, 9, 9}
	r := FitKNNRegressor(X, y, 2)
	if got := r.Predict([]float64{0, 0.5}); got != 1 {
		t.Errorf("knn reg = %f", got)
	}
	c := FitKNNClassifier(X, []int{0, 0, 1, 1}, 3)
	if c.PredictClass([]float64{9, 9}) != 1 {
		t.Error("knn class failed")
	}
}

func TestSVMSeparatesLinearly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var X [][]float64
	var labels []int
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		X = append(X, x)
		if x[0]+x[1] > 0.2 {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	svm := FitSVM(X, labels, SVMConfig{Epochs: 30, Seed: 10})
	wrong := 0
	for i := range X {
		if svm.PredictClass(X[i]) != labels[i] {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(len(X)); frac > 0.08 {
		t.Errorf("svm error rate %f on separable data", frac)
	}
}

func TestSVMMultiClass(t *testing.T) {
	var X [][]float64
	var labels []int
	for i := 0; i < 60; i++ {
		f := float64(i % 3)
		X = append(X, []float64{f*5 + 0.1*float64(i%7), f * 3})
		labels = append(labels, i%3)
	}
	svm := FitSVM(X, labels, SVMConfig{Epochs: 40, Seed: 11})
	acc := 0
	for i := range X {
		if svm.PredictClass(X[i]) == labels[i] {
			acc++
		}
	}
	if acc < 50 {
		t.Errorf("multiclass svm got %d/60", acc)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var X [][]float64
	for i := 0; i < 60; i++ {
		base := []float64{0, 0}
		if i%2 == 1 {
			base = []float64{8, 8}
		}
		X = append(X, []float64{base[0] + rng.Float64(), base[1] + rng.Float64()})
	}
	km := FitKMeans(X, 2, 13)
	a0 := km.Assign([]float64{0.5, 0.5})
	a1 := km.Assign([]float64{8.5, 8.5})
	if a0 == a1 {
		t.Error("k-means merged well-separated clusters")
	}
	km1 := FitKMeans(X, 1, 13)
	if km1.Inertia(X) <= km.Inertia(X) {
		t.Error("k=1 inertia should exceed k=2 inertia")
	}
}

func TestKMeansClampsK(t *testing.T) {
	X := [][]float64{{1}, {2}}
	km := FitKMeans(X, 5, 1)
	if len(km.Centroids) != 2 {
		t.Errorf("centroids = %d, want clamped to 2", len(km.Centroids))
	}
}

func TestPCAFindsDominantAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var X [][]float64
	for i := 0; i < 200; i++ {
		tt := rng.NormFloat64() * 10 // dominant along (1,1)/√2
		n := rng.NormFloat64() * 0.1
		X = append(X, []float64{tt + n, tt - n})
	}
	p := FitPCA(X, 2, 15)
	c := p.Components[0]
	// First component should align with (±1/√2, ±1/√2).
	if math.Abs(math.Abs(c[0])-math.Abs(c[1])) > 0.05 {
		t.Errorf("first PC %v not along the diagonal", c)
	}
	proj := p.Project([]float64{10, 10})
	if math.Abs(proj[0]) < 5 {
		t.Errorf("projection magnitude %f too small", proj[0])
	}
}

func seqData(n int, vocab int, seed int64) []SeqSample {
	// Target: (#token0)*2 + (#token1 followed by token2)  — needs context.
	rng := rand.New(rand.NewSource(seed))
	var out []SeqSample
	for i := 0; i < n; i++ {
		L := 4 + rng.Intn(12)
		toks := make([]int, L)
		for j := range toks {
			toks[j] = rng.Intn(vocab)
		}
		target := 0.0
		for j, tk := range toks {
			if tk == 0 {
				target += 2
			}
			if tk == 1 && j+1 < L && toks[j+1] == 2 {
				target += 5
			}
		}
		out = append(out, SeqSample{Tokens: toks, Target: []float64{target}})
	}
	return out
}

func TestLSTMLearnsContextualCounts(t *testing.T) {
	train := seqData(300, 6, 16)
	test := seqData(100, 6, 17)
	m, loss := TrainLSTM(train, LSTMConfig{Vocab: 6, Hidden: 20, Out: 1, Epochs: 40, Seed: 18})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("training diverged: loss=%f", loss)
	}
	var truth, pred []float64
	for _, s := range test {
		truth = append(truth, s.Target[0])
		pred = append(pred, m.Predict(s.Tokens)[0])
	}
	var num, den float64
	for i := range truth {
		num += math.Abs(truth[i] - pred[i])
		den += truth[i]
	}
	if wmape := num / den; wmape > 0.25 {
		t.Errorf("LSTM WMAPE %f too high", wmape)
	}
}

func TestCNNLearnsLocalPattern(t *testing.T) {
	train := seqData(300, 6, 19)
	m, loss := TrainCNN(train, CNNConfig{Vocab: 6, Filters: 16, Epochs: 30, Seed: 20})
	if math.IsNaN(loss) {
		t.Fatal("CNN diverged")
	}
	// CNN should at least distinguish all-zeros (high) from all-fives (0).
	hi := m.Predict([]int{0, 0, 0, 0, 0, 0})[0]
	lo := m.Predict([]int{5, 5, 5, 5, 5, 5})[0]
	if hi <= lo+2 {
		t.Errorf("CNN hi=%f lo=%f", hi, lo)
	}
}

func TestMLPRegressionAndClassification(t *testing.T) {
	X, y := synthReg(300, 21)
	targets := make([][]float64, len(y))
	for i, v := range y {
		targets[i] = []float64{v}
	}
	m, _ := TrainMLP(X, targets, MLPConfig{Layers: []int{3, 16, 1}, Epochs: 80, Seed: 22, TargetScale: 5})
	if mae := maeOf(m, X, y); mae > 1.5 {
		t.Errorf("MLP regression MAE %f", mae)
	}

	// Classification: two gaussian blobs.
	rng := rand.New(rand.NewSource(23))
	var Xc [][]float64
	var lc []int
	for i := 0; i < 200; i++ {
		c := i % 2
		Xc = append(Xc, []float64{float64(c)*4 + rng.NormFloat64()*0.5, rng.NormFloat64()})
		lc = append(lc, c)
	}
	mc, _ := TrainMLP(Xc, OneHot(lc, 2), MLPConfig{Layers: []int{2, 8, 2}, Epochs: 40, Seed: 24, Classification: true})
	wrong := 0
	for i := range Xc {
		if mc.PredictClass(Xc[i]) != lc[i] {
			wrong++
		}
	}
	if wrong > 10 {
		t.Errorf("MLP classifier wrong on %d/200", wrong)
	}
}

func TestRankerOrdersByQuality(t *testing.T) {
	// Quality = x0 - x1; generate preference pairs from it.
	rng := rand.New(rand.NewSource(25))
	var X [][]float64
	var q []float64
	for i := 0; i < 150; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64()}
		X = append(X, x)
		q = append(q, x[0]-x[1])
	}
	var pairs []PrefPair
	for i := 0; i < 600; i++ {
		a, b := rng.Intn(len(X)), rng.Intn(len(X))
		if q[a] > q[b]+0.5 {
			pairs = append(pairs, PrefPair{Better: a, Worse: b})
		}
	}
	r := FitRanker(X, pairs, RankConfig{Trees: 60, Seed: 26})
	// Concordance on fresh comparisons.
	good, total := 0, 0
	for i := 0; i < 300; i++ {
		a, b := rng.Intn(len(X)), rng.Intn(len(X))
		if math.Abs(q[a]-q[b]) < 1 {
			continue
		}
		total++
		if (r.Score(X[a]) > r.Score(X[b])) == (q[a] > q[b]) {
			good++
		}
	}
	if frac := float64(good) / float64(total); frac < 0.85 {
		t.Errorf("ranker concordance %f", frac)
	}
	if loss := r.PairLoss(X, pairs); loss > math.Log(2) {
		t.Errorf("pair loss %f above random baseline", loss)
	}
}

func TestAutoMLRegressorPicksReasonably(t *testing.T) {
	X, y := synthReg(200, 27)
	model, res, err := AutoMLRegressor(X, y, 4, 28)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline == "" || math.IsInf(res.CVScore, 1) {
		t.Fatalf("bad automl result: %+v", res)
	}
	if mae := maeOf(model, X, y); mae > 1.5 {
		t.Errorf("automl winner %q MAE %f", res.Pipeline, mae)
	}
}

func TestAutoMLClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var X [][]float64
	var l []int
	for i := 0; i < 120; i++ {
		c := i % 2
		X = append(X, []float64{float64(c)*3 + rng.NormFloat64()*0.3})
		l = append(l, c)
	}
	model, res, err := AutoMLClassifier(X, l, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.CVScore > 0.1 {
		t.Errorf("automl classifier CV error %f (%s)", res.CVScore, res.Pipeline)
	}
	if model.PredictClass([]float64{3}) != 1 {
		t.Error("winner misclassifies an easy point")
	}
}

func TestAutoMLErrors(t *testing.T) {
	if _, _, err := AutoMLRegressor([][]float64{{1}}, []float64{1}, 5, 1); err == nil {
		t.Error("too-few samples accepted")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	params := []float64{5, -3}
	opt := NewAdam(2, 0.1, 0)
	grads := make([]float64, 2)
	for i := 0; i < 500; i++ {
		grads[0] = 2 * (params[0] - 1)
		grads[1] = 2 * (params[1] - 2)
		opt.Step(params, grads)
	}
	if math.Abs(params[0]-1) > 0.05 || math.Abs(params[1]-2) > 0.05 {
		t.Errorf("Adam did not converge: %v", params)
	}
}

func TestDeterministicTraining(t *testing.T) {
	X, y := synthReg(100, 31)
	g1 := FitGBDT(X, y, GBDTConfig{Trees: 20, Seed: 32})
	g2 := FitGBDT(X, y, GBDTConfig{Trees: 20, Seed: 32})
	for i := 0; i < 10; i++ {
		if g1.Predict(X[i]) != g2.Predict(X[i]) {
			t.Fatal("GBDT training not deterministic")
		}
	}
	s := seqData(40, 5, 33)
	m1, _ := TrainLSTM(s, LSTMConfig{Vocab: 5, Hidden: 8, Epochs: 3, Seed: 34})
	m2, _ := TrainLSTM(s, LSTMConfig{Vocab: 5, Hidden: 8, Epochs: 3, Seed: 34})
	if m1.Predict(s[0].Tokens)[0] != m2.Predict(s[0].Tokens)[0] {
		t.Fatal("LSTM training not deterministic")
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny model.
	cfg := LSTMConfig{Vocab: 3, Hidden: 4, Out: 1, Seed: 35, TargetScale: 1}
	m := NewLSTM(cfg)
	sample := SeqSample{Tokens: []int{0, 2, 1}, Target: []float64{3}}
	grads := make([]float64, len(m.params))
	steps, y := m.forward(sample.Tokens)
	m.backward(steps, y, sample.Target, grads)
	lossAt := func() float64 {
		_, y := m.forward(sample.Tokens)
		d := y[0] - sample.Target[0]
		return 0.5 * d * d
	}
	const h = 1e-5
	checked := 0
	for _, pi := range []int{0, 5, m.oWh + 3, m.oB + 1, m.oWo, m.oBo} {
		orig := m.params[pi]
		m.params[pi] = orig + h
		lp := lossAt()
		m.params[pi] = orig - h
		lm := lossAt()
		m.params[pi] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grads[pi]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("param %d: numeric %g vs analytic %g", pi, num, grads[pi])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no parameters checked")
	}
}
