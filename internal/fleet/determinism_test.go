package fleet

import (
	"reflect"
	"testing"

	"clara/internal/click"
	"clara/internal/core"
	"clara/internal/traffic"
)

// TestAnalyzeDeterminism is the table-driven determinism check: with the
// workload seed fixed by the Spec and the interpreter seed fixed by the
// ProfileSetup, two Analyze runs must produce byte-identical insights —
// the property the fleet's result-ordering guarantee builds on.
func TestAnalyzeDeterminism(t *testing.T) {
	tool := quickTool(t)
	cases := []struct {
		element string
		wl      traffic.Spec
	}{
		{"iplookup", traffic.MediumMix},    // LPM + placement
		{"aggcounter", traffic.SmallFlows}, // stateful counters
		{"wepdecap", traffic.LargeFlows},   // CRC loop
		{"udpipencap", traffic.MediumMix},  // stateless
		{"mazunat", traffic.SmallFlows},    // multi-map NAT
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.element+"/"+tc.wl.Name, func(t *testing.T) {
			e := click.Get(tc.element)
			if e == nil {
				t.Fatalf("unknown element %q", tc.element)
			}
			mod := e.MustModule()
			ps := core.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes}
			a, err := tool.Analyze(mod, ps, tc.wl)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tool.Analyze(mod, ps, tc.wl)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("insights differ across runs:\n%+v\nvs\n%+v", a, b)
			}
			if ra, rb := a.Report(), b.Report(); ra != rb {
				t.Errorf("reports differ across runs:\n%s\nvs\n%s", ra, rb)
			}
		})
	}
}

// TestFleetWorkerCountInvariance checks the acceptance criterion that
// the batch output is identical for worker counts 1 and 8: same result
// order, same insight content, byte-identical reports.
func TestFleetWorkerCountInvariance(t *testing.T) {
	tool := quickTool(t)
	jobs := libraryJobs(t)

	run := func(workers int) []Result {
		fl, err := New(tool, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := fl.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	seq := run(1)
	par := run(8)
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d failed: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Name != par[i].Name || seq[i].Workload != par[i].Workload {
			t.Fatalf("job %d identity differs: %s/%s vs %s/%s",
				i, seq[i].Name, seq[i].Workload, par[i].Name, par[i].Workload)
		}
		if !reflect.DeepEqual(seq[i].Insights, par[i].Insights) {
			t.Errorf("job %d insights differ between 1 and 8 workers", i)
		}
		if seq[i].Insights.Report() != par[i].Insights.Report() {
			t.Errorf("job %d reports differ between 1 and 8 workers", i)
		}
	}
}
