package niccc

import (
	"testing"

	"clara/internal/ir"
	"clara/internal/isa"
	"clara/internal/lang"
)

func compile(t *testing.T, src string, opts Options) (*ir.Module, *isa.Program) {
	t.Helper()
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func totalOf(p *isa.Program, pred func(isa.Instr) bool) int {
	n := 0
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if pred(in) {
				n++
			}
		}
	}
	return n
}

func TestBlocksAlignWithIR(t *testing.T) {
	m, p := compile(t, `
global u32 c;
void handle() {
	if (pkt_ip_ttl() > 1) { c += 1; }
	pkt_send(0);
}
`, Options{})
	if len(p.Blocks) != len(m.Handler().Blocks) {
		t.Fatalf("compiled %d blocks for %d IR blocks", len(p.Blocks), len(m.Handler().Blocks))
	}
}

func TestICmpBranchFusion(t *testing.T) {
	// The compare feeding the branch fuses: no cmp/cset ALUs, one bcc.
	_, p := compile(t, `
void handle() {
	if (pkt_ip_ttl() > 1) { pkt_send(0); } else { pkt_drop(); }
}
`, Options{})
	cmps := totalOf(p, func(in isa.Instr) bool { return in.Sub == "cmp" || in.Sub == "cset" })
	if cmps != 0 {
		t.Errorf("fused compare still emitted %d cmp/cset", cmps)
	}
	bccs := totalOf(p, func(in isa.Instr) bool { return in.Op == isa.OpBcc })
	if bccs != 1 {
		t.Errorf("bcc count = %d, want 1", bccs)
	}
}

func TestICmpAsValueNotFused(t *testing.T) {
	// Comparison used as a value (stored) cannot fuse.
	_, p := compile(t, `
global u32 flag;
void handle() {
	bool b = pkt_ip_ttl() > 1;
	flag = u32(b);
	pkt_send(0);
}
`, Options{})
	cmps := totalOf(p, func(in isa.Instr) bool { return in.Sub == "cmp" })
	if cmps != 1 {
		t.Errorf("unfused compare emitted %d cmp, want 1", cmps)
	}
}

func TestMulStrengthReduction(t *testing.T) {
	cases := []struct {
		expr string
		op   string
		n    int
	}{
		{"x * 8", "shl", 1},       // power of two
		{"x * 10", "shladd", 3},   // popcount 2 -> 3 shladds
		{"x * 2654435761", "", 8}, // dense constant -> 8 mul steps
	}
	for _, c := range cases {
		_, p := compile(t, `
global u32 out;
void handle() {
	u32 x = pkt_ip_src();
	out = `+c.expr+`;
	pkt_send(0);
}
`, Options{})
		if c.op != "" {
			n := totalOf(p, func(in isa.Instr) bool { return in.Sub == c.op })
			if n != c.n {
				t.Errorf("%s: %d %s ops, want %d", c.expr, n, c.op, c.n)
			}
		} else {
			n := totalOf(p, func(in isa.Instr) bool { return in.Op == isa.OpMulStep })
			if n != c.n {
				t.Errorf("%s: %d mul steps, want %d", c.expr, n, c.n)
			}
		}
	}
}

func TestVariableMulUsesSequencer(t *testing.T) {
	_, p := compile(t, `
global u32 out;
void handle() {
	out = pkt_ip_src() * pkt_ip_dst();
	pkt_send(0);
}
`, Options{})
	if n := totalOf(p, func(in isa.Instr) bool { return in.Op == isa.OpMulStep }); n != 8 {
		t.Errorf("variable mul emitted %d steps, want 8", n)
	}
}

func TestDivByPowerOfTwoVsGeneral(t *testing.T) {
	_, p := compile(t, `
global u32 a;
global u32 b;
void handle() {
	a = pkt_ip_src() / 16;
	b = pkt_ip_src() / 10;
	pkt_send(0);
}
`, Options{})
	if n := totalOf(p, func(in isa.Instr) bool { return in.Op == isa.OpDivStep }); n != 24 {
		t.Errorf("div steps = %d, want 24 (one general divide)", n)
	}
}

func TestImmediateCaching(t *testing.T) {
	// The same large constant used twice in a block loads once.
	_, p := compile(t, `
global u32 a;
void handle() {
	u32 x = pkt_ip_src();
	a = (x ^ 0xdeadbeef) + (x & 0xdeadbeef) + (x | 12);
	pkt_send(0);
}
`, Options{})
	if n := totalOf(p, func(in isa.Instr) bool { return in.Op == isa.OpImmed }); n != 1 {
		t.Errorf("immed count = %d, want 1 (cached big const, folded small)", n)
	}
}

func TestZExtFreeTruncMasks(t *testing.T) {
	_, p := compile(t, `
global u64 a;
global u8 b;
void handle() {
	a = u64(pkt_ip_src());       // zext: free
	b = u8(pkt_ip_dst());        // trunc to u8: mask
	pkt_send(0);
}
`, Options{})
	if n := totalOf(p, func(in isa.Instr) bool { return in.Sub == "mask" }); n != 1 {
		t.Errorf("mask count = %d, want 1", n)
	}
}

func TestRegisterAllocationSpills(t *testing.T) {
	// A handler with few locals spills nothing.
	_, small := compile(t, `
void handle() {
	u32 a = pkt_ip_src();
	u32 b = pkt_ip_dst();
	if (a > b) { pkt_send(0); } else { pkt_drop(); }
}
`, Options{})
	if n := totalOf(small, func(in isa.Instr) bool { return in.Op == isa.OpSpill }); n != 0 {
		t.Errorf("small handler spilled %d", n)
	}

	// A handler with > NumGPRs live locals spills the cold ones.
	src := "global u32 out;\nvoid handle() {\n"
	for i := 0; i < NumGPRs+6; i++ {
		src += "\tu32 v" + string(rune('a'+i%26)) + string(rune('0'+i/26)) + " = pkt_ip_src() + " + string(rune('0'+i%10)) + ";\n"
	}
	src += "\tout = "
	for i := 0; i < NumGPRs+6; i++ {
		if i > 0 {
			src += " + "
		}
		src += "v" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	src += ";\n\tpkt_send(0);\n}\n"
	_, big := compile(t, src, Options{})
	if n := totalOf(big, func(in isa.Instr) bool { return in.Op == isa.OpSpill }); n == 0 {
		t.Error("register pressure produced no spills")
	}
}

func TestRedundantScalarLoadElimination(t *testing.T) {
	m, p := compile(t, `
global u32 g;
void handle() {
	u32 a = g;
	u32 b = g;   // redundant in the same block
	if (a == b) { pkt_send(0); } else { pkt_drop(); }
}
`, Options{})
	irMem := ir.ModuleStats(m).StateMem
	nicMem := p.TotalMem()
	if irMem != 2 {
		t.Fatalf("IR mem count = %d, want 2", irMem)
	}
	if nicMem != 1 {
		t.Errorf("NIC mem count = %d, want 1 (reload eliminated)", nicMem)
	}
}

func TestStoreKillsScalarCache(t *testing.T) {
	_, p := compile(t, `
global u32 g;
void handle() {
	u32 a = g;
	g = a + 1;
	u32 b = g;   // must reload after the store
	if (b > 0) { pkt_send(0); } else { pkt_drop(); }
}
`, Options{})
	if n := p.TotalMem(); n != 3 {
		t.Errorf("mem count = %d, want 3", n)
	}
}

func TestShlAddFusion(t *testing.T) {
	_, p := compile(t, `
global u32 out;
void handle() {
	u32 x = pkt_ip_src();
	u32 y = pkt_ip_dst();
	out = (x << 2) + y;
	pkt_send(0);
}
`, Options{})
	shls := totalOf(p, func(in isa.Instr) bool { return in.Sub == "shl" })
	if shls != 0 {
		t.Errorf("shl feeding add should be absorbed, got %d shl", shls)
	}
}

func TestAccelConfigSwitchesChecksum(t *testing.T) {
	src := `
void handle() { pkt_csum_update(); pkt_send(0); }
`
	_, sw := compile(t, src, Options{})
	_, hw := compile(t, src, Options{Accel: AccelConfig{CsumEngine: true}})
	swLib := totalOf(sw, func(in isa.Instr) bool { return in.Sub == "csum_sw" })
	hwEng := totalOf(hw, func(in isa.Instr) bool { return in.Op == isa.OpCsum })
	if swLib != 1 || hwEng != 1 {
		t.Errorf("csum lowering wrong: sw=%d hw=%d", swLib, hwEng)
	}
	swInstr, _ := APIInstrCount("pkt_csum_update", AccelConfig{})
	hwInstr, _ := APIInstrCount("pkt_csum_update", AccelConfig{CsumEngine: true})
	if swInstr < 100*hwInstr {
		t.Errorf("software csum (%d) should dwarf engine csum (%d)", swInstr, hwInstr)
	}
}

func TestCRCFallsBackToSoftware(t *testing.T) {
	src := `
global u32 out;
void handle() { out = crc32_hw(0, 64); pkt_send(0); }
`
	_, sw := compile(t, src, Options{})
	_, hw := compile(t, src, Options{Accel: AccelConfig{CRCEngine: true}})
	if n := totalOf(sw, func(in isa.Instr) bool { return in.Sub == "crc32_sw" }); n != 1 {
		t.Errorf("software fallback missing: %d", n)
	}
	if n := totalOf(hw, func(in isa.Instr) bool { return in.Op == isa.OpCrc }); n != 1 {
		t.Errorf("CRC engine op missing: %d", n)
	}
}

func TestDeterministicCompilation(t *testing.T) {
	src := `
map<u64,u64> m[256];
global u32 c[64];
void handle() {
	u64 k = u64(pkt_ip_src());
	if (map_contains(m, k)) { c[u32(k) & 63] += 1; }
	else { map_insert(m, k, 1); }
	pkt_send(0);
}
`
	_, p1 := compile(t, src, Options{})
	_, p2 := compile(t, src, Options{})
	if p1.TotalCompute() != p2.TotalCompute() || p1.TotalMem() != p2.TotalMem() {
		t.Error("compilation not deterministic")
	}
	for i := range p1.Blocks {
		if len(p1.Blocks[i].Instrs) != len(p2.Blocks[i].Instrs) {
			t.Fatalf("block %d differs", i)
		}
	}
}

func TestLibraryProfilesComplete(t *testing.T) {
	// Every intrinsic the language exposes must lower to something the
	// library can cost.
	for name := range map[string]bool{
		"pkt_len": true, "pkt_csum_update": true, "map_find": true,
		"crc32_hw": true, "lpm_hw": true, "hash32": true, "pkt_send": true,
	} {
		if n, ok := APIInstrCount(name, AccelConfig{}); !ok || n <= 0 {
			t.Errorf("APIInstrCount(%q) = %d,%v", name, n, ok)
		}
	}
}

func TestSummarizeCounts(t *testing.T) {
	b := isa.Block{Instrs: []isa.Instr{
		{Op: isa.OpALU}, {Op: isa.OpImmed}, {Op: isa.OpMemRead, Size: 4},
		{Op: isa.OpBcc}, {Op: isa.OpLibCall, Sub: "map_find"},
	}}
	b.Summarize()
	if b.ComputeCount != 3 || b.MemCount != 1 {
		t.Errorf("summary = %d compute/%d mem, want 3/1", b.ComputeCount, b.MemCount)
	}
	if b.ComputeCycles != 1+1+2 {
		t.Errorf("cycles = %d, want 4", b.ComputeCycles)
	}
}
