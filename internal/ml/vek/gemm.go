package vek

// Blocked/tiled matrix–matrix kernels. Like the rest of vek these are
// pure Go, and like Dot they fix a particular floating-point association
// order as part of the determinism contract:
//
//	C[i][j] += A[i][0]*B[0][j] + A[i][1]*B[1][j] + ...   (k ascending)
//
// Each output element is accumulated left-to-right over k into a single
// accumulator, exactly the order GemvTAdd produces when applied row by
// row. The register tiling below changes *which* elements are computed
// together (4 rows of C share one load of a B row), never the order any
// one element's partial sums combine in — so Gemm results are
// bit-identical for every (m, n, k) shape and identical to a per-row
// GemvTAdd sweep whenever A has no exact zeros (GemvTAdd skips zero
// multipliers; Gemm adds the signed-zero product, which differs only if
// an accumulator is exactly -0 or B holds non-finite values).
//
// The batched-LSTM wavefront (internal/ml) is the primary caller: its
// recurrent step is Z += H·Wh with H rows packed per active sequence.

// Gemm computes C += A·B for row-major matrices: C is m×n, A is m×k,
// B is k×n. Rows are processed in tiles of four so each B row is loaded
// once per tile instead of once per row; within a tile the four C-row
// accumulations are independent.
func Gemm(c, a, b []float64, m, n, k int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		gemm4(c[i*n:], a[i*k:], b, n, k)
	}
	for ; i < m; i++ {
		gemm1(c[i*n:i*n+n], a[i*k:i*k+k], b, n, k)
	}
}

// gemm4 computes four consecutive C rows: C[0..3] += A[0..3]·B.
// k is the shared dimension; each iteration streams one B row across all
// four accum rows, so B traffic is amortized 4×.
func gemm4(c, a, b []float64, n, k int) {
	c0 := c[0*n : 0*n+n]
	c1 := c[1*n : 1*n+n]
	c2 := c[2*n : 2*n+n]
	c3 := c[3*n : 3*n+n]
	for p := 0; p < k; p++ {
		a0 := a[0*k+p]
		a1 := a[1*k+p]
		a2 := a[2*k+p]
		a3 := a[3*k+p]
		bp := b[p*n : p*n+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0, b1 := bp[j], bp[j+1]
			c0[j] += a0 * b0
			c0[j+1] += a0 * b1
			c1[j] += a1 * b0
			c1[j+1] += a1 * b1
			c2[j] += a2 * b0
			c2[j+1] += a2 * b1
			c3[j] += a3 * b0
			c3[j+1] += a3 * b1
		}
		for ; j < n; j++ {
			b0 := bp[j]
			c0[j] += a0 * b0
			c1[j] += a1 * b0
			c2[j] += a2 * b0
			c3[j] += a3 * b0
		}
	}
}

// gemm1 computes one C row: C += a·B (a is one A row of length k).
func gemm1(c, a, b []float64, n, k int) {
	for p := 0; p < k; p++ {
		Axpy(a[p], b[p*n:p*n+n], c)
	}
}

// GemmNT computes C += A·Bᵀ for row-major matrices: C is m×n, A is m×k,
// B is n×k (so C[i][j] is the dot product of row i of A with row j of
// B). Each element uses the Dot kernel, inheriting its fixed 4-way
// partial-sum association.
func GemmNT(c, a, b []float64, m, n, k int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			ci[j] += Dot(ai, b[j*k:j*k+k])
		}
	}
}

// DotI8 returns the int32 inner product of two int8 vectors. len(b) must
// be >= len(a). Accumulation is exact: int8·int8 products summed in
// int32 cannot overflow below ~130k elements.
func DotI8(a, b []int8) int32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < n; i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// GemmNTI8 computes C += A·Bᵀ with int8 inputs and int32 accumulation:
// C is m×n int32, A is m×k int8, B is n×k int8. This is the quantized
// inference matmul: B rows are quantized weight rows (one per LSTM gate),
// A rows are quantized activations. Integer accumulation is exact, so
// there is no association contract to document — any order yields the
// same sums.
func GemmNTI8(c []int32, a, b []int8, m, n, k int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			ci[j] += DotI8(ai, b[j*k:j*k+k])
			ci[j+1] += DotI8(ai, b[(j+1)*k:(j+1)*k+k])
		}
		for ; j < n; j++ {
			ci[j] += DotI8(ai, b[j*k:j*k+k])
		}
	}
}

// ArenaI8 is Arena's int8 counterpart: zeroed scratch slices carved from
// one growing buffer, for packing quantized activations without
// per-step allocation. Not safe for concurrent use.
type ArenaI8 struct {
	buf []int8
	off int
}

// Take returns a zeroed scratch slice of length n valid until Reset.
func (ar *ArenaI8) Take(n int) []int8 {
	if ar.off+n > len(ar.buf) {
		grown := make([]int8, max(2*len(ar.buf), ar.off+n))
		copy(grown, ar.buf[:ar.off])
		ar.buf = grown
	}
	s := ar.buf[ar.off : ar.off+n : ar.off+n]
	ar.off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Reset recycles every slice handed out since the last Reset.
func (ar *ArenaI8) Reset() { ar.off = 0 }

// ArenaI32 is Arena's int32 counterpart, for quantized accumulators.
// Not safe for concurrent use.
type ArenaI32 struct {
	buf []int32
	off int
}

// Take returns a zeroed scratch slice of length n valid until Reset.
func (ar *ArenaI32) Take(n int) []int32 {
	if ar.off+n > len(ar.buf) {
		grown := make([]int32, max(2*len(ar.buf), ar.off+n))
		copy(grown, ar.buf[:ar.off])
		ar.buf = grown
	}
	s := ar.buf[ar.off : ar.off+n : ar.off+n]
	ar.off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Reset recycles every slice handed out since the last Reset.
func (ar *ArenaI32) Reset() { ar.off = 0 }
