// Package cluster scales Clara's serving layer horizontally: a
// coordinator fronts N `clara -serve` workers, routing each analysis
// job to a worker chosen by rendezvous hashing over the module's
// content hash. The same hash keys every worker's prediction cache
// (fleet.ContentHash), so the assignment makes the caches disjoint and
// hot: a module always lands on the one worker whose cache can already
// hold its prediction, and the cluster's aggregate cache capacity is
// the sum of the workers' instead of N copies of the same entries.
//
// The coordinator is deliberately thin — it holds no model and runs no
// analysis. It splits incoming batches into per-worker sub-batches,
// fans them out concurrently, reassembles results in request order, and
// merges the workers' /metrics into one cluster snapshot. A background
// probe loop health-checks each worker (/healthz, exponential backoff
// while down); a dead worker's hash range rebalances to the live
// workers via rendezvous hashing's minimal-disruption property, its
// in-flight sub-batches are retried exactly once against the new
// owners, and a rejoining worker gets precisely its old range back.
package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clara/internal/click"
	"clara/internal/fleet"
	"clara/internal/lang"
	"clara/internal/server"
)

// Config sizes a Coordinator.
type Config struct {
	// Workers lists the worker endpoints ("host:port" or full URLs).
	// The configured string is the worker's routing identity: it feeds
	// the rendezvous hash, so it must stay stable across restarts for a
	// rejoining worker to reclaim its old range.
	Workers []string
	// Client issues worker requests; nil means a default client. Probe
	// and forwarding timeouts are applied per request, so the client
	// itself needs no global timeout.
	Client *http.Client
	// ProbeInterval is the /healthz cadence for live workers and the
	// starting backoff for dead ones; 0 means 2s.
	ProbeInterval time.Duration
	// ProbeBackoffMax caps the dead-worker re-probe backoff (the
	// interval doubles from ProbeInterval up to this); 0 means 30s.
	ProbeBackoffMax time.Duration
	// RequestTimeout caps one forwarded sub-batch request; 0 means 60s.
	RequestTimeout time.Duration
}

func (c Config) norm() (Config, error) {
	if len(c.Workers) == 0 {
		return c, errors.New("cluster: no workers configured")
	}
	seen := make(map[string]bool, len(c.Workers))
	for _, w := range c.Workers {
		if w == "" {
			return c, errors.New("cluster: empty worker address")
		}
		if seen[w] {
			return c, fmt.Errorf("cluster: duplicate worker %q", w)
		}
		seen[w] = true
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeBackoffMax < c.ProbeInterval {
		c.ProbeBackoffMax = 30 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	return c, nil
}

// workerState is one worker's routing identity plus its liveness as the
// probe loop and the dispatch path last observed it.
type workerState struct {
	addr string // routing identity (as configured)
	base string // request base URL
	// Guarded by Coordinator.mu:
	alive      bool
	deaths     int64
	jobsRouted int64
}

// Coordinator fans analysis requests out over a worker fleet. Create
// with New, start the health probes with Start, and expose via Handler
// or ListenAndServe.
type Coordinator struct {
	cfg     Config
	mux     *http.ServeMux
	httpSrv *http.Server

	mu      sync.Mutex
	workers map[string]*workerState
	order   []string // configured order, for stable reporting

	retries atomic.Int64 // dead-worker sub-batch re-dispatches
	started atomic.Bool
}

// New builds a coordinator over the configured workers. Workers start
// optimistically alive — the first failed dispatch or probe demotes
// them — so a cluster is routable the instant it comes up.
func New(cfg Config) (*Coordinator, error) {
	cfg, err := cfg.norm()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		workers: make(map[string]*workerState, len(cfg.Workers)),
	}
	for _, addr := range cfg.Workers {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c.workers[addr] = &workerState{addr: addr, base: strings.TrimRight(base, "/"), alive: true}
		c.order = append(c.order, addr)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", c.handleAnalyze)
	mux.HandleFunc("POST /v1/lint", c.handleLint)
	mux.HandleFunc("GET /v1/elements", c.handleElements)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux = mux
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Start launches the per-worker health-probe loops; it is idempotent
// and returns immediately. ctx cancellation stops the probes.
func (c *Coordinator) Start(ctx context.Context) {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	for _, addr := range c.order {
		go c.probeLoop(ctx, c.workers[addr])
	}
}

// ListenAndServe serves on addr until ctx is canceled. The coordinator
// holds no in-flight analysis state of its own, so shutdown just stops
// the listener (workers drain their own requests).
func (c *Coordinator) ListenAndServe(ctx context.Context, addr string) error {
	c.Start(ctx)
	c.httpSrv = &http.Server{Addr: addr, Handler: c.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- c.httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	grace, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return c.httpSrv.Shutdown(grace)
}

// owner picks the live worker that owns key by rendezvous (highest-
// random-weight) hashing: every (key, worker) pair gets the score
// sha256(key ‖ addr) and the highest live score wins. Losing a worker
// reassigns only the keys it owned (each to its second-highest scorer),
// and a rejoining worker reclaims exactly the keys it used to win —
// no ring state to maintain or repair.
func (c *Coordinator) owner(key [sha256.Size]byte, exclude map[string]bool) (*workerState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *workerState
	var bestScore [sha256.Size]byte
	for _, addr := range c.order {
		w := c.workers[addr]
		if !w.alive || exclude[addr] {
			continue
		}
		score := sha256.Sum256(append(key[:], addr...))
		if best == nil || bytes.Compare(score[:], bestScore[:]) > 0 {
			best, bestScore = w, score
		}
	}
	return best, best != nil
}

// markDead demotes a worker after a failed dispatch or probe. The probe
// loop keeps retrying it on a backoff and flips it back when /healthz
// answers 200 again.
func (c *Coordinator) markDead(w *workerState) {
	c.mu.Lock()
	if w.alive {
		w.alive = false
		w.deaths++
	}
	c.mu.Unlock()
}

// alive reports a worker's current liveness (probe-loop view).
func (c *Coordinator) alive(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[addr]
	return w != nil && w.alive
}

// liveWorkers snapshots the live set in configured order.
func (c *Coordinator) liveWorkers() []*workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*workerState
	for _, addr := range c.order {
		if w := c.workers[addr]; w.alive {
			out = append(out, w)
		}
	}
	return out
}

// cjob is one routed job: the client's job index, the module's routing
// hash, and what to forward (an element name or inline source).
type cjob struct {
	index int
	key   [sha256.Size]byte
	name  string // element name; "" for a src job
	src   string // inline source; "" for a named job
	label string // src job's display name
}

func (c *Coordinator) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req server.AnalyzeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	jobs, errMsg := resolveJobs(&req)
	if errMsg != "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": errMsg})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()

	results := make([]server.AnalyzeResult, len(jobs))
	c.dispatch(ctx, jobs, results, &req, nil)
	if r.Context().Err() != nil {
		return // client went away; nobody to write to
	}
	failed := 0
	for _, res := range results {
		if res.Error != "" {
			failed++
		}
	}
	if failed == len(results) && allNoWorkers(results) {
		// Not one job could even be routed: the cluster itself is the
		// failure, and 503 tells clients (and upstream balancers) so.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no live workers"})
		return
	}
	if failed > 0 {
		w.Header().Set(server.FailedJobsHeader, strconv.Itoa(failed))
	}
	writeJSON(w, http.StatusOK, server.AnalyzeResponse{Results: results})
}

func allNoWorkers(results []server.AnalyzeResult) bool {
	for _, res := range results {
		if res.Error != errNoWorkers {
			return false
		}
	}
	return len(results) > 0
}

const errNoWorkers = "no live workers"

// resolveJobs turns an analyze request into routed jobs. The
// coordinator computes the same content hash the workers' prediction
// caches key on (fleet.ContentHash over the compiled module's IR), so
// routing and caching agree on module identity.
func resolveJobs(req *server.AnalyzeRequest) ([]cjob, string) {
	selectors := 0
	for _, set := range []bool{req.NF != "", len(req.NFs) > 0, req.Src != ""} {
		if set {
			selectors++
		}
	}
	if selectors != 1 {
		return nil, "exactly one of nf, nfs, or src must be set"
	}
	if req.Src != "" {
		name := req.Name
		if name == "" {
			name = "submitted"
		}
		mod, err := lang.Compile(name, req.Src)
		if err != nil {
			return nil, fmt.Sprintf("compiling %s: %v", name, err)
		}
		return []cjob{{index: 0, key: fleet.ContentHash(mod), src: req.Src, label: req.Name}}, ""
	}
	names := req.NFs
	if req.NF != "" {
		names = []string{req.NF}
	}
	jobs := make([]cjob, 0, len(names))
	for i, n := range names {
		e := click.Get(n)
		if e == nil {
			return nil, fmt.Sprintf("unknown element %q (GET /v1/elements lists them)", n)
		}
		mod, err := e.Module()
		if err != nil {
			return nil, err.Error()
		}
		jobs = append(jobs, cjob{index: i, key: fleet.ContentHash(mod), name: e.Name})
	}
	return jobs, ""
}

// dispatch groups jobs by owner and runs every sub-batch concurrently,
// writing each job's outcome into results[job.index]. Job indices are
// disjoint across sub-batches, so the only shared write is the retry
// counter. exclude carries the workers this dispatch already saw die:
// a sub-batch whose worker dies mid-flight is re-dispatched exactly
// once against the remaining live set (minus everyone in exclude), and
// a second death fails the jobs instead of cascading retries.
func (c *Coordinator) dispatch(ctx context.Context, jobs []cjob, results []server.AnalyzeResult, req *server.AnalyzeRequest, exclude map[string]bool) {
	groups := make(map[*workerState][]cjob)
	for _, j := range jobs {
		w, ok := c.owner(j.key, exclude)
		if !ok {
			results[j.index] = failResult(j, errNoWorkers)
			continue
		}
		groups[w] = append(groups[w], j)
	}
	var wg sync.WaitGroup
	for w, group := range groups {
		wg.Add(1)
		go func(w *workerState, group []cjob) {
			defer wg.Done()
			c.mu.Lock()
			w.jobsRouted += int64(len(group))
			c.mu.Unlock()
			if dead := c.runSubBatch(ctx, w, group, results, req); dead {
				c.markDead(w)
				if ctx.Err() != nil || exclude[w.addr] {
					// Canceled request, or this worker already got its
					// one retry: the jobs keep their failure results.
					return
				}
				c.retries.Add(1)
				next := map[string]bool{w.addr: true}
				for addr := range exclude {
					next[addr] = true
				}
				c.dispatch(ctx, group, results, req, next)
			}
		}(w, group)
	}
	wg.Wait()
}

// runSubBatch forwards one worker's share of a batch and fills its
// results. It reports dead=true only for failures that mean the worker
// itself is gone — transport errors and 503 (draining or unready) —
// which the caller answers by re-routing. Everything else is final:
// 429 is backpressure (the worker is alive, just full; retrying
// elsewhere would stampede the next worker), and per-job errors inside
// a 200 are deterministic analysis faults that would fail identically
// on any worker.
func (c *Coordinator) runSubBatch(ctx context.Context, w *workerState, group []cjob, results []server.AnalyzeResult, req *server.AnalyzeRequest) (dead bool) {
	sub := server.AnalyzeRequest{Workload: req.Workload, TimeoutMs: req.TimeoutMs}
	if group[0].src != "" {
		sub.Src, sub.Name = group[0].src, group[0].label
	} else {
		for _, j := range group {
			sub.NFs = append(sub.NFs, j.name)
		}
	}
	resp, status, err := c.postAnalyze(ctx, w, &sub)
	switch {
	case err != nil:
		if ctx.Err() != nil {
			// The client hung up or timed out; that says nothing about
			// the worker's health.
			for _, j := range group {
				results[j.index] = failResult(j, "request canceled: "+ctx.Err().Error())
			}
			return false
		}
		for _, j := range group {
			results[j.index] = failResult(j, fmt.Sprintf("worker %s unreachable: %v", w.addr, err))
		}
		return true
	case status == http.StatusServiceUnavailable:
		for _, j := range group {
			results[j.index] = failResult(j, fmt.Sprintf("worker %s unavailable", w.addr))
		}
		return true
	case status == http.StatusTooManyRequests:
		for _, j := range group {
			results[j.index] = failResult(j, fmt.Sprintf("worker %s at capacity: retry later", w.addr))
		}
		return false
	case status != http.StatusOK:
		for _, j := range group {
			results[j.index] = failResult(j, fmt.Sprintf("worker %s answered %d", w.addr, status))
		}
		return false
	case resp == nil || len(resp.Results) != len(group):
		n := 0
		if resp != nil {
			n = len(resp.Results)
		}
		for _, j := range group {
			results[j.index] = failResult(j, fmt.Sprintf("worker %s returned %d results for %d jobs", w.addr, n, len(group)))
		}
		return false
	}
	for i, j := range group {
		results[j.index] = resp.Results[i]
	}
	return false
}

// postAnalyze issues one sub-batch request. A non-2xx status is not an
// error — callers classify it — but an unparsable 200 body is.
func (c *Coordinator) postAnalyze(ctx context.Context, w *workerState, sub *server.AnalyzeRequest) (*server.AnalyzeResponse, int, error) {
	blob, err := json.Marshal(sub)
	if err != nil {
		return nil, 0, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, "POST", w.base+"/v1/analyze", bytes.NewReader(blob))
	if err != nil {
		return nil, 0, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.cfg.Client.Do(httpReq)
	if err != nil {
		return nil, 0, err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return nil, 0, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, httpResp.StatusCode, nil
	}
	var resp server.AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, httpResp.StatusCode, fmt.Errorf("bad worker response: %w", err)
	}
	return &resp, httpResp.StatusCode, nil
}

func failResult(j cjob, msg string) server.AnalyzeResult {
	name := j.name
	if name == "" {
		name = j.label
		if name == "" {
			name = "submitted"
		}
	}
	return server.AnalyzeResult{Name: name, Error: msg}
}

// handleLint forwards a lint request to the worker that owns the
// linted module (same routing as analyze — lint has no cache, but
// keeping one module's traffic on one worker keeps its logs and
// metrics coherent), falling back to any live worker when the module
// cannot be resolved locally so the authoritative error rendering
// stays on the workers.
func (c *Coordinator) handleLint(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body"})
		return
	}
	var req server.LintRequest
	target := c.pickLintWorker(body, &req)
	if target == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": errNoWorkers})
		return
	}
	c.forward(w, r, target, "/v1/lint", body)
}

// pickLintWorker routes a lint body: by module hash when it resolves,
// else the first live worker.
func (c *Coordinator) pickLintWorker(body []byte, req *server.LintRequest) *workerState {
	if err := json.Unmarshal(body, req); err == nil {
		var key [sha256.Size]byte
		resolved := false
		switch {
		case req.NF != "" && req.Src == "":
			if e := click.Get(req.NF); e != nil {
				if mod, err := e.Module(); err == nil {
					key, resolved = fleet.ContentHash(mod), true
				}
			}
		case req.Src != "" && req.NF == "":
			name := req.Name
			if name == "" {
				name = "submitted"
			}
			if mod, err := lang.Compile(name, req.Src); err == nil {
				key, resolved = fleet.ContentHash(mod), true
			}
		}
		if resolved {
			if w, ok := c.owner(key, nil); ok {
				return w
			}
			return nil
		}
	}
	live := c.liveWorkers()
	if len(live) == 0 {
		return nil
	}
	return live[0]
}

func (c *Coordinator) handleElements(w http.ResponseWriter, r *http.Request) {
	live := c.liveWorkers()
	if len(live) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": errNoWorkers})
		return
	}
	c.forward(w, r, live[0], "/v1/elements", nil)
}

// forward proxies one request to a worker, relaying status and body. A
// transport failure demotes the worker and answers 502 (these paths
// carry no jobs, so there is nothing to re-route).
func (c *Coordinator) forward(w http.ResponseWriter, r *http.Request, target *workerState, path string, body []byte) {
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, target.base+path, rd)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.markDead(target)
		}
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error": fmt.Sprintf("worker %s unreachable: %v", target.addr, err),
		})
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client may be gone
}

// WorkerInfo is one worker's row in the cluster snapshot.
type WorkerInfo struct {
	Addr string `json:"addr"`
	// Alive is the probe loop's current view.
	Alive bool `json:"alive"`
	// Deaths counts alive→dead transitions (probe failures and failed
	// dispatches both demote).
	Deaths int64 `json:"deaths"`
	// JobsRouted counts jobs this coordinator sent to the worker,
	// including jobs whose sub-batch later failed.
	JobsRouted int64 `json:"jobs_routed"`
}

// Snapshot is the coordinator's /metrics schema: the cluster's own
// routing state plus the workers' merged serving metrics.
type Snapshot struct {
	Cluster struct {
		Workers []WorkerInfo `json:"workers"`
		Live    int          `json:"live_workers"`
		// Retries counts dead-worker sub-batch re-dispatches.
		Retries int64 `json:"retries"`
	} `json:"cluster"`
	// Merged folds every reachable worker's /metrics into one view
	// (see server.MergeSnapshots for the fold semantics).
	Merged server.MetricsSnapshot `json:"merged"`
}

// Stats returns the coordinator's routing-state snapshot (without
// worker metrics — those need HTTP round trips; see handleMetrics).
func (c *Coordinator) Stats() Snapshot {
	var snap Snapshot
	c.mu.Lock()
	for _, addr := range c.order {
		w := c.workers[addr]
		snap.Cluster.Workers = append(snap.Cluster.Workers, WorkerInfo{
			Addr: w.addr, Alive: w.alive, Deaths: w.deaths, JobsRouted: w.jobsRouted,
		})
		if w.alive {
			snap.Cluster.Live++
		}
	}
	c.mu.Unlock()
	snap.Cluster.Retries = c.retries.Load()
	return snap
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := c.Stats()
	live := c.liveWorkers()
	snaps := make([]server.MetricsSnapshot, len(live))
	oks := make([]bool, len(live))
	var wg sync.WaitGroup
	for i, ws := range live {
		wg.Add(1)
		go func(i int, ws *workerState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, "GET", ws.base+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := c.cfg.Client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			if json.NewDecoder(resp.Body).Decode(&snaps[i]) == nil {
				oks[i] = true
			}
		}(i, ws)
	}
	wg.Wait()
	var reachable []server.MetricsSnapshot
	for i, ok := range oks {
		if ok {
			reachable = append(reachable, snaps[i])
		}
	}
	snap.Merged = server.MergeSnapshots(reachable)
	writeJSON(w, http.StatusOK, snap)
}

// handleHealthz reports the coordinator routable (200) while at least
// one worker is live; the body carries the live count so orchestrators
// can alert on partial degradation before total loss.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := c.Stats()
	status := "ok"
	code := http.StatusOK
	if snap.Cluster.Live == 0 {
		status, code = "no live workers", http.StatusServiceUnavailable
	} else if snap.Cluster.Live < len(snap.Cluster.Workers) {
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"live":    snap.Cluster.Live,
		"workers": len(snap.Cluster.Workers),
	})
}

// Retries reports lifetime dead-worker re-dispatches (test hook and
// Stats feed).
func (c *Coordinator) Retries() int64 { return c.retries.Load() }

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client may be gone
}
