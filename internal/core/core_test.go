package core

import (
	"math"
	"testing"

	"clara/internal/click"
	"clara/internal/ir"
	"clara/internal/isa"
	"clara/internal/lang"
	"clara/internal/niccc"
	"clara/internal/nicsim"
	"clara/internal/stats"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// tinyPredictor trains a small-but-real predictor shared across tests.
var tinyPredictor *Predictor

func getPredictor(t *testing.T) *Predictor {
	t.Helper()
	if tinyPredictor != nil {
		return tinyPredictor
	}
	mods, err := click.Modules(click.Table2Order)
	if err != nil {
		t.Fatal(err)
	}
	prof := CorpusProfile(mods)
	p, err := TrainPredictor(PredictorConfig{
		TrainPrograms: 80, Hidden: 20, Epochs: 10, CompactVocab: true, Seed: 7,
	}, prof)
	if err != nil {
		t.Fatal(err)
	}
	tinyPredictor = p
	return p
}

func TestPredictorLearnsAndEvaluates(t *testing.T) {
	p := getPredictor(t)
	if math.IsNaN(p.TrainLoss) || math.IsInf(p.TrainLoss, 0) {
		t.Fatalf("diverged: %f", p.TrainLoss)
	}
	var wmapes []float64
	for _, name := range []string{"tcpack", "udpipencap", "aggcounter", "mazunat"} {
		m := click.Get(name).MustModule()
		res, err := p.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(res.WMAPE) {
			t.Fatalf("%s: NaN WMAPE", name)
		}
		if res.MemAccuracy < 0.9 {
			t.Errorf("%s: memory accuracy %f below the paper's 96.4%% floor", name, res.MemAccuracy)
		}
		wmapes = append(wmapes, res.WMAPE)
	}
	if m := stats.Mean(wmapes); m > 0.6 {
		t.Errorf("mean WMAPE %f too high even for a tiny training run", m)
	}
}

func TestPredictModuleAggregates(t *testing.T) {
	p := getPredictor(t)
	m := click.Get("mazunat").MustModule()
	mp, err := p.PredictModule(m, niccc.AccelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.TotalCompute <= 0 || mp.TotalMem <= 0 || mp.TotalAPI <= 0 {
		t.Errorf("degenerate prediction: %+v", mp)
	}
	if len(mp.Blocks) != len(m.Handler().Blocks) {
		t.Errorf("blocks %d != %d", len(mp.Blocks), len(m.Handler().Blocks))
	}
	// API counts are exact: software checksum dominates in the naive port.
	accel := niccc.AccelConfig{CsumEngine: true}
	mpA, err := p.PredictModule(m, accel)
	if err != nil {
		t.Fatal(err)
	}
	if mpA.TotalAPI >= mp.TotalAPI {
		t.Errorf("csum engine should shrink API instructions: %d vs %d", mpA.TotalAPI, mp.TotalAPI)
	}
}

func TestBlockCorpusGroundTruth(t *testing.T) {
	m := click.Get("aggcounter").MustModule()
	samples, err := BlockCorpus([]*ir.Module{m}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(m.Handler().Blocks) {
		t.Fatalf("%d samples for %d blocks", len(samples), len(m.Handler().Blocks))
	}
	totC, totM := 0, 0
	for _, s := range samples {
		totC += s.Compute
		totM += s.Mem
		if s.Mem > s.IRMem {
			t.Errorf("NIC mem count %d exceeds IR count %d", s.Mem, s.IRMem)
		}
	}
	if totC == 0 || totM == 0 {
		t.Error("empty ground truth")
	}
}

func TestAlgoIdentifierPrecisionRecall(t *testing.T) {
	train := synth.AlgoCorpus(24, 100)
	test := synth.AlgoCorpus(16, 9000)
	id, err := TrainAlgoIdentifier(train, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(id.Grams) == 0 {
		t.Fatal("no subsequence features mined")
	}
	var truth, pred []int
	for _, p := range test {
		m, err := lang.Compile(p.Name, p.Src)
		if err != nil {
			t.Fatal(err)
		}
		truth = append(truth, p.Label)
		pred = append(pred, id.Classify(m))
	}
	prec, rec := stats.PrecisionRecall(truth, pred)
	if prec < 0.75 || rec < 0.7 {
		t.Errorf("precision %.2f / recall %.2f too low", prec, rec)
	}
}

func TestAlgoIdentifierOnRealElements(t *testing.T) {
	id, err := TrainAlgoIdentifier(synth.AlgoCorpus(24, 100), 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := id.Classify(click.Get("iplookup").MustModule()); got != AlgoLPM {
		t.Errorf("iplookup classified as %s, want LPM", AlgoName(got))
	}
	if got := id.Classify(click.Get("wepdecap").MustModule()); got != AlgoCRC {
		t.Errorf("wepdecap classified as %s, want CRC", AlgoName(got))
	}
	if got := id.Classify(click.Get("tcpack").MustModule()); got != AlgoNone {
		t.Errorf("tcpack classified as %s, want none", AlgoName(got))
	}
}

func TestManualFeaturesPointerChase(t *testing.T) {
	trie := click.Get("iplookup").MustModule()
	f := manualFeatures(trie)
	if f[3] != 1 {
		t.Error("trie walk not flagged as pointer chasing")
	}
	plain := click.Get("anonipaddr").MustModule()
	if manualFeatures(plain)[3] != 0 {
		t.Error("stateless NF flagged as pointer chasing")
	}
}

func TestProfileOnHost(t *testing.T) {
	e := click.Get("udpcount")
	prof, err := ProfileOnHost(e.MustModule(), ProfileSetup{Setup: e.Setup}, traffic.MediumMix, 400)
	if err != nil {
		t.Fatal(err)
	}
	if prof.GlobalFreq["src_count"] == 0 {
		t.Error("map accesses not profiled")
	}
	if prof.GlobalFreq["udp_pkts"] == 0 {
		t.Error("scalar accesses not profiled")
	}
	v := prof.AccessVector("udp_pkts")
	var sum float64
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("access vector sums to %f", sum)
	}
	if prof.AccessVector("no_such_global") != nil {
		t.Error("phantom access vector")
	}
}

func TestSuggestPlacementPrefersFastForHotSmall(t *testing.T) {
	e := click.Get("udpcount")
	mod := e.MustModule()
	prof, err := ProfileOnHost(mod, ProfileSetup{Setup: e.Setup}, traffic.MediumMix, 600)
	if err != nil {
		t.Fatal(err)
	}
	params := nicsim.DefaultParams()
	pl, err := SuggestPlacement(mod, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	// Every global is placed.
	for _, g := range mod.Globals {
		if _, ok := pl[g.Name]; !ok {
			t.Errorf("global %q unplaced", g.Name)
		}
	}
	// The hot scalar tallies should leave EMEM; the 2MB+ flow map cannot
	// fit in CLS.
	if pl["udp_pkts"] == isa.EMEM {
		t.Error("hot scalar left in EMEM")
	}
	if pl["src_count"] == isa.CLS {
		t.Error("2MB map placed into 64KB CLS")
	}
	// Capacity respected.
	used := map[isa.Region]int{}
	for _, g := range mod.Globals {
		used[pl[g.Name]] += g.SizeBytes()
	}
	for r, b := range used {
		if b > params.Regions[r].Capacity {
			t.Errorf("%s overfilled: %d", r, b)
		}
	}
}

func TestNaivePlacementAllEMEM(t *testing.T) {
	mod := click.Get("udpcount").MustModule()
	pl := NaivePlacement(mod)
	for g, r := range pl {
		if r != isa.EMEM {
			t.Errorf("%s at %s", g, r)
		}
	}
}

func TestPlacementCandidates(t *testing.T) {
	mod := click.Get("udpcount").MustModule()
	params := nicsim.DefaultParams()
	cands := PlacementCandidates(mod, params)
	if len(cands) < 4 {
		t.Fatalf("only %d candidates", len(cands))
	}
	for _, pl := range cands {
		used := map[isa.Region]int{}
		for _, g := range mod.Globals {
			used[pl[g.Name]] += g.SizeBytes()
		}
		for r, b := range used {
			if b > params.Regions[r].Capacity {
				t.Fatalf("infeasible candidate: %s %d", r, b)
			}
		}
	}
}

func TestSuggestPacksGroupsCoAccessed(t *testing.T) {
	e := click.Get("tcpgen")
	mod := e.MustModule()
	prof, err := ProfileOnHost(mod, ProfileSetup{}, traffic.LargeFlows, 800)
	if err != nil {
		t.Fatal(err)
	}
	packs := SuggestPacks(mod, prof, CoalesceConfig{})
	if len(packs) == 0 {
		t.Fatal("no packs suggested for tcpgen")
	}
	// The generator port pair is written in the same block on every packet;
	// they must land in one pack ("one of the clusters suggested by Clara
	// contains source and destination ports", §5.6).
	inSame := func(a, b string) bool {
		for _, p := range packs {
			hasA, hasB := false, false
			for _, n := range p {
				if n == a {
					hasA = true
				}
				if n == b {
					hasB = true
				}
			}
			if hasA && hasB {
				return true
			}
		}
		return false
	}
	if !inSame("gen_sport", "gen_dport") {
		t.Errorf("sport/dport not packed together: %v", packs)
	}
}

func TestPartitionsBellNumbers(t *testing.T) {
	for _, c := range []struct{ n, bell int }{{0, 1}, {1, 1}, {2, 2}, {3, 5}, {4, 15}, {5, 52}} {
		items := make([]string, c.n)
		for i := range items {
			items[i] = string(rune('a' + i))
		}
		if got := len(Partitions(items)); got != c.bell {
			t.Errorf("Partitions(%d) = %d, want %d", c.n, got, c.bell)
		}
	}
	p := PacksFromPartition([][]string{{"a"}, {"b", "c"}})
	if len(p) != 1 || len(p[0]) != 2 {
		t.Errorf("PacksFromPartition = %v", p)
	}
}

func TestHotScalars(t *testing.T) {
	e := click.Get("aggcounter")
	mod := e.MustModule()
	prof, err := ProfileOnHost(mod, ProfileSetup{}, traffic.MediumMix, 400)
	if err != nil {
		t.Fatal(err)
	}
	hot := HotScalars(mod, prof, 3, 5)
	if len(hot) == 0 {
		t.Fatal("no hot scalars found")
	}
	found := false
	for _, h := range hot {
		if h == "total_pkts" {
			found = true
		}
	}
	if !found {
		t.Errorf("total_pkts missing from hot set %v", hot)
	}
}

func TestScaleoutTrainAndSuggest(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on the simulator")
	}
	p := getPredictor(t)
	cfg := ScaleoutConfig{
		TrainPrograms:   10,
		PacketsPerTrace: 600,
		CoreGrid:        []int{2, 8, 16, 32, 48, 60},
		Workloads:       []traffic.Spec{traffic.LargeFlows},
		Seed:            3,
	}
	sm, err := TrainScaleout(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.Train) != 10 {
		t.Fatalf("train samples = %d", len(sm.Train))
	}
	e := click.Get("aggcounter")
	cores, err := sm.SuggestForNF(e.MustModule(), ProfileSetup{}, traffic.LargeFlows, p, niccc.AccelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cores < 1 || cores > 60 {
		t.Errorf("suggested %d cores", cores)
	}
}

func TestColocatorRanksPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on the simulator")
	}
	p := getPredictor(t)
	cfg := ColocConfig{TrainNFs: 6, PairsMax: 15, Packets: 600, Seed: 9}
	co, err := TrainColocator(cfg, p, ObjThroughputTotal)
	if err != nil {
		t.Fatal(err)
	}
	if len(co.Outcomes) != 15 {
		t.Fatalf("outcomes = %d", len(co.Outcomes))
	}
	// Build a small candidate set from real NFs and rank it.
	var cands []*ColocNF
	params := nicsim.DefaultParams()
	for _, name := range []string{"aggcounter", "udpcount", "dpi"} {
		e := click.Get(name)
		nf := &nicsim.NF{Name: name, Mod: e.MustModule(), Setup: e.Setup, LPMTable: e.Routes}
		c, err := PrepareColocNF(nf, traffic.MediumMix, 600, 24, params, p)
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, c)
	}
	ranked := co.RankPairs(cands)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d pairs", len(ranked))
	}
	co.Retrain(ObjLatencyTotal)
	ranked2 := co.RankPairs(cands)
	if len(ranked2) != 3 {
		t.Fatal("retrain broke ranking")
	}
}

func TestClaraAnalyzeEndToEnd(t *testing.T) {
	p := getPredictor(t)
	id, err := TrainAlgoIdentifier(synth.AlgoCorpus(16, 100), 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := &Clara{Predictor: p, AlgoID: id, Params: nicsim.DefaultParams()}
	e := click.Get("iplookup")
	ins, err := c.Analyze(e.MustModule(), ProfileSetup{Setup: e.Setup}, traffic.MediumMix)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Algorithm != AlgoLPM {
		t.Errorf("iplookup algorithm = %s", AlgoName(ins.Algorithm))
	}
	if len(ins.Placement) == 0 {
		t.Error("no placement suggested")
	}
	rep := ins.Report()
	for _, want := range []string{"LPM", "State placement", "compute instructions"} {
		if !containsStr(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestReversePortSourcesCompile(t *testing.T) {
	for name, src := range map[string]string{
		"nicmap": ReversePortNICMapSource, "hostmap": HostMapSource,
	} {
		if _, err := lang.Compile(name, src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
