package analysis

import (
	"fmt"
	"strings"

	"clara/internal/ir"
	"clara/internal/lang"
)

// Payload-taint analysis (interprocedural). Sources are the packet reads
// an offloaded fast path cannot see: the ingress flow cache matches on
// parsed header fields, so any control or state-indexing decision derived
// from pkt_payload/pkt_payload_len forces the packet onto the NIC cores
// (slow path). Sinks are branch conditions, loop bounds, and state-access
// keys; the analysis classifies every natural loop and every stateful
// access as header-only (fast-path eligible) or payload-dependent
// (slow-path), and the linter attaches the classification as the *cause*
// of its loop diagnostics.
//
// The propagation is a forward may-analysis over a four-point product
// lattice (header bit × payload bit) per slot and per SSA value, made
// interprocedural by caller→callee parameter taint and callee→caller
// return taint joined to a fixpoint over the call graph's SCCs
// (CallGraph.FixpointSCC). Stored-value taint of globals is a
// module-level fact: a GStore of payload-derived data taints every later
// GLoad of that global, across functions.

// Taint is the taint lattice element: a bitmask over taint classes.
type Taint uint8

// Taint classes.
const (
	// TaintHeader marks data derived from parsed packet header fields or
	// packet metadata (lengths, timestamps) — available to the ingress
	// fast path.
	TaintHeader Taint = 1 << iota
	// TaintPayload marks data derived from packet payload bytes — only
	// the slow path (NIC cores running the full NF) can see it.
	TaintPayload
)

// Has reports whether t carries all bits of q.
func (t Taint) Has(q Taint) bool { return t&q == q }

func (t Taint) String() string {
	switch {
	case t.Has(TaintPayload):
		return "payload"
	case t.Has(TaintHeader):
		return "header"
	default:
		return "clean"
	}
}

// payloadSources are the framework APIs that read packet payload bytes.
var payloadSources = map[string]bool{
	"pkt_payload":     true,
	"pkt_payload_len": true,
}

// intrinsicTaint returns the base taint of an intrinsic's result (before
// joining argument taints) and the source name to report, or 0 for pure
// computations over their arguments.
func intrinsicTaint(name string) (Taint, string) {
	if payloadSources[name] {
		return TaintPayload, name
	}
	intr, ok := lang.Intrinsics[name]
	if !ok {
		return 0, ""
	}
	// Header and metadata reads: the pkt_* accessors with a result.
	if strings.HasPrefix(name, "pkt_") && intr.Ret != ir.Void && !intr.TakesMap {
		return TaintHeader, name
	}
	return 0, ""
}

// taintVal pairs a lattice element with the source it derives from (for
// the diagnostic cause chain). Joins keep the lexicographically smallest
// source of the highest class present, so fixpoint results are
// deterministic regardless of visit order.
type taintVal struct {
	t   Taint
	src string
}

func joinSrc(class Taint, a, b taintVal) string {
	var out string
	for _, v := range [2]taintVal{a, b} {
		if !v.t.Has(class) || v.src == "" {
			continue
		}
		if out == "" || v.src < out {
			out = v.src
		}
	}
	return out
}

func joinTaint(a, b taintVal) taintVal {
	out := taintVal{t: a.t | b.t}
	if out.t.Has(TaintPayload) {
		out.src = joinSrc(TaintPayload, a, b)
	} else if out.t.Has(TaintHeader) {
		out.src = joinSrc(TaintHeader, a, b)
	}
	return out
}

// LoopTaint classifies one natural loop.
type LoopTaint struct {
	// Fn and Head identify the loop (function name, header block index).
	Fn   string
	Head int
	// Pos anchors the loop's exit test in source.
	Pos ir.Pos
	// Cond is the joined taint of every feasible exit condition — the
	// loop-bound sink. TaintPayload here means the loop's iteration count
	// can depend on payload bytes.
	Cond taintVal
}

// PayloadDependent reports whether the loop's bound derives from payload.
func (l LoopTaint) PayloadDependent() bool { return l.Cond.t.Has(TaintPayload) }

// Cause renders the classification with its source, for diagnostics.
func (l LoopTaint) Cause() string { return causeString(l.Cond) }

// StateAccessTaint classifies one stateful access site (GLoad/GStore or a
// map/vec framework call).
type StateAccessTaint struct {
	Fn     string
	Global string
	Block  int
	Pos    ir.Pos
	// Write reports whether the site mutates the structure.
	Write bool
	// Key is the joined taint of the access key (map key, array index,
	// vector slot) — the state-access sink. An untainted key (constant or
	// local arithmetic) is header-only too: the fast path could compute
	// it.
	Key taintVal
}

// PayloadKeyed reports whether the access key derives from payload.
func (a StateAccessTaint) PayloadKeyed() bool { return a.Key.t.Has(TaintPayload) }

func causeString(v taintVal) string {
	switch {
	case v.t.Has(TaintPayload):
		if v.src != "" {
			return fmt.Sprintf("payload-dependent: derives from %s", v.src)
		}
		return "payload-dependent"
	case v.t.Has(TaintHeader):
		if v.src != "" {
			return fmt.Sprintf("header-only: derives from %s", v.src)
		}
		return "header-only"
	default:
		return "header-only: no packet-derived input"
	}
}

// TaintInfo is the module-level taint fixpoint.
type TaintInfo struct {
	CG *CallGraph
	// Loops classifies every natural loop of every function, in (node,
	// header) order.
	Loops []LoopTaint
	// Accesses classifies every stateful access site, in (node, block,
	// instruction) order.
	Accesses []StateAccessTaint
	// GlobalStored is the joined taint of values stored into each global
	// (what a load of the global yields).
	GlobalStored map[string]taintVal

	fns []*fnTaint
}

// fnTaint is the per-function taint state.
type fnTaint struct {
	vals   []taintVal // joined taint per SSA value
	params []taintVal // joined over all call sites
	ret    taintVal
	sol    *Solution[taintSlots]
}

type taintSlots []taintVal

// taintProblem instantiates the dataflow framework for one function.
type taintProblem struct {
	ti      *TaintInfo
	node    int
	changed bool // interprocedural fact (param/ret/global) moved
}

func (p *taintProblem) Boundary() taintSlots {
	// Slots start untainted (lowering zero-initializes declarations).
	return make(taintSlots, p.ti.CG.Funcs[p.node].NSlots)
}

func (p *taintProblem) Bottom() taintSlots {
	return make(taintSlots, p.ti.CG.Funcs[p.node].NSlots)
}

func (p *taintProblem) Meet(a, b taintSlots) taintSlots {
	for i := range a {
		a[i] = joinTaint(a[i], b[i])
	}
	return a
}

func (p *taintProblem) Equal(a, b taintSlots) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *taintProblem) Transfer(b *ir.Block, in taintSlots) taintSlots {
	out := append(taintSlots(nil), in...)
	ft := p.ti.fns[p.node]
	for _, instr := range b.Instrs {
		tv := p.eval(instr, out)
		if instr.ID >= 0 && instr.ID < len(ft.vals) {
			j := joinTaint(ft.vals[instr.ID], tv)
			if j != ft.vals[instr.ID] {
				ft.vals[instr.ID] = j
				p.changed = true
			}
		}
		p.effects(instr, out)
	}
	return out
}

// operandTaint resolves one operand under the current slot state.
func (p *taintProblem) operandTaint(v ir.Value, slots taintSlots) taintVal {
	ft := p.ti.fns[p.node]
	switch v.Kind {
	case ir.VInstr:
		if v.ID >= 0 && v.ID < len(ft.vals) {
			return ft.vals[v.ID]
		}
	case ir.VParam:
		if v.ID >= 0 && v.ID < len(ft.params) {
			return ft.params[v.ID]
		}
	}
	return taintVal{}
}

func (p *taintProblem) joinArgs(in *ir.Instr, slots taintSlots) taintVal {
	var tv taintVal
	for _, a := range in.Args {
		tv = joinTaint(tv, p.operandTaint(a, slots))
	}
	return tv
}

// eval computes the taint of one instruction's result.
func (p *taintProblem) eval(in *ir.Instr, slots taintSlots) taintVal {
	switch in.Op {
	case ir.OpLLoad:
		if in.Slot >= 0 && in.Slot < len(slots) {
			return slots[in.Slot]
		}
		return taintVal{}
	case ir.OpGLoad:
		// The loaded value carries the global's stored taint plus the
		// index taint (a tainted index selects which value is seen).
		return joinTaint(p.ti.GlobalStored[in.Global], p.joinArgs(in, slots))
	case ir.OpCall:
		if node := p.ti.CG.CalleeNode(in); node >= 0 {
			// Intra-module call: propagate argument taint into the
			// callee's parameters and read its return summary.
			callee := p.ti.fns[node]
			for i, a := range in.Args {
				if i >= len(callee.params) {
					break
				}
				j := joinTaint(callee.params[i], p.operandTaint(a, slots))
				if j != callee.params[i] {
					callee.params[i] = j
					p.changed = true
				}
			}
			return callee.ret
		}
		base, src := intrinsicTaint(in.Callee)
		tv := joinTaint(taintVal{t: base, src: src}, p.joinArgs(in, slots))
		if in.Global != "" {
			// Stateful API results also carry the structure's stored
			// taint (map_find returns what map_insert put in).
			tv = joinTaint(tv, p.ti.GlobalStored[in.Global])
		}
		return tv
	default:
		if in.Op.IsCompute() {
			return p.joinArgs(in, slots)
		}
		return taintVal{}
	}
}

// effects applies an instruction's taint side effects: slot stores,
// global stores, and return-value summaries.
func (p *taintProblem) effects(in *ir.Instr, slots taintSlots) {
	ft := p.ti.fns[p.node]
	switch in.Op {
	case ir.OpLStore:
		if in.Slot >= 0 && in.Slot < len(slots) {
			slots[in.Slot] = p.operandTaint(in.Args[0], slots)
		}
	case ir.OpGStore:
		p.taintGlobal(in.Global, p.operandTaint(in.Args[0], slots))
	case ir.OpCall:
		if p.ti.CG.CalleeNode(in) >= 0 {
			return // handled in eval
		}
		if in.Global != "" && len(in.Args) > 0 {
			// Stateful writes: the stored-value argument of the mutating
			// APIs taints the structure.
			if vi, ok := storedValueArg(in.Callee); ok && vi < len(in.Args) {
				p.taintGlobal(in.Global, p.operandTaint(in.Args[vi], slots))
			}
		}
	case ir.OpRet:
		if len(in.Args) > 0 {
			j := joinTaint(ft.ret, p.operandTaint(in.Args[0], slots))
			if j != ft.ret {
				ft.ret = j
				p.changed = true
			}
		}
	}
}

func (p *taintProblem) taintGlobal(g string, tv taintVal) {
	j := joinTaint(p.ti.GlobalStored[g], tv)
	if j != p.ti.GlobalStored[g] {
		p.ti.GlobalStored[g] = j
		p.changed = true
	}
}

// storedValueArg returns the argument index holding the stored value for
// mutating stateful APIs (after the map argument is folded into
// Instr.Global), or ok=false for read-only APIs.
func storedValueArg(callee string) (int, bool) {
	switch callee {
	case "map_insert": // (key, value)
		return 1, true
	case "vec_push": // (value)
		return 0, true
	case "vec_set": // (index, value)
		return 1, true
	}
	return 0, false
}

// keyArgTaint returns the taint of a stateful API call's key/index
// argument (the state-access sink), and whether the call has one.
func keyArgTaint(p *taintProblem, in *ir.Instr, slots taintSlots) (taintVal, bool) {
	switch in.Callee {
	case "map_find", "map_contains", "map_insert", "map_remove",
		"vec_get", "vec_set", "vec_delete":
		if len(in.Args) > 0 {
			return p.operandTaint(in.Args[0], slots), true
		}
	case "map_size", "vec_len", "vec_push":
		// No key: whole-structure or append access. Header-only by
		// construction.
		return taintVal{}, true
	}
	return taintVal{}, false
}

// isStatefulWrite reports whether a stateful API call mutates its
// structure.
func isStatefulWrite(callee string) bool {
	switch callee {
	case "map_insert", "map_remove", "vec_push", "vec_set", "vec_delete":
		return true
	}
	return false
}

// ComputeTaint runs the interprocedural taint fixpoint over a call graph
// and classifies every loop and stateful access site.
func ComputeTaint(cg *CallGraph) *TaintInfo {
	ti := &TaintInfo{CG: cg, GlobalStored: map[string]taintVal{}}
	ti.fns = make([]*fnTaint, len(cg.Funcs))
	for i, f := range cg.Funcs {
		ti.fns[i] = &fnTaint{
			vals:   make([]taintVal, f.NumVals),
			params: make([]taintVal, len(f.Params)),
		}
	}
	// SCC-ordered fixpoint: each step re-solves one function's
	// intra-procedural taint under the current interprocedural facts and
	// reports whether any summary fact (param, return, global) moved.
	cg.FixpointSCC(func(node int) bool {
		p := &taintProblem{ti: ti, node: node}
		ti.fns[node].sol = Solve[taintSlots](cg.CFGs[node], Forward, p)
		return p.changed
	})
	ti.record()
	return ti
}

// record walks every function once more under the final fixpoint state,
// classifying loops and state-access sites.
func (ti *TaintInfo) record() {
	for node, f := range ti.CG.Funcs {
		c := ti.CG.CFGs[node]
		p := &taintProblem{ti: ti, node: node}
		sol := ti.fns[node].sol

		// State accesses: replay each block from its entry slot state.
		for _, b := range f.Blocks {
			if !c.Reachable(b.Index) {
				continue
			}
			slots := append(taintSlots(nil), sol.In[b.Index]...)
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpGLoad, ir.OpGStore:
					key := taintVal{}
					// Indexed access: the index is the key sink. GStore
					// carries (value, index?), GLoad (index?).
					idx := 0
					if in.Op == ir.OpGStore {
						idx = 1
					}
					if len(in.Args) > idx {
						key = p.operandTaint(in.Args[idx], slots)
					}
					ti.Accesses = append(ti.Accesses, StateAccessTaint{
						Fn: f.Name, Global: in.Global, Block: b.Index,
						Pos: in.Pos, Write: in.Op == ir.OpGStore, Key: key,
					})
				case ir.OpCall:
					if in.Global == "" || ti.CG.CalleeNode(in) >= 0 {
						break
					}
					if key, ok := keyArgTaint(p, in, slots); ok {
						ti.Accesses = append(ti.Accesses, StateAccessTaint{
							Fn: f.Name, Global: in.Global, Block: b.Index,
							Pos: in.Pos, Write: isStatefulWrite(in.Callee), Key: key,
						})
					}
				}
				p.effects(in, slots)
			}
		}

		// Loops: join the taint of every feasible exit condition.
		ri := ComputeRanges(c)
		for _, l := range c.NaturalLoops() {
			if !ri.BlockReachable(l.Head) {
				continue
			}
			lt := LoopTaint{Fn: f.Name, Head: l.Head, Pos: loopPos(c, l)}
			for _, e := range l.Exits {
				term := f.Blocks[e.From].Terminator()
				if term == nil || term.Op != ir.OpCondBr {
					continue
				}
				if !ri.EdgeFeasible(e.From, e.To) {
					continue
				}
				lt.Cond = joinTaint(lt.Cond, p.operandTaint(term.Args[0], sol.Out[e.From]))
			}
			ti.Loops = append(ti.Loops, lt)
		}
	}
}

// LoopClass returns the classification of the loop headed at block head
// of function fn, if the analysis saw it.
func (ti *TaintInfo) LoopClass(fn string, head int) (LoopTaint, bool) {
	for _, l := range ti.Loops {
		if l.Fn == fn && l.Head == head {
			return l, true
		}
	}
	return LoopTaint{}, false
}

// ValueTaint exposes the joined taint of one SSA value of the named
// function — test and explainer hook.
func (ti *TaintInfo) ValueTaint(fn string, id int) Taint {
	if node := ti.CG.Node(fn); node >= 0 {
		ft := ti.fns[node]
		if id >= 0 && id < len(ft.vals) {
			return ft.vals[id].t
		}
	}
	return 0
}
