package ml

import (
	"context"
	"math"
	"math/rand"
)

// SeqSample is one training pair for sequence models: an encoded
// instruction sequence (vocabulary indices) and its regression targets
// (e.g. [compute instructions, memory instructions]).
type SeqSample struct {
	Tokens []int
	Target []float64
}

// LSTMConfig configures the LSTM+FC model of §3.2 (Figure 6).
type LSTMConfig struct {
	Vocab       int
	Hidden      int
	Out         int
	LR          float64
	Epochs      int
	Clip        float64
	TargetScale float64 // targets are divided by this during training
	Seed        int64
}

func (c LSTMConfig) norm() LSTMConfig {
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Out == 0 {
		c.Out = 1
	}
	if c.LR == 0 {
		c.LR = 0.004
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.Clip == 0 {
		c.Clip = 5
	}
	if c.TargetScale == 0 {
		c.TargetScale = 10
	}
	return c
}

// LSTM is a single-layer LSTM over one-hot tokens with a linear read-out
// from the final hidden state. One-hot input makes the input projection a
// per-token row lookup, which is exactly what the paper's compacted
// vocabulary enables.
type LSTM struct {
	cfg    LSTMConfig
	params []float64
	// offsets into params
	oWx, oWh, oB, oWo, oBo int
}

// NewLSTM allocates a randomly initialized model.
func NewLSTM(cfg LSTMConfig) *LSTM {
	cfg = cfg.norm()
	V, H, D := cfg.Vocab, cfg.Hidden, cfg.Out
	m := &LSTM{cfg: cfg}
	m.oWx = 0
	m.oWh = m.oWx + V*4*H
	m.oB = m.oWh + H*4*H
	m.oWo = m.oB + 4*H
	m.oBo = m.oWo + H*D
	m.params = make([]float64, m.oBo+D)
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	randInit(rng, m.params[m.oWx:m.oWh], 0.25)
	randInit(rng, m.params[m.oWh:m.oB], 1/math.Sqrt(float64(H)))
	randInit(rng, m.params[m.oWo:m.oBo], 1/math.Sqrt(float64(H)))
	// Forget-gate bias starts positive (standard trick for gradient flow).
	b := m.params[m.oB : m.oB+4*H]
	for i := H; i < 2*H; i++ {
		b[i] = 1
	}
	return m
}

// step state kept for BPTT.
type lstmStep struct {
	tok        int
	i, f, g, o []float64
	c, tc, h   []float64
}

func (m *LSTM) forward(tokens []int) ([]lstmStep, []float64) {
	H, D := m.cfg.Hidden, m.cfg.Out
	p := m.params
	steps := make([]lstmStep, len(tokens))
	hPrev := make([]float64, H)
	cPrev := make([]float64, H)
	z := make([]float64, 4*H)
	for t, tok := range tokens {
		wx := p[m.oWx+tok*4*H : m.oWx+(tok+1)*4*H]
		copy(z, wx)
		Axpy(1, p[m.oB:m.oB+4*H], z)
		for j := 0; j < H; j++ {
			hj := hPrev[j]
			if hj == 0 {
				continue
			}
			row := p[m.oWh+j*4*H : m.oWh+(j+1)*4*H]
			Axpy(hj, row, z)
		}
		st := lstmStep{
			tok: tok,
			i:   make([]float64, H), f: make([]float64, H),
			g: make([]float64, H), o: make([]float64, H),
			c: make([]float64, H), tc: make([]float64, H), h: make([]float64, H),
		}
		for j := 0; j < H; j++ {
			st.i[j] = sigmoid(z[j])
			st.f[j] = sigmoid(z[H+j])
			st.g[j] = math.Tanh(z[2*H+j])
			st.o[j] = sigmoid(z[3*H+j])
			st.c[j] = st.f[j]*cPrev[j] + st.i[j]*st.g[j]
			st.tc[j] = math.Tanh(st.c[j])
			st.h[j] = st.o[j] * st.tc[j]
		}
		steps[t] = st
		hPrev, cPrev = st.h, st.c
	}
	y := make([]float64, D)
	for d := 0; d < D; d++ {
		y[d] = p[m.oBo+d]
		for j := 0; j < H; j++ {
			y[d] += p[m.oWo+j*D+d] * hPrev[j]
		}
	}
	return steps, y
}

// Predict returns the model outputs rescaled to target units, clamped to
// be nonnegative (instruction counts).
func (m *LSTM) Predict(tokens []int) []float64 {
	out := m.PredictRaw(tokens)
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// PredictRaw returns the model outputs rescaled to target units without
// clamping (for signed targets such as residuals).
func (m *LSTM) PredictRaw(tokens []int) []float64 {
	if len(tokens) == 0 {
		return make([]float64, m.cfg.Out)
	}
	_, y := m.forward(tokens)
	out := make([]float64, len(y))
	for i := range y {
		out[i] = y[i] * m.cfg.TargetScale
	}
	return out
}

// backward accumulates gradients for one sample; returns the loss.
func (m *LSTM) backward(steps []lstmStep, y, target []float64, grads []float64) float64 {
	H, D := m.cfg.Hidden, m.cfg.Out
	p := m.params
	T := len(steps)
	dh := make([]float64, H)
	dc := make([]float64, H)

	loss := 0.0
	dy := make([]float64, D)
	hT := steps[T-1].h
	for d := 0; d < D; d++ {
		diff := y[d] - target[d]/m.cfg.TargetScale
		loss += 0.5 * diff * diff
		dy[d] = diff
		grads[m.oBo+d] += diff
		for j := 0; j < H; j++ {
			grads[m.oWo+j*D+d] += diff * hT[j]
			dh[j] += p[m.oWo+j*D+d] * diff
		}
	}

	dz := make([]float64, 4*H)
	for t := T - 1; t >= 0; t-- {
		st := &steps[t]
		var cPrev, hPrev []float64
		if t > 0 {
			cPrev = steps[t-1].c
			hPrev = steps[t-1].h
		}
		for j := 0; j < H; j++ {
			doj := dh[j] * st.tc[j]
			dcj := dc[j] + dh[j]*st.o[j]*(1-st.tc[j]*st.tc[j])
			dij := dcj * st.g[j]
			dgj := dcj * st.i[j]
			dfj := 0.0
			if cPrev != nil {
				dfj = dcj * cPrev[j]
			}
			dz[j] = dij * st.i[j] * (1 - st.i[j])
			dz[H+j] = dfj * st.f[j] * (1 - st.f[j])
			dz[2*H+j] = dgj * (1 - st.g[j]*st.g[j])
			dz[3*H+j] = doj * st.o[j] * (1 - st.o[j])
			dc[j] = dcj * st.f[j]
		}
		// Parameter gradients.
		gw := grads[m.oWx+st.tok*4*H : m.oWx+(st.tok+1)*4*H]
		Axpy(1, dz, gw)
		Axpy(1, dz, grads[m.oB:m.oB+4*H])
		for j := 0; j < H; j++ {
			dh[j] = 0
		}
		if hPrev != nil {
			for j := 0; j < H; j++ {
				if hPrev[j] != 0 {
					Axpy(hPrev[j], dz, grads[m.oWh+j*4*H:m.oWh+(j+1)*4*H])
				}
				dh[j] = Dot(p[m.oWh+j*4*H:m.oWh+(j+1)*4*H], dz)
			}
		}
	}
	return loss
}

// TrainLSTM trains a model on the samples and reports the final mean
// training loss (scaled units).
func TrainLSTM(samples []SeqSample, cfg LSTMConfig) (*LSTM, float64) {
	m, loss, _ := TrainLSTMContext(context.Background(), samples, cfg)
	return m, loss
}

// TrainLSTMContext is TrainLSTM with cancellation: the context is checked
// once per epoch (the unit of long-running work), so a canceled training
// request stops within one pass over the corpus. On cancellation the
// partially-trained model is returned alongside the context's error.
func TrainLSTMContext(ctx context.Context, samples []SeqSample, cfg LSTMConfig) (*LSTM, float64, error) {
	m := NewLSTM(cfg)
	cfg = m.cfg
	opt := NewAdam(len(m.params), cfg.LR, cfg.Clip)
	grads := make([]float64, len(m.params))
	rng := rand.New(rand.NewSource(cfg.Seed + 202))
	lastLoss := math.Inf(1)
	for e := 0; e < cfg.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return m, lastLoss, err
		}
		perm := rng.Perm(len(samples))
		total := 0.0
		for _, si := range perm {
			s := samples[si]
			if len(s.Tokens) == 0 {
				continue
			}
			steps, y := m.forward(s.Tokens)
			for i := range grads {
				grads[i] = 0
			}
			total += m.backward(steps, y, s.Target, grads)
			opt.Step(m.params, grads)
		}
		lastLoss = total / float64(len(samples))
	}
	return m, lastLoss, nil
}
